package lmmrank_test

import (
	"fmt"

	"lmmrank"
)

// ExampleLayeredMethod reproduces the headline numbers of the paper's
// worked example: the Layered Method's score for global state (2,3).
func ExampleLayeredMethod() {
	model := lmmrank.PaperExample()
	ranking, err := lmmrank.LayeredMethod(model, lmmrank.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("π̃(2,3) = %.4f\n", ranking.Score(lmmrank.State{Phase: 1, Sub: 2}))
	top := ranking.Order()[0]
	fmt.Printf("top state = %v\n", top)
	// Output:
	// π̃(2,3) = 0.2541
	// top state = (2,3)
}

// ExamplePartitionGap verifies Corollary 1 on the paper's model: the
// decentralized Layered Method equals the centralized power method on W.
func ExamplePartitionGap() {
	gap, err := lmmrank.PartitionGap(lmmrank.PaperExample(), lmmrank.Config{Tol: 1e-12})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("gap below 1e-8: %v\n", gap < 1e-8)
	// Output:
	// gap below 1e-8: true
}

// ExampleLayeredDocRank ranks a two-site web and prints the SiteRank.
func ExampleLayeredDocRank() {
	b := lmmrank.NewGraphBuilder()
	b.AddLink("http://news.example/", "http://blog.example/")
	b.AddLink("http://blog.example/", "http://news.example/")
	b.AddLink("http://blog.example/post", "http://news.example/")
	b.AddLink("http://blog.example/", "http://blog.example/post")
	dg := b.Build()

	res, err := lmmrank.LayeredDocRank(dg, lmmrank.WebConfig{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for s, score := range res.SiteRank {
		fmt.Printf("%s %.2f\n", dg.Sites[s].Name, score)
	}
	// Output:
	// news.example 0.41
	// blog.example 0.59
}

// ExampleGraphBuilder shows site assignment by URL host.
func ExampleGraphBuilder() {
	b := lmmrank.NewGraphBuilder()
	b.AddLink("http://a.example/x", "http://b.example/y")
	dg := b.Build()
	fmt.Println("sites:", dg.NumSites(), "docs:", dg.NumDocs())
	fmt.Println("site of doc 0:", dg.Sites[dg.SiteOf(0)].Name)
	// Output:
	// sites: 2 docs: 2
	// site of doc 0: a.example
}
