package lmmrank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
)

// churnTestWeb is a small campus web for update tests.
func churnTestWeb() *CampusWeb {
	return GenerateCampusWeb(CampusWebConfig{
		Seed:                7,
		Sites:               18,
		MeanSitePages:       12,
		DynamicClusterPages: 50,
		DocClusterPages:     50,
	})
}

// editSite adds a couple of intra-site links to site s — the canonical
// 1-site churn event.
func editSite(t *testing.T, dg *DocGraph, s SiteID) {
	t.Helper()
	docs := dg.Sites[s].Docs
	if len(docs) < 3 {
		t.Fatalf("site %d too small for the edit", s)
	}
	dg.G.AddLink(int(docs[0]), int(docs[2]))
	dg.G.AddLink(int(docs[2]), int(docs[1]))
}

// TestEngineUpdateWarmMatchesColdRebuild is the acceptance pin of the
// churn path: rankings served after Engine.Update agree with a cold
// NewLocalEngine over the mutated graph to < 1e-9, while the warm query
// does measurably fewer power iterations.
func TestEngineUpdateWarmMatchesColdRebuild(t *testing.T) {
	web := churnTestWeb()
	dg := web.Graph
	ctx := context.Background()
	q := Query{Tol: 1e-11}

	eng, err := NewLocalEngine(dg, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	if _, err := eng.Rank(ctx, q); err != nil {
		t.Fatalf("pre-churn Rank: %v", err)
	}

	const site = SiteID(4)
	err = eng.Update(ctx, GraphDelta{
		ChangedSites: []SiteID{site},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, site)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}

	warm, err := eng.Rank(ctx, q)
	if err != nil {
		t.Fatalf("post-update Rank: %v", err)
	}
	// The engine now serves an evolved copy-on-write clone; the caller's
	// original graph is untouched. Compare against a cold engine over the
	// graph actually served.
	if eng.DocGraph() == dg {
		t.Fatal("Apply-path Update did not evolve the serving graph")
	}
	coldEng, err := NewLocalEngine(eng.DocGraph(), EngineOptions{})
	if err != nil {
		t.Fatalf("cold NewLocalEngine: %v", err)
	}
	cold, err := coldEng.Rank(ctx, q)
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}
	if d := warm.DocRank.L1Diff(cold.DocRank); d >= 1e-9 {
		t.Errorf("‖warm − cold‖₁ = %g, want < 1e-9", d)
	}
	if d := warm.SiteRank.L1Diff(cold.SiteRank); d >= 1e-9 {
		t.Errorf("‖warm − cold‖₁ on SiteRank = %g, want < 1e-9", d)
	}
	if s := warm.DocRank.Sum(); math.Abs(s-1) > 1e-9 {
		t.Errorf("warm DocRank sums to %g", s)
	}

	// The warm query starts from the update's refreshed solution, the
	// cold one from uniform: strictly less power-method work.
	warmIters, coldIters := warm.SiteIterations, cold.SiteIterations
	for i := range warm.LocalIterations {
		warmIters += warm.LocalIterations[i]
		coldIters += cold.LocalIterations[i]
	}
	if warmIters >= coldIters {
		t.Errorf("warm query did %d iterations, cold %d — no warm-start win", warmIters, coldIters)
	}

	// The other query shapes keep working against the updated core.
	if _, err := eng.Rank(ctx, Query{ThreeLayer: true}); err != nil {
		t.Errorf("three-layer query after Update: %v", err)
	}
	if res, err := eng.Rank(ctx, Query{TopK: 5}); err != nil || len(res.Top) != 5 {
		t.Errorf("top-k query after Update: res=%v err=%v", res, err)
	}
}

// TestEngineMutationWithoutUpdateFails pins the footgun fix: a graph
// mutation not delivered through Update turns queries into a documented
// ErrGraphMutated (instead of silently stale rankings), and a follow-up
// Update listing the changed site restores service.
func TestEngineMutationWithoutUpdateFails(t *testing.T) {
	web := churnTestWeb()
	dg := web.Graph
	ctx := context.Background()
	eng, err := NewLocalEngine(dg, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	if _, err := eng.Rank(ctx, Query{}); err != nil {
		t.Fatalf("pre-churn Rank: %v", err)
	}

	const site = SiteID(2)
	editSite(t, dg, site) // behind the engine's back

	if _, err := eng.Rank(ctx, Query{}); !errors.Is(err, ErrGraphMutated) {
		t.Fatalf("Rank after external mutation: err = %v, want ErrGraphMutated", err)
	}
	// Update with the mutation already applied (nil Apply) recovers.
	if err := eng.Update(ctx, GraphDelta{ChangedSites: []SiteID{site}}); err != nil {
		t.Fatalf("recovery Update: %v", err)
	}
	if _, err := eng.Rank(ctx, Query{}); err != nil {
		t.Errorf("Rank after recovery Update: %v", err)
	}
}

// TestEngineUpdateApplyError: a failing Apply leaves the engine on its
// previous core and the error surfaces wrapped.
func TestEngineUpdateApplyError(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	boom := errors.New("boom")
	err = eng.Update(ctx, GraphDelta{Apply: func(*DocGraph) error { return boom }})
	if !errors.Is(err, boom) {
		t.Fatalf("Update with failing Apply: err = %v, want boom", err)
	}
	// Nothing mutated, so the engine keeps serving.
	if _, err := eng.Rank(ctx, Query{}); err != nil {
		t.Errorf("Rank after failed Apply: %v", err)
	}
}

// TestEngineFailedApplyUpdateIsNoOp pins the new transactional Apply
// path: an Update that fails after Apply mutated the *clone* (here: the
// context is cancelled during the refresh solve) discards the clone and
// leaves the engine exactly as before — no ErrGraphMutated, the same
// rankings, and nothing marked dirty. Reissuing the delta then succeeds
// and matches a cold engine over the evolved serving graph.
func TestEngineFailedApplyUpdateIsNoOp(t *testing.T) {
	web := churnTestWeb()
	dg := web.Graph
	ctx := context.Background()
	eng, err := NewLocalEngine(dg, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	pre, err := eng.Rank(ctx, Query{Tol: 1e-11})
	if err != nil {
		t.Fatalf("pre-churn Rank: %v", err)
	}

	// Update #1 mutates the working clone and then fails: Apply cancels
	// the update context, so the refresh solve aborts after the clone
	// changed. Under drain-and-swap semantics this left the engine
	// poisoned (ErrGraphMutated until recovery); with COW it is a no-op.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	delta := GraphDelta{
		ChangedSites: []SiteID{3},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, 3)
			cancel()
			return nil
		},
	}
	if err := eng.Update(cctx, delta); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Update: err = %v, want context.Canceled", err)
	}
	if eng.DocGraph() != dg {
		t.Fatal("failed Update swapped the serving graph")
	}
	post, err := eng.Rank(ctx, Query{Tol: 1e-11})
	if err != nil {
		t.Fatalf("Rank after failed Update: %v", err)
	}
	if d := post.DocRank.L1Diff(pre.DocRank); d != 0 {
		t.Errorf("failed Update moved the ranking by %g, want bitwise no-op", d)
	}

	// Reissuing the same delta with a live context succeeds outright.
	delta.Apply = func(dg *DocGraph) error {
		editSite(t, dg, 3)
		return nil
	}
	if err := eng.Update(ctx, delta); err != nil {
		t.Fatalf("reissued Update: %v", err)
	}
	got, err := eng.Rank(ctx, Query{Tol: 1e-11})
	if err != nil {
		t.Fatalf("Rank after reissued Update: %v", err)
	}
	coldEng, err := NewLocalEngine(eng.DocGraph(), EngineOptions{})
	if err != nil {
		t.Fatalf("cold NewLocalEngine: %v", err)
	}
	want, err := coldEng.Rank(ctx, Query{Tol: 1e-11})
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}
	if d := got.DocRank.L1Diff(want.DocRank); d >= 1e-9 {
		t.Errorf("‖reissued − cold‖₁ = %g, want < 1e-9", d)
	}
}

// TestEngineFailedNilApplyUpdateKeepsSitesDirty pins the one remaining
// dirty-tracking path: on the nil-Apply path the serving graph is
// already mutated when Update is called, so a failed Update must keep
// the delta's sites recorded, and the next successful Update — listing
// only its *own* changed sites — must rebuild the earlier ones too.
// Forgetting them would bless the pre-edit subgraphs into the new core
// and serve silently stale rankings.
func TestEngineFailedNilApplyUpdateKeepsSitesDirty(t *testing.T) {
	web := churnTestWeb()
	dg := web.Graph
	ctx := context.Background()
	eng, err := NewLocalEngine(dg, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	if _, err := eng.Rank(ctx, Query{}); err != nil {
		t.Fatalf("pre-churn Rank: %v", err)
	}

	// The caller mutates the serving graph directly, then its recovery
	// Update fails (already-cancelled context): site 3 must stay
	// recorded as dirty.
	editSite(t, dg, 3)
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	err = eng.Update(cctx, GraphDelta{ChangedSites: []SiteID{3}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Update: err = %v, want context.Canceled", err)
	}
	if _, err := eng.Rank(ctx, Query{}); !errors.Is(err, ErrGraphMutated) {
		t.Fatalf("Rank after failed Update: err = %v, want ErrGraphMutated", err)
	}

	// Update #2 lists only its own site; site 3 must be rebuilt anyway.
	err = eng.Update(ctx, GraphDelta{
		ChangedSites: []SiteID{5},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, 5)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("recovery Update: %v", err)
	}
	got, err := eng.Rank(ctx, Query{Tol: 1e-11})
	if err != nil {
		t.Fatalf("Rank after recovery: %v", err)
	}
	coldEng, err := NewLocalEngine(eng.DocGraph(), EngineOptions{})
	if err != nil {
		t.Fatalf("cold NewLocalEngine: %v", err)
	}
	want, err := coldEng.Rank(ctx, Query{Tol: 1e-11})
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}
	if d := got.DocRank.L1Diff(want.DocRank); d >= 1e-9 {
		t.Errorf("‖recovered − cold‖₁ = %g, want < 1e-9 (site 3's edit was dropped?)", d)
	}
}

// TestEngineUpdateConcurrentWithRank hammers Update against concurrent
// Rank traffic: queries must never error (beyond none expected) or
// observe a half-swapped core. Run under -race via make race.
func TestEngineUpdateConcurrentWithRank(t *testing.T) {
	web := churnTestWeb()
	dg := web.Graph
	ctx := context.Background()
	eng, err := NewLocalEngine(dg, EngineOptions{Parallelism: 1})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}

	const queriers = 4
	stop := make(chan struct{})
	errCh := make(chan error, queriers)
	var wg sync.WaitGroup
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Rank(ctx, Query{})
				if err != nil {
					errCh <- err
					return
				}
				if s := res.DocRank.Sum(); math.Abs(s-1) > 1e-6 {
					errCh <- fmt.Errorf("DocRank sums to %g", s)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		site := SiteID(i + 1)
		err := eng.Update(ctx, GraphDelta{
			ChangedSites: []SiteID{site},
			Apply: func(dg *DocGraph) error {
				docs := dg.Sites[site].Docs
				if len(docs) >= 2 {
					dg.G.AddLink(int(docs[0]), int(docs[1]))
				}
				return nil
			},
		})
		if err != nil {
			t.Fatalf("concurrent Update %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent Rank: %v", err)
	default:
	}
}

// TestDistEngineUpdate drives the distributed churn path end to end
// through the Engine API: after Update, the next query re-ships only
// the changed shard (ShardsReused > 0, ShardsReshipped small) and the
// ranking matches a LocalEngine over the same mutated graph to < 1e-9.
func TestDistEngineUpdate(t *testing.T) {
	web := churnTestWeb()
	dg := web.Graph
	ns := dg.NumSites()
	ctx := context.Background()

	cl, err := StartCluster(3)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	eng, err := NewDistEngine(cl, dg, DistConfig{})
	if err != nil {
		t.Fatalf("NewDistEngine: %v", err)
	}
	cold, err := eng.Rank(ctx, Query{})
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}
	if cold.Dist.ShardsReshipped != ns {
		t.Fatalf("cold run reshipped %d shards, want %d", cold.Dist.ShardsReshipped, ns)
	}

	const site = SiteID(6)
	err = eng.Update(ctx, GraphDelta{
		ChangedSites: []SiteID{site},
		Apply: func(dg *DocGraph) error {
			editSite(t, dg, site)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}

	warm, err := eng.Rank(ctx, Query{})
	if err != nil {
		t.Fatalf("post-update Rank: %v", err)
	}
	if warm.Dist.ShardsReused != ns-1 || warm.Dist.ShardsReshipped != 1 {
		t.Errorf("delta query reused %d / reshipped %d shards, want %d / 1",
			warm.Dist.ShardsReused, warm.Dist.ShardsReshipped, ns-1)
	}
	if warm.Dist.BytesSent*4 > cold.Dist.BytesSent {
		t.Errorf("delta query sent %d bytes vs %d cold — not delta-shaped",
			warm.Dist.BytesSent, cold.Dist.BytesSent)
	}

	// The engine serves an evolved COW clone after the Apply-path
	// Update; compare against a LocalEngine over that same graph.
	local, err := NewLocalEngine(eng.DocGraph(), EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	ref, err := local.Rank(ctx, Query{})
	if err != nil {
		t.Fatalf("local Rank: %v", err)
	}
	if d := warm.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖dist − local‖₁ after Update = %g, want < 1e-9", d)
	}

	// Mutating behind the engine's back is refused distributedly too —
	// the mutation must hit the graph currently served.
	editSite(t, eng.DocGraph(), 1)
	if _, err := eng.Rank(ctx, Query{}); !errors.Is(err, ErrGraphMutated) {
		t.Errorf("Rank after external mutation: err = %v, want ErrGraphMutated", err)
	}
	if err := eng.Update(ctx, GraphDelta{ChangedSites: []SiteID{1}}); err != nil {
		t.Fatalf("recovery Update: %v", err)
	}
	if _, err := eng.Rank(ctx, Query{}); err != nil {
		t.Errorf("Rank after recovery Update: %v", err)
	}
}
