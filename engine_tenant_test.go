package lmmrank

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestTenantQuotaStarvation is the acceptance pin of keyed admission:
// with per-tenant quotas set, a flooding tenant exhausts only its own
// quota — every one of its over-quota calls is rejected at the tenant
// gate — while a quiet tenant's queries are never rejected, no matter
// how hard the flood presses. Runs under -race via make race.
func TestTenantQuotaStarvation(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{
		MaxInFlight:    8,
		TenantQuota:    2,
		RejectOverload: true,
	})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}

	// The greedy tenant fills its whole quota with queries parked
	// deterministically mid-flight.
	const quota = 2
	release := make(chan struct{})
	holderGot := make(chan error, quota)
	for i := 0; i < quota; i++ {
		started := make(chan struct{})
		go func() {
			_, err := eng.Rank(ctx, Query{
				Tenant:     "greedy",
				ThreeLayer: true,
				DomainOf:   blockingDomainOf(started, release),
			})
			holderGot <- err
		}()
		<-started
	}

	// The flood: every further greedy call must bounce off the tenant
	// gate, concurrently with the quiet tenant's traffic below.
	const floods = 10
	floodGot := make(chan error, floods)
	var wg sync.WaitGroup
	for i := 0; i < floods; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Rank(ctx, Query{Tenant: "greedy"})
			floodGot <- err
		}()
	}

	// The quiet tenant keeps serving throughout: its quota is its own,
	// and the engine-wide cap (8 ≥ 2+2) has slots the flood cannot take.
	for i := 0; i < 10; i++ {
		if _, err := eng.Rank(ctx, Query{Tenant: "quiet"}); err != nil {
			t.Fatalf("quiet tenant query %d rejected during the flood: %v", i, err)
		}
	}

	wg.Wait()
	for i := 0; i < floods; i++ {
		err := <-floodGot
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("flood call err = %v, want ErrOverloaded", err)
		}
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("flood call err = %T, want *OverloadError", err)
		}
		if oe.Tenant != "greedy" || !oe.PerTenant {
			t.Errorf("OverloadError = %+v, want Tenant=greedy PerTenant=true", oe)
		}
	}

	close(release)
	for i := 0; i < quota; i++ {
		if err := <-holderGot; err != nil {
			t.Fatalf("greedy holder %d: %v", i, err)
		}
	}
	// With its quota free again the greedy tenant serves normally.
	if _, err := eng.Rank(ctx, Query{Tenant: "greedy"}); err != nil {
		t.Errorf("greedy Rank after quota freed: %v", err)
	}

	stats := eng.ServingStats()
	if stats.Overloads != floods {
		t.Errorf("Overloads = %d, want %d", stats.Overloads, floods)
	}
	if got := stats.TenantOverloads["greedy"]; got != floods {
		t.Errorf("TenantOverloads[greedy] = %d, want %d", got, floods)
	}
	if got := stats.TenantOverloads["quiet"]; got != 0 {
		t.Errorf("TenantOverloads[quiet] = %d, want 0", got)
	}
	wantRanks := int64(quota + 10 + 1)
	if stats.Ranks != wantRanks {
		t.Errorf("Ranks = %d, want %d", stats.Ranks, wantRanks)
	}

	// The tenant table is bounded by concurrent admissions: with
	// everything drained, no entries survive.
	eng.admit.mu.Lock()
	live := len(eng.admit.tenants)
	eng.admit.mu.Unlock()
	if live != 0 {
		t.Errorf("%d tenant gates survived the drain, want 0", live)
	}
}

// TestTenantQuotaQueues covers queue mode: an over-quota call waits for
// its tenant's slot (honoring ctx while parked) instead of failing, and
// proceeds once the tenant frees a slot.
func TestTenantQuotaQueues(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{TenantQuota: 1})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	holderGot := make(chan error, 1)
	go func() {
		_, err := eng.Rank(ctx, Query{
			Tenant:     "t",
			ThreeLayer: true,
			DomainOf:   blockingDomainOf(started, release),
		})
		holderGot <- err
	}()
	<-started

	// A queued same-tenant caller honors its context while waiting.
	qctx, cancel := context.WithCancel(ctx)
	queuedGot := make(chan error, 1)
	go func() {
		_, err := eng.Rank(qctx, Query{Tenant: "t"})
		queuedGot <- err
	}()
	// Another tenant is not queued at all — its own gate is open.
	done := make(chan error, 1)
	go func() {
		_, err := eng.Rank(ctx, Query{Tenant: "other"})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("other tenant behind a full foreign quota: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("other tenant's query queued behind a foreign quota")
	}

	cancel()
	if err := <-queuedGot; !errors.Is(err, context.Canceled) {
		t.Errorf("queued same-tenant Rank err = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-holderGot; err != nil {
		t.Fatalf("holder Rank: %v", err)
	}
	if _, err := eng.Rank(ctx, Query{Tenant: "t"}); err != nil {
		t.Errorf("Rank after the tenant slot freed: %v", err)
	}
}

// TestDistEngineTenantQuota wires the same keyed admission through
// DistConfig: an over-quota call bounces at the tenant gate before ever
// reaching the wire, and serving resumes once the quota frees.
func TestDistEngineTenantQuota(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	cl, err := StartCluster(2)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	eng, err := NewDistEngine(cl, web.Graph, DistConfig{TenantQuota: 1, RejectOverload: true})
	if err != nil {
		t.Fatalf("NewDistEngine: %v", err)
	}

	started := make(chan struct{})
	release := make(chan struct{})
	holderGot := make(chan error, 1)
	go func() {
		_, err := eng.Rank(ctx, Query{
			Tenant:     "t",
			ThreeLayer: true,
			DomainOf:   blockingDomainOf(started, release),
		})
		holderGot <- err
	}()
	<-started

	_, err = eng.Rank(ctx, Query{Tenant: "t"})
	var oe *OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-quota dist Rank err = %v, want an *OverloadError matching ErrOverloaded", err)
	}
	if oe.Tenant != "t" || !oe.PerTenant {
		t.Errorf("OverloadError = %+v, want Tenant=t PerTenant=true", oe)
	}
	if got := eng.ServingStats().TenantOverloads["t"]; got != 1 {
		t.Errorf("TenantOverloads[t] = %d, want 1", got)
	}

	close(release)
	if err := <-holderGot; err != nil {
		t.Fatalf("holder Rank: %v", err)
	}
	if _, err := eng.Rank(ctx, Query{Tenant: "t"}); err != nil {
		t.Errorf("Rank after the quota freed: %v", err)
	}
}

// TestOverloadErrorGates pins which gate an OverloadError names: the
// engine-wide cap rejects with PerTenant=false, the tenant quota with
// PerTenant=true, and both match ErrOverloaded under errors.Is.
func TestOverloadErrorGates(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()

	t.Run("engineWide", func(t *testing.T) {
		eng, err := NewLocalEngine(web.Graph, EngineOptions{MaxInFlight: 1, RejectOverload: true})
		if err != nil {
			t.Fatalf("NewLocalEngine: %v", err)
		}
		started := make(chan struct{})
		release := make(chan struct{})
		holderGot := make(chan error, 1)
		go func() {
			_, err := eng.Rank(ctx, Query{Tenant: "a", ThreeLayer: true, DomainOf: blockingDomainOf(started, release)})
			holderGot <- err
		}()
		<-started
		_, err = eng.Rank(ctx, Query{Tenant: "b"})
		var oe *OverloadError
		if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
			t.Fatalf("over-cap err = %v, want an *OverloadError matching ErrOverloaded", err)
		}
		if oe.Tenant != "b" || oe.PerTenant {
			t.Errorf("OverloadError = %+v, want Tenant=b PerTenant=false", oe)
		}
		if got := eng.ServingStats().TenantOverloads["b"]; got != 1 {
			t.Errorf("TenantOverloads[b] = %d, want 1", got)
		}
		close(release)
		if err := <-holderGot; err != nil {
			t.Fatalf("holder: %v", err)
		}
	})

	t.Run("tenantQuota", func(t *testing.T) {
		eng, err := NewLocalEngine(web.Graph, EngineOptions{TenantQuota: 1, RejectOverload: true})
		if err != nil {
			t.Fatalf("NewLocalEngine: %v", err)
		}
		started := make(chan struct{})
		release := make(chan struct{})
		holderGot := make(chan error, 1)
		go func() {
			_, err := eng.Rank(ctx, Query{Tenant: "a", ThreeLayer: true, DomainOf: blockingDomainOf(started, release)})
			holderGot <- err
		}()
		<-started
		_, err = eng.Rank(ctx, Query{Tenant: "a"})
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("over-quota err = %v, want *OverloadError", err)
		}
		if oe.Tenant != "a" || !oe.PerTenant {
			t.Errorf("OverloadError = %+v, want Tenant=a PerTenant=true", oe)
		}
		close(release)
		if err := <-holderGot; err != nil {
			t.Fatalf("holder: %v", err)
		}
	})
}
