module lmmrank

go 1.24
