package lmmrank

import (
	"context"
	"io"

	"lmmrank/internal/crawler"
	"lmmrank/internal/dist/cluster"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
	"lmmrank/internal/partition"
	"lmmrank/internal/rankutil"
	"lmmrank/internal/retrieval"
	"lmmrank/internal/webgen"
)

// Core model types (paper §2).
type (
	// Model is the Layered Markov Model 6-tuple of Definition 1.
	Model = lmm.Model
	// Config parameterizes LMM rank computations (α, tolerance, budget).
	Config = lmm.Config
	// Ranking is a scored, ordered set of global system states.
	Ranking = lmm.Ranking
	// State is a (phase, sub-state) pair, 0-based.
	State = lmm.State
	// Hierarchy is the multi-layer generalization of §2.2.
	Hierarchy = lmm.Hierarchy
	// Vector is a dense probability/score vector.
	Vector = matrix.Vector
)

// Web ranking types (paper §3).
type (
	// DocGraph is the document-level Web graph with its site mapping.
	DocGraph = graph.DocGraph
	// SiteGraph is the site-level aggregation.
	SiteGraph = graph.SiteGraph
	// SiteGraphOptions controls SiteLink counting.
	SiteGraphOptions = graph.SiteGraphOptions
	// Digraph is a weighted directed graph.
	Digraph = graph.Digraph
	// DocID identifies a document; SiteID a site.
	DocID = graph.DocID
	// SiteID identifies a Web site.
	SiteID = graph.SiteID
	// GraphBuilder assembles DocGraphs from URLs and links.
	GraphBuilder = graph.Builder
	// WebConfig parameterizes the layered DocRank pipeline.
	WebConfig = lmm.WebConfig
	// WebResult is the pipeline outcome (DocRank, SiteRank, local ranks).
	WebResult = lmm.WebResult
)

// Synthetic-web types.
type (
	// CampusWebConfig parameterizes the synthetic campus-web generator.
	CampusWebConfig = webgen.Config
	// CampusWeb is a generated web with ground-truth page classes.
	CampusWeb = webgen.Web
	// PageClass labels a generated page's ground-truth role.
	PageClass = webgen.PageClass
)

// Distributed runtime types.
type (
	// Cluster is an in-process coordinator + worker fleet on loopback.
	Cluster = cluster.Local
	// DistConfig parameterizes a distributed ranking run.
	DistConfig = coordinator.Config
	// DistResult is the outcome of a distributed run with cost stats.
	DistResult = coordinator.Result
	// DistRetryPolicy bounds how many worker losses one distributed run
	// absorbs by reassigning shards to survivors.
	DistRetryPolicy = coordinator.RetryPolicy
	// DistStats breaks down a distributed run's cost: timings, measured
	// wire traffic, losses/reassignments/retries, cache hits and bytes
	// saved, and SiteRank messages saved by round batching.
	DistStats = coordinator.Stats
	// DistCheckpoint persists the distributed SiteRank iterate between
	// rounds so a restarted coordinator resumes instead of recomputing.
	DistCheckpoint = coordinator.Checkpoint
	// DistCheckpointState is one saved iterate: round, vector, and the
	// digest binding it to its graph + configuration.
	DistCheckpointState = coordinator.CheckpointState
	// SiteRankMode selects how a distributed run computes its site
	// chain's stationary distribution (DistConfig.SiteRank).
	SiteRankMode = coordinator.SiteRankMode
)

// Partitioning types: pluggable site→shard placement for the
// distributed runtime (DistConfig.Partition).
type (
	// PartitionStrategy computes site→shard assignments; the Partition
	// Theorem makes every choice rank-identical, so it is a pure
	// performance knob (balance vs cut-edge volume).
	PartitionStrategy = partition.Strategy
	// PartitionAssignment maps each site to an abstract shard.
	PartitionAssignment = partition.Assignment
	// HostPartition is hostname-order round-robin (the seed behavior).
	HostPartition = partition.Host
	// BalancedPartition is weighted LPT by document count (the default).
	BalancedPartition = partition.Balanced
	// AggregatePartition is seeded coupling-aware aggregation: block
	// merge plus label propagation minimizing cut-edge weight under a
	// balance constraint.
	AggregatePartition = partition.Aggregate
)

// SiteRank modes for DistConfig.SiteRank.
const (
	// SiteRankAuto derives the mode from the legacy boolean/batching
	// fields — the zero-value default.
	SiteRankAuto = coordinator.SiteRankAuto
	// SiteRankCentral solves the site chain on the coordinator.
	SiteRankCentral = coordinator.SiteRankCentral
	// SiteRankSync runs barrier-synchronous distributed power rounds.
	SiteRankSync = coordinator.SiteRankSync
	// SiteRankBatched runs multiple distributed rounds per barrier.
	SiteRankBatched = coordinator.SiteRankBatched
	// SiteRankAsync runs the barrier-free asynchronous protocol: workers
	// sweep continuously, the coordinator merges in arrival order, and a
	// synchronous verification pass confirms convergence.
	SiteRankAsync = coordinator.SiteRankAsync
)

// NewFileDistCheckpoint stores SiteRank checkpoints in a file with
// atomic replace — the store a production coordinator restart reads.
func NewFileDistCheckpoint(path string) DistCheckpoint {
	return coordinator.NewFileCheckpoint(path)
}

// NewMemDistCheckpoint stores SiteRank checkpoints in process memory —
// for tests and single-process experiments.
func NewMemDistCheckpoint() DistCheckpoint { return coordinator.NewMemCheckpoint() }

// Errors re-exported for errors.Is checks.
var (
	// ErrNotPrimitive marks approaches whose primitivity hypothesis
	// (Theorem 2) fails.
	ErrNotPrimitive = lmm.ErrNotPrimitive
	// ErrInvalidModel marks structurally broken models.
	ErrInvalidModel = lmm.ErrInvalidModel
)

// NewModel builds and validates a Layered Markov Model from a phase
// matrix and per-phase sub-state matrices.
func NewModel(y *matrix.Dense, u []*matrix.Dense) (*Model, error) {
	return lmm.NewModel(y, u)
}

// PaperExample returns the 12-state worked example of the paper's §2.3.
func PaperExample() *Model { return lmm.PaperExample() }

// LayeredMethod is Approach 4 — the paper's decentralized algorithm:
// plain stationary distribution of the primitive phase matrix composed
// with per-phase local PageRanks. Equals Approach2 by the Partition
// Theorem.
func LayeredMethod(m *Model, cfg Config) (*Ranking, error) {
	return lmm.LayeredMethod(m, cfg)
}

// Approach1 applies standard PageRank to the assembled global matrix W.
func Approach1(m *Model, cfg Config) (*Ranking, error) { return lmm.Approach1(m, cfg) }

// Approach2 runs the plain power method on W (requires primitivity).
func Approach2(m *Model, cfg Config) (*Ranking, error) { return lmm.Approach2(m, cfg) }

// Approach3 composes the adjusted PageRank of Y with the local ranks.
func Approach3(m *Model, cfg Config) (*Ranking, error) { return lmm.Approach3(m, cfg) }

// ComputeAll runs all four approaches sharing one local-rank computation.
func ComputeAll(m *Model, cfg Config) (*lmm.All, error) { return lmm.ComputeAll(m, cfg) }

// PartitionGap measures ‖Approach2 − LayeredMethod‖₁ on a model —
// Theorem 2 says it is zero up to solver tolerance.
func PartitionGap(m *Model, cfg Config) (float64, error) { return lmm.PartitionGap(m, cfg) }

// LayeredHierarchyRank ranks the leaves of a multi-layer hierarchy.
func LayeredHierarchyRank(h *Hierarchy, cfg Config) (Vector, error) {
	return lmm.LayeredHierarchyRank(h, cfg)
}

// NewGraphBuilder returns an empty DocGraph builder; documents are
// assigned to sites by URL host.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// DeriveSiteGraph aggregates a DocGraph at the site level (§3.2 step 2).
func DeriveSiteGraph(dg *DocGraph, opts SiteGraphOptions) *SiteGraph {
	return graph.DeriveSiteGraph(dg, opts)
}

// LayeredDocRank runs the §3.2 pipeline: SiteRank × independent local
// DocRanks, composed by the Partition Theorem.
//
// It is the one-shot wrapper over Engine: a throwaway LocalEngine is
// built and queried once, so the result is caller-owned. Callers
// ranking the same graph repeatedly should hold a LocalEngine (or, for
// single-goroutine serving, a Ranker) instead.
func LayeredDocRank(dg *DocGraph, cfg WebConfig) (*WebResult, error) {
	eng, err := NewLocalEngine(dg, EngineOptions{SiteGraph: cfg.SiteGraph, Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	res, err := eng.Rank(ctxOf(cfg), Query{
		Damping:             cfg.Damping,
		Tol:                 cfg.Tol,
		MaxIter:             cfg.MaxIter,
		SitePersonalization: cfg.SitePersonalization,
		DocPersonalization:  cfg.DocPersonalization,
		WantLocalRanks:      true,
	})
	if err != nil {
		return nil, err
	}
	return &WebResult{
		DocRank:         res.DocRank,
		SiteRank:        res.SiteRank,
		LocalRanks:      res.LocalRanks,
		SiteIterations:  res.SiteIterations,
		LocalIterations: res.LocalIterations,
	}, nil
}

// ctxOf lifts the optional WebConfig.Ctx into a non-nil context.
func ctxOf(cfg WebConfig) context.Context {
	if cfg.Ctx != nil {
		return cfg.Ctx
	}
	return context.Background()
}

// Ranker is the precomputed serving form of the layered pipeline: build
// it once per graph, then answer repeated Rank queries (uniform or
// personalized) with near-zero setup cost and no steady-state
// allocations. Results alias the Ranker's scratch — see lmm.Ranker for
// the reuse contract.
//
// Deprecated-in-spirit for serving: Ranker is the single-goroutine,
// scratch-aliasing expert path. Most callers want Engine — NewLocalEngine
// wraps a pool of Rankers behind the same precomputation and returns
// caller-owned results, safely concurrent and context-aware.
type Ranker = lmm.Ranker

// RankerOptions fixes the graph-derivation choices a Ranker precomputes.
type RankerOptions = lmm.RankerOptions

// NewRanker precomputes the layered ranking structure of a DocGraph:
// the SiteGraph, all local subgraphs and their transition matrices.
func NewRanker(dg *DocGraph, opts RankerOptions) (*Ranker, error) {
	return lmm.NewRanker(dg, opts)
}

// Web3Result is the outcome of the three-layer (domain→site→page)
// pipeline.
type Web3Result = lmm.Web3Result

// LayeredDocRank3 ranks documents with the three-layer model of the §2.2
// multi-layer extension; domainOf groups sites into domains (nil = last
// two host labels). With one domain it reduces exactly to LayeredDocRank.
//
// Like LayeredDocRank, it is the one-shot wrapper over Engine (a
// ThreeLayer Query against a throwaway LocalEngine): the result is
// caller-owned.
func LayeredDocRank3(dg *DocGraph, domainOf func(siteName string) string, cfg WebConfig) (*Web3Result, error) {
	eng, err := NewLocalEngine(dg, EngineOptions{SiteGraph: cfg.SiteGraph, Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	res, err := eng.Rank(ctxOf(cfg), Query{
		Damping:            cfg.Damping,
		Tol:                cfg.Tol,
		MaxIter:            cfg.MaxIter,
		DocPersonalization: cfg.DocPersonalization,
		ThreeLayer:         true,
		DomainOf:           domainOf,
		WantLocalRanks:     true,
	})
	if err != nil {
		return nil, err
	}
	return &Web3Result{
		DocRank:         res.DocRank,
		Domains:         res.Domains,
		DomainRank:      res.DomainRank,
		DomainOfSite:    res.DomainOfSite,
		SiteEntry:       res.SiteEntry,
		LocalRanks:      res.LocalRanks,
		LocalIterations: res.LocalIterations,
	}, nil
}

// PageRank computes the flat PageRank baseline over the whole DocGraph.
// The returned vector is caller-owned (cloned off any solver state).
func PageRank(dg *DocGraph, cfg WebConfig) (Vector, error) {
	res, err := lmm.GlobalPageRank(dg, cfg)
	if err != nil {
		return nil, err
	}
	// The one-shot solve allocates fresh iterate buffers today, but the
	// public contract is ownership, not implementation: clone so no
	// future solver-scratch reuse can leak through this boundary.
	return res.Scores.Clone(), nil
}

// PageRankGraph computes PageRank of a bare directed graph. The
// returned vector is caller-owned (cloned off any solver state).
func PageRankGraph(g *Digraph, damping float64) (Vector, error) {
	res, err := pagerank.Graph(g, pagerank.Config{Damping: damping})
	if err != nil {
		return nil, err
	}
	return res.Scores.Clone(), nil
}

// GenerateCampusWeb builds a synthetic campus web with ground-truth spam
// labels (the evaluation substrate; see DESIGN.md §4).
func GenerateCampusWeb(cfg CampusWebConfig) *CampusWeb { return webgen.Generate(cfg) }

// ReadGraph parses the text graph format; WriteGraph emits it.
func ReadGraph(r io.Reader) (*DocGraph, error) { return graph.ReadText(r) }

// WriteGraph serializes a DocGraph in the text format.
func WriteGraph(w io.Writer, dg *DocGraph) error { return graph.WriteText(w, dg) }

// ReadGraphBinary and WriteGraphBinary use the compact gob encoding.
func ReadGraphBinary(r io.Reader) (*DocGraph, error) { return graph.DecodeGob(r) }

// WriteGraphBinary serializes a DocGraph in the gob encoding.
func WriteGraphBinary(w io.Writer, dg *DocGraph) error { return graph.EncodeGob(w, dg) }

// StartCluster launches an in-process distributed fleet of n workers on
// loopback TCP with a connected coordinator.
func StartCluster(n int) (*Cluster, error) { return cluster.StartLocal(n) }

// Crawler types: acquire DocGraphs the way the paper's dataset was built.
type (
	// CrawlConfig parameterizes a breadth-first crawl.
	CrawlConfig = crawler.Config
	// CrawlStats summarizes a finished crawl.
	CrawlStats = crawler.Stats
	// Fetcher abstracts the web being crawled.
	Fetcher = crawler.Fetcher
	// SnapshotFetcher serves a DocGraph as a virtual web.
	SnapshotFetcher = crawler.SnapshotFetcher
)

// Crawl runs a deterministic breadth-first crawl over a Fetcher.
func Crawl(f Fetcher, cfg CrawlConfig) (*DocGraph, CrawlStats, error) {
	return crawler.Crawl(f, cfg)
}

// NewSnapshotFetcher serves an existing DocGraph (e.g. a generated campus
// web) as a crawlable virtual web.
func NewSnapshotFetcher(dg *DocGraph) *SnapshotFetcher {
	return crawler.NewSnapshotFetcher(dg)
}

// Retrieval types: the future-work fusion of query-based and link-based
// ranking (§4).
type (
	// SearchIndex is a TF-IDF inverted index over document terms.
	SearchIndex = retrieval.Index
	// SearchEngine blends cosine query scores with a DocRank.
	SearchEngine = retrieval.SearchEngine
	// SearchResult is one hit with its score decomposition.
	SearchResult = retrieval.Result
)

// NewSearchIndex returns an empty TF-IDF index.
func NewSearchIndex() *SearchIndex { return retrieval.NewIndex() }

// NewSearchEngine blends a finalized index with a DocRank vector using
// fusion weight lambda (1 = pure text, 0 = pure link order among matches).
func NewSearchEngine(ix *SearchIndex, docRank Vector, lambda float64) (*SearchEngine, error) {
	return retrieval.NewSearchEngine(ix, docRank, lambda)
}

// SyntheticCorpus indexes deterministic term vectors for a generated
// campus web, so retrieval experiments have content to query.
func SyntheticCorpus(web *CampusWeb, seed int64) *SearchIndex {
	return retrieval.SyntheticCorpus(web, seed)
}

// UpdateLayeredDocRank refreshes a previous layered ranking after the
// listed sites changed — the P2P churn path: only changed sites' local
// DocRanks are recomputed and the SiteRank is warm-started.
func UpdateLayeredDocRank(dg *DocGraph, prev *WebResult, changed []SiteID, cfg WebConfig) (*WebResult, error) {
	return lmm.UpdateLayeredDocRank(dg, prev, changed, cfg)
}

// ErrStaleResult marks incremental updates that need a full recompute.
var ErrStaleResult = lmm.ErrStaleResult

// ErrGraphMutated marks queries against an engine or Ranker whose
// DocGraph was mutated without going through Engine.Update (or
// Ranker.Rebuild): the precomputed structure is stale, and the query is
// refused instead of silently serving a stale ranking. Check with
// errors.Is; recover with Engine.Update or by rebuilding.
var ErrGraphMutated = lmm.ErrGraphMutated

// DocScore pairs a document with its score for top-k reporting.
type DocScore struct {
	Doc   DocID
	URL   string
	Score float64
}

// TopDocs returns the k best documents of a scored DocGraph with their
// URLs, in descending score order.
func TopDocs(dg *DocGraph, scores Vector, k int) []DocScore {
	top := rankutil.TopK(scores, k)
	out := make([]DocScore, len(top))
	for i, e := range top {
		out[i] = DocScore{Doc: DocID(e.Index), URL: dg.Docs[e.Index].URL, Score: e.Score}
	}
	return out
}

// KendallTau re-exports the rank-correlation metric for comparing two
// score vectors over the same documents.
func KendallTau(a, b Vector) float64 { return rankutil.KendallTau(a, b) }
