// Package hits implements Kleinberg's HITS algorithm, the second
// link-based baseline the paper reviews (§1.1). It exists to make the
// comparison the paper draws concrete: HITS' mutually-reinforcing
// authority/hub iteration lacks the primitivity guarantees that PageRank's
// maximal irreducibility — and the LMM's layered construction — provide,
// and can converge to seed-dependent eigenvectors that zero out parts of
// the graph (Farahat et al., cited as [4]).
package hits

import (
	"errors"
	"fmt"
	"math"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

// ErrNotConverged is returned (wrapped) when the iteration budget is
// exhausted.
var ErrNotConverged = errors.New("hits: did not converge")

// Config parameterizes a HITS run. The zero value uses the defaults.
type Config struct {
	// Tol is the L1 convergence threshold on successive authority vectors
	// (0 selects matrix.DefaultTol).
	Tol float64
	// MaxIter bounds iterations (0 selects matrix.DefaultMaxIter).
	MaxIter int
	// Seed optionally sets the initial authority vector (nil = uniform).
	// HITS' seed sensitivity is one of the instabilities the paper
	// contrasts against; tests exercise it explicitly.
	Seed matrix.Vector
}

// Result holds the HITS fixed point.
type Result struct {
	// Authority scores, L1-normalized.
	Authority matrix.Vector
	// Hub scores, L1-normalized.
	Hub matrix.Vector
	// Iterations performed.
	Iterations int
	// Converged reports whether Tol was reached.
	Converged bool
}

// Run computes HITS authority and hub scores of a directed graph by the
// standard coupled iteration
//
//	h ← A·a,  a ← A'h
//
// (A the weighted adjacency), L1-normalizing after each step. The hub
// update runs first so that the authority seed steers the iteration, which
// is what exposes the seed sensitivity on degenerate graphs.
func Run(g *graph.Digraph, cfg Config) (Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return Result{}, fmt.Errorf("hits: empty graph")
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = matrix.DefaultTol
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = matrix.DefaultMaxIter
	}

	var auth matrix.Vector
	if cfg.Seed != nil {
		if len(cfg.Seed) != n {
			return Result{}, fmt.Errorf("hits: seed length %d vs %d nodes", len(cfg.Seed), n)
		}
		auth = cfg.Seed.Clone().Normalize()
	} else {
		auth = matrix.Uniform(n)
	}
	hub := matrix.Uniform(n)
	newAuth := matrix.NewVector(n)
	newHub := matrix.NewVector(n)

	g.Dedupe()
	res := Result{}
	for it := 1; it <= maxIter; it++ {
		// h_i = Σ_{i→j} a_j
		newHub.Fill(0)
		g.EachEdgeAll(func(from int, e graph.Edge) {
			newHub[from] += auth[e.To] * e.Weight
		})
		newHub.Normalize()
		// a_j = Σ_{i→j} h_i
		newAuth.Fill(0)
		g.EachEdgeAll(func(from int, e graph.Edge) {
			newAuth[e.To] += newHub[from] * e.Weight
		})
		newAuth.Normalize()

		res.Iterations = it
		diff := newAuth.L1Diff(auth)
		auth, newAuth = newAuth, auth
		hub, newHub = newHub, hub
		if diff <= tol {
			res.Converged = true
			break
		}
	}
	res.Authority = auth
	res.Hub = hub
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
	}
	if hasNaN(res.Authority) || hasNaN(res.Hub) {
		return res, fmt.Errorf("hits: numeric breakdown (disconnected graph?)")
	}
	return res, nil
}

func hasNaN(v matrix.Vector) bool {
	for _, x := range v {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}
