package hits

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

func TestRunSimpleAuthority(t *testing.T) {
	// Nodes 0..2 all link to 3: node 3 is the authority, 0..2 equal hubs.
	g := graph.NewDigraph(4)
	g.AddLink(0, 3)
	g.AddLink(1, 3)
	g.AddLink(2, 3)
	res, err := Run(g, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Authority.ArgMax() != 3 {
		t.Errorf("authority = %v, want node 3 on top", res.Authority)
	}
	if res.Authority[3] < 0.99 {
		t.Errorf("node 3 should hold ~all authority: %v", res.Authority)
	}
	for i := 0; i < 3; i++ {
		if res.Hub[i] < 0.3 {
			t.Errorf("hub[%d] = %g, want ≈ 1/3", i, res.Hub[i])
		}
	}
}

func TestRunBipartiteCore(t *testing.T) {
	// Dense bipartite core {0,1} → {2,3} plus an appendage 4→5. The core
	// dominates; the appendage keeps near-zero weight — the "zero weights
	// to parts of the graph" behavior discussed in the paper.
	g := graph.NewDigraph(6)
	for _, from := range []int{0, 1} {
		for _, to := range []int{2, 3} {
			g.AddLink(from, to)
		}
	}
	g.AddLink(4, 5)
	res, err := Run(g, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Authority[5] > 1e-6 {
		t.Errorf("appendage authority = %g, want ≈ 0", res.Authority[5])
	}
	if res.Authority[2] < 0.45 || res.Authority[3] < 0.45 {
		t.Errorf("core authorities = %v", res.Authority)
	}
}

func TestRunEmptyGraphErrors(t *testing.T) {
	if _, err := Run(graph.NewDigraph(0), Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestRunSeedLengthMismatch(t *testing.T) {
	g := graph.NewDigraph(3)
	g.AddLink(0, 1)
	if _, err := Run(g, Config{Seed: matrix.Vector{1, 0}}); err == nil {
		t.Fatal("bad seed length accepted")
	}
}

func TestSeedSensitivity(t *testing.T) {
	// Two disconnected bipartite cores of equal size: the converged
	// authority vector depends on the seed — HITS' instability (paper
	// §1.1, citing Farahat et al.). A seed biased to one core keeps all
	// weight there.
	g := graph.NewDigraph(8)
	g.AddLink(0, 1)
	g.AddLink(2, 1) // core A: authority 1
	g.AddLink(4, 5)
	g.AddLink(6, 5) // core B: authority 5
	seedA := matrix.NewVector(8)
	seedA[1] = 1
	resA, err := Run(g, Config{Seed: seedA})
	if err != nil {
		t.Fatalf("Run seedA: %v", err)
	}
	seedB := matrix.NewVector(8)
	seedB[5] = 1
	resB, err := Run(g, Config{Seed: seedB})
	if err != nil {
		t.Fatalf("Run seedB: %v", err)
	}
	if resA.Authority.ArgMax() == resB.Authority.ArgMax() {
		t.Errorf("expected seed-dependent winners, both gave %d", resA.Authority.ArgMax())
	}
}

func TestWeightedEdgesRespected(t *testing.T) {
	g := graph.NewDigraph(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 1)
	res, err := Run(g, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Authority[1] <= res.Authority[2] {
		t.Errorf("heavier edge should win: %v", res.Authority)
	}
}

// Property: on random non-trivial graphs, converged authority and hub
// vectors are probability distributions.
func TestHITSDistributionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 3
		g := graph.NewDigraph(n)
		// Guarantee at least one edge so normalization is well-defined.
		g.AddLink(rng.Intn(n), rng.Intn(n))
		for e := rng.Intn(4 * n); e > 0; e-- {
			g.AddLink(rng.Intn(n), rng.Intn(n))
		}
		res, err := Run(g, Config{MaxIter: 5000, Tol: 1e-9})
		if err != nil {
			// Convergence failure is possible for adversarial patterns;
			// treat only wrong results as property violations.
			return true
		}
		return res.Authority.IsDistribution(1e-7) && res.Hub.IsDistribution(1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
