package worker

import (
	"testing"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
)

func entryOfDocs(digestByte byte, docs int) *cacheEntry {
	var d wire.Digest
	d[0] = digestByte
	return &cacheEntry{digest: d, numDocs: docs, sub: graph.NewDigraph(docs)}
}

// TestShardCacheLRUEviction pins the retention policy: the document
// budget evicts the least-recently-used entries first, and lookups
// refresh recency.
func TestShardCacheLRUEviction(t *testing.T) {
	c := newShardCache()
	c.maxDocs = 10
	e1 := entryOfDocs(1, 4)
	e2 := entryOfDocs(2, 4)
	e3 := entryOfDocs(3, 4)
	c.addShard(e1)
	c.addShard(e2)
	if c.lookupShard(e1.digest) == nil {
		t.Fatal("e1 evicted while under budget")
	}
	// e1 is now most recent; adding e3 (total 12 > 10) must evict e2.
	c.addShard(e3)
	if c.lookupShard(e2.digest) != nil {
		t.Error("least-recently-used entry survived over-budget insert")
	}
	if c.lookupShard(e1.digest) == nil || c.lookupShard(e3.digest) == nil {
		t.Error("recently used entries were evicted")
	}
	if entries, docs := c.gauges(); entries != 2 || docs != 8 {
		t.Errorf("gauges = %d entries / %d docs, want 2 / 8", entries, docs)
	}
}

// TestShardCacheDedupes asserts that inserting the same digest twice
// keeps one entry — identical shards share a subgraph and a solver.
func TestShardCacheDedupes(t *testing.T) {
	c := newShardCache()
	e1 := entryOfDocs(7, 3)
	dup := entryOfDocs(7, 3)
	if got := c.addShard(e1); got != e1 {
		t.Fatal("first insert did not return the inserted entry")
	}
	if got := c.addShard(dup); got != e1 {
		t.Error("duplicate digest did not resolve to the cached entry")
	}
	if entries, docs := c.gauges(); entries != 1 || docs != 3 {
		t.Errorf("gauges = %d entries / %d docs after dedupe, want 1 / 3", entries, docs)
	}
}

// TestOfferAndCachedLoad drives the cache protocol over a real socket:
// a shard shipped by one session is offered and activated by digest
// from a second session without re-shipping its content.
func TestOfferAndCachedLoad(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()

	shard := wire.SiteShard{Site: 0, NumDocs: 2, Edges: []wire.Edge{
		{From: 0, To: 1, Weight: 1}, {From: 1, To: 0, Weight: 1},
	}}
	digest := shard.ContentDigest()

	enc1, dec1, _ := dial(t, addr)
	if resp := roundTrip(t, enc1, dec1, &wire.Request{
		Kind: wire.KindLoad, NumSites: 1, Shards: []wire.SiteShard{shard},
	}); resp.Err != "" {
		t.Fatalf("full load: %s", resp.Err)
	}

	// A brand-new session sees the hit: the cache is worker-global.
	enc2, dec2, _ := dial(t, addr)
	offer := roundTrip(t, enc2, dec2, &wire.Request{
		Kind: wire.KindOffer,
		Refs: []wire.ShardRef{{Site: 0, Digest: digest}},
	})
	if offer.Err != "" {
		t.Fatalf("offer: %s", offer.Err)
	}
	if len(offer.HaveSites) != 1 || offer.HaveSites[0] != 0 {
		t.Fatalf("offer answered %v, want cache hit for site 0", offer.HaveSites)
	}
	load := roundTrip(t, enc2, dec2, &wire.Request{
		Kind: wire.KindLoad, NumSites: 1,
		Cached: []wire.ShardRef{{Site: 0, Digest: digest}},
	})
	if load.Err != "" || len(load.Missing) != 0 {
		t.Fatalf("cached load: err=%q missing=%v", load.Err, load.Missing)
	}
	rank := roundTrip(t, enc2, dec2, &wire.Request{Kind: wire.KindRankLocal})
	if rank.Err != "" || len(rank.Local) != 1 || len(rank.Local[0].Scores) != 2 {
		t.Fatalf("rank over cached shard: err=%q local=%v", rank.Err, rank.Local)
	}
}

// TestCachedLoadReportsEvicted covers the offer/load race: a ref whose
// entry is gone comes back in Missing instead of failing the load, and
// the un-activated site is not silently rankable.
func TestCachedLoadReportsEvicted(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	var unknown wire.Digest
	unknown[0] = 0xEE
	offer := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindOffer,
		Refs: []wire.ShardRef{{Site: 0, Digest: unknown}},
	})
	if len(offer.HaveSites) != 0 {
		t.Fatalf("offer of unknown digest claimed hits: %v", offer.HaveSites)
	}
	load := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindLoad, NumSites: 1,
		Cached: []wire.ShardRef{{Site: 0, Digest: unknown}},
	})
	if load.Err != "" {
		t.Fatalf("load with evicted ref must not fail hard: %s", load.Err)
	}
	if len(load.Missing) != 1 || load.Missing[0] != 0 {
		t.Fatalf("Missing = %v, want [0]", load.Missing)
	}
	if rank := roundTrip(t, enc, dec, &wire.Request{Kind: wire.KindRankLocal, Sites: []int{0}}); rank.Err == "" {
		t.Error("ranking a never-activated site succeeded")
	}
}

// TestRankLocalSubset asserts Request.Sites restricts the computation —
// the recovery path must re-rank only reassigned sites.
func TestRankLocalSubset(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	if resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindLoad, NumSites: 3, Shards: []wire.SiteShard{
			{Site: 0, NumDocs: 1}, {Site: 1, NumDocs: 1}, {Site: 2, NumDocs: 1},
		},
	}); resp.Err != "" {
		t.Fatalf("load: %s", resp.Err)
	}
	resp := roundTrip(t, enc, dec, &wire.Request{Kind: wire.KindRankLocal, Sites: []int{2, 0}})
	if resp.Err != "" {
		t.Fatalf("subset rank: %s", resp.Err)
	}
	if len(resp.Local) != 2 {
		t.Fatalf("subset rank returned %d sites, want 2", len(resp.Local))
	}
	for _, lr := range resp.Local {
		if lr.Site == 1 {
			t.Error("unrequested site 1 was ranked")
		}
	}
}

// TestBatchRoundsValidation covers the failure modes of the batched
// SiteRank handler: no chain loaded, malformed chains, bad budgets.
func TestBatchRoundsValidation(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	if resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindBatchRounds, NumSites: 0, Rounds: 1,
	}); resp.Err == "" {
		t.Error("batch rounds without a chain succeeded")
	}

	badChains := []*wire.SiteChain{
		{NumSites: 1, RowPtr: []int{0}},                                              // short rowptr
		{NumSites: 2, RowPtr: []int{0, 1, 1}, Cols: []int{5}, Vals: []float64{1}},    // col out of range
		{NumSites: 2, RowPtr: []int{0, 1, 1}, Cols: []int{0}, Vals: []float64{0.4}},  // row not stochastic
		{NumSites: 2, RowPtr: []int{0, 2, 1}, Cols: []int{0, 1}, Vals: []float64{1}}, // arity + order broken
	}
	for i, chain := range badChains {
		resp := roundTrip(t, enc, dec, &wire.Request{
			Kind: wire.KindLoad, NumSites: chain.NumSites, Chain: chain,
		})
		if resp.Err == "" {
			t.Errorf("bad chain %d was accepted", i)
		}
	}

	good := &wire.SiteChain{NumSites: 2, RowPtr: []int{0, 1, 1}, Cols: []int{1}, Vals: []float64{1}}
	if resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindLoad, NumSites: 2, Chain: good,
	}); resp.Err != "" {
		t.Fatalf("good chain rejected: %s", resp.Err)
	}
	if resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindBatchRounds, NumSites: 2, X: []float64{0.5, 0.5}, Rounds: 0,
	}); resp.Err == "" {
		t.Error("zero-round batch succeeded")
	}
	resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindBatchRounds, NumSites: 2, X: []float64{0.5, 0.5}, Rounds: 3,
	})
	if resp.Err != "" {
		t.Fatalf("batch rounds: %s", resp.Err)
	}
	if resp.Rounds < 1 || len(resp.X) != 2 {
		t.Errorf("batch answered %d rounds, iterate %v", resp.Rounds, resp.X)
	}
	sum := resp.X[0] + resp.X[1]
	if sum < 0.999999 || sum > 1.000001 {
		t.Errorf("batched iterate sums to %g, want 1", sum)
	}
}

// TestCacheHitRevalidatesSiteSpace is the cross-site-space regression:
// a shard cached under a large graph whose row targets high site IDs
// must be rejected — not silently reused — when the identical bytes are
// re-shipped into a smaller site space, or the branch-free power round
// would index past its iterate.
func TestCacheHitRevalidatesSiteSpace(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	shard := wire.SiteShard{Site: 0, NumDocs: 1, RowCols: []int{7}, RowVals: []float64{1}}
	if resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindLoad, NumSites: 10, Shards: []wire.SiteShard{shard},
	}); resp.Err != "" {
		t.Fatalf("load into the large space: %s", resp.Err)
	}
	// Same bytes, smaller space: the digest hits the cache, but column 7
	// is now out of range and must fail validation cleanly.
	resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindLoad, NumSites: 2, Shards: []wire.SiteShard{shard},
	})
	if resp.Err == "" {
		t.Fatal("cache-hit shard with out-of-range row columns was accepted into a smaller site space")
	}
	// The worker must survive to serve the next request.
	if ping := roundTrip(t, enc, dec, &wire.Request{Kind: wire.KindPing}); ping.Err != "" {
		t.Errorf("ping after rejected load: %s", ping.Err)
	}
}
