package worker

import (
	"encoding/gob"
	"math"
	"net"
	"testing"

	"lmmrank/internal/dist/wire"
)

// dial opens a raw protocol connection to the worker for direct
// request-level testing.
func dial(t *testing.T, addr string) (*gob.Encoder, *gob.Decoder, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return gob.NewEncoder(conn), gob.NewDecoder(conn), conn
}

func roundTrip(t *testing.T, enc *gob.Encoder, dec *gob.Decoder, req *wire.Request) *wire.Response {
	t.Helper()
	if err := enc.Encode(req); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &resp
}

func TestStartCloseLifecycle(t *testing.T) {
	w := New()
	if st := w.Stats(); st.Messages != 0 || st.BytesReceived != 0 || st.BytesSent != 0 {
		t.Errorf("fresh worker has nonzero stats: %+v", st)
	}
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if _, err := w.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start succeeded")
	}

	enc, dec, _ := dial(t, addr)
	if resp := roundTrip(t, enc, dec, &wire.Request{Kind: wire.KindPing}); resp.Err != "" {
		t.Errorf("ping: %s", resp.Err)
	}
	st := w.Stats()
	if st.Messages != 1 || st.BytesReceived == 0 || st.BytesSent == 0 {
		t.Errorf("after one ping: %+v", st)
	}

	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if _, err := w.Start("127.0.0.1:0"); err == nil {
		t.Error("Start after Close succeeded")
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		// The listener socket must actually be gone. (A successful
		// dial here would mean Close leaked it.)
		t.Error("worker still accepting after Close")
	}
}

func TestStartBadAddress(t *testing.T) {
	w := New()
	if _, err := w.Start("256.256.256.256:99999"); err == nil {
		t.Error("Start on invalid address succeeded")
	}
	if err := w.Close(); err != nil {
		t.Errorf("Close of never-started worker: %v", err)
	}
}

// TestMalformedRequests exercises worker-side validation: every bad
// request must produce a Response with Err set, never a crash.
func TestMalformedRequests(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	cases := []struct {
		name string
		req  wire.Request
	}{
		{"unknown kind", wire.Request{Kind: 99}},
		{"shard site out of range", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 5, NumDocs: 1}}}},
		{"edge out of range", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 0, NumDocs: 2, Edges: []wire.Edge{{From: 0, To: 9, Weight: 1}}}}}},
		{"non-positive edge weight", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 0, NumDocs: 2, Edges: []wire.Edge{{From: 0, To: 1, Weight: -1}}}}}},
		{"NaN edge weight", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 0, NumDocs: 2, Edges: []wire.Edge{{From: 0, To: 1, Weight: math.NaN()}}}}}},
		{"NaN row value", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 0, NumDocs: 1, RowCols: []int{0}, RowVals: []float64{math.NaN()}}}}},
		{"row arity mismatch", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 0, NumDocs: 1, RowCols: []int{0}, RowVals: nil}}}},
		{"row column out of range", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 0, NumDocs: 1, RowCols: []int{5}, RowVals: []float64{1}}}}},
		{"power round before load", wire.Request{Kind: wire.KindPowerRound, NumSites: 3, X: []float64{1, 0, 0}}},
		{"absurd doc count", wire.Request{Kind: wire.KindLoad, NumSites: 1,
			Shards: []wire.SiteShard{{Site: 0, NumDocs: 1 << 62}}}},
	}
	for _, tc := range cases {
		if resp := roundTrip(t, enc, dec, &tc.req); resp.Err == "" {
			t.Errorf("%s: worker accepted it", tc.name)
		}
	}

	// The connection must survive all of the above.
	if resp := roundTrip(t, enc, dec, &wire.Request{Kind: wire.KindPing}); resp.Err != "" {
		t.Errorf("ping after malformed requests: %s", resp.Err)
	}
}

// TestSessionDocCapAccumulates asserts the MaxShardDocs memory bound
// holds across a session's successive Load requests, not just within
// one, and that Reset reclaims the budget.
func TestSessionDocCapAccumulates(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	first := &wire.Request{Kind: wire.KindLoad, NumSites: 3, Shards: []wire.SiteShard{
		{Site: 0, NumDocs: wire.MaxShardDocs},
	}}
	if resp := roundTrip(t, enc, dec, first); resp.Err != "" {
		t.Fatalf("load at the cap: %s", resp.Err)
	}
	over := &wire.Request{Kind: wire.KindLoad, NumSites: 3, Shards: []wire.SiteShard{
		{Site: 1, NumDocs: 1},
	}}
	if resp := roundTrip(t, enc, dec, over); resp.Err == "" {
		t.Error("second load pushed the session past MaxShardDocs and was accepted")
	}
	if resp := roundTrip(t, enc, dec, &wire.Request{Kind: wire.KindReset}); resp.Err != "" {
		t.Fatalf("reset: %s", resp.Err)
	}
	if resp := roundTrip(t, enc, dec, over); resp.Err != "" {
		t.Errorf("load after reset: %s", resp.Err)
	}
}

// TestReloadShrinksSiteSpace re-loads a smaller graph without a Reset:
// stale shards from the larger site space must be dropped, not left to
// index past the new iterate (which would crash the process).
func TestReloadShrinksSiteSpace(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	big := &wire.Request{Kind: wire.KindLoad, NumSites: 10, Shards: []wire.SiteShard{
		{Site: 9, NumDocs: 1, RowCols: []int{0}, RowVals: []float64{1}},
	}}
	if resp := roundTrip(t, enc, dec, big); resp.Err != "" {
		t.Fatalf("load big: %s", resp.Err)
	}
	small := &wire.Request{Kind: wire.KindLoad, NumSites: 5, Shards: []wire.SiteShard{
		{Site: 0, NumDocs: 1, RowCols: []int{1}, RowVals: []float64{1}},
	}}
	if resp := roundTrip(t, enc, dec, small); resp.Err != "" {
		t.Fatalf("load small: %s", resp.Err)
	}
	resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindPowerRound, NumSites: 5, X: []float64{0.2, 0.2, 0.2, 0.2, 0.2},
	})
	if resp.Err != "" {
		t.Fatalf("power round after shrink: %s", resp.Err)
	}
	if len(resp.Partial) != 5 || resp.Partial[1] != 0.2 {
		t.Errorf("partial = %v, want stale site 9 gone and site 0 row applied", resp.Partial)
	}
}

// TestPowerRoundMath checks one round against hand-computed partials:
// two sites where site 0 links to site 1 with probability 1 and site 1
// is dangling.
func TestPowerRoundMath(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	load := &wire.Request{Kind: wire.KindLoad, NumSites: 2, Shards: []wire.SiteShard{
		{Site: 0, NumDocs: 1, RowCols: []int{1}, RowVals: []float64{1}},
		{Site: 1, NumDocs: 1}, // dangling site row
	}}
	if resp := roundTrip(t, enc, dec, load); resp.Err != "" {
		t.Fatalf("load: %s", resp.Err)
	}
	resp := roundTrip(t, enc, dec, &wire.Request{
		Kind: wire.KindPowerRound, NumSites: 2, X: []float64{0.25, 0.75},
	})
	if resp.Err != "" {
		t.Fatalf("power round: %s", resp.Err)
	}
	if got := resp.Partial; len(got) != 2 || got[0] != 0 || got[1] != 0.25 {
		t.Errorf("partial = %v, want [0 0.25]", got)
	}
	if resp.DanglingMass != 0.75 {
		t.Errorf("dangling mass = %g, want 0.75", resp.DanglingMass)
	}
}

// TestRankLocalSingleAndEmptySites covers the degenerate shard sizes
// the in-process pipeline special-cases.
func TestRankLocalSingleAndEmptySites(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer w.Close()
	enc, dec, _ := dial(t, addr)

	load := &wire.Request{Kind: wire.KindLoad, NumSites: 3, Shards: []wire.SiteShard{
		{Site: 0, NumDocs: 1},
		{Site: 1, NumDocs: 0},
		{Site: 2, NumDocs: 2, Edges: []wire.Edge{{From: 0, To: 1, Weight: 1}, {From: 1, To: 0, Weight: 1}}},
	}}
	if resp := roundTrip(t, enc, dec, load); resp.Err != "" {
		t.Fatalf("load: %s", resp.Err)
	}
	resp := roundTrip(t, enc, dec, &wire.Request{Kind: wire.KindRankLocal})
	if resp.Err != "" {
		t.Fatalf("rank local: %s", resp.Err)
	}
	if len(resp.Local) != 3 {
		t.Fatalf("got %d local ranks, want 3", len(resp.Local))
	}
	bySite := map[int][]float64{}
	for _, lr := range resp.Local {
		bySite[lr.Site] = lr.Scores
	}
	if got := bySite[0]; len(got) != 1 || got[0] != 1 {
		t.Errorf("single-doc site rank = %v, want [1]", got)
	}
	if got := bySite[1]; len(got) != 0 {
		t.Errorf("empty site rank = %v, want []", got)
	}
	if got := bySite[2]; len(got) != 2 {
		t.Errorf("two-doc site rank = %v, want 2 scores", got)
	}
}
