package worker

import (
	"context"
	"net"
	"testing"
	"time"

	"lmmrank/internal/dist/wire"
)

// TestShutdownDrainsIdleConnections is the core drain guarantee: a
// graceful Shutdown must complete even while clients hold open, idle
// connections (each parked in a blocking Decode on the worker side) —
// the worker fails those reads, closes the sessions and returns.
func TestShutdownDrainsIdleConnections(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i := 0; i < 3; i++ {
		dial(t, addr) // idle protocol connections, never send a byte
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with idle connections: %v", err)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Error("worker still accepting after Shutdown")
	}
	if err := w.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	if _, err := w.Start("127.0.0.1:0"); err == nil {
		t.Error("Start after Shutdown succeeded")
	}
}

// TestShutdownCompletesInFlightExchange pins the "stop accepting, finish
// what you started" half: a request already decoded when Shutdown
// begins still gets its response before the connection closes.
func TestShutdownCompletesInFlightExchange(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	enc, dec, _ := dial(t, addr)
	if err := enc.Encode(&wire.Request{Kind: wire.KindPing}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Give the worker time to decode the request so the drain finds it
	// in flight rather than parked in the pre-request read.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("the in-flight ping's response was lost to the drain: %v", err)
	}
	if resp.Err != "" {
		t.Errorf("ping during drain: %s", resp.Err)
	}
	// The drained connection is done: the next request gets no answer.
	if err := enc.Encode(&wire.Request{Kind: wire.KindPing}); err == nil {
		var again wire.Response
		if err := dec.Decode(&again); err == nil {
			t.Error("worker answered a request after draining the connection")
		}
	}
}

// TestShutdownExpiredContextForcesClose covers the impatient path: a
// context that gives the drain no time falls back to a hard Close.
func TestShutdownExpiredContextForcesClose(t *testing.T) {
	w := New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	dial(t, addr)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Even a pre-cancelled context must leave the worker fully stopped.
	_ = w.Shutdown(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := net.Dial("tcp", addr); err != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("worker still accepting after Shutdown with an expired context")
}
