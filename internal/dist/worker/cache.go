package worker

import (
	"container/list"
	"sync"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
)

// cacheEntry is one cached shard: the rebuilt local subgraph, its row of
// the site chain, and a lazily built solver whose scratch is reused by
// every RankLocal that hits this entry. Entries are immutable after
// construction except for the solver, which mu guards — two sessions
// (two coordinators sharing the worker) may rank the same entry
// concurrently, and the solver is not goroutine-safe.
type cacheEntry struct {
	digest  wire.Digest
	numDocs int
	sub     *graph.Digraph
	rowCols []int
	rowVals []float64

	mu     sync.Mutex
	solver *lmm.SubgraphSolver
}

// rank computes the entry's local DocRank, building the solver on first
// use and cloning the result out of the solver's scratch (the clone is
// what crosses sessions and the wire; the scratch stays entry-private).
func (e *cacheEntry) rank(cfg lmm.WebConfig) (matrix.Vector, int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.solver == nil {
		e.solver = lmm.NewSubgraphSolver(e.sub)
	}
	scores, iters, err := e.solver.Rank(cfg)
	if err != nil {
		return nil, 0, err
	}
	return scores.Clone(), iters, nil
}

// shardCache is the worker-global digest-keyed store that makes
// repeated coordinator runs cheap: shards (and site chains) survive
// KindReset and even coordinator reconnects, so an unchanged graph is
// never re-shipped and its solvers keep their warm scratch.
//
// Shard retention is bounded by aggregate document count (maxDocs) with
// least-recently-used eviction; chains by entry count. Evicting an
// entry does not invalidate sessions already holding it — they keep
// their pointer — it only stops future Offer hits.
type shardCache struct {
	mu        sync.Mutex
	shards    map[wire.Digest]*list.Element // values: *cacheEntry
	shardLRU  *list.List                    // front = most recently used
	totalDocs int
	maxDocs   int

	chains    map[wire.Digest]*list.Element // values: *chainEntry
	chainLRU  *list.List
	maxChains int
}

// chainEntry pairs a validated site chain with its digest.
type chainEntry struct {
	digest wire.Digest
	chain  *wire.SiteChain
}

func newShardCache() *shardCache {
	return &shardCache{
		shards:    make(map[wire.Digest]*list.Element),
		shardLRU:  list.New(),
		maxDocs:   wire.MaxShardDocs,
		chains:    make(map[wire.Digest]*list.Element),
		chainLRU:  list.New(),
		maxChains: 4,
	}
}

// lookupShard returns the cached entry for digest (touching its LRU
// position) or nil.
func (c *shardCache) lookupShard(d wire.Digest) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.shards[d]
	if !ok {
		return nil
	}
	c.shardLRU.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// addShard caches the entry under its digest, evicting least-recently
// used entries until the document budget holds. An entry already cached
// under the same digest is returned instead (the caller's duplicate is
// dropped), so identical shards across sites and sessions share one
// subgraph and one warm solver.
func (c *shardCache) addShard(e *cacheEntry) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.shards[e.digest]; ok {
		c.shardLRU.MoveToFront(el)
		return el.Value.(*cacheEntry)
	}
	c.shards[e.digest] = c.shardLRU.PushFront(e)
	c.totalDocs += e.numDocs
	for c.totalDocs > c.maxDocs && c.shardLRU.Len() > 1 {
		oldest := c.shardLRU.Back()
		old := oldest.Value.(*cacheEntry)
		c.shardLRU.Remove(oldest)
		delete(c.shards, old.digest)
		c.totalDocs -= old.numDocs
	}
	return e
}

// lookupChain returns the cached chain for digest (touching LRU) or nil.
func (c *shardCache) lookupChain(d wire.Digest) *wire.SiteChain {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.chains[d]
	if !ok {
		return nil
	}
	c.chainLRU.MoveToFront(el)
	return el.Value.(*chainEntry).chain
}

// addChain caches a validated chain, keeping at most maxChains.
func (c *shardCache) addChain(d wire.Digest, chain *wire.SiteChain) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.chains[d]; ok {
		c.chainLRU.MoveToFront(el)
		return
	}
	c.chains[d] = c.chainLRU.PushFront(&chainEntry{digest: d, chain: chain})
	for c.chainLRU.Len() > c.maxChains {
		oldest := c.chainLRU.Back()
		c.chainLRU.Remove(oldest)
		delete(c.chains, oldest.Value.(*chainEntry).digest)
	}
}

// gauges reports the cache's current occupancy for Stats.
func (c *shardCache) gauges() (entries, docs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shardLRU.Len(), c.totalDocs
}
