// Package worker implements the peer side of the distributed Layered
// Method: a gob-over-TCP server that hosts site shards, computes their
// local DocRanks with the same kernels as the in-process pipeline, and
// answers SiteRank power rounds — one row-partition step at a time, or
// whole batches of rounds against a replicated site chain — the paper's
// Web server participating in decentralized ranking.
//
// Shards are held in a worker-global, digest-keyed cache that survives
// session resets and coordinator reconnects: a coordinator re-ranking an
// unchanged graph negotiates cache hits (KindOffer) instead of
// re-shipping subgraphs, and each cached shard keeps a warm
// lmm.SubgraphSolver so repeated runs also skip rebuilding transition
// matrices and solver scratch.
package worker

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// Stats summarizes a worker's transport and cache state since New.
type Stats struct {
	// Messages counts protocol requests served.
	Messages uint64
	// BytesReceived and BytesSent count raw socket traffic.
	BytesReceived uint64
	BytesSent     uint64
	// CacheEntries and CacheDocs gauge the digest-keyed shard cache:
	// distinct shards held and their aggregate document count.
	CacheEntries int
	CacheDocs    int
}

// shard is one hosted site of a session: the site ID under which this
// coordinator addresses it, and the cached content behind it.
type shard struct {
	site  int
	entry *cacheEntry
}

// session is the per-connection state of one coordinator: the shards it
// activated and the site chain it shipped. Scoping state to the
// connection isolates concurrent coordinators from each other — two
// fleets' runs over the same worker cannot clobber one another's shards
// (they can, by design, share cache entries).
type session struct {
	shards   map[int]*shard
	numSites int
	// chain is the replicated site chain for KindBatchRounds, nil until
	// a Load ships or activates one.
	chain *wire.SiteChain
	// totalDocs tracks the aggregate hosted document count, bounded by
	// wire.MaxShardDocs across the whole session — per-request bounds
	// alone would let a looping client accumulate unbounded memory.
	totalDocs int
	// sorted caches sortedShards; nil after any shard mutation.
	sorted []*shard
	// asyncEpoch is the current asynchronous accumulator generation and
	// asyncSweeps the KindAsyncUpdate sweeps served in it; KindAsyncAck
	// reports the count and retires the epoch. Within a run epochs only
	// move forward, so a sweep duplicated past a drain cannot feed a
	// retired accumulator; KindReset rewinds them to zero with the rest
	// of the session, since each run numbers its epochs from one.
	asyncEpoch  uint64
	asyncSweeps int
}

// sortedShards returns the loaded shards in ascending site order, the
// fixed iteration order both compute handlers rely on (map order would
// vary float summation and result ordering across runs). The slice is
// cached until the next Load/Reset so power rounds skip the re-sort
// (each round still allocates its partial vector).
func (s *session) sortedShards() []*shard {
	if s.sorted != nil {
		return s.sorted
	}
	out := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		out = append(out, sh)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].site < out[b].site })
	s.sorted = out
	return out
}

// clear drops all session state (the global cache is untouched — that
// is the point of KindReset: a new run starts clean but stays warm).
// The async epoch rewinds too: the coordinator numbers accumulator
// generations from one within each run, and requests are serialized
// per connection, so nothing from the drained run can still arrive.
func (s *session) clear() {
	s.shards = make(map[int]*shard)
	s.numSites = 0
	s.totalDocs = 0
	s.chain = nil
	s.sorted = nil
	s.asyncEpoch = 0
	s.asyncSweeps = 0
}

// Worker is a distributed-ranking peer. Zero workers are not useful:
// construct with New, serve with Start, stop with Close (idempotent).
type Worker struct {
	counters wire.Counters
	cache    *shardCache

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool

	wg sync.WaitGroup
}

// New returns an idle worker holding no sites.
func New() *Worker {
	return &Worker{
		cache: newShardCache(),
		conns: make(map[net.Conn]struct{}),
	}
}

// Start listens on the given TCP address ("host:port"; port 0 picks a
// free one) and serves coordinator connections until Close. It returns
// the bound address, which is how loopback clusters learn their ports.
func (w *Worker) Start(listen string) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.draining {
		return "", fmt.Errorf("worker: already closed")
	}
	if w.ln != nil {
		return "", fmt.Errorf("worker: already started")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", fmt.Errorf("worker: listen %s: %w", listen, err)
	}
	w.ln = ln
	w.wg.Add(1)
	go w.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, drops every open connection and waits for
// the serving goroutines to drain. Calling Close again is a no-op.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	ln := w.ln
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}

// Shutdown stops the worker gracefully: it closes the listener (no new
// coordinators), lets every in-flight exchange finish and its response
// reach the wire, then hangs up the drained connections. Sessions
// blocked waiting for their coordinator's next request are unblocked
// immediately — there is nothing in flight to preserve. If ctx expires
// before the drain completes, Shutdown falls back to the abrupt Close
// and returns ctx.Err(). Calling Shutdown or Close again afterward is a
// no-op.
func (w *Worker) Shutdown(ctx context.Context) error {
	w.mu.Lock()
	if w.closed || w.draining {
		w.mu.Unlock()
		return nil
	}
	w.draining = true
	ln := w.ln
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	// A past read deadline fails the next blocking read without touching
	// writes: a handler mid-request still delivers its response, and the
	// serve loop exits at its next Decode (or on its post-response
	// draining check) instead of waiting for the coordinator to hang up.
	for _, c := range conns {
		c.SetReadDeadline(time.Unix(1, 0))
	}
	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		w.mu.Lock()
		w.closed = true
		w.mu.Unlock()
		return err
	case <-ctx.Done():
		w.Close()
		return ctx.Err()
	}
}

// Stats returns a snapshot of the transport counters and cache gauges.
func (w *Worker) Stats() Stats {
	entries, docs := w.cache.gauges()
	return Stats{
		Messages:      w.counters.Messages(),
		BytesReceived: w.counters.BytesReceived(),
		BytesSent:     w.counters.BytesSent(),
		CacheEntries:  entries,
		CacheDocs:     docs,
	}
}

func (w *Worker) acceptLoop(ln net.Listener) {
	defer w.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed || w.draining
			w.mu.Unlock()
			if closed {
				return
			}
			// Transient accept failures (e.g. EMFILE under a connection
			// burst) must not silently kill serving while the process
			// stays up; retry with bounded backoff, as net/http does.
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 5 * time.Millisecond
		w.mu.Lock()
		if w.closed || w.draining {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

func (w *Worker) serveConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()

	wc := wire.NewConn(conn, &w.counters)
	sess := &session{}
	sess.clear()
	for {
		var req wire.Request
		if err := wc.Dec.Decode(&req); err != nil {
			// EOF and closed-connection errors are the coordinator
			// hanging up; anything else is equally terminal for a
			// strict request/response stream.
			_ = err
			return
		}
		w.counters.AddMessage()
		resp := w.safeHandle(sess, &req)
		if err := wc.Enc.Encode(resp); err != nil {
			return
		}
		w.mu.Lock()
		draining := w.draining
		w.mu.Unlock()
		if draining {
			// Graceful shutdown: the in-flight exchange just completed;
			// end the session instead of accepting another request.
			return
		}
	}
}

// safeHandle converts a handler panic into an error response, so one
// session's pathological request cannot take down the process (and the
// other coordinators' sessions with it). The request/response framing
// survives, keeping the connection usable.
func (w *Worker) safeHandle(sess *session, req *wire.Request) (resp *wire.Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &wire.Response{Err: fmt.Sprintf("worker: request kind %d panicked: %v", req.Kind, r)}
		}
	}()
	return w.handle(sess, req)
}

// handle dispatches one request. Requests of one connection arrive
// sequentially, so sess needs no locking (the shared cache locks
// itself).
func (w *Worker) handle(sess *session, req *wire.Request) *wire.Response {
	switch req.Kind {
	case wire.KindPing:
		return &wire.Response{}
	case wire.KindReset:
		sess.clear()
		return &wire.Response{}
	case wire.KindOffer:
		return w.handleOffer(req)
	case wire.KindLoad:
		return w.handleLoad(sess, req)
	case wire.KindRankLocal:
		return handleRankLocal(sess, req)
	case wire.KindPowerRound:
		return handlePowerRound(sess, req)
	case wire.KindBatchRounds:
		return handleBatchRounds(sess, req)
	case wire.KindAsyncUpdate:
		return handleAsyncUpdate(sess, req)
	case wire.KindAsyncAck:
		return handleAsyncAck(sess, req)
	case wire.KindUnload:
		return handleUnload(sess, req)
	default:
		return &wire.Response{Err: fmt.Sprintf("worker: unknown request kind %d", req.Kind)}
	}
}

// handleOffer answers the cache negotiation: which of the offered
// digests this worker already holds. It only reads the global cache —
// activation into the session happens at the following KindLoad, which
// re-checks (an entry can be evicted between the two).
func (w *Worker) handleOffer(req *wire.Request) *wire.Response {
	resp := &wire.Response{}
	for _, ref := range req.Refs {
		if w.cache.lookupShard(ref.Digest) != nil {
			resp.HaveSites = append(resp.HaveSites, ref.Site)
		}
	}
	if req.HasChain && w.cache.lookupChain(req.ChainDigest) != nil {
		resp.HaveChain = true
	}
	return resp
}

// buildEntry validates one fully shipped shard and turns it into a
// cache entry (deduplicating against the global cache by digest, so an
// identical shard shipped twice — or hosted under two site IDs — shares
// one subgraph and one warm solver).
func (w *Worker) buildEntry(s *wire.SiteShard, numSites int) (*cacheEntry, error) {
	if s.NumDocs < 0 || s.Site < 0 || s.Site >= numSites {
		return nil, fmt.Errorf("invalid shard (site %d of %d, %d docs)", s.Site, numSites, s.NumDocs)
	}
	digest := s.ContentDigest()
	if e := w.cache.lookupShard(digest); e != nil {
		// The hit's content was validated when first cached — but against
		// that load's site space. Re-check its row columns against this
		// one, or a shard cached under a larger graph could smuggle
		// out-of-range columns past the power-round's branch-free loop.
		for _, col := range e.rowCols {
			if col < 0 || col >= numSites {
				return nil, fmt.Errorf("site %d row column %d out of range", s.Site, col)
			}
		}
		return e, nil
	}
	sub := graph.NewDigraph(s.NumDocs)
	for _, e := range s.Edges {
		if e.From < 0 || e.From >= s.NumDocs || e.To < 0 || e.To >= s.NumDocs ||
			!(e.Weight > 0) || math.IsInf(e.Weight, 0) {
			return nil, fmt.Errorf("site %d has invalid edge %d→%d (w=%g)", s.Site, e.From, e.To, e.Weight)
		}
		sub.AddEdge(e.From, e.To, e.Weight)
	}
	sub.Dedupe()
	if len(s.RowCols) != len(s.RowVals) {
		return nil, fmt.Errorf("site %d row arity mismatch", s.Site)
	}
	rowSum := 0.0
	for k, col := range s.RowCols {
		if col < 0 || col >= numSites {
			return nil, fmt.Errorf("site %d row column %d out of range", s.Site, col)
		}
		v := s.RowVals[k]
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("site %d row value %g not a probability", s.Site, v)
		}
		rowSum += v
	}
	if len(s.RowCols) > 0 && math.Abs(rowSum-1) > 1e-6 {
		return nil, fmt.Errorf("site %d row sums to %g, want 1", s.Site, rowSum)
	}
	return w.cache.addShard(&cacheEntry{
		digest:  digest,
		numDocs: s.NumDocs,
		sub:     sub,
		rowCols: s.RowCols,
		rowVals: s.RowVals,
	}), nil
}

// validateChain checks a fully shipped site chain before it may enter
// the cache: a well-formed CSR whose non-empty rows are probability
// distributions over the site space.
func validateChain(c *wire.SiteChain, numSites int) error {
	if c.NumSites != numSites {
		return fmt.Errorf("chain over %d sites, want %d", c.NumSites, numSites)
	}
	if len(c.RowPtr) != numSites+1 || len(c.Cols) != len(c.Vals) {
		return fmt.Errorf("chain shape invalid (%d rowptr, %d cols, %d vals)",
			len(c.RowPtr), len(c.Cols), len(c.Vals))
	}
	if numSites > 0 && (c.RowPtr[0] != 0 || c.RowPtr[numSites] != len(c.Cols)) {
		return fmt.Errorf("chain rowptr does not span the value arrays")
	}
	for s := 0; s < numSites; s++ {
		lo, hi := c.RowPtr[s], c.RowPtr[s+1]
		if lo > hi || lo < 0 || hi > len(c.Cols) {
			return fmt.Errorf("chain row %d spans [%d,%d)", s, lo, hi)
		}
		rowSum := 0.0
		for k := lo; k < hi; k++ {
			if col := c.Cols[k]; col < 0 || col >= numSites {
				return fmt.Errorf("chain row %d column %d out of range", s, col)
			}
			v := c.Vals[k]
			if !(v > 0) || math.IsInf(v, 0) {
				return fmt.Errorf("chain row %d value %g not a probability", s, v)
			}
			rowSum += v
		}
		if hi > lo && math.Abs(rowSum-1) > 1e-6 {
			return fmt.Errorf("chain row %d sums to %g, want 1", s, rowSum)
		}
	}
	return nil
}

func (w *Worker) handleLoad(sess *session, req *wire.Request) *wire.Response {
	if req.NumSites < 0 || req.NumSites > wire.MaxSites {
		return &wire.Response{Err: fmt.Sprintf("worker: site space %d outside [0, %d]", req.NumSites, wire.MaxSites)}
	}
	// Compressed shards are expanded (bounded) before validation; the
	// validation below treats them exactly like plainly shipped ones.
	fullShards := req.Shards
	if len(req.ShardsZ) > 0 {
		unpacked, err := wire.DecompressShards(req.ShardsZ)
		if err != nil {
			return &wire.Response{Err: "worker: " + err.Error()}
		}
		fullShards = append(fullShards[:len(fullShards):len(fullShards)], unpacked...)
	}
	type placed struct {
		site  int
		entry *cacheEntry
	}
	loaded := make([]placed, 0, len(fullShards)+len(req.Cached))
	resp := &wire.Response{}
	// Loads into an unchanged site space accumulate onto the session's
	// existing shards, so the memory bound must count those too. (A
	// conservative count: shards replaced by this request are counted
	// twice; Reset between runs keeps the bound exact in practice.)
	totalDocs := sess.totalDocs
	if req.NumSites != sess.numSites {
		totalDocs = 0
	}
	admit := func(site int, e *cacheEntry) *wire.Response {
		// Bound the aggregate before accepting, capping how much memory
		// a small request can claim (see wire.MaxShardDocs).
		totalDocs += e.numDocs
		if totalDocs > wire.MaxShardDocs {
			return &wire.Response{Err: fmt.Sprintf("worker: load exceeds %d aggregate docs", wire.MaxShardDocs)}
		}
		loaded = append(loaded, placed{site: site, entry: e})
		return nil
	}
	for i := range fullShards {
		e, err := w.buildEntry(&fullShards[i], req.NumSites)
		if err != nil {
			return &wire.Response{Err: "worker: " + err.Error()}
		}
		if errResp := admit(fullShards[i].Site, e); errResp != nil {
			return errResp
		}
	}
	// Cached refs activate global-cache entries into this session. An
	// entry evicted since the offer is reported back in Missing rather
	// than failing the load — the coordinator re-ships those in full.
	for _, ref := range req.Cached {
		if ref.Site < 0 || ref.Site >= req.NumSites {
			return &wire.Response{Err: fmt.Sprintf("worker: cached site %d of %d out of range", ref.Site, req.NumSites)}
		}
		e := w.cache.lookupShard(ref.Digest)
		if e == nil {
			resp.Missing = append(resp.Missing, ref.Site)
			continue
		}
		// The entry's row columns were validated against the site space
		// it was first loaded into; re-check against this one (a cache
		// hit from a larger graph must not index past this iterate).
		ok := true
		for _, col := range e.rowCols {
			if col >= req.NumSites {
				ok = false
				break
			}
		}
		if !ok {
			resp.Missing = append(resp.Missing, ref.Site)
			continue
		}
		if errResp := admit(ref.Site, e); errResp != nil {
			return errResp
		}
	}
	var chain *wire.SiteChain
	if req.Chain != nil {
		if err := validateChain(req.Chain, req.NumSites); err != nil {
			return &wire.Response{Err: "worker: " + err.Error()}
		}
		chain = req.Chain
		w.cache.addChain(chain.ContentDigest(), chain)
	} else if req.HasChain {
		chain = w.cache.lookupChain(req.ChainDigest)
		if chain == nil || chain.NumSites != req.NumSites {
			chain = nil
			resp.MissingChain = true
		}
	}
	if req.NumSites != sess.numSites {
		// A new site-space dimension means a new graph: stale shards
		// from the previous one must not survive (their site IDs could
		// index past the new dimension).
		sess.clear()
		sess.numSites = req.NumSites
	}
	for _, p := range loaded {
		if old, ok := sess.shards[p.site]; ok {
			sess.totalDocs -= old.entry.numDocs
		}
		sess.shards[p.site] = &shard{site: p.site, entry: p.entry}
		sess.totalDocs += p.entry.numDocs
	}
	if chain != nil {
		sess.chain = chain
	}
	sess.sorted = nil
	return resp
}

// handleUnload drops the listed sites from this session; the digest
// cache keeps their shards, so a later Offer for the same content still
// hits. The coordinator unloads sites it rebalances back to a rejoined
// worker — KindPowerRound covers every loaded shard, so a site left in
// two sessions would have its chain row reduced twice. Sites not loaded
// are ignored (a loss during readmission can legitimately retry an
// unload that partially applied).
func handleUnload(sess *session, req *wire.Request) *wire.Response {
	for _, s := range req.Sites {
		if sh, ok := sess.shards[s]; ok {
			sess.totalDocs -= sh.entry.numDocs
			delete(sess.shards, s)
			sess.sorted = nil
		}
	}
	return &wire.Response{}
}

// handleRankLocal runs step 3 of §3.2 for the requested sites (all
// hosted sites when Request.Sites is empty), in parallel across the
// worker's cores — this is the computation the paper pushes out of the
// central server and onto the peers. Each shard ranks through its cache
// entry's warm SubgraphSolver, so repeated runs reuse transition
// matrices and solver scratch.
func handleRankLocal(sess *session, req *wire.Request) *wire.Response {
	var shards []*shard
	if len(req.Sites) == 0 {
		shards = sess.sortedShards()
	} else {
		shards = make([]*shard, 0, len(req.Sites))
		for _, s := range req.Sites {
			sh, ok := sess.shards[s]
			if !ok {
				return &wire.Response{Err: fmt.Sprintf("worker: rank local of site %d not loaded", s)}
			}
			shards = append(shards, sh)
		}
		sort.Slice(shards, func(a, b int) bool { return shards[a].site < shards[b].site })
	}
	cfg := lmm.WebConfig{Damping: req.Damping, Tol: req.Tol, MaxIter: req.MaxIter}
	out := make([]wire.LocalRank, len(shards))
	errs := make([]error, len(shards))
	lmm.ForEachParallel(len(shards), 0, func(i int) {
		scores, iters, err := shards[i].entry.rank(cfg)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = wire.LocalRank{Site: shards[i].site, Scores: scores, Iterations: iters}
	})
	for i, err := range errs {
		if err != nil {
			return &wire.Response{Err: fmt.Sprintf("worker: local docrank of site %d: %v", shards[i].site, err)}
		}
	}
	return &wire.Response{Local: out}
}

// handlePowerRound computes this worker's contribution to one SiteRank
// power step: partial[t] = Σ_{s owned} x[s]·M(G_S)[s,t], plus the
// iterate mass on owned dangling rows. The coordinator sums partials
// across the fleet and applies the damping/teleport correction, so the
// distributed iteration reproduces the central Mˆ power method.
func handlePowerRound(sess *session, req *wire.Request) *wire.Response {
	if req.NumSites != sess.numSites {
		return &wire.Response{Err: fmt.Sprintf("worker: power round over %d sites but %d loaded",
			req.NumSites, sess.numSites)}
	}
	shards := sess.sortedShards()

	if len(req.X) != req.NumSites {
		return &wire.Response{Err: fmt.Sprintf("worker: iterate length %d vs %d sites", len(req.X), req.NumSites)}
	}
	partial := make([]float64, req.NumSites)
	var dangling float64
	for _, sh := range shards {
		xs := req.X[sh.site]
		if len(sh.entry.rowCols) == 0 {
			dangling += xs
			continue
		}
		// Columns were range-checked at load time; the inner loop
		// stays branch-free.
		for k, col := range sh.entry.rowCols {
			partial[col] += xs * sh.entry.rowVals[k]
		}
	}
	return &wire.Response{Partial: partial, DanglingMass: dangling}
}

// handleAsyncUpdate serves one barrier-free SiteRank sweep: the exact
// row-partition arithmetic of handlePowerRound plus the iterate mass on
// the owned sites — the asynchronous merge combines partials taken from
// different snapshots, so each contribution must carry its own mass for
// the teleport coefficient instead of relying on a shared Σx. The
// iterate is additionally checked finite: asynchronous iterates are
// merged under accumulator state the coordinator keeps across sweeps,
// where a NaN would propagate silently instead of failing a reduce.
func handleAsyncUpdate(sess *session, req *wire.Request) *wire.Response {
	if req.Epoch < sess.asyncEpoch {
		return &wire.Response{Err: fmt.Sprintf("worker: async sweep for drained epoch %d (current %d)",
			req.Epoch, sess.asyncEpoch)}
	}
	if req.NumSites != sess.numSites {
		return &wire.Response{Err: fmt.Sprintf("worker: async sweep over %d sites but %d loaded",
			req.NumSites, sess.numSites)}
	}
	if len(req.X) != req.NumSites {
		return &wire.Response{Err: fmt.Sprintf("worker: iterate length %d vs %d sites", len(req.X), req.NumSites)}
	}
	for _, v := range req.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &wire.Response{Err: "worker: async sweep iterate is not finite"}
		}
	}
	if req.Epoch > sess.asyncEpoch {
		sess.asyncEpoch = req.Epoch
		sess.asyncSweeps = 0
	}
	partial := make([]float64, req.NumSites)
	var dangling, mass float64
	for _, sh := range sess.sortedShards() {
		xs := req.X[sh.site]
		mass += xs
		if len(sh.entry.rowCols) == 0 {
			dangling += xs
			continue
		}
		for k, col := range sh.entry.rowCols {
			partial[col] += xs * sh.entry.rowVals[k]
		}
	}
	sess.asyncSweeps++
	return &wire.Response{Partial: partial, DanglingMass: dangling, Mass: mass, Epoch: req.Epoch}
}

// handleAsyncAck drains one asynchronous epoch: it reports the sweeps
// served under it (Response.Rounds) and retires every epoch up to and
// including the acknowledged one, so a sweep delayed past the drain is
// refused rather than double-counted. Acks for already-retired epochs
// are idempotent no-ops — a duplicated ack must not poison the session.
func handleAsyncAck(sess *session, req *wire.Request) *wire.Response {
	resp := &wire.Response{Epoch: req.Epoch}
	if req.Epoch == sess.asyncEpoch {
		resp.Rounds = sess.asyncSweeps
	}
	if req.Epoch >= sess.asyncEpoch {
		sess.asyncEpoch = req.Epoch + 1
		sess.asyncSweeps = 0
	}
	return resp
}

// maxBatchRounds bounds the CPU one KindBatchRounds request can claim;
// generous next to matrix.DefaultMaxIter but finite for hostile peers.
const maxBatchRounds = 1 << 20

// handleBatchRounds runs up to req.Rounds damped SiteRank power rounds
// against the session's replicated chain, stopping early on
// convergence. Each round applies exactly the arithmetic of the
// coordinator's unbatched reduce — y = f·(x'M) + (f·danglingMass +
// (1−f)·Σx)·v with v uniform, then L1 normalization — so batched and
// unbatched runs agree to summation-order rounding (<1e-9), while K
// rounds cost one exchange instead of K.
func handleBatchRounds(sess *session, req *wire.Request) *wire.Response {
	if sess.chain == nil {
		return &wire.Response{Err: "worker: batch rounds without a loaded site chain"}
	}
	if req.NumSites != sess.numSites {
		return &wire.Response{Err: fmt.Sprintf("worker: batch rounds over %d sites but %d loaded",
			req.NumSites, sess.numSites)}
	}
	ns := req.NumSites
	if len(req.X) != ns {
		return &wire.Response{Err: fmt.Sprintf("worker: iterate length %d vs %d sites", len(req.X), ns)}
	}
	if req.Rounds < 1 || req.Rounds > maxBatchRounds {
		return &wire.Response{Err: fmt.Sprintf("worker: round budget %d outside [1, %d]", req.Rounds, maxBatchRounds)}
	}
	f := req.Damping
	if f == 0 {
		f = pagerank.DefaultDamping
	}
	if !(f > 0 && f < 1) {
		return &wire.Response{Err: fmt.Sprintf("worker: damping %g outside (0,1)", f)}
	}
	tol := req.Tol
	if tol == 0 {
		tol = matrix.DefaultTol
	}
	// An explicit teleport distribution (site-layer personalization)
	// replaces the uniform vector in the rank-one correction. It is
	// renormalized into a private copy so the arithmetic matches the
	// coordinator's central path regardless of client rounding.
	var tele matrix.Vector
	if len(req.V) > 0 {
		if len(req.V) != ns {
			return &wire.Response{Err: fmt.Sprintf("worker: teleport length %d vs %d sites", len(req.V), ns)}
		}
		sum := 0.0
		for _, v := range req.V {
			if !(v >= 0) || math.IsInf(v, 0) {
				return &wire.Response{Err: fmt.Sprintf("worker: teleport value %g not a probability", v)}
			}
			sum += v
		}
		if !(sum > 0) || math.IsInf(sum, 0) {
			return &wire.Response{Err: fmt.Sprintf("worker: teleport sums to %g", sum)}
		}
		tele = make(matrix.Vector, ns)
		for i, v := range req.V {
			tele[i] = v / sum
		}
	}
	chain := sess.chain
	uniform := 1.0 / float64(ns)
	x := matrix.Vector(req.X)
	next := matrix.NewVector(ns)
	var (
		rounds    int
		residual  float64
		converged bool
	)
	for r := 1; r <= req.Rounds; r++ {
		next.Fill(0)
		var dangMass float64
		for s := 0; s < ns; s++ {
			xs := x[s]
			lo, hi := chain.RowPtr[s], chain.RowPtr[s+1]
			if lo == hi {
				dangMass += xs
				continue
			}
			for k := lo; k < hi; k++ {
				next[chain.Cols[k]] += xs * chain.Vals[k]
			}
		}
		coeff := f*dangMass + (1-f)*x.Sum()
		if tele == nil {
			for t := range next {
				next[t] = f*next[t] + coeff*uniform
			}
		} else {
			for t := range next {
				next[t] = f*next[t] + coeff*tele[t]
			}
		}
		next.Normalize()
		residual = next.L1Diff(x)
		x, next = next, x
		rounds = r
		if residual <= tol {
			converged = true
			break
		}
	}
	return &wire.Response{X: x, Rounds: rounds, Residual: residual, Converged: converged}
}

var _ io.Closer = (*Worker)(nil)
