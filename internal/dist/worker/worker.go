// Package worker implements the peer side of the distributed Layered
// Method: a gob-over-TCP server that hosts site shards, computes their
// local DocRanks with the same kernels as the in-process pipeline, and
// answers SiteRank power rounds over the rows of the site chain it owns
// — the paper's Web server participating in decentralized ranking.
package worker

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
)

// Stats summarizes a worker's transport activity since New.
type Stats struct {
	// Messages counts protocol requests served.
	Messages uint64
	// BytesReceived and BytesSent count raw socket traffic.
	BytesReceived uint64
	BytesSent     uint64
}

// shard is one hosted site: its local subgraph, ready to rank, and its
// row of the site transition chain, ready to multiply.
type shard struct {
	site    int
	sub     *graph.Digraph
	rowCols []int
	rowVals []float64
}

// session is the per-connection state of one coordinator: the shards
// it loaded. Scoping state to the connection isolates concurrent
// coordinators from each other — two fleets' runs over the same worker
// cannot clobber one another's shards.
type session struct {
	shards   map[int]*shard
	numSites int
	// totalDocs tracks the aggregate hosted document count, bounded by
	// wire.MaxShardDocs across the whole session — per-request bounds
	// alone would let a looping client accumulate unbounded memory.
	totalDocs int
	// sorted caches sortedShards; nil after any shard mutation.
	sorted []*shard
}

// sortedShards returns the loaded shards in ascending site order, the
// fixed iteration order both compute handlers rely on (map order would
// vary float summation and result ordering across runs). The slice is
// cached until the next Load/Reset so power rounds skip the re-sort
// (each round still allocates its partial vector).
func (s *session) sortedShards() []*shard {
	if s.sorted != nil {
		return s.sorted
	}
	out := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		out = append(out, sh)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].site < out[b].site })
	s.sorted = out
	return out
}

// Worker is a distributed-ranking peer. Zero workers are not useful:
// construct with New, serve with Start, stop with Close (idempotent).
type Worker struct {
	counters wire.Counters

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// New returns an idle worker holding no sites.
func New() *Worker {
	return &Worker{
		conns: make(map[net.Conn]struct{}),
	}
}

// Start listens on the given TCP address ("host:port"; port 0 picks a
// free one) and serves coordinator connections until Close. It returns
// the bound address, which is how loopback clusters learn their ports.
func (w *Worker) Start(listen string) (string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return "", errors.New("worker: already closed")
	}
	if w.ln != nil {
		return "", errors.New("worker: already started")
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", fmt.Errorf("worker: listen %s: %w", listen, err)
	}
	w.ln = ln
	w.wg.Add(1)
	go w.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, drops every open connection and waits for
// the serving goroutines to drain. Calling Close again is a no-op.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	ln := w.ln
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}

// Stats returns a snapshot of the transport counters.
func (w *Worker) Stats() Stats {
	return Stats{
		Messages:      w.counters.Messages(),
		BytesReceived: w.counters.BytesReceived(),
		BytesSent:     w.counters.BytesSent(),
	}
}

func (w *Worker) acceptLoop(ln net.Listener) {
	defer w.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return
			}
			// Transient accept failures (e.g. EMFILE under a connection
			// burst) must not silently kill serving while the process
			// stays up; retry with bounded backoff, as net/http does.
			time.Sleep(backoff)
			if backoff < time.Second {
				backoff *= 2
			}
			continue
		}
		backoff = 5 * time.Millisecond
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

func (w *Worker) serveConn(conn net.Conn) {
	defer w.wg.Done()
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.conns, conn)
		w.mu.Unlock()
	}()

	wc := wire.NewConn(conn, &w.counters)
	sess := &session{shards: make(map[int]*shard)}
	for {
		var req wire.Request
		if err := wc.Dec.Decode(&req); err != nil {
			// EOF and closed-connection errors are the coordinator
			// hanging up; anything else is equally terminal for a
			// strict request/response stream.
			_ = err
			return
		}
		w.counters.AddMessage()
		resp := w.safeHandle(sess, &req)
		if err := wc.Enc.Encode(resp); err != nil {
			return
		}
	}
}

// safeHandle converts a handler panic into an error response, so one
// session's pathological request cannot take down the process (and the
// other coordinators' sessions with it). The request/response framing
// survives, keeping the connection usable.
func (w *Worker) safeHandle(sess *session, req *wire.Request) (resp *wire.Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &wire.Response{Err: fmt.Sprintf("worker: request kind %d panicked: %v", req.Kind, r)}
		}
	}()
	return w.handle(sess, req)
}

// handle dispatches one request. Requests of one connection arrive
// sequentially, so sess needs no locking.
func (w *Worker) handle(sess *session, req *wire.Request) *wire.Response {
	switch req.Kind {
	case wire.KindPing:
		return &wire.Response{}
	case wire.KindReset:
		sess.shards = make(map[int]*shard)
		sess.numSites = 0
		sess.totalDocs = 0
		sess.sorted = nil
		return &wire.Response{}
	case wire.KindLoad:
		return handleLoad(sess, req)
	case wire.KindRankLocal:
		return handleRankLocal(sess, req)
	case wire.KindPowerRound:
		return handlePowerRound(sess, req)
	default:
		return &wire.Response{Err: fmt.Sprintf("worker: unknown request kind %d", req.Kind)}
	}
}

func handleLoad(sess *session, req *wire.Request) *wire.Response {
	if req.NumSites < 0 || req.NumSites > wire.MaxSites {
		return &wire.Response{Err: fmt.Sprintf("worker: site space %d outside [0, %d]", req.NumSites, wire.MaxSites)}
	}
	loaded := make([]*shard, 0, len(req.Shards))
	// Loads into an unchanged site space accumulate onto the session's
	// existing shards, so the memory bound must count those too. (A
	// conservative count: shards replaced by this request are counted
	// twice; Reset between runs keeps the bound exact in practice.)
	totalDocs := sess.totalDocs
	if req.NumSites != sess.numSites {
		totalDocs = 0
	}
	for _, s := range req.Shards {
		if s.NumDocs < 0 || s.Site < 0 || s.Site >= req.NumSites {
			return &wire.Response{Err: fmt.Sprintf("worker: invalid shard (site %d of %d, %d docs)",
				s.Site, req.NumSites, s.NumDocs)}
		}
		// Bound the aggregate before any allocation, capping how much
		// memory a small request can claim (see wire.MaxShardDocs).
		totalDocs += s.NumDocs
		if totalDocs > wire.MaxShardDocs {
			return &wire.Response{Err: fmt.Sprintf("worker: load exceeds %d aggregate docs", wire.MaxShardDocs)}
		}
		sub := graph.NewDigraph(s.NumDocs)
		for _, e := range s.Edges {
			if e.From < 0 || e.From >= s.NumDocs || e.To < 0 || e.To >= s.NumDocs ||
				!(e.Weight > 0) || math.IsInf(e.Weight, 0) {
				return &wire.Response{Err: fmt.Sprintf("worker: site %d has invalid edge %d→%d (w=%g)",
					s.Site, e.From, e.To, e.Weight)}
			}
			sub.AddEdge(e.From, e.To, e.Weight)
		}
		sub.Dedupe()
		if len(s.RowCols) != len(s.RowVals) {
			return &wire.Response{Err: fmt.Sprintf("worker: site %d row arity mismatch", s.Site)}
		}
		rowSum := 0.0
		for k, col := range s.RowCols {
			if col < 0 || col >= req.NumSites {
				return &wire.Response{Err: fmt.Sprintf("worker: site %d row column %d out of range", s.Site, col)}
			}
			v := s.RowVals[k]
			if !(v > 0) || math.IsInf(v, 0) {
				return &wire.Response{Err: fmt.Sprintf("worker: site %d row value %g not a probability", s.Site, v)}
			}
			rowSum += v
		}
		if len(s.RowCols) > 0 && math.Abs(rowSum-1) > 1e-6 {
			return &wire.Response{Err: fmt.Sprintf("worker: site %d row sums to %g, want 1", s.Site, rowSum)}
		}
		loaded = append(loaded, &shard{
			site:    s.Site,
			sub:     sub,
			rowCols: s.RowCols,
			rowVals: s.RowVals,
		})
	}
	if req.NumSites != sess.numSites {
		// A new site-space dimension means a new graph: stale shards
		// from the previous one must not survive (their site IDs could
		// index past the new dimension).
		sess.shards = make(map[int]*shard, len(loaded))
		sess.numSites = req.NumSites
		sess.totalDocs = 0
	}
	for _, sh := range loaded {
		if old, ok := sess.shards[sh.site]; ok {
			sess.totalDocs -= old.sub.NumNodes()
		}
		sess.shards[sh.site] = sh
		sess.totalDocs += sh.sub.NumNodes()
	}
	sess.sorted = nil
	return &wire.Response{}
}

// handleRankLocal runs step 3 of §3.2 for every hosted site, in
// parallel across the worker's cores — this is the computation the
// paper pushes out of the central server and onto the peers. The
// actual ranking is lmm.RankSubgraphs, the same code path the
// in-process pipeline uses.
func handleRankLocal(sess *session, req *wire.Request) *wire.Response {
	shards := sess.sortedShards()
	subs := make([]*graph.Digraph, len(shards))
	for i, sh := range shards {
		subs[i] = sh.sub
	}
	cfg := lmm.WebConfig{Damping: req.Damping, Tol: req.Tol, MaxIter: req.MaxIter}
	ranks, iters, err := lmm.RankSubgraphs(subs, cfg)
	if err != nil {
		var sre *lmm.SubgraphRankError
		if errors.As(err, &sre) {
			return &wire.Response{Err: fmt.Sprintf("worker: local docrank of site %d: %v",
				shards[sre.Index].site, sre.Err)}
		}
		return &wire.Response{Err: fmt.Sprintf("worker: rank local: %v", err)}
	}
	out := make([]wire.LocalRank, len(shards))
	for i, sh := range shards {
		out[i] = wire.LocalRank{Site: sh.site, Scores: ranks[i], Iterations: iters[i]}
	}
	return &wire.Response{Local: out}
}

// handlePowerRound computes this worker's contribution to one SiteRank
// power step: partial[t] = Σ_{s owned} x[s]·M(G_S)[s,t], plus the
// iterate mass on owned dangling rows. The coordinator sums partials
// across the fleet and applies the damping/teleport correction, so the
// distributed iteration reproduces the central Mˆ power method.
func handlePowerRound(sess *session, req *wire.Request) *wire.Response {
	if req.NumSites != sess.numSites {
		return &wire.Response{Err: fmt.Sprintf("worker: power round over %d sites but %d loaded",
			req.NumSites, sess.numSites)}
	}
	shards := sess.sortedShards()

	if len(req.X) != req.NumSites {
		return &wire.Response{Err: fmt.Sprintf("worker: iterate length %d vs %d sites", len(req.X), req.NumSites)}
	}
	partial := make([]float64, req.NumSites)
	var dangling float64
	for _, sh := range shards {
		xs := req.X[sh.site]
		if len(sh.rowCols) == 0 {
			dangling += xs
			continue
		}
		// Columns were range-checked at load time; the inner loop
		// stays branch-free.
		for k, col := range sh.rowCols {
			partial[col] += xs * sh.rowVals[k]
		}
	}
	return &wire.Response{Partial: partial, DanglingMass: dangling}
}

var _ io.Closer = (*Worker)(nil)
