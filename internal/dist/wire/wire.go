// Package wire defines the gob-over-TCP protocol spoken between the
// distributed-ranking coordinator and its workers, plus the counting
// connection wrapper that makes transport statistics (messages, bytes)
// real on both ends of every socket.
//
// The protocol is a strict request/response alternation per connection:
// the coordinator encodes one Request, the worker decodes it, performs
// the operation and encodes one Response. A single long-lived gob stream
// per direction amortizes type descriptors across the session, so the
// steady-state cost of a SiteRank power round is close to the raw float
// payload (a vector of N_S values each way — the paper's claim that the
// site-layer exchange is small).
package wire

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash"
	"io"
	"math"
	"net"
	"sync/atomic"
	"time"
)

// Kind discriminates request types.
type Kind uint8

// Protocol operations, coordinator → worker.
const (
	// KindPing checks liveness; the response carries no payload.
	KindPing Kind = iota + 1
	// KindLoad installs a batch of site shards, replacing any sites the
	// worker held from a previous run with the same IDs.
	KindLoad
	// KindReset drops all loaded shards, so a new Rank starts clean.
	KindReset
	// KindRankLocal computes the local DocRank of loaded sites (all of
	// them, or the subset listed in Request.Sites).
	KindRankLocal
	// KindPowerRound performs one distributed SiteRank power step over
	// the worker's owned rows of the site transition chain.
	KindPowerRound
	// KindOffer negotiates the worker's digest-keyed shard cache: the
	// coordinator lists the shards (and optionally the site chain) it is
	// about to assign, and the worker answers which of them it already
	// holds, so the following KindLoad ships only the misses. The same
	// negotiation is the wire half of delta shipping after graph churn:
	// a mutation confined to one site changes exactly one shard digest,
	// so a re-prepared run offers N refs, hits N−1, and re-ships one
	// shard — no dedicated delta message kind is needed.
	KindOffer
	// KindBatchRounds runs up to Request.Rounds damped SiteRank power
	// rounds locally on the worker against its replicated site chain and
	// returns the resulting iterate — round batching, trading one larger
	// chain shipment at load time for K× fewer SiteRank exchanges.
	KindBatchRounds
	// KindUnload removes the sites listed in Request.Sites from the
	// worker's session (the digest cache keeps their shards — a later
	// Offer still hits). The coordinator issues it when re-admitting a
	// rejoined worker: sites rebalanced back to the rejoiner must leave
	// their interim owner's session, or KindPowerRound — which covers
	// every loaded shard — would count those chain rows twice.
	KindUnload
	// KindAsyncUpdate performs one barrier-free SiteRank sweep: the same
	// row-partition arithmetic as KindPowerRound (partial product over
	// owned rows plus dangling mass), but additionally reporting the
	// iterate mass sitting on the owned sites (Response.Mass) so the
	// coordinator can merge contributions taken from *different* iterate
	// snapshots — the asynchronous mode's per-worker sweeps never share a
	// round barrier. Request.Epoch versions the accumulator generation the
	// sweep feeds; the worker counts sweeps per epoch.
	KindAsyncUpdate
	// KindAsyncAck drains one asynchronous epoch: the worker reports how
	// many KindAsyncUpdate sweeps it served in Request.Epoch
	// (Response.Rounds), then retires that epoch — a late or duplicated
	// update for a drained epoch is refused instead of silently feeding a
	// stale accumulator.
	KindAsyncAck
)

// MaxShardDocs bounds the aggregate claimed document count of one Load
// request, and MaxSites bounds the site-space dimension. Both are far
// beyond any real deployment (the paper's whole crawl is ~10^5
// documents). They do not make allocation strictly proportional to wire
// bytes — a shard may legitimately hold many edge-free documents — but
// they cap the amplification a malformed or hostile request can buy
// (~100 MB of adjacency headers per request at the limit) well below
// address-space exhaustion.
const (
	MaxShardDocs = 1 << 22
	MaxSites     = 1 << 22
)

// Edge is one weighted directed edge of a shipped local subgraph, in
// the site's compact local indices.
type Edge struct {
	From, To int
	Weight   float64
}

// SiteShard is one site's slice of the distributed computation: its
// local document subgraph G^s_d (the input of the worker-side DocRank)
// and its row of the site-level transition chain M(G_S) (the input of
// the distributed SiteRank power iteration).
type SiteShard struct {
	// Site is the SiteID in the coordinator's DocGraph.
	Site int
	// NumDocs is the number of local documents (subgraph nodes).
	NumDocs int
	// Edges is the local subgraph in local indices.
	Edges []Edge
	// RowCols/RowVals hold the non-zeros of row Site of the
	// row-stochastic site transition matrix. Empty = dangling site.
	RowCols []int
	RowVals []float64
}

// Digest is the content address of a shard or site chain: SHA-256 over
// a canonical serialization. Workers recompute digests from the bytes
// they actually received and key their caches by that value, so a
// coordinator cannot bind a digest to foreign content (no cache
// poisoning across coordinators sharing a worker).
type Digest [sha256.Size]byte

// ShardRef names a shard by site and content digest, the currency of
// the KindOffer/KindLoad cache negotiation.
type ShardRef struct {
	Site   int
	Digest Digest
}

// SiteChain is the full row-normalized site transition matrix M(G_S) in
// CSR form: row s spans Cols/Vals[RowPtr[s]:RowPtr[s+1]], an empty span
// marking a dangling site. It is shipped to workers when round batching
// is on, so a worker can run whole damped power rounds locally.
type SiteChain struct {
	NumSites int
	RowPtr   []int
	Cols     []int
	Vals     []float64
}

// Request is the coordinator → worker envelope. Only the fields of the
// active Kind are populated; gob omits zero-valued fields, so inactive
// payloads cost nothing on the wire.
type Request struct {
	Kind Kind
	// Shards carries KindLoad payload: shards shipped in full.
	Shards []SiteShard
	// ShardsZ carries KindLoad shards in compressed form — the flate
	// stream produced by CompressShards — when the coordinator's
	// Config.Compress is on. A request may carry both Shards and
	// ShardsZ; the worker concatenates them.
	ShardsZ []byte
	// Cached lists shards KindLoad activates from the worker's digest
	// cache instead of shipping (negotiated by a preceding KindOffer).
	Cached []ShardRef
	// Refs carries KindOffer payload: the shards the coordinator intends
	// to assign to this worker.
	Refs []ShardRef
	// Chain optionally ships the full site chain at KindLoad (round
	// batching replicates it on every worker).
	Chain *SiteChain
	// HasChain marks that the run involves a site chain: at KindOffer it
	// asks whether ChainDigest is cached; at KindLoad with a nil Chain it
	// activates the cached chain under ChainDigest.
	HasChain    bool
	ChainDigest Digest
	// NumSites is the site-space dimension, needed by KindPowerRound and
	// KindBatchRounds iterates and validated at KindLoad.
	NumSites int
	// Damping/Tol/MaxIter parameterize KindRankLocal; KindBatchRounds
	// reads Damping and Tol but takes its round budget from Rounds, not
	// MaxIter. Zero values select the package defaults.
	Damping float64
	Tol     float64
	MaxIter int
	// X is the current SiteRank iterate for KindPowerRound and
	// KindBatchRounds.
	X []float64
	// V is the site-layer teleport (personalization) distribution for
	// KindBatchRounds; empty selects uniform. It must have NumSites
	// non-negative entries with positive sum; the worker renormalizes.
	V []float64
	// Sites restricts KindRankLocal to the listed sites (empty = every
	// loaded site) — the coordinator re-ranks only reassigned sites after
	// a worker loss — and names the sites KindUnload drops from the
	// session when shards rebalance back to a rejoined worker.
	Sites []int
	// Rounds asks KindBatchRounds for up to this many power rounds.
	Rounds int
	// Epoch versions the asynchronous accumulator generation for
	// KindAsyncUpdate and KindAsyncAck. Epochs only move forward on a
	// session: a sweep for an epoch older than the session's current one
	// is refused (it would feed a drained accumulator), a newer one
	// adopts the new epoch and restarts the sweep count.
	Epoch uint64
}

// LocalRank is one site's local DocRank as computed by a worker.
type LocalRank struct {
	Site       int
	Scores     []float64
	Iterations int
}

// Response is the worker → coordinator envelope.
type Response struct {
	// Err is non-empty when the operation failed worker-side.
	Err string
	// Local carries KindRankLocal results, one entry per loaded site.
	Local []LocalRank
	// Partial is the worker's contribution to x'M for KindPowerRound:
	// sum over owned rows s of X[s]·row_s, a dense length-NumSites
	// vector.
	Partial []float64
	// DanglingMass is the iterate mass sitting on owned dangling rows,
	// needed centrally for the teleport coefficient.
	DanglingMass float64
	// HaveSites answers KindOffer: the offered sites whose digests hit
	// the worker's cache. HaveChain answers the chain question.
	HaveSites []int
	HaveChain bool
	// Missing answers KindLoad: Cached sites whose entries were evicted
	// between the offer and the load; the coordinator re-ships them in
	// full. MissingChain is the same signal for the site chain.
	Missing      []int
	MissingChain bool
	// X is the iterate after KindBatchRounds ran Rounds power rounds;
	// Residual is the last L1 step size and Converged whether it crossed
	// the tolerance (in which case Rounds may be fewer than asked).
	// Rounds doubles as KindAsyncAck's drained sweep count.
	X         []float64
	Rounds    int
	Residual  float64
	Converged bool
	// Mass is the iterate mass on the worker's owned sites (Σ X[s] over
	// loaded shards), reported by KindAsyncUpdate: asynchronous merges
	// combine partials from different snapshots, so the teleport
	// coefficient needs each contribution's own mass rather than one
	// shared Σx.
	Mass float64
	// Epoch echoes the request's accumulator epoch on KindAsyncUpdate
	// and KindAsyncAck, letting the coordinator discard responses that
	// raced a membership change.
	Epoch uint64
}

// Counters accumulates transport statistics for one endpoint. All
// methods are safe for concurrent use.
type Counters struct {
	messages atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
}

// AddMessage records one protocol message (a request/response pair
// counts once on each end, attributed to the receiver of the request).
func (c *Counters) AddMessage() { c.messages.Add(1) }

// Messages returns the number of protocol messages recorded.
func (c *Counters) Messages() uint64 { return c.messages.Load() }

// BytesReceived returns the total bytes read from counted connections.
func (c *Counters) BytesReceived() uint64 { return c.bytesIn.Load() }

// BytesSent returns the total bytes written to counted connections.
func (c *Counters) BytesSent() uint64 { return c.bytesOut.Load() }

// Conn wraps a net.Conn so every byte crossing it is attributed to a
// Counters, and pairs the connection with its long-lived gob codecs.
type Conn struct {
	conn net.Conn
	c    *Counters
	Enc  *gob.Encoder
	Dec  *gob.Decoder
}

// NewConn wraps conn, attributing its traffic to counters.
func NewConn(conn net.Conn, counters *Counters) *Conn {
	w := &Conn{conn: conn, c: counters}
	w.Enc = gob.NewEncoder(countWriter{w})
	w.Dec = gob.NewDecoder(countReader{w})
	return w
}

// Close closes the underlying connection.
func (w *Conn) Close() error { return w.conn.Close() }

// SetDeadline bounds both reads and writes on the underlying
// connection; the zero time clears the bound.
func (w *Conn) SetDeadline(t time.Time) error { return w.conn.SetDeadline(t) }

// RemoteAddr exposes the peer address for error messages.
func (w *Conn) RemoteAddr() net.Addr { return w.conn.RemoteAddr() }

type countReader struct{ w *Conn }

func (r countReader) Read(p []byte) (int, error) {
	n, err := r.w.conn.Read(p)
	r.w.c.bytesIn.Add(uint64(n))
	return n, err
}

type countWriter struct{ w *Conn }

func (w countWriter) Write(p []byte) (int, error) {
	n, err := w.w.conn.Write(p)
	w.w.c.bytesOut.Add(uint64(n))
	return n, err
}

// digestWriter streams canonical integers and floats into a hash.
type digestWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (d *digestWriter) writeInt(v int) {
	binary.LittleEndian.PutUint64(d.buf[:], uint64(v))
	d.h.Write(d.buf[:])
}

func (d *digestWriter) writeFloat(v float64) {
	binary.LittleEndian.PutUint64(d.buf[:], math.Float64bits(v))
	d.h.Write(d.buf[:])
}

func (d *digestWriter) sum() (out Digest) {
	d.h.Sum(out[:0])
	return out
}

// ContentDigest returns the shard's content address: SHA-256 over the
// document count, edge list and site-chain row in field order. Both ends
// compute it with this function — the coordinator to offer, the worker to
// key its cache — so the value is meaningful across processes and runs.
func (s *SiteShard) ContentDigest() Digest {
	d := digestWriter{h: sha256.New()}
	d.writeInt(s.NumDocs)
	d.writeInt(len(s.Edges))
	for _, e := range s.Edges {
		d.writeInt(e.From)
		d.writeInt(e.To)
		d.writeFloat(e.Weight)
	}
	d.writeInt(len(s.RowCols))
	for _, c := range s.RowCols {
		d.writeInt(c)
	}
	for _, v := range s.RowVals {
		d.writeFloat(v)
	}
	return d.sum()
}

// EstWireSize coarsely estimates the gob payload cost of shipping the
// shard in full — the basis of the coordinator's bytes-saved-by-cache
// accounting. It is an estimate (gob varint-packs integers), not a
// measured byte count.
func (s *SiteShard) EstWireSize() uint64 {
	return 16 + 20*uint64(len(s.Edges)) + 12*uint64(len(s.RowCols))
}

// ContentDigest returns the chain's content address, the analogue of
// SiteShard.ContentDigest for the replicated site chain.
func (c *SiteChain) ContentDigest() Digest {
	d := digestWriter{h: sha256.New()}
	d.writeInt(c.NumSites)
	for _, p := range c.RowPtr {
		d.writeInt(p)
	}
	for _, col := range c.Cols {
		d.writeInt(col)
	}
	for _, v := range c.Vals {
		d.writeFloat(v)
	}
	return d.sum()
}

// EstWireSize coarsely estimates the gob payload cost of shipping the
// chain in full; see SiteShard.EstWireSize.
func (c *SiteChain) EstWireSize() uint64 {
	return 16 + 8*uint64(len(c.RowPtr)) + 12*uint64(len(c.Cols))
}

// DigestInputBytes returns how many bytes ContentDigest feeds through
// SHA-256 for this shard — the basis of the coordinator's digest-work
// accounting (Stats.DigestBytesHashed), which its per-Ranker memo drives
// to zero on warm runs.
func (s *SiteShard) DigestInputBytes() uint64 {
	return 8 * uint64(3+3*len(s.Edges)+2*len(s.RowCols))
}

// DigestInputBytes is the SiteChain analogue of SiteShard.DigestInputBytes.
func (c *SiteChain) DigestInputBytes() uint64 {
	return 8 * uint64(1+len(c.RowPtr)+2*len(c.Cols))
}

// maxDecompressedBytes bounds how far a compressed shard payload may
// expand, keeping a hostile flate stream (a "zip bomb") from claiming
// unbounded memory before shard validation sees it. One GiB sits far
// above any legitimate Load (MaxShardDocs caps the docs a load admits)
// but well below address-space exhaustion, matching the amplification
// stance of the other payload bounds.
const maxDecompressedBytes = 1 << 30

// CompressShards gob-encodes the shard batch and flate-compresses the
// result, returning the compressed stream and the raw (uncompressed)
// gob size — the pair the coordinator's compression accounting records.
// Edge lists are integer-heavy and highly repetitive, so flate typically
// shrinks them severalfold at BestSpeed.
func CompressShards(shards []SiteShard) (z []byte, rawLen int, err error) {
	var raw bytes.Buffer
	if err := gob.NewEncoder(&raw).Encode(shards); err != nil {
		return nil, 0, fmt.Errorf("wire: encode shards: %w", err)
	}
	var zb bytes.Buffer
	fw, err := flate.NewWriter(&zb, flate.BestSpeed)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: flate: %w", err)
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, 0, fmt.Errorf("wire: compress shards: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, 0, fmt.Errorf("wire: compress shards: %w", err)
	}
	return zb.Bytes(), raw.Len(), nil
}

// DecompressShards reverses CompressShards, bounding the decompressed
// size by maxDecompressedBytes so a hostile stream cannot expand without
// limit.
func DecompressShards(z []byte) ([]SiteShard, error) {
	fr := flate.NewReader(bytes.NewReader(z))
	defer fr.Close()
	lr := &io.LimitedReader{R: fr, N: maxDecompressedBytes + 1}
	var shards []SiteShard
	if err := gob.NewDecoder(lr).Decode(&shards); err != nil {
		if lr.N <= 0 {
			return nil, fmt.Errorf("wire: compressed shard payload expands past %d bytes", int64(maxDecompressedBytes))
		}
		return nil, fmt.Errorf("wire: decode compressed shards: %w", err)
	}
	return shards, nil
}
