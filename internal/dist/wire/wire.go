// Package wire defines the gob-over-TCP protocol spoken between the
// distributed-ranking coordinator and its workers, plus the counting
// connection wrapper that makes transport statistics (messages, bytes)
// real on both ends of every socket.
//
// The protocol is a strict request/response alternation per connection:
// the coordinator encodes one Request, the worker decodes it, performs
// the operation and encodes one Response. A single long-lived gob stream
// per direction amortizes type descriptors across the session, so the
// steady-state cost of a SiteRank power round is close to the raw float
// payload (a vector of N_S values each way — the paper's claim that the
// site-layer exchange is small).
package wire

import (
	"encoding/gob"
	"net"
	"sync/atomic"
	"time"
)

// Kind discriminates request types.
type Kind uint8

// Protocol operations, coordinator → worker.
const (
	// KindPing checks liveness; the response carries no payload.
	KindPing Kind = iota + 1
	// KindLoad installs a batch of site shards, replacing any sites the
	// worker held from a previous run with the same IDs.
	KindLoad
	// KindReset drops all loaded shards, so a new Rank starts clean.
	KindReset
	// KindRankLocal computes the local DocRank of every loaded site.
	KindRankLocal
	// KindPowerRound performs one distributed SiteRank power step over
	// the worker's owned rows of the site transition chain.
	KindPowerRound
)

// MaxShardDocs bounds the aggregate claimed document count of one Load
// request, and MaxSites bounds the site-space dimension. Both are far
// beyond any real deployment (the paper's whole crawl is ~10^5
// documents). They do not make allocation strictly proportional to wire
// bytes — a shard may legitimately hold many edge-free documents — but
// they cap the amplification a malformed or hostile request can buy
// (~100 MB of adjacency headers per request at the limit) well below
// address-space exhaustion.
const (
	MaxShardDocs = 1 << 22
	MaxSites     = 1 << 22
)

// Edge is one weighted directed edge of a shipped local subgraph, in
// the site's compact local indices.
type Edge struct {
	From, To int
	Weight   float64
}

// SiteShard is one site's slice of the distributed computation: its
// local document subgraph G^s_d (the input of the worker-side DocRank)
// and its row of the site-level transition chain M(G_S) (the input of
// the distributed SiteRank power iteration).
type SiteShard struct {
	// Site is the SiteID in the coordinator's DocGraph.
	Site int
	// NumDocs is the number of local documents (subgraph nodes).
	NumDocs int
	// Edges is the local subgraph in local indices.
	Edges []Edge
	// RowCols/RowVals hold the non-zeros of row Site of the
	// row-stochastic site transition matrix. Empty = dangling site.
	RowCols []int
	RowVals []float64
}

// Request is the coordinator → worker envelope. Only the fields of the
// active Kind are populated; gob omits zero-valued fields, so inactive
// payloads cost nothing on the wire.
type Request struct {
	Kind Kind
	// Shards carries KindLoad payload.
	Shards []SiteShard
	// NumSites is the site-space dimension, needed by KindPowerRound
	// partials and validated at KindLoad.
	NumSites int
	// Damping/Tol/MaxIter parameterize KindRankLocal (zero = defaults).
	Damping float64
	Tol     float64
	MaxIter int
	// X is the current SiteRank iterate for KindPowerRound.
	X []float64
}

// LocalRank is one site's local DocRank as computed by a worker.
type LocalRank struct {
	Site       int
	Scores     []float64
	Iterations int
}

// Response is the worker → coordinator envelope.
type Response struct {
	// Err is non-empty when the operation failed worker-side.
	Err string
	// Local carries KindRankLocal results, one entry per loaded site.
	Local []LocalRank
	// Partial is the worker's contribution to x'M for KindPowerRound:
	// sum over owned rows s of X[s]·row_s, a dense length-NumSites
	// vector.
	Partial []float64
	// DanglingMass is the iterate mass sitting on owned dangling rows,
	// needed centrally for the teleport coefficient.
	DanglingMass float64
}

// Counters accumulates transport statistics for one endpoint. All
// methods are safe for concurrent use.
type Counters struct {
	messages atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
}

// AddMessage records one protocol message (a request/response pair
// counts once on each end, attributed to the receiver of the request).
func (c *Counters) AddMessage() { c.messages.Add(1) }

// Messages returns the number of protocol messages recorded.
func (c *Counters) Messages() uint64 { return c.messages.Load() }

// BytesReceived returns the total bytes read from counted connections.
func (c *Counters) BytesReceived() uint64 { return c.bytesIn.Load() }

// BytesSent returns the total bytes written to counted connections.
func (c *Counters) BytesSent() uint64 { return c.bytesOut.Load() }

// Conn wraps a net.Conn so every byte crossing it is attributed to a
// Counters, and pairs the connection with its long-lived gob codecs.
type Conn struct {
	conn net.Conn
	c    *Counters
	Enc  *gob.Encoder
	Dec  *gob.Decoder
}

// NewConn wraps conn, attributing its traffic to counters.
func NewConn(conn net.Conn, counters *Counters) *Conn {
	w := &Conn{conn: conn, c: counters}
	w.Enc = gob.NewEncoder(countWriter{w})
	w.Dec = gob.NewDecoder(countReader{w})
	return w
}

// Close closes the underlying connection.
func (w *Conn) Close() error { return w.conn.Close() }

// SetDeadline bounds both reads and writes on the underlying
// connection; the zero time clears the bound.
func (w *Conn) SetDeadline(t time.Time) error { return w.conn.SetDeadline(t) }

// RemoteAddr exposes the peer address for error messages.
func (w *Conn) RemoteAddr() net.Addr { return w.conn.RemoteAddr() }

type countReader struct{ w *Conn }

func (r countReader) Read(p []byte) (int, error) {
	n, err := r.w.conn.Read(p)
	r.w.c.bytesIn.Add(uint64(n))
	return n, err
}

type countWriter struct{ w *Conn }

func (w countWriter) Write(p []byte) (int, error) {
	n, err := w.w.conn.Write(p)
	w.w.c.bytesOut.Add(uint64(n))
	return n, err
}
