package wire

import (
	"net"
	"sync"
	"testing"
)

// TestConnCountsBothDirections pushes a request/response pair through a
// real socket pair and checks every byte lands in the right counter on
// both endpoints.
func TestConnCountsBothDirections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	var serverCtr Counters
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		wc := NewConn(conn, &serverCtr)
		defer wc.Close()
		var req Request
		if err := wc.Dec.Decode(&req); err != nil {
			t.Errorf("server decode: %v", err)
			return
		}
		serverCtr.AddMessage()
		if err := wc.Enc.Encode(&Response{Partial: req.X}); err != nil {
			t.Errorf("server encode: %v", err)
		}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var clientCtr Counters
	cc := NewConn(raw, &clientCtr)
	defer cc.Close()

	req := &Request{Kind: KindPowerRound, NumSites: 3, X: []float64{0.2, 0.3, 0.5}}
	if err := cc.Enc.Encode(req); err != nil {
		t.Fatalf("client encode: %v", err)
	}
	var resp Response
	if err := cc.Dec.Decode(&resp); err != nil {
		t.Fatalf("client decode: %v", err)
	}
	clientCtr.AddMessage()
	wg.Wait()

	if len(resp.Partial) != 3 || resp.Partial[2] != 0.5 {
		t.Errorf("echoed payload corrupted: %v", resp.Partial)
	}
	if clientCtr.Messages() != 1 || serverCtr.Messages() != 1 {
		t.Errorf("messages: client %d server %d, want 1 and 1", clientCtr.Messages(), serverCtr.Messages())
	}
	if clientCtr.BytesSent() == 0 || clientCtr.BytesReceived() == 0 {
		t.Errorf("client counters empty: %d out, %d in", clientCtr.BytesSent(), clientCtr.BytesReceived())
	}
	if clientCtr.BytesSent() != serverCtr.BytesReceived() {
		t.Errorf("client sent %d but server received %d", clientCtr.BytesSent(), serverCtr.BytesReceived())
	}
	if serverCtr.BytesSent() != clientCtr.BytesReceived() {
		t.Errorf("server sent %d but client received %d", serverCtr.BytesSent(), clientCtr.BytesReceived())
	}
}

// TestContentDigestStability pins that digests are pure functions of
// content: equal shards agree, any field change disagrees — the
// property the worker-side cache keys on.
func TestContentDigestStability(t *testing.T) {
	base := func() SiteShard {
		return SiteShard{
			Site: 3, NumDocs: 2,
			Edges:   []Edge{{From: 0, To: 1, Weight: 2}},
			RowCols: []int{1}, RowVals: []float64{1},
		}
	}
	a, b := base(), base()
	if a.ContentDigest() != b.ContentDigest() {
		t.Fatal("identical shards produced different digests")
	}
	// The site ID is addressing, not content: the same subgraph hosted
	// under two IDs must share a cache entry.
	b.Site = 9
	if a.ContentDigest() != b.ContentDigest() {
		t.Error("digest depends on the site ID")
	}
	mutations := []func(*SiteShard){
		func(s *SiteShard) { s.NumDocs = 3 },
		func(s *SiteShard) { s.Edges[0].Weight = 1 },
		func(s *SiteShard) { s.Edges = append(s.Edges, Edge{From: 1, To: 0, Weight: 1}) },
		func(s *SiteShard) { s.RowCols[0] = 0 },
		func(s *SiteShard) { s.RowVals[0] = 0.5 },
		func(s *SiteShard) { s.RowCols, s.RowVals = nil, nil },
	}
	for i, mutate := range mutations {
		m := base()
		mutate(&m)
		if m.ContentDigest() == a.ContentDigest() {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
}

func TestChainDigestAndSize(t *testing.T) {
	c1 := SiteChain{NumSites: 2, RowPtr: []int{0, 1, 1}, Cols: []int{1}, Vals: []float64{1}}
	c2 := SiteChain{NumSites: 2, RowPtr: []int{0, 1, 1}, Cols: []int{1}, Vals: []float64{1}}
	if c1.ContentDigest() != c2.ContentDigest() {
		t.Error("identical chains produced different digests")
	}
	c2.Vals[0] = 0.5
	if c1.ContentDigest() == c2.ContentDigest() {
		t.Error("value change did not change the chain digest")
	}
	if c1.EstWireSize() == 0 || (&SiteShard{}).EstWireSize() == 0 {
		t.Error("wire-size estimates must be positive (headers are not free)")
	}
}
