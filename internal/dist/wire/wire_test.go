package wire

import (
	"net"
	"sync"
	"testing"
)

// TestConnCountsBothDirections pushes a request/response pair through a
// real socket pair and checks every byte lands in the right counter on
// both endpoints.
func TestConnCountsBothDirections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	var serverCtr Counters
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		wc := NewConn(conn, &serverCtr)
		defer wc.Close()
		var req Request
		if err := wc.Dec.Decode(&req); err != nil {
			t.Errorf("server decode: %v", err)
			return
		}
		serverCtr.AddMessage()
		if err := wc.Enc.Encode(&Response{Partial: req.X}); err != nil {
			t.Errorf("server encode: %v", err)
		}
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var clientCtr Counters
	cc := NewConn(raw, &clientCtr)
	defer cc.Close()

	req := &Request{Kind: KindPowerRound, NumSites: 3, X: []float64{0.2, 0.3, 0.5}}
	if err := cc.Enc.Encode(req); err != nil {
		t.Fatalf("client encode: %v", err)
	}
	var resp Response
	if err := cc.Dec.Decode(&resp); err != nil {
		t.Fatalf("client decode: %v", err)
	}
	clientCtr.AddMessage()
	wg.Wait()

	if len(resp.Partial) != 3 || resp.Partial[2] != 0.5 {
		t.Errorf("echoed payload corrupted: %v", resp.Partial)
	}
	if clientCtr.Messages() != 1 || serverCtr.Messages() != 1 {
		t.Errorf("messages: client %d server %d, want 1 and 1", clientCtr.Messages(), serverCtr.Messages())
	}
	if clientCtr.BytesSent() == 0 || clientCtr.BytesReceived() == 0 {
		t.Errorf("client counters empty: %d out, %d in", clientCtr.BytesSent(), clientCtr.BytesReceived())
	}
	if clientCtr.BytesSent() != serverCtr.BytesReceived() {
		t.Errorf("client sent %d but server received %d", clientCtr.BytesSent(), serverCtr.BytesReceived())
	}
	if serverCtr.BytesSent() != clientCtr.BytesReceived() {
		t.Errorf("server sent %d but client received %d", serverCtr.BytesSent(), clientCtr.BytesReceived())
	}
}
