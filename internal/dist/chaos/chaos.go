// Package chaos is the fault-injection harness for the distributed
// runtime: a protocol-aware TCP proxy that sits between a coordinator
// and one worker, decodes every wire.Request crossing it, and consults
// a scriptable policy to pass, drop, delay, duplicate or black-hole the
// exchange. Because the proxy speaks the real gob protocol over real
// sockets, the failures it injects are indistinguishable from genuine
// ones — a Drop is a worker death (the coordinator's stream
// desynchronizes and errLost fires), a Blackhole is a network
// partition (the call times out), a Duplicate probes idempotency — and
// the worker process behind the proxy survives with its digest cache
// warm, which is exactly the peer a redialing coordinator re-admits.
//
// Scripts run on the proxy's per-connection serving goroutines and must
// be safe for concurrent use; the stateful helpers in this package
// coordinate through atomics.
package chaos

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lmmrank/internal/dist/wire"
)

// Action says what to do with one intercepted request.
type Action int

const (
	// Pass relays the request and its response unchanged.
	Pass Action = iota
	// Drop closes both sides of the proxied connection immediately —
	// the coordinator observes a mid-exchange worker death. The worker
	// process itself survives; a redial through the proxy reaches it
	// again, warm.
	Drop
	// Delay sleeps Decision.Delay, then passes.
	Delay
	// Duplicate delivers the request to the worker twice and forwards
	// only the second response — a retransmission, probing that the
	// operation is idempotent.
	Duplicate
	// Blackhole swallows the request and never answers — a network
	// partition; the coordinator's call runs into its timeout.
	Blackhole
)

// Decision is a Script's verdict on one request.
type Decision struct {
	Action Action
	// Delay is the sleep for Action Delay.
	Delay time.Duration
}

// Script decides the fate of each intercepted request. exchange is the
// 1-based request index on this proxied connection (a redialed
// coordinator starts a fresh connection, so the counter restarts — a
// script keyed on absolute progress should keep its own atomic state,
// as KillAtKind does). A nil Script passes everything.
type Script func(exchange int, req *wire.Request) Decision

// Proxy is one scriptable fault-injection point in front of one worker
// address. Start with NewProxy, point the coordinator at Addr instead
// of the worker, stop with Close.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	script Script
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and relays every accepted
// connection to target under script's direction.
func NewProxy(target string, script Script) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		script: script,
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address coordinators should dial instead of the worker.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetScript swaps the fault script; in-flight exchanges finish under
// the old one, the next intercepted request sees the new one. A nil
// script passes everything — "heal" the link by clearing it.
func (p *Proxy) SetScript(s Script) {
	p.mu.Lock()
	p.script = s
	p.mu.Unlock()
}

// Close stops accepting, severs every proxied connection and waits for
// the serving goroutines. Idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serve(conn)
	}
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) currentScript() Script {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.script
}

// serve relays one coordinator connection: decode each request off the
// client stream, apply the script, re-encode toward the worker, relay
// the response back. Decode-reencode (rather than byte splicing) is
// what lets scripts see typed wire.Requests and act per message kind.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer p.forget(client)
	defer client.Close()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer upstream.Close()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer p.forget(upstream)

	cliDec := gob.NewDecoder(client)
	cliEnc := gob.NewEncoder(client)
	upDec := gob.NewDecoder(upstream)
	upEnc := gob.NewEncoder(upstream)
	for n := 1; ; n++ {
		var req wire.Request
		if err := cliDec.Decode(&req); err != nil {
			return
		}
		var d Decision
		if s := p.currentScript(); s != nil {
			d = s(n, &req)
		}
		switch d.Action {
		case Drop:
			return // the deferred closes sever both sides mid-exchange
		case Blackhole:
			continue // never answered; the caller times out
		case Delay:
			time.Sleep(d.Delay)
		case Duplicate:
			// Deliver once and discard the response; the pass path below
			// delivers the retransmission and forwards its response.
			if err := upEnc.Encode(&req); err != nil {
				return
			}
			var dup wire.Response
			if err := upDec.Decode(&dup); err != nil {
				return
			}
		}
		if err := upEnc.Encode(&req); err != nil {
			return
		}
		var resp wire.Response
		if err := upDec.Decode(&resp); err != nil {
			return
		}
		if err := cliEnc.Encode(&resp); err != nil {
			return
		}
	}
}

// KillAtKind returns a script that drops the connection at the first
// request of the given kind, once across the proxy's lifetime; every
// other exchange (and every later connection — the redialed rejoin)
// passes untouched.
func KillAtKind(k wire.Kind) Script {
	var killed atomic.Bool
	return func(_ int, req *wire.Request) Decision {
		if req.Kind == k && killed.CompareAndSwap(false, true) {
			return Decision{Action: Drop}
		}
		return Decision{Action: Pass}
	}
}

// KillAtNth returns a script that drops the connection at the n-th
// (1-based) request of the given kind, once; everything else passes.
func KillAtNth(k wire.Kind, n int) Script {
	var seen atomic.Int64
	var killed atomic.Bool
	return func(_ int, req *wire.Request) Decision {
		if req.Kind != k || killed.Load() {
			return Decision{Action: Pass}
		}
		if seen.Add(1) == int64(n) && killed.CompareAndSwap(false, true) {
			return Decision{Action: Drop}
		}
		return Decision{Action: Pass}
	}
}

// DelayKind returns a script that holds every request of the given
// kind for d before passing it — a slow link, not a dead one.
func DelayKind(k wire.Kind, d time.Duration) Script {
	return func(_ int, req *wire.Request) Decision {
		if req.Kind == k {
			return Decision{Action: Delay, Delay: d}
		}
		return Decision{Action: Pass}
	}
}

// DuplicateKind returns a script that delivers every request of the
// given kind twice, forwarding the retransmission's response — the
// idempotency probe.
func DuplicateKind(k wire.Kind) Script {
	return func(_ int, req *wire.Request) Decision {
		if req.Kind == k {
			return Decision{Action: Duplicate}
		}
		return Decision{Action: Pass}
	}
}

// BlackholeAtKind returns a script that swallows the first request of
// the given kind, once — a transient partition; the coordinator's call
// times out, errLost fires, and a redial reaches the worker again.
func BlackholeAtKind(k wire.Kind) Script {
	var holed atomic.Bool
	return func(_ int, req *wire.Request) Decision {
		if req.Kind == k && holed.CompareAndSwap(false, true) {
			return Decision{Action: Blackhole}
		}
		return Decision{Action: Pass}
	}
}
