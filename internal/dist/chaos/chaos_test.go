package chaos

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/dist/worker"
)

// fixture starts a real worker behind a proxy running script and
// returns a raw gob connection to the proxy.
func fixture(t *testing.T, script Script) (*Proxy, *gob.Encoder, *gob.Decoder, net.Conn) {
	t.Helper()
	w := worker.New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("worker.Start: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	p, err := NewProxy(addr, script)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	enc, dec, conn := dialProxy(t, p)
	return p, enc, dec, conn
}

func dialProxy(t *testing.T, p *Proxy) (*gob.Encoder, *gob.Decoder, net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return gob.NewEncoder(conn), gob.NewDecoder(conn), conn
}

func ping(t *testing.T, enc *gob.Encoder, dec *gob.Decoder) {
	t.Helper()
	if err := enc.Encode(&wire.Request{Kind: wire.KindPing}); err != nil {
		t.Fatalf("encode ping: %v", err)
	}
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode ping response: %v", err)
	}
	if resp.Err != "" {
		t.Fatalf("ping: %s", resp.Err)
	}
}

// TestProxyPassesCleanly: a nil script is a transparent relay.
func TestProxyPassesCleanly(t *testing.T) {
	_, enc, dec, _ := fixture(t, nil)
	for i := 0; i < 3; i++ {
		ping(t, enc, dec)
	}
}

// TestKillAtKindSeversOnce: the scripted kind kills the connection
// exactly once; a redial through the same proxy works again — the
// coordinator-side signature of a recoverable worker death.
func TestKillAtKindSeversOnce(t *testing.T) {
	p, enc, dec, conn := fixture(t, KillAtKind(wire.KindReset))
	ping(t, enc, dec) // other kinds pass
	if err := enc.Encode(&wire.Request{Kind: wire.KindReset}); err == nil {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var resp wire.Response
		if err := dec.Decode(&resp); err == nil {
			t.Fatal("scripted kill did not sever the connection")
		}
	}
	enc2, dec2, _ := dialProxy(t, p)
	ping(t, enc2, dec2)
	if err := enc2.Encode(&wire.Request{Kind: wire.KindReset}); err != nil {
		t.Fatalf("encode reset after rejoin: %v", err)
	}
	var resp wire.Response
	if err := dec2.Decode(&resp); err != nil {
		t.Fatalf("the kill fired twice: %v", err)
	}
}

// TestDelayKindHoldsRequests: a delayed kind arrives late but intact.
func TestDelayKindHoldsRequests(t *testing.T) {
	const hold = 80 * time.Millisecond
	_, enc, dec, _ := fixture(t, DelayKind(wire.KindPing, hold))
	start := time.Now()
	ping(t, enc, dec)
	if elapsed := time.Since(start); elapsed < hold {
		t.Errorf("delayed ping returned in %v, want >= %v", elapsed, hold)
	}
}

// TestDuplicateKindKeepsStreamInSync: delivering a request twice and
// forwarding the retransmission's response must leave the gob stream
// aligned — the next exchange still pairs correctly.
func TestDuplicateKindKeepsStreamInSync(t *testing.T) {
	_, enc, dec, _ := fixture(t, DuplicateKind(wire.KindPing))
	ping(t, enc, dec)
	ping(t, enc, dec) // stream still request/response aligned
}

// TestBlackholeSwallowsOneCall: the blackholed request is never
// answered (the caller's read times out), yet the proxied connection
// itself stays up and later exchanges pass.
func TestBlackholeSwallowsOneCall(t *testing.T) {
	_, enc, dec, conn := fixture(t, BlackholeAtKind(wire.KindPing))
	if err := enc.Encode(&wire.Request{Kind: wire.KindPing}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	var resp wire.Response
	if err := dec.Decode(&resp); err == nil {
		t.Fatal("blackholed request was answered")
	}
	conn.SetReadDeadline(time.Time{})
	// The partition was transient: the once-only script passes the next
	// ping, whose response pairs with the new read.
	ping(t, enc, dec)
}

// TestSetScriptHealsLink: clearing the script mid-life turns the proxy
// back into a transparent relay for new connections.
func TestSetScriptHealsLink(t *testing.T) {
	p, enc, dec, conn := fixture(t, KillAtKind(wire.KindPing))
	if err := enc.Encode(&wire.Request{Kind: wire.KindPing}); err == nil {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var resp wire.Response
		if err := dec.Decode(&resp); err == nil {
			t.Fatal("kill script did not fire")
		}
	}
	p.SetScript(nil)
	enc2, dec2, _ := dialProxy(t, p)
	ping(t, enc2, dec2)
}
