package coordinator

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"lmmrank/internal/dist/wire"
)

// CheckpointState is one saved snapshot of an in-flight distributed
// SiteRank power iteration: the iterate after Round completed rounds,
// bound to a digest of the computation that produced it. The digest
// covers the SiteRank mode, the graph content (every shard digest and
// the chain), and the numeric parameters, so a resume against a
// different graph or configuration is detected and refused rather than
// silently continued into a wrong fixed point.
type CheckpointState struct {
	// Digest identifies the computation; see run.checkpointDigest.
	Digest wire.Digest
	// Round is how many power rounds the iterate has absorbed.
	Round int
	// X is the iterate itself, exact to the bit (gob round-trips float64
	// losslessly), so a resumed run continues the very same float
	// sequence an uninterrupted run would have produced.
	X []float64
}

func (s *CheckpointState) clone() *CheckpointState {
	c := *s
	c.X = append([]float64(nil), s.X...)
	return &c
}

// valid rejects snapshots no resume should trust: a negative round, or
// a non-finite or empty iterate.
func (s *CheckpointState) valid() bool {
	if s == nil || s.Round < 0 || len(s.X) == 0 {
		return false
	}
	for _, v := range s.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Checkpoint persists SiteRank power-iteration state so a coordinator
// restart resumes from the last saved round instead of recomputing.
//
// Contract: Save replaces the previous snapshot atomically — a reader
// observes either the old or the new state, never a mix. Load returns
// the last saved state, or (nil, nil) when no snapshot exists; the
// returned state is the caller's to keep. Clear removes any snapshot
// and is a no-op when none exists. Implementations must be safe for
// use from a single run at a time (runs are serialized by the
// coordinator); they need not support concurrent runs sharing one
// checkpoint. A Save error fails the run — a checkpoint that silently
// stopped persisting is worse than none.
type Checkpoint interface {
	Save(*CheckpointState) error
	Load() (*CheckpointState, error)
	Clear() error
}

// MemCheckpoint is an in-memory Checkpoint: it survives coordinator
// reconstruction within one process (tests, embedded use), not a
// process restart. The zero value is ready to use.
type MemCheckpoint struct {
	mu    sync.Mutex
	state *CheckpointState
}

// NewMemCheckpoint returns an empty in-memory checkpoint.
func NewMemCheckpoint() *MemCheckpoint { return &MemCheckpoint{} }

// Save stores a private copy of the state.
func (m *MemCheckpoint) Save(s *CheckpointState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = s.clone()
	return nil
}

// Load returns a copy of the last saved state, or (nil, nil).
func (m *MemCheckpoint) Load() (*CheckpointState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == nil {
		return nil, nil
	}
	return m.state.clone(), nil
}

// Clear drops the stored state.
func (m *MemCheckpoint) Clear() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = nil
	return nil
}

// FileCheckpoint persists snapshots to one file, surviving coordinator
// process restarts (the lmmcoord -checkpoint/-resume path). Save gob-
// encodes to a sibling temporary file and renames it over the target,
// so a crash mid-save leaves the previous snapshot intact — the rename
// is the commit point.
type FileCheckpoint struct {
	path string
}

// NewFileCheckpoint returns a checkpoint backed by the given file path
// (which need not exist yet; its directory must).
func NewFileCheckpoint(path string) *FileCheckpoint {
	return &FileCheckpoint{path: path}
}

// Save atomically replaces the snapshot file.
func (f *FileCheckpoint) Save(s *CheckpointState) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return fmt.Errorf("coordinator: encode checkpoint: %w", err)
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("coordinator: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("coordinator: commit checkpoint: %w", err)
	}
	return nil
}

// Load reads the snapshot file; a missing file is (nil, nil), a
// corrupt one an error.
func (f *FileCheckpoint) Load() (*CheckpointState, error) {
	data, err := os.ReadFile(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("coordinator: read checkpoint: %w", err)
	}
	s := &CheckpointState{}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(s); err != nil {
		return nil, fmt.Errorf("coordinator: decode checkpoint: %w", err)
	}
	return s, nil
}

// Clear removes the snapshot file if present.
func (f *FileCheckpoint) Clear() error {
	if err := os.Remove(f.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("coordinator: clear checkpoint: %w", err)
	}
	return nil
}

// checkpointDigest fingerprints the computation a snapshot belongs to:
// the SiteRank mode (batched rounds regroup float summation, so their
// iterates are not interchangeable with unbatched ones mid-run), the
// site-space dimension, the numeric parameters, the teleport vector,
// and the content digests of every shard (unbatched mode: chain rows
// ride in the shards) or of the replicated chain (batched mode). Two
// runs with equal digests compute the identical float sequence, which
// is what makes resuming from a foreign process's snapshot sound.
func (r *run) checkpointDigest() wire.Digest {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloat := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	mode := r.cfg.mode()
	switch mode {
	case SiteRankBatched:
		writeInt(1)
	case SiteRankAsync:
		// The async discriminators extend the historical 0/1 values, so
		// pre-async snapshots stay resumable by the modes that wrote
		// them. The ordered schedule gets its own value plus the seed: a
		// resumed ordered run restarts the schedule, and seeds must not
		// cross-pollinate through a shared snapshot.
		if r.cfg.AsyncOrdered {
			writeInt(3)
			writeInt(int(r.cfg.AsyncSeed))
		} else {
			writeInt(2)
		}
	default:
		writeInt(0)
	}
	writeInt(r.ns)
	writeFloat(r.cfg.damping())
	writeFloat(r.cfg.tol())
	writeInt(r.cfg.maxIter())
	writeInt(len(r.tele))
	for _, v := range r.tele {
		writeFloat(v)
	}
	if mode == SiteRankBatched {
		h.Write(r.chainRef[:])
	} else {
		for _, ref := range r.refs {
			h.Write(ref.Digest[:])
		}
	}
	var out wire.Digest
	h.Sum(out[:0])
	return out
}
