package coordinator

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/matrix"
)

// This file implements SiteRankAsync, the barrier-free SiteRank mode.
//
// The wire protocol is strict request/response, so workers cannot push;
// barrier freedom is recovered on the coordinator instead: one driver
// goroutine per worker keeps exactly one KindAsyncUpdate in flight on
// its connection, and drivers on distinct workers run concurrently. A
// worker delayed 10× simply completes 10× fewer sweeps — nothing waits
// for it, which is exactly the straggler property the synchronous
// barrier lacks.
//
// All merging, convergence detection and failure handling happen
// sequentially in the supervisor (the calling goroutine): drivers only
// perform wire calls and deliver results on a channel, then park on a
// per-driver ack until their sweep is merged. The ack is what prevents
// a fast worker from re-sweeping an unchanged snapshot — whose merge
// would produce a residual of zero and fake convergence.
//
// Convergence is detected in two stages. The async phase tracks a
// decaying maximum of per-merge residuals (resEst); once every live
// worker has contributed to the current accumulator generation and
// resEst crossed Tol, the phase is a convergence *candidate* only. The
// drivers are drained, the epoch is acknowledged, and synchronous
// barrier verification rounds — the exact arithmetic of the
// synchronous mode — run until the true residual crosses Tol. The
// final iterate therefore meets Tol regardless of how optimistic the
// asynchronous estimate was, and the verification barrier is also the
// safe point where rejoined workers are re-admitted.

// asyncResDecay shapes the decaying residual estimate: each merge
// relaxes the remembered maximum by this factor before taking the new
// residual into account. Close enough to 1 that one small residual
// from a stale straggler sweep cannot fake convergence on its own;
// far enough below 1 that the estimate tracks the true trend within a
// few sweeps per worker.
const asyncResDecay = 0.9

// asyncStaleBuckets sizes Stats.AsyncStalenessHist; the last bucket
// absorbs every staleness ≥ asyncStaleBuckets−1.
const asyncStaleBuckets = 8

// asyncUpdate is one delivered sweep (or the driver's terminal error).
type asyncUpdate struct {
	idx      int
	partial  []float64
	dangling float64
	mass     float64
	// epoch and baseVer identify the accumulator generation and merge
	// version the sweep's snapshot was taken from.
	epoch   uint64
	baseVer uint64
	err     error
}

// asyncShared is the snapshot drivers sweep against. The supervisor
// publishes a freshly allocated iterate after every merge and never
// mutates a published slice, so drivers hand the pointer straight to
// the gob encoder without copying.
type asyncShared struct {
	mu      sync.Mutex
	x       []float64
	version uint64
	epoch   uint64
}

func (s *asyncShared) snapshot() ([]float64, uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.x, s.version, s.epoch
}

func (s *asyncShared) publish(x []float64, version, epoch uint64) {
	s.mu.Lock()
	s.x = x
	s.version = version
	s.epoch = epoch
	s.mu.Unlock()
}

// asyncAccum is the per-epoch versioned accumulator: the last sweep of
// every worker in the current generation, the merged iterate, and the
// decaying residual estimate. Owned exclusively by the supervisor.
type asyncAccum struct {
	r       *run
	f       float64
	uniform float64
	// x is the merged iterate, next the merge scratch (swapped).
	x    matrix.Vector
	next matrix.Vector
	// version counts merges across the whole phase (staleness is
	// measured in versions); has/partials/dangling/masses hold each
	// worker's latest contribution in the current epoch.
	version  uint64
	has      []bool
	partials [][]float64
	dangling []float64
	masses   []float64
	// lastRes is each worker's most recent merge residual this epoch. A
	// slow worker's sweeps arrive stale and jolt the iterate; requiring
	// every worker's latest jolt under Tol keeps the candidate honest —
	// fast workers alone can sit arbitrarily still around a wrong point.
	lastRes []float64
	resEst  float64
}

func newAsyncAccum(r *run, x matrix.Vector) *asyncAccum {
	n := len(r.c.workers)
	return &asyncAccum{
		r:        r,
		f:        r.cfg.damping(),
		uniform:  1.0 / float64(r.ns),
		x:        x,
		next:     matrix.NewVector(r.ns),
		has:      make([]bool, n),
		partials: make([][]float64, n),
		dangling: make([]float64, n),
		masses:   make([]float64, n),
		lastRes:  make([]float64, n),
		resEst:   math.Inf(1),
	}
}

// merge folds one sweep in and recomputes the iterate over the stored
// contributions, in fixed worker order:
//
//	y = f·Σ_w partial_w + (Σ_w f·dangling_w + (1−f)·mass_w)·v
//
// normalized. When every contribution swept the same iterate this is
// exactly the synchronous update — the owned sites partition the site
// space, so the per-worker masses partition Σx — and with mixed
// snapshots it is a chaotic relaxation whose answer the verification
// rounds confirm. Returns the L1 residual of this merge.
func (a *asyncAccum) merge(u *asyncUpdate) float64 {
	a.partials[u.idx] = u.partial
	a.dangling[u.idx] = u.dangling
	a.masses[u.idx] = u.mass
	a.has[u.idx] = true

	y := a.next
	y.Fill(0)
	var coeff float64
	for idx := range a.partials {
		if !a.has[idx] {
			continue
		}
		y.AddScaled(1, a.partials[idx])
		coeff += a.f*a.dangling[idx] + (1-a.f)*a.masses[idx]
	}
	if a.r.tele == nil {
		for t := range y {
			y[t] = a.f*y[t] + coeff*a.uniform
		}
	} else {
		for t := range y {
			y[t] = a.f*y[t] + coeff*a.r.tele[t]
		}
	}
	y.Normalize()
	residual := y.L1Diff(a.x)
	a.x, a.next = y, a.x
	a.version++
	a.lastRes[u.idx] = residual
	if math.IsInf(a.resEst, 1) {
		// First merge of an epoch: the decaying max restarts from the
		// observed residual (Inf·decay would stay Inf forever).
		a.resEst = residual
	} else {
		a.resEst = math.Max(residual, a.resEst*asyncResDecay)
	}
	return residual
}

// candidate reports whether the accumulator looks converged: every
// live worker has contributed to the current epoch (an accumulator
// missing a worker's rows is nowhere near the fixed point no matter how
// still it sits), every worker's latest merge moved the iterate by at
// most tol (a straggler's stale sweeps jolt the iterate each arrival;
// until those jolts die down the point is wrong, however quiet the fast
// workers are between them), and the decaying residual maximum is under
// tol. A candidate is not an answer — verification rounds confirm it
// against the true synchronous operator.
func (a *asyncAccum) candidate(tol float64) bool {
	for idx, alive := range a.r.alive {
		if !alive {
			continue
		}
		if !a.has[idx] || a.lastRes[idx] > tol {
			return false
		}
	}
	return a.resEst <= tol
}

// reset opens a new epoch after a membership change: ownership moved,
// so every stored contribution may cover the wrong row set. The merged
// iterate survives (it is still a valid starting point); the estimate
// restarts pessimistic.
func (a *asyncAccum) reset() {
	for i := range a.has {
		a.has[i] = false
		a.partials[i] = nil
		a.lastRes[i] = 0
	}
	a.resEst = math.Inf(1)
}

// recordMerge does the shared per-merge accounting: merge counters,
// the per-worker sweep decomposition and the staleness histogram.
func (r *run) recordMerge(idx int, staleness uint64) {
	r.stats.AsyncUpdatesMerged++
	r.stats.AsyncWorkerSweeps[idx]++
	bucket := int(staleness)
	if bucket >= asyncStaleBuckets {
		bucket = asyncStaleBuckets - 1
	}
	r.stats.AsyncStalenessHist[bucket]++
}

// asyncSiteRank runs the barrier-free SiteRank: the concurrent
// per-worker driver protocol by default, or the seeded sequential
// schedule under Config.AsyncOrdered. The returned round count is the
// merges executed by this run plus the verification rounds.
func (r *run) asyncSiteRank() (matrix.Vector, int, error) {
	r.stats.AsyncWorkerSweeps = make([]int, len(r.c.workers))
	r.stats.AsyncStalenessHist = make([]int, asyncStaleBuckets)
	if r.cfg.AsyncOrdered {
		return r.asyncOrdered()
	}
	return r.asyncConcurrent()
}

// asyncDriver keeps one KindAsyncUpdate in flight against one worker:
// snapshot, sweep, deliver, wait for the merge ack, repeat. It exits on
// stop, on any call failure (delivering the error as its final update)
// or on a malformed response. The updates channel is buffered to the
// fleet size and each driver has at most one undelivered update, so
// sends never block.
func (r *run) asyncDriver(idx int, sh *asyncShared, updates chan<- *asyncUpdate, ack <-chan struct{}, stop <-chan struct{}) {
	w := r.c.workers[idx]
	for {
		select {
		case <-stop:
			return
		default:
		}
		x, ver, epoch := sh.snapshot()
		u := &asyncUpdate{idx: idx, baseVer: ver, epoch: epoch}
		resp, err := w.call(r.ctx, &wire.Request{
			Kind:     wire.KindAsyncUpdate,
			NumSites: r.ns,
			X:        x,
			Epoch:    epoch,
		}, &r.c.counters, r.c.callTimeout())
		if err != nil {
			u.err = err
			updates <- u
			return
		}
		if len(resp.Partial) != r.ns {
			u.err = fmt.Errorf("coordinator: %s returned partial of length %d, want %d",
				w.addr, len(resp.Partial), r.ns)
			updates <- u
			return
		}
		u.partial, u.dangling, u.mass = resp.Partial, resp.DanglingMass, resp.Mass
		updates <- u
		select {
		case <-ack:
		case <-stop:
			return
		}
	}
}

// asyncConcurrent is the default asynchronous protocol: one driver per
// live worker, merges applied in arrival order by this (supervisor)
// goroutine. Worker losses reassign rows mid-phase and open a new
// epoch; rejoined workers wait for the verification barrier.
func (r *run) asyncConcurrent() (matrix.Vector, int, error) {
	tol := r.cfg.tol()
	nw := len(r.c.workers)
	budget := r.cfg.maxIter() * nw

	x, startMerges, ckpt, ckptDigest, err := r.resumeSiteRank(budget)
	if err != nil {
		return nil, 0, err
	}
	acc := newAsyncAccum(r, x)

	epoch := uint64(1)
	sh := &asyncShared{x: append([]float64(nil), x...), epoch: epoch}
	updates := make(chan *asyncUpdate, nw)
	acks := make([]chan struct{}, nw)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, idx := range r.aliveIdxs() {
		acks[idx] = make(chan struct{}, 1)
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			r.asyncDriver(idx, sh, updates, acks[idx], stop)
		}(idx)
	}
	// stopAll drains the fleet: closing stop releases parked drivers,
	// in-flight sweeps complete and are discarded. Deferred so every
	// error return leaves no driver behind; idempotent because error
	// paths and the candidate path both reach it.
	stopped := false
	stopAll := func() {
		if stopped {
			return
		}
		stopped = true
		close(stop)
		wg.Wait()
		for {
			select {
			case <-updates:
			default:
				return
			}
		}
	}
	defer stopAll()

	merges := startMerges
	ckptEvery := r.cfg.checkpointEvery() * nw
	for {
		var u *asyncUpdate
		select {
		case <-r.ctx.Done():
			return nil, merges - startMerges, r.ctx.Err()
		case u = <-updates:
		}
		if u.err != nil {
			if !errors.Is(u.err, errLost) {
				return nil, merges - startMerges, u.err
			}
			moved, lerr := r.lose(u.idx, u.err, true)
			if lerr != nil {
				return nil, merges - startMerges, lerr
			}
			if len(moved) > 0 {
				if serr := r.ship(moved); serr != nil {
					return nil, merges - startMerges, serr
				}
			}
			r.stats.Retries++
			// Ownership moved: contributions keyed to the old partition
			// must not mix with sweeps of the new one.
			epoch++
			acc.reset()
			sh.publish(append([]float64(nil), acc.x...), acc.version, epoch)
			continue
		}
		if u.epoch != epoch {
			// Dispatched before a membership change; the driver
			// re-snapshots under the new epoch.
			acks[u.idx] <- struct{}{}
			continue
		}
		acc.merge(u)
		merges++
		r.recordMerge(u.idx, acc.version-1-u.baseVer)
		sh.publish(append([]float64(nil), acc.x...), acc.version, epoch)
		acks[u.idx] <- struct{}{}
		if acc.candidate(tol) {
			break
		}
		if merges >= budget {
			return acc.x, merges - startMerges, fmt.Errorf("coordinator: async siterank: %w after %d merges",
				matrix.ErrNotConverged, merges)
		}
		if ckpt != nil && (merges-startMerges)%ckptEvery == 0 {
			if err := ckpt.Save(&CheckpointState{Digest: ckptDigest, Round: merges, X: acc.x}); err != nil {
				return nil, merges - startMerges, err
			}
		}
	}
	stopAll()
	return r.asyncFinish(acc, epoch, merges-startMerges, ckpt)
}

// asyncOrdered is the deterministic asynchronous schedule: a seeded
// rand draws one live worker at a time, and its sweep is merged before
// the next draw (every merge at staleness zero). With a fixed seed and
// fleet the SiteRank is bitwise reproducible across runs — the
// property the randomized-update literature analyzes, and the one the
// reproducibility test pins.
func (r *run) asyncOrdered() (matrix.Vector, int, error) {
	tol := r.cfg.tol()
	nw := len(r.c.workers)
	budget := r.cfg.maxIter() * nw

	x, startMerges, ckpt, ckptDigest, err := r.resumeSiteRank(budget)
	if err != nil {
		return nil, 0, err
	}
	acc := newAsyncAccum(r, x)
	rng := rand.New(rand.NewSource(r.cfg.AsyncSeed))

	epoch := uint64(1)
	merges := startMerges
	ckptEvery := r.cfg.checkpointEvery() * nw
	for {
		if err := r.ctx.Err(); err != nil {
			return nil, merges - startMerges, err
		}
		rejoined := r.stats.WorkersRejoined
		if err := r.maybeReadmit(); err != nil {
			return nil, merges - startMerges, err
		}
		if r.stats.WorkersRejoined != rejoined {
			// Re-admission moved rows back: new epoch, like any other
			// membership change.
			epoch++
			acc.reset()
		}
		idxs := r.aliveIdxs()
		idx := idxs[rng.Intn(len(idxs))]
		resp, err := r.c.workers[idx].call(r.ctx, &wire.Request{
			Kind:     wire.KindAsyncUpdate,
			NumSites: r.ns,
			X:        acc.x,
			Epoch:    epoch,
		}, &r.c.counters, r.c.callTimeout())
		if err != nil {
			if !errors.Is(err, errLost) {
				return nil, merges - startMerges, err
			}
			moved, lerr := r.lose(idx, err, true)
			if lerr != nil {
				return nil, merges - startMerges, lerr
			}
			if len(moved) > 0 {
				if serr := r.ship(moved); serr != nil {
					return nil, merges - startMerges, serr
				}
			}
			r.stats.Retries++
			epoch++
			acc.reset()
			continue
		}
		if len(resp.Partial) != r.ns {
			return nil, merges - startMerges, fmt.Errorf("coordinator: %s returned partial of length %d, want %d",
				r.c.workers[idx].addr, len(resp.Partial), r.ns)
		}
		acc.merge(&asyncUpdate{
			idx: idx, partial: resp.Partial, dangling: resp.DanglingMass, mass: resp.Mass,
		})
		merges++
		r.recordMerge(idx, 0)
		if acc.candidate(tol) {
			break
		}
		if merges >= budget {
			return acc.x, merges - startMerges, fmt.Errorf("coordinator: async siterank: %w after %d merges",
				matrix.ErrNotConverged, merges)
		}
		if ckpt != nil && (merges-startMerges)%ckptEvery == 0 {
			if err := ckpt.Save(&CheckpointState{Digest: ckptDigest, Round: merges, X: acc.x}); err != nil {
				return nil, merges - startMerges, err
			}
		}
	}
	return r.asyncFinish(acc, epoch, merges-startMerges, ckpt)
}

// asyncFinish is the shared tail of both schedules: acknowledge the
// final epoch across the drained fleet, then confirm the candidate with
// synchronous verification rounds. The verification loop is what makes
// the asynchronous result exact: it iterates the true synchronous
// operator until the residual crosses Tol, so an optimistic estimate
// costs extra rounds, never a wrong answer.
func (r *run) asyncFinish(acc *asyncAccum, epoch uint64, asyncRounds int, ckpt Checkpoint) (matrix.Vector, int, error) {
	if err := r.asyncDrain(epoch); err != nil {
		return nil, asyncRounds, err
	}
	x, vrounds, err := r.verifySyncRounds(acc.x, r.cfg.maxIter())
	r.stats.AsyncVerifyRounds = vrounds
	if err != nil {
		return nil, asyncRounds + vrounds, err
	}
	if ckpt != nil {
		if cerr := ckpt.Clear(); cerr != nil {
			return nil, asyncRounds + vrounds, cerr
		}
	}
	return x, asyncRounds + vrounds, nil
}

// asyncDrain retires the asynchronous epoch on every live worker
// (KindAsyncAck). A worker lost at the ack goes through the normal
// loss path — its rows must reach a survivor before the verification
// rounds cover the chain.
func (r *run) asyncDrain(epoch uint64) error {
	for _, idx := range r.aliveIdxs() {
		_, err := r.c.workers[idx].call(r.ctx, &wire.Request{
			Kind:  wire.KindAsyncAck,
			Epoch: epoch,
		}, &r.c.counters, r.c.callTimeout())
		if err == nil {
			continue
		}
		if !errors.Is(err, errLost) {
			return err
		}
		moved, lerr := r.lose(idx, err, true)
		if lerr != nil {
			return lerr
		}
		if len(moved) > 0 {
			if serr := r.ship(moved); serr != nil {
				return serr
			}
		}
		r.stats.Retries++
	}
	return nil
}

// verifySyncRounds runs barrier-synchronous power rounds from x until
// the residual crosses Tol — the exact arithmetic and reduce order of
// distributedSiteRank, including loss recovery and re-admission at the
// round barrier (the safe point asynchronous phases cannot offer).
func (r *run) verifySyncRounds(x matrix.Vector, maxRounds int) (matrix.Vector, int, error) {
	f := r.cfg.damping()
	tol := r.cfg.tol()
	uniform := 1.0 / float64(r.ns)
	next := matrix.NewVector(r.ns)
	partials := make([][]float64, len(r.c.workers))
	dangling := make([]float64, len(r.c.workers))

	for round := 1; round <= maxRounds; round++ {
		var idxs []int
		for {
			if err := r.ctx.Err(); err != nil {
				return nil, round - 1, err
			}
			if err := r.maybeReadmit(); err != nil {
				return nil, round - 1, err
			}
			idxs = r.aliveIdxs()
			resps := make([]*wire.Response, len(idxs))
			errs := make([]error, len(idxs))
			var wg sync.WaitGroup
			for i, idx := range idxs {
				wg.Add(1)
				go func(i, idx int) {
					defer wg.Done()
					resps[i], errs[i] = r.c.workers[idx].call(r.ctx, &wire.Request{
						Kind:     wire.KindPowerRound,
						NumSites: r.ns,
						X:        x,
					}, &r.c.counters, r.c.callTimeout())
				}(i, idx)
			}
			wg.Wait()
			var lostIdxs []int
			var lostErr error
			for i, idx := range idxs {
				if err := errs[i]; err != nil {
					if errors.Is(err, errLost) {
						lostIdxs = append(lostIdxs, idx)
						lostErr = err
						continue
					}
					return nil, round - 1, err
				}
				if len(resps[i].Partial) != r.ns {
					return nil, round - 1, fmt.Errorf("coordinator: %s returned partial of length %d, want %d",
						r.c.workers[idx].addr, len(resps[i].Partial), r.ns)
				}
				partials[idx] = resps[i].Partial
				dangling[idx] = resps[i].DanglingMass
			}
			if len(lostIdxs) == 0 {
				break
			}
			for _, idx := range lostIdxs {
				moved, lerr := r.lose(idx, lostErr, true)
				if lerr != nil {
					return nil, round - 1, lerr
				}
				if len(moved) > 0 {
					if err := r.ship(moved); err != nil {
						return nil, round - 1, err
					}
				}
			}
			r.stats.Retries++
		}
		next.Fill(0)
		var dangMass float64
		for _, idx := range idxs {
			next.AddScaled(1, partials[idx])
			dangMass += dangling[idx]
		}
		coeff := f*dangMass + (1-f)*x.Sum()
		if r.tele == nil {
			for t := range next {
				next[t] = f*next[t] + coeff*uniform
			}
		} else {
			for t := range next {
				next[t] = f*next[t] + coeff*r.tele[t]
			}
		}
		next.Normalize()
		residual := next.L1Diff(x)
		x, next = next, x
		if residual <= tol {
			return x, round, nil
		}
	}
	return x, maxRounds, fmt.Errorf("coordinator: async siterank verification: %w after %d rounds",
		matrix.ErrNotConverged, maxRounds)
}
