package coordinator

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"lmmrank/internal/dist/wire"
)

func TestFileCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "siterank.ckpt")
	ck := NewFileCheckpoint(path)

	// Empty store: Load is the documented nil, nil.
	st, err := ck.Load()
	if err != nil || st != nil {
		t.Fatalf("Load on a missing file = %v, %v, want nil, nil", st, err)
	}

	in := &CheckpointState{Digest: wire.Digest{1, 2, 3}, Round: 42, X: []float64{0.25, 0.75}}
	if err := ck.Save(in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file survived the atomic rename: stat err = %v", err)
	}
	out, err := ck.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Digest != in.Digest || out.Round != in.Round || len(out.X) != len(in.X) ||
		out.X[0] != in.X[0] || out.X[1] != in.X[1] {
		t.Errorf("Load = %+v, want %+v", out, in)
	}

	// A later Save overwrites the earlier state.
	in.Round = 43
	in.X[0] = 0.5
	if err := ck.Save(in); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	if out, err = ck.Load(); err != nil || out.Round != 43 || out.X[0] != 0.5 {
		t.Errorf("Load after overwrite = %+v, %v, want Round 43, X[0] 0.5", out, err)
	}

	if err := ck.Clear(); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if st, err := ck.Load(); err != nil || st != nil {
		t.Errorf("Load after Clear = %v, %v, want nil, nil", st, err)
	}
	if err := ck.Clear(); err != nil {
		t.Errorf("Clear on an already-empty store: %v", err)
	}
}

func TestMemCheckpointIsolatesState(t *testing.T) {
	ck := NewMemCheckpoint()
	in := &CheckpointState{Digest: wire.Digest{9}, Round: 7, X: []float64{0.5, 0.5}}
	if err := ck.Save(in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	in.X[0] = -1 // the store must have cloned, not aliased
	out, err := ck.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.X[0] != 0.5 {
		t.Errorf("stored X aliased the caller's slice: X[0] = %v", out.X[0])
	}
	out.X[1] = -1 // and the loaded copy must not alias the store
	again, _ := ck.Load()
	if again.X[1] != 0.5 {
		t.Errorf("loaded X aliased the store: X[1] = %v", again.X[1])
	}
}

// cancelAfter interrupts a run from inside its own checkpoint: after the
// n-th successful Save it cancels the run's context. The cancellation
// lands in the sequential gap between power rounds — no wire call is in
// flight, so every connection stays usable and the same coordinator can
// immediately run the resume leg.
type cancelAfter struct {
	Checkpoint
	n      int
	saves  int
	cancel context.CancelFunc
}

func (c *cancelAfter) Save(st *CheckpointState) error {
	if err := c.Checkpoint.Save(st); err != nil {
		return err
	}
	c.saves++
	if c.saves == c.n {
		c.cancel()
	}
	return nil
}

// resumeFixture runs the reference (uninterrupted) ranking, then the
// interrupt-at-round-n + resume pair on one coordinator, and returns
// (reference result, resumed result). cfg must not carry a Checkpoint.
func resumeFixture(t *testing.T, cfg Config, n int) (*Result, *Result) {
	t.Helper()
	web := rankableWeb()
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	c, err := Dial([]string{a1, a2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	ref, err := c.Rank(web, cfg)
	if err != nil {
		t.Fatalf("reference Rank: %v", err)
	}
	if ref.Stats.SiteRankRounds <= n+1 {
		t.Fatalf("reference converged in %d rounds — too few to interrupt at round %d",
			ref.Stats.SiteRankRounds, n)
	}

	store := NewFileCheckpoint(filepath.Join(t.TempDir(), "siterank.ckpt"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Checkpoint = &cancelAfter{Checkpoint: store, n: n, cancel: cancel}
	if _, err := c.RankCtx(ctx, web, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Rank: err = %v, want context.Canceled", err)
	}
	st, err := store.Load()
	if err != nil || st == nil {
		t.Fatalf("checkpoint after the interrupt: %v, %v, want saved state", st, err)
	}

	cfg.Checkpoint = store
	res, err := c.Rank(web, cfg)
	if err != nil {
		t.Fatalf("resumed Rank: %v", err)
	}
	if res.Stats.ResumedFromRound != st.Round {
		t.Errorf("ResumedFromRound = %d, want %d (the checkpointed round)",
			res.Stats.ResumedFromRound, st.Round)
	}
	if got, want := res.Stats.ResumedFromRound+res.Stats.SiteRankRounds, ref.Stats.SiteRankRounds; got != want {
		t.Errorf("resumed %d + executed %d = %d rounds, want the uninterrupted total %d",
			res.Stats.ResumedFromRound, res.Stats.SiteRankRounds, got, want)
	}
	// Success must consume the checkpoint: a later unrelated run on this
	// store starts fresh.
	if st, err := store.Load(); err != nil || st != nil {
		t.Errorf("checkpoint survived a converged run: %v, %v", st, err)
	}
	return ref, res
}

// TestResumeMidSiteRank interrupts an unbatched distributed SiteRank
// after 5 checkpointed rounds and resumes it on a fresh run. The resumed
// iterate continues the exact float sequence (gob round-trips float64
// losslessly and worker order is unchanged), so the final ranks are
// bitwise identical to the uninterrupted run — L1 distance exactly 0.
func TestResumeMidSiteRank(t *testing.T) {
	ref, res := resumeFixture(t, Config{
		DistributedSiteRank: true,
		Tol:                 1e-12,
		MaxIter:             2000,
	}, 5)
	if d := res.DocRank.L1Diff(ref.DocRank); d != 0 {
		t.Errorf("‖resumed − uninterrupted‖₁ = %g, want exactly 0", d)
	}
	if d := res.SiteRank.L1Diff(ref.SiteRank); d != 0 {
		t.Errorf("‖resumed − uninterrupted‖₁ on SiteRank = %g, want exactly 0", d)
	}
}

// TestResumeBatchedSiteRank is the batched twin: checkpoints land on
// exchange boundaries, so the resumed run re-enters the same K-round
// cadence and the arithmetic regroups nowhere — bitwise equal again.
func TestResumeBatchedSiteRank(t *testing.T) {
	ref, res := resumeFixture(t, Config{
		DistributedSiteRank: true,
		BatchRounds:         4,
		Tol:                 1e-12,
		MaxIter:             2000,
	}, 3)
	if d := res.DocRank.L1Diff(ref.DocRank); d != 0 {
		t.Errorf("‖resumed − uninterrupted‖₁ = %g, want exactly 0", d)
	}
	if res.Stats.ResumedFromRound%4 != 0 {
		t.Errorf("batched checkpoint at round %d, want an exchange boundary (multiple of 4)",
			res.Stats.ResumedFromRound)
	}
}

// TestResumeRejectsForeignCheckpoint pins the digest guard: a checkpoint
// whose digest does not match this run's graph + configuration is
// ignored and the iteration starts fresh.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	web := rankableWeb()
	_, a1 := startWorker(t)
	c, err := Dial([]string{a1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	store := NewMemCheckpoint()
	if err := store.Save(&CheckpointState{
		Digest: wire.Digest{0xde, 0xad},
		Round:  3,
		X:      []float64{0.5, 0.5},
	}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	res, err := c.Rank(web, Config{DistributedSiteRank: true, Checkpoint: store})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if res.Stats.ResumedFromRound != 0 {
		t.Errorf("ResumedFromRound = %d, want 0: a foreign digest must not resume",
			res.Stats.ResumedFromRound)
	}
}
