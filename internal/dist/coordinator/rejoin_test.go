package coordinator

import (
	"testing"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/lmm"
)

// fastRedial is the rejoin-friendly policy the tests use: quick
// aggressive redials so a killed-then-surviving worker is back within a
// few power rounds.
func fastRedial(failures int) RetryPolicy {
	return RetryPolicy{
		MaxWorkerFailures: failures,
		MaxRedials:        200,
		RedialBase:        time.Millisecond,
		RedialMax:         5 * time.Millisecond,
	}
}

// TestRejoinMidRunWarmReshipsNothing kills one worker's connection at
// its first SiteRank power round and lets the redial loop re-admit it
// mid-iteration. The worker process survives with its digest cache
// warm (it was loaded earlier in the same run), so the rebalance-back
// must negotiate every shard as a cache hit: RejoinShardBytes == 0.
// The final ranks must still match the single-node reference — a
// double-counted chain row (a site left in the interim owner's session)
// would blow the tolerance by orders of magnitude.
func TestRejoinMidRunWarmReshipsNothing(t *testing.T) {
	web := rankableWeb()
	ref, err := lmm.LayeredDocRank(web, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference LayeredDocRank: %v", err)
	}
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	kt := killAt(wire.KindPowerRound)
	_, a3 := proxiedWorker(t, kt.script)
	c, err := Dial([]string{a1, a2, a3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// A tight tolerance keeps the power iteration running long enough
	// (hundreds of rounds) that the ~1 ms redial always lands mid-run.
	res, err := c.Rank(web, Config{
		DistributedSiteRank: true,
		Tol:                 1e-13,
		MaxIter:             5000,
		Retry:               fastRedial(1),
	})
	if err != nil {
		t.Fatalf("Rank with a kill-then-rejoin worker: %v", err)
	}
	if !kt.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖rejoined − reference‖₁ = %g, want < 1e-9", d)
	}
	if res.Stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Stats.WorkersLost)
	}
	if res.Stats.WorkersRejoined != 1 {
		t.Fatalf("WorkersRejoined = %d, want 1 (RedialAttempts = %d)",
			res.Stats.WorkersRejoined, res.Stats.RedialAttempts)
	}
	if res.Stats.RedialAttempts < 1 {
		t.Errorf("RedialAttempts = %d, want >= 1", res.Stats.RedialAttempts)
	}
	if res.Stats.RejoinShardBytes != 0 {
		t.Errorf("RejoinShardBytes = %d, want 0 (the rejoiner's cache was warm)",
			res.Stats.RejoinShardBytes)
	}
}

// TestRejoinFromPreviousRun kills a worker in run 1 (no redial — it
// stays lost) and gives run 2 a redial budget: a peer already broken
// when a run starts must get its redialer too, rejoin mid-run, and
// re-ship nothing (its cache is warm from run 1's load phase).
func TestRejoinFromPreviousRun(t *testing.T) {
	web := rankableWeb()
	ref, err := lmm.LayeredDocRank(web, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference LayeredDocRank: %v", err)
	}
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	kt := killAt(wire.KindPowerRound)
	_, a3 := proxiedWorker(t, kt.script)
	c, err := Dial([]string{a1, a2, a3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	cfg := Config{
		DistributedSiteRank: true,
		Retry:               RetryPolicy{MaxWorkerFailures: 1},
	}
	if _, err := c.Rank(web, cfg); err != nil {
		t.Fatalf("run 1 (loss, no redial): %v", err)
	}
	if !kt.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}

	cfg.Tol = 1e-13
	cfg.MaxIter = 5000
	cfg.Retry = fastRedial(1)
	res, err := c.Rank(web, cfg)
	if err != nil {
		t.Fatalf("run 2 (rejoin): %v", err)
	}
	if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖rejoined − reference‖₁ = %g, want < 1e-9", d)
	}
	if res.Stats.WorkersLost != 0 {
		t.Errorf("WorkersLost = %d, want 0 (the loss was last run's)", res.Stats.WorkersLost)
	}
	if res.Stats.WorkersRejoined != 1 {
		t.Fatalf("WorkersRejoined = %d, want 1 (RedialAttempts = %d)",
			res.Stats.WorkersRejoined, res.Stats.RedialAttempts)
	}
	if res.Stats.RejoinShardBytes != 0 {
		t.Errorf("RejoinShardBytes = %d, want 0 (warm from run 1)", res.Stats.RejoinShardBytes)
	}
}

// TestNoRedialWithoutPolicy pins the default: MaxRedials = 0 keeps the
// pre-redial contract — a lost worker stays lost for the whole run and
// nothing redials it in the background.
func TestNoRedialWithoutPolicy(t *testing.T) {
	web := rankableWeb()
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	kt := killAt(wire.KindPowerRound)
	_, a3 := proxiedWorker(t, kt.script)
	c, err := Dial([]string{a1, a2, a3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	res, err := c.Rank(web, Config{
		DistributedSiteRank: true,
		Tol:                 1e-13,
		MaxIter:             5000,
		Retry:               RetryPolicy{MaxWorkerFailures: 1},
	})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if !kt.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	if res.Stats.WorkersRejoined != 0 || res.Stats.RedialAttempts != 0 {
		t.Errorf("WorkersRejoined = %d, RedialAttempts = %d, want 0/0 without MaxRedials",
			res.Stats.WorkersRejoined, res.Stats.RedialAttempts)
	}
}
