package coordinator

import "testing"

func maxLoad(sizes []int, owner []int, nWorkers int) int {
	load := make([]int, nWorkers)
	for s, w := range owner {
		load[w] += sizes[s]
	}
	m := 0
	for _, l := range load {
		if l > m {
			m = l
		}
	}
	return m
}

// TestAssignSitesBeatsRoundRobinOnSkew is the balancing claim: on a
// skewed site-size distribution, weighted LPT's bottleneck worker holds
// strictly less than round-robin's (the local-rank phase's wall clock
// is the max over workers, so this is the number that matters).
func TestAssignSitesBeatsRoundRobinOnSkew(t *testing.T) {
	// One big site plus a tail — the shape real webs have. Round-robin
	// by SiteID collides the big site with every (s mod 2 == 0) small
	// one.
	sizes := []int{400, 10, 90, 10, 80, 10, 70, 10, 60, 10}
	workers := []int{0, 1}

	owner := assignSites(sizes, workers, make([]int, 2))
	for s, w := range owner {
		if w != 0 && w != 1 {
			t.Fatalf("site %d assigned to unknown worker %d", s, w)
		}
	}
	lpt := maxLoad(sizes, owner, 2)

	rr := make([]int, len(sizes))
	for s := range rr {
		rr[s] = s % 2
	}
	rrMax := maxLoad(sizes, rr, 2)

	if lpt >= rrMax {
		t.Errorf("LPT bottleneck %d docs, round-robin %d — LPT must be strictly better on this fixture", lpt, rrMax)
	}
	// LPT is within 4/3 of the lower bound (total/2 here, since the
	// biggest site fits in half the total).
	total := 0
	for _, n := range sizes {
		total += n
	}
	if lim := (total/2)*4/3 + 1; lpt > lim {
		t.Errorf("LPT bottleneck %d exceeds the 4/3 bound %d", lpt, lim)
	}
}

// TestAssignSitesDeterministic pins that assignment is a pure function
// of sizes and fleet — losses aside, reruns must partition identically
// (bitwise-identical distributed results depend on it).
func TestAssignSitesDeterministic(t *testing.T) {
	sizes := []int{5, 5, 5, 3, 3, 8, 1, 0, 2, 5}
	a := assignSites(sizes, []int{0, 1, 2}, make([]int, 3))
	b := assignSites(sizes, []int{0, 1, 2}, make([]int, 3))
	for s := range a {
		if a[s] != b[s] {
			t.Fatalf("assignment differs at site %d: %d vs %d", s, a[s], b[s])
		}
	}
}

// TestAssignSitesSkipsMissingWorkers covers reassignment's shape: the
// usable fleet may be any subset of indices.
func TestAssignSitesSkipsMissingWorkers(t *testing.T) {
	sizes := []int{4, 4, 4, 4}
	owner := assignSites(sizes, []int{1, 3}, make([]int, 4))
	for s, w := range owner {
		if w != 1 && w != 3 {
			t.Fatalf("site %d assigned to dead worker %d", s, w)
		}
	}
}
