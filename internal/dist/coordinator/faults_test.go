package coordinator

import (
	"sync/atomic"
	"testing"

	"lmmrank/internal/dist/chaos"
	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
)

// killer pairs a chaos kill script with a record of whether it fired,
// so tests can assert the scripted death actually happened (a test that
// passes because the fault never triggered proves nothing).
type killer struct {
	script chaos.Script
	fired  atomic.Bool
}

func killAt(k wire.Kind) *killer {
	kt := &killer{}
	inner := chaos.KillAtKind(k)
	kt.script = func(n int, req *wire.Request) chaos.Decision {
		d := inner(n, req)
		if d.Action == chaos.Drop {
			kt.fired.Store(true)
		}
		return d
	}
	return kt
}

func (k *killer) died() bool { return k.fired.Load() }

// proxiedWorker starts a real worker behind a chaos proxy running the
// given script and returns the proxy address — the coordinator dials
// the proxy, the worker process (and its digest cache) survives
// whatever the script does to the connection.
func proxiedWorker(t *testing.T, script chaos.Script) (*chaos.Proxy, string) {
	t.Helper()
	_, addr := startWorker(t)
	p, err := chaos.NewProxy(addr, script)
	if err != nil {
		t.Fatalf("chaos.NewProxy: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p, p.Addr()
}

// lossFixture builds a fleet of two directly connected workers plus one
// behind a kill-scripted chaos proxy, dials a coordinator, and returns
// the reference single-node ranking of the test web.
func lossFixture(t *testing.T, dieOn wire.Kind) (*Coordinator, *killer, *graph.DocGraph, *lmm.WebResult) {
	t.Helper()
	web := rankableWeb()
	ref, err := lmm.LayeredDocRank(web, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference LayeredDocRank: %v", err)
	}
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	kt := killAt(dieOn)
	_, a3 := proxiedWorker(t, kt.script)
	c, err := Dial([]string{a1, a2, a3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, kt, web, ref
}

// checkRecovery asserts the post-loss result still matches the
// single-node reference and that the loss is visible in Stats.
func checkRecovery(t *testing.T, res *Result, ref *lmm.WebResult, wantReassign bool) {
	t.Helper()
	if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖recovered − reference‖₁ = %g, want < 1e-9", d)
	}
	if d := res.SiteRank.L1Diff(ref.SiteRank); d >= 1e-9 {
		t.Errorf("‖recovered − reference‖₁ on SiteRank = %g, want < 1e-9", d)
	}
	if res.Stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Stats.WorkersLost)
	}
	if res.Stats.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1", res.Stats.Retries)
	}
	if wantReassign && res.Stats.Reassignments < 1 {
		t.Errorf("Reassignments = %d, want >= 1", res.Stats.Reassignments)
	}
	if !wantReassign && res.Stats.Reassignments != 0 {
		t.Errorf("Reassignments = %d, want 0 (chain is replicated)", res.Stats.Reassignments)
	}
}

// TestRecoversFromLossDuringLoad kills a peer at its first shard
// shipment: the run must reassign its sites and finish with ranks
// identical to single-node.
func TestRecoversFromLossDuringLoad(t *testing.T) {
	c, kt, web, ref := lossFixture(t, wire.KindLoad)
	res, err := c.Rank(web, Config{Retry: RetryPolicy{MaxWorkerFailures: 1}})
	if err != nil {
		t.Fatalf("Rank with a peer dying at load: %v", err)
	}
	if !kt.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, true)
}

// TestRecoversFromLossDuringLocalRank kills a peer mid local-DocRank —
// after it accepted its shards but before returning any ranks. Only its
// sites are re-ranked, on the survivors that inherited them.
func TestRecoversFromLossDuringLocalRank(t *testing.T) {
	c, kt, web, ref := lossFixture(t, wire.KindRankLocal)
	res, err := c.Rank(web, Config{Retry: RetryPolicy{MaxWorkerFailures: 1}})
	if err != nil {
		t.Fatalf("Rank with a peer dying at local rank: %v", err)
	}
	if !kt.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, true)
}

// TestRecoversFromLossDuringPowerRound kills a peer mid SiteRank power
// iteration: its chain rows ride inside the shards, so reassignment
// restores full row coverage and the round is redone.
func TestRecoversFromLossDuringPowerRound(t *testing.T) {
	c, kt, web, ref := lossFixture(t, wire.KindPowerRound)
	res, err := c.Rank(web, Config{
		DistributedSiteRank: true,
		Retry:               RetryPolicy{MaxWorkerFailures: 1},
	})
	if err != nil {
		t.Fatalf("Rank with a peer dying at a power round: %v", err)
	}
	if !kt.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, true)
}

// TestFailsOverBatchedRounds kills the first peer asked for a batched
// SiteRank exchange: every worker holds the replicated chain, so the
// coordinator fails over with no reassignment at all.
func TestFailsOverBatchedRounds(t *testing.T) {
	web := rankableWeb()
	ref, err := lmm.LayeredDocRank(web, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	// The scripted peer must be fleet index 0 so the batch rotation
	// hits it first.
	kt := killAt(wire.KindBatchRounds)
	_, a0 := proxiedWorker(t, kt.script)
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	c, err := Dial([]string{a0, a1, a2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	res, err := c.Rank(web, Config{
		DistributedSiteRank: true,
		BatchRounds:         4,
		Retry:               RetryPolicy{MaxWorkerFailures: 1},
	})
	if err != nil {
		t.Fatalf("Rank with a peer dying at a batched round: %v", err)
	}
	if !kt.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, false)
	if res.Stats.BatchMessagesSaved <= 0 {
		t.Errorf("BatchMessagesSaved = %d, want > 0", res.Stats.BatchMessagesSaved)
	}
}

// TestLossWithoutRetryBudgetFails pins the zero-value behavior: no
// RetryPolicy means the first loss fails the run cleanly.
func TestLossWithoutRetryBudgetFails(t *testing.T) {
	c, _, web, _ := lossFixture(t, wire.KindRankLocal)
	if _, err := c.Rank(web, Config{}); err == nil {
		t.Fatal("Rank survived a worker loss with a zero retry budget")
	}
}

// TestSecondLossExhaustsBudget gives the run a budget of one failure
// and kills two peers: the run must fail, not loop.
func TestSecondLossExhaustsBudget(t *testing.T) {
	web := rankableWeb()
	_, a1 := startWorker(t)
	_, a2 := proxiedWorker(t, killAt(wire.KindRankLocal).script)
	_, a3 := proxiedWorker(t, killAt(wire.KindRankLocal).script)
	c, err := Dial([]string{a1, a2, a3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Rank(web, Config{Retry: RetryPolicy{MaxWorkerFailures: 1}}); err == nil {
		t.Fatal("Rank survived two losses on a budget of one")
	}
}
