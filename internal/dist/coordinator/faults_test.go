package coordinator

import (
	"encoding/gob"
	"net"
	"sort"
	"sync"
	"testing"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
)

// fakeWorker is a scripted peer speaking just enough of the wire
// protocol to die deterministically at a chosen request kind: it
// answers every request correctly (including real local DocRanks and
// power-round partials over the shards it was shipped) until the first
// request of kind dieOn arrives, at which point it hangs up
// mid-protocol — exactly what a peer crashing mid-run looks like to the
// coordinator. It never claims cache hits, so every shard reaches it in
// full.
type fakeWorker struct {
	t     *testing.T
	ln    net.Listener
	dieOn wire.Kind

	mu   sync.Mutex
	dead bool
}

func startFakeWorker(t *testing.T, dieOn wire.Kind) (*fakeWorker, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakeWorker{t: t, ln: ln, dieOn: dieOn}
	go f.serve()
	t.Cleanup(func() { ln.Close() })
	return f, ln.Addr().String()
}

// died reports whether the scripted death was triggered.
func (f *fakeWorker) died() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dead
}

func (f *fakeWorker) serve() {
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		go f.serveConn(conn)
	}
}

func (f *fakeWorker) serveConn(conn net.Conn) {
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	shards := make(map[int]wire.SiteShard)
	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		if req.Kind == f.dieOn {
			f.mu.Lock()
			f.dead = true
			f.mu.Unlock()
			return // hang up mid-protocol: the scripted death
		}
		resp := f.handle(shards, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (f *fakeWorker) handle(shards map[int]wire.SiteShard, req *wire.Request) *wire.Response {
	switch req.Kind {
	case wire.KindPing, wire.KindReset, wire.KindOffer:
		// An empty Offer answer means "nothing cached" — full shipment.
		return &wire.Response{}
	case wire.KindLoad:
		for _, s := range req.Shards {
			shards[s.Site] = s
		}
		return &wire.Response{}
	case wire.KindRankLocal:
		sites := append([]int(nil), req.Sites...)
		if len(sites) == 0 {
			for s := range shards {
				sites = append(sites, s)
			}
		}
		sort.Ints(sites)
		resp := &wire.Response{}
		for _, site := range sites {
			s, ok := shards[site]
			if !ok {
				return &wire.Response{Err: "fake: site not loaded"}
			}
			sub := graph.NewDigraph(s.NumDocs)
			for _, e := range s.Edges {
				sub.AddEdge(e.From, e.To, e.Weight)
			}
			sub.Dedupe()
			scores, iters, err := lmm.LocalDocRank(sub, lmm.WebConfig{
				Damping: req.Damping, Tol: req.Tol, MaxIter: req.MaxIter,
			})
			if err != nil {
				return &wire.Response{Err: "fake: " + err.Error()}
			}
			resp.Local = append(resp.Local, wire.LocalRank{Site: site, Scores: scores, Iterations: iters})
		}
		return resp
	case wire.KindPowerRound:
		partial := make([]float64, req.NumSites)
		var dang float64
		sites := make([]int, 0, len(shards))
		for s := range shards {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, site := range sites {
			s := shards[site]
			xs := req.X[site]
			if len(s.RowCols) == 0 {
				dang += xs
				continue
			}
			for k, col := range s.RowCols {
				partial[col] += xs * s.RowVals[k]
			}
		}
		return &wire.Response{Partial: partial, DanglingMass: dang}
	default:
		return &wire.Response{Err: "fake: unsupported kind"}
	}
}

// lossFixture builds a fleet of two real workers plus one scripted
// fake, dials a coordinator, and returns the reference single-node
// ranking of the test web.
func lossFixture(t *testing.T, dieOn wire.Kind) (*Coordinator, *fakeWorker, *graph.DocGraph, *lmm.WebResult) {
	t.Helper()
	web := rankableWeb()
	ref, err := lmm.LayeredDocRank(web, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference LayeredDocRank: %v", err)
	}
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	fake, a3 := startFakeWorker(t, dieOn)
	c, err := Dial([]string{a1, a2, a3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c, fake, web, ref
}

// checkRecovery asserts the post-loss result still matches the
// single-node reference and that the loss is visible in Stats.
func checkRecovery(t *testing.T, res *Result, ref *lmm.WebResult, wantReassign bool) {
	t.Helper()
	if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖recovered − reference‖₁ = %g, want < 1e-9", d)
	}
	if d := res.SiteRank.L1Diff(ref.SiteRank); d >= 1e-9 {
		t.Errorf("‖recovered − reference‖₁ on SiteRank = %g, want < 1e-9", d)
	}
	if res.Stats.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Stats.WorkersLost)
	}
	if res.Stats.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1", res.Stats.Retries)
	}
	if wantReassign && res.Stats.Reassignments < 1 {
		t.Errorf("Reassignments = %d, want >= 1", res.Stats.Reassignments)
	}
	if !wantReassign && res.Stats.Reassignments != 0 {
		t.Errorf("Reassignments = %d, want 0 (chain is replicated)", res.Stats.Reassignments)
	}
}

// TestRecoversFromLossDuringLoad kills a peer at its first shard
// shipment: the run must reassign its sites and finish with ranks
// identical to single-node.
func TestRecoversFromLossDuringLoad(t *testing.T) {
	c, fake, web, ref := lossFixture(t, wire.KindLoad)
	res, err := c.Rank(web, Config{Retry: RetryPolicy{MaxWorkerFailures: 1}})
	if err != nil {
		t.Fatalf("Rank with a peer dying at load: %v", err)
	}
	if !fake.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, true)
}

// TestRecoversFromLossDuringLocalRank kills a peer mid local-DocRank —
// after it accepted its shards but before returning any ranks. Only its
// sites are re-ranked, on the survivors that inherited them.
func TestRecoversFromLossDuringLocalRank(t *testing.T) {
	c, fake, web, ref := lossFixture(t, wire.KindRankLocal)
	res, err := c.Rank(web, Config{Retry: RetryPolicy{MaxWorkerFailures: 1}})
	if err != nil {
		t.Fatalf("Rank with a peer dying at local rank: %v", err)
	}
	if !fake.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, true)
}

// TestRecoversFromLossDuringPowerRound kills a peer mid SiteRank power
// iteration: its chain rows ride inside the shards, so reassignment
// restores full row coverage and the round is redone.
func TestRecoversFromLossDuringPowerRound(t *testing.T) {
	c, fake, web, ref := lossFixture(t, wire.KindPowerRound)
	res, err := c.Rank(web, Config{
		DistributedSiteRank: true,
		Retry:               RetryPolicy{MaxWorkerFailures: 1},
	})
	if err != nil {
		t.Fatalf("Rank with a peer dying at a power round: %v", err)
	}
	if !fake.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, true)
}

// TestFailsOverBatchedRounds kills the first peer asked for a batched
// SiteRank exchange: every worker holds the replicated chain, so the
// coordinator fails over with no reassignment at all.
func TestFailsOverBatchedRounds(t *testing.T) {
	web := rankableWeb()
	ref, err := lmm.LayeredDocRank(web, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	// The fake must be fleet index 0 so the batch rotation hits it
	// first.
	fake, a0 := startFakeWorker(t, wire.KindBatchRounds)
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	c, err := Dial([]string{a0, a1, a2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	res, err := c.Rank(web, Config{
		DistributedSiteRank: true,
		BatchRounds:         4,
		Retry:               RetryPolicy{MaxWorkerFailures: 1},
	})
	if err != nil {
		t.Fatalf("Rank with a peer dying at a batched round: %v", err)
	}
	if !fake.died() {
		t.Fatal("scripted worker never reached its death trigger")
	}
	checkRecovery(t, res, ref, false)
	if res.Stats.BatchMessagesSaved <= 0 {
		t.Errorf("BatchMessagesSaved = %d, want > 0", res.Stats.BatchMessagesSaved)
	}
}

// TestLossWithoutRetryBudgetFails pins the zero-value behavior: no
// RetryPolicy means the first loss fails the run cleanly.
func TestLossWithoutRetryBudgetFails(t *testing.T) {
	c, _, web, _ := lossFixture(t, wire.KindRankLocal)
	if _, err := c.Rank(web, Config{}); err == nil {
		t.Fatal("Rank survived a worker loss with a zero retry budget")
	}
}

// TestSecondLossExhaustsBudget gives the run a budget of one failure
// and kills two peers: the run must fail, not loop.
func TestSecondLossExhaustsBudget(t *testing.T) {
	web := rankableWeb()
	_, a1 := startWorker(t)
	_, a2 := startFakeWorker(t, wire.KindRankLocal)
	_, a3 := startFakeWorker(t, wire.KindRankLocal)
	c, err := Dial([]string{a1, a2, a3})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Rank(web, Config{Retry: RetryPolicy{MaxWorkerFailures: 1}}); err == nil {
		t.Fatal("Rank survived two losses on a budget of one")
	}
}
