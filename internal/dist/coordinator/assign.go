package coordinator

import "sort"

// assignSites partitions sites over workers by weighted LPT (longest
// processing time) bin packing: sites sorted by descending document
// count each land on the currently lightest-loaded worker. LPT's max
// load is within 4/3 of optimal, which on skewed site-size
// distributions beats round-robin by a wide margin — one giant site no
// longer drags every (site mod N)-collided small site onto the same
// peer, so the local-rank phase's wall clock (the max over workers)
// shrinks.
//
// workers lists the usable fleet indices; load is the fleet-sized
// accumulator the chosen loads are added into (callers reuse it when
// reassigning after a loss). The returned owner[s] is a fleet index.
// Fully deterministic: size ties break toward the lower site ID,
// load ties toward the earlier listed worker.
func assignSites(sizes []int, workers []int, load []int) []int {
	order := make([]int, len(sizes))
	for s := range order {
		order[s] = s
	}
	sort.Slice(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] {
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	owner := make([]int, len(sizes))
	for _, s := range order {
		best := workers[0]
		for _, w := range workers[1:] {
			if load[w] < load[best] {
				best = w
			}
		}
		owner[s] = best
		load[best] += sizes[s]
	}
	return owner
}
