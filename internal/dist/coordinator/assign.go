package coordinator

import "lmmrank/internal/partition"

// strategy returns the configured placement strategy, defaulting to
// weighted LPT — the single balancing code path (partition.Balanced
// wraps partition.LPT; the coordinator has no private copy).
func (r *run) strategy() partition.Strategy {
	if r.cfg.Partition != nil {
		return r.cfg.Partition
	}
	return partition.Balanced{}
}

// shardOwners computes the site→shard assignment over k abstract
// shards. A pinned Config.Assignment wins when it fits the live fleet
// (the root DistEngine pins placements per snapshot so queries and
// rejoin rebalances agree); otherwise the strategy partitions fresh.
func (r *run) shardOwners(k int) []int {
	if a := r.cfg.Assignment; len(a) == r.ns {
		ok := true
		for _, o := range a {
			if o < 0 || o >= k {
				ok = false
				break
			}
		}
		if ok {
			return a
		}
	}
	return r.strategy().Partition(r.rk.DocGraph(), k).Owner
}

// idealOwners maps the shard assignment onto the live fleet: shard j
// lands on the j-th live worker in ascending fleet order, so owner[s]
// is a fleet index. For the default Balanced strategy this reproduces
// the historical direct-LPT-over-aliveIdxs assignment exactly (load
// ties break toward the lower shard, which is the earlier live
// worker), keeping rejoin rebalancing deterministic.
func (r *run) idealOwners() []int {
	idxs := r.aliveIdxs()
	shard := r.shardOwners(len(idxs))
	owner := make([]int, r.ns)
	for s, b := range shard {
		owner[s] = idxs[b]
	}
	return owner
}

// assignOwners is idealOwners plus the load accounting the loss path
// (lightestAlive) balances against.
func (r *run) assignOwners() []int {
	owner := r.idealOwners()
	for s, w := range owner {
		r.load[w] += r.sizes[s]
	}
	return owner
}

// computeCutStats records the placement's partition quality on the
// run's Stats: the SiteGraph weight crossing worker boundaries, its
// fraction of the total, and the counterfactual per-sweep bytes a
// document-level edge exchange would ship across those boundaries.
func (r *run) computeCutStats() {
	cut, total := partition.Cut(r.rk.SiteGraph(), r.owner)
	r.stats.CutEdges = cut
	if total > 0 {
		r.stats.CutFraction = cut / total
	}
	r.stats.CrossShardBytes = uint64(cut) * partition.EstCutEdgeBytes
}
