// Package coordinator implements the central side of the distributed
// Layered Method (§3.2 run across a fleet): it partitions a DocGraph by
// site over gob/TCP workers, dispatches the per-site local DocRanks to
// the peers, computes the SiteRank either centrally or by distributed
// power iteration over worker-held rows of M(G_S), and composes the
// global DocRank by the Partition Theorem.
package coordinator

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// DefaultDialTimeout bounds Dial per worker so a dead address fails
// fast instead of hanging a cluster bring-up.
const DefaultDialTimeout = 3 * time.Second

// DefaultCallTimeout bounds each request/response exchange so a stalled
// (but not closed) peer — a partitioned host, a stopped process —
// surfaces as an error instead of wedging Rank forever. Generous,
// because one exchange may cover a worker's whole local-rank batch.
const DefaultCallTimeout = 2 * time.Minute

// Config parameterizes one distributed ranking run.
type Config struct {
	// Damping is the PageRank damping factor / gatekeeper α. Zero is a
	// sentinel selecting pagerank.DefaultDamping (0.85); an explicit
	// damping of exactly 0 cannot be requested, while tiny positive
	// values are honored as given.
	Damping float64
	// Tol and MaxIter bound every power run, local and site-level
	// (0 = package matrix defaults).
	Tol     float64
	MaxIter int
	// SiteGraph controls SiteLink aggregation (§3.1).
	SiteGraph graph.SiteGraphOptions
	// DistributedSiteRank selects the fully decentralized variant:
	// instead of a central PageRank over M(G_S), the coordinator drives
	// power rounds in which each worker multiplies the iterate by the
	// rows of the site chain it owns.
	DistributedSiteRank bool
}

func (c Config) damping() float64 {
	if c.Damping == 0 {
		return pagerank.DefaultDamping
	}
	return c.Damping
}

func (c Config) tol() float64 {
	if c.Tol == 0 {
		return matrix.DefaultTol
	}
	return c.Tol
}

func (c Config) maxIter() int {
	if c.MaxIter == 0 {
		return matrix.DefaultMaxIter
	}
	return c.MaxIter
}

// Stats breaks down the cost of a distributed run.
type Stats struct {
	// LoadDuration covers partitioning and shipping the site shards.
	LoadDuration time.Duration
	// LocalRankDuration covers the fleet-wide local DocRank phase.
	LocalRankDuration time.Duration
	// SiteRankDuration covers the site-layer computation.
	SiteRankDuration time.Duration
	// SiteRankRounds counts power iterations of the site layer
	// (distributed rounds when DistributedSiteRank, else central ones).
	SiteRankRounds int
	// Messages counts request/response exchanges; BytesSent and
	// BytesReceived count raw bytes across the coordinator's sockets,
	// measured on the wire rather than estimated.
	Messages      uint64
	BytesSent     uint64
	BytesReceived uint64
}

// Result is the outcome of a distributed ranking run.
type Result struct {
	// DocRank is the composed global ranking per DocID.
	DocRank matrix.Vector
	// SiteRank is πS per SiteID.
	SiteRank matrix.Vector
	// LocalIterations records each site's local power-method work as
	// reported by its worker, matching WebResult.LocalIterations for
	// the complexity experiments (E6).
	LocalIterations []int
	// Stats holds timing and transport cost of this run.
	Stats Stats
}

// remote is one connected worker. Its gob stream is strictly
// request/response, so a mutex serializes users of the connection.
type remote struct {
	mu     sync.Mutex
	conn   *wire.Conn
	addr   string
	broken bool
}

// call performs one exchange on the remote's connection, bounded by
// timeout (<= 0 means unbounded). Any transport failure — including a
// timeout — leaves the request/response stream desynchronized (a late
// response could pair with the next request), so it marks the remote
// broken and closes the connection; later calls fail fast rather than
// silently consuming stale payloads.
func (r *remote) call(req *wire.Request, counters *wire.Counters, timeout time.Duration) (*wire.Response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken {
		return nil, fmt.Errorf("coordinator: %s: connection broken by an earlier failure", r.addr)
	}
	if timeout > 0 {
		r.conn.SetDeadline(time.Now().Add(timeout))
		defer r.conn.SetDeadline(time.Time{})
	}
	if err := r.conn.Enc.Encode(req); err != nil {
		r.markBroken()
		return nil, fmt.Errorf("coordinator: send to %s: %w", r.addr, err)
	}
	var resp wire.Response
	if err := r.conn.Dec.Decode(&resp); err != nil {
		r.markBroken()
		return nil, fmt.Errorf("coordinator: receive from %s: %w", r.addr, err)
	}
	counters.AddMessage()
	if resp.Err != "" {
		// Worker-side errors arrive in a well-formed response, so the
		// stream stays in sync and the connection remains usable.
		return nil, fmt.Errorf("coordinator: %s: %s", r.addr, resp.Err)
	}
	return &resp, nil
}

// markBroken poisons the remote; the caller holds r.mu.
func (r *remote) markBroken() {
	r.broken = true
	r.conn.Close()
}

// Coordinator drives a fleet of workers through ranking runs.
type Coordinator struct {
	counters wire.Counters
	workers  []*remote

	// CallTimeout bounds each request/response exchange (0 selects
	// DefaultCallTimeout, negative disables the bound). Set it before
	// issuing calls; huge shard batches on slow links may need more.
	CallTimeout time.Duration

	// runMu serializes whole Rank runs: the protocol phases (reset,
	// load, rank, power rounds) of two runs must not interleave.
	runMu sync.Mutex

	mu     sync.Mutex
	closed bool
}

// Dial connects to every worker address (with DefaultDialTimeout per
// address) and returns the connected coordinator. On any failure all
// established connections are closed and an error naming the bad
// address is returned.
func Dial(addrs []string) (*Coordinator, error) {
	return DialTimeout(addrs, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit per-address timeout.
func DialTimeout(addrs []string, timeout time.Duration) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("coordinator: no worker addresses")
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	c := &Coordinator{}
	for _, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("coordinator: dial worker %s: %w", addr, err)
		}
		c.workers = append(c.workers, &remote{
			conn: wire.NewConn(conn, &c.counters),
			addr: addr,
		})
	}
	return c, nil
}

// NumWorkers returns the fleet size.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// Ping round-trips a liveness probe to every worker concurrently. It
// serializes with Rank so probe traffic never lands inside a run's
// per-run Stats deltas.
func (c *Coordinator) Ping() error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return errors.New("coordinator: closed")
	}
	return c.broadcastErr(func(_ int, r *remote) error {
		_, err := r.call(&wire.Request{Kind: wire.KindPing}, &c.counters, c.callTimeout())
		return err
	})
}

// Close hangs up every worker connection (the workers keep serving —
// closing a coordinator does not stop the fleet). Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, r := range c.workers {
		if err := r.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of this coordinator's transport counters
// (cumulative across runs; Rank reports per-run deltas).
func (c *Coordinator) Stats() (messages, bytesSent, bytesReceived uint64) {
	return c.counters.Messages(), c.counters.BytesSent(), c.counters.BytesReceived()
}

func (c *Coordinator) callTimeout() time.Duration {
	if c.CallTimeout == 0 {
		return DefaultCallTimeout
	}
	return c.CallTimeout
}

// broadcastErr runs fn against every worker concurrently, passing each
// worker's fleet index, and joins the errors in worker order.
func (c *Coordinator) broadcastErr(fn func(idx int, r *remote) error) error {
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, r := range c.workers {
		wg.Add(1)
		go func(i int, r *remote) {
			defer wg.Done()
			errs[i] = fn(i, r)
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank executes the distributed Layered Method on dg: partition sites
// over the fleet, ship shards, rank locally on the peers, compute the
// SiteRank, and compose the global DocRank per the Partition Theorem.
//
// It builds a throwaway lmm.Ranker for the run; callers ranking the same
// graph repeatedly should precompute one and call RankPrepared, which
// skips the SiteGraph derivation and subgraph extraction entirely.
func (c *Coordinator) Rank(dg *graph.DocGraph, cfg Config) (*Result, error) {
	// Build the Ranker under runMu: NewRanker dedupes the shared graph
	// (a mutation), and concurrent Rank calls are allowed as long as
	// runMu serializes them.
	c.runMu.Lock()
	defer c.runMu.Unlock()
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{SiteGraph: cfg.SiteGraph})
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	return c.rankPrepared(rk, cfg)
}

// RankPrepared is Rank over a precomputed lmm.Ranker: the SiteGraph and
// all local subgraphs come from the Ranker's one-time precomputation, so
// repeated runs over the same graph only pay for shipping and ranking.
// cfg.SiteGraph is ignored — that choice was fixed when the Ranker was
// built. The Ranker must not be used concurrently by another goroutine
// while a run is in flight.
func (c *Coordinator) RankPrepared(rk *lmm.Ranker, cfg Config) (*Result, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	return c.rankPrepared(rk, cfg)
}

// rankPrepared runs one ranking; the caller holds runMu.
func (c *Coordinator) rankPrepared(rk *lmm.Ranker, cfg Config) (*Result, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("coordinator: closed")
	}
	// Validate damping up front so the distributed SiteRank path rejects
	// bad values exactly like the central pagerank path does.
	if f := cfg.damping(); f <= 0 || f >= 1 {
		return nil, fmt.Errorf("coordinator: %w: damping %g outside (0,1)", pagerank.ErrBadConfig, f)
	}

	startMsgs, startOut, startIn := c.counters.Messages(), c.counters.BytesSent(), c.counters.BytesReceived()
	res := &Result{}
	dg := rk.DocGraph()
	ns := dg.NumSites()

	// Steps 1–2 were precomputed by the Ranker.
	sg := rk.SiteGraph()

	// Partition and ship. Site s goes to worker s mod N — deterministic
	// and roughly balanced for the near-uniform site sizes of campus
	// webs (smarter policies are a follow-on).
	loadStart := time.Now()
	if err := c.broadcastErr(func(_ int, r *remote) error {
		_, err := r.call(&wire.Request{Kind: wire.KindReset}, &c.counters, c.callTimeout())
		return err
	}); err != nil {
		return nil, err
	}
	batches := c.partition(rk, sg, cfg)
	if err := c.broadcastErr(func(idx int, r *remote) error {
		// Even shardless workers get a Load so they learn the site-space
		// dimension and can answer power rounds with a zero partial.
		_, err := r.call(&wire.Request{
			Kind:     wire.KindLoad,
			NumSites: ns,
			Shards:   batches[idx],
		}, &c.counters, c.callTimeout())
		return err
	}); err != nil {
		return nil, err
	}
	res.Stats.LoadDuration = time.Since(loadStart)

	// Step 3 on the fleet: local DocRanks, all workers concurrently.
	localStart := time.Now()
	localRanks := make([]matrix.Vector, ns)
	localIters := make([]int, ns)
	var localMu sync.Mutex
	if err := c.broadcastErr(func(idx int, r *remote) error {
		if len(batches[idx]) == 0 {
			return nil
		}
		resp, err := r.call(&wire.Request{
			Kind:    wire.KindRankLocal,
			Damping: cfg.Damping,
			Tol:     cfg.Tol,
			MaxIter: cfg.MaxIter,
		}, &c.counters, c.callTimeout())
		if err != nil {
			return err
		}
		localMu.Lock()
		defer localMu.Unlock()
		for _, lr := range resp.Local {
			if lr.Site < 0 || lr.Site >= ns {
				return fmt.Errorf("coordinator: %s returned rank for unknown site %d", r.addr, lr.Site)
			}
			// Ownership check: a confused worker must not silently
			// overwrite another worker's results.
			if lr.Site%len(c.workers) != idx {
				return fmt.Errorf("coordinator: %s returned rank for site %d owned by worker %d",
					r.addr, lr.Site, lr.Site%len(c.workers))
			}
			localRanks[lr.Site] = lr.Scores
			localIters[lr.Site] = lr.Iterations
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for s := 0; s < ns; s++ {
		want := dg.SiteSize(graph.SiteID(s))
		if localRanks[s] == nil && want > 0 {
			return nil, fmt.Errorf("coordinator: no local rank received for site %d", s)
		}
		if len(localRanks[s]) != want {
			return nil, fmt.Errorf("coordinator: site %d local rank has %d entries, want %d",
				s, len(localRanks[s]), want)
		}
	}
	res.Stats.LocalRankDuration = time.Since(localStart)

	// Step 4: SiteRank, central or decentralized.
	siteStart := time.Now()
	var siteRank matrix.Vector
	if cfg.DistributedSiteRank {
		var rounds int
		var err error
		siteRank, rounds, err = c.distributedSiteRank(ns, cfg)
		if err != nil {
			return nil, err
		}
		res.Stats.SiteRankRounds = rounds
	} else {
		scores, rounds, err := rk.RankSites(lmm.WebConfig{
			Damping: cfg.Damping,
			Tol:     cfg.Tol,
			MaxIter: cfg.MaxIter,
		})
		if err != nil {
			return nil, fmt.Errorf("coordinator: %w", err)
		}
		// RankSites aliases the Ranker's scratch; the Result outlives
		// this run, so copy the small site vector out.
		siteRank = scores.Clone()
		res.Stats.SiteRankRounds = rounds
	}
	res.Stats.SiteRankDuration = time.Since(siteStart)

	// Step 5: composition by the Partition Theorem, shared with the
	// in-process pipeline.
	res.SiteRank = siteRank
	res.DocRank = lmm.ComposeDocRank(dg, siteRank, localRanks)
	res.LocalIterations = localIters

	res.Stats.Messages = c.counters.Messages() - startMsgs
	res.Stats.BytesSent = c.counters.BytesSent() - startOut
	res.Stats.BytesReceived = c.counters.BytesReceived() - startIn
	return res, nil
}

// partition builds each worker's shard batch: for site s, the Ranker's
// precomputed local subgraph G^s_d in compact local indices — plus row s
// of the normalized site transition matrix, but only when the
// decentralized SiteRank will consume it (central mode skips that wire
// cost).
func (c *Coordinator) partition(rk *lmm.Ranker, sg *graph.SiteGraph, cfg Config) [][]wire.SiteShard {
	nw := len(c.workers)
	batches := make([][]wire.SiteShard, nw)
	for s := 0; s < rk.NumSites(); s++ {
		sub, _ := rk.LocalSubgraph(graph.SiteID(s))
		shard := wire.SiteShard{
			Site:    s,
			NumDocs: sub.NumNodes(),
		}
		sub.EachEdgeAll(func(from int, e graph.Edge) {
			shard.Edges = append(shard.Edges, wire.Edge{From: from, To: e.To, Weight: e.Weight})
		})
		total := 0.0
		if cfg.DistributedSiteRank {
			total = sg.G.OutWeight(s)
		}
		if total > 0 {
			sg.G.EachEdge(s, func(e graph.Edge) {
				shard.RowCols = append(shard.RowCols, e.To)
				shard.RowVals = append(shard.RowVals, e.Weight/total)
			})
		}
		w := s % nw
		batches[w] = append(batches[w], shard)
	}
	return batches
}

// distributedSiteRank runs the damped power method x' ← x'Mˆ(G_S)
// without ever holding M(G_S) product-side: each round, every worker
// returns the partial product over the rows it owns plus its dangling
// mass; the coordinator sums partials in fixed worker order (float
// determinism), applies the teleport correction exactly as the central
// pagerank.Operator does, and normalizes. The per-round exchange is a
// vector of N_S floats each way — the paper's small site-layer cost.
func (c *Coordinator) distributedSiteRank(ns int, cfg Config) (matrix.Vector, int, error) {
	f := cfg.damping()
	tol := cfg.tol()
	maxIter := cfg.maxIter()
	uniform := 1.0 / float64(ns)

	x := matrix.Uniform(ns)
	next := matrix.NewVector(ns)
	partials := make([][]float64, len(c.workers))
	dangling := make([]float64, len(c.workers))

	for round := 1; round <= maxIter; round++ {
		if err := c.broadcastErr(func(idx int, r *remote) error {
			resp, err := r.call(&wire.Request{
				Kind:     wire.KindPowerRound,
				NumSites: ns,
				X:        x,
			}, &c.counters, c.callTimeout())
			if err != nil {
				return err
			}
			if len(resp.Partial) != ns {
				return fmt.Errorf("coordinator: %s returned partial of length %d, want %d",
					r.addr, len(resp.Partial), ns)
			}
			partials[idx] = resp.Partial
			dangling[idx] = resp.DanglingMass
			return nil
		}); err != nil {
			return nil, round, err
		}

		// Reduce in worker order, then apply Mˆ's rank-one terms:
		// y = f·(x'M) + (f·danglingMass + (1−f)·Σx)·v, v uniform.
		next.Fill(0)
		var dangMass float64
		for i := range partials {
			next.AddScaled(1, partials[i])
			dangMass += dangling[i]
		}
		coeff := f*dangMass + (1-f)*x.Sum()
		for t := range next {
			next[t] = f*next[t] + coeff*uniform
		}
		next.Normalize()
		residual := next.L1Diff(x)
		x, next = next, x
		if residual <= tol {
			return x, round, nil
		}
	}
	return x, maxIter, fmt.Errorf("coordinator: distributed siterank: %w after %d rounds",
		matrix.ErrNotConverged, maxIter)
}
