// Package coordinator implements the central side of the distributed
// Layered Method (§3.2 run across a fleet): it partitions a DocGraph by
// site over gob/TCP workers, dispatches the per-site local DocRanks to
// the peers, computes the SiteRank either centrally or by distributed
// power iteration, and composes the global DocRank by the Partition
// Theorem.
//
// The runtime is production-shaped along three axes. Fault tolerance:
// with a RetryPolicy budget, a peer dying mid-run is detected at the
// failing exchange, its site shards are reassigned to the lightest
// surviving workers and only the affected work is re-run. Balance:
// sites are spread by document count (weighted LPT bin packing), not
// round-robin, so one giant site cannot serialize the fleet. Wire cost:
// shards are content-addressed and negotiated against worker-side
// digest caches before shipping (repeated runs over an unchanged graph
// ship near-zero shard bytes), and Config.BatchRounds trades one
// replicated site-chain shipment for K× fewer SiteRank exchanges. All
// of it is accounted in per-run Stats.
package coordinator

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// DefaultDialTimeout bounds Dial per worker so a dead address fails
// fast instead of hanging a cluster bring-up.
const DefaultDialTimeout = 3 * time.Second

// DefaultCallTimeout bounds each request/response exchange so a stalled
// (but not closed) peer — a partitioned host, a stopped process —
// surfaces as an error instead of wedging Rank forever. Generous,
// because one exchange may cover a worker's whole local-rank batch.
const DefaultCallTimeout = 2 * time.Minute

// RetryPolicy bounds how much mid-run fault tolerance a distributed
// run buys. The zero value preserves strict behavior: the first worker
// loss fails the run.
type RetryPolicy struct {
	// MaxWorkerFailures is how many worker losses one run may absorb.
	// Each loss marks the peer dead for the rest of the run, reassigns
	// its site shards to the surviving workers (lightest-loaded first)
	// and re-runs only the affected work: the undelivered shards, the
	// lost sites' local DocRanks, or the in-flight SiteRank round.
	// Worker-side errors (a live peer answering with Response.Err) are
	// never retried — they mean a protocol or input bug, not a death.
	MaxWorkerFailures int
}

// Config parameterizes one distributed ranking run.
type Config struct {
	// Damping is the PageRank damping factor / gatekeeper α. Zero is a
	// sentinel selecting pagerank.DefaultDamping (0.85); an explicit
	// damping of exactly 0 cannot be requested, while tiny positive
	// values are honored as given.
	Damping float64
	// Tol and MaxIter bound every power run, local and site-level
	// (0 = package matrix defaults).
	Tol     float64
	MaxIter int
	// SiteGraph controls SiteLink aggregation (§3.1).
	SiteGraph graph.SiteGraphOptions
	// DistributedSiteRank selects the fully decentralized variant:
	// instead of a central PageRank over M(G_S), the coordinator drives
	// power rounds in which each worker multiplies the iterate by the
	// rows of the site chain it owns.
	DistributedSiteRank bool
	// BatchRounds asks the distributed SiteRank to run up to this many
	// power rounds per wire exchange (values <= 1 select the classic
	// one-round-per-exchange protocol; ignored without
	// DistributedSiteRank). Batching replicates the full normalized
	// site chain onto every worker at load time — cheap, because the
	// site layer is small (the paper's point) and the chain is digest-
	// cached like any shard — and then each exchange covers K rounds on
	// one worker, cutting SiteRank messages by ~K·NumWorkers while
	// agreeing with the unbatched path to < 1e-9 (summation-order
	// rounding only). A worker lost mid-batch fails over to the next
	// live worker without any reassignment, since every peer holds the
	// chain.
	BatchRounds int
	// Retry controls mid-run fault tolerance; the zero value disables
	// recovery.
	Retry RetryPolicy
}

func (c Config) damping() float64 {
	if c.Damping == 0 {
		return pagerank.DefaultDamping
	}
	return c.Damping
}

func (c Config) tol() float64 {
	if c.Tol == 0 {
		return matrix.DefaultTol
	}
	return c.Tol
}

func (c Config) maxIter() int {
	if c.MaxIter == 0 {
		return matrix.DefaultMaxIter
	}
	return c.MaxIter
}

func (c Config) batchRounds() int {
	if c.BatchRounds < 1 {
		return 1
	}
	return c.BatchRounds
}

// Stats breaks down the cost of a distributed run.
type Stats struct {
	// LoadDuration covers partitioning and shipping the site shards.
	LoadDuration time.Duration
	// LocalRankDuration covers the fleet-wide local DocRank phase.
	LocalRankDuration time.Duration
	// SiteRankDuration covers the site-layer computation.
	SiteRankDuration time.Duration
	// SiteRankRounds counts power iterations of the site layer
	// (distributed rounds when DistributedSiteRank, else central ones).
	SiteRankRounds int
	// Messages counts request/response exchanges; BytesSent and
	// BytesReceived count raw bytes across the coordinator's sockets,
	// measured on the wire rather than estimated.
	Messages      uint64
	BytesSent     uint64
	BytesReceived uint64
	// WorkersLost counts peers that died mid-run; Reassignments counts
	// site shards moved to a surviving worker because of those losses;
	// Retries counts recovery re-executions (a re-ranked shard batch, a
	// redone power round, a failed-over batch exchange).
	WorkersLost   int
	Reassignments int
	Retries       int
	// CacheHits counts shards (and site chains) the workers already
	// held by digest and did not need shipped; CacheMisses counts the
	// ones shipped in full. ShardBytesSaved estimates the payload bytes
	// the hits avoided (estimated from shard shape, not measured).
	CacheHits       int
	CacheMisses     int
	ShardBytesSaved uint64
	// BatchMessagesSaved estimates the SiteRank exchanges avoided by
	// round batching: rounds × live workers (the unbatched protocol's
	// cost) minus the batch exchanges actually made.
	BatchMessagesSaved int
}

// Result is the outcome of a distributed ranking run.
type Result struct {
	// DocRank is the composed global ranking per DocID.
	DocRank matrix.Vector
	// SiteRank is πS per SiteID.
	SiteRank matrix.Vector
	// LocalIterations records each site's local power-method work as
	// reported by its worker, matching WebResult.LocalIterations for
	// the complexity experiments (E6).
	LocalIterations []int
	// Stats holds timing and transport cost of this run.
	Stats Stats
}

// errLost marks transport-level call failures: the peer is dead,
// partitioned, or its stream is desynchronized, and the connection is
// poisoned either way. Loss errors are the retriable class RetryPolicy
// recovers from; worker-side Response.Err failures are not — the peer
// is alive and refusing, which means a bug, not a death.
var errLost = errors.New("worker lost")

// remote is one connected worker. Its gob stream is strictly
// request/response, so a mutex serializes users of the connection.
type remote struct {
	mu     sync.Mutex
	conn   *wire.Conn
	addr   string
	broken bool
}

// call performs one exchange on the remote's connection, bounded by
// timeout (<= 0 means unbounded). Any transport failure — including a
// timeout — leaves the request/response stream desynchronized (a late
// response could pair with the next request), so it marks the remote
// broken and closes the connection; later calls fail fast rather than
// silently consuming stale payloads. Transport failures wrap errLost.
func (r *remote) call(req *wire.Request, counters *wire.Counters, timeout time.Duration) (*wire.Response, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken {
		return nil, fmt.Errorf("coordinator: %s: connection broken by an earlier failure: %w", r.addr, errLost)
	}
	if timeout > 0 {
		r.conn.SetDeadline(time.Now().Add(timeout))
		defer r.conn.SetDeadline(time.Time{})
	}
	if err := r.conn.Enc.Encode(req); err != nil {
		r.markBroken()
		return nil, fmt.Errorf("coordinator: send to %s: %w: %w", r.addr, err, errLost)
	}
	var resp wire.Response
	if err := r.conn.Dec.Decode(&resp); err != nil {
		r.markBroken()
		return nil, fmt.Errorf("coordinator: receive from %s: %w: %w", r.addr, err, errLost)
	}
	counters.AddMessage()
	if resp.Err != "" {
		// Worker-side errors arrive in a well-formed response, so the
		// stream stays in sync and the connection remains usable.
		return nil, fmt.Errorf("coordinator: %s: %s", r.addr, resp.Err)
	}
	return &resp, nil
}

// markBroken poisons the remote; the caller holds r.mu.
func (r *remote) markBroken() {
	r.broken = true
	r.conn.Close()
}

// isBroken reports whether an earlier failure poisoned the connection.
func (r *remote) isBroken() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.broken
}

// Coordinator drives a fleet of workers through ranking runs.
type Coordinator struct {
	counters wire.Counters
	workers  []*remote

	// CallTimeout bounds each request/response exchange (0 selects
	// DefaultCallTimeout, negative disables the bound). Set it before
	// issuing calls; huge shard batches on slow links may need more.
	CallTimeout time.Duration

	// runMu serializes whole Rank runs: the protocol phases (reset,
	// load, rank, power rounds) of two runs must not interleave.
	runMu sync.Mutex

	mu     sync.Mutex
	closed bool
}

// Dial connects to every worker address (with DefaultDialTimeout per
// address) and returns the connected coordinator. On any failure all
// established connections are closed and an error naming the bad
// address is returned.
func Dial(addrs []string) (*Coordinator, error) {
	return DialTimeout(addrs, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit per-address timeout.
func DialTimeout(addrs []string, timeout time.Duration) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("coordinator: no worker addresses")
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	c := &Coordinator{}
	for _, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("coordinator: dial worker %s: %w", addr, err)
		}
		c.workers = append(c.workers, &remote{
			conn: wire.NewConn(conn, &c.counters),
			addr: addr,
		})
	}
	return c, nil
}

// NumWorkers returns the fleet size.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// Ping round-trips a liveness probe to every worker concurrently
// (including ones whose connections earlier failures poisoned — those
// report errors, which is how callers learn the fleet shrank). It
// serializes with Rank so probe traffic never lands inside a run's
// per-run Stats deltas.
func (c *Coordinator) Ping() error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return errors.New("coordinator: closed")
	}
	return c.broadcastErr(func(_ int, r *remote) error {
		_, err := r.call(&wire.Request{Kind: wire.KindPing}, &c.counters, c.callTimeout())
		return err
	})
}

// Close hangs up every worker connection (the workers keep serving —
// closing a coordinator does not stop the fleet). Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, r := range c.workers {
		if err := r.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of this coordinator's transport counters
// (cumulative across runs; Rank reports per-run deltas).
func (c *Coordinator) Stats() (messages, bytesSent, bytesReceived uint64) {
	return c.counters.Messages(), c.counters.BytesSent(), c.counters.BytesReceived()
}

func (c *Coordinator) callTimeout() time.Duration {
	if c.CallTimeout == 0 {
		return DefaultCallTimeout
	}
	return c.CallTimeout
}

// broadcastErr runs fn against every worker concurrently, passing each
// worker's fleet index, and joins the errors in worker order.
func (c *Coordinator) broadcastErr(fn func(idx int, r *remote) error) error {
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, r := range c.workers {
		wg.Add(1)
		go func(i int, r *remote) {
			defer wg.Done()
			errs[i] = fn(i, r)
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank executes the distributed Layered Method on dg: partition sites
// over the fleet, ship shards, rank locally on the peers, compute the
// SiteRank, and compose the global DocRank per the Partition Theorem.
//
// It builds a throwaway lmm.Ranker for the run; callers ranking the same
// graph repeatedly should precompute one and call RankPrepared, which
// skips the SiteGraph derivation and subgraph extraction entirely (and,
// paired with the workers' digest caches, skips re-shipping shards too).
func (c *Coordinator) Rank(dg *graph.DocGraph, cfg Config) (*Result, error) {
	// Build the Ranker under runMu: NewRanker dedupes the shared graph
	// (a mutation), and concurrent Rank calls are allowed as long as
	// runMu serializes them.
	c.runMu.Lock()
	defer c.runMu.Unlock()
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{SiteGraph: cfg.SiteGraph})
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	return c.rankPrepared(rk, cfg)
}

// RankPrepared is Rank over a precomputed lmm.Ranker: the SiteGraph and
// all local subgraphs come from the Ranker's one-time precomputation, so
// repeated runs over the same graph only pay for shipping and ranking —
// and since workers cache shards by content digest, a repeated run over
// an unchanged graph ships (almost) no shard bytes at all.
// cfg.SiteGraph is ignored — that choice was fixed when the Ranker was
// built. The Ranker must not be used concurrently by another goroutine
// while a run is in flight.
func (c *Coordinator) RankPrepared(rk *lmm.Ranker, cfg Config) (*Result, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	return c.rankPrepared(rk, cfg)
}
