// Package coordinator implements the central side of the distributed
// Layered Method (§3.2 run across a fleet): it partitions a DocGraph by
// site over gob/TCP workers, dispatches the per-site local DocRanks to
// the peers, computes the SiteRank either centrally or by distributed
// power iteration, and composes the global DocRank by the Partition
// Theorem.
//
// The runtime is production-shaped along three axes. Fault tolerance:
// with a RetryPolicy budget, a peer dying mid-run is detected at the
// failing exchange, its site shards are reassigned to the lightest
// surviving workers and only the affected work is re-run. Placement:
// the site→worker assignment is a pluggable partition.Strategy —
// weighted LPT by default so one giant site cannot serialize the fleet,
// or coupling-aware aggregation that co-locates strongly linked sites —
// and every run reports its cut-edge quality in Stats. Wire cost:
// shards are content-addressed and negotiated against worker-side
// digest caches before shipping (repeated runs over an unchanged graph
// ship near-zero shard bytes), and Config.BatchRounds trades one
// replicated site-chain shipment for K× fewer SiteRank exchanges. All
// of it is accounted in per-run Stats.
package coordinator

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
	"lmmrank/internal/partition"
)

// DefaultDialTimeout bounds Dial per worker so a dead address fails
// fast instead of hanging a cluster bring-up.
const DefaultDialTimeout = 3 * time.Second

// DefaultCallTimeout bounds each request/response exchange so a stalled
// (but not closed) peer — a partitioned host, a stopped process —
// surfaces as an error instead of wedging Rank forever. Generous,
// because one exchange may cover a worker's whole local-rank batch.
const DefaultCallTimeout = 2 * time.Minute

// RetryPolicy bounds how much mid-run fault tolerance a distributed
// run buys. The zero value preserves strict behavior: the first worker
// loss fails the run.
type RetryPolicy struct {
	// MaxWorkerFailures is how many worker losses one run may absorb.
	// Each loss marks the peer dead for the rest of the run, reassigns
	// its site shards to the surviving workers (lightest-loaded first)
	// and re-runs only the affected work: the undelivered shards, the
	// lost sites' local DocRanks, or the in-flight SiteRank round.
	// Worker-side errors (a live peer answering with Response.Err) are
	// never retried — they mean a protocol or input bug, not a death.
	MaxWorkerFailures int

	// MaxRedials enables worker re-admission: a peer lost mid-run (or
	// already broken when the run starts) is redialed in the background
	// up to this many times with jittered exponential backoff, and on
	// success is re-admitted into the run at the next safe point — its
	// original sites rebalance back to it through the digest-cache
	// negotiation (a warm rejoiner re-ships ~0 shard bytes). 0 keeps
	// the pre-redial behavior: a lost worker stays lost for the run.
	MaxRedials int
	// RedialBase and RedialMax shape the backoff between redial
	// attempts: attempt k sleeps base·2^k capped at max, scaled by a
	// uniform jitter in [0.5, 1.5) so a fleet of coordinators does not
	// thunder onto a restarting worker. Zero values select
	// DefaultRedialBase and DefaultRedialMax.
	RedialBase time.Duration
	RedialMax  time.Duration
}

// DefaultRedialBase and DefaultRedialMax are the redial backoff bounds
// when RetryPolicy leaves them zero: quick first probes (a restarting
// worker is usually back in milliseconds on a LAN) backing off to a
// respectful steady-state poll.
const (
	DefaultRedialBase = 50 * time.Millisecond
	DefaultRedialMax  = 2 * time.Second
)

func (p RetryPolicy) redialBase() time.Duration {
	if p.RedialBase <= 0 {
		return DefaultRedialBase
	}
	return p.RedialBase
}

func (p RetryPolicy) redialMax() time.Duration {
	if p.RedialMax <= 0 {
		return DefaultRedialMax
	}
	return p.RedialMax
}

// backoffDelay returns the jittered exponential-backoff delay for the
// 0-based attempt: base·2^attempt capped at max, scaled by a uniform
// random factor in [0.5, 1.5).
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration((0.5 + rand.Float64()) * float64(d))
}

// SiteRankMode selects the site-layer algorithm of a distributed run.
type SiteRankMode int

const (
	// SiteRankAuto derives the mode from the legacy knobs: central
	// unless DistributedSiteRank is set, then synchronous power rounds,
	// or batched rounds when BatchRounds > 1.
	SiteRankAuto SiteRankMode = iota
	// SiteRankCentral solves the site layer in-process on the
	// coordinator (the fleet still computes the local DocRanks).
	SiteRankCentral
	// SiteRankSync is the barrier-synchronous distributed power
	// iteration: every round reduces one partial from every live worker.
	SiteRankSync
	// SiteRankBatched exchanges up to BatchRounds power rounds per
	// message against a chain replicated on every worker.
	SiteRankBatched
	// SiteRankAsync is the barrier-free randomized mode: per-worker
	// sweeps merge into a versioned accumulator as they arrive, so a
	// straggler degrades convergence instead of stalling the fleet. A
	// candidate convergence detected from a decaying residual estimate
	// is always confirmed by synchronous verification rounds, so the
	// result meets Tol exactly like the synchronous modes.
	SiteRankAsync
)

// String names the mode for logs and flag round-trips.
func (m SiteRankMode) String() string {
	switch m {
	case SiteRankAuto:
		return "auto"
	case SiteRankCentral:
		return "central"
	case SiteRankSync:
		return "sync"
	case SiteRankBatched:
		return "batched"
	case SiteRankAsync:
		return "async"
	default:
		return fmt.Sprintf("SiteRankMode(%d)", int(m))
	}
}

// Config parameterizes one distributed ranking run.
type Config struct {
	// Damping is the PageRank damping factor / gatekeeper α. Zero is a
	// sentinel selecting pagerank.DefaultDamping (0.85); an explicit
	// damping of exactly 0 cannot be requested, while tiny positive
	// values are honored as given.
	Damping float64
	// Tol and MaxIter bound every power run, local and site-level
	// (0 = package matrix defaults).
	Tol     float64
	MaxIter int
	// SiteGraph controls SiteLink aggregation (§3.1).
	SiteGraph graph.SiteGraphOptions
	// DistributedSiteRank selects the fully decentralized variant:
	// instead of a central PageRank over M(G_S), the coordinator drives
	// power rounds in which each worker multiplies the iterate by the
	// rows of the site chain it owns.
	DistributedSiteRank bool
	// SitePersonalization optionally biases the site layer: the teleport
	// distribution v of Mˆ(G_S) (length NumSites; nil = uniform) — the
	// paper's "personalization at the higher layer" served from the
	// fleet. It applies in every SiteRank mode: the central solver takes
	// it directly, the unbatched distributed reduce applies it in the
	// coordinator's rank-one correction, and round batching ships it to
	// the workers alongside the iterate.
	SitePersonalization matrix.Vector
	// ThreeLayer selects the three-layer (domain → site → page) model:
	// the fleet computes local DocRanks exactly as in the two-layer run,
	// while the coordinator composes them under per-site weights
	// DomainRank·SiteEntry computed centrally from the Ranker's
	// SiteGraph (the upper layers are small — the paper's point).
	// Incompatible with DistributedSiteRank and SitePersonalization.
	ThreeLayer bool
	// DomainOf groups sites into domains for ThreeLayer (nil =
	// lmm.DefaultDomainOf).
	DomainOf func(siteName string) string
	// Compress flate-compresses shard payloads on the wire (the workers
	// decompress transparently). Edge lists are integer-heavy and
	// repetitive, so compression cuts cold-load bytes severalfold for
	// CPU that is negligible next to the ranking itself; warm runs ship
	// no shards either way. Stats records raw vs compressed bytes.
	Compress bool
	// BatchRounds asks the distributed SiteRank to run up to this many
	// power rounds per wire exchange (values <= 1 select the classic
	// one-round-per-exchange protocol; ignored without
	// DistributedSiteRank). Batching replicates the full normalized
	// site chain onto every worker at load time — cheap, because the
	// site layer is small (the paper's point) and the chain is digest-
	// cached like any shard — and then each exchange covers K rounds on
	// one worker, cutting SiteRank messages by ~K·NumWorkers while
	// agreeing with the unbatched path to < 1e-9 (summation-order
	// rounding only). A worker lost mid-batch fails over to the next
	// live worker without any reassignment, since every peer holds the
	// chain.
	BatchRounds int
	// SiteRank selects the site-layer algorithm explicitly. The zero
	// value (SiteRankAuto) derives it from DistributedSiteRank and
	// BatchRounds, preserving the legacy knobs; SiteRankAsync — the
	// barrier-free mode — is reachable only through this field.
	SiteRank SiteRankMode
	// AsyncOrdered makes the asynchronous mode deterministic: instead of
	// one concurrent sweep driver per worker, the coordinator draws one
	// worker at a time from a seeded schedule and merges its sweep before
	// drawing the next (Ishii–Tempo's sequential randomized update). The
	// SiteRank it produces is bitwise reproducible for a fixed AsyncSeed
	// and fleet; the concurrent default is faster but its merge order is
	// scheduler-dependent (still within Tol of the synchronous result).
	AsyncOrdered bool
	// AsyncSeed seeds the ordered asynchronous schedule (and nothing
	// else); ignored unless AsyncOrdered is set.
	AsyncSeed int64
	// Retry controls mid-run fault tolerance; the zero value disables
	// recovery.
	Retry RetryPolicy
	// Checkpoint, when non-nil, persists the distributed SiteRank power
	// iteration through the Checkpoint interface every CheckpointEvery
	// rounds (plus once at convergence-independent points), so a
	// coordinator killed mid-iteration resumes from the last saved
	// round instead of recomputing: at run start a snapshot whose
	// digest matches this computation seeds the iterate and round
	// counter. On success the checkpoint is cleared. Ignored without
	// DistributedSiteRank (the central solver is a single in-process
	// call with nothing durable to resume).
	Checkpoint Checkpoint
	// CheckpointEvery is the save cadence in rounds (0 = every round).
	CheckpointEvery int
	// MaxInFlight, RejectOverload and Coalesce are serving knobs
	// consumed by the root package's DistEngine, not by the
	// coordinator itself (which already serializes runs on the wire):
	// MaxInFlight caps concurrently admitted queries (0 = no cap),
	// RejectOverload makes over-cap queries fail fast instead of
	// queueing, and Coalesce merges concurrent identical queries into
	// one wire run.
	MaxInFlight    int
	RejectOverload bool
	Coalesce       bool
	// TenantQuota and CoalesceTol refine those knobs (again consumed by
	// the root DistEngine only): TenantQuota caps each Query.Tenant's
	// concurrently admitted queries beneath the engine-wide cap, and
	// CoalesceTol > 0 lets Coalesce merge queries whose personalization
	// vectors differ by less than the tolerance in L1, not just
	// bit-identical ones.
	TenantQuota int
	CoalesceTol float64
	// Partition selects the site→shard placement strategy (nil =
	// partition.Balanced, the weighted-LPT default). The strategy only
	// decides which worker serves which sites — the Partition Theorem
	// guarantees the composed DocRank is identical for every choice —
	// so it trades load balance against cut-edge volume (see
	// Stats.CutFraction).
	Partition partition.Strategy
	// Assignment, when non-nil, pins the site→shard placement instead
	// of consulting Partition: Assignment[s] is the abstract shard of
	// site s, and shard j maps onto the j-th live worker in ascending
	// fleet order. The root DistEngine pins the assignment it computed
	// at build time so every query and rejoin rebalance agrees with the
	// snapshot's placement. A pin that no longer fits (wrong length, or
	// an owner outside the live fleet after a permanent loss) falls back
	// to the strategy.
	Assignment []int
	// RepartitionThreshold is consumed by the root DistEngine's Update
	// path, not the coordinator: when an applied delta drifts the
	// cut-edge fraction more than this above the last repartition's
	// baseline, the engine re-runs the strategy and migrates shards
	// through the digest-cache negotiation. Zero or negative disables
	// online repartitioning.
	RepartitionThreshold float64
}

func (c Config) damping() float64 {
	if c.Damping == 0 {
		return pagerank.DefaultDamping
	}
	return c.Damping
}

func (c Config) tol() float64 {
	if c.Tol == 0 {
		return matrix.DefaultTol
	}
	return c.Tol
}

func (c Config) maxIter() int {
	if c.MaxIter == 0 {
		return matrix.DefaultMaxIter
	}
	return c.MaxIter
}

func (c Config) batchRounds() int {
	if c.BatchRounds < 1 {
		return 1
	}
	return c.BatchRounds
}

func (c Config) checkpointEvery() int {
	if c.CheckpointEvery < 1 {
		return 1
	}
	return c.CheckpointEvery
}

// mode resolves the effective SiteRankMode: the explicit field when
// set, else the legacy DistributedSiteRank/BatchRounds derivation.
func (c Config) mode() SiteRankMode {
	if c.SiteRank != SiteRankAuto {
		return c.SiteRank
	}
	if !c.DistributedSiteRank {
		return SiteRankCentral
	}
	if c.batchRounds() > 1 {
		return SiteRankBatched
	}
	return SiteRankSync
}

// distributed reports whether the mode runs the site layer on the
// fleet — the modes checkpointing and the site-chain payloads apply to.
func (m SiteRankMode) distributed() bool {
	return m == SiteRankSync || m == SiteRankBatched || m == SiteRankAsync
}

// Stats breaks down the cost of a distributed run.
type Stats struct {
	// LoadDuration covers partitioning and shipping the site shards.
	LoadDuration time.Duration
	// LocalRankDuration covers the fleet-wide local DocRank phase.
	LocalRankDuration time.Duration
	// SiteRankDuration covers the site-layer computation.
	SiteRankDuration time.Duration
	// SiteRankRounds counts power iterations of the site layer
	// (distributed rounds when DistributedSiteRank, else central ones).
	SiteRankRounds int
	// Messages counts request/response exchanges; BytesSent and
	// BytesReceived count raw bytes across the coordinator's sockets,
	// measured on the wire rather than estimated.
	Messages      uint64
	BytesSent     uint64
	BytesReceived uint64
	// WorkersLost counts peers that died mid-run; Reassignments counts
	// site shards moved to a surviving worker because of those losses;
	// Retries counts recovery re-executions (a re-ranked shard batch, a
	// redone power round, a failed-over batch exchange).
	WorkersLost   int
	Reassignments int
	Retries       int
	// WorkersRejoined counts peers re-admitted mid-run by the redial
	// loop (RetryPolicy.MaxRedials); RedialAttempts counts every dial
	// the loop made, successful or not; RejoinShardBytes estimates the
	// shard payload bytes shipped in full while rebalancing sites back
	// to rejoiners — ~0 when a rejoiner's digest cache is warm, which
	// is the whole point of re-admission over replacement.
	WorkersRejoined  int
	RedialAttempts   int
	RejoinShardBytes uint64
	// ResumedFromRound is the checkpointed round this run's SiteRank
	// continued from (0 = started fresh); SiteRankRounds then counts
	// only the rounds this run executed, so resumed + executed equals
	// the uninterrupted total.
	ResumedFromRound int
	// CacheHits counts shards (and site chains) the workers already
	// held by digest and did not need shipped; CacheMisses counts the
	// ones shipped in full. ShardBytesSaved estimates the payload bytes
	// the hits avoided (estimated from shard shape, not measured).
	CacheHits       int
	CacheMisses     int
	ShardBytesSaved uint64
	// ShardsReused counts site shards the run activated from worker
	// caches by digest instead of shipping; ShardsReshipped counts the
	// ones that crossed the wire in full. Unlike CacheHits/CacheMisses
	// they exclude the site chain, so a churn run over an N-site web
	// shows exactly which fraction of the shard payload moved: after a
	// 1-site edit delivered through the delta path (Rebuild +
	// RefreshPrepared, or Engine.Update) a warm run reads
	// ShardsReshipped == 1, ShardsReused == N-1.
	ShardsReused    int
	ShardsReshipped int
	// DigestBytesHashed counts the bytes this run fed through SHA-256
	// computing shard and chain content digests. The coordinator
	// memoizes digests per Ranker, so a warm RankPrepared run hashes
	// zero bytes.
	DigestBytesHashed uint64
	// ShardBytesRaw and ShardBytesCompressed record the shard payloads
	// shipped with Config.Compress on: the gob size before compression
	// and the flate size that actually crossed the wire. Both stay zero
	// when compression is off or nothing shipped in full.
	ShardBytesRaw        uint64
	ShardBytesCompressed uint64
	// BatchMessagesSaved estimates the SiteRank exchanges avoided by
	// round batching: rounds × live workers (the unbatched protocol's
	// cost) minus the batch exchanges actually made.
	BatchMessagesSaved int
	// AsyncUpdatesMerged counts the barrier-free sweeps SiteRankAsync
	// folded into its accumulator (SiteRankRounds counts the same thing
	// for the async mode, plus the verification rounds).
	AsyncUpdatesMerged int
	// AsyncWorkerSweeps breaks AsyncUpdatesMerged down per fleet index —
	// the straggler-tolerance signature: a delayed worker merges fewer
	// sweeps instead of slowing everyone else's.
	AsyncWorkerSweeps []int
	// AsyncStalenessHist histograms each merged sweep's staleness — how
	// many merges landed between the sweep's snapshot and its own merge.
	// Bucket i counts staleness exactly i; the last bucket absorbs the
	// tail. The ordered schedule merges every sweep at staleness 0.
	AsyncStalenessHist []int
	// AsyncVerifyRounds counts the synchronous barrier rounds run to
	// confirm a candidate convergence of the asynchronous phase — the
	// rounds that make the residual estimate's optimism harmless.
	AsyncVerifyRounds int
	// CutEdges is the SiteGraph link weight (document-link multiplicity,
	// aggregated per site pair under Config.SiteGraph) between sites
	// placed on different workers this run — the coupling the
	// distributed computation carries between peers. CutFraction is the
	// same weight as a fraction of the SiteGraph's total; it is the
	// partition-quality number the Aggregate strategy minimizes.
	CutEdges    float64
	CutFraction float64
	// CrossShardBytes estimates the per-sweep payload a document-level
	// edge exchange would ship across shard boundaries under this
	// placement (CutEdges × the gob cost of one wire edge). The LMM
	// protocol never ships document edges — that is the paper's point —
	// so this is the counterfactual volume the partition avoids, not a
	// measured transfer.
	CrossShardBytes uint64
}

// Result is the outcome of a distributed ranking run. Every vector is
// freshly allocated — callers own the result outright.
type Result struct {
	// DocRank is the composed global ranking per DocID.
	DocRank matrix.Vector
	// SiteRank is πS per SiteID. For a ThreeLayer run it holds the
	// per-site composition weights DomainRank·SiteEntry instead.
	SiteRank matrix.Vector
	// Domains, DomainRank, DomainOfSite and SiteEntry carry the upper
	// layers of a ThreeLayer run (nil otherwise), mirroring
	// lmm.Web3Result.
	Domains      []string
	DomainRank   matrix.Vector
	DomainOfSite []int
	SiteEntry    matrix.Vector
	// LocalRanks holds each site's local DocRank in local-index order,
	// exactly as the workers returned them (WebResult.LocalRanks'
	// distributed twin).
	LocalRanks []matrix.Vector
	// LocalIterations records each site's local power-method work as
	// reported by its worker, matching WebResult.LocalIterations for
	// the complexity experiments (E6).
	LocalIterations []int
	// Stats holds timing and transport cost of this run.
	Stats Stats
}

// errLost marks transport-level call failures: the peer is dead,
// partitioned, or its stream is desynchronized, and the connection is
// poisoned either way. Loss errors are the retriable class RetryPolicy
// recovers from; worker-side Response.Err failures are not — the peer
// is alive and refusing, which means a bug, not a death.
var errLost = errors.New("worker lost")

// remote is one connected worker. Its gob stream is strictly
// request/response, so a mutex serializes users of the connection.
type remote struct {
	mu     sync.Mutex
	conn   *wire.Conn
	addr   string
	broken bool
}

// call performs one exchange on the remote's connection, bounded by the
// earlier of ctx's deadline and timeout (<= 0 means no per-call bound).
// A context cancelled mid-exchange interrupts the blocked socket I/O
// immediately (the connection deadline is yanked to the past) and the
// context's error is returned. Any transport failure — a timeout, a
// cancellation, a dead peer — leaves the request/response stream
// desynchronized (a late response could pair with the next request), so
// it marks the remote broken and closes the connection; later calls fail
// fast rather than silently consuming stale payloads. Transport failures
// other than cancellation wrap errLost; cancellation returns ctx.Err()
// so callers never mistake the caller's own abort for a worker death.
func (r *remote) call(ctx context.Context, req *wire.Request, counters *wire.Counters, timeout time.Duration) (*wire.Response, error) {
	if err := ctx.Err(); err != nil {
		// Cancelled before any bytes moved: the stream is still in sync
		// and the connection stays usable.
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken {
		return nil, fmt.Errorf("coordinator: %s: connection broken by an earlier failure: %w", r.addr, errLost)
	}
	var deadline time.Time
	ctxBound := false
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || !d.After(deadline)) {
		deadline = d
		ctxBound = true
	}
	if !deadline.IsZero() {
		r.conn.SetDeadline(deadline)
		defer r.conn.SetDeadline(time.Time{})
	}
	if ctx.Done() != nil {
		// dlMu serializes the cancellation callback against the cleanup
		// below: AfterFunc's stop() does not wait for a callback already
		// running, so without it a cancel racing the end of a successful
		// exchange could land its past deadline after the reset and
		// leave a healthy connection permanently timed out.
		var dlMu sync.Mutex
		stopped := false
		stop := context.AfterFunc(ctx, func() {
			dlMu.Lock()
			defer dlMu.Unlock()
			if !stopped {
				// Unblock the in-flight read/write right away instead
				// of waiting out the deadline.
				r.conn.SetDeadline(time.Unix(1, 0))
			}
		})
		defer func() {
			dlMu.Lock()
			stopped = true
			dlMu.Unlock()
			stop()
			r.conn.SetDeadline(time.Time{})
		}()
	}
	fail := func(op string, err error) error {
		r.markBroken()
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		// The socket deadline and the context deadline are the same
		// instant when the context supplied the bound, but the net
		// poller can observe it a hair before the context's timer
		// fires — classify that I/O timeout as the context expiry it
		// is, not as a worker loss.
		var nerr net.Error
		if ctxBound && errors.As(err, &nerr) && nerr.Timeout() {
			return context.DeadlineExceeded
		}
		return fmt.Errorf("coordinator: %s %s: %w: %w", op, r.addr, err, errLost)
	}
	if err := r.conn.Enc.Encode(req); err != nil {
		return nil, fail("send to", err)
	}
	var resp wire.Response
	if err := r.conn.Dec.Decode(&resp); err != nil {
		return nil, fail("receive from", err)
	}
	counters.AddMessage()
	if resp.Err != "" {
		// Worker-side errors arrive in a well-formed response, so the
		// stream stays in sync and the connection remains usable.
		return nil, fmt.Errorf("coordinator: %s: %s", r.addr, resp.Err)
	}
	return &resp, nil
}

// markBroken poisons the remote; the caller holds r.mu.
func (r *remote) markBroken() {
	r.broken = true
	r.conn.Close()
}

// isBroken reports whether an earlier failure poisoned the connection.
func (r *remote) isBroken() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.broken
}

// reconnect replaces a broken remote's connection with a freshly dialed
// one and clears the poison mark; the old socket (if any) is closed.
// The new gob streams start in sync — the peer sees a brand-new session.
func (r *remote) reconnect(nc net.Conn, counters *wire.Counters) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		r.conn.Close()
	}
	r.conn = wire.NewConn(nc, counters)
	r.broken = false
}

// Coordinator drives a fleet of workers through ranking runs.
type Coordinator struct {
	counters wire.Counters
	workers  []*remote

	// CallTimeout bounds each request/response exchange (0 selects
	// DefaultCallTimeout, negative disables the bound). Set it before
	// issuing calls; huge shard batches on slow links may need more.
	CallTimeout time.Duration

	// runMu serializes whole Rank runs: the protocol phases (reset,
	// load, rank, power rounds) of two runs must not interleave.
	runMu sync.Mutex

	// prepMemo memoizes the wire payloads (shards, digests, sizes,
	// chain) of recently prepared Rankers, so repeated RankPrepared runs
	// skip rebuilding edge lists and re-hashing SHA-256 digests
	// entirely — including a coordinator alternating between several
	// prepared graphs (one entry per (Ranker, protocol shape), LRU at
	// the front, bounded by prepMemoCap). Guarded by runMu. A Ranker
	// captures its graph by reference and a mutated graph requires a new
	// (or Rebuild-ed) Ranker, so identity of the Ranker pointer — plus
	// the protocol shape, which decides whether chain rows ride in the
	// shards — is a sound memo key; RefreshPrepared migrates entries
	// across a Rebuild so only dirty shards re-hash.
	prepMemo []*preparedShards

	mu     sync.Mutex
	closed bool
}

// prepMemoCap bounds the digest memo: enough for a coordinator
// alternating a handful of prepared graphs (each in at most one protocol
// shape at a time in practice), small enough that pinned payloads stay
// negligible next to the worker-side caches.
const prepMemoCap = 4

// preparedShards is one (Ranker, protocol shape) entry of the memo.
// After RefreshPrepared migrates an entry across an incremental Rebuild,
// built marks which sites' payloads are valid: unchanged sites carry
// over, dirty slots are rebuilt (and re-hashed) by the next run's
// buildShards.
type preparedShards struct {
	rk        *lmm.Ranker
	wantRows  bool
	withChain bool

	shards   []wire.SiteShard
	refs     []wire.ShardRef
	sizes    []int
	built    []bool
	chain    *wire.SiteChain
	chainRef wire.Digest
}

// complete reports whether every site payload (and the chain, when the
// shape ships one) is valid.
func (p *preparedShards) complete() bool {
	for _, b := range p.built {
		if !b {
			return false
		}
	}
	return !p.withChain || p.chain != nil
}

// lookupPrep returns the memo entry for the key, moving it to the LRU
// front. Caller holds runMu.
func (c *Coordinator) lookupPrep(rk *lmm.Ranker, wantRows, withChain bool) *preparedShards {
	for i, p := range c.prepMemo {
		if p.rk == rk && p.wantRows == wantRows && p.withChain == withChain {
			copy(c.prepMemo[1:i+1], c.prepMemo[:i])
			c.prepMemo[0] = p
			return p
		}
	}
	return nil
}

// storePrep inserts (or refreshes) a memo entry at the LRU front,
// evicting the least recently used entry past prepMemoCap. Caller holds
// runMu.
func (c *Coordinator) storePrep(p *preparedShards) {
	for i, q := range c.prepMemo {
		if q.rk == p.rk && q.wantRows == p.wantRows && q.withChain == p.withChain {
			copy(c.prepMemo[1:i+1], c.prepMemo[:i])
			c.prepMemo[0] = p
			return
		}
	}
	c.prepMemo = append(c.prepMemo, nil)
	copy(c.prepMemo[1:], c.prepMemo)
	c.prepMemo[0] = p
	if len(c.prepMemo) > prepMemoCap {
		c.prepMemo = c.prepMemo[:prepMemoCap]
	}
}

// RefreshPrepared migrates the digest memo across an incremental Ranker
// rebuild (lmm.Ranker.Rebuild): every memo entry held for prev whose
// shards do not embed site-chain rows is re-keyed to next with the
// unchanged sites' payloads and digests carried over, so the next
// RankPrepared run re-hashes only the changed shards — the
// coordinator-side half of delta shipping (the worker-side half is the
// digest cache, which turns every unchanged shard into an Offer hit).
// Entries for prev in the rows-in-shards shape (unbatched distributed
// SiteRank) are dropped instead: their shard contents embed site-graph
// rows, which a mutation elsewhere can change. changed lists the same
// sites passed to Rebuild; sites appended beyond prev's roster are
// implicitly changed. Entries for prev are removed either way — the old
// Ranker is stale by contract.
func (c *Coordinator) RefreshPrepared(prev, next *lmm.Ranker, changed []graph.SiteID) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	ns := next.NumSites()
	changedSet := make(map[int]bool, len(changed))
	for _, s := range changed {
		changedSet[int(s)] = true
	}
	for s := prev.NumSites(); s < ns; s++ {
		changedSet[s] = true
	}
	kept := c.prepMemo[:0]
	var migrated []*preparedShards
	for _, p := range c.prepMemo {
		if p.rk != prev {
			kept = append(kept, p)
			continue
		}
		if p.wantRows {
			continue // shard contents depend on the (changed) site graph
		}
		m := &preparedShards{
			rk: next, wantRows: p.wantRows, withChain: p.withChain,
			shards: make([]wire.SiteShard, ns),
			refs:   make([]wire.ShardRef, ns),
			sizes:  make([]int, ns),
			built:  make([]bool, ns),
			// chain stays nil: the site graph may have changed, and it
			// is small — the next run rebuilds and re-hashes it.
		}
		for s := 0; s < ns && s < len(p.shards); s++ {
			if changedSet[s] || !p.built[s] {
				continue
			}
			m.shards[s] = p.shards[s]
			m.refs[s] = p.refs[s]
			m.sizes[s] = p.sizes[s]
			m.built[s] = true
		}
		migrated = append(migrated, m)
	}
	c.prepMemo = kept
	for _, m := range migrated {
		c.storePrep(m)
	}
}

// dialAttempts is how many tries the initial bring-up dial gives each
// worker address, with jittered backoff between them — enough to ride
// out a fleet still binding its listeners, small enough that a dead
// address still fails within the same order of magnitude as one
// attempt (the backoff sleeps total well under a second).
const (
	dialAttempts    = 3
	dialBackoffBase = 100 * time.Millisecond
	dialBackoffMax  = 300 * time.Millisecond
)

// dialWithRetry dials addr through the same jittered-backoff shape the
// mid-run redial loop uses: a connection-refused from a worker that is
// 200 ms from finishing its bind should cost a short sleep, not the
// whole cluster bring-up.
func dialWithRetry(addr string, timeout time.Duration, attempts int) (net.Conn, error) {
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoffDelay(dialBackoffBase, dialBackoffMax, a-1))
		}
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Dial connects to every worker address (with DefaultDialTimeout per
// address) and returns the connected coordinator. Each address gets a
// few attempts with jittered backoff, so a fleet still starting up does
// not fail a bring-up that would succeed 200 ms later. On any failure
// all established connections are closed and an error naming the bad
// address is returned.
func Dial(addrs []string) (*Coordinator, error) {
	return DialTimeout(addrs, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit per-address timeout (per
// attempt, not per address).
func DialTimeout(addrs []string, timeout time.Duration) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, errors.New("coordinator: no worker addresses")
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	c := &Coordinator{}
	for _, addr := range addrs {
		conn, err := dialWithRetry(addr, timeout, dialAttempts)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("coordinator: dial worker %s: %w", addr, err)
		}
		c.workers = append(c.workers, &remote{
			conn: wire.NewConn(conn, &c.counters),
			addr: addr,
		})
	}
	return c, nil
}

// NumWorkers returns the fleet size.
func (c *Coordinator) NumWorkers() int { return len(c.workers) }

// Ping round-trips a liveness probe to every worker concurrently
// (including ones whose connections earlier failures poisoned — those
// report errors, which is how callers learn the fleet shrank). It
// serializes with Rank so probe traffic never lands inside a run's
// per-run Stats deltas.
func (c *Coordinator) Ping() error {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return errors.New("coordinator: closed")
	}
	return c.broadcastErr(func(_ int, r *remote) error {
		_, err := r.call(context.Background(), &wire.Request{Kind: wire.KindPing}, &c.counters, c.callTimeout())
		return err
	})
}

// Close hangs up every worker connection (the workers keep serving —
// closing a coordinator does not stop the fleet). Idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, r := range c.workers {
		if err := r.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of this coordinator's transport counters
// (cumulative across runs; Rank reports per-run deltas).
func (c *Coordinator) Stats() (messages, bytesSent, bytesReceived uint64) {
	return c.counters.Messages(), c.counters.BytesSent(), c.counters.BytesReceived()
}

func (c *Coordinator) callTimeout() time.Duration {
	if c.CallTimeout == 0 {
		return DefaultCallTimeout
	}
	return c.CallTimeout
}

// broadcastErr runs fn against every worker concurrently, passing each
// worker's fleet index, and joins the errors in worker order.
func (c *Coordinator) broadcastErr(fn func(idx int, r *remote) error) error {
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	for i, r := range c.workers {
		wg.Add(1)
		go func(i int, r *remote) {
			defer wg.Done()
			errs[i] = fn(i, r)
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank executes the distributed Layered Method on dg: partition sites
// over the fleet, ship shards, rank locally on the peers, compute the
// SiteRank, and compose the global DocRank per the Partition Theorem.
// It is RankCtx with a background context.
//
// It builds a throwaway lmm.Ranker for the run; callers ranking the same
// graph repeatedly should precompute one and call RankPrepared, which
// skips the SiteGraph derivation and subgraph extraction entirely (and,
// paired with the workers' digest caches and the coordinator's digest
// memo, skips re-shipping and re-hashing shards too).
func (c *Coordinator) Rank(dg *graph.DocGraph, cfg Config) (*Result, error) {
	return c.RankCtx(context.Background(), dg, cfg)
}

// RankCtx is Rank under a context: the context's deadline propagates
// into every wire exchange (bounded further by CallTimeout) and a
// cancellation aborts the run mid-phase — between power rounds, between
// shipment waves, or by interrupting a blocked socket read — returning
// ctx.Err(). A cancelled run poisons the connections it interrupted
// (their streams are desynchronized); Ping reports which survived.
func (c *Coordinator) RankCtx(ctx context.Context, dg *graph.DocGraph, cfg Config) (*Result, error) {
	// Build the Ranker under runMu: NewRanker dedupes the shared graph
	// (a mutation), and concurrent Rank calls are allowed as long as
	// runMu serializes them.
	c.runMu.Lock()
	defer c.runMu.Unlock()
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{SiteGraph: cfg.SiteGraph})
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	res, err := c.rankPrepared(ctx, rk, cfg, false)
	return res, normalizeCtxErr(ctx, err)
}

// RankPrepared is Rank over a precomputed lmm.Ranker: the SiteGraph and
// all local subgraphs come from the Ranker's one-time precomputation, so
// repeated runs over the same graph only pay for shipping and ranking —
// and since workers cache shards by content digest (and the coordinator
// memoizes the digests per Ranker), a repeated run over an unchanged
// graph ships (almost) no shard bytes and hashes none at all.
// cfg.SiteGraph is ignored — that choice was fixed when the Ranker was
// built. The Ranker must not be used concurrently by another goroutine
// while a run is in flight.
func (c *Coordinator) RankPrepared(rk *lmm.Ranker, cfg Config) (*Result, error) {
	return c.RankPreparedCtx(context.Background(), rk, cfg)
}

// RankPreparedCtx is RankPrepared under a context; see RankCtx for the
// cancellation semantics.
func (c *Coordinator) RankPreparedCtx(ctx context.Context, rk *lmm.Ranker, cfg Config) (*Result, error) {
	c.runMu.Lock()
	defer c.runMu.Unlock()
	res, err := c.rankPrepared(ctx, rk, cfg, true)
	return res, normalizeCtxErr(ctx, err)
}

// normalizeCtxErr maps any failure of a cancelled run to the context's
// own error, so callers observe exactly ctx.Err() no matter which phase
// (a power iteration, a wire exchange, a loop head) noticed the
// cancellation first.
func normalizeCtxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}
