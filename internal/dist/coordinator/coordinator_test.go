package coordinator

import (
	"errors"
	"net"
	"testing"
	"time"

	"lmmrank/internal/dist/worker"
	"lmmrank/internal/graph"
	"lmmrank/internal/webgen"
)

// deadAddr returns a loopback address that is guaranteed closed: we
// bind a port, note it, and release it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func startWorker(t *testing.T) (*worker.Worker, string) {
	t.Helper()
	w := worker.New()
	addr, err := w.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("worker.Start: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w, addr
}

// TestDialDeadAddress asserts a dead worker address fails with an error
// promptly instead of hanging cluster bring-up.
func TestDialDeadAddress(t *testing.T) {
	start := time.Now()
	c, err := Dial([]string{deadAddr(t)})
	if err == nil {
		c.Close()
		t.Fatal("Dial of dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > DefaultDialTimeout+2*time.Second {
		t.Errorf("Dial took %v, expected to fail within the dial timeout", elapsed)
	}
}

// TestDialPartialFailure asserts that when one address of several is
// dead, Dial fails as a whole and does not leak the good connection.
func TestDialPartialFailure(t *testing.T) {
	_, good := startWorker(t)
	if _, err := Dial([]string{good, deadAddr(t)}); err == nil {
		t.Fatal("Dial with one dead address succeeded")
	}
}

func TestDialNoAddresses(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("Dial with no addresses succeeded")
	}
}

func rankableWeb() *graph.DocGraph {
	return webgen.Generate(webgen.Config{
		Seed:                5,
		Sites:               6,
		MeanSitePages:       6,
		DynamicClusterPages: 10,
		DocClusterPages:     10,
	}).Graph
}

// TestRankAfterWorkerClose asserts a mid-fleet worker shutdown turns
// into a clean error from Rank, not a hang or a panic.
func TestRankAfterWorkerClose(t *testing.T) {
	w, addr := startWorker(t)
	c, err := Dial([]string{addr})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("worker Close: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Rank(rankableWeb(), Config{})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Rank against a closed worker succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Rank against a closed worker hung")
	}
}

// TestRankAfterCoordinatorClose asserts using a closed coordinator is a
// clean error.
func TestRankAfterCoordinatorClose(t *testing.T) {
	_, addr := startWorker(t)
	c, err := Dial([]string{addr})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := c.Rank(rankableWeb(), Config{}); err == nil {
		t.Error("Rank on closed coordinator succeeded")
	}
	if err := c.Ping(); err == nil {
		t.Error("Ping on closed coordinator succeeded")
	}
}

// TestRankRejectsEmptyGraph covers input validation before any network
// traffic happens.
func TestRankRejectsEmptyGraph(t *testing.T) {
	_, addr := startWorker(t)
	c, err := Dial([]string{addr})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	empty := &graph.DocGraph{G: graph.NewDigraph(0)}
	if _, err := c.Rank(empty, Config{}); err == nil {
		t.Error("Rank of empty graph succeeded")
	}
	var nilErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				nilErr = errors.New("panicked")
			}
		}()
		_, nilErr = c.Rank(&graph.DocGraph{}, Config{})
	}()
	if nilErr == nil {
		t.Error("Rank of nil-digraph DocGraph succeeded")
	}
}

// TestStalledPeerTimesOut dials a listener that accepts and then goes
// silent — the partitioned-host case TCP never reports. The call
// deadline must surface an error instead of wedging forever.
func TestStalledPeerTimesOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, never respond
		}
	}()

	c, err := Dial([]string{ln.Addr().String()})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	c.CallTimeout = 200 * time.Millisecond

	done := make(chan error, 1)
	go func() { done <- c.Ping() }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Ping of a stalled peer succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Ping of a stalled peer hung despite CallTimeout")
	}

	// The timed-out exchange desynchronized the stream; the remote must
	// be poisoned so the next call fails immediately instead of pairing
	// with a stale late response.
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Error("Ping after a timeout succeeded on a broken connection")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Ping on a broken remote took %v, want fail-fast", elapsed)
	}
}

// TestRankRejectsBadDamping asserts both SiteRank paths reject an
// out-of-range damping factor instead of silently producing NaNs.
func TestRankRejectsBadDamping(t *testing.T) {
	_, addr := startWorker(t)
	c, err := Dial([]string{addr})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	dg := rankableWeb()
	for _, distSite := range []bool{false, true} {
		for _, f := range []float64{-0.5, 1.5} {
			if _, err := c.Rank(dg, Config{Damping: f, DistributedSiteRank: distSite}); err == nil {
				t.Errorf("Rank with damping %g (distSite=%v) succeeded", f, distSite)
			}
		}
	}
}

func TestNumWorkersAndPing(t *testing.T) {
	_, a1 := startWorker(t)
	_, a2 := startWorker(t)
	c, err := Dial([]string{a1, a2})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if got := c.NumWorkers(); got != 2 {
		t.Errorf("NumWorkers = %d, want 2", got)
	}
	if err := c.Ping(); err != nil {
		t.Errorf("Ping: %v", err)
	}
	msgs, sent, recv := c.Stats()
	if msgs != 2 || sent == 0 || recv == 0 {
		t.Errorf("after Ping of 2 workers: messages=%d sent=%d recv=%d", msgs, sent, recv)
	}
}
