package coordinator

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lmmrank/internal/dist/chaos"
	"lmmrank/internal/dist/wire"
)

// startHangingWorker is the cancellation twin of the kill-scripted
// fixtures: a real worker behind a chaos proxy whose script blocks at
// the first request of kind hangOn — the connection stays open, no
// bytes move — until release is called. To the coordinator this is a
// stalled peer: without a context (or the per-call timeout) the
// exchange would block indefinitely.
func startHangingWorker(t *testing.T, hangOn wire.Kind) (addr string, release func()) {
	t.Helper()
	_, waddr := startWorker(t)
	blocked := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(blocked) }) }
	p, err := chaos.NewProxy(waddr, func(_ int, req *wire.Request) chaos.Decision {
		if req.Kind == hangOn {
			<-blocked // the scripted stall
			return chaos.Decision{Action: chaos.Drop}
		}
		return chaos.Decision{Action: chaos.Pass}
	})
	if err != nil {
		t.Fatalf("chaos.NewProxy: %v", err)
	}
	// LIFO cleanups: release the blocked script before the proxy's
	// Close waits for its serving goroutines.
	t.Cleanup(func() { p.Close() })
	t.Cleanup(release)
	return p.Addr(), release
}

// TestRankCtxPreCancelled pins the cheap path: an already-cancelled
// context fails the run before any wire traffic, returning ctx.Err().
func TestRankCtxPreCancelled(t *testing.T) {
	_, a1 := startWorker(t)
	c, err := Dial([]string{a1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	startMsgs, _, _ := c.Stats()
	if _, err := c.RankCtx(ctx, rankableWeb(), Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RankCtx on a cancelled context: err = %v, want context.Canceled", err)
	}
	if msgs, _, _ := c.Stats(); msgs != startMsgs {
		t.Errorf("pre-cancelled run still exchanged %d messages", msgs-startMsgs)
	}
	// The fleet was never touched: a follow-up run must succeed.
	if _, err := c.Rank(rankableWeb(), Config{}); err != nil {
		t.Fatalf("Rank after a pre-cancelled run: %v", err)
	}
}

// TestRankCtxCancelAbortsInFlightCall is the acceptance bar for the
// distributed backend: a context cancelled while a worker exchange is
// blocked mid-run interrupts the socket wait immediately and the run
// returns ctx.Err() — it does not sit out the two-minute call timeout.
func TestRankCtxCancelAbortsInFlightCall(t *testing.T) {
	_, a1 := startWorker(t)
	aHang, release := startHangingWorker(t, wire.KindRankLocal)
	defer release()
	c, err := Dial([]string{a1, aHang})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.RankCtx(ctx, rankableWeb(), Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RankCtx with a mid-run cancel: err = %v, want context.Canceled", err)
	}
	if err != ctx.Err() {
		t.Errorf("RankCtx returned %v, want exactly ctx.Err() (%v)", err, ctx.Err())
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("cancellation took %v — the blocked exchange was not interrupted", waited)
	}
}

// TestRankCtxDeadlineAbortsInFlightCall covers deadline propagation:
// the context's deadline bounds the wire exchange (tighter than the
// default CallTimeout) and an expiry mid-exchange surfaces as
// context.DeadlineExceeded.
func TestRankCtxDeadlineAbortsInFlightCall(t *testing.T) {
	_, a1 := startWorker(t)
	aHang, release := startHangingWorker(t, wire.KindRankLocal)
	defer release()
	c, err := Dial([]string{a1, aHang})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.RankCtx(ctx, rankableWeb(), Config{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RankCtx past its deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("deadline abort took %v — the deadline did not propagate to the socket", waited)
	}
}
