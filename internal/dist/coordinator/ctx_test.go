package coordinator

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"lmmrank/internal/dist/wire"
)

// startHangingWorker is the cancellation twin of startFakeWorker: a
// scripted peer that answers every request correctly until the first
// request of kind hangOn arrives, then simply stops responding — the
// connection stays open, no bytes move — until release is called. To
// the coordinator this is a stalled peer: without a context (or the
// per-call timeout) the exchange would block indefinitely.
func startHangingWorker(t *testing.T, hangOn wire.Kind) (addr string, release func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	blocked := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(blocked) }) }
	t.Cleanup(func() { release(); ln.Close() })

	script := &fakeWorker{t: t}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				enc := gob.NewEncoder(conn)
				dec := gob.NewDecoder(conn)
				shards := make(map[int]wire.SiteShard)
				for {
					var req wire.Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if req.Kind == hangOn {
						<-blocked // the scripted stall
						return
					}
					if err := enc.Encode(script.handle(shards, &req)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), release
}

// TestRankCtxPreCancelled pins the cheap path: an already-cancelled
// context fails the run before any wire traffic, returning ctx.Err().
func TestRankCtxPreCancelled(t *testing.T) {
	_, a1 := startWorker(t)
	c, err := Dial([]string{a1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	startMsgs, _, _ := c.Stats()
	if _, err := c.RankCtx(ctx, rankableWeb(), Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RankCtx on a cancelled context: err = %v, want context.Canceled", err)
	}
	if msgs, _, _ := c.Stats(); msgs != startMsgs {
		t.Errorf("pre-cancelled run still exchanged %d messages", msgs-startMsgs)
	}
	// The fleet was never touched: a follow-up run must succeed.
	if _, err := c.Rank(rankableWeb(), Config{}); err != nil {
		t.Fatalf("Rank after a pre-cancelled run: %v", err)
	}
}

// TestRankCtxCancelAbortsInFlightCall is the acceptance bar for the
// distributed backend: a context cancelled while a worker exchange is
// blocked mid-run interrupts the socket wait immediately and the run
// returns ctx.Err() — it does not sit out the two-minute call timeout.
func TestRankCtxCancelAbortsInFlightCall(t *testing.T) {
	_, a1 := startWorker(t)
	aHang, release := startHangingWorker(t, wire.KindRankLocal)
	defer release()
	c, err := Dial([]string{a1, aHang})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.RankCtx(ctx, rankableWeb(), Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RankCtx with a mid-run cancel: err = %v, want context.Canceled", err)
	}
	if err != ctx.Err() {
		t.Errorf("RankCtx returned %v, want exactly ctx.Err() (%v)", err, ctx.Err())
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("cancellation took %v — the blocked exchange was not interrupted", waited)
	}
}

// TestRankCtxDeadlineAbortsInFlightCall covers deadline propagation:
// the context's deadline bounds the wire exchange (tighter than the
// default CallTimeout) and an expiry mid-exchange surfaces as
// context.DeadlineExceeded.
func TestRankCtxDeadlineAbortsInFlightCall(t *testing.T) {
	_, a1 := startWorker(t)
	aHang, release := startHangingWorker(t, wire.KindRankLocal)
	defer release()
	c, err := Dial([]string{a1, aHang})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.RankCtx(ctx, rankableWeb(), Config{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RankCtx past its deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("deadline abort took %v — the deadline did not propagate to the socket", waited)
	}
}
