package coordinator

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"lmmrank/internal/dist/wire"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// run is the state of one distributed ranking: the immutable per-site
// shard payloads, and the mutable fleet view (who is alive, who owns
// which site) that loss recovery rewrites mid-flight.
type run struct {
	c     *Coordinator
	ctx   context.Context
	cfg   Config
	rk    *lmm.Ranker
	ns    int
	stats *Stats
	// memoize marks runs over a caller-held Ranker (RankPrepared):
	// only those may usefully populate the coordinator's shard memo —
	// a one-shot Rank's throwaway Ranker can never hit again, and
	// storing it would both pin the payloads and evict a warm memo.
	memoize bool
	// tele is the normalized site-layer teleport (nil = uniform), shared
	// by every SiteRank mode so central, unbatched and batched runs
	// apply the same personalization vector.
	tele matrix.Vector

	// Per-site payloads, built once from the Ranker's precomputation.
	shards []wire.SiteShard
	refs   []wire.ShardRef
	sizes  []int
	// chain is the replicated site chain (round batching only).
	chain    *wire.SiteChain
	chainRef wire.Digest

	// Fleet view. alive/owner/load change on loss; initialized and
	// hasChain record which peers completed their first Load (and hold
	// the chain), so recovery shipments skip the Reset and the chain.
	alive       []bool
	nAlive      int
	owner       []int
	load        []int
	initialized []bool
	hasChain    []bool
	budget      int

	// Re-admission (RetryPolicy.MaxRedials > 0). A redialer goroutine
	// per lost worker delivers fresh connections on rejoinCh; the
	// sequential phase code admits them at loop heads — safe points
	// where no partial results are in flight. redialing marks workers
	// with an active redialer (sequential access only); rejoining marks
	// workers mid-readmission for shipTo's byte accounting (r.mu).
	rejoinCh   chan rejoin
	redialStop chan struct{}
	redialWG   sync.WaitGroup
	redialing  []bool
	rejoining  map[int]bool
	inReadmit  bool

	// mu guards stats mutations from the concurrent per-worker
	// shipments (phase bookkeeping is otherwise sequential), and the
	// rejoining set they read.
	mu sync.Mutex
}

// rejoin is one successfully redialed worker awaiting re-admission.
type rejoin struct {
	idx  int
	conn net.Conn
}

// rankPrepared runs one ranking; the caller holds runMu. memoize marks
// runs whose Ranker the caller retains (see run.memoize).
func (c *Coordinator) rankPrepared(ctx context.Context, rk *lmm.Ranker, cfg Config, memoize bool) (*Result, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("coordinator: closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A Ranker whose graph mutated after precomputation would ship stale
	// shards (and, via the digest memo, stale digests); refuse exactly
	// like the in-process query paths do. Recover with lmm.Ranker.Rebuild
	// + RefreshPrepared, or DistEngine.Update, which does both.
	if rk.Stale() {
		return nil, fmt.Errorf("coordinator: %w", lmm.ErrGraphMutated)
	}
	// Validate damping up front so the distributed SiteRank path rejects
	// bad values exactly like the central pagerank path does.
	if f := cfg.damping(); f <= 0 || f >= 1 {
		return nil, fmt.Errorf("coordinator: %w: damping %g outside (0,1)", pagerank.ErrBadConfig, f)
	}
	if cfg.SiteRank < SiteRankAuto || cfg.SiteRank > SiteRankAsync {
		return nil, fmt.Errorf("coordinator: %w: unknown SiteRank mode %d", pagerank.ErrBadConfig, int(cfg.SiteRank))
	}
	mode := cfg.mode()
	if cfg.ThreeLayer {
		if mode.distributed() {
			return nil, fmt.Errorf("coordinator: %w: ThreeLayer computes its site weights centrally and cannot combine with a distributed SiteRank mode", pagerank.ErrBadConfig)
		}
		if cfg.SitePersonalization != nil {
			return nil, fmt.Errorf("coordinator: %w: ThreeLayer replaces the site layer and cannot combine with SitePersonalization", pagerank.ErrBadConfig)
		}
	}

	startMsgs, startOut, startIn := c.counters.Messages(), c.counters.BytesSent(), c.counters.BytesReceived()
	res := &Result{}
	dg := rk.DocGraph()

	r := &run{
		c:           c,
		ctx:         ctx,
		cfg:         cfg,
		rk:          rk,
		ns:          dg.NumSites(),
		stats:       &res.Stats,
		memoize:     memoize,
		alive:       make([]bool, len(c.workers)),
		load:        make([]int, len(c.workers)),
		initialized: make([]bool, len(c.workers)),
		hasChain:    make([]bool, len(c.workers)),
		budget:      cfg.Retry.MaxWorkerFailures,
	}
	if cfg.SitePersonalization != nil {
		if len(cfg.SitePersonalization) != r.ns {
			return nil, fmt.Errorf("coordinator: %w: site personalization length %d vs %d sites",
				pagerank.ErrBadConfig, len(cfg.SitePersonalization), r.ns)
		}
		if !cfg.SitePersonalization.IsDistribution(1e-6) {
			return nil, fmt.Errorf("coordinator: %w: site personalization is not a probability distribution",
				pagerank.ErrBadConfig)
		}
		r.tele = cfg.SitePersonalization.Clone().Normalize()
	}
	for i, w := range c.workers {
		if !w.isBroken() {
			r.alive[i] = true
			r.nAlive++
		}
	}
	if r.nAlive == 0 {
		return nil, errors.New("coordinator: no live workers (every connection is broken)")
	}
	// Arm re-admission before the first shipment: a worker that died in
	// an earlier run (or dies in this one) is redialed in the background
	// and folded back in at the next phase boundary.
	r.startRedialers()
	defer r.stopRedialers()

	// Partition and ship: the configured strategy (or pinned
	// assignment) places sites over the live fleet, delivered through
	// the workers' digest caches.
	loadStart := time.Now()
	r.buildShards()
	r.owner = r.assignOwners()
	r.computeCutStats()
	need := make(map[int]struct{}, r.ns)
	for s := 0; s < r.ns; s++ {
		need[s] = struct{}{}
	}
	if err := r.ship(need); err != nil {
		return nil, err
	}
	res.Stats.LoadDuration = time.Since(loadStart)

	// Step 3 on the fleet: local DocRanks.
	localStart := time.Now()
	localRanks, localIters, err := r.localPhase(dg)
	if err != nil {
		return nil, err
	}
	res.Stats.LocalRankDuration = time.Since(localStart)

	// Step 4: the upper layer(s) — three-layer weights, central SiteRank,
	// decentralized one-round-at-a-time, or decentralized with round
	// batching.
	siteStart := time.Now()
	var siteRank matrix.Vector
	switch {
	case cfg.ThreeLayer:
		tl, err := rk.ThreeLayerWeights(cfg.DomainOf, lmm.WebConfig{
			Damping: cfg.Damping,
			Tol:     cfg.Tol,
			MaxIter: cfg.MaxIter,
			Ctx:     ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("coordinator: %w", err)
		}
		// ThreeLayerWeights allocates fresh vectors — no cloning needed.
		siteRank = tl.SiteWeights
		res.Domains = tl.Domains
		res.DomainRank = tl.DomainRank
		res.DomainOfSite = tl.DomainOfSite
		res.SiteEntry = tl.SiteEntry
	case mode == SiteRankCentral:
		scores, rounds, err := rk.RankSites(lmm.WebConfig{
			Damping:             cfg.Damping,
			Tol:                 cfg.Tol,
			MaxIter:             cfg.MaxIter,
			SitePersonalization: r.tele,
			Ctx:                 ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("coordinator: %w", err)
		}
		// RankSites aliases the Ranker's scratch; the Result outlives
		// this run, so copy the small site vector out.
		siteRank = scores.Clone()
		res.Stats.SiteRankRounds = rounds
	case mode == SiteRankBatched:
		var rounds int
		siteRank, rounds, err = r.batchedSiteRank()
		if err != nil {
			return nil, err
		}
		res.Stats.SiteRankRounds = rounds
	case mode == SiteRankAsync:
		var rounds int
		siteRank, rounds, err = r.asyncSiteRank()
		if err != nil {
			return nil, err
		}
		res.Stats.SiteRankRounds = rounds
	default:
		var rounds int
		siteRank, rounds, err = r.distributedSiteRank()
		if err != nil {
			return nil, err
		}
		res.Stats.SiteRankRounds = rounds
	}
	res.Stats.SiteRankDuration = time.Since(siteStart)

	// Step 5: composition by the Partition Theorem, shared with the
	// in-process pipeline.
	res.SiteRank = siteRank
	res.DocRank = lmm.ComposeDocRank(dg, siteRank, localRanks)
	res.LocalRanks = localRanks
	res.LocalIterations = localIters

	res.Stats.Messages = c.counters.Messages() - startMsgs
	res.Stats.BytesSent = c.counters.BytesSent() - startOut
	res.Stats.BytesReceived = c.counters.BytesReceived() - startIn
	return res, nil
}

// buildShards materializes every site's wire payload from the Ranker's
// precomputed subgraphs, plus each shard's content digest for the cache
// negotiation. Site-chain rows ride inside the shards only when a
// row-partitioned SiteRank (synchronous one-round-at-a-time or
// asynchronous sweeps) will consume them; round batching ships the
// whole chain separately instead, and central mode ships no site-layer
// data at all.
//
// The payloads are memoized on the Coordinator per (Ranker, protocol
// shape), LRU-bounded across several prepared graphs: a warm
// RankPrepared run reuses every edge list and SHA-256 digest instead of
// recomputing them — Stats.DigestBytesHashed stays at zero — which is
// sound because a Ranker's graph is immutable by contract (mutation is
// detected and refused upstream). An entry migrated across an
// incremental Rebuild by RefreshPrepared is partial: only its dirty
// slots (and the small site chain) are rebuilt and re-hashed here, so
// churn costs digest work proportional to what changed.
func (r *run) buildShards() {
	mode := r.cfg.mode()
	wantRows := mode == SiteRankSync || mode == SiteRankAsync
	withChain := mode == SiteRankBatched
	p := r.c.lookupPrep(r.rk, wantRows, withChain)
	if p != nil && p.complete() {
		r.shards, r.refs, r.sizes = p.shards, p.refs, p.sizes
		r.chain, r.chainRef = p.chain, p.chainRef
		return
	}
	if p == nil {
		p = &preparedShards{
			rk: r.rk, wantRows: wantRows, withChain: withChain,
			shards: make([]wire.SiteShard, r.ns),
			refs:   make([]wire.ShardRef, r.ns),
			sizes:  make([]int, r.ns),
			built:  make([]bool, r.ns),
		}
	}

	sg := r.rk.SiteGraph()
	for s := 0; s < r.ns; s++ {
		if p.built[s] {
			continue
		}
		sub, _ := r.rk.LocalSubgraph(graph.SiteID(s))
		shard := wire.SiteShard{Site: s, NumDocs: sub.NumNodes()}
		sub.EachEdgeAll(func(from int, e graph.Edge) {
			shard.Edges = append(shard.Edges, wire.Edge{From: from, To: e.To, Weight: e.Weight})
		})
		if wantRows {
			if total := sg.G.OutWeight(s); total > 0 {
				sg.G.EachEdge(s, func(e graph.Edge) {
					shard.RowCols = append(shard.RowCols, e.To)
					shard.RowVals = append(shard.RowVals, e.Weight/total)
				})
			}
		}
		p.shards[s] = shard
		p.refs[s] = wire.ShardRef{Site: s, Digest: shard.ContentDigest()}
		p.sizes[s] = shard.NumDocs
		p.built[s] = true
		r.stats.DigestBytesHashed += shard.DigestInputBytes()
	}
	if withChain && p.chain == nil {
		chain := &wire.SiteChain{NumSites: r.ns, RowPtr: make([]int, r.ns+1)}
		for s := 0; s < r.ns; s++ {
			if total := sg.G.OutWeight(s); total > 0 {
				sg.G.EachEdge(s, func(e graph.Edge) {
					chain.Cols = append(chain.Cols, e.To)
					chain.Vals = append(chain.Vals, e.Weight/total)
				})
			}
			chain.RowPtr[s+1] = len(chain.Cols)
		}
		p.chain = chain
		p.chainRef = chain.ContentDigest()
		r.stats.DigestBytesHashed += chain.DigestInputBytes()
	}
	r.shards, r.refs, r.sizes = p.shards, p.refs, p.sizes
	r.chain, r.chainRef = p.chain, p.chainRef
	if r.memoize {
		r.c.storePrep(p)
	}
}

// aliveIdxs returns the live fleet indices in ascending order — the
// fixed reduce order that keeps float summation deterministic.
func (r *run) aliveIdxs() []int {
	idxs := make([]int, 0, r.nAlive)
	for i, a := range r.alive {
		if a {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// lightestAlive returns the live worker with the least assigned
// document load (ties toward the lower index).
func (r *run) lightestAlive() int {
	best := -1
	for i, a := range r.alive {
		if !a {
			continue
		}
		if best < 0 || r.load[i] < r.load[best] {
			best = i
		}
	}
	return best
}

// lose marks worker idx dead for the rest of the run, charges the retry
// budget, and (when reassign is set) moves every site it owned to the
// lightest surviving workers. It returns the moved sites — the caller
// re-ships and re-runs exactly those. Batched SiteRank failover passes
// reassign=false: the chain is replicated, so nothing needs to move.
// Callers must invoke lose sequentially (after joining a parallel
// wave), never from inside one.
func (r *run) lose(idx int, cause error, reassign bool) (map[int]struct{}, error) {
	if !r.alive[idx] {
		// A second failure report for the same wave (e.g. two phases
		// racing is impossible, but two calls in one wave are not).
		return nil, nil
	}
	r.alive[idx] = false
	r.nAlive--
	r.stats.WorkersLost++
	addr := r.c.workers[idx].addr
	if r.budget <= 0 {
		return nil, fmt.Errorf("coordinator: worker %s lost with retry budget exhausted (RetryPolicy.MaxWorkerFailures=%d): %w",
			addr, r.cfg.Retry.MaxWorkerFailures, cause)
	}
	r.budget--
	if r.nAlive == 0 {
		return nil, fmt.Errorf("coordinator: all workers lost: %w", cause)
	}
	r.spawnRedialer(idx)
	if !reassign {
		return nil, nil
	}
	moved := make(map[int]struct{})
	for s, w := range r.owner {
		if w != idx {
			continue
		}
		nw := r.lightestAlive()
		r.owner[s] = nw
		r.load[nw] += r.sizes[s]
		moved[s] = struct{}{}
		r.stats.Reassignments++
	}
	r.load[idx] = 0
	return moved, nil
}

// startRedialers arms the re-admission machinery when the policy asks
// for it, spawning a redialer for every worker already broken when the
// run began (a peer that died in a previous run gets its chance back
// too, not just mid-run casualties).
func (r *run) startRedialers() {
	if r.cfg.Retry.MaxRedials <= 0 {
		return
	}
	r.rejoinCh = make(chan rejoin, len(r.c.workers))
	r.redialStop = make(chan struct{})
	r.redialing = make([]bool, len(r.c.workers))
	r.rejoining = make(map[int]bool)
	for i, a := range r.alive {
		if !a {
			r.spawnRedialer(i)
		}
	}
}

// spawnRedialer starts the background redial loop for a lost worker:
// jittered exponential backoff between attempts, at most MaxRedials
// attempts, delivering at most one fresh connection to rejoinCh. Called
// only from the sequential phase code (run start, lose, readmit).
func (r *run) spawnRedialer(idx int) {
	if r.rejoinCh == nil || r.redialing[idx] {
		return
	}
	r.redialing[idx] = true
	addr := r.c.workers[idx].addr
	pol := r.cfg.Retry
	r.redialWG.Add(1)
	go func() {
		defer r.redialWG.Done()
		for attempt := 0; attempt < pol.MaxRedials; attempt++ {
			select {
			case <-time.After(backoffDelay(pol.redialBase(), pol.redialMax(), attempt)):
			case <-r.redialStop:
				return
			case <-r.ctx.Done():
				return
			}
			r.mu.Lock()
			r.stats.RedialAttempts++
			r.mu.Unlock()
			conn, err := net.DialTimeout("tcp", addr, DefaultDialTimeout)
			if err != nil {
				continue
			}
			// The channel holds one slot per worker and a worker has at
			// most one redialer, so this send never blocks.
			select {
			case r.rejoinCh <- rejoin{idx: idx, conn: conn}:
			default:
				conn.Close()
			}
			return
		}
	}()
}

// stopRedialers tears the re-admission machinery down at run end. A
// connection that arrived too late to be admitted into this run is not
// wasted: it is installed on the coordinator's remote, so the next run
// starts with the peer alive again.
func (r *run) stopRedialers() {
	if r.rejoinCh == nil {
		return
	}
	close(r.redialStop)
	r.redialWG.Wait()
	for {
		select {
		case rj := <-r.rejoinCh:
			r.c.mu.Lock()
			closed := r.c.closed
			r.c.mu.Unlock()
			if closed {
				rj.conn.Close()
			} else {
				r.c.workers[rj.idx].reconnect(rj.conn, &r.c.counters)
			}
		default:
			return
		}
	}
}

// maybeReadmit admits any rejoined workers waiting on the channel. It
// is called at phase loop heads — the safe points where no partial
// results are in flight — and never reentrantly (a readmission's own
// shipping must not trigger another).
func (r *run) maybeReadmit() error {
	if r.rejoinCh == nil || r.inReadmit {
		return nil
	}
	r.inReadmit = true
	defer func() { r.inReadmit = false }()
	for {
		select {
		case rj := <-r.rejoinCh:
			if err := r.readmit(rj); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// readmit re-admits one redialed worker mid-run: probe the fresh
// connection, restore the worker to the fleet view, rebalance its
// ideal share of sites back to it (delivered through the digest-cache
// negotiation — a warm rejoiner re-ships ~0 bytes), and unload the
// moved sites from their interim owners so the unbatched power round
// never reduces a chain row twice.
func (r *run) readmit(rj rejoin) error {
	idx := rj.idx
	w := r.c.workers[idx]
	w.reconnect(rj.conn, &r.c.counters)
	// Probe before committing: a connection that dies immediately costs
	// a respawned redialer, not a loss-budget charge.
	if _, err := w.call(r.ctx, &wire.Request{Kind: wire.KindPing}, &r.c.counters, r.c.callTimeout()); err != nil {
		if errors.Is(err, errLost) {
			r.redialing[idx] = false
			r.spawnRedialer(idx)
			return nil
		}
		return err
	}
	r.redialing[idx] = false
	r.alive[idx] = true
	r.nAlive++
	r.initialized[idx] = false
	r.hasChain[idx] = false
	r.load[idx] = 0
	r.stats.WorkersRejoined++

	// Rebalance back: recompute the ideal placement over the restored
	// fleet and move exactly the sites whose ideal owner is the
	// rejoiner. Strategies are deterministic (and a pinned assignment
	// is fixed outright), so when the fleet's liveness returns to what
	// it was at run start these are precisely the sites the rejoiner
	// held before it died — warm in its digest cache.
	ideal := r.idealOwners()
	moved := make(map[int]struct{})
	prevOwner := make(map[int][]int)
	for s := 0; s < r.ns; s++ {
		if ideal[s] != idx || r.owner[s] == idx {
			continue
		}
		prev := r.owner[s]
		prevOwner[prev] = append(prevOwner[prev], s)
		r.load[prev] -= r.sizes[s]
		r.owner[s] = idx
		r.load[idx] += r.sizes[s]
		moved[s] = struct{}{}
	}
	r.mu.Lock()
	r.rejoining[idx] = true
	r.mu.Unlock()
	// ship also initializes a shardless rejoiner (Reset + Load carrying
	// the dimension, and the chain when batching), so it can serve
	// power rounds even when the ideal assignment hands it nothing.
	err := r.ship(moved)
	r.mu.Lock()
	delete(r.rejoining, idx)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	return r.unloadFrom(prevOwner)
}

// unloadFrom drops the rebalanced-back sites from their interim
// owners' sessions (the digest caches keep the shards). A worker lost
// during its unload goes through the normal loss path — its remaining
// sites reassign and re-ship. The prevOwner map was captured before
// the rejoin ship, and that ship can itself lose the rejoiner and hand
// a moved site straight back to its interim owner — so each site is
// re-checked against the current assignment and never unloaded from
// the worker that owns it now.
func (r *run) unloadFrom(prevOwner map[int][]int) error {
	idxs := make([]int, 0, len(prevOwner))
	for idx := range prevOwner {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		if !r.alive[idx] {
			continue // a dead session is never polled; nothing to unload
		}
		sites := make([]int, 0, len(prevOwner[idx]))
		for _, s := range prevOwner[idx] {
			if r.owner[s] != idx {
				sites = append(sites, s)
			}
		}
		if len(sites) == 0 {
			continue
		}
		sort.Ints(sites)
		_, err := r.c.workers[idx].call(r.ctx, &wire.Request{Kind: wire.KindUnload, Sites: sites}, &r.c.counters, r.c.callTimeout())
		if err == nil {
			continue
		}
		if !errors.Is(err, errLost) {
			return err
		}
		moved, lerr := r.lose(idx, err, true)
		if lerr != nil {
			return lerr
		}
		if len(moved) > 0 {
			if serr := r.ship(moved); serr != nil {
				return serr
			}
		}
		r.stats.Retries++
	}
	return nil
}

// ship delivers the needed sites to their current owners and leaves
// every live worker initialized (a shardless worker still receives a
// Load so it learns the site-space dimension — and the chain, when
// batching). Worker losses during shipping reassign and loop until
// every needed shard has landed.
func (r *run) ship(need map[int]struct{}) error {
	for {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		pending := make(map[int][]int)
		for s := range need {
			pending[r.owner[s]] = append(pending[r.owner[s]], s)
		}
		for idx := range r.c.workers {
			if r.alive[idx] && !r.initialized[idx] {
				if _, ok := pending[idx]; !ok {
					pending[idx] = nil
				}
			}
		}
		if len(pending) == 0 {
			return nil
		}
		idxs := make([]int, 0, len(pending))
		for idx := range pending {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		errs := make([]error, len(idxs))
		var wg sync.WaitGroup
		for i, idx := range idxs {
			sites := pending[idx]
			sort.Ints(sites)
			wg.Add(1)
			go func(i, idx int, sites []int) {
				defer wg.Done()
				errs[i] = r.shipTo(idx, sites)
			}(i, idx, sites)
		}
		wg.Wait()
		for i, idx := range idxs {
			err := errs[i]
			if err == nil {
				r.initialized[idx] = true
				for _, s := range pending[idx] {
					delete(need, s)
				}
				continue
			}
			if !errors.Is(err, errLost) {
				return err
			}
			// Every site the dead worker owned — already delivered in an
			// earlier wave or still pending — moves to a survivor and
			// must ship (again) to its new owner on the next pass.
			moved, lerr := r.lose(idx, err, true)
			if lerr != nil {
				return lerr
			}
			for s := range moved {
				need[s] = struct{}{}
			}
			r.stats.Retries++
		}
	}
}

// shipTo delivers one worker's shard batch through the cache protocol:
// Reset on first contact, then Offer (which shards do you already
// hold?), then Load carrying only the misses in full. Entries evicted
// between the offer and the load come back in Response.Missing and are
// re-shipped in full immediately.
func (r *run) shipTo(idx int, sites []int) error {
	w := r.c.workers[idx]
	timeout := r.c.callTimeout()
	if !r.initialized[idx] {
		if _, err := w.call(r.ctx, &wire.Request{Kind: wire.KindReset}, &r.c.counters, timeout); err != nil {
			return err
		}
	}
	needChain := r.chain != nil && !r.hasChain[idx]
	refs := make([]wire.ShardRef, len(sites))
	for i, s := range sites {
		refs[i] = r.refs[s]
	}
	have := make(map[int]bool)
	chainHit := false
	if len(refs) > 0 || needChain {
		req := &wire.Request{Kind: wire.KindOffer, Refs: refs}
		if needChain {
			req.HasChain = true
			req.ChainDigest = r.chainRef
		}
		resp, err := w.call(r.ctx, req, &r.c.counters, timeout)
		if err != nil {
			return err
		}
		offered := make(map[int]bool, len(sites))
		for _, s := range sites {
			offered[s] = true
		}
		for _, s := range resp.HaveSites {
			if !offered[s] {
				return fmt.Errorf("coordinator: %s claims unoffered site %d in cache", w.addr, s)
			}
			have[s] = true
		}
		chainHit = needChain && resp.HaveChain
	}

	var full []wire.SiteShard
	var cached []wire.ShardRef
	for _, s := range sites {
		if have[s] {
			cached = append(cached, r.refs[s])
		} else {
			full = append(full, r.shards[s])
		}
	}
	req := &wire.Request{Kind: wire.KindLoad, NumSites: r.ns, Cached: cached}
	if err := r.packShards(req, full); err != nil {
		return err
	}
	if needChain {
		req.HasChain = true
		req.ChainDigest = r.chainRef
		if !chainHit {
			req.Chain = r.chain
		}
	}
	resp, err := w.call(r.ctx, req, &r.c.counters, timeout)
	if err != nil {
		return err
	}
	wasCached := make(map[int]bool, len(cached))
	for _, ref := range cached {
		wasCached[ref.Site] = true
	}
	for _, s := range resp.Missing {
		if !wasCached[s] {
			return fmt.Errorf("coordinator: %s reports un-requested site %d missing", w.addr, s)
		}
	}

	// Cache accounting: hits are the refs the worker honored, misses
	// everything shipped in full (now or in the eviction follow-up).
	r.mu.Lock()
	r.stats.CacheMisses += len(full) + len(resp.Missing)
	r.stats.CacheHits += len(cached) - len(resp.Missing)
	r.stats.ShardsReshipped += len(full) + len(resp.Missing)
	r.stats.ShardsReused += len(cached) - len(resp.Missing)
	if r.rejoining[idx] {
		// Shard payloads this re-admission had to move in full — ~0 for
		// a warm rejoiner, whose shards all hit its digest cache.
		for i := range full {
			r.stats.RejoinShardBytes += full[i].EstWireSize()
		}
		for _, s := range resp.Missing {
			r.stats.RejoinShardBytes += r.shards[s].EstWireSize()
		}
	}
	missing := make(map[int]bool, len(resp.Missing))
	for _, s := range resp.Missing {
		missing[s] = true
	}
	for _, ref := range cached {
		if !missing[ref.Site] {
			r.stats.ShardBytesSaved += r.shards[ref.Site].EstWireSize()
		}
	}
	if needChain {
		if chainHit && !resp.MissingChain {
			r.stats.CacheHits++
			r.stats.ShardBytesSaved += r.chain.EstWireSize()
		} else {
			r.stats.CacheMisses++
		}
	}
	r.mu.Unlock()

	if len(resp.Missing) > 0 || (needChain && resp.MissingChain) {
		req2 := &wire.Request{Kind: wire.KindLoad, NumSites: r.ns}
		var evicted []wire.SiteShard
		for _, s := range resp.Missing {
			evicted = append(evicted, r.shards[s])
		}
		if err := r.packShards(req2, evicted); err != nil {
			return err
		}
		if needChain && resp.MissingChain {
			req2.HasChain = true
			req2.ChainDigest = r.chainRef
			req2.Chain = r.chain
		}
		resp2, err := w.call(r.ctx, req2, &r.c.counters, timeout)
		if err != nil {
			return err
		}
		if len(resp2.Missing) > 0 || resp2.MissingChain {
			return fmt.Errorf("coordinator: %s rejected fully shipped shards as missing", w.addr)
		}
	}
	if r.chain != nil {
		r.hasChain[idx] = true
	}
	return nil
}

// packShards places the fully shipped shard batch into a KindLoad
// request — plainly, or flate-compressed when Config.Compress is on,
// recording raw vs compressed bytes. Called from concurrent per-worker
// shipments, hence the stats lock.
func (r *run) packShards(req *wire.Request, full []wire.SiteShard) error {
	if len(full) == 0 {
		return nil
	}
	if !r.cfg.Compress {
		req.Shards = full
		return nil
	}
	z, raw, err := wire.CompressShards(full)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	req.ShardsZ = z
	r.mu.Lock()
	r.stats.ShardBytesRaw += uint64(raw)
	r.stats.ShardBytesCompressed += uint64(len(z))
	r.mu.Unlock()
	return nil
}

// localPhase gathers every site's local DocRank from its owner,
// re-ranking only reassigned sites when a worker dies mid-phase.
func (r *run) localPhase(dg *graph.DocGraph) ([]matrix.Vector, []int, error) {
	localRanks := make([]matrix.Vector, r.ns)
	localIters := make([]int, r.ns)
	done := make([]bool, r.ns)
	for {
		if err := r.ctx.Err(); err != nil {
			return nil, nil, err
		}
		if err := r.maybeReadmit(); err != nil {
			return nil, nil, err
		}
		targets := make(map[int][]int)
		for s := 0; s < r.ns; s++ {
			if !done[s] {
				targets[r.owner[s]] = append(targets[r.owner[s]], s)
			}
		}
		if len(targets) == 0 {
			break
		}
		idxs := make([]int, 0, len(targets))
		for idx := range targets {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		resps := make([]*wire.Response, len(idxs))
		errs := make([]error, len(idxs))
		var wg sync.WaitGroup
		for i, idx := range idxs {
			wg.Add(1)
			go func(i, idx int) {
				defer wg.Done()
				resps[i], errs[i] = r.c.workers[idx].call(r.ctx, &wire.Request{
					Kind:    wire.KindRankLocal,
					Damping: r.cfg.Damping,
					Tol:     r.cfg.Tol,
					MaxIter: r.cfg.MaxIter,
					Sites:   targets[idx],
				}, &r.c.counters, r.c.callTimeout())
			}(i, idx)
		}
		wg.Wait()
		var lostIdxs []int
		for i, idx := range idxs {
			if err := errs[i]; err != nil {
				if errors.Is(err, errLost) {
					lostIdxs = append(lostIdxs, idx)
					continue
				}
				return nil, nil, err
			}
			want := make(map[int]bool, len(targets[idx]))
			for _, s := range targets[idx] {
				want[s] = true
			}
			got := 0
			for _, lr := range resps[i].Local {
				if lr.Site < 0 || lr.Site >= r.ns || !want[lr.Site] {
					return nil, nil, fmt.Errorf("coordinator: %s returned rank for site %d it was not asked for",
						r.c.workers[idx].addr, lr.Site)
				}
				if done[lr.Site] {
					continue
				}
				localRanks[lr.Site] = lr.Scores
				localIters[lr.Site] = lr.Iterations
				done[lr.Site] = true
				got++
			}
			if got != len(targets[idx]) {
				return nil, nil, fmt.Errorf("coordinator: %s answered %d of %d requested local ranks",
					r.c.workers[idx].addr, got, len(targets[idx]))
			}
		}
		// Re-ship only what the survivors will actually use: sites whose
		// local ranks are still pending, plus — in the modes where chain
		// rows ride inside the shards (synchronous unbatched and async) —
		// every moved site, since the power sweeps will need its row. In
		// central and batched modes a completed site's shard is dead
		// weight and stays unshipped.
		mode := r.cfg.mode()
		needRows := mode == SiteRankSync || mode == SiteRankAsync
		for _, idx := range lostIdxs {
			moved, lerr := r.lose(idx, errs[indexOf(idxs, idx)], true)
			if lerr != nil {
				return nil, nil, lerr
			}
			for s := range moved {
				if done[s] && !needRows {
					delete(moved, s)
				}
			}
			if len(moved) > 0 {
				if err := r.ship(moved); err != nil {
					return nil, nil, err
				}
			}
			r.stats.Retries++
		}
	}
	for s := 0; s < r.ns; s++ {
		want := dg.SiteSize(graph.SiteID(s))
		if localRanks[s] == nil && want > 0 {
			return nil, nil, fmt.Errorf("coordinator: no local rank received for site %d", s)
		}
		if len(localRanks[s]) != want {
			return nil, nil, fmt.Errorf("coordinator: site %d local rank has %d entries, want %d",
				s, len(localRanks[s]), want)
		}
	}
	return localRanks, localIters, nil
}

func indexOf(xs []int, x int) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// distributedSiteRank runs the damped power method x' ← x'Mˆ(G_S)
// without ever holding M(G_S) product-side: each round, every worker
// returns the partial product over the rows it owns plus its dangling
// mass; the coordinator sums partials in fixed worker order (float
// determinism), applies the teleport correction exactly as the central
// pagerank.Operator does, and normalizes. The per-round exchange is a
// vector of N_S floats each way — the paper's small site-layer cost. A
// worker dying mid-round gets its rows reassigned (they ride inside the
// shards) and the round is redone against the surviving fleet.
func (r *run) distributedSiteRank() (matrix.Vector, int, error) {
	f := r.cfg.damping()
	tol := r.cfg.tol()
	maxIter := r.cfg.maxIter()
	uniform := 1.0 / float64(r.ns)

	x, startRound, ckpt, ckptDigest, err := r.resumeSiteRank(maxIter)
	if err != nil {
		return nil, 0, err
	}
	next := matrix.NewVector(r.ns)
	partials := make([][]float64, len(r.c.workers))
	dangling := make([]float64, len(r.c.workers))

	for round := startRound + 1; round <= maxIter; round++ {
		var idxs []int
		for {
			if err := r.ctx.Err(); err != nil {
				return nil, round - startRound, err
			}
			if err := r.maybeReadmit(); err != nil {
				return nil, round - startRound, err
			}
			idxs = r.aliveIdxs()
			resps := make([]*wire.Response, len(idxs))
			errs := make([]error, len(idxs))
			var wg sync.WaitGroup
			for i, idx := range idxs {
				wg.Add(1)
				go func(i, idx int) {
					defer wg.Done()
					resps[i], errs[i] = r.c.workers[idx].call(r.ctx, &wire.Request{
						Kind:     wire.KindPowerRound,
						NumSites: r.ns,
						X:        x,
					}, &r.c.counters, r.c.callTimeout())
				}(i, idx)
			}
			wg.Wait()
			var lostIdxs []int
			var lostErr error
			for i, idx := range idxs {
				if err := errs[i]; err != nil {
					if errors.Is(err, errLost) {
						lostIdxs = append(lostIdxs, idx)
						lostErr = err
						continue
					}
					return nil, round, err
				}
				if len(resps[i].Partial) != r.ns {
					return nil, round, fmt.Errorf("coordinator: %s returned partial of length %d, want %d",
						r.c.workers[idx].addr, len(resps[i].Partial), r.ns)
				}
				partials[idx] = resps[i].Partial
				dangling[idx] = resps[i].DanglingMass
			}
			if len(lostIdxs) == 0 {
				break
			}
			// Reassign the dead workers' rows and redo this round: the
			// surviving partials are from the same iterate, but the
			// reduce must cover every row exactly once.
			for _, idx := range lostIdxs {
				moved, lerr := r.lose(idx, lostErr, true)
				if lerr != nil {
					return nil, round, lerr
				}
				if len(moved) > 0 {
					if err := r.ship(moved); err != nil {
						return nil, round, err
					}
				}
			}
			r.stats.Retries++
		}

		// Reduce in worker order, then apply Mˆ's rank-one terms:
		// y = f·(x'M) + (f·danglingMass + (1−f)·Σx)·v, with v the
		// (possibly personalized) teleport distribution.
		next.Fill(0)
		var dangMass float64
		for _, idx := range idxs {
			next.AddScaled(1, partials[idx])
			dangMass += dangling[idx]
		}
		coeff := f*dangMass + (1-f)*x.Sum()
		if r.tele == nil {
			for t := range next {
				next[t] = f*next[t] + coeff*uniform
			}
		} else {
			for t := range next {
				next[t] = f*next[t] + coeff*r.tele[t]
			}
		}
		next.Normalize()
		residual := next.L1Diff(x)
		x, next = next, x
		if residual <= tol {
			if ckpt != nil {
				if err := ckpt.Clear(); err != nil {
					return nil, round - startRound, err
				}
			}
			return x, round - startRound, nil
		}
		if ckpt != nil && round%r.cfg.checkpointEvery() == 0 {
			if err := ckpt.Save(&CheckpointState{Digest: ckptDigest, Round: round, X: x}); err != nil {
				return nil, round - startRound, err
			}
		}
	}
	return x, maxIter - startRound, fmt.Errorf("coordinator: distributed siterank: %w after %d rounds",
		matrix.ErrNotConverged, maxIter)
}

// resumeSiteRank seeds the site-layer power iteration: from a
// checkpointed snapshot when one exists and its digest matches this
// computation — the resumed run then continues the exact float sequence
// the interrupted run was producing — or from the uniform vector. A
// snapshot from a different graph, mode or parameterization (digest
// mismatch), a malformed one, or one at or past the round budget is
// ignored rather than trusted.
func (r *run) resumeSiteRank(maxIter int) (x matrix.Vector, startRound int, ckpt Checkpoint, digest wire.Digest, err error) {
	x = matrix.Uniform(r.ns)
	if r.cfg.Checkpoint == nil {
		return x, 0, nil, digest, nil
	}
	ckpt = r.cfg.Checkpoint
	digest = r.checkpointDigest()
	st, err := ckpt.Load()
	if err != nil {
		return nil, 0, nil, digest, err
	}
	if st != nil && st.Digest == digest && st.valid() && len(st.X) == r.ns && st.Round < maxIter {
		x = append(matrix.Vector(nil), st.X...)
		startRound = st.Round
		r.stats.ResumedFromRound = st.Round
	}
	return x, startRound, ckpt, digest, nil
}

// batchedSiteRank drives the round-batched SiteRank: each exchange asks
// one live worker (rotating for load spread) to run up to BatchRounds
// damped power rounds against its replicated chain. K rounds cost one
// message instead of K×NumWorkers; a worker dying mid-batch is simply
// skipped — every peer holds the chain, so failover needs no
// reassignment and the batch restarts from the last confirmed iterate.
func (r *run) batchedSiteRank() (matrix.Vector, int, error) {
	maxIter := r.cfg.maxIter()
	batch := r.cfg.batchRounds()

	x, startRound, ckpt, ckptDigest, err := r.resumeSiteRank(maxIter)
	if err != nil {
		return nil, 0, err
	}
	rounds := startRound
	exchanges := 0
	cursor := 0
	for rounds < maxIter {
		if err := r.ctx.Err(); err != nil {
			return nil, rounds - startRound, err
		}
		if err := r.maybeReadmit(); err != nil {
			return nil, rounds - startRound, err
		}
		k := batch
		if rounds+k > maxIter {
			k = maxIter - rounds
		}
		idx := r.nextAlive(&cursor)
		resp, err := r.c.workers[idx].call(r.ctx, &wire.Request{
			Kind:     wire.KindBatchRounds,
			NumSites: r.ns,
			X:        x,
			V:        r.tele,
			Rounds:   k,
			Damping:  r.cfg.Damping,
			Tol:      r.cfg.Tol,
		}, &r.c.counters, r.c.callTimeout())
		if err != nil {
			if errors.Is(err, errLost) {
				// The chain is replicated: fail over to the next live
				// worker, no shard movement needed. The in-flight batch
				// is re-run from the last confirmed iterate.
				if _, lerr := r.lose(idx, err, false); lerr != nil {
					return nil, rounds, lerr
				}
				r.stats.Retries++
				continue
			}
			return nil, rounds, err
		}
		exchanges++
		if len(resp.X) != r.ns {
			return nil, rounds, fmt.Errorf("coordinator: %s returned iterate of length %d, want %d",
				r.c.workers[idx].addr, len(resp.X), r.ns)
		}
		if resp.Rounds < 1 || resp.Rounds > k || (resp.Rounds < k && !resp.Converged) {
			return nil, rounds, fmt.Errorf("coordinator: %s ran %d of %d batched rounds without converging",
				r.c.workers[idx].addr, resp.Rounds, k)
		}
		for _, v := range resp.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, rounds, fmt.Errorf("coordinator: %s returned a non-finite iterate", r.c.workers[idx].addr)
			}
		}
		x = resp.X
		rounds += resp.Rounds
		if resp.Converged {
			if ckpt != nil {
				if err := ckpt.Clear(); err != nil {
					return nil, rounds - startRound, err
				}
			}
			r.stats.BatchMessagesSaved = (rounds-startRound)*r.nAlive - exchanges
			return x, rounds - startRound, nil
		}
		// One exchange is the batched save cadence: it already covers up
		// to BatchRounds rounds, so CheckpointEvery's round granularity
		// is subsumed by the exchange grain.
		if ckpt != nil {
			if err := ckpt.Save(&CheckpointState{Digest: ckptDigest, Round: rounds, X: x}); err != nil {
				return nil, rounds - startRound, err
			}
		}
		cursor++
	}
	r.stats.BatchMessagesSaved = (rounds-startRound)*r.nAlive - exchanges
	return x, maxIter - startRound, fmt.Errorf("coordinator: distributed siterank: %w after %d rounds",
		matrix.ErrNotConverged, maxIter)
}

// nextAlive returns the next live worker at or after *cursor (mod the
// fleet), advancing the rotation. At least one worker is always alive —
// lose() errors out before the fleet can empty.
func (r *run) nextAlive(cursor *int) int {
	n := len(r.c.workers)
	for i := 0; i < n; i++ {
		idx := (*cursor + i) % n
		if r.alive[idx] {
			*cursor = idx
			return idx
		}
	}
	return -1
}
