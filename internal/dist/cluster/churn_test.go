package cluster

import (
	"errors"
	"testing"

	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/webgen"
)

// testWeb2 is a second, differently seeded web for alternating-graph
// memo tests.
func testWeb2() *webgen.Web {
	return webgen.Generate(webgen.Config{
		Seed:                1729,
		Sites:               15,
		MeanSitePages:       10,
		DynamicClusterPages: 40,
		DocClusterPages:     40,
	})
}

// TestDeltaShippingAfterRebuild is the distributed churn contract: after
// a 1-site edit delivered through the delta path (Ranker.Rebuild +
// Coordinator.RefreshPrepared), the next run re-ships only the mutated
// shard — every other shard is an Offer hit against the worker caches —
// hashes digest bytes only for the dirty shard, and still agrees with
// the single-process pipeline to < 1e-9.
func TestDeltaShippingAfterRebuild(t *testing.T) {
	web := testWeb()
	dg := web.Graph
	ns := dg.NumSites()
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	cl, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	cold, err := cl.Coord.RankPrepared(rk, coordinator.Config{})
	if err != nil {
		t.Fatalf("cold RankPrepared: %v", err)
	}
	if cold.Stats.ShardsReshipped != ns || cold.Stats.ShardsReused != 0 {
		t.Fatalf("cold run reshipped %d / reused %d, want %d / 0",
			cold.Stats.ShardsReshipped, cold.Stats.ShardsReused, ns)
	}

	// One site's links change.
	const site = graph.SiteID(3)
	docs := dg.Sites[site].Docs
	if len(docs) < 3 {
		t.Fatalf("site %d too small for the edit", site)
	}
	dg.G.AddLink(int(docs[0]), int(docs[2]))
	dg.G.AddLink(int(docs[2]), int(docs[0]))

	// The stale Ranker is refused, not silently served.
	if _, err := cl.Coord.RankPrepared(rk, coordinator.Config{}); !errors.Is(err, lmm.ErrGraphMutated) {
		t.Fatalf("stale RankPrepared: err = %v, want ErrGraphMutated", err)
	}

	next, err := rk.Rebuild([]graph.SiteID{site})
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	cl.Coord.RefreshPrepared(rk, next, []graph.SiteID{site})

	warm, err := cl.Coord.RankPrepared(next, coordinator.Config{})
	if err != nil {
		t.Fatalf("warm RankPrepared: %v", err)
	}
	if warm.Stats.ShardsReshipped != 1 || warm.Stats.ShardsReused != ns-1 {
		t.Errorf("delta run reshipped %d / reused %d, want 1 / %d",
			warm.Stats.ShardsReshipped, warm.Stats.ShardsReused, ns-1)
	}
	if warm.Stats.ShardsReused == 0 {
		t.Error("delta run reused no shards")
	}
	// Only the dirty shard's content is re-hashed (the migrated memo
	// carries every clean digest), so the digest work is a small fraction
	// of the cold sweep.
	if warm.Stats.DigestBytesHashed == 0 {
		t.Error("delta run hashed nothing — the dirty shard's digest must be recomputed")
	}
	if warm.Stats.DigestBytesHashed*4 > cold.Stats.DigestBytesHashed {
		t.Errorf("delta run hashed %d digest bytes vs %d cold — not proportional to the change",
			warm.Stats.DigestBytesHashed, cold.Stats.DigestBytesHashed)
	}
	// The wire cost of the load phase collapses to ~1/N of the cold run
	// (one shard plus negotiation overhead); a quarter is a loose bound
	// for a ~20-site web.
	if warm.Stats.BytesSent*4 > cold.Stats.BytesSent {
		t.Errorf("delta run sent %d bytes vs %d cold — shipping is not delta-shaped",
			warm.Stats.BytesSent, cold.Stats.BytesSent)
	}

	// Correctness against the single-process pipeline on the mutated web.
	local, err := lmm.LayeredDocRank(dg, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("local LayeredDocRank: %v", err)
	}
	if d := warm.DocRank.L1Diff(local.DocRank); d >= 1e-9 {
		t.Errorf("‖delta-shipped − local‖₁ = %g, want < 1e-9", d)
	}

	// A further warm run over the unchanged next Ranker is fully memoized
	// and fully cached: zero digest bytes, zero reshipped shards.
	again, err := cl.Coord.RankPrepared(next, coordinator.Config{})
	if err != nil {
		t.Fatalf("second warm RankPrepared: %v", err)
	}
	if again.Stats.DigestBytesHashed != 0 {
		t.Errorf("second warm run hashed %d digest bytes, want 0", again.Stats.DigestBytesHashed)
	}
	if again.Stats.ShardsReshipped != 0 || again.Stats.ShardsReused != ns {
		t.Errorf("second warm run reshipped %d / reused %d, want 0 / %d",
			again.Stats.ShardsReshipped, again.Stats.ShardsReused, ns)
	}
}

// TestDigestMemoAlternatingGraphs pins the keyed LRU replacing the old
// single-entry memo: a coordinator alternating two prepared graphs must
// hash digest bytes only on each graph's first run — every later switch
// is a memo hit (the single-entry memo re-hashed on every switch).
func TestDigestMemoAlternatingGraphs(t *testing.T) {
	webA := testWeb()
	webB := testWeb2()
	rkA, err := lmm.NewRanker(webA.Graph, lmm.RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker A: %v", err)
	}
	rkB, err := lmm.NewRanker(webB.Graph, lmm.RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker B: %v", err)
	}
	cl, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	for i, rk := range []*lmm.Ranker{rkA, rkB} {
		res, err := cl.Coord.RankPrepared(rk, coordinator.Config{})
		if err != nil {
			t.Fatalf("cold run %d: %v", i, err)
		}
		if res.Stats.DigestBytesHashed == 0 {
			t.Fatalf("cold run %d hashed no digest bytes", i)
		}
	}
	// Alternate warm: every run must be a memo hit.
	for i, rk := range []*lmm.Ranker{rkA, rkB, rkA, rkB} {
		res, err := cl.Coord.RankPrepared(rk, coordinator.Config{})
		if err != nil {
			t.Fatalf("warm run %d: %v", i, err)
		}
		if res.Stats.DigestBytesHashed != 0 {
			t.Errorf("alternating warm run %d hashed %d digest bytes, want 0 (keyed memo)",
				i, res.Stats.DigestBytesHashed)
		}
	}
}
