package cluster

import (
	"testing"

	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/lmm"
	"lmmrank/internal/webgen"
)

func testWeb() *webgen.Web {
	return webgen.Generate(webgen.Config{
		Seed:                42,
		Sites:               20,
		MeanSitePages:       12,
		DynamicClusterPages: 60,
		DocClusterPages:     60,
	})
}

// TestPartitionTheoremOverTheWire is the core correctness claim: the
// distributed runtime must reproduce the single-process Layered Method
// to solver tolerance, with both the central and the decentralized
// SiteRank variants.
func TestPartitionTheoremOverTheWire(t *testing.T) {
	web := testWeb()
	ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference LayeredDocRank: %v", err)
	}

	for _, distSite := range []bool{false, true} {
		name := "centralSiteRank"
		if distSite {
			name = "distributedSiteRank"
		}
		t.Run(name, func(t *testing.T) {
			cl, err := StartLocal(3)
			if err != nil {
				t.Fatalf("StartLocal: %v", err)
			}
			defer cl.Close()

			res, err := cl.Coord.Rank(web.Graph, coordinator.Config{DistributedSiteRank: distSite})
			if err != nil {
				t.Fatalf("Rank: %v", err)
			}
			if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
				t.Errorf("‖distributed − LayeredDocRank‖₁ = %g, want < 1e-9", d)
			}
			if d := res.SiteRank.L1Diff(ref.SiteRank); d >= 1e-9 {
				t.Errorf("‖distributed − reference‖₁ on SiteRank = %g, want < 1e-9", d)
			}
			if res.Stats.SiteRankRounds == 0 {
				t.Error("SiteRankRounds not recorded")
			}
			if res.Stats.Messages == 0 || res.Stats.BytesSent == 0 || res.Stats.BytesReceived == 0 {
				t.Errorf("transport stats are decorative: %+v", res.Stats)
			}
		})
	}
}

// TestDeterminism re-runs the same distributed ranking and demands
// bitwise-identical output — partial sums must reduce in a fixed order
// regardless of goroutine scheduling and map iteration.
func TestDeterminism(t *testing.T) {
	web := testWeb()
	for _, distSite := range []bool{false, true} {
		var prev []float64
		for run := 0; run < 2; run++ {
			cl, err := StartLocal(4)
			if err != nil {
				t.Fatalf("StartLocal: %v", err)
			}
			res, err := cl.Coord.Rank(web.Graph, coordinator.Config{DistributedSiteRank: distSite})
			cl.Close()
			if err != nil {
				t.Fatalf("Rank (distSite=%v, run %d): %v", distSite, run, err)
			}
			if prev == nil {
				prev = res.DocRank
				continue
			}
			for i, x := range res.DocRank {
				if x != prev[i] {
					t.Fatalf("distSite=%v: run differs at doc %d: %g vs %g", distSite, i, x, prev[i])
				}
			}
		}
	}
}

// TestRepeatedRank reuses one fleet for several runs; shards from the
// previous run must be fully replaced, not accumulated.
func TestRepeatedRank(t *testing.T) {
	webA := testWeb()
	webB := webgen.Generate(webgen.Config{
		Seed:                7,
		Sites:               9,
		MeanSitePages:       8,
		DynamicClusterPages: 20,
		DocClusterPages:     20,
	})
	cl, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	for _, web := range []*webgen.Web{webA, webB, webA} {
		res, err := cl.Coord.Rank(web.Graph, coordinator.Config{})
		if err != nil {
			t.Fatalf("Rank: %v", err)
		}
		ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
			t.Errorf("after refit to %d sites: L1 gap %g", web.Graph.NumSites(), d)
		}
	}
}

// TestWorkerSideStats asserts the peers account the same conversation
// the coordinator does: fleet-wide worker byte counters must mirror the
// coordinator's (sent↔received swapped).
func TestWorkerSideStats(t *testing.T) {
	web := testWeb()
	cl, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Coord.Rank(web.Graph, coordinator.Config{DistributedSiteRank: true}); err != nil {
		t.Fatalf("Rank: %v", err)
	}

	var wMsgs, wIn, wOut uint64
	for _, w := range cl.Workers {
		st := w.Stats()
		wMsgs += st.Messages
		wIn += st.BytesReceived
		wOut += st.BytesSent
	}
	cMsgs, cOut, cIn := cl.Coord.Stats()
	if wMsgs != cMsgs {
		t.Errorf("message counts disagree: workers served %d, coordinator sent %d", wMsgs, cMsgs)
	}
	if wIn != cOut {
		t.Errorf("byte accounting disagrees: workers received %d, coordinator sent %d", wIn, cOut)
	}
	if wOut != cIn {
		t.Errorf("byte accounting disagrees: workers sent %d, coordinator received %d", wOut, cIn)
	}
}

func TestStartLocalRejectsNonPositive(t *testing.T) {
	if _, err := StartLocal(0); err == nil {
		t.Error("StartLocal(0) succeeded, want error")
	}
}

// TestDoubleClose asserts Close is a no-op the second time, on the
// cluster and on its parts.
func TestDoubleClose(t *testing.T) {
	cl, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Errorf("second cluster Close: %v", err)
	}
	for i, w := range cl.Workers {
		if err := w.Close(); err != nil {
			t.Errorf("worker %d re-Close: %v", i, err)
		}
	}
	if err := cl.Coord.Close(); err != nil {
		t.Errorf("coordinator re-Close: %v", err)
	}
}

// TestMoreWorkersThanSites covers fleets where some workers receive no
// shards at all.
func TestMoreWorkersThanSites(t *testing.T) {
	web := webgen.Generate(webgen.Config{
		Seed:                3,
		Sites:               2,
		MeanSitePages:       5,
		DynamicClusterPages: 5,
		DocClusterPages:     5,
	})
	cl, err := StartLocal(6)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()
	res, err := cl.Coord.Rank(web.Graph, coordinator.Config{DistributedSiteRank: true})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("L1 gap %g with idle workers", d)
	}
}

// TestRankPrepared reuses one precomputed lmm.Ranker across several
// distributed runs (the serving path): every run must reproduce the
// one-shot Rank bitwise, in both SiteRank modes.
func TestRankPrepared(t *testing.T) {
	web := testWeb()
	rk, err := lmm.NewRanker(web.Graph, lmm.RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	cl, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	for _, distSite := range []bool{false, true} {
		cfg := coordinator.Config{DistributedSiteRank: distSite}
		oneShot, err := cl.Coord.Rank(web.Graph, cfg)
		if err != nil {
			t.Fatalf("Rank (distSite=%v): %v", distSite, err)
		}
		for run := 0; run < 2; run++ {
			res, err := cl.Coord.RankPrepared(rk, cfg)
			if err != nil {
				t.Fatalf("RankPrepared (distSite=%v, run %d): %v", distSite, run, err)
			}
			if d := res.DocRank.L1Diff(oneShot.DocRank); d != 0 {
				t.Errorf("distSite=%v run %d: DocRank differs from one-shot Rank by %g", distSite, run, d)
			}
			if d := res.SiteRank.L1Diff(oneShot.SiteRank); d != 0 {
				t.Errorf("distSite=%v run %d: SiteRank differs by %g", distSite, run, d)
			}
		}
	}
}

// TestBatchedSiteRankMatchesUnbatched is the round-batching correctness
// claim: exchanging K power rounds per message against the replicated
// chain must reproduce the one-round-per-exchange protocol to summation
// rounding (<1e-9), while measurably cutting message count.
func TestBatchedSiteRankMatchesUnbatched(t *testing.T) {
	web := testWeb()
	cl, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	unbatched, err := cl.Coord.Rank(web.Graph, coordinator.Config{DistributedSiteRank: true})
	if err != nil {
		t.Fatalf("unbatched Rank: %v", err)
	}
	batched, err := cl.Coord.Rank(web.Graph, coordinator.Config{DistributedSiteRank: true, BatchRounds: 4})
	if err != nil {
		t.Fatalf("batched Rank: %v", err)
	}

	if d := batched.DocRank.L1Diff(unbatched.DocRank); d >= 1e-9 {
		t.Errorf("‖batched − unbatched‖₁ on DocRank = %g, want < 1e-9", d)
	}
	if d := batched.SiteRank.L1Diff(unbatched.SiteRank); d >= 1e-9 {
		t.Errorf("‖batched − unbatched‖₁ on SiteRank = %g, want < 1e-9", d)
	}
	if batched.Stats.BatchMessagesSaved <= 0 {
		t.Errorf("BatchMessagesSaved = %d, want > 0", batched.Stats.BatchMessagesSaved)
	}
	if batched.Stats.Messages >= unbatched.Stats.Messages {
		t.Errorf("batched run used %d messages, unbatched %d — batching must cut message count",
			batched.Stats.Messages, unbatched.Stats.Messages)
	}
	if batched.Stats.SiteRankRounds == 0 {
		t.Error("batched run recorded no SiteRank rounds")
	}
}

// TestShardCacheSkipsReshipping is the streaming-load claim: a repeated
// RankPrepared against warm workers negotiates every shard as a digest
// hit and ships (nearly) no shard bytes, visible both in the cache
// counters and the measured wire traffic.
func TestShardCacheSkipsReshipping(t *testing.T) {
	web := testWeb()
	rk, err := lmm.NewRanker(web.Graph, lmm.RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	cl, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	cold, err := cl.Coord.RankPrepared(rk, coordinator.Config{})
	if err != nil {
		t.Fatalf("cold RankPrepared: %v", err)
	}
	warm, err := cl.Coord.RankPrepared(rk, coordinator.Config{})
	if err != nil {
		t.Fatalf("warm RankPrepared: %v", err)
	}

	ns := web.Graph.NumSites()
	if cold.Stats.CacheHits != 0 || cold.Stats.CacheMisses != ns {
		t.Errorf("cold run: %d hits / %d misses, want 0 / %d",
			cold.Stats.CacheHits, cold.Stats.CacheMisses, ns)
	}
	if warm.Stats.CacheHits != ns || warm.Stats.CacheMisses != 0 {
		t.Errorf("warm run: %d hits / %d misses, want %d / 0",
			warm.Stats.CacheHits, warm.Stats.CacheMisses, ns)
	}
	if warm.Stats.ShardBytesSaved == 0 {
		t.Error("warm run reports no shard bytes saved")
	}
	// The warm run still pays for offers, rank-locals and the SiteRank,
	// but the shard payload — the dominant load cost — is gone.
	if warm.Stats.BytesSent*3 >= cold.Stats.BytesSent {
		t.Errorf("warm run sent %d bytes vs cold %d — cache hits should shrink traffic by > 3x",
			warm.Stats.BytesSent, cold.Stats.BytesSent)
	}
	if d := warm.DocRank.L1Diff(cold.DocRank); d != 0 {
		t.Errorf("warm run's DocRank differs from cold by %g, want bitwise equality", d)
	}
	for i, w := range cl.Workers {
		if st := w.Stats(); st.CacheEntries == 0 || st.CacheDocs == 0 {
			t.Errorf("worker %d cache gauges empty after two runs: %+v", i, st)
		}
	}
}

// TestRecoversFromWorkerKilledBetweenRuns kills a real worker under a
// live coordinator and re-ranks with a retry budget: the death is
// discovered at the next exchange, the dead peer's shards are
// reassigned, and the result matches the single-node reference.
func TestRecoversFromWorkerKilledBetweenRuns(t *testing.T) {
	web := testWeb()
	ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	cl, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	if _, err := cl.Coord.Rank(web.Graph, coordinator.Config{}); err != nil {
		t.Fatalf("first Rank: %v", err)
	}
	if err := cl.Kill(2); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	res, err := cl.Coord.Rank(web.Graph, coordinator.Config{
		Retry: coordinator.RetryPolicy{MaxWorkerFailures: 1},
	})
	if err != nil {
		t.Fatalf("Rank after kill: %v", err)
	}
	if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖post-kill − reference‖₁ = %g, want < 1e-9", d)
	}
	if res.Stats.WorkersLost != 1 || res.Stats.Reassignments < 1 {
		t.Errorf("Stats after kill: lost=%d reassigned=%d, want 1 and >= 1",
			res.Stats.WorkersLost, res.Stats.Reassignments)
	}
	// A third run must not re-discover the dead worker: it starts from
	// the two survivors and needs no retry budget at all.
	again, err := cl.Coord.Rank(web.Graph, coordinator.Config{})
	if err != nil {
		t.Fatalf("Rank on the shrunken fleet: %v", err)
	}
	if again.Stats.WorkersLost != 0 {
		t.Errorf("shrunken-fleet run reports %d losses, want 0", again.Stats.WorkersLost)
	}
	if d := again.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖shrunken-fleet − reference‖₁ = %g, want < 1e-9", d)
	}
}
