package cluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"lmmrank/internal/dist/chaos"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/dist/wire"
)

// soakRedial is the aggressive redial policy the soak runs under: a
// killed worker is usually back within a few power rounds.
func soakRedial() coordinator.RetryPolicy {
	return coordinator.RetryPolicy{
		MaxWorkerFailures: 1,
		MaxRedials:        500,
		RedialBase:        time.Millisecond,
		RedialMax:         5 * time.Millisecond,
	}
}

// interruptAfter is a Checkpoint wrapper that cancels the run's context
// after n successful Saves — the soak's stand-in for a coordinator
// crash mid-SiteRank. The cancel lands between rounds, in sequential
// code, so the fleet's connections survive into the resume leg.
type interruptAfter struct {
	coordinator.Checkpoint
	n      int
	saves  int
	cancel context.CancelFunc
}

func (c *interruptAfter) Save(st *coordinator.CheckpointState) error {
	if err := c.Checkpoint.Save(st); err != nil {
		return err
	}
	c.saves++
	if c.saves == c.n {
		c.cancel()
	}
	return nil
}

// TestChaosSoak drives seeded-random kill/rejoin/resume cycles against
// every serving mode and demands the undisturbed answer every time:
// bitwise for central and batched SiteRank (reassignment and failover
// never regroup their arithmetic), < 1e-9 for unbatched (ownership
// changes reorder the partial-sum reduce). Workers die mid-protocol at
// a random message kind each cycle, rejoin through the redial loop with
// warm caches, and distributed runs are additionally interrupted at a
// checkpoint and resumed. The seed is fixed: one reproducible schedule
// per mode, stable under -race.
func TestChaosSoak(t *testing.T) {
	const fleet = 4
	const cycles = 6
	web := testWeb()

	modes := []struct {
		name    string
		cfg     coordinator.Config
		kinds   []wire.Kind // kill points reachable in this mode
		bitwise bool
		resume  bool // checkpointing applies (distributed SiteRank only)
	}{
		{
			name:    "centralSiteRank",
			cfg:     coordinator.Config{},
			kinds:   []wire.Kind{wire.KindLoad, wire.KindRankLocal},
			bitwise: true,
		},
		{
			// The tight tolerance keeps SiteRank iterating long enough
			// that every scripted interrupt lands before convergence and
			// every redialed worker rejoins mid-run.
			name:   "unbatchedSiteRank",
			cfg:    coordinator.Config{DistributedSiteRank: true, Tol: 1e-12, MaxIter: 2000},
			kinds:  []wire.Kind{wire.KindLoad, wire.KindRankLocal, wire.KindPowerRound},
			resume: true,
		},
		{
			name: "batchedSiteRank",
			cfg: coordinator.Config{
				DistributedSiteRank: true, BatchRounds: 4, Tol: 1e-12, MaxIter: 2000,
			},
			kinds:   []wire.Kind{wire.KindLoad, wire.KindRankLocal, wire.KindBatchRounds},
			bitwise: true,
			resume:  true,
		},
		{
			// No resume leg: a cancel lands inside concurrent driver
			// calls and poisons their connections, which is the
			// documented cost of the barrier-free phase — crash recovery
			// is the ordered schedule's job.
			name: "asyncSiteRank",
			cfg: coordinator.Config{
				SiteRank: coordinator.SiteRankAsync, Tol: 1e-12, MaxIter: 4000,
			},
			kinds: []wire.Kind{wire.KindLoad, wire.KindRankLocal, wire.KindAsyncUpdate},
		},
		{
			// Not bitwise despite the seed: a chaos kill diverges the
			// schedule from the undisturbed reference run.
			name: "orderedAsyncSiteRank",
			cfg: coordinator.Config{
				SiteRank: coordinator.SiteRankAsync, AsyncOrdered: true, AsyncSeed: 11,
				Tol: 1e-12, MaxIter: 4000,
			},
			kinds:  []wire.Kind{wire.KindLoad, wire.KindRankLocal, wire.KindAsyncUpdate},
			resume: true,
		},
	}

	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			// The undisturbed answer, from a proxy-free fleet.
			clRef, err := StartLocal(fleet)
			if err != nil {
				t.Fatalf("StartLocal: %v", err)
			}
			ref, err := clRef.Coord.Rank(web.Graph, m.cfg)
			clRef.Close()
			if err != nil {
				t.Fatalf("reference Rank: %v", err)
			}

			cl, err := StartChaosLocal(fleet)
			if err != nil {
				t.Fatalf("StartChaosLocal: %v", err)
			}
			defer cl.Close()

			rng := rand.New(rand.NewSource(7))
			var losses, rejoins, resumes int
			for cycle := 0; cycle < cycles; cycle++ {
				cfg := m.cfg
				cfg.Retry = soakRedial()

				victim := rng.Intn(fleet)
				kind := m.kinds[rng.Intn(len(m.kinds))]
				cl.Proxies[victim].SetScript(chaos.KillAtKind(kind))

				if m.resume && cycle%2 == 1 {
					// Resume cycle: crash the coordinator's iteration at a
					// checkpoint, then resume on the same store — while the
					// kill script above may still fell a worker in either leg.
					store := coordinator.NewMemCheckpoint()
					ctx, cancel := context.WithCancel(context.Background())
					cfg.Checkpoint = &interruptAfter{
						Checkpoint: store, n: 1 + rng.Intn(4), cancel: cancel,
					}
					_, err := cl.Coord.RankCtx(ctx, web.Graph, cfg)
					cancel()
					if err == nil {
						t.Fatalf("cycle %d: interrupted run finished without cancelling", cycle)
					}
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("cycle %d: interrupted run: %v, want context.Canceled", cycle, err)
					}
					cfg.Checkpoint = store
					resumes++
				}

				res, err := cl.Coord.Rank(web.Graph, cfg)
				if err != nil {
					t.Fatalf("cycle %d (victim %d, kind %d): %v", cycle, victim, kind, err)
				}
				d := res.DocRank.L1Diff(ref.DocRank)
				if m.bitwise && d != 0 {
					t.Errorf("cycle %d: ‖soak − reference‖₁ = %g, want exactly 0", cycle, d)
				}
				if d >= 1e-9 {
					t.Errorf("cycle %d: ‖soak − reference‖₁ = %g, want < 1e-9", cycle, d)
				}
				losses += res.Stats.WorkersLost
				rejoins += res.Stats.WorkersRejoined
				cl.Proxies[victim].SetScript(nil)
			}
			if losses == 0 {
				t.Error("soak never killed a worker — the schedule exercised nothing")
			}
			// Mid-run re-admission needs a run long enough to still be
			// going when the redial lands — guaranteed only in the
			// distributed-SiteRank modes. (Central-mode cycles heal
			// between runs: a completed redial is installed at run end,
			// which Stats does not count as a rejoin.)
			if m.resume && rejoins == 0 {
				t.Error("soak never re-admitted a worker mid-run")
			}
			if m.resume && resumes == 0 {
				t.Error("soak never exercised checkpoint resume")
			}
			t.Logf("%s: %d losses, %d rejoins, %d resumes over %d cycles",
				m.name, losses, rejoins, resumes, cycles)
		})
	}
}
