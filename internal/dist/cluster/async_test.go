package cluster

import (
	"testing"
	"time"

	"lmmrank/internal/dist/chaos"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/dist/wire"
)

// sumInts is a tiny helper for checking stat decompositions.
func sumInts(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}

// TestAsyncSiteRankAgreesWithSync is the convergence half of the
// barrier-free claim: the asynchronous mode must land on the same
// SiteRank fixed point as the synchronous barrier protocol, within the
// pinned tolerances — <1e-6 for the concurrent schedule (arrival order
// is scheduler-dependent), <1e-9 for the deterministic ordered
// schedule — and its accounting must decompose consistently.
func TestAsyncSiteRankAgreesWithSync(t *testing.T) {
	web := testWeb()

	cases := []struct {
		name     string
		cfg      coordinator.Config
		syncCfg  coordinator.Config
		agreeTol float64
	}{
		{
			name:     "concurrent",
			cfg:      coordinator.Config{SiteRank: coordinator.SiteRankAsync, Tol: 1e-8, MaxIter: 2000},
			syncCfg:  coordinator.Config{DistributedSiteRank: true, Tol: 1e-8, MaxIter: 2000},
			agreeTol: 1e-6,
		},
		{
			name: "ordered",
			cfg: coordinator.Config{
				SiteRank: coordinator.SiteRankAsync, AsyncOrdered: true, AsyncSeed: 42,
				Tol: 1e-12, MaxIter: 4000,
			},
			syncCfg:  coordinator.Config{DistributedSiteRank: true, Tol: 1e-12, MaxIter: 4000},
			agreeTol: 1e-9,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clSync, err := StartLocal(4)
			if err != nil {
				t.Fatalf("StartLocal: %v", err)
			}
			sync, err := clSync.Coord.Rank(web.Graph, tc.syncCfg)
			clSync.Close()
			if err != nil {
				t.Fatalf("synchronous Rank: %v", err)
			}

			cl, err := StartLocal(4)
			if err != nil {
				t.Fatalf("StartLocal: %v", err)
			}
			defer cl.Close()
			res, err := cl.Coord.Rank(web.Graph, tc.cfg)
			if err != nil {
				t.Fatalf("async Rank: %v", err)
			}

			if d := res.SiteRank.L1Diff(sync.SiteRank); d >= tc.agreeTol {
				t.Errorf("‖async − sync‖₁ on SiteRank = %g, want < %g", d, tc.agreeTol)
			}
			if d := res.DocRank.L1Diff(sync.DocRank); d >= tc.agreeTol {
				t.Errorf("‖async − sync‖₁ on DocRank = %g, want < %g", d, tc.agreeTol)
			}

			st := res.Stats
			if st.AsyncUpdatesMerged == 0 {
				t.Error("AsyncUpdatesMerged = 0 — the async phase never merged a sweep")
			}
			if st.AsyncVerifyRounds == 0 {
				t.Error("AsyncVerifyRounds = 0 — the candidate was never verified synchronously")
			}
			if got := sumInts(st.AsyncWorkerSweeps); got != st.AsyncUpdatesMerged {
				t.Errorf("per-worker sweeps sum to %d, want AsyncUpdatesMerged = %d",
					got, st.AsyncUpdatesMerged)
			}
			if got := sumInts(st.AsyncStalenessHist); got != st.AsyncUpdatesMerged {
				t.Errorf("staleness histogram sums to %d, want AsyncUpdatesMerged = %d",
					got, st.AsyncUpdatesMerged)
			}
			if st.SiteRankRounds != st.AsyncUpdatesMerged+st.AsyncVerifyRounds {
				t.Errorf("SiteRankRounds = %d, want merges + verification = %d",
					st.SiteRankRounds, st.AsyncUpdatesMerged+st.AsyncVerifyRounds)
			}
			if tc.cfg.AsyncOrdered {
				// The ordered schedule merges every sweep at staleness zero.
				if st.AsyncStalenessHist[0] != st.AsyncUpdatesMerged {
					t.Errorf("ordered schedule recorded staleness > 0: hist = %v", st.AsyncStalenessHist)
				}
			}
		})
	}
}

// TestAsyncSiteRankReproducible pins the seeded determinism claim: the
// ordered schedule with a fixed AsyncSeed and fleet must produce a
// bitwise-identical ranking across fresh clusters.
func TestAsyncSiteRankReproducible(t *testing.T) {
	web := testWeb()
	cfg := coordinator.Config{
		SiteRank: coordinator.SiteRankAsync, AsyncOrdered: true, AsyncSeed: 7,
		Tol: 1e-10, MaxIter: 4000,
	}
	var prevSite, prevDoc []float64
	for run := 0; run < 2; run++ {
		cl, err := StartLocal(4)
		if err != nil {
			t.Fatalf("StartLocal: %v", err)
		}
		res, err := cl.Coord.Rank(web.Graph, cfg)
		cl.Close()
		if err != nil {
			t.Fatalf("Rank (run %d): %v", run, err)
		}
		if prevSite == nil {
			prevSite, prevDoc = res.SiteRank, res.DocRank
			continue
		}
		for i, x := range res.SiteRank {
			if x != prevSite[i] {
				t.Fatalf("SiteRank differs at site %d: %g vs %g — ordered schedule is not reproducible",
					i, x, prevSite[i])
			}
		}
		for i, x := range res.DocRank {
			if x != prevDoc[i] {
				t.Fatalf("DocRank differs at doc %d: %g vs %g", i, x, prevDoc[i])
			}
		}
	}
}

// stragglerDelay is the per-message penalty the straggler tests inject.
// Each synchronous barrier round waits for the slowest worker, so a
// run's SiteRank phase pays ≈ rounds × stragglerDelay; the asynchronous
// phase pays ≈ a handful of delay periods regardless of round count.
const stragglerDelay = 10 * time.Millisecond

// TestChaosStragglerStallsSyncBarrier is the baseline measurement for
// the barrier-free claim: with one worker's SiteRank exchanges delayed,
// every synchronous barrier round stalls on the straggler, so the
// SiteRank phase must take at least (barriers × delay) wall-clock.
func TestChaosStragglerStallsSyncBarrier(t *testing.T) {
	web := testWeb()
	cases := []struct {
		name string
		cfg  coordinator.Config
		kind wire.Kind
		// roundsPerBarrier converts SiteRankRounds to barrier count.
		roundsPerBarrier int
	}{
		{
			name:             "sync",
			cfg:              coordinator.Config{DistributedSiteRank: true, Tol: 1e-6},
			kind:             wire.KindPowerRound,
			roundsPerBarrier: 1,
		},
		{
			name:             "batched",
			cfg:              coordinator.Config{DistributedSiteRank: true, BatchRounds: 4, Tol: 1e-6},
			kind:             wire.KindBatchRounds,
			roundsPerBarrier: 4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := StartChaosLocal(3)
			if err != nil {
				t.Fatalf("StartChaosLocal: %v", err)
			}
			defer cl.Close()
			cl.Proxies[1].SetScript(chaos.DelayKind(tc.kind, stragglerDelay))

			res, err := cl.Coord.Rank(web.Graph, tc.cfg)
			if err != nil {
				t.Fatalf("Rank: %v", err)
			}
			rounds := res.Stats.SiteRankRounds
			if rounds == 0 {
				t.Fatal("SiteRankRounds not recorded")
			}
			barriers := (rounds + tc.roundsPerBarrier - 1) / tc.roundsPerBarrier
			// Batched rounds rotate over the fleet, so only the barriers
			// that landed on the straggler pay; a third of them is a safe
			// floor with 3 workers. Unbatched barriers all pay.
			floor := time.Duration(barriers) * stragglerDelay * 9 / 10
			if tc.roundsPerBarrier > 1 {
				floor = time.Duration(barriers) * stragglerDelay / 4
			}
			if res.Stats.SiteRankDuration < floor {
				t.Errorf("SiteRank phase took %v over %d barriers with a %v straggler, want >= %v — the barrier stall is not visible",
					res.Stats.SiteRankDuration, barriers, stragglerDelay, floor)
			}
			t.Logf("%s: %d rounds (%d barriers) in %v", tc.name, rounds, barriers, res.Stats.SiteRankDuration)
		})
	}
}

// TestChaosAsyncStragglerBeatsSync is the straggler half of the
// barrier-free claim: with the same worker delayed by well over 10x the
// natural exchange time (~0.3ms on loopback), the asynchronous mode
// must finish its SiteRank phase measurably under the synchronous
// mode's, and still agree with the synchronous answer.
//
// The margin is deliberately modest. Chaotic relaxation does not escape
// the information bottleneck — convergence still needs on the order of
// as many straggler refreshes as the synchronous run needs rounds (the
// asynchronous rate is set by the slowest-updated block, Chazan &
// Miranker) — so the asynchronous win is every cost the barrier adds on
// top of the delay: the reduce, the per-round fan-out, and all fast-
// worker compute, which async overlaps entirely with the straggler's
// sleep. The fleet is 8 wide so the straggler owns little of the chain;
// the gap closes as its share grows.
func TestChaosAsyncStragglerBeatsSync(t *testing.T) {
	const fleet = 8
	web := testWeb()

	// Synchronous leg: the straggler stalls every barrier.
	clSync, err := StartChaosLocal(fleet)
	if err != nil {
		t.Fatalf("StartChaosLocal: %v", err)
	}
	clSync.Proxies[7].SetScript(chaos.DelayKind(wire.KindPowerRound, stragglerDelay))
	sync, err := clSync.Coord.Rank(web.Graph, coordinator.Config{
		DistributedSiteRank: true, Tol: 1e-6, MaxIter: 2000,
	})
	clSync.Close()
	if err != nil {
		t.Fatalf("synchronous Rank: %v", err)
	}
	syncDur := sync.Stats.SiteRankDuration
	if min := time.Duration(sync.Stats.SiteRankRounds) * stragglerDelay / 2; syncDur < min {
		t.Fatalf("synchronous leg took %v over %d rounds, want >= %v — straggler injection did not bite",
			syncDur, sync.Stats.SiteRankRounds, min)
	}

	// Asynchronous leg: the same worker is delayed on every SiteRank
	// exchange it serves — its sweeps and the verification rounds alike,
	// so the comparison gives the straggler no free pass.
	clAsync, err := StartChaosLocal(fleet)
	if err != nil {
		t.Fatalf("StartChaosLocal: %v", err)
	}
	defer clAsync.Close()
	clAsync.Proxies[7].SetScript(func(_ int, req *wire.Request) chaos.Decision {
		if req.Kind == wire.KindAsyncUpdate || req.Kind == wire.KindPowerRound {
			return chaos.Decision{Action: chaos.Delay, Delay: stragglerDelay}
		}
		return chaos.Decision{Action: chaos.Pass}
	})
	async, err := clAsync.Coord.Rank(web.Graph, coordinator.Config{
		SiteRank: coordinator.SiteRankAsync, Tol: 1e-6, MaxIter: 2000,
	})
	if err != nil {
		t.Fatalf("async Rank: %v", err)
	}
	asyncDur := async.Stats.SiteRankDuration

	if d := async.SiteRank.L1Diff(sync.SiteRank); d >= 1e-4 {
		t.Errorf("‖async − sync‖₁ on SiteRank = %g under straggler, want < 1e-4", d)
	}
	if asyncDur*10 >= syncDur*9 {
		t.Errorf("async SiteRank took %v vs synchronous %v — barrier freedom should finish under 90%% of the synchronous wall-clock",
			asyncDur, syncDur)
	}
	if sumInts(async.Stats.AsyncWorkerSweeps) == 0 {
		t.Error("async leg recorded no merged sweeps")
	}
	t.Logf("straggler %v: sync %v (%d rounds) vs async %v (%d merges + %d verification rounds)",
		stragglerDelay, syncDur, sync.Stats.SiteRankRounds,
		asyncDur, async.Stats.AsyncUpdatesMerged, async.Stats.AsyncVerifyRounds)
}
