// Package cluster wires a complete in-process distributed fleet on
// loopback TCP: n workers plus a connected coordinator. It exists so
// examples, tests and experiments can exercise the real networked
// runtime — actual sockets, actual gob framing, actual byte counts —
// without provisioning machines.
package cluster

import (
	"fmt"
	"sync"

	"lmmrank/internal/dist/chaos"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/dist/worker"
)

// Local is an in-process loopback fleet. Workers and coordinator run in
// this process but talk TCP like a real deployment.
type Local struct {
	// Workers are the running peers, in address order.
	Workers []*worker.Worker
	// Addrs are the addresses the coordinator dialed, aligned with
	// Workers: the workers' own loopback addresses from StartLocal, the
	// fault proxies' from StartChaosLocal.
	Addrs []string
	// Proxies are the per-worker fault-injection proxies of a
	// StartChaosLocal fleet (nil from StartLocal), aligned with
	// Workers. Swap scripts with Proxy.SetScript to inject faults.
	Proxies []*chaos.Proxy
	// Coord is connected to every worker and ready to Rank.
	Coord *coordinator.Coordinator

	mu     sync.Mutex
	closed bool
}

// StartLocal launches n workers on 127.0.0.1 (kernel-assigned ports)
// and dials a coordinator to all of them. On any failure everything
// already started is torn down.
func StartLocal(n int) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 worker, got %d", n)
	}
	l := &Local{}
	for i := 0; i < n; i++ {
		w := worker.New()
		addr, err := w.Start("127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: starting worker %d: %w", i, err)
		}
		l.Workers = append(l.Workers, w)
		l.Addrs = append(l.Addrs, addr)
	}
	coord, err := coordinator.Dial(l.Addrs)
	if err != nil {
		l.Close()
		return nil, err
	}
	l.Coord = coord
	return l, nil
}

// StartChaosLocal is StartLocal with a chaos.Proxy spliced between the
// coordinator and every worker: the coordinator dials the proxies, so
// tests can kill, delay, partition or duplicate any worker's traffic
// mid-run by script — while the worker process (and its warm digest
// cache) survives, which is what makes redial-and-rejoin meaningful.
// Proxies start with a nil (pass-everything) script.
func StartChaosLocal(n int) (*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 worker, got %d", n)
	}
	l := &Local{}
	for i := 0; i < n; i++ {
		w := worker.New()
		addr, err := w.Start("127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: starting worker %d: %w", i, err)
		}
		l.Workers = append(l.Workers, w)
		p, err := chaos.NewProxy(addr, nil)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("cluster: starting proxy %d: %w", i, err)
		}
		l.Proxies = append(l.Proxies, p)
		l.Addrs = append(l.Addrs, p.Addr())
	}
	coord, err := coordinator.Dial(l.Addrs)
	if err != nil {
		l.Close()
		return nil, err
	}
	l.Coord = coord
	return l, nil
}

// Kill abruptly stops worker i (dropping its connections mid-protocol),
// simulating a peer dying mid-run — the failure mode the coordinator's
// RetryPolicy recovers from. The worker cannot be restarted; tests and
// chaos experiments use Kill to exercise shard reassignment.
func (l *Local) Kill(i int) error {
	if i < 0 || i >= len(l.Workers) {
		return fmt.Errorf("cluster: kill worker %d of %d", i, len(l.Workers))
	}
	return l.Workers[i].Close()
}

// Close hangs up the coordinator and stops every worker. Calling Close
// again is a no-op.
func (l *Local) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()

	var first error
	if l.Coord != nil {
		if err := l.Coord.Close(); err != nil {
			first = err
		}
	}
	for _, p := range l.Proxies {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, w := range l.Workers {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
