package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/partition"
	"lmmrank/internal/webgen"
)

// TestPartitionStrategiesAgreeOverTheWire runs every placement strategy
// through the cluster: by the Partition Theorem each must reproduce the
// single-process Layered Method < 1e-9, and every run must report its
// cut-edge quality.
func TestPartitionStrategiesAgreeOverTheWire(t *testing.T) {
	web := webgen.Generate(webgen.Config{
		Seed:              23,
		Blocky:            true,
		Sites:             24,
		Blocks:            6,
		MeanSitePages:     10,
		IntraLinksPerPage: 2,
		InterLinkFraction: 0.3,
	})
	ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference LayeredDocRank: %v", err)
	}
	cl, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	for _, st := range []partition.Strategy{partition.Host{}, partition.Balanced{}, partition.Aggregate{Seed: 4}} {
		t.Run(st.Name(), func(t *testing.T) {
			rk, err := lmm.NewRanker(web.Graph, lmm.RankerOptions{})
			if err != nil {
				t.Fatalf("NewRanker: %v", err)
			}
			res, err := cl.Coord.RankPrepared(rk, coordinator.Config{Partition: st})
			if err != nil {
				t.Fatalf("RankPrepared: %v", err)
			}
			if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
				t.Errorf("‖%s − LayeredDocRank‖₁ = %g, want < 1e-9", st.Name(), d)
			}
			if res.Stats.CutEdges == 0 || res.Stats.CutFraction == 0 || res.Stats.CrossShardBytes == 0 {
				t.Errorf("cut stats are decorative: CutEdges=%g CutFraction=%g CrossShardBytes=%d",
					res.Stats.CutEdges, res.Stats.CutFraction, res.Stats.CrossShardBytes)
			}
		})
	}
}

// TestRandomPartitionsArePurePerformanceKnob is the property pin: any
// pinned site→shard assignment — drawn at random, with no regard for
// balance or coupling — reproduces the single-process ranking < 1e-9
// through the cluster. Partition choice can cost performance, never
// correctness.
func TestRandomPartitionsArePurePerformanceKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, webSeed := range []int64{3, 1729} {
		web := webgen.Generate(webgen.Config{
			Seed:          webSeed,
			Sites:         12,
			MeanSitePages: 8,
		})
		ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
		if err != nil {
			t.Fatalf("reference LayeredDocRank: %v", err)
		}
		cl, err := StartLocal(3)
		if err != nil {
			t.Fatalf("StartLocal: %v", err)
		}
		ns := web.Graph.NumSites()
		for trial := 0; trial < 3; trial++ {
			owners := make([]int, ns)
			for s := range owners {
				owners[s] = rng.Intn(3)
			}
			t.Run(fmt.Sprintf("web%d/trial%d", webSeed, trial), func(t *testing.T) {
				rk, err := lmm.NewRanker(web.Graph, lmm.RankerOptions{})
				if err != nil {
					t.Fatalf("NewRanker: %v", err)
				}
				res, err := cl.Coord.RankPrepared(rk, coordinator.Config{Assignment: owners})
				if err != nil {
					t.Fatalf("RankPrepared: %v", err)
				}
				if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
					t.Errorf("‖random-assignment − LayeredDocRank‖₁ = %g, want < 1e-9", d)
				}
				// The run must actually honor the pinned placement: its
				// cut matches the assignment's, computed independently.
				sg := graph.DeriveSiteGraph(web.Graph, graph.SiteGraphOptions{})
				if want := partition.CutFraction(sg, owners); res.Stats.CutFraction != want {
					t.Errorf("CutFraction = %g, want %g (assignment not honored)", res.Stats.CutFraction, want)
				}
			})
		}
		cl.Close()
	}
}
