package cluster

import (
	"errors"
	"testing"

	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// TestDigestMemoization pins the coordinator-side digest memo: the cold
// RankPrepared run hashes every shard's content, the warm run over the
// same Ranker hashes zero bytes — the memo, not the SHA-256 sweep,
// answers the cache negotiation — and the results stay bitwise equal.
func TestDigestMemoization(t *testing.T) {
	web := testWeb()
	rk, err := lmm.NewRanker(web.Graph, lmm.RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	cl, err := StartLocal(2)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()

	cold, err := cl.Coord.RankPrepared(rk, coordinator.Config{})
	if err != nil {
		t.Fatalf("cold RankPrepared: %v", err)
	}
	warm, err := cl.Coord.RankPrepared(rk, coordinator.Config{})
	if err != nil {
		t.Fatalf("warm RankPrepared: %v", err)
	}
	if cold.Stats.DigestBytesHashed == 0 {
		t.Error("cold run hashed no digest bytes — the accounting is decorative")
	}
	if warm.Stats.DigestBytesHashed != 0 {
		t.Errorf("warm run hashed %d digest bytes, want 0 (memoized per Ranker)",
			warm.Stats.DigestBytesHashed)
	}
	if d := warm.DocRank.L1Diff(cold.DocRank); d != 0 {
		t.Errorf("memoized run's DocRank differs by %g, want bitwise equality", d)
	}

	// A different protocol shape (chain rows inside the shards) is a
	// different payload: the memo must miss and re-hash, not serve the
	// stale central-mode shards.
	dist, err := cl.Coord.RankPrepared(rk, coordinator.Config{DistributedSiteRank: true})
	if err != nil {
		t.Fatalf("distributed RankPrepared: %v", err)
	}
	if dist.Stats.DigestBytesHashed == 0 {
		t.Error("protocol-shape change reused the memo — shards would lack their chain rows")
	}
	if d := dist.DocRank.L1Diff(cold.DocRank); d >= 1e-9 {
		t.Errorf("distributed-mode run deviates by %g, want < 1e-9", d)
	}
}

// TestCompressedShardEquivalence is the Config.Compress contract: the
// ranking is bitwise identical with compression on, the stats record a
// real compression win, and the cold-load wire traffic shrinks.
func TestCompressedShardEquivalence(t *testing.T) {
	web := testWeb()

	rank := func(compress bool) *coordinator.Result {
		t.Helper()
		cl, err := StartLocal(2)
		if err != nil {
			t.Fatalf("StartLocal: %v", err)
		}
		defer cl.Close()
		res, err := cl.Coord.Rank(web.Graph, coordinator.Config{Compress: compress})
		if err != nil {
			t.Fatalf("Rank(compress=%v): %v", compress, err)
		}
		return res
	}
	plain := rank(false)
	compressed := rank(true)

	if d := compressed.DocRank.L1Diff(plain.DocRank); d != 0 {
		t.Errorf("compressed run's DocRank differs by %g, want bitwise equality", d)
	}
	if d := compressed.SiteRank.L1Diff(plain.SiteRank); d != 0 {
		t.Errorf("compressed run's SiteRank differs by %g, want bitwise equality", d)
	}
	if plain.Stats.ShardBytesRaw != 0 || plain.Stats.ShardBytesCompressed != 0 {
		t.Errorf("uncompressed run recorded compression stats: %d raw / %d compressed",
			plain.Stats.ShardBytesRaw, plain.Stats.ShardBytesCompressed)
	}
	if compressed.Stats.ShardBytesRaw == 0 {
		t.Fatal("compressed run recorded no raw shard bytes")
	}
	if compressed.Stats.ShardBytesCompressed >= compressed.Stats.ShardBytesRaw {
		t.Errorf("compression grew the payload: %d raw -> %d compressed",
			compressed.Stats.ShardBytesRaw, compressed.Stats.ShardBytesCompressed)
	}
	if compressed.Stats.BytesSent >= plain.Stats.BytesSent {
		t.Errorf("compressed cold load sent %d bytes, uncompressed %d — no wire win",
			compressed.Stats.BytesSent, plain.Stats.BytesSent)
	}
}

// TestDistributedSitePersonalization drives the site-layer teleport
// through every SiteRank mode — central, one-round-per-exchange
// distributed, and round-batched — and checks each against the
// single-process personalized pipeline.
func TestDistributedSitePersonalization(t *testing.T) {
	web := testWeb()
	ns := web.Graph.NumSites()
	pers := make(matrix.Vector, ns)
	for s := range pers {
		pers[s] = 1
	}
	pers[3] = 25 // heavily bias one site
	pers.Normalize()

	ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{SitePersonalization: pers})
	if err != nil {
		t.Fatalf("reference personalized LayeredDocRank: %v", err)
	}

	modes := []struct {
		name string
		cfg  coordinator.Config
	}{
		{"central", coordinator.Config{SitePersonalization: pers}},
		{"distributed", coordinator.Config{SitePersonalization: pers, DistributedSiteRank: true}},
		{"batched", coordinator.Config{SitePersonalization: pers, DistributedSiteRank: true, BatchRounds: 4}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			cl, err := StartLocal(3)
			if err != nil {
				t.Fatalf("StartLocal: %v", err)
			}
			defer cl.Close()
			res, err := cl.Coord.Rank(web.Graph, m.cfg)
			if err != nil {
				t.Fatalf("Rank: %v", err)
			}
			if d := res.SiteRank.L1Diff(ref.SiteRank); d >= 1e-9 {
				t.Errorf("‖distributed − reference‖₁ on SiteRank = %g, want < 1e-9", d)
			}
			if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
				t.Errorf("‖distributed − reference‖₁ = %g, want < 1e-9", d)
			}
		})
	}

	// Malformed personalization is rejected up front in every mode.
	cl, err := StartLocal(1)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()
	bad := make(matrix.Vector, ns-1)
	for i := range bad {
		bad[i] = 1.0 / float64(ns-1)
	}
	if _, err := cl.Coord.Rank(web.Graph, coordinator.Config{SitePersonalization: bad}); !errors.Is(err, pagerank.ErrBadConfig) {
		t.Errorf("wrong-length personalization: err = %v, want ErrBadConfig", err)
	}
}

// TestDistributedThreeLayer checks the three-layer model over the wire:
// fleet-computed local DocRanks composed under centrally computed
// DomainRank·SiteEntry weights must match the single-process
// LayeredDocRank3, and the incompatible mode combinations fail cleanly.
func TestDistributedThreeLayer(t *testing.T) {
	web := testWeb()
	ref, err := lmm.LayeredDocRank3(web.Graph, nil, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("reference LayeredDocRank3: %v", err)
	}

	cl, err := StartLocal(3)
	if err != nil {
		t.Fatalf("StartLocal: %v", err)
	}
	defer cl.Close()
	res, err := cl.Coord.Rank(web.Graph, coordinator.Config{ThreeLayer: true})
	if err != nil {
		t.Fatalf("three-layer Rank: %v", err)
	}
	if d := res.DocRank.L1Diff(ref.DocRank); d >= 1e-9 {
		t.Errorf("‖distributed three-layer − reference‖₁ = %g, want < 1e-9", d)
	}
	if d := res.DomainRank.L1Diff(ref.DomainRank); d >= 1e-9 {
		t.Errorf("‖DomainRank − reference‖₁ = %g, want < 1e-9", d)
	}
	if len(res.Domains) != len(ref.Domains) {
		t.Errorf("domains = %d, want %d", len(res.Domains), len(ref.Domains))
	}
	for s, w := range res.SiteRank {
		want := ref.DomainRank[ref.DomainOfSite[s]] * ref.SiteEntry[s]
		if diff := w - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("site %d weight = %g, want %g", s, w, want)
			break
		}
	}

	if _, err := cl.Coord.Rank(web.Graph, coordinator.Config{ThreeLayer: true, DistributedSiteRank: true}); !errors.Is(err, pagerank.ErrBadConfig) {
		t.Errorf("ThreeLayer+DistributedSiteRank: err = %v, want ErrBadConfig", err)
	}
	pers := make(matrix.Vector, web.Graph.NumSites())
	for i := range pers {
		pers[i] = 1.0 / float64(len(pers))
	}
	if _, err := cl.Coord.Rank(web.Graph, coordinator.Config{ThreeLayer: true, SitePersonalization: pers}); !errors.Is(err, pagerank.ErrBadConfig) {
		t.Errorf("ThreeLayer+SitePersonalization: err = %v, want ErrBadConfig", err)
	}
}
