// Package retrieval implements the paper's stated future work (§4):
// "work of combining query-based ranking and link-based ranking will also
// be carried out." It provides the classical text-retrieval substrate the
// paper's introduction assumes P2P engines decompose — a TF-IDF vector
// space model with cosine scoring — and a SearchEngine that blends VSM
// query scores with any link-based DocRank (flat PageRank or the layered
// method) by linear interpolation, the standard fusion search engines of
// the era used.
package retrieval

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"lmmrank/internal/graph"
)

// ErrNotFinalized is returned when querying an index before Finalize.
var ErrNotFinalized = errors.New("retrieval: index not finalized")

// Index is an in-memory TF-IDF inverted index over document term
// vectors.
type Index struct {
	numDocs   int
	postings  map[string][]posting
	docNorm   map[graph.DocID]float64
	idf       map[string]float64
	finalized bool
}

// posting is one document's raw term frequency for a term.
type posting struct {
	doc graph.DocID
	tf  float64
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		postings: make(map[string][]posting),
		docNorm:  make(map[graph.DocID]float64),
		idf:      make(map[string]float64),
	}
}

// Add indexes a document's terms (duplicates increase term frequency).
// Terms are lower-cased. Adding after Finalize panics: the index is
// build-then-query.
func (ix *Index) Add(d graph.DocID, terms []string) {
	if ix.finalized {
		panic("retrieval: Add after Finalize")
	}
	if len(terms) == 0 {
		return
	}
	counts := make(map[string]float64, len(terms))
	for _, t := range terms {
		t = strings.ToLower(strings.TrimSpace(t))
		if t != "" {
			counts[t]++
		}
	}
	for t, c := range counts {
		ix.postings[t] = append(ix.postings[t], posting{doc: d, tf: c})
	}
	ix.numDocs++
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.postings) }

// Finalize computes IDF weights and document norms; the index becomes
// queryable and immutable.
func (ix *Index) Finalize() {
	if ix.finalized {
		return
	}
	n := float64(ix.numDocs)
	for t, plist := range ix.postings {
		// Smoothed IDF, always positive.
		ix.idf[t] = math.Log(1 + n/float64(len(plist)))
	}
	for t, plist := range ix.postings {
		idf := ix.idf[t]
		for _, p := range plist {
			w := tfWeight(p.tf) * idf
			ix.docNorm[p.doc] += w * w
		}
	}
	for d, s := range ix.docNorm {
		ix.docNorm[d] = math.Sqrt(s)
	}
	ix.finalized = true
}

// tfWeight is the sublinear TF scaling 1 + log(tf).
func tfWeight(tf float64) float64 {
	if tf <= 0 {
		return 0
	}
	return 1 + math.Log(tf)
}

// Query scores all matching documents by cosine similarity between the
// TF-IDF query vector and each document vector. Unmatched documents are
// absent from the result.
func (ix *Index) Query(terms []string) (map[graph.DocID]float64, error) {
	if !ix.finalized {
		return nil, ErrNotFinalized
	}
	qCounts := make(map[string]float64, len(terms))
	for _, t := range terms {
		t = strings.ToLower(strings.TrimSpace(t))
		if t != "" {
			qCounts[t]++
		}
	}
	var qNorm float64
	dot := make(map[graph.DocID]float64)
	for t, c := range qCounts {
		idf, ok := ix.idf[t]
		if !ok {
			continue
		}
		qw := tfWeight(c) * idf
		qNorm += qw * qw
		for _, p := range ix.postings[t] {
			dot[p.doc] += qw * tfWeight(p.tf) * idf
		}
	}
	if qNorm == 0 || len(dot) == 0 {
		return map[graph.DocID]float64{}, nil
	}
	qn := math.Sqrt(qNorm)
	for d := range dot {
		dot[d] /= qn * ix.docNorm[d]
	}
	return dot, nil
}

// Result is one search hit with its score decomposition.
type Result struct {
	Doc graph.DocID
	// Query is the normalized cosine score, Link the normalized DocRank,
	// Combined the blended score used for ordering.
	Query, Link, Combined float64
}

// SearchEngine blends VSM query scores with a link-based DocRank.
type SearchEngine struct {
	index *Index
	// docRank holds the link scores per DocID (any method).
	docRank []float64
	maxRank float64
	// lambda weighs the query component; 1 = pure text, 0 = pure link
	// order among matching documents.
	lambda float64
}

// NewSearchEngine builds an engine from a finalized index, a DocRank
// vector and the fusion weight λ ∈ [0, 1].
func NewSearchEngine(ix *Index, docRank []float64, lambda float64) (*SearchEngine, error) {
	if !ix.finalized {
		return nil, ErrNotFinalized
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("retrieval: lambda %g outside [0,1]", lambda)
	}
	var max float64
	for _, r := range docRank {
		if r > max {
			max = r
		}
	}
	if max == 0 {
		return nil, fmt.Errorf("retrieval: zero DocRank vector")
	}
	return &SearchEngine{index: ix, docRank: docRank, maxRank: max, lambda: lambda}, nil
}

// Search returns the top-k matching documents ordered by the blended
// score. Only documents matching at least one query term are returned —
// link score alone never surfaces a non-matching page.
func (se *SearchEngine) Search(terms []string, k int) ([]Result, error) {
	qScores, err := se.index.Query(terms)
	if err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(qScores))
	for d, q := range qScores {
		link := 0.0
		if int(d) < len(se.docRank) {
			link = se.docRank[d] / se.maxRank
		}
		results = append(results, Result{
			Doc:      d,
			Query:    q,
			Link:     link,
			Combined: se.lambda*q + (1-se.lambda)*link,
		})
	}
	sort.Slice(results, func(a, b int) bool {
		if results[a].Combined != results[b].Combined {
			return results[a].Combined > results[b].Combined
		}
		return results[a].Doc < results[b].Doc
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}
