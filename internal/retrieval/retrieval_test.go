package retrieval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/webgen"
)

func buildIndex(docs map[graph.DocID][]string) *Index {
	ix := NewIndex()
	for d, terms := range docs {
		ix.Add(d, terms)
	}
	ix.Finalize()
	return ix
}

func TestQueryBasicRelevance(t *testing.T) {
	ix := buildIndex(map[graph.DocID][]string{
		0: {"robotics", "lab", "research"},
		1: {"robotics", "robotics", "robotics"},
		2: {"history", "archive"},
	})
	scores, err := ix.Query([]string{"robotics"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(scores) != 2 {
		t.Fatalf("matches = %d, want 2", len(scores))
	}
	if _, ok := scores[2]; ok {
		t.Error("non-matching doc returned")
	}
	// Doc 1 is purely about robotics: its vector is parallel to the
	// query, cosine 1.
	if math.Abs(scores[1]-1) > 1e-12 {
		t.Errorf("cosine of pure match = %g, want 1", scores[1])
	}
	if scores[0] >= scores[1] {
		t.Errorf("mixed doc (%g) should score below pure doc (%g)", scores[0], scores[1])
	}
}

func TestQueryUnknownTermAndEmpty(t *testing.T) {
	ix := buildIndex(map[graph.DocID][]string{0: {"a"}})
	scores, err := ix.Query([]string{"zzz"})
	if err != nil || len(scores) != 0 {
		t.Errorf("unknown term: %v, %v", scores, err)
	}
	scores, err = ix.Query(nil)
	if err != nil || len(scores) != 0 {
		t.Errorf("empty query: %v, %v", scores, err)
	}
}

func TestQueryBeforeFinalize(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, []string{"a"})
	if _, err := ix.Query([]string{"a"}); !errors.Is(err, ErrNotFinalized) {
		t.Fatalf("err = %v, want ErrNotFinalized", err)
	}
}

func TestAddAfterFinalizePanics(t *testing.T) {
	ix := buildIndex(map[graph.DocID][]string{0: {"a"}})
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Finalize did not panic")
		}
	}()
	ix.Add(1, []string{"b"})
}

func TestIDFDownweightsCommonTerms(t *testing.T) {
	// "common" appears everywhere; "rare" once. A doc matching "rare"
	// must outscore a doc matching only "common" for query {common rare}.
	ix := buildIndex(map[graph.DocID][]string{
		0: {"common", "rare"},
		1: {"common", "filler"},
		2: {"common", "other"},
	})
	scores, err := ix.Query([]string{"common", "rare"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if scores[0] <= scores[1] {
		t.Errorf("rare-matching doc %g should beat common-only %g", scores[0], scores[1])
	}
}

func TestCaseAndWhitespaceNormalized(t *testing.T) {
	ix := buildIndex(map[graph.DocID][]string{0: {"Robotics", " lab "}})
	scores, err := ix.Query([]string{"ROBOTICS", "lab"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(scores) != 1 {
		t.Errorf("matches = %d", len(scores))
	}
}

func TestSearchEngineFusion(t *testing.T) {
	// Two docs equally relevant to the query; doc 1 has much higher link
	// rank. λ < 1 must order doc 1 first; λ = 1 orders by doc ID (tie).
	ix := buildIndex(map[graph.DocID][]string{
		0: {"news"},
		1: {"news"},
	})
	docRank := []float64{0.1, 0.9}
	se, err := NewSearchEngine(ix, docRank, 0.5)
	if err != nil {
		t.Fatalf("NewSearchEngine: %v", err)
	}
	res, err := se.Search([]string{"news"}, 10)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res) != 2 || res[0].Doc != 1 {
		t.Errorf("fusion order = %+v, want doc 1 first", res)
	}
	if res[0].Link != 1 {
		t.Errorf("link normalization: %g, want 1 for max-rank doc", res[0].Link)
	}

	pure, err := NewSearchEngine(ix, docRank, 1)
	if err != nil {
		t.Fatalf("λ=1: %v", err)
	}
	res, err = pure.Search([]string{"news"}, 10)
	if err != nil {
		t.Fatalf("Search λ=1: %v", err)
	}
	if res[0].Doc != 0 {
		t.Errorf("pure text with equal scores should tie-break by ID: %+v", res)
	}
}

func TestSearchNeverSurfacesNonMatches(t *testing.T) {
	ix := buildIndex(map[graph.DocID][]string{
		0: {"match"},
		1: {"unrelated"},
	})
	se, err := NewSearchEngine(ix, []float64{0.01, 0.99}, 0.0) // pure link
	if err != nil {
		t.Fatalf("NewSearchEngine: %v", err)
	}
	res, err := se.Search([]string{"match"}, 10)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res) != 1 || res[0].Doc != 0 {
		t.Errorf("link rank surfaced a non-matching doc: %+v", res)
	}
}

func TestSearchEngineValidation(t *testing.T) {
	ix := buildIndex(map[graph.DocID][]string{0: {"a"}})
	if _, err := NewSearchEngine(ix, []float64{1}, 1.5); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if _, err := NewSearchEngine(ix, []float64{0}, 0.5); err == nil {
		t.Error("zero DocRank accepted")
	}
	unfinalized := NewIndex()
	unfinalized.Add(0, []string{"a"})
	if _, err := NewSearchEngine(unfinalized, []float64{1}, 0.5); !errors.Is(err, ErrNotFinalized) {
		t.Errorf("err = %v, want ErrNotFinalized", err)
	}
}

func TestSyntheticCorpusSearch(t *testing.T) {
	cfg := webgen.Small()
	cfg.Seed = 21
	web := webgen.Generate(cfg)
	ix := SyntheticCorpus(web, 21)
	if ix.NumDocs() != web.Graph.NumDocs() {
		t.Fatalf("indexed %d of %d docs", ix.NumDocs(), web.Graph.NumDocs())
	}

	ranked, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	se, err := NewSearchEngine(ix, ranked.DocRank, 0.6)
	if err != nil {
		t.Fatalf("NewSearchEngine: %v", err)
	}
	// Query site 3's topic: all results must come from site 3 (only its
	// pages carry the topic term), with the home page first (highest
	// topic TF and the site's top local rank).
	res, err := se.Search([]string{"topic003"}, 5)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no hits for a site topic")
	}
	for _, r := range res {
		if web.Graph.SiteOf(r.Doc) != 3 {
			t.Errorf("hit %d from site %d, want 3", r.Doc, web.Graph.SiteOf(r.Doc))
		}
	}
	if web.Class[res[0].Doc] != webgen.ClassHome {
		t.Errorf("top hit class = %v, want home", web.Class[res[0].Doc])
	}
}

func TestFusionDemotesAgglomerates(t *testing.T) {
	// The future-work motivation: querying boilerplate terms matches
	// thousands of agglomerate pages; fusing with the layered DocRank
	// pushes the (locally popular) hub pages up and scatters the rest —
	// and crucially the link component is spam-resistant.
	cfg := webgen.Small()
	cfg.Seed = 22
	web := webgen.Generate(cfg)
	ix := SyntheticCorpus(web, 22)
	ranked, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	se, err := NewSearchEngine(ix, ranked.DocRank, 0.5)
	if err != nil {
		t.Fatalf("NewSearchEngine: %v", err)
	}
	res, err := se.Search([]string{"javadoc"}, 3)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no javadoc hits")
	}
	// All matches are agglomerate pages (only they carry the term), so
	// this just verifies the engine is usable on the degenerate case.
	for _, r := range res {
		if !web.Class[r.Doc].IsAgglomerate() {
			t.Errorf("non-agglomerate page matched javadoc: %v", web.Class[r.Doc])
		}
	}
}

// Property: cosine scores lie in [0, 1] and a document is never ranked
// above an identical document with strictly higher term frequency of the
// queried term.
func TestCosineBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewIndex()
		nDocs := rng.Intn(20) + 2
		vocab := []string{"a", "b", "c", "d", "e"}
		for d := 0; d < nDocs; d++ {
			n := rng.Intn(8) + 1
			terms := make([]string, n)
			for i := range terms {
				terms[i] = vocab[rng.Intn(len(vocab))]
			}
			ix.Add(graph.DocID(d), terms)
		}
		ix.Finalize()
		scores, err := ix.Query([]string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]})
		if err != nil {
			return false
		}
		for _, s := range scores {
			if s < -1e-12 || s > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
