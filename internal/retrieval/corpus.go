package retrieval

import (
	"fmt"
	"math/rand"

	"lmmrank/internal/graph"
	"lmmrank/internal/webgen"
)

// SyntheticCorpus assigns deterministic term vectors to every page of a
// generated campus web, so retrieval experiments have content to query:
//
//   - every page carries generic campus terms,
//   - each site has a topic; its pages carry the topic terms (the home
//     page most strongly),
//   - authority pages carry service terms named after their URL role,
//   - agglomerate pages carry only boilerplate terms (script chrome /
//     javadoc chrome), which is what makes them retrievable yet
//     uninformative — the reason link fusion matters.
func SyntheticCorpus(web *webgen.Web, seed int64) *Index {
	rng := rand.New(rand.NewSource(seed))
	ix := NewIndex()

	topicOf := make(map[graph.SiteID]string, web.Graph.NumSites())
	for s := range web.Graph.Sites {
		topicOf[graph.SiteID(s)] = fmt.Sprintf("topic%03d", s)
	}

	for d := range web.Graph.Docs {
		doc := graph.DocID(d)
		site := web.Graph.SiteOf(doc)
		topic := topicOf[site]
		var terms []string
		add := func(t string, n int) {
			for i := 0; i < n; i++ {
				terms = append(terms, t)
			}
		}
		add("campus", 1)
		add("university", 1)
		switch web.Class[d] {
		case webgen.ClassHome:
			add(topic, 5)
			add("welcome", 2)
			add("department", 2)
		case webgen.ClassAuthority:
			add(topic, 2)
			add("service", 3)
			add(fmt.Sprintf("service%d", rng.Intn(4)), 2)
		case webgen.ClassDynamicAgglomerate:
			add("database", 2)
			add("webdriver", 3)
			add("record", 2)
		case webgen.ClassDocAgglomerate:
			add("javadoc", 3)
			add("class", 2)
			add("method", 2)
		default:
			add(topic, 3)
			add(fmt.Sprintf("subject%02d", rng.Intn(30)), 2)
			add(fmt.Sprintf("subject%02d", rng.Intn(30)), 1)
		}
		ix.Add(doc, terms)
	}
	ix.Finalize()
	return ix
}
