package matrix

import (
	"math/rand"
	"testing"
)

// unfusedPowerLeft is the pre-optimization iteration — multiply,
// Normalize, L1Diff as three separate sweeps — kept as the reference the
// fused path must reproduce.
func unfusedPowerLeft(m LeftMultiplier, opts PowerOptions) (PowerResult, error) {
	n := m.Order()
	tol := opts.Tol
	if tol == 0 {
		tol = DefaultTol
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	var x Vector
	if opts.Start != nil {
		x = opts.Start.Clone().Normalize()
	} else {
		x = Uniform(n)
	}
	next := NewVector(n)
	res := PowerResult{}
	for it := 1; it <= maxIter; it++ {
		m.MulVecLeft(next, x)
		next.Normalize()
		res.Iterations = it
		res.Residual = next.L1Diff(x)
		x, next = next, x
		if res.Residual <= tol {
			res.Converged = true
			break
		}
	}
	res.Vector = x
	return res, nil
}

// serialOnly wraps a CSR, exposing only the unfused interface so
// PowerLeft takes its fallback path.
type serialOnly struct{ m *CSR }

func (s serialOnly) Order() int               { return s.m.Order() }
func (s serialOnly) MulVecLeft(dst, x Vector) { s.m.MulVecLeft(dst, x) }

func randomStochasticCSR(rng *rand.Rand, n int) *CSR {
	var triples []Triple
	for i := 0; i < n; i++ {
		deg := rng.Intn(4) + 1
		for d := 0; d < deg; d++ {
			triples = append(triples, Triple{Row: i, Col: rng.Intn(n), Val: rng.Float64() + 0.1})
		}
	}
	return NewCSR(n, triples).NormalizeRows()
}

// The fused path (sum from the sweep, normalize+residual in one pass)
// must reproduce the classic three-sweep iteration bitwise: the sum is
// accumulated in the same index order as Vector.Sum, and the per-element
// updates are algebraically identical operations in identical order.
func TestPowerLeftFusedMatchesUnfusedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40) + 2
		m := randomStochasticCSR(rng, n)
		fused, errF := PowerLeft(m, PowerOptions{Tol: 1e-10})
		ref, _ := unfusedPowerLeft(m, PowerOptions{Tol: 1e-10})
		if errF != nil {
			t.Fatalf("trial %d: fused: %v", trial, errF)
		}
		if fused.Iterations != ref.Iterations || fused.Residual != ref.Residual {
			t.Fatalf("trial %d: iterations/residual %d/%g vs %d/%g",
				trial, fused.Iterations, fused.Residual, ref.Iterations, ref.Residual)
		}
		for i := range fused.Vector {
			if fused.Vector[i] != ref.Vector[i] {
				t.Fatalf("trial %d: π[%d] = %g, reference %g", trial, i, fused.Vector[i], ref.Vector[i])
			}
		}
	}
}

// The fallback (non-fused) path must agree with the fused one too.
func TestPowerLeftFallbackMatchesFused(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randomStochasticCSR(rng, 30)
	fused, err1 := PowerLeft(m, PowerOptions{})
	plain, err2 := PowerLeft(serialOnly{m}, PowerOptions{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v, %v", err1, err2)
	}
	if fused.Vector.L1Diff(plain.Vector) != 0 {
		t.Errorf("fused vs fallback differ by %g", fused.Vector.L1Diff(plain.Vector))
	}
}

func TestPowerLeftScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomStochasticCSR(rng, 25)
	scratch := &PowerScratch{}
	first, err := PowerLeft(m, PowerOptions{Scratch: scratch})
	if err != nil {
		t.Fatal(err)
	}
	want := first.Vector.Clone()
	// Re-solving with the same scratch must reproduce the result and
	// alias a scratch buffer rather than allocating a fresh vector.
	second, err := PowerLeft(m, PowerOptions{Scratch: scratch})
	if err != nil {
		t.Fatal(err)
	}
	if second.Vector.L1Diff(want) != 0 {
		t.Errorf("re-solve differs by %g", second.Vector.L1Diff(want))
	}
	if &second.Vector[0] != &scratch.a[0] && &second.Vector[0] != &scratch.b[0] {
		t.Error("result does not alias scratch")
	}
	// Different order: scratch transparently regrows.
	m2 := randomStochasticCSR(rng, 40)
	if _, err := PowerLeft(m2, PowerOptions{Scratch: scratch}); err != nil {
		t.Fatal(err)
	}
}

// The headline budget: a steady-state PowerLeft solve with scratch on a
// fused operator allocates nothing at all.
func TestPowerLeftScratchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := randomStochasticCSR(rng, 64)
	scratch := &PowerScratch{}
	opts := PowerOptions{Scratch: scratch}
	if _, err := PowerLeft(m, opts); err != nil {
		t.Fatal(err)
	}
	var solveErr error
	allocs := testing.AllocsPerRun(20, func() {
		_, solveErr = PowerLeft(m, opts)
	})
	if solveErr != nil {
		t.Fatal(solveErr)
	}
	if allocs != 0 {
		t.Errorf("PowerLeft with scratch allocates %.1f per solve, want 0", allocs)
	}
}
