package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	v := Uniform(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 0.25 {
			t.Errorf("v[%d] = %g, want 0.25", i, x)
		}
	}
	if !v.IsDistribution(1e-12) {
		t.Error("uniform vector should be a distribution")
	}
}

func TestUniformPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(0) did not panic")
		}
	}()
	Uniform(0)
}

func TestBasis(t *testing.T) {
	v := Basis(3, 1)
	want := Vector{0, 1, 0}
	if v.L1Diff(want) != 0 {
		t.Errorf("Basis(3,1) = %v, want %v", v, want)
	}
}

func TestBasisPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Basis(3,3) did not panic")
		}
	}()
	Basis(3, 3)
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestSumDot(t *testing.T) {
	v := Vector{1, 2, 3}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %g, want 6", got)
	}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
}

func TestScaleAddScaledFill(t *testing.T) {
	v := Vector{1, 2}.Scale(2)
	if v[0] != 2 || v[1] != 4 {
		t.Errorf("Scale: got %v", v)
	}
	v.AddScaled(3, Vector{1, 1})
	if v[0] != 5 || v[1] != 7 {
		t.Errorf("AddScaled: got %v", v)
	}
	v.Fill(0.5)
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Errorf("Fill: got %v", v)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{2, 6}.Normalize()
	if math.Abs(v[0]-0.25) > 1e-15 || math.Abs(v[1]-0.75) > 1e-15 {
		t.Errorf("Normalize: got %v", v)
	}
}

func TestNormalizeZeroFallsBackToUniform(t *testing.T) {
	v := Vector{0, 0, 0, 0}.Normalize()
	for i, x := range v {
		if x != 0.25 {
			t.Errorf("v[%d] = %g, want 0.25", i, x)
		}
	}
}

func TestNormalizeNaNFallsBackToUniform(t *testing.T) {
	v := Vector{math.NaN(), 1}.Normalize()
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Errorf("got %v, want uniform", v)
	}
}

func TestL1AndMaxDiff(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{2, 0, 3}
	if got := v.L1Diff(w); got != 3 {
		t.Errorf("L1Diff = %g, want 3", got)
	}
	if got := v.MaxAbsDiff(w); got != 2 {
		t.Errorf("MaxAbsDiff = %g, want 2", got)
	}
}

func TestIsDistribution(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		want bool
	}{
		{"uniform", Uniform(5), true},
		{"empty", Vector{}, false},
		{"negative", Vector{-0.5, 1.5}, false},
		{"sum short", Vector{0.4, 0.4}, false},
		{"nan", Vector{math.NaN(), 1}, false},
		{"exact", Vector{0.25, 0.75}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.IsDistribution(1e-9); got != tt.want {
				t.Errorf("IsDistribution(%v) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestArgMax(t *testing.T) {
	v := Vector{0.1, 0.7, 0.7, 0.2}
	if got := v.ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{0.25, 0.75}
	if got := v.String(); got != "[0.2500 0.7500]" {
		t.Errorf("String = %q", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

// Property: Normalize always yields a distribution for random nonnegative
// non-degenerate input.
func TestNormalizeQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%64) + 1
		v := NewVector(size)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v.Normalize().IsDistribution(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: L1Diff is a metric — symmetric, zero on identity, triangle
// inequality.
func TestL1DiffMetricQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		a, b, c := NewVector(n), NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		if a.L1Diff(a) != 0 {
			return false
		}
		if math.Abs(a.L1Diff(b)-b.L1Diff(a)) > 1e-12 {
			return false
		}
		return a.L1Diff(c) <= a.L1Diff(b)+b.L1Diff(c)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
