package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("At wrong: %v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Errorf("I[%d][%d] = %g", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetRowAndRowView(t *testing.T) {
	m := NewDense(2, 3)
	m.SetRow(1, []float64{7, 8, 9})
	if m.At(1, 2) != 9 {
		t.Errorf("SetRow failed: %v", m)
	}
	// Row returns a live view.
	m.Row(1)[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("Row is not a live view")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows(), tr.Cols())
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("transpose wrong:\n%v", tr)
	}
}

func TestMulVecLeft(t *testing.T) {
	m := FromRows([][]float64{{0, 1}, {1, 0}})
	x := Vector{0.3, 0.7}
	dst := NewVector(2)
	m.MulVecLeft(dst, x)
	if math.Abs(dst[0]-0.7) > 1e-15 || math.Abs(dst[1]-0.3) > 1e-15 {
		t.Errorf("x'M = %v, want [0.7 0.3]", dst)
	}
}

func TestMulVecRight(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	dst := NewVector(2)
	m.MulVecRight(dst, Vector{1, 1})
	if dst[0] != 3 || dst[1] != 7 {
		t.Errorf("Mx = %v, want [3 7]", dst)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	if !c.Equal(want, 0) {
		t.Errorf("a·b =\n%v\nwant\n%v", c, want)
	}
}

func TestAddRankOne(t *testing.T) {
	// Mˆ = fM + (1−f)·e·v' — the PageRank maximal irreducibility form.
	m := FromRows([][]float64{{0, 1}, {1, 0}})
	f := 0.85
	v := Uniform(2)
	e := NewVector(2).Fill(1)
	got := m.Clone().Scale(f).AddRankOne(1-f, e, v)
	if !got.IsRowStochastic(1e-12) {
		t.Errorf("adjusted matrix not stochastic:\n%v", got)
	}
	if math.Abs(got.At(0, 0)-0.075) > 1e-12 || math.Abs(got.At(0, 1)-0.925) > 1e-12 {
		t.Errorf("adjusted row 0 = %v", got.Row(0))
	}
}

func TestIsRowStochastic(t *testing.T) {
	good := FromRows([][]float64{{0.5, 0.5}, {1, 0}})
	if !good.IsRowStochastic(1e-12) {
		t.Error("good matrix rejected")
	}
	bad := FromRows([][]float64{{0.5, 0.6}, {1, 0}})
	if bad.IsRowStochastic(1e-12) {
		t.Error("bad row sum accepted")
	}
	neg := FromRows([][]float64{{1.5, -0.5}, {1, 0}})
	if neg.IsRowStochastic(1e-12) {
		t.Error("negative entry accepted")
	}
	rect := NewDense(2, 3)
	if rect.IsRowStochastic(1e-12) {
		t.Error("non-square accepted")
	}
}

func TestNormalizeRowsAndZeroRows(t *testing.T) {
	m := FromRows([][]float64{{2, 2}, {0, 0}})
	m.NormalizeRows()
	if m.At(0, 0) != 0.5 {
		t.Errorf("row 0 not normalized: %v", m.Row(0))
	}
	zr := m.ZeroRows()
	if len(zr) != 1 || zr[0] != 1 {
		t.Errorf("ZeroRows = %v, want [1]", zr)
	}
}

func TestOrderPanicsOnRectangular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Order on rectangular matrix did not panic")
		}
	}()
	NewDense(2, 3).Order()
}

// randomStochastic builds a random dense row-stochastic matrix with
// strictly positive entries (hence primitive).
func randomStochastic(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.Float64() + 1e-3
		}
	}
	return m.NormalizeRows()
}

// Property: row-normalizing a random positive matrix yields a stochastic
// matrix, and left-multiplying any distribution by it preserves total mass.
func TestStochasticPreservesMassQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		m := randomStochastic(rng, n)
		if !m.IsRowStochastic(1e-9) {
			return false
		}
		x := NewVector(n)
		for i := range x {
			x[i] = rng.Float64()
		}
		x.Normalize()
		dst := NewVector(n)
		m.MulVecLeft(dst, x)
		return math.Abs(dst.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (x'A)B == x'(AB) for random matrices.
func TestMulAssociativityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		a := randomStochastic(rng, n)
		b := randomStochastic(rng, n)
		x := Uniform(n)
		// Left: (x'A)B
		t1 := NewVector(n)
		a.MulVecLeft(t1, x)
		left := NewVector(n)
		b.MulVecLeft(left, t1)
		// Right: x'(AB)
		ab := a.Mul(b)
		right := NewVector(n)
		ab.MulVecLeft(right, x)
		return left.L1Diff(right) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
