package matrix

import (
	"errors"
	"fmt"
)

// ErrNotConverged is returned (wrapped) when the power method exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNotConverged = errors.New("matrix: power method did not converge")

// Default iteration parameters. A damped web chain with f = 0.85 contracts
// by f per step, so 1e-10 tolerance needs ~140 iterations; 1000 leaves a
// wide margin for the undamped chains used by the Layered Method.
const (
	DefaultTol     = 1e-10
	DefaultMaxIter = 1000
)

// PowerOptions configures PowerLeft.
type PowerOptions struct {
	// Tol is the L1 convergence threshold between successive iterates.
	// Zero means DefaultTol.
	Tol float64
	// MaxIter bounds the number of iterations. Zero means DefaultMaxIter.
	MaxIter int
	// Start is the initial distribution; nil means uniform. It is not
	// mutated.
	Start Vector
}

// PowerResult reports the outcome of a power-method run.
type PowerResult struct {
	// Vector is the final iterate, a probability distribution when the
	// operator is stochastic.
	Vector Vector
	// Iterations is the number of multiplications performed.
	Iterations int
	// Converged reports whether Residual <= Tol was reached.
	Converged bool
	// Residual is the final L1 difference between successive iterates.
	Residual float64
}

// PowerLeft iterates x' ← x'M until the L1 change drops below tol,
// returning the (approximate) stationary distribution of a row-stochastic
// operator M. Each iterate is renormalized to guard against floating-point
// drift. When the budget is exhausted the best iterate is still returned
// along with an error wrapping ErrNotConverged.
//
// Convergence is guaranteed for primitive stochastic matrices
// (Perron–Frobenius); for merely irreducible periodic chains the iteration
// may oscillate and the caller should expect ErrNotConverged.
func PowerLeft(m LeftMultiplier, opts PowerOptions) (PowerResult, error) {
	n := m.Order()
	tol := opts.Tol
	if tol == 0 {
		tol = DefaultTol
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}

	var x Vector
	if opts.Start != nil {
		if len(opts.Start) != n {
			return PowerResult{}, fmt.Errorf("matrix: start vector length %d vs operator order %d", len(opts.Start), n)
		}
		x = opts.Start.Clone().Normalize()
	} else {
		x = Uniform(n)
	}

	next := NewVector(n)
	res := PowerResult{}
	for it := 1; it <= maxIter; it++ {
		m.MulVecLeft(next, x)
		next.Normalize()
		res.Iterations = it
		res.Residual = next.L1Diff(x)
		x, next = next, x
		if res.Residual <= tol {
			res.Converged = true
			break
		}
	}
	res.Vector = x
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations (residual %.3e, tol %.3e)",
			ErrNotConverged, res.Iterations, res.Residual, tol)
	}
	return res, nil
}
