package matrix

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrNotConverged is returned (wrapped) when the power method exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNotConverged = errors.New("matrix: power method did not converge")

// Default iteration parameters. A damped web chain with f = 0.85 contracts
// by f per step, so 1e-10 tolerance needs ~140 iterations; 1000 leaves a
// wide margin for the undamped chains used by the Layered Method.
const (
	DefaultTol     = 1e-10
	DefaultMaxIter = 1000
)

// FusedLeftMultiplier is a LeftMultiplier whose sweep also returns the
// sum of dst, accumulated in index order. PowerLeft exploits it to fold
// multiply, normalization and the L1 residual into two passes per
// iteration instead of four (multiply, sum, scale, diff).
type FusedLeftMultiplier interface {
	LeftMultiplier
	// MulVecLeftFused computes dst' = x'M and returns the sum of dst.
	MulVecLeftFused(dst, x Vector) float64
}

// PowerScratch holds the two iteration buffers of a PowerLeft run so
// repeated solves over same-order operators allocate nothing. The zero
// value is ready to use; buffers are (re)allocated on first use or when
// the operator order changes.
type PowerScratch struct {
	a, b Vector
}

// vectors returns the two length-n buffers, allocating only when the
// scratch is fresh or sized for a different order.
func (s *PowerScratch) vectors(n int) (x, next Vector) {
	if len(s.a) != n {
		s.a = NewVector(n)
		s.b = NewVector(n)
	}
	return s.a, s.b
}

// PowerOptions configures PowerLeft.
type PowerOptions struct {
	// Tol is the L1 convergence threshold between successive iterates.
	// Zero means DefaultTol.
	Tol float64
	// MaxIter bounds the number of iterations. Zero means DefaultMaxIter.
	MaxIter int
	// Start is the initial distribution; nil means uniform. It is not
	// mutated.
	Start Vector
	// Scratch, when non-nil, supplies reusable iteration buffers: the
	// run allocates nothing and the returned Vector aliases one of the
	// scratch buffers, remaining valid only until the scratch is used
	// again. Leave nil for an independently owned result.
	Scratch *PowerScratch
	// Ctx, when non-nil, makes the iteration cooperatively cancellable:
	// every iteration starts by checking Ctx.Err() and a cancelled or
	// expired context aborts the run, returning the context's error with
	// the best iterate so far. A nil Ctx never cancels.
	Ctx context.Context
}

// PowerResult reports the outcome of a power-method run.
type PowerResult struct {
	// Vector is the final iterate, a probability distribution when the
	// operator is stochastic. When PowerOptions.Scratch was set it
	// aliases a scratch buffer.
	Vector Vector
	// Iterations is the number of multiplications performed.
	Iterations int
	// Converged reports whether Residual <= Tol was reached.
	Converged bool
	// Residual is the final L1 difference between successive iterates.
	Residual float64
}

// PowerLeft iterates x' ← x'M until the L1 change drops below tol,
// returning the (approximate) stationary distribution of a row-stochastic
// operator M. Each iterate is renormalized to guard against floating-point
// drift. When the budget is exhausted the best iterate is still returned
// along with an error wrapping ErrNotConverged.
//
// Operators implementing FusedLeftMultiplier take the fused hot path:
// the multiply sweep reports the iterate sum, and one further pass
// normalizes and accumulates the residual — with PowerOptions.Scratch
// set, a steady-state iteration performs zero allocations.
//
// Convergence is guaranteed for primitive stochastic matrices
// (Perron–Frobenius); for merely irreducible periodic chains the iteration
// may oscillate and the caller should expect ErrNotConverged.
//
// With PowerOptions.Ctx set, a cancelled context aborts the run between
// iterations and the context's error is returned (the serving API's
// cooperative-cancellation hook).
func PowerLeft(m LeftMultiplier, opts PowerOptions) (PowerResult, error) {
	n := m.Order()
	tol := opts.Tol
	if tol == 0 {
		tol = DefaultTol
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = DefaultMaxIter
	}
	if opts.Start != nil && len(opts.Start) != n {
		return PowerResult{}, fmt.Errorf("matrix: start vector length %d vs operator order %d", len(opts.Start), n)
	}

	var x, next Vector
	if opts.Scratch != nil {
		x, next = opts.Scratch.vectors(n)
	} else {
		x, next = NewVector(n), NewVector(n)
	}
	if opts.Start != nil {
		copy(x, opts.Start)
		x.Normalize()
	} else {
		x.Fill(1.0 / float64(n))
	}

	fused, _ := m.(FusedLeftMultiplier)
	res := PowerResult{}
	for it := 1; it <= maxIter; it++ {
		if opts.Ctx != nil {
			// Ctx.Err is one atomic load on the stdlib contexts — cheap
			// enough to pay every iteration for mid-run cancellation.
			if err := opts.Ctx.Err(); err != nil {
				res.Vector = x
				return res, err
			}
		}
		if fused != nil {
			sum := fused.MulVecLeftFused(next, x)
			res.Residual = normalizeResidual(next, x, sum)
		} else {
			m.MulVecLeft(next, x)
			next.Normalize()
			res.Residual = next.L1Diff(x)
		}
		res.Iterations = it
		x, next = next, x
		if res.Residual <= tol {
			res.Converged = true
			break
		}
	}
	res.Vector = x
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations (residual %.3e, tol %.3e)",
			ErrNotConverged, res.Iterations, res.Residual, tol)
	}
	return res, nil
}

// normalizeResidual rescales next to sum to 1 using the sum the fused
// sweep already computed and accumulates the L1 distance to x in the same
// pass. Degenerate sums fall back to uniform, exactly like
// Vector.Normalize.
func normalizeResidual(next, x Vector, sum float64) float64 {
	var resid float64
	if sum == 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		p := 1.0 / float64(len(next))
		for i := range next {
			next[i] = p
			resid += math.Abs(p - x[i])
		}
		return resid
	}
	inv := 1.0 / sum
	for i := range next {
		next[i] *= inv
		resid += math.Abs(next[i] - x[i])
	}
	return resid
}
