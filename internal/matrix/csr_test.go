package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCSRBasic(t *testing.T) {
	m := NewCSR(3, []Triple{
		{0, 1, 0.5}, {0, 2, 0.5},
		{2, 0, 1},
	})
	if m.Order() != 3 {
		t.Fatalf("Order = %d", m.Order())
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 1) != 0.5 || m.At(2, 0) != 1 || m.At(1, 1) != 0 {
		t.Errorf("At wrong")
	}
	if m.RowNNZ(1) != 0 {
		t.Errorf("RowNNZ(1) = %d, want 0", m.RowNNZ(1))
	}
}

func TestNewCSRUnsortedAndDuplicates(t *testing.T) {
	m := NewCSR(2, []Triple{
		{1, 0, 2}, {0, 1, 1}, {1, 0, 3}, {0, 0, 4},
	})
	if m.At(1, 0) != 5 {
		t.Errorf("duplicate sum: At(1,0) = %g, want 5", m.At(1, 0))
	}
	if m.At(0, 0) != 4 || m.At(0, 1) != 1 {
		t.Errorf("row 0 wrong: %g %g", m.At(0, 0), m.At(0, 1))
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3 after dedupe", m.NNZ())
	}
}

func TestNewCSRPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range triple did not panic")
		}
	}()
	NewCSR(2, []Triple{{0, 2, 1}})
}

func TestCSRRowIteration(t *testing.T) {
	m := NewCSR(3, []Triple{{1, 2, 0.25}, {1, 0, 0.75}})
	var cols []int
	var vals []float64
	m.Row(1, func(c int, v float64) {
		cols = append(cols, c)
		vals = append(vals, v)
	})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Errorf("cols = %v, want [0 2] (column-sorted)", cols)
	}
	if vals[0] != 0.75 || vals[1] != 0.25 {
		t.Errorf("vals = %v", vals)
	}
}

func TestCSRMulVecLeftMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20
	var triples []Triple
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			triples = append(triples, Triple{i, rng.Intn(n), rng.Float64()})
		}
	}
	sp := NewCSR(n, triples)
	dn := sp.Dense()
	x := NewVector(n)
	for i := range x {
		x[i] = rng.Float64()
	}
	a, b := NewVector(n), NewVector(n)
	sp.MulVecLeft(a, x)
	dn.MulVecLeft(b, x)
	if a.L1Diff(b) > 1e-12 {
		t.Errorf("sparse vs dense mismatch: %g", a.L1Diff(b))
	}
}

func TestCSRNormalizeAndDangling(t *testing.T) {
	m := NewCSR(3, []Triple{{0, 1, 2}, {0, 2, 2}, {2, 0, 5}})
	if d := m.DanglingRows(); len(d) != 1 || d[0] != 1 {
		t.Errorf("DanglingRows = %v, want [1]", d)
	}
	m.NormalizeRows()
	if m.At(0, 1) != 0.5 || m.At(2, 0) != 1 {
		t.Errorf("normalize wrong: %v", m.Dense())
	}
	sums := m.RowSums()
	if sums[1] != 0 || math.Abs(sums[0]-1) > 1e-12 {
		t.Errorf("RowSums = %v", sums)
	}
}

func TestCSRIsRowStochastic(t *testing.T) {
	good := NewCSR(2, []Triple{{0, 0, 0.5}, {0, 1, 0.5}, {1, 0, 1}})
	if !good.IsRowStochastic(1e-12) {
		t.Error("good CSR rejected")
	}
	dangling := NewCSR(2, []Triple{{0, 0, 1}})
	if dangling.IsRowStochastic(1e-12) {
		t.Error("dangling row accepted as stochastic")
	}
}

func TestCSREmptyMatrix(t *testing.T) {
	m := NewCSR(4, nil)
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	x := Uniform(4)
	dst := NewVector(4)
	m.MulVecLeft(dst, x)
	if dst.Sum() != 0 {
		t.Errorf("zero matrix product = %v", dst)
	}
	if len(m.DanglingRows()) != 4 {
		t.Errorf("all rows should dangle")
	}
}

// Property: CSR construction agrees with a dense construction from the
// same random triples, for all operations we rely on.
func TestCSRAgreesWithDenseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		nTriples := rng.Intn(4 * n)
		triples := make([]Triple, 0, nTriples)
		dense := NewDense(n, n)
		for k := 0; k < nTriples; k++ {
			tr := Triple{rng.Intn(n), rng.Intn(n), rng.Float64()}
			triples = append(triples, tr)
			dense.Set(tr.Row, tr.Col, dense.At(tr.Row, tr.Col)+tr.Val)
		}
		sp := NewCSR(n, triples)
		if !sp.Dense().Equal(dense, 1e-12) {
			return false
		}
		x := NewVector(n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		a, b := NewVector(n), NewVector(n)
		sp.MulVecLeft(a, x)
		dense.MulVecLeft(b, x)
		return a.L1Diff(b) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
