package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPowerLeftTwoState(t *testing.T) {
	// Chain with known stationary distribution (2/3, 1/3):
	// P = [[0.5 0.5],[1 0]]  ⇒  π = (2/3, 1/3).
	m := FromRows([][]float64{{0.5, 0.5}, {1, 0}})
	res, err := PowerLeft(m, PowerOptions{})
	if err != nil {
		t.Fatalf("PowerLeft: %v", err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	want := Vector{2.0 / 3, 1.0 / 3}
	if res.Vector.L1Diff(want) > 1e-8 {
		t.Errorf("π = %v, want %v", res.Vector, want)
	}
}

func TestPowerLeftMatchesExactSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomStochastic(rng, 8)
	res, err := PowerLeft(m, PowerOptions{})
	if err != nil {
		t.Fatalf("PowerLeft: %v", err)
	}
	exact, err := StationaryExact(m)
	if err != nil {
		t.Fatalf("StationaryExact: %v", err)
	}
	if res.Vector.L1Diff(exact) > 1e-8 {
		t.Errorf("power %v vs exact %v", res.Vector, exact)
	}
}

func TestPowerLeftPeriodicDoesNotConverge(t *testing.T) {
	// Pure 2-cycle is periodic; power iteration started off-stationary
	// oscillates forever.
	m := FromRows([][]float64{{0, 1}, {1, 0}})
	_, err := PowerLeft(m, PowerOptions{MaxIter: 50, Start: Vector{0.9, 0.1}})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestPowerLeftStartVector(t *testing.T) {
	m := FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	res, err := PowerLeft(m, PowerOptions{Start: Vector{1, 0}})
	if err != nil {
		t.Fatalf("PowerLeft: %v", err)
	}
	if res.Vector.L1Diff(Vector{0.5, 0.5}) > 1e-12 {
		t.Errorf("π = %v", res.Vector)
	}
	if res.Iterations != 2 {
		t.Errorf("Iterations = %d, want 2 (step 1 reaches uniform, step 2 detects the fixed point)", res.Iterations)
	}
}

func TestPowerLeftStartLengthMismatch(t *testing.T) {
	m := Identity(3)
	if _, err := PowerLeft(m, PowerOptions{Start: Vector{1, 0}}); err == nil {
		t.Fatal("expected error on start-vector length mismatch")
	}
}

func TestPowerLeftStartNotMutated(t *testing.T) {
	m := FromRows([][]float64{{0.5, 0.5}, {1, 0}})
	start := Vector{3, 1} // deliberately unnormalized
	if _, err := PowerLeft(m, PowerOptions{Start: start}); err != nil {
		t.Fatalf("PowerLeft: %v", err)
	}
	if start[0] != 3 || start[1] != 1 {
		t.Errorf("start vector mutated: %v", start)
	}
}

func TestPowerLeftIdentityConvergesImmediately(t *testing.T) {
	res, err := PowerLeft(Identity(5), PowerOptions{})
	if err != nil {
		t.Fatalf("PowerLeft: %v", err)
	}
	if res.Iterations != 1 || !res.Converged {
		t.Errorf("iterations = %d, converged = %v", res.Iterations, res.Converged)
	}
}

// Property: for random primitive stochastic matrices, the power method
// converges to a distribution that is fixed under the chain.
func TestPowerLeftFixedPointQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		m := randomStochastic(rng, n) // strictly positive ⇒ primitive
		res, err := PowerLeft(m, PowerOptions{})
		if err != nil || !res.Vector.IsDistribution(1e-8) {
			return false
		}
		next := NewVector(n)
		m.MulVecLeft(next, res.Vector)
		return next.L1Diff(res.Vector) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the stationary distribution is independent of the start vector
// for primitive chains.
func TestPowerLeftStartIndependenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		m := randomStochastic(rng, n)
		a, errA := PowerLeft(m, PowerOptions{})
		start := NewVector(n)
		for i := range start {
			start[i] = rng.Float64() + 0.01
		}
		b, errB := PowerLeft(m, PowerOptions{Start: start})
		if errA != nil || errB != nil {
			return false
		}
		return a.Vector.L1Diff(b.Vector) < 1e-7
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPowerLeftResidualReported(t *testing.T) {
	m := FromRows([][]float64{{0.9, 0.1}, {0.1, 0.9}})
	res, err := PowerLeft(m, PowerOptions{Tol: 1e-12, MaxIter: 500})
	if err != nil {
		t.Fatalf("PowerLeft: %v", err)
	}
	if res.Residual > 1e-12 {
		t.Errorf("residual %g above tol", res.Residual)
	}
	if math.IsNaN(res.Residual) {
		t.Error("NaN residual")
	}
}
