package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsIrreducible(t *testing.T) {
	tests := []struct {
		name string
		m    *Dense
		want bool
	}{
		{
			"two-cycle",
			FromRows([][]float64{{0, 1}, {1, 0}}),
			true,
		},
		{
			"absorbing state",
			FromRows([][]float64{{0.5, 0.5}, {0, 1}}),
			false,
		},
		{
			"single state",
			FromRows([][]float64{{1}}),
			true,
		},
		{
			"positive 3x3",
			FromRows([][]float64{{0.2, 0.4, 0.4}, {0.3, 0.3, 0.4}, {0.5, 0.25, 0.25}}),
			true,
		},
		{
			"two blocks",
			FromRows([][]float64{
				{0, 1, 0, 0},
				{1, 0, 0, 0},
				{0, 0, 0, 1},
				{0, 0, 1, 0},
			}),
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsIrreducible(tt.m); got != tt.want {
				t.Errorf("IsIrreducible = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStrongComponents(t *testing.T) {
	// 0↔1 one SCC, 2 alone (sink), 3 alone pointing into the first SCC.
	m := FromRows([][]float64{
		{0, 1, 0, 0},
		{1, 0, 1, 0},
		{0, 0, 0, 0},
		{1, 0, 0, 0},
	})
	comp, n := StrongComponents(m)
	if n != 3 {
		t.Fatalf("component count = %d, want 3", n)
	}
	if comp[0] != comp[1] {
		t.Errorf("0 and 1 should share a component: %v", comp)
	}
	if comp[2] == comp[0] || comp[3] == comp[0] || comp[2] == comp[3] {
		t.Errorf("2 and 3 should be singleton components: %v", comp)
	}
}

func TestPeriod(t *testing.T) {
	tests := []struct {
		name string
		m    *Dense
		want int
	}{
		{"two-cycle", FromRows([][]float64{{0, 1}, {1, 0}}), 2},
		{
			"three-cycle",
			FromRows([][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}),
			3,
		},
		{
			"self-loop breaks periodicity",
			FromRows([][]float64{{0.5, 0.5}, {1, 0}}),
			1,
		},
		{
			"paper Y is aperiodic",
			FromRows([][]float64{{0.1, 0.3, 0.6}, {0.2, 0.4, 0.4}, {0.3, 0.5, 0.2}}),
			1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Period(tt.m); got != tt.want {
				t.Errorf("Period = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestIsPrimitive(t *testing.T) {
	if IsPrimitive(FromRows([][]float64{{0, 1}, {1, 0}})) {
		t.Error("periodic chain reported primitive")
	}
	if !IsPrimitive(FromRows([][]float64{{0.5, 0.5}, {1, 0}})) {
		t.Error("aperiodic irreducible chain not primitive")
	}
	if IsPrimitive(FromRows([][]float64{{0.5, 0.5}, {0, 1}})) {
		t.Error("reducible chain reported primitive")
	}
}

func TestIsPositive(t *testing.T) {
	if !FromRows([][]float64{{0.1, 0.9}, {0.4, 0.6}}).IsPositive() {
		t.Error("positive matrix rejected")
	}
	if FromRows([][]float64{{0, 1}, {1, 0}}).IsPositive() {
		t.Error("matrix with zero accepted")
	}
}

func TestChecksOnCSR(t *testing.T) {
	cyc := NewCSR(3, []Triple{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}})
	if !IsIrreducible(cyc) {
		t.Error("3-cycle CSR should be irreducible")
	}
	if Period(cyc) != 3 {
		t.Errorf("Period = %d, want 3", Period(cyc))
	}
	if IsPrimitive(cyc) {
		t.Error("3-cycle is not primitive")
	}
}

// Property: a strictly positive random matrix is always primitive
// (positive ⇒ irreducible & aperiodic).
func TestPositiveImpliesPrimitiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		m := randomStochastic(rng, n)
		return m.IsPositive() && IsPrimitive(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: primitivity verdicts agree between Dense and CSR views of the
// same random sparse pattern.
func TestPrimitivityDenseCSRAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		var triples []Triple
		for i := 0; i < n; i++ {
			deg := rng.Intn(3) + 1
			for k := 0; k < deg; k++ {
				triples = append(triples, Triple{i, rng.Intn(n), 1})
			}
		}
		sp := NewCSR(n, triples)
		dn := sp.Dense()
		if IsIrreducible(sp) != IsIrreducible(dn) {
			return false
		}
		if IsIrreducible(sp) && Period(sp) != Period(dn) {
			return false
		}
		return IsPrimitive(sp) == IsPrimitive(dn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSCCAgainstBruteForceQuick cross-checks Tarjan against the
// definition: i and j share a component iff each reaches the other.
func TestSCCAgainstBruteForceQuick(t *testing.T) {
	reachable := func(m Sparsity, from int) []bool {
		n := m.Order()
		seen := make([]bool, n)
		stack := []int{from}
		seen[from] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			m.EachNonZero(u, func(v int) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			})
		}
		return seen
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(9) + 2
		var triples []Triple
		for e := rng.Intn(3 * n); e > 0; e-- {
			triples = append(triples, Triple{rng.Intn(n), rng.Intn(n), 1})
		}
		m := NewCSR(n, triples)
		comp, _ := StrongComponents(m)
		reach := make([][]bool, n)
		for i := 0; i < n; i++ {
			reach[i] = reachable(m, i)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				same := reach[i][j] && reach[j][i]
				if (comp[i] == comp[j]) != same {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
