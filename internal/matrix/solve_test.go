package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  ⇒  x = 1, y = 3.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, Vector{5, 10})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if x.L1Diff(Vector{1, 3}) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, Vector{2, 3})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if x.L1Diff(Vector{3, 2}) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, Vector{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearDoesNotMutateInputs(t *testing.T) {
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	b := Vector{2, 3}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if a.At(0, 0) != 0 || a.At(0, 1) != 1 || b[0] != 2 {
		t.Error("SolveLinear mutated its inputs")
	}
}

func TestStationaryExactTwoState(t *testing.T) {
	m := FromRows([][]float64{{0.5, 0.5}, {1, 0}})
	pi, err := StationaryExact(m)
	if err != nil {
		t.Fatalf("StationaryExact: %v", err)
	}
	if pi.L1Diff(Vector{2.0 / 3, 1.0 / 3}) > 1e-12 {
		t.Errorf("π = %v", pi)
	}
}

func TestStationaryExactPaperPhaseMatrix(t *testing.T) {
	// The paper's Y (§2.3) with published π̃Y = (0.2154, 0.4154, 0.3692).
	y := FromRows([][]float64{
		{0.1, 0.3, 0.6},
		{0.2, 0.4, 0.4},
		{0.3, 0.5, 0.2},
	})
	pi, err := StationaryExact(y)
	if err != nil {
		t.Fatalf("StationaryExact: %v", err)
	}
	want := Vector{0.2154, 0.4154, 0.3692}
	if pi.L1Diff(want) > 5e-4 {
		t.Errorf("π̃Y = %v, want ≈ %v (paper)", pi, want)
	}
}

func TestStationaryExactReducible(t *testing.T) {
	// Two disconnected recurrent classes: stationary distribution is not
	// unique, so the solve must fail.
	m := FromRows([][]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	})
	if _, err := StationaryExact(m); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestStationaryExactPeriodicChain(t *testing.T) {
	// Periodic but irreducible: stationary distribution exists and is
	// unique even though the power method would not converge.
	m := FromRows([][]float64{{0, 1}, {1, 0}})
	pi, err := StationaryExact(m)
	if err != nil {
		t.Fatalf("StationaryExact: %v", err)
	}
	if pi.L1Diff(Vector{0.5, 0.5}) > 1e-12 {
		t.Errorf("π = %v, want uniform", pi)
	}
}

// Property: StationaryExact returns a fixed point of random primitive
// chains and agrees with the power method.
func TestStationaryExactQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		m := randomStochastic(rng, n)
		exact, err := StationaryExact(m)
		if err != nil || !exact.IsDistribution(1e-9) {
			return false
		}
		next := NewVector(n)
		m.MulVecLeft(next, exact)
		return next.L1Diff(exact) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: SolveLinear solves random well-conditioned systems: A·x = b
// round-trips.
func TestSolveLinearQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := NewVector(n)
		a.Transpose().MulVecLeft(b, want) // b = A·want
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		return got.L1Diff(want) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
