// Package matrix provides the dense and sparse stochastic-matrix kernels
// used throughout lmmrank: probability vectors, row-stochastic matrices,
// the power method, exact stationary solves, and structural checks
// (irreducibility, period, primitivity).
//
// Conventions: all Markov matrices are row-stochastic, i.e. row i holds the
// outgoing transition probabilities of state i, and stationary distributions
// are row vectors computed from left-multiplication y' = x'M. Dimension
// mismatches are programmer errors and panic; data-dependent failures
// (non-convergence, reducible chains) are returned as errors.
package matrix

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Vector is a dense float64 vector. A Vector holding a probability
// distribution is nonnegative and sums to 1 (within floating-point error).
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Uniform returns the uniform probability distribution over n states.
// It panics if n <= 0.
func Uniform(n int) Vector {
	if n <= 0 {
		panic(fmt.Sprintf("matrix: Uniform of non-positive length %d", n))
	}
	v := make(Vector, n)
	p := 1.0 / float64(n)
	for i := range v {
		v[i] = p
	}
	return v
}

// Basis returns the length-n probability vector with all mass on state i.
func Basis(n, i int) Vector {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("matrix: Basis index %d out of range [0,%d)", i, n))
	}
	v := make(Vector, n)
	v[i] = 1
	return v
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Sum returns the sum of all elements.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Scale multiplies every element by c in place and returns v.
func (v Vector) Scale(c float64) Vector {
	for i := range v {
		v[i] *= c
	}
	return v
}

// AddScaled adds c*w to v in place and returns v. It panics if lengths
// differ.
func (v Vector) AddScaled(c float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += c * w[i]
	}
	return v
}

// Fill sets every element to c and returns v.
func (v Vector) Fill(c float64) Vector {
	for i := range v {
		v[i] = c
	}
	return v
}

// Normalize rescales v in place so that it sums to 1 and returns v.
// If the sum is zero (or not finite) the vector is reset to uniform.
func (v Vector) Normalize() Vector {
	s := v.Sum()
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		p := 1.0 / float64(len(v))
		for i := range v {
			v[i] = p
		}
		return v
	}
	inv := 1.0 / s
	for i := range v {
		v[i] *= inv
	}
	return v
}

// L1Diff returns the L1 distance between v and w. It panics if lengths
// differ.
func (v Vector) L1Diff(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: L1Diff length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += math.Abs(x - w[i])
	}
	return s
}

// MaxAbsDiff returns the L∞ distance between v and w. It panics if lengths
// differ.
func (v Vector) MaxAbsDiff(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matrix: MaxAbsDiff length mismatch %d vs %d", len(v), len(w)))
	}
	var m float64
	for i, x := range v {
		if d := math.Abs(x - w[i]); d > m {
			m = d
		}
	}
	return m
}

// IsDistribution reports whether v is a probability distribution: every
// element nonnegative (within -tol) and the total within tol of 1.
func (v Vector) IsDistribution(tol float64) bool {
	if len(v) == 0 {
		return false
	}
	for _, x := range v {
		if x < -tol || math.IsNaN(x) {
			return false
		}
	}
	return math.Abs(v.Sum()-1) <= tol
}

// ArgMax returns the index of the largest element (ties broken by lowest
// index). It panics on an empty vector.
func (v Vector) ArgMax() int {
	if len(v) == 0 {
		panic("matrix: ArgMax of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// String renders the vector with 4 decimal places, matching the precision
// the paper uses in its published vectors.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(x, 'f', 4, 64))
	}
	b.WriteByte(']')
	return b.String()
}
