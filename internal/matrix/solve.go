package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned (wrapped) when a linear system has no unique
// solution, e.g. when asking for the exact stationary distribution of a
// reducible chain.
var ErrSingular = errors.New("matrix: singular system")

// StationaryExact computes the stationary distribution π of a
// row-stochastic matrix M by direct linear solve: π'M = π', Σπ = 1.
// It is exact up to floating point (no iteration), intended for small
// matrices such as the paper's phase matrix Y; cost is O(n³).
//
// For chains with multiple recurrent classes the system is singular and an
// error wrapping ErrSingular is returned.
func StationaryExact(m *Dense) (Vector, error) {
	n := m.Order()
	// Build A = (M' − I) with the last row replaced by the normalization
	// constraint Σπ = 1, and solve A·π = b with b = (0,…,0,1)'.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, m.At(j, i))
		}
		a.Set(i, i, a.At(i, i)-1)
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := NewVector(n)
	b[n-1] = 1

	pi, err := SolveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("stationary solve: %w", err)
	}
	// Clamp tiny negatives produced by rounding, then renormalize.
	for i, v := range pi {
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("stationary solve: negative mass %g at state %d: %w", v, i, ErrSingular)
			}
			pi[i] = 0
		}
	}
	return pi.Normalize(), nil
}

// SolveLinear solves the dense linear system A·x = b by Gaussian
// elimination with partial pivoting. A and b are not modified. It returns
// an error wrapping ErrSingular when no unique solution exists.
func SolveLinear(a *Dense, b Vector) (Vector, error) {
	n := a.Order()
	if len(b) != n {
		panic(fmt.Sprintf("matrix: SolveLinear b length %d vs order %d", len(b), n))
	}
	// Augmented working copy.
	w := a.Clone()
	x := b.Clone()

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("pivot %d is %.3e: %w", col, best, ErrSingular)
		}
		if pivot != col {
			swapRows(w, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		// Eliminate below.
		pv := w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) / pv
			if f == 0 {
				continue
			}
			wr := w.Row(r)
			wc := w.Row(col)
			for j := col; j < n; j++ {
				wr[j] -= f * wc[j]
			}
			x[r] -= f * x[col]
		}
	}

	// Back substitution.
	out := NewVector(n)
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		row := w.Row(r)
		for j := r + 1; j < n; j++ {
			s -= row[j] * out[j]
		}
		out[r] = s / row[r]
	}
	return out, nil
}

func swapRows(m *Dense, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
