package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Triple is one (row, col, value) entry used to build a CSR matrix.
type Triple struct {
	Row, Col int
	Val      float64
}

// CSR is a square sparse matrix in compressed-sparse-row form. It is the
// workhorse representation for web-scale transition matrices, where each
// row holds the out-link probabilities of one document.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	val    []float64
}

var _ LeftMultiplier = (*CSR)(nil)

// NewCSR builds an n×n CSR matrix from triples. Duplicate (row, col)
// entries are summed. Triples need not be sorted. It panics on
// out-of-range indices or non-positive n.
func NewCSR(n int, triples []Triple) *CSR {
	if n <= 0 {
		panic(fmt.Sprintf("matrix: NewCSR with non-positive order %d", n))
	}
	for _, t := range triples {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			panic(fmt.Sprintf("matrix: NewCSR triple (%d,%d) out of order %d", t.Row, t.Col, n))
		}
	}

	// Pass 1: count entries per row and build row pointers.
	counts := make([]int, n+1)
	for _, t := range triples {
		counts[t.Row+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}

	// Pass 2: scatter into place.
	colIdx := make([]int, len(triples))
	val := make([]float64, len(triples))
	next := make([]int, n)
	copy(next, counts[:n])
	for _, t := range triples {
		k := next[t.Row]
		colIdx[k] = t.Col
		val[k] = t.Val
		next[t.Row]++
	}

	m := &CSR{n: n, rowPtr: counts, colIdx: colIdx, val: val}
	m.sortAndDedupeRows()
	return m
}

// sortAndDedupeRows sorts every row by column and merges duplicates by
// summing their values, compacting storage in place.
func (m *CSR) sortAndDedupeRows() {
	w := 0 // write cursor into compacted storage
	newPtr := make([]int, m.n+1)
	for i := 0; i < m.n; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		row := rowEntries{cols: m.colIdx[lo:hi], vals: m.val[lo:hi]}
		sort.Sort(row)
		start := w
		for k := 0; k < len(row.cols); k++ {
			if w > start && m.colIdx[w-1] == row.cols[k] {
				m.val[w-1] += row.vals[k]
				continue
			}
			m.colIdx[w] = row.cols[k]
			m.val[w] = row.vals[k]
			w++
		}
		newPtr[i+1] = w
	}
	m.rowPtr = newPtr
	m.colIdx = m.colIdx[:w]
	m.val = m.val[:w]
}

// rowEntries sorts a row's (col, val) pairs by column.
type rowEntries struct {
	cols []int
	vals []float64
}

func (r rowEntries) Len() int           { return len(r.cols) }
func (r rowEntries) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowEntries) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// Order returns the dimension n.
func (m *CSR) Order() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int {
	return m.rowPtr[i+1] - m.rowPtr[i]
}

// Row calls fn(col, val) for each stored entry of row i in column order.
func (m *CSR) Row(i int, fn func(col int, val float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.val[k])
	}
}

// At returns element (i, j), zero when the entry is not stored.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("matrix: CSR index (%d,%d) out of %d", i, j, m.n))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// MulVecLeft computes dst' = x'M.
func (m *CSR) MulVecLeft(dst, x Vector) {
	if len(x) != m.n || len(dst) != m.n {
		panic(fmt.Sprintf("matrix: CSR MulVecLeft lengths %d,%d vs order %d", len(x), len(dst), m.n))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += xi * m.val[k]
		}
	}
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() Vector {
	sums := NewVector(m.n)
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		sums[i] = s
	}
	return sums
}

// NormalizeRows rescales each row to sum to 1 in place and returns m.
// Zero rows (dangling states) are left untouched.
func (m *CSR) NormalizeRows() *CSR {
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		if s == 0 {
			continue
		}
		inv := 1.0 / s
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			m.val[k] *= inv
		}
	}
	return m
}

// DanglingRows returns the indices of rows with zero sum (no out-links).
func (m *CSR) DanglingRows() []int {
	var out []int
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		if s == 0 {
			out = append(out, i)
		}
	}
	return out
}

// IsRowStochastic reports whether every row is nonnegative and sums to 1
// within tol.
func (m *CSR) IsRowStochastic(tol float64) bool {
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			v := m.val[k]
			if v < -tol || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// Dense converts m to a dense matrix (for tests and small examples).
func (m *CSR) Dense() *Dense {
	out := NewDense(m.n, m.n)
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out.Set(i, m.colIdx[k], m.val[k])
		}
	}
	return out
}
