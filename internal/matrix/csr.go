package matrix

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Triple is one (row, col, value) entry used to build a CSR matrix.
type Triple struct {
	Row, Col int
	Val      float64
}

// CSR is a square sparse matrix in compressed-sparse-row form. It is the
// workhorse representation for web-scale transition matrices, where each
// row holds the out-link probabilities of one document.
//
// Construction also builds the transpose (CSC) view once, so repeated
// left-multiplications run pull-based: every destination entry dst[j] is
// owned by exactly one loop iteration, which removes all write contention
// and lets MulVecLeft shard the destination range across GOMAXPROCS.
// Within each column the source rows are stored in ascending order, so
// the pull accumulation visits contributions in the same order as the
// classical push-based sweep and reproduces its floating-point results.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	val    []float64

	// Transpose view: column j's incoming entries are
	// rowIdx[colPtr[j]:colPtr[j+1]] / cval[...], rows ascending.
	colPtr []int
	rowIdx []int
	cval   []float64
}

var _ LeftMultiplier = (*CSR)(nil)
var _ FusedLeftMultiplier = (*CSR)(nil)

// Parallel-dispatch thresholds: below minParallelNNZ stored entries a
// multiply is cheaper than the goroutine handoff; maxShards bounds the
// fan-out of one multiply regardless of GOMAXPROCS.
const (
	minParallelNNZ = 1 << 14
	maxShards      = 64
)

// NewCSR builds an n×n CSR matrix from triples. Duplicate (row, col)
// entries are summed. Triples need not be sorted. It panics on
// out-of-range indices or non-positive n.
func NewCSR(n int, triples []Triple) *CSR {
	if n <= 0 {
		panic(fmt.Sprintf("matrix: NewCSR with non-positive order %d", n))
	}
	for _, t := range triples {
		if t.Row < 0 || t.Row >= n || t.Col < 0 || t.Col >= n {
			panic(fmt.Sprintf("matrix: NewCSR triple (%d,%d) out of order %d", t.Row, t.Col, n))
		}
	}

	// Pass 1: count entries per row and build row pointers.
	counts := make([]int, n+1)
	for _, t := range triples {
		counts[t.Row+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}

	// Pass 2: scatter into place.
	colIdx := make([]int, len(triples))
	val := make([]float64, len(triples))
	next := make([]int, n)
	copy(next, counts[:n])
	for _, t := range triples {
		k := next[t.Row]
		colIdx[k] = t.Col
		val[k] = t.Val
		next[t.Row]++
	}

	m := &CSR{n: n, rowPtr: counts, colIdx: colIdx, val: val}
	m.sortAndDedupeRows()
	m.buildTranspose()
	return m
}

// NewCSRFromSorted builds a CSR matrix directly from prebuilt row-pointer
// and entry slices, taking ownership of them. Rows must hold strictly
// increasing, in-range columns — the form adjacency lists already have
// after graph.Digraph.Dedupe — so the triple round-trip, per-row sort and
// dedupe of NewCSR are all skipped. It panics on malformed input.
func NewCSRFromSorted(n int, rowPtr, colIdx []int, val []float64) *CSR {
	if n <= 0 {
		panic(fmt.Sprintf("matrix: NewCSRFromSorted with non-positive order %d", n))
	}
	if len(rowPtr) != n+1 || rowPtr[0] != 0 || rowPtr[n] != len(colIdx) || len(colIdx) != len(val) {
		panic(fmt.Sprintf("matrix: NewCSRFromSorted inconsistent shape (n=%d, ptrs=%d, cols=%d, vals=%d)",
			n, len(rowPtr), len(colIdx), len(val)))
	}
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		if lo > hi {
			panic(fmt.Sprintf("matrix: NewCSRFromSorted row %d has negative extent", i))
		}
		for k := lo; k < hi; k++ {
			if colIdx[k] < 0 || colIdx[k] >= n {
				panic(fmt.Sprintf("matrix: NewCSRFromSorted column %d out of order %d", colIdx[k], n))
			}
			if k > lo && colIdx[k] <= colIdx[k-1] {
				panic(fmt.Sprintf("matrix: NewCSRFromSorted row %d not strictly sorted at entry %d", i, k))
			}
		}
	}
	m := &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, val: val}
	m.buildTranspose()
	return m
}

// sortAndDedupeRows sorts every row by column and merges duplicates by
// summing their values, compacting storage in place.
func (m *CSR) sortAndDedupeRows() {
	w := 0 // write cursor into compacted storage
	newPtr := make([]int, m.n+1)
	for i := 0; i < m.n; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		cols, vals := m.colIdx[lo:hi], m.val[lo:hi]
		sortPairs(cols, vals)
		start := w
		for k := 0; k < len(cols); k++ {
			if w > start && m.colIdx[w-1] == cols[k] {
				m.val[w-1] += vals[k]
				continue
			}
			m.colIdx[w] = cols[k]
			m.val[w] = vals[k]
			w++
		}
		newPtr[i+1] = w
	}
	m.rowPtr = newPtr
	m.colIdx = m.colIdx[:w]
	m.val = m.val[:w]
}

// sortPairs sorts the parallel (cols, vals) slices by column without the
// sort.Interface indirection: insertion sort for the short rows typical
// of web graphs, three-way (fat-pivot) quicksort above that so the
// duplicate-heavy rows NewCSR explicitly accepts stay O(n·log n) — a
// run of equal columns lands in the middle partition in one pass.
func sortPairs(cols []int, vals []float64) {
	for len(cols) > 24 {
		// Median-of-three pivot.
		mid, last := len(cols)/2, len(cols)-1
		if cols[mid] < cols[0] {
			cols[mid], cols[0] = cols[0], cols[mid]
			vals[mid], vals[0] = vals[0], vals[mid]
		}
		if cols[last] < cols[0] {
			cols[last], cols[0] = cols[0], cols[last]
			vals[last], vals[0] = vals[0], vals[last]
		}
		if cols[last] < cols[mid] {
			cols[mid], cols[last] = cols[last], cols[mid]
			vals[mid], vals[last] = vals[last], vals[mid]
		}
		pivot := cols[mid]
		// Dutch-flag partition: [0,lt) < pivot, [lt,i) == pivot,
		// (gt,len) > pivot.
		lt, i, gt := 0, 0, len(cols)-1
		for i <= gt {
			switch {
			case cols[i] < pivot:
				cols[i], cols[lt] = cols[lt], cols[i]
				vals[i], vals[lt] = vals[lt], vals[i]
				lt++
				i++
			case cols[i] > pivot:
				cols[i], cols[gt] = cols[gt], cols[i]
				vals[i], vals[gt] = vals[gt], vals[i]
				gt--
			default:
				i++
			}
		}
		// Recurse on the smaller side, loop on the larger.
		if lt < len(cols)-gt-1 {
			sortPairs(cols[:lt], vals[:lt])
			cols, vals = cols[gt+1:], vals[gt+1:]
		} else {
			sortPairs(cols[gt+1:], vals[gt+1:])
			cols, vals = cols[:lt], vals[:lt]
		}
	}
	for k := 1; k < len(cols); k++ {
		c, v := cols[k], vals[k]
		j := k - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// buildTranspose derives the CSC view from the finalized rows. Scanning
// rows in ascending order keeps each column's source rows ascending.
func (m *CSR) buildTranspose() {
	m.colPtr = make([]int, m.n+1)
	for _, j := range m.colIdx {
		m.colPtr[j+1]++
	}
	for j := 0; j < m.n; j++ {
		m.colPtr[j+1] += m.colPtr[j]
	}
	m.rowIdx = make([]int, len(m.colIdx))
	m.cval = make([]float64, len(m.val))
	next := make([]int, m.n)
	copy(next, m.colPtr[:m.n])
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			p := next[j]
			m.rowIdx[p] = i
			m.cval[p] = m.val[k]
			next[j]++
		}
	}
}

// Order returns the dimension n.
func (m *CSR) Order() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int {
	return m.rowPtr[i+1] - m.rowPtr[i]
}

// Row calls fn(col, val) for each stored entry of row i in column order.
func (m *CSR) Row(i int, fn func(col int, val float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.val[k])
	}
}

// At returns element (i, j), zero when the entry is not stored.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		panic(fmt.Sprintf("matrix: CSR index (%d,%d) out of %d", i, j, m.n))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// MulVecLeft computes dst' = x'M.
func (m *CSR) MulVecLeft(dst, x Vector) {
	m.checkMulShape(dst, x)
	m.pullApply(dst, x, 1, 0, nil)
}

// MulVecLeftFused computes dst' = x'M and returns the sum of dst,
// accumulated in index order during the same sweep. Implements
// FusedLeftMultiplier, letting the power method normalize without an
// extra pass.
func (m *CSR) MulVecLeftFused(dst, x Vector) float64 {
	m.checkMulShape(dst, x)
	return m.pullApply(dst, x, 1, 0, nil)
}

// MulVecLeftDamped computes the damped-chain sweep used by PageRank
// operators in one pass:
//
//	dst[j] = f·(x'M)[j] + coeff·v[j]
//
// returning the sum of dst. The caller supplies coeff (dangling mass and
// teleport weight folded together); fusing the rank-one teleport term
// into the SpMV removes the Scale+AddScaled sweeps the matrix-free
// operator otherwise needs.
func (m *CSR) MulVecLeftDamped(dst, x Vector, f, coeff float64, v Vector) float64 {
	m.checkMulShape(dst, x)
	if len(v) != m.n {
		panic(fmt.Sprintf("matrix: CSR MulVecLeftDamped teleport length %d vs order %d", len(v), m.n))
	}
	return m.pullApply(dst, x, f, coeff, v)
}

func (m *CSR) checkMulShape(dst, x Vector) {
	if len(x) != m.n || len(dst) != m.n {
		panic(fmt.Sprintf("matrix: CSR MulVecLeft lengths %d,%d vs order %d", len(x), len(dst), m.n))
	}
}

// pullApply runs the pull-based sweep, sharding the destination range
// across GOMAXPROCS when the matrix is large enough to pay for the
// goroutine handoff.
func (m *CSR) pullApply(dst, x Vector, scale, coeff float64, v Vector) float64 {
	return m.pullApplyShards(dst, x, scale, coeff, v, m.shards())
}

// shards picks the fan-out of one multiply: 1 (serial, allocation-free)
// unless multiple procs are available and the work amortizes the handoff.
func (m *CSR) shards() int {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 || len(m.cval) < minParallelNNZ {
		return 1
	}
	if p > maxShards {
		p = maxShards
	}
	if p > m.n {
		p = m.n
	}
	return p
}

// pullApplyShards is pullApply with an explicit shard count (tests force
// shards > 1 regardless of GOMAXPROCS). Shard s owns the destination
// columns [shardBound(s), shardBound(s+1)), disjoint by construction, so
// the workers share no written state; per-shard partial sums are reduced
// in shard order afterwards.
func (m *CSR) pullApplyShards(dst, x Vector, scale, coeff float64, v Vector, shards int) float64 {
	if shards <= 1 {
		return m.pullRange(dst, x, 0, m.n, scale, coeff, v)
	}
	sums := make([]float64, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			sums[s] = m.pullRange(dst, x, m.shardBound(shards, s), m.shardBound(shards, s+1), scale, coeff, v)
		}(s)
	}
	wg.Wait()
	var sum float64
	for _, s := range sums {
		sum += s
	}
	return sum
}

// shardBound returns the first destination column of shard s, splitting
// columns so every shard covers roughly equal stored-entry counts rather
// than equal column counts (web graphs have highly skewed in-degrees).
func (m *CSR) shardBound(shards, s int) int {
	if s <= 0 {
		return 0
	}
	if s >= shards {
		return m.n
	}
	target := len(m.cval) * s / shards
	return sort.SearchInts(m.colPtr, target)
}

// pullRange computes dst[j] for destinations j in [lo, hi):
//
//	dst[j] = (x'M)[j]                     when v is nil
//	dst[j] = scale·(x'M)[j] + coeff·v[j]  otherwise
//
// and returns the partial sum of the written entries.
func (m *CSR) pullRange(dst, x Vector, lo, hi int, scale, coeff float64, v Vector) float64 {
	var sum float64
	if v == nil {
		for j := lo; j < hi; j++ {
			var acc float64
			for k := m.colPtr[j]; k < m.colPtr[j+1]; k++ {
				acc += x[m.rowIdx[k]] * m.cval[k]
			}
			dst[j] = acc
			sum += acc
		}
		return sum
	}
	for j := lo; j < hi; j++ {
		var acc float64
		for k := m.colPtr[j]; k < m.colPtr[j+1]; k++ {
			acc += x[m.rowIdx[k]] * m.cval[k]
		}
		acc = scale*acc + coeff*v[j]
		dst[j] = acc
		sum += acc
	}
	return sum
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() Vector {
	sums := NewVector(m.n)
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		sums[i] = s
	}
	return sums
}

// NormalizeRows rescales each row to sum to 1 in place and returns m.
// Zero rows (dangling states) are left untouched.
func (m *CSR) NormalizeRows() *CSR {
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		if s == 0 {
			continue
		}
		inv := 1.0 / s
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			m.val[k] *= inv
		}
	}
	// The transpose view shares the same values in a different layout;
	// rebuild it so the pull kernels see the rescaled entries.
	m.buildTranspose()
	return m
}

// DanglingRows returns the indices of rows with zero sum (no out-links),
// in ascending order.
func (m *CSR) DanglingRows() []int {
	var out []int
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k]
		}
		if s == 0 {
			out = append(out, i)
		}
	}
	return out
}

// IsRowStochastic reports whether every row is nonnegative and sums to 1
// within tol.
func (m *CSR) IsRowStochastic(tol float64) bool {
	for i := 0; i < m.n; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			v := m.val[k]
			if v < -tol || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// Dense converts m to a dense matrix (for tests and small examples).
func (m *CSR) Dense() *Dense {
	out := NewDense(m.n, m.n)
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			out.Set(i, m.colIdx[k], m.val[k])
		}
	}
	return out
}
