package matrix

// Structural checks on the nonzero pattern of square matrices:
// irreducibility (strong connectivity), period, and primitivity. These
// implement the conditions of the paper's Lemma 2 and Theorem 2, which
// require the phase matrix Y — and hence the global matrix W — to be
// primitive for the direct (unadjusted) power method to be valid.

// Sparsity abstracts the nonzero pattern of a square matrix. Both *Dense
// and *CSR implement it.
type Sparsity interface {
	Order() int
	// EachNonZero calls fn(col) for every structurally nonzero entry of
	// row i (value strictly positive; stochastic matrices have no negative
	// entries).
	EachNonZero(i int, fn func(col int))
}

// EachNonZero implements Sparsity for Dense: entries > 0 are nonzero.
func (m *Dense) EachNonZero(i int, fn func(col int)) {
	for j, v := range m.Row(i) {
		if v > 0 {
			fn(j)
		}
	}
}

// EachNonZero implements Sparsity for CSR: stored positive entries.
func (m *CSR) EachNonZero(i int, fn func(col int)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		if m.val[k] > 0 {
			fn(m.colIdx[k])
		}
	}
}

var (
	_ Sparsity = (*Dense)(nil)
	_ Sparsity = (*CSR)(nil)
)

// IsIrreducible reports whether the directed graph of the nonzero pattern
// is strongly connected, i.e. the matrix is irreducible.
func IsIrreducible(m Sparsity) bool {
	n := m.Order()
	if n == 1 {
		return true
	}
	return StrongComponentCount(m) == 1
}

// StrongComponentCount returns the number of strongly connected components
// of the nonzero pattern, using an iterative Tarjan algorithm (no
// recursion, safe for web-scale graphs).
func StrongComponentCount(m Sparsity) int {
	comp, n := strongComponents(m)
	_ = comp
	return n
}

// StrongComponents returns a component index per state (components are
// numbered in reverse topological order of discovery) and the component
// count.
func StrongComponents(m Sparsity) ([]int, int) {
	return strongComponents(m)
}

// strongComponents is an iterative Tarjan SCC.
func strongComponents(m Sparsity) ([]int, int) {
	n := m.Order()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	var counter, nComp int

	// Explicit DFS frame: node plus iteration state over its successors.
	type frame struct {
		v     int
		succs []int
		next  int
	}
	succsOf := func(v int) []int {
		var out []int
		m.EachNonZero(v, func(c int) { out = append(out, c) })
		return out
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root, succs: succsOf(root)}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succs) {
				w := f.succs[f.next]
				f.next++
				if index[w] == unvisited {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Finished v: pop frame, propagate lowlink, emit component.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp, nComp
}

// Period returns the period of an irreducible nonzero pattern: the gcd of
// the lengths of all cycles. A period of 1 means aperiodic. The result is
// undefined (and 0 is returned) for reducible patterns; call IsIrreducible
// first.
func Period(m Sparsity) int {
	n := m.Order()
	// BFS from state 0 assigning levels; for every edge (u,v),
	// g = gcd(g, level[u]+1−level[v]). Standard chain-period algorithm.
	level := make([]int, n)
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	g := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		m.EachNonZero(u, func(v int) {
			if !seen[v] {
				seen[v] = true
				level[v] = level[u] + 1
				queue = append(queue, v)
			} else {
				g = gcd(g, level[u]+1-level[v])
			}
		})
	}
	for _, s := range seen {
		if !s {
			return 0 // reducible: not all states reachable from 0
		}
	}
	if g < 0 {
		g = -g
	}
	return g
}

// IsPrimitive reports whether the nonzero pattern is primitive:
// irreducible with period 1. For a nonnegative matrix this is equivalent
// to M^p > 0 for some p (Meyer, Matrix Analysis, ch. 8), the condition the
// paper's footnote 2 states.
func IsPrimitive(m Sparsity) bool {
	if !IsIrreducible(m) {
		return false
	}
	return Period(m) == 1
}

// IsPositive reports whether every entry of the dense matrix is strictly
// positive — a sufficient condition for primitivity used by Lemma 2.
func (m *Dense) IsPositive() bool {
	for _, v := range m.data {
		if v <= 0 {
			return false
		}
	}
	return true
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
