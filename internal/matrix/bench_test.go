package matrix

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchCSR(n, degree int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	triples := make([]Triple, 0, n*degree)
	for i := 0; i < n; i++ {
		for k := 0; k < degree; k++ {
			triples = append(triples, Triple{Row: i, Col: rng.Intn(n), Val: 1})
		}
	}
	return NewCSR(n, triples).NormalizeRows()
}

func BenchmarkDenseMulVecLeft(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			m := NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, rng.Float64())
				}
			}
			m.NormalizeRows()
			x := Uniform(n)
			dst := NewVector(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVecLeft(dst, x)
			}
		})
	}
}

func BenchmarkCSRMulVecLeft(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d_deg=8", n), func(b *testing.B) {
			m := benchCSR(n, 8, 1)
			x := Uniform(n)
			dst := NewVector(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulVecLeft(dst, x)
			}
		})
	}
}

func BenchmarkNewCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 10000
	triples := make([]Triple, 0, n*8)
	for i := 0; i < n; i++ {
		for k := 0; k < 8; k++ {
			triples = append(triples, Triple{Row: rng.Intn(n), Col: rng.Intn(n), Val: 1})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCSR(n, triples)
	}
}

func BenchmarkPowerLeftCSR(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchCSR(n, 8, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Tolerance loose enough to converge on all seeds.
				if _, err := PowerLeft(m, PowerOptions{Tol: 1e-8, MaxIter: 5000}); err != nil {
					b.Skip("chain not convergent for this seed")
				}
			}
		})
	}
}

func BenchmarkStationaryExact(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			m := randomStochastic(rng, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := StationaryExact(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStrongComponents(b *testing.B) {
	m := benchCSR(50000, 4, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StrongComponentCount(m)
	}
}
