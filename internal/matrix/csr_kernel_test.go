package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// pushMulVecLeft is the pre-optimization push-based kernel, kept as the
// reference the pull-based sweep must reproduce: scatter dst[col] +=
// x[row]·val in row order. Because the transpose view stores each
// column's sources ascending, the pull accumulation visits the same
// contributions in the same order and the results must match bitwise.
func pushMulVecLeft(m *CSR, dst, x Vector) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += xi * m.val[k]
		}
	}
}

func randomSparse(rng *rand.Rand, n, nnz int) *CSR {
	triples := make([]Triple, nnz)
	for k := range triples {
		triples[k] = Triple{Row: rng.Intn(n), Col: rng.Intn(n), Val: rng.Float64()}
	}
	return NewCSR(n, triples)
}

func randomX(rng *rand.Rand, n int) Vector {
	x := NewVector(n)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

func TestPullMatchesPushBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(60) + 1
		m := randomSparse(rng, n, rng.Intn(4*n+1))
		x := randomX(rng, n)
		got, want := NewVector(n), NewVector(n)
		m.MulVecLeft(got, x)
		pushMulVecLeft(m, want, x)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("trial %d: pull dst[%d] = %g, push = %g (diff %g)",
					trial, j, got[j], want[j], got[j]-want[j])
			}
		}
	}
}

func TestPullParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomSparse(rng, 500, 6000)
	x := randomX(rng, 500)
	serial, parallel := NewVector(500), NewVector(500)
	wantSum := m.pullApplyShards(serial, x, 1, 0, nil, 1)
	for _, shards := range []int{2, 3, 8, 64} {
		gotSum := m.pullApplyShards(parallel, x, 1, 0, nil, shards)
		for j := range parallel {
			// Disjoint destination ranges: every element is computed by
			// exactly one shard with the serial loop body, so values are
			// bitwise identical; only the reduced total sum may differ
			// in the last bits.
			if parallel[j] != serial[j] {
				t.Fatalf("shards=%d: dst[%d] = %g, serial = %g", shards, j, parallel[j], serial[j])
			}
		}
		if math.Abs(gotSum-wantSum) > 1e-12*math.Abs(wantSum) {
			t.Fatalf("shards=%d: sum = %g, serial = %g", shards, gotSum, wantSum)
		}
	}
}

func TestPullParallelDampedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomSparse(rng, 300, 3000)
	x := randomX(rng, 300)
	v := Uniform(300)
	serial, parallel := NewVector(300), NewVector(300)
	m.pullApplyShards(serial, x, 0.85, 0.07, v, 1)
	m.pullApplyShards(parallel, x, 0.85, 0.07, v, 5)
	for j := range parallel {
		if parallel[j] != serial[j] {
			t.Fatalf("damped dst[%d] = %g, serial = %g", j, parallel[j], serial[j])
		}
	}
}

func TestMulVecLeftFusedSumMatchesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomSparse(rng, 80, 400)
	x := randomX(rng, 80)
	dst := NewVector(80)
	sum := m.MulVecLeftFused(dst, x)
	// The fused sum accumulates dst in index order — exactly Vector.Sum.
	if sum != dst.Sum() {
		t.Fatalf("fused sum %g != dst.Sum() %g", sum, dst.Sum())
	}
}

func TestMulVecLeftDamped(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := randomSparse(rng, 40, 200)
	x := randomX(rng, 40)
	v := randomX(rng, 40)
	f, coeff := 0.85, 0.21
	want := NewVector(40)
	m.MulVecLeft(want, x)
	for j := range want {
		want[j] = f*want[j] + coeff*v[j]
	}
	got := NewVector(40)
	m.MulVecLeftDamped(got, x, f, coeff, v)
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("damped dst[%d] = %g, want %g", j, got[j], want[j])
		}
	}
}

func TestNewCSRFromSortedMatchesNewCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(30) + 1
		ref := randomSparse(rng, n, rng.Intn(5*n+1))
		rowPtr := append([]int(nil), ref.rowPtr...)
		colIdx := append([]int(nil), ref.colIdx...)
		val := append([]float64(nil), ref.val...)
		m := NewCSRFromSorted(n, rowPtr, colIdx, val)
		if m.NNZ() != ref.NNZ() {
			t.Fatalf("NNZ %d vs %d", m.NNZ(), ref.NNZ())
		}
		x := randomX(rng, n)
		a, b := NewVector(n), NewVector(n)
		m.MulVecLeft(a, x)
		ref.MulVecLeft(b, x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("trial %d: dst[%d] differs", trial, j)
			}
		}
	}
}

func TestNewCSRFromSortedRejectsMalformed(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		rowPtr []int
		cols   []int
		vals   []float64
	}{
		{"unsorted row", 2, []int{0, 2, 2}, []int{1, 0}, []float64{1, 1}},
		{"duplicate col", 2, []int{0, 2, 2}, []int{1, 1}, []float64{1, 1}},
		{"col out of range", 2, []int{0, 1, 1}, []int{2}, []float64{1}},
		{"bad ptr tail", 2, []int{0, 1, 3}, []int{0, 1}, []float64{1, 1}},
		{"negative extent", 2, []int{0, 2, 1}, []int{0, 1}, []float64{1, 1}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			NewCSRFromSorted(c.n, c.rowPtr, c.cols, c.vals)
		}()
	}
}

// A row of ~100k copies of one column must build in linear-ish time:
// the three-way partition puts the equal run in the middle bucket in
// one pass (the old Lomuto scheme degraded to O(n²) here).
func TestNewCSRDuplicateHeavyRow(t *testing.T) {
	const n = 100_000
	triples := make([]Triple, n)
	for k := range triples {
		triples[k] = Triple{Row: 1, Col: 7, Val: 1}
	}
	m := NewCSR(10, triples)
	if m.NNZ() != 1 || m.At(1, 7) != n {
		t.Fatalf("NNZ = %d, At(1,7) = %g; want 1 merged entry summing %d", m.NNZ(), m.At(1, 7), n)
	}
}

func TestSortPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(200)
		cols := make([]int, n)
		vals := make([]float64, n)
		for i := range cols {
			cols[i] = rng.Intn(50) // duplicates likely
			vals[i] = float64(cols[i]) + 0.5
		}
		sortPairs(cols, vals)
		for i := 1; i < n; i++ {
			if cols[i-1] > cols[i] {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
		}
		for i := range cols {
			// Pair integrity: vals must move with their cols.
			if vals[i] != float64(cols[i])+0.5 {
				t.Fatalf("trial %d: pair broken at %d", trial, i)
			}
		}
	}
}

func TestMulVecLeftSerialZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomSparse(rng, 256, 2048)
	x := randomX(rng, 256)
	dst := NewVector(256)
	allocs := testing.AllocsPerRun(50, func() {
		m.pullApplyShards(dst, x, 1, 0, nil, 1)
	})
	if allocs != 0 {
		t.Errorf("serial MulVecLeft allocates %.1f per run, want 0", allocs)
	}
}
