package matrix

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// LeftMultiplier is the operator abstraction used by the power method:
// anything that can compute y' = x'M for a square operator M. Implemented
// by *Dense, *CSR and the damped PageRank operators in package pagerank.
type LeftMultiplier interface {
	// Order returns the dimension n of the square operator.
	Order() int
	// MulVecLeft computes dst' = x'M. dst and x must both have length
	// Order() and must not alias.
	MulVecLeft(dst, x Vector)
}

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

var _ LeftMultiplier = (*Dense)(nil)

// NewDense returns a zeroed rows×cols matrix. It panics on non-positive
// dimensions.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: NewDense with non-positive dims %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from row slices, copying the data. All rows must
// have equal, positive length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows with empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: FromRows ragged row %d: %d vs %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Order returns the dimension of a square matrix; it panics if m is not
// square.
func (m *Dense) Order() int {
	if m.rows != m.cols {
		panic(fmt.Sprintf("matrix: Order of non-square %dx%d matrix", m.rows, m.cols))
	}
	return m.rows
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a mutable view into the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: Row %d out of %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// SetRow copies r into row i. It panics if len(r) != Cols().
func (m *Dense) SetRow(i int, r []float64) {
	if len(r) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d vs %d cols", len(r), m.cols))
	}
	copy(m.Row(i), r)
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

// MulVecLeft computes dst' = x'M. It panics on dimension mismatch.
func (m *Dense) MulVecLeft(dst, x Vector) {
	if len(x) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecLeft x length %d vs %d rows", len(x), m.rows))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("matrix: MulVecLeft dst length %d vs %d cols", len(dst), m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// MulVecRight computes dst = M x (column-vector convention). It panics on
// dimension mismatch.
func (m *Dense) MulVecRight(dst, x Vector) {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVecRight x length %d vs %d cols", len(x), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecRight dst length %d vs %d rows", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Mul returns the matrix product m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul dims %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// Scale multiplies every element by c in place and returns m.
func (m *Dense) Scale(c float64) *Dense {
	for i := range m.data {
		m.data[i] *= c
	}
	return m
}

// Add adds b to m element-wise in place and returns m.
func (m *Dense) Add(b *Dense) *Dense {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: Add dims %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] += b.data[i]
	}
	return m
}

// AddRankOne adds c · col·row' to m in place, where col has length Rows()
// and row has length Cols(). This is the building block of the maximal
// irreducibility adjustment Mˆ = fM + (1−f)·e·v'.
func (m *Dense) AddRankOne(c float64, col, row Vector) *Dense {
	if len(col) != m.rows || len(row) != m.cols {
		panic(fmt.Sprintf("matrix: AddRankOne dims %d,%d vs %dx%d", len(col), len(row), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		ci := c * col[i]
		if ci == 0 {
			continue
		}
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		for j, rv := range row {
			mrow[j] += ci * rv
		}
	}
	return m
}

// IsNonNegative reports whether every element is >= -tol and finite.
func (m *Dense) IsNonNegative(tol float64) bool {
	for _, v := range m.data {
		if v < -tol || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// IsRowStochastic reports whether m is square, nonnegative and every row
// sums to 1 within tol.
func (m *Dense) IsRowStochastic(tol float64) bool {
	if m.rows != m.cols || !m.IsNonNegative(tol) {
		return false
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// NormalizeRows rescales each row to sum to 1 in place and returns m.
// Rows summing to zero are left untouched (the caller decides how to treat
// dangling states).
func (m *Dense) NormalizeRows() *Dense {
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		if s == 0 {
			continue
		}
		inv := 1.0 / s
		for j := range row {
			row[j] *= inv
		}
	}
	return m
}

// ZeroRows returns the indices of rows whose elements are all zero
// (dangling states in a transition matrix).
func (m *Dense) ZeroRows() []int {
	var out []int
	for i := 0; i < m.rows; i++ {
		zero := true
		for _, v := range m.Row(i) {
			if v != 0 {
				zero = false
				break
			}
		}
		if zero {
			out = append(out, i)
		}
	}
	return out
}

// Equal reports whether m and b have the same shape and all elements agree
// within tol.
func (m *Dense) Equal(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix with 4 decimal places, one row per line.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteByte('[')
		for j, v := range m.Row(i) {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(v, 'f', 4, 64))
		}
		b.WriteByte(']')
	}
	return b.String()
}
