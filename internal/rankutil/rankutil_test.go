package rankutil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.3, 0.5}
	top := TopK(scores, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	// Ties (indices 1 and 3 at 0.5) break toward the lower index.
	if top[0].Index != 1 || top[1].Index != 3 || top[2].Index != 2 {
		t.Errorf("top = %+v", top)
	}
	if TopK(scores, 0) != nil {
		t.Error("k=0 should yield nil")
	}
	if got := len(TopK(scores, 99)); got != 4 {
		t.Errorf("oversized k: len = %d", got)
	}
}

func TestRanks(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5}
	ranks := Ranks(scores)
	want := []int{2, 0, 1}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("ranks = %v, want %v", ranks, want)
			break
		}
	}
}

func TestKendallTauExtremes(t *testing.T) {
	a := []float64{4, 3, 2, 1}
	if got := KendallTau(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("τ(a,a) = %g, want 1", got)
	}
	rev := []float64{1, 2, 3, 4}
	if got := KendallTau(a, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("τ(a,rev) = %g, want −1", got)
	}
}

func TestKendallTauPartial(t *testing.T) {
	// One discordant pair among six: τ = (5−1)/6 = 2/3.
	a := []float64{4, 3, 2, 1}
	b := []float64{4, 3, 1, 2}
	if got := KendallTau(a, b); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("τ = %g, want 2/3", got)
	}
}

func TestKendallTauDegenerate(t *testing.T) {
	if got := KendallTau([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("single item τ = %g", got)
	}
	if got := KendallTau([]float64{1, 1}, []float64{2, 2}); got != 0 {
		t.Errorf("all-ties τ = %g", got)
	}
}

func TestSpearmanRhoExtremes(t *testing.T) {
	a := []float64{10, 8, 6, 4}
	if got := SpearmanRho(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("ρ(a,a) = %g", got)
	}
	rev := []float64{4, 6, 8, 10}
	if got := SpearmanRho(a, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("ρ(a,rev) = %g", got)
	}
}

func TestSpearmanFootrule(t *testing.T) {
	a := []float64{4, 3, 2, 1}
	if got := SpearmanFootrule(a, a); got != 0 {
		t.Errorf("footrule(a,a) = %g", got)
	}
	rev := []float64{1, 2, 3, 4}
	if got := SpearmanFootrule(a, rev); math.Abs(got-1) > 1e-12 {
		t.Errorf("footrule(a,rev) = %g, want 1", got)
	}
}

func TestOverlapAtK(t *testing.T) {
	a := []float64{10, 9, 8, 1, 2}
	b := []float64{10, 9, 1, 8, 2}
	if got := OverlapAtK(a, b, 3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("overlap@3 = %g, want 2/3", got)
	}
	if got := OverlapAtK(a, a, 5); got != 1 {
		t.Errorf("overlap with self = %g", got)
	}
	if got := OverlapAtK(a, b, 0); got != 0 {
		t.Errorf("overlap@0 = %g", got)
	}
}

func TestContaminationAtK(t *testing.T) {
	scores := []float64{0.5, 0.4, 0.3, 0.2}
	flagged := []bool{true, false, true, false}
	if got := ContaminationAtK(scores, flagged, 2); got != 0.5 {
		t.Errorf("contamination@2 = %g, want 0.5", got)
	}
	if got := ContaminationAtK(scores, flagged, 4); got != 0.5 {
		t.Errorf("contamination@4 = %g, want 0.5", got)
	}
	none := make([]bool, 4)
	if got := ContaminationAtK(scores, none, 4); got != 0 {
		t.Errorf("clean contamination = %g", got)
	}
}

func TestPanicsOnLengthMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"KendallTau":       func() { KendallTau([]float64{1}, []float64{1, 2}) },
		"SpearmanRho":      func() { SpearmanRho([]float64{1}, []float64{1, 2}) },
		"SpearmanFootrule": func() { SpearmanFootrule([]float64{1}, []float64{1, 2}) },
		"Contamination":    func() { ContaminationAtK([]float64{1}, []bool{true, false}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: τ and ρ are symmetric, bounded by [−1, 1], and equal 1 against
// any strictly monotone transform of the scores.
func TestCorrelationPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		tau := KendallTau(a, b)
		rho := SpearmanRho(a, b)
		if tau < -1-1e-12 || tau > 1+1e-12 || rho < -1-1e-12 || rho > 1+1e-12 {
			return false
		}
		if math.Abs(tau-KendallTau(b, a)) > 1e-12 {
			return false
		}
		// Monotone transform of a: order preserved exactly.
		mono := make([]float64, n)
		for i, x := range a {
			mono[i] = 3*x + 7
		}
		return math.Abs(KendallTau(a, mono)-kendallSelf(a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// kendallSelf returns τ(a, a): exactly 1 unless everything ties (then 0).
func kendallSelf(a []float64) float64 {
	return KendallTau(a, a)
}

// Property: footrule is 0 iff orders agree; overlap@k of a vector with
// itself is always 1 for valid k.
func TestFootruleOverlapQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64()
		}
		if SpearmanFootrule(a, a) != 0 {
			return false
		}
		k := rng.Intn(n) + 1
		return OverlapAtK(a, a, k) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
