// Package rankutil provides ranking comparison utilities used by the
// evaluation harness: top-k extraction, rank-correlation coefficients
// (Kendall tau, Spearman rho and footrule), overlap measures, and the spam
// contamination metric that quantifies the paper's Figure 3 vs Figure 4
// comparison.
package rankutil

import (
	"fmt"
	"math"
	"sort"
)

// Entry pairs an item index with its score.
type Entry struct {
	Index int
	Score float64
}

// TopK returns the k highest-scoring indices in descending score order,
// ties broken toward the lower index (deterministic across runs). k is
// clamped to len(scores).
func TopK(scores []float64, k int) []Entry {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Full sort keeps the code simple and deterministic; selection would
	// only matter for graphs far beyond this package's benchmarks.
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]Entry, k)
	for i := 0; i < k; i++ {
		out[i] = Entry{Index: idx[i], Score: scores[idx[i]]}
	}
	return out
}

// Ranks converts scores into 0-based rank positions (rank[i] = position of
// item i when sorted by descending score, ties toward lower index).
func Ranks(scores []float64) []int {
	top := TopK(scores, len(scores))
	ranks := make([]int, len(scores))
	for pos, e := range top {
		ranks[e.Index] = pos
	}
	return ranks
}

// KendallTau computes the Kendall rank-correlation coefficient τ between
// two score vectors over the same items: +1 for identical orders, −1 for
// reversed orders. Ties are handled by the tau-b correction. It panics on
// length mismatch; it returns 0 for fewer than 2 items.
func KendallTau(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("rankutil: KendallTau length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				// Tied in both: excluded from all counts.
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := (concordant + discordant + tiesA) * (concordant + discordant + tiesB)
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / math.Sqrt(denom)
}

// SpearmanRho computes Spearman's rank correlation: Pearson correlation of
// the two rank vectors. It panics on length mismatch and returns 0 for
// fewer than 2 items.
func SpearmanRho(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("rankutil: SpearmanRho length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	ra, rb := Ranks(a), Ranks(b)
	mean := float64(n-1) / 2
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		da := float64(ra[i]) - mean
		db := float64(rb[i]) - mean
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}

// SpearmanFootrule computes the normalized Spearman footrule distance
// between the orders induced by two score vectors: Σ|rank_a(i) −
// rank_b(i)| divided by its maximum (n²/2 for even n, (n²−1)/2 for odd), so
// 0 means identical orders and 1 maximally displaced.
func SpearmanFootrule(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("rankutil: SpearmanFootrule length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	if n < 2 {
		return 0
	}
	ra, rb := Ranks(a), Ranks(b)
	var sum float64
	for i := 0; i < n; i++ {
		d := ra[i] - rb[i]
		if d < 0 {
			d = -d
		}
		sum += float64(d)
	}
	max := float64(n*n) / 2
	if n%2 == 1 {
		max = float64(n*n-1) / 2
	}
	return sum / max
}

// OverlapAtK returns |topK(a) ∩ topK(b)| / k, the fraction of shared items
// among the two top-k lists.
func OverlapAtK(a, b []float64, k int) float64 {
	ta := TopK(a, k)
	tb := TopK(b, k)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inA := make(map[int]bool, len(ta))
	for _, e := range ta {
		inA[e.Index] = true
	}
	var shared int
	for _, e := range tb {
		if inA[e.Index] {
			shared++
		}
	}
	k = len(ta)
	if len(tb) < k {
		k = len(tb)
	}
	return float64(shared) / float64(k)
}

// ContaminationAtK returns the fraction of the top-k items for which
// flagged[i] is true — with flagged marking spam documents, this is the
// spam contamination the paper's §3.3 discusses qualitatively (Figure 3's
// top list is dominated by agglomerate pages; Figure 4's is clean).
func ContaminationAtK(scores []float64, flagged []bool, k int) float64 {
	if len(scores) != len(flagged) {
		panic(fmt.Sprintf("rankutil: ContaminationAtK length mismatch %d vs %d", len(scores), len(flagged)))
	}
	top := TopK(scores, k)
	if len(top) == 0 {
		return 0
	}
	var bad int
	for _, e := range top {
		if flagged[e.Index] {
			bad++
		}
	}
	return float64(bad) / float64(len(top))
}
