package markov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lmmrank/internal/matrix"
)

// paperY is the phase transition matrix of the paper's §2.3 example.
func paperY() *matrix.Dense {
	return matrix.FromRows([][]float64{
		{0.1, 0.3, 0.6},
		{0.2, 0.4, 0.4},
		{0.3, 0.5, 0.2},
	})
}

// paperU2 is the 3-sub-state phase II matrix of the paper's example, with
// published local PageRank π2G = (0.1191, 0.2691, 0.6117).
func paperU2() *matrix.Dense {
	return matrix.FromRows([][]float64{
		{0.2, 0.1, 0.7},
		{0.1, 0.8, 0.1},
		{0.05, 0.05, 0.9},
	})
}

func randomStochastic(rng *rand.Rand, n int) *matrix.Dense {
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.Float64() + 1e-3
		}
	}
	return m.NormalizeRows()
}

func TestValidate(t *testing.T) {
	if err := Validate(paperY()); err != nil {
		t.Errorf("paper Y rejected: %v", err)
	}
	bad := matrix.FromRows([][]float64{{0.5, 0.6}, {1, 0}})
	if err := Validate(bad); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("err = %v, want ErrNotStochastic", err)
	}
	rect := matrix.NewDense(2, 3)
	if err := Validate(rect); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("err = %v, want ErrNotStochastic for non-square", err)
	}
}

func TestMaximalIrreducibleStochasticAndPositive(t *testing.T) {
	mhat := MaximalIrreducible(paperY(), 0.85, nil)
	if !mhat.IsRowStochastic(1e-12) {
		t.Error("Mˆ not stochastic")
	}
	if !mhat.IsPositive() {
		t.Error("Mˆ not strictly positive with uniform v")
	}
	if !matrix.IsPrimitive(mhat) {
		t.Error("Mˆ not primitive")
	}
}

func TestMaximalIrreducibleValues(t *testing.T) {
	// For a 2-state chain: entry = f·m + (1−f)/2.
	m := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	mhat := MaximalIrreducible(m, 0.85, nil)
	if math.Abs(mhat.At(0, 0)-0.075) > 1e-12 {
		t.Errorf("Mˆ(0,0) = %g, want 0.075", mhat.At(0, 0))
	}
	if math.Abs(mhat.At(0, 1)-0.925) > 1e-12 {
		t.Errorf("Mˆ(0,1) = %g, want 0.925", mhat.At(0, 1))
	}
}

func TestMaximalIrreducibleDanglingRow(t *testing.T) {
	// State 1 has no out-links; it must behave as a uniform random jump.
	m := matrix.FromRows([][]float64{{0, 1}, {0, 0}})
	mhat := MaximalIrreducible(m, 0.85, nil)
	if !mhat.IsRowStochastic(1e-12) {
		t.Fatal("dangling-adjusted matrix not stochastic")
	}
	// Row 1 = 0.85·(0.5,0.5) + 0.15·(0.5,0.5) = (0.5,0.5).
	if math.Abs(mhat.At(1, 0)-0.5) > 1e-12 {
		t.Errorf("dangling row = %v, want uniform", mhat.Row(1))
	}
}

func TestMaximalIrreducibleDoesNotMutateInput(t *testing.T) {
	m := matrix.FromRows([][]float64{{0, 1}, {0, 0}})
	MaximalIrreducible(m, 0.85, nil)
	if m.At(1, 0) != 0 || m.At(0, 1) != 1 {
		t.Error("input mutated")
	}
}

func TestMaximalIrreduciblePersonalized(t *testing.T) {
	v := matrix.Vector{0.9, 0.1}
	m := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	mhat := MaximalIrreducible(m, 0.85, v)
	// Mˆ(0,0) = 0.85·0 + 0.15·0.9 = 0.135.
	if math.Abs(mhat.At(0, 0)-0.135) > 1e-12 {
		t.Errorf("personalized Mˆ(0,0) = %g, want 0.135", mhat.At(0, 0))
	}
}

func TestMaximalIrreduciblePanicsOnBadDamping(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("f = 1 did not panic")
		}
	}()
	MaximalIrreducible(paperY(), 1, nil)
}

func TestMinimalIrreducibleShape(t *testing.T) {
	u := paperU2()
	uhat := MinimalIrreducible(u, 0.85, nil)
	if uhat.Rows() != 4 || uhat.Cols() != 4 {
		t.Fatalf("Uˆ dims = %dx%d, want 4x4", uhat.Rows(), uhat.Cols())
	}
	if !uhat.IsRowStochastic(1e-12) {
		t.Error("Uˆ not stochastic")
	}
	if !matrix.IsPrimitive(uhat) {
		t.Error("Uˆ not primitive")
	}
	// Gatekeeper column: each original state reaches it with 1−α.
	for i := 0; i < 3; i++ {
		if math.Abs(uhat.At(i, 3)-0.15) > 1e-12 {
			t.Errorf("Uˆ(%d,gk) = %g, want 0.15", i, uhat.At(i, 3))
		}
	}
	// Gatekeeper row: initial distribution, self-transition zero.
	if uhat.At(3, 3) != 0 {
		t.Error("gatekeeper self-transition must be 0")
	}
	if math.Abs(uhat.At(3, 0)-1.0/3) > 1e-12 {
		t.Errorf("gatekeeper row = %v, want uniform", uhat.Row(3))
	}
}

func TestGatekeeperStationaryMatchesPaperU2(t *testing.T) {
	// §2.3.2 publishes π2G = (0.1191, 0.2691, 0.6117) for U2 with α = 0.85.
	pi, err := GatekeeperStationary(paperU2(), 0.85, nil, matrix.PowerOptions{})
	if err != nil {
		t.Fatalf("GatekeeperStationary: %v", err)
	}
	want := matrix.Vector{0.1191, 0.2691, 0.6117}
	if pi.L1Diff(want) > 5e-4 {
		t.Errorf("π2G = %v, want ≈ %v (paper)", pi, want)
	}
}

// TestLangvilleMeyerEquivalence reproduces the equivalence the paper cites
// ([11]): minimal irreducibility with parameter α gives exactly the
// PageRank of the maximal-irreducibility chain with damping f = α.
func TestLangvilleMeyerEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		u := randomStochastic(rng, n)
		alpha := 0.5 + 0.4*rng.Float64()

		minPi, err := GatekeeperStationary(u, alpha, nil, matrix.PowerOptions{})
		if err != nil {
			return false
		}
		maxPi, err := Stationary(MaximalIrreducible(u, alpha, nil), matrix.PowerOptions{})
		if err != nil {
			return false
		}
		return minPi.L1Diff(maxPi) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGatekeeperStationaryDanglingRow(t *testing.T) {
	u := matrix.FromRows([][]float64{{0, 1}, {0, 0}})
	pi, err := GatekeeperStationary(u, 0.85, nil, matrix.PowerOptions{})
	if err != nil {
		t.Fatalf("GatekeeperStationary: %v", err)
	}
	if !pi.IsDistribution(1e-9) {
		t.Errorf("π = %v is not a distribution", pi)
	}
	// Equivalence with the dangling-aware maximal construction.
	maxPi, err := Stationary(MaximalIrreducible(u, 0.85, nil), matrix.PowerOptions{})
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	if pi.L1Diff(maxPi) > 1e-8 {
		t.Errorf("dangling: minimal %v vs maximal %v", pi, maxPi)
	}
}

func TestStationaryDenseExactAndFallback(t *testing.T) {
	pi, err := StationaryDense(paperY(), matrix.PowerOptions{})
	if err != nil {
		t.Fatalf("StationaryDense: %v", err)
	}
	want := matrix.Vector{0.2154, 0.4154, 0.3692} // paper §2.3.3 π̃Y
	if pi.L1Diff(want) > 5e-4 {
		t.Errorf("π̃Y = %v, want ≈ %v", pi, want)
	}

	// Reducible chain: exact solve fails, power from uniform still
	// converges (two absorbing states keep their symmetric mass).
	red := matrix.FromRows([][]float64{{1, 0}, {0, 1}})
	pi, err = StationaryDense(red, matrix.PowerOptions{})
	if err != nil {
		t.Fatalf("StationaryDense fallback: %v", err)
	}
	if pi.L1Diff(matrix.Vector{0.5, 0.5}) > 1e-9 {
		t.Errorf("fallback π = %v", pi)
	}
}

func TestStationaryDenseRejectsNonStochastic(t *testing.T) {
	bad := matrix.FromRows([][]float64{{2, 0}, {0, 1}})
	if _, err := StationaryDense(bad, matrix.PowerOptions{}); !errors.Is(err, ErrNotStochastic) {
		t.Fatalf("err = %v, want ErrNotStochastic", err)
	}
}

// Property: MinimalIrreducible output is always Markovian and primitive for
// positive v, per the paper's §2.3.2 claim.
func TestMinimalIrreduciblePropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		u := randomStochastic(rng, n)
		alpha := 0.1 + 0.8*rng.Float64()
		uhat := MinimalIrreducible(u, alpha, nil)
		return uhat.IsRowStochastic(1e-9) && matrix.IsPrimitive(uhat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the gatekeeper stationary vector is a probability distribution
// regardless of chain structure (including dangling and periodic rows).
func TestGatekeeperStationaryDistributionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		u := matrix.NewDense(n, n)
		// Sparse random pattern, possibly with dangling rows.
		for i := 0; i < n; i++ {
			for k := rng.Intn(3); k > 0; k-- {
				u.Set(i, rng.Intn(n), rng.Float64())
			}
		}
		u.NormalizeRows()
		pi, err := GatekeeperStationary(u, 0.85, nil, matrix.PowerOptions{})
		return err == nil && pi.IsDistribution(1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
