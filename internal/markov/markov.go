// Package markov implements the Markov-chain constructions the paper
// builds on: the maximal-irreducibility adjustment used by PageRank
// (eq. 1), the minimal-irreducibility gatekeeper construction of §2.3.2,
// and stationary-distribution computation for both.
//
// Terminology follows the paper: a chain is given by a row-stochastic
// transition matrix; "maximal irreducibility" mixes the whole matrix with
// a rank-one teleport term, while "minimal irreducibility" appends a single
// virtual gatekeeper state connected to and from every other state.
package markov

import (
	"errors"
	"fmt"

	"lmmrank/internal/matrix"
)

// ErrNotStochastic is returned (wrapped) when an input matrix is not
// row-stochastic within tolerance.
var ErrNotStochastic = errors.New("markov: matrix is not row-stochastic")

// StochasticTol is the tolerance used when validating that matrices are
// row-stochastic.
const StochasticTol = 1e-9

// Validate returns an error if m is not a row-stochastic matrix.
func Validate(m *matrix.Dense) error {
	if m.Rows() != m.Cols() {
		return fmt.Errorf("%w: non-square %dx%d", ErrNotStochastic, m.Rows(), m.Cols())
	}
	if !m.IsRowStochastic(StochasticTol) {
		return fmt.Errorf("%w: a row is negative or does not sum to 1", ErrNotStochastic)
	}
	return nil
}

// MaximalIrreducible builds the PageRank-adjusted matrix of eq. (1):
//
//	Mˆ = f·M + (1−f)·e·v'
//
// where v is the personalization distribution (uniform when nil). Rows of M
// that are entirely zero (dangling states) are first replaced by v, the
// standard random-jump convention the paper describes ("jumping to a random
// page if no such link exists"). The result is strictly positive wherever v
// is positive, hence primitive for positive v.
//
// It panics if f is outside (0, 1) or v has the wrong length; these are
// programmer errors.
func MaximalIrreducible(m *matrix.Dense, f float64, v matrix.Vector) *matrix.Dense {
	n := m.Order()
	if f <= 0 || f >= 1 {
		panic(fmt.Sprintf("markov: damping factor %g outside (0,1)", f))
	}
	if v == nil {
		v = matrix.Uniform(n)
	}
	if len(v) != n {
		panic(fmt.Sprintf("markov: personalization length %d vs order %d", len(v), n))
	}

	out := m.Clone()
	for _, i := range out.ZeroRows() {
		out.SetRow(i, v)
	}
	e := matrix.NewVector(n).Fill(1)
	return out.Scale(f).AddRankOne(1-f, e, v)
}

// MinimalIrreducible builds the (n+1)×(n+1) gatekeeper-augmented matrix of
// §2.3.2:
//
//	Uˆ = | α·U        (1−α)·e |
//	     | v'              0  |
//
// The appended state (index n) is the gatekeeper: every original state
// moves to it with probability 1−α, and it re-enters the chain according to
// the initial-state distribution v (uniform when nil). Zero rows of U are
// first replaced by v scaled into the α block, mirroring the dangling
// convention of MaximalIrreducible so the two constructions stay
// equivalent. The result is Markovian, irreducible and primitive (as the
// paper notes) whenever v is positive.
func MinimalIrreducible(u *matrix.Dense, alpha float64, v matrix.Vector) *matrix.Dense {
	n := u.Order()
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("markov: alpha %g outside (0,1)", alpha))
	}
	if v == nil {
		v = matrix.Uniform(n)
	}
	if len(v) != n {
		panic(fmt.Sprintf("markov: initial distribution length %d vs order %d", len(v), n))
	}

	out := matrix.NewDense(n+1, n+1)
	for i := 0; i < n; i++ {
		row := u.Row(i)
		var sum float64
		for _, x := range row {
			sum += x
		}
		dst := out.Row(i)
		if sum == 0 {
			// Dangling: distribute the α mass by v.
			for j := 0; j < n; j++ {
				dst[j] = alpha * v[j]
			}
		} else {
			for j := 0; j < n; j++ {
				dst[j] = alpha * row[j]
			}
		}
		dst[n] = 1 - alpha
	}
	gk := out.Row(n)
	for j := 0; j < n; j++ {
		gk[j] = v[j]
	}
	gk[n] = 0
	return out
}

// GatekeeperStationary computes the stationary distribution over the
// non-gatekeeper states of the minimal-irreducibility chain: the power
// method is applied to Uˆ, the gatekeeper element is dropped and the rest
// renormalized (§2.3.2). The resulting vector supplies the gatekeeper
// transition probabilities u^J_Gj of eq. (3) — by the Langville–Meyer
// equivalence it equals the PageRank of U with damping α and
// personalization v.
func GatekeeperStationary(u *matrix.Dense, alpha float64, v matrix.Vector, opts matrix.PowerOptions) (matrix.Vector, error) {
	uhat := MinimalIrreducible(u, alpha, v)
	res, err := matrix.PowerLeft(uhat, opts)
	if err != nil {
		return nil, fmt.Errorf("gatekeeper chain: %w", err)
	}
	n := u.Order()
	out := res.Vector[:n].Clone()
	return out.Normalize(), nil
}

// Stationary computes the stationary distribution of a row-stochastic
// operator by the power method. It is a thin wrapper that surfaces only the
// vector; use matrix.PowerLeft directly when iteration counts matter.
func Stationary(m matrix.LeftMultiplier, opts matrix.PowerOptions) (matrix.Vector, error) {
	res, err := matrix.PowerLeft(m, opts)
	if err != nil {
		return nil, err
	}
	return res.Vector, nil
}

// StationaryDense computes the stationary distribution of a small dense
// chain, preferring the exact linear solve and falling back to the power
// method when the solve is numerically singular (e.g. near-reducible
// chains where the power method still converges from the uniform start).
func StationaryDense(m *matrix.Dense, opts matrix.PowerOptions) (matrix.Vector, error) {
	if err := Validate(m); err != nil {
		return nil, err
	}
	pi, err := matrix.StationaryExact(m)
	if err == nil {
		return pi, nil
	}
	res, perr := matrix.PowerLeft(m, opts)
	if perr != nil {
		return nil, fmt.Errorf("exact solve failed (%v); power method: %w", err, perr)
	}
	return res.Vector, nil
}
