package graph

import (
	"testing"
)

// buildTinyWeb builds a 2-site, 5-doc graph used across tests:
//
//	site a: a/1 → a/2, a/2 → a/1, a/1 → b/1
//	site b: b/1 → b/2, b/2 → b/3, b/3 → a/1
func buildTinyWeb(t *testing.T) *DocGraph {
	t.Helper()
	b := NewBuilder()
	b.AddLink("http://a.example/1", "http://a.example/2")
	b.AddLink("http://a.example/2", "http://a.example/1")
	b.AddLink("http://a.example/1", "http://b.example/1")
	b.AddLink("http://b.example/1", "http://b.example/2")
	b.AddLink("http://b.example/2", "http://b.example/3")
	b.AddLink("http://b.example/3", "http://a.example/1")
	dg := b.Build()
	if err := dg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return dg
}

func TestBuilderAssignsSitesByHost(t *testing.T) {
	dg := buildTinyWeb(t)
	if dg.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2", dg.NumSites())
	}
	if dg.NumDocs() != 5 {
		t.Fatalf("NumDocs = %d, want 5", dg.NumDocs())
	}
	if dg.Sites[0].Name != "a.example" || dg.Sites[1].Name != "b.example" {
		t.Errorf("site names: %q %q", dg.Sites[0].Name, dg.Sites[1].Name)
	}
	if dg.SiteSize(0) != 2 || dg.SiteSize(1) != 3 {
		t.Errorf("site sizes: %d %d", dg.SiteSize(0), dg.SiteSize(1))
	}
}

func TestBuilderIdempotentDocs(t *testing.T) {
	b := NewBuilder()
	d1 := b.AddDoc("http://x.example/p")
	d2 := b.AddDoc("http://x.example/p")
	if d1 != d2 {
		t.Errorf("AddDoc not idempotent: %d vs %d", d1, d2)
	}
	dg := b.Build()
	if dg.NumDocs() != 1 {
		t.Errorf("NumDocs = %d", dg.NumDocs())
	}
}

func TestBuilderExplicitSite(t *testing.T) {
	b := NewBuilder()
	b.AddDocInSite("doc-1", "siteX")
	b.AddDocInSite("doc-2", "siteX")
	b.AddDocInSite("doc-3", "siteY")
	dg := b.Build()
	if dg.NumSites() != 2 || dg.SiteSize(0) != 2 {
		t.Errorf("sites = %d, size(0) = %d", dg.NumSites(), dg.SiteSize(0))
	}
	if err := dg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSiteOf(t *testing.T) {
	dg := buildTinyWeb(t)
	for _, d := range dg.Sites[1].Docs {
		if dg.SiteOf(d) != 1 {
			t.Errorf("doc %d should be in site 1", d)
		}
	}
}

func TestLocalSubgraph(t *testing.T) {
	dg := buildTinyWeb(t)
	sub, idx := dg.LocalSubgraph(1) // b.example: 3 docs, chain b1→b2→b3
	if sub.NumNodes() != 3 {
		t.Fatalf("local nodes = %d, want 3", sub.NumNodes())
	}
	// Only intra-site edges survive: b1→b2, b2→b3 (b3→a/1 is external).
	if sub.NumEdges() != 2 {
		t.Errorf("local edges = %d, want 2", sub.NumEdges())
	}
	if idx.Len() != 3 {
		t.Errorf("index len = %d", idx.Len())
	}
	// Round-trip local↔global mapping.
	for local, global := range idx.ToGlobal {
		back, ok := idx.ToLocal(global)
		if !ok || back != local {
			t.Errorf("mapping round-trip failed at local %d", local)
		}
	}
	if _, ok := idx.ToLocal(DocID(0)); ok {
		t.Error("doc of site a should not map into site b's index")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	dg := buildTinyWeb(t)
	dg.Docs[0].Site = 1 // now site rosters disagree
	if err := dg.Validate(); err == nil {
		t.Error("Validate accepted corrupted site mapping")
	}
}

func TestSiteNameOf(t *testing.T) {
	tests := []struct {
		url, want string
	}{
		{"http://www.epfl.ch/", "www.epfl.ch"},
		{"http://Research.EPFL.ch/research/x?id=1", "research.epfl.ch"},
		{"https://a.example:8080/p", "a.example:8080"},
		{"site7/page3", "site7"},
		{"//host/only", "host"},
	}
	for _, tt := range tests {
		if got := SiteNameOf(tt.url); got != tt.want {
			t.Errorf("SiteNameOf(%q) = %q, want %q", tt.url, got, tt.want)
		}
	}
}

func TestDeriveSiteGraph(t *testing.T) {
	dg := buildTinyWeb(t)
	sg := DeriveSiteGraph(dg, SiteGraphOptions{})
	if sg.NumSites() != 2 {
		t.Fatalf("NumSites = %d", sg.NumSites())
	}
	// Site a: 2 intra edges + 1 to b. Site b: 2 intra + 1 to a.
	if got := sg.SiteLinkCount(0, 0); got != 2 {
		t.Errorf("a→a = %g, want 2", got)
	}
	if got := sg.SiteLinkCount(0, 1); got != 1 {
		t.Errorf("a→b = %g, want 1", got)
	}
	if got := sg.SiteLinkCount(1, 1); got != 2 {
		t.Errorf("b→b = %g, want 2", got)
	}
	if got := sg.SiteLinkCount(1, 0); got != 1 {
		t.Errorf("b→a = %g, want 1", got)
	}
	// Aggregation preserves total edge weight.
	if got, want := sg.TotalWeight(), 6.0; got != want {
		t.Errorf("TotalWeight = %g, want %g", got, want)
	}
}

func TestDeriveSiteGraphDropSelfLoops(t *testing.T) {
	dg := buildTinyWeb(t)
	sg := DeriveSiteGraph(dg, SiteGraphOptions{DropSelfLoops: true})
	if got := sg.SiteLinkCount(0, 0); got != 0 {
		t.Errorf("a→a = %g, want 0 with DropSelfLoops", got)
	}
	if got := sg.TotalWeight(); got != 2 {
		t.Errorf("TotalWeight = %g, want 2 (only inter-site)", got)
	}
}
