package graph

import "fmt"

// SiteGraphOptions controls SiteGraph derivation.
type SiteGraphOptions struct {
	// DropSelfLoops omits intra-site edges from the SiteGraph. The paper
	// counts "the number of outgoing edges from any node in the first site
	// to any node in the second site"; with DropSelfLoops false (the
	// default) the same counting is applied to I = J, so Y_II carries the
	// intra-site link mass — matching the random-surfer reading in which
	// most transitions stay within a site. Setting it true exposes the
	// inter-site-only reading for ablation.
	DropSelfLoops bool
}

// SiteGraph is the paper's G_S(V_S, E_S): one node per Web site, edge
// weights counting the SiteLinks (document-level links aggregated between
// site pairs).
type SiteGraph struct {
	// G holds the site-level link structure; node s corresponds to site
	// SiteID(s) of the originating DocGraph.
	G *Digraph
	// Names holds the site names indexed by SiteID.
	Names []string
}

// NumSites returns the number of sites.
func (sg *SiteGraph) NumSites() int { return len(sg.Names) }

// DeriveSiteGraph aggregates a DocGraph at the Web-site level (§3.2 step
// 2): for each document edge d→d' it adds one unit of weight (times the
// edge multiplicity) to the site edge site(d)→site(d').
func DeriveSiteGraph(dg *DocGraph, opts SiteGraphOptions) *SiteGraph {
	ns := dg.NumSites()
	g := NewDigraph(ns)
	dg.G.EachEdgeAll(func(from int, e Edge) {
		sFrom := dg.Docs[from].Site
		sTo := dg.Docs[e.To].Site
		if opts.DropSelfLoops && sFrom == sTo {
			return
		}
		g.AddEdge(int(sFrom), int(sTo), e.Weight)
	})
	g.Dedupe()
	names := make([]string, ns)
	for s, site := range dg.Sites {
		names[s] = site.Name
	}
	return &SiteGraph{G: g, Names: names}
}

// SiteLinkCount returns the aggregated SiteLink weight from site a to site
// b (0 when no link exists).
func (sg *SiteGraph) SiteLinkCount(a, b SiteID) float64 {
	var w float64
	sg.G.EachEdge(int(a), func(e Edge) {
		if e.To == int(b) {
			w += e.Weight
		}
	})
	return w
}

// TotalWeight returns the sum of all SiteLink weights, which equals the
// total DocLink weight covered by the aggregation (all edges, or inter-site
// edges only when self-loops were dropped).
func (sg *SiteGraph) TotalWeight() float64 {
	var w float64
	sg.G.EachEdgeAll(func(_ int, e Edge) { w += e.Weight })
	return w
}

// String summarizes the SiteGraph.
func (sg *SiteGraph) String() string {
	return fmt.Sprintf("SiteGraph{%d sites, %d edges, weight %.0f}",
		sg.NumSites(), sg.G.NumEdges(), sg.TotalWeight())
}
