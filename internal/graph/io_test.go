package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	dg := buildTinyWeb(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, dg); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertSameDocGraph(t, dg, back)
}

func TestGobRoundTrip(t *testing.T) {
	dg := buildTinyWeb(t)
	var buf bytes.Buffer
	if err := EncodeGob(&buf, dg); err != nil {
		t.Fatalf("EncodeGob: %v", err)
	}
	back, err := DecodeGob(&buf)
	if err != nil {
		t.Fatalf("DecodeGob: %v", err)
	}
	assertSameDocGraph(t, dg, back)
}

func assertSameDocGraph(t *testing.T, a, b *DocGraph) {
	t.Helper()
	if a.NumDocs() != b.NumDocs() || a.NumSites() != b.NumSites() {
		t.Fatalf("shape: %d/%d docs, %d/%d sites",
			a.NumDocs(), b.NumDocs(), a.NumSites(), b.NumSites())
	}
	for d := range a.Docs {
		if a.Docs[d] != b.Docs[d] {
			t.Fatalf("doc %d: %+v vs %+v", d, a.Docs[d], b.Docs[d])
		}
	}
	for s := range a.Sites {
		if a.Sites[s].Name != b.Sites[s].Name {
			t.Fatalf("site %d name: %q vs %q", s, a.Sites[s].Name, b.Sites[s].Name)
		}
	}
	a.G.Dedupe()
	b.G.Dedupe()
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatalf("edges: %d vs %d", a.G.NumEdges(), b.G.NumEdges())
	}
	for i := 0; i < a.G.NumNodes(); i++ {
		var ea, eb []Edge
		a.G.EachEdge(i, func(e Edge) { ea = append(ea, e) })
		b.G.EachEdge(i, func(e Edge) { eb = append(eb, e) })
		if len(ea) != len(eb) {
			t.Fatalf("node %d: %d vs %d edges", i, len(ea), len(eb))
		}
		for k := range ea {
			if ea[k] != eb[k] {
				t.Fatalf("node %d edge %d: %+v vs %+v", i, k, ea[k], eb[k])
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	tests := []struct {
		name, input string
	}{
		{"unknown record", "frob 1 2\n"},
		{"site non-dense", "site 5 x\n"},
		{"doc without site", "doc 0 0 http://x/\n"},
		{"doc bad site id", "site 0 a\ndoc 0 3 http://x/\n"},
		{"edge unknown doc", "site 0 a\ndoc 0 0 u\nedge 0 7\n"},
		{"edge bad weight", "site 0 a\ndoc 0 0 u\nedge 0 0 xyz\n"},
		{"short site", "site 0\n"},
		{"short edge", "site 0 a\ndoc 0 0 u\nedge 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(tt.input)); err == nil {
				t.Errorf("ReadText accepted %q", tt.input)
			}
		})
	}
}

func TestReadTextSkipsCommentsAndBlank(t *testing.T) {
	input := "# header\n\nsite 0 a\n# mid\ndoc 0 0 http://a/1\n"
	dg, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if dg.NumDocs() != 1 {
		t.Errorf("NumDocs = %d", dg.NumDocs())
	}
}

func TestTextPreservesWeights(t *testing.T) {
	b := NewBuilder()
	d1 := b.AddDoc("http://a.example/1")
	d2 := b.AddDoc("http://a.example/2")
	dg := b.Build()
	dg.G.AddEdge(int(d1), int(d2), 2.5)
	var buf bytes.Buffer
	if err := WriteText(&buf, dg); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	var w float64
	back.G.EachEdge(int(d1), func(e Edge) { w = e.Weight })
	if w != 2.5 {
		t.Errorf("weight = %g, want 2.5", w)
	}
}

// randomDocGraph builds a random multi-site DocGraph for property tests.
func randomDocGraph(rng *rand.Rand) *DocGraph {
	b := NewBuilder()
	nSites := rng.Intn(5) + 1
	var urls []string
	for s := 0; s < nSites; s++ {
		nDocs := rng.Intn(6) + 1
		for d := 0; d < nDocs; d++ {
			url := "http://site" + string(rune('a'+s)) + ".example/p" + string(rune('0'+d))
			b.AddDoc(url)
			urls = append(urls, url)
		}
	}
	nEdges := rng.Intn(4 * len(urls))
	for e := 0; e < nEdges; e++ {
		b.AddLink(urls[rng.Intn(len(urls))], urls[rng.Intn(len(urls))])
	}
	return b.Build()
}

// Property: both serializations round-trip arbitrary random DocGraphs.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dg := randomDocGraph(rng)

		var tb, gb bytes.Buffer
		if err := WriteText(&tb, dg); err != nil {
			return false
		}
		fromText, err := ReadText(&tb)
		if err != nil {
			return false
		}
		if err := EncodeGob(&gb, dg); err != nil {
			return false
		}
		fromGob, err := DecodeGob(&gb)
		if err != nil {
			return false
		}
		return fromText.NumDocs() == dg.NumDocs() &&
			fromGob.NumDocs() == dg.NumDocs() &&
			fromText.G.NumEdges() == dg.G.NumEdges() &&
			fromGob.G.NumEdges() == dg.G.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: SiteGraph aggregation preserves total link weight and its
// weights are exactly the per-site-pair sums.
func TestSiteGraphAggregationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dg := randomDocGraph(rng)
		sg := DeriveSiteGraph(dg, SiteGraphOptions{})
		var docTotal float64
		dg.G.EachEdgeAll(func(_ int, e Edge) { docTotal += e.Weight })
		if sg.TotalWeight() != docTotal {
			return false
		}
		// Cross-check one random site pair by brute force.
		if dg.NumSites() == 0 {
			return true
		}
		sa := SiteID(rng.Intn(dg.NumSites()))
		sb := SiteID(rng.Intn(dg.NumSites()))
		var brute float64
		dg.G.EachEdgeAll(func(from int, e Edge) {
			if dg.Docs[from].Site == sa && dg.Docs[e.To].Site == sb {
				brute += e.Weight
			}
		})
		return sg.SiteLinkCount(sa, sb) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
