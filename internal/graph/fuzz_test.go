package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText hardens the text graph parser: arbitrary input must never
// panic, and any input it accepts must produce a valid DocGraph that
// round-trips through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("# empty\n")
	f.Add("site 0 a.example\ndoc 0 0 http://a.example/\n")
	f.Add("site 0 a\nsite 1 b\ndoc 0 0 u1\ndoc 1 1 u2\nedge 0 1\nedge 1 0 2.5\n")
	f.Add("site 0\n")
	f.Add("edge 0 0\n")
	f.Add("doc 0 9 u\n")
	f.Add("site 0 a\ndoc 0 0 u\nedge 0 0 -1\n")
	f.Add(strings.Repeat("site 0 a\n", 3))

	f.Fuzz(func(t *testing.T, input string) {
		dg, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := dg.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v\ninput: %q", verr, input)
		}
		var buf bytes.Buffer
		if werr := WriteText(&buf, dg); werr != nil {
			t.Fatalf("WriteText of accepted graph: %v", werr)
		}
		back, rerr := ReadText(&buf)
		if rerr != nil {
			t.Fatalf("round-trip re-read failed: %v\nserialized: %q", rerr, buf.String())
		}
		if back.NumDocs() != dg.NumDocs() || back.NumSites() != dg.NumSites() {
			t.Fatalf("round-trip changed shape: %d/%d docs, %d/%d sites",
				dg.NumDocs(), back.NumDocs(), dg.NumSites(), back.NumSites())
		}
	})
}

// FuzzDecodeGob hardens the binary decoder against corrupt payloads.
func FuzzDecodeGob(f *testing.F) {
	// Seed with a valid encoding and some mutations of it.
	b := NewBuilder()
	b.AddLink("http://a.example/", "http://b.example/")
	dg := b.Build()
	var buf bytes.Buffer
	if err := EncodeGob(&buf, dg); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	if len(valid) > 10 {
		mutated := append([]byte(nil), valid...)
		mutated[len(mutated)/2] ^= 0xFF
		f.Add(mutated)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		dg, err := DecodeGob(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := dg.Validate(); verr != nil {
			t.Fatalf("accepted gob fails Validate: %v", verr)
		}
	})
}
