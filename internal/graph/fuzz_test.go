package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzReadText hardens the text graph parser: arbitrary input must never
// panic, and any input it accepts must produce a valid DocGraph that
// round-trips through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("# empty\n")
	f.Add("site 0 a.example\ndoc 0 0 http://a.example/\n")
	f.Add("site 0 a\nsite 1 b\ndoc 0 0 u1\ndoc 1 1 u2\nedge 0 1\nedge 1 0 2.5\n")
	f.Add("site 0\n")
	f.Add("edge 0 0\n")
	f.Add("doc 0 9 u\n")
	f.Add("site 0 a\ndoc 0 0 u\nedge 0 0 -1\n")
	f.Add(strings.Repeat("site 0 a\n", 3))

	f.Fuzz(func(t *testing.T, input string) {
		dg, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := dg.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v\ninput: %q", verr, input)
		}
		var buf bytes.Buffer
		if werr := WriteText(&buf, dg); werr != nil {
			t.Fatalf("WriteText of accepted graph: %v", werr)
		}
		back, rerr := ReadText(&buf)
		if rerr != nil {
			t.Fatalf("round-trip re-read failed: %v\nserialized: %q", rerr, buf.String())
		}
		if back.NumDocs() != dg.NumDocs() || back.NumSites() != dg.NumSites() {
			t.Fatalf("round-trip changed shape: %d/%d docs, %d/%d sites",
				dg.NumDocs(), back.NumDocs(), dg.NumSites(), back.NumSites())
		}
	})
}

// FuzzDecodeGob hardens the binary decoder against corrupt payloads.
func FuzzDecodeGob(f *testing.F) {
	// Seed with a valid encoding and some mutations of it.
	b := NewBuilder()
	b.AddLink("http://a.example/", "http://b.example/")
	dg := b.Build()
	var buf bytes.Buffer
	if err := EncodeGob(&buf, dg); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	if len(valid) > 10 {
		mutated := append([]byte(nil), valid...)
		mutated[len(mutated)/2] ^= 0xFF
		f.Add(mutated)
		f.Add(valid[:len(valid)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, data []byte) {
		dg, err := DecodeGob(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := dg.Validate(); verr != nil {
			t.Fatalf("accepted gob fails Validate: %v", verr)
		}
	})
}

// FuzzCloneCOW hardens the copy-on-write contract behind snapshot
// serving: a parent and its CloneCOW clone share adjacency rows by
// pointer, and a random interleaving of AddEdge/Dedupe on either side
// must never write memory the other can read. The check is
// differential — each side is mirrored onto an independent deep copy
// receiving the same operation sequence, and any divergence (the clone
// drifting from its reference, or a clone mutation leaking into the
// parent) fails.
func FuzzCloneCOW(f *testing.F) {
	f.Add([]byte{4, 2, 0, 1, 1, 2, 0, 0, 1, 1, 1, 0})
	f.Add([]byte{8, 3, 0, 1, 1, 2, 2, 3, 2, 0, 5, 3, 1, 6, 3, 0, 0})
	f.Add([]byte{2, 1, 0, 1, 0, 0, 1, 1, 1, 0, 2, 0, 0, 3, 1, 1})
	f.Add([]byte{16, 0, 0, 1, 1, 0, 2, 1, 1})
	f.Add([]byte{})

	sameEdges := func(a, b *Digraph) bool {
		if len(a.out) != len(b.out) {
			return false
		}
		for i := range a.out {
			if len(a.out[i]) != len(b.out[i]) {
				return false
			}
			for k := range a.out[i] {
				if a.out[i][k] != b.out[i][k] {
					return false
				}
			}
		}
		return true
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 2 + int(data[0])%14
		k := int(data[1]) % 16
		data = data[2:]
		parent := NewDigraph(n)
		for i := 0; i < k && len(data) >= 2; i++ {
			parent.AddEdge(int(data[0])%n, int(data[1])%n, float64(1+data[1]%5))
			data = data[2:]
		}

		// CloneCOW dedupes the parent first, so deep copies taken after it
		// start bitwise equal to both sides of the COW pair.
		cow := parent.CloneCOW()
		refCow := parent.Clone()
		refParent := parent.Clone()

		for len(data) >= 3 {
			sel, from, to := data[0], int(data[1])%n, int(data[2])%n
			data = data[3:]
			w := float64(1 + sel%5)
			switch sel % 4 {
			case 0:
				cow.AddEdge(from, to, w)
				refCow.AddEdge(from, to, w)
			case 1:
				parent.AddEdge(from, to, w)
				refParent.AddEdge(from, to, w)
			case 2:
				cow.Dedupe()
				refCow.Dedupe()
			case 3:
				parent.Dedupe()
				refParent.Dedupe()
			}
		}

		if !sameEdges(cow, refCow) {
			t.Fatal("COW clone diverged from its deep-copy reference")
		}
		if !sameEdges(parent, refParent) {
			t.Fatal("parent diverged from its deep-copy reference — a COW mutation leaked across the pair")
		}
		// The derived transition matrices must agree too: a corrupted
		// shared row that happens to survive the edge-list comparison
		// (e.g. a Dedupe sorting a row the other side still reads) would
		// surface here.
		if !reflect.DeepEqual(cow.TransitionMatrix(), refCow.TransitionMatrix()) {
			t.Fatal("COW clone transition matrix diverged from its reference")
		}
		if !reflect.DeepEqual(parent.TransitionMatrix(), refParent.TransitionMatrix()) {
			t.Fatal("parent transition matrix diverged from its reference")
		}
	})
}
