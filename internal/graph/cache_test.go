package graph

import (
	"math/rand"
	"testing"
)

func TestTransitionMatrixCached(t *testing.T) {
	g := NewDigraph(3)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	m1 := g.TransitionMatrix()
	if m2 := g.TransitionMatrix(); m2 != m1 {
		t.Error("second TransitionMatrix call did not return the cached matrix")
	}
}

func TestTransitionMatrixInvalidatedByAddEdge(t *testing.T) {
	g := NewDigraph(3)
	g.AddLink(0, 1)
	m1 := g.TransitionMatrix()
	if got := m1.At(0, 1); got != 1 {
		t.Fatalf("M[0,1] = %g, want 1", got)
	}
	g.AddLink(0, 2)
	m2 := g.TransitionMatrix()
	if m2 == m1 {
		t.Fatal("AddEdge did not invalidate the cached transition matrix")
	}
	if got := m2.At(0, 1); got != 0.5 {
		t.Errorf("after new edge M[0,1] = %g, want 0.5", got)
	}
}

func TestTransitionMatrixInvalidatedByEnsureNodes(t *testing.T) {
	g := NewDigraph(2)
	g.AddLink(0, 1)
	m1 := g.TransitionMatrix()
	g.EnsureNodes(4)
	m2 := g.TransitionMatrix()
	if m2 == m1 {
		t.Fatal("EnsureNodes growth did not invalidate the cache")
	}
	if m2.Order() != 4 {
		t.Errorf("Order = %d, want 4", m2.Order())
	}
	// A no-growth EnsureNodes must keep the cache.
	m3 := g.TransitionMatrix()
	g.EnsureNodes(3)
	if g.TransitionMatrix() != m3 {
		t.Error("no-growth EnsureNodes dropped the cache")
	}
}

// TestVersionTracksContentMutations pins the mutation counter's contract:
// AddEdge and EnsureNodes growth advance it, while Dedupe and
// TransitionMatrix (storage reorganizations, not content changes) keep it
// stable — the property lmm.Ranker's stale detection depends on.
func TestVersionTracksContentMutations(t *testing.T) {
	g := NewDigraph(3)
	v0 := g.Version()
	g.AddLink(0, 1)
	if g.Version() == v0 {
		t.Fatal("AddEdge did not advance the version")
	}
	g.AddLink(0, 1) // duplicate edge is still a content mutation
	v1 := g.Version()
	g.Dedupe()
	g.TransitionMatrix()
	g.OutDegree(0)
	if g.Version() != v1 {
		t.Error("Dedupe/TransitionMatrix/OutDegree advanced the version")
	}
	g.EnsureNodes(2) // no growth
	if g.Version() != v1 {
		t.Error("no-growth EnsureNodes advanced the version")
	}
	g.EnsureNodes(5)
	if g.Version() == v1 {
		t.Error("EnsureNodes growth did not advance the version")
	}
	// Clones carry the counter but advance independently.
	c := g.Clone()
	if c.Version() != g.Version() {
		t.Error("clone does not carry the version")
	}
	c.AddLink(0, 2)
	if c.Version() == g.Version() {
		t.Error("clone mutation did not advance its own version")
	}
}

func TestCloneDoesNotShareTransitionCache(t *testing.T) {
	g := NewDigraph(2)
	g.AddLink(0, 1)
	g.TransitionMatrix()
	c := g.Clone()
	c.AddLink(1, 0)
	if c.TransitionMatrix().At(1, 0) != 1 {
		t.Error("clone transition wrong")
	}
	if g.TransitionMatrix().At(1, 0) != 0 {
		t.Error("original transition affected by clone mutation")
	}
}

// mapLocalSubgraph is the pre-optimization extraction (per-site map,
// AddEdge + Dedupe), kept as the reference the dense-table fast path
// must reproduce exactly.
func mapLocalSubgraph(dg *DocGraph, s SiteID) *Digraph {
	docs := dg.Sites[s].Docs
	toLocal := make(map[DocID]int, len(docs))
	for i, d := range docs {
		toLocal[d] = i
	}
	sub := NewDigraph(len(docs))
	for i, d := range docs {
		dg.G.EachEdge(int(d), func(e Edge) {
			if j, ok := toLocal[DocID(e.To)]; ok {
				sub.AddEdge(i, j, e.Weight)
			}
		})
	}
	sub.Dedupe()
	return sub
}

func sameDigraph(t *testing.T, got, want *Digraph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("nodes %d vs %d", got.NumNodes(), want.NumNodes())
	}
	for i := 0; i < got.NumNodes(); i++ {
		var ge, we []Edge
		got.EachEdge(i, func(e Edge) { ge = append(ge, e) })
		want.EachEdge(i, func(e Edge) { we = append(we, e) })
		if len(ge) != len(we) {
			t.Fatalf("node %d: %d vs %d edges", i, len(ge), len(we))
		}
		for k := range ge {
			if ge[k] != we[k] {
				t.Fatalf("node %d edge %d: %+v vs %+v", i, k, ge[k], we[k])
			}
		}
	}
}

func TestLocalSubgraphMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		dg := benchDocGraph(rng.Intn(5)+2, rng.Intn(20)+2, rng.Int63())
		// Duplicate links exercise the parent-dedupe-first contract.
		nd := dg.NumDocs()
		for e := 0; e < nd; e++ {
			dg.G.AddLink(rng.Intn(nd), rng.Intn(nd))
		}
		for s := 0; s < dg.NumSites(); s++ {
			got, idx := dg.LocalSubgraph(SiteID(s))
			want := mapLocalSubgraph(dg, SiteID(s))
			sameDigraph(t, got, want)
			for i, d := range dg.Sites[s].Docs {
				j, ok := idx.ToLocal(d)
				if !ok || j != i {
					t.Fatalf("ToLocal(%d) = %d,%v, want %d,true", d, j, ok, i)
				}
			}
			// A document of another site must not resolve.
			for d := 0; d < nd; d++ {
				if dg.Docs[d].Site != SiteID(s) {
					if _, ok := idx.ToLocal(DocID(d)); ok {
						t.Fatalf("ToLocal resolved foreign doc %d", d)
					}
					break
				}
			}
		}
	}
}

// A hand-built DocGraph with a non-ascending site roster still extracts
// correctly (the born-deduplicated shortcut must detect and skip it).
func TestLocalSubgraphNonAscendingRoster(t *testing.T) {
	g := NewDigraph(3)
	g.AddLink(0, 1)
	g.AddLink(1, 0)
	g.AddLink(1, 2)
	g.AddLink(2, 2)
	dg := &DocGraph{
		G: g,
		Docs: []Doc{
			{URL: "a/0", Site: 0},
			{URL: "a/1", Site: 0},
			{URL: "b/0", Site: 1},
		},
		Sites: []Site{
			{Name: "a", Docs: []DocID{1, 0}}, // deliberately descending
			{Name: "b", Docs: []DocID{2}},
		},
	}
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
	sub, idx := dg.LocalSubgraph(0)
	// Local node 0 is DocID 1, local node 1 is DocID 0.
	if j, ok := idx.ToLocal(1); !ok || j != 0 {
		t.Fatalf("ToLocal(1) = %d,%v", j, ok)
	}
	var edges []Edge
	sub.EachEdge(0, func(e Edge) { edges = append(edges, e) })
	if len(edges) != 1 || edges[0].To != 1 {
		t.Fatalf("local node 0 edges = %+v, want one edge to 1", edges)
	}
}
