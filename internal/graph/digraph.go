// Package graph provides the Web-graph substrate of the paper's §3.1: the
// document-level DocGraph, the site-level SiteGraph derived from it by
// SiteLink counting, per-site local subgraphs G^s_d, transition-matrix
// extraction M(G), and text/gob serialization.
package graph

import (
	"fmt"
	"sort"

	"lmmrank/internal/matrix"
)

// Edge is one weighted directed edge. Weight counts link multiplicity
// (several hyperlinks from one page to the same target accumulate).
type Edge struct {
	To     int
	Weight float64
}

// Digraph is a weighted directed graph over nodes 0..N-1 with adjacency
// stored per source node. The zero value is an empty graph; grow it with
// EnsureNodes and AddEdge.
//
// A Digraph is not safe for concurrent mutation. Note that Dedupe,
// OutDegree and TransitionMatrix mutate internal state (merging edges,
// caching the transition matrix); share a graph across goroutines only
// after calling Dedupe and TransitionMatrix on it first, so the parallel
// phase is read-only.
type Digraph struct {
	out     [][]Edge
	deduped bool
	// trans caches TransitionMatrix; any mutation (AddEdge, EnsureNodes
	// growth) invalidates it.
	trans *matrix.CSR
	// version counts content mutations (AddEdge, EnsureNodes growth).
	// Consumers that precompute derived structure (lmm.Ranker, the
	// distributed coordinator's shard digests) record it at build time and
	// compare later, turning the mutate-after-precompute footgun into a
	// detectable error instead of silently stale results. Dedupe and
	// TransitionMatrix do not advance it: they reorganize storage without
	// changing the graph's content.
	version uint64
	// shared marks adjacency rows whose backing arrays are aliased by a
	// CloneCOW relative (in either direction). A shared row is immutable:
	// AddEdge copies it out (detachRow) before appending, and Dedupe skips
	// it — sound because CloneCOW dedupes first, so every shared row is
	// already sorted and merged. nil (the common case) means no row is
	// shared. Rows past len(shared) are never shared.
	shared []bool
}

// NewDigraph returns a graph with n isolated nodes.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewDigraph with negative size %d", n))
	}
	return &Digraph{out: make([][]Edge, n)}
}

// NumNodes returns the number of nodes.
func (g *Digraph) NumNodes() int { return len(g.out) }

// NumEdges returns the number of stored (deduplicated if Dedupe was called)
// edge entries.
func (g *Digraph) NumEdges() int {
	var n int
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// Version returns the graph's content-mutation counter: it advances on
// every AddEdge and on EnsureNodes growth, and is stable across Dedupe
// and TransitionMatrix calls. Two reads returning the same value bracket
// a window with no content mutation.
func (g *Digraph) Version() uint64 { return g.version }

// EnsureNodes grows the graph so that it has at least n nodes.
func (g *Digraph) EnsureNodes(n int) {
	if len(g.out) < n {
		g.trans = nil
		g.version++
	}
	for len(g.out) < n {
		g.out = append(g.out, nil)
	}
}

// AddEdge appends a directed edge with the given weight. Self-loops are
// allowed (a page may link to itself). It panics on out-of-range nodes or
// non-positive weight.
func (g *Digraph) AddEdge(from, to int, weight float64) {
	if from < 0 || from >= len(g.out) || to < 0 || to >= len(g.out) {
		panic(fmt.Sprintf("graph: edge (%d→%d) out of range %d", from, to, len(g.out)))
	}
	if weight <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %g", weight))
	}
	g.detachRow(from)
	g.out[from] = append(g.out[from], Edge{To: to, Weight: weight})
	g.deduped = false
	g.trans = nil
	g.version++
}

// AddLink adds a unit-weight edge, the common case for one hyperlink.
func (g *Digraph) AddLink(from, to int) { g.AddEdge(from, to, 1) }

// detachRow copies a COW-shared adjacency row into private storage so an
// imminent mutation cannot disturb the relative aliasing its backing.
func (g *Digraph) detachRow(i int) {
	if i < len(g.shared) && g.shared[i] {
		g.out[i] = append([]Edge(nil), g.out[i]...)
		g.shared[i] = false
	}
}

// Dedupe merges parallel edges by summing weights and sorts each adjacency
// list by target. Idempotent; cheap when already deduplicated. COW-shared
// rows are skipped: they were deduplicated before being shared, and
// sorting them in place would corrupt the relative reading the same
// backing array.
func (g *Digraph) Dedupe() {
	if g.deduped {
		return
	}
	for i, es := range g.out {
		if len(es) <= 1 || (i < len(g.shared) && g.shared[i]) {
			continue
		}
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
		w := 0
		for k := 1; k < len(es); k++ {
			if es[k].To == es[w].To {
				es[w].Weight += es[k].Weight
			} else {
				w++
				es[w] = es[k]
			}
		}
		g.out[i] = es[:w+1]
	}
	g.deduped = true
}

// OutDegree returns the number of distinct targets of node i (after
// implicit dedupe).
func (g *Digraph) OutDegree(i int) int {
	g.Dedupe()
	return len(g.out[i])
}

// OutWeight returns the total outgoing edge weight of node i.
func (g *Digraph) OutWeight(i int) float64 {
	var s float64
	for _, e := range g.out[i] {
		s += e.Weight
	}
	return s
}

// EachEdge calls fn for every edge leaving node i. Call Dedupe first when
// duplicate entries must be merged.
func (g *Digraph) EachEdge(i int, fn func(e Edge)) {
	for _, e := range g.out[i] {
		fn(e)
	}
}

// EachEdgeAll calls fn(from, e) for every edge in the graph.
func (g *Digraph) EachEdgeAll(fn func(from int, e Edge)) {
	for i, es := range g.out {
		for _, e := range es {
			fn(i, e)
		}
	}
}

// InDegrees returns the in-degree (distinct sources counted once per edge
// entry) of each node. Dedupe first for distinct-source semantics.
func (g *Digraph) InDegrees() []int {
	in := make([]int, len(g.out))
	for _, es := range g.out {
		for _, e := range es {
			in[e.To]++
		}
	}
	return in
}

// Transpose returns the reversed graph.
func (g *Digraph) Transpose() *Digraph {
	t := NewDigraph(len(g.out))
	for i, es := range g.out {
		for _, e := range es {
			t.AddEdge(e.To, i, e.Weight)
		}
	}
	return t
}

// Clone returns a deep copy.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph(len(g.out))
	for i, es := range g.out {
		c.out[i] = append([]Edge(nil), es...)
	}
	c.deduped = g.deduped
	c.version = g.version
	return c
}

// CloneCOW returns a copy-on-write clone: every adjacency row is shared
// with g by pointer and marked shared on both sides, so the clone costs
// O(nodes) instead of O(edges). Either graph may keep mutating — AddEdge
// detaches (privately copies) a shared row before appending, and Dedupe
// leaves shared rows alone — without ever writing memory the other can
// read, which is what lets an immutable serving snapshot keep answering
// straggler queries while an update mutates the clone off to the side.
// g is deduplicated first so the shared rows are in their final sorted,
// merged form. The clone starts at g's version and advances
// independently; the cached transition matrix carries over (same
// content) until either side mutates.
func (g *Digraph) CloneCOW() *Digraph {
	g.Dedupe()
	n := len(g.out)
	for len(g.shared) < n {
		g.shared = append(g.shared, false)
	}
	c := &Digraph{
		out:     append([][]Edge(nil), g.out...),
		deduped: true,
		trans:   g.trans,
		version: g.version,
		shared:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		if len(g.out[i]) > 0 {
			g.shared[i] = true
			c.shared[i] = true
		}
	}
	return c
}

// Dangling returns the nodes with no outgoing edges.
func (g *Digraph) Dangling() []int {
	var out []int
	for i, es := range g.out {
		if len(es) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// TransitionMatrix builds the row-stochastic transition matrix M(G) of the
// random-surfer chain: each node distributes probability across its
// out-edges proportionally to edge weight. Dangling rows are left all-zero;
// downstream irreducibility adjustments (package markov, pagerank) decide
// how to treat them, as in the paper's Mˆ(G).
//
// Because Dedupe leaves every adjacency list sorted and merged, the CSR is
// assembled directly from the lists — no triple round-trip, no re-sort.
// The matrix is cached until the next mutation; callers share the returned
// value and must treat it as read-only.
func (g *Digraph) TransitionMatrix() *matrix.CSR {
	if g.trans != nil {
		return g.trans
	}
	g.Dedupe()
	n := len(g.out)
	rowPtr := make([]int, n+1)
	colIdx := make([]int, g.NumEdges())
	val := make([]float64, len(colIdx))
	p := 0
	for i, es := range g.out {
		var total float64
		for _, e := range es {
			total += e.Weight
		}
		if total > 0 {
			for _, e := range es {
				colIdx[p] = e.To
				val[p] = e.Weight / total
				p++
			}
		}
		rowPtr[i+1] = p
	}
	g.trans = matrix.NewCSRFromSorted(n, rowPtr, colIdx[:p], val[:p])
	return g.trans
}

// TransitionDense is TransitionMatrix materialized densely, for the small
// matrices of the worked example and unit tests.
func (g *Digraph) TransitionDense() *matrix.Dense {
	return g.TransitionMatrix().Dense()
}

// Order implements matrix.Sparsity so that the structural checks
// (IsIrreducible, Period, IsPrimitive) apply directly to graphs.
func (g *Digraph) Order() int { return len(g.out) }

// EachNonZero implements matrix.Sparsity.
func (g *Digraph) EachNonZero(i int, fn func(col int)) {
	for _, e := range g.out[i] {
		if e.Weight > 0 {
			fn(e.To)
		}
	}
}

var _ matrix.Sparsity = (*Digraph)(nil)
