package graph

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format, one record per line:
//
//	# comment
//	site <siteID> <name>
//	doc <docID> <siteID> <url>
//	edge <fromDoc> <toDoc> [weight]
//
// IDs must be dense and ascending within their record type, which keeps the
// format trivially streamable and diff-friendly.

// WriteText serializes dg in the text format.
func WriteText(w io.Writer, dg *DocGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# lmmrank docgraph: %d sites, %d docs, %d edges\n",
		dg.NumSites(), dg.NumDocs(), dg.G.NumEdges())
	for s, site := range dg.Sites {
		fmt.Fprintf(bw, "site %d %s\n", s, site.Name)
	}
	for d, doc := range dg.Docs {
		fmt.Fprintf(bw, "doc %d %d %s\n", d, doc.Site, doc.URL)
	}
	var werr error
	dg.G.EachEdgeAll(func(from int, e Edge) {
		if werr != nil {
			return
		}
		if e.Weight == 1 {
			_, werr = fmt.Fprintf(bw, "edge %d %d\n", from, e.To)
		} else {
			_, werr = fmt.Fprintf(bw, "edge %d %d %g\n", from, e.To, e.Weight)
		}
	})
	if werr != nil {
		return fmt.Errorf("graph: writing edges: %w", werr)
	}
	return bw.Flush()
}

// ReadText parses the text format back into a DocGraph.
func ReadText(r io.Reader) (*DocGraph, error) {
	dg := &DocGraph{G: NewDigraph(0)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "site":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: site needs id and name", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(dg.Sites) {
				return nil, fmt.Errorf("graph: line %d: site id %q not dense-ascending", lineNo, fields[1])
			}
			name := strings.Join(fields[2:], " ")
			dg.Sites = append(dg.Sites, Site{Name: name})
		case "doc":
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: line %d: doc needs id, site and url", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != len(dg.Docs) {
				return nil, fmt.Errorf("graph: line %d: doc id %q not dense-ascending", lineNo, fields[1])
			}
			siteID, err := strconv.Atoi(fields[2])
			if err != nil || siteID < 0 || siteID >= len(dg.Sites) {
				return nil, fmt.Errorf("graph: line %d: invalid site id %q", lineNo, fields[2])
			}
			url := strings.Join(fields[3:], " ")
			d := DocID(len(dg.Docs))
			dg.Docs = append(dg.Docs, Doc{URL: url, Site: SiteID(siteID)})
			dg.Sites[siteID].Docs = append(dg.Sites[siteID].Docs, d)
			dg.G.EnsureNodes(len(dg.Docs))
		case "edge":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: edge needs from and to", lineNo)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", lineNo)
			}
			w := 1.0
			if len(fields) >= 4 {
				var err error
				w, err = strconv.ParseFloat(fields[3], 64)
				if err != nil || !(w > 0) || math.IsInf(w, 0) {
					return nil, fmt.Errorf("graph: line %d: bad edge weight %q", lineNo, fields[3])
				}
			}
			if from < 0 || from >= len(dg.Docs) || to < 0 || to >= len(dg.Docs) {
				return nil, fmt.Errorf("graph: line %d: edge (%d→%d) references unknown doc", lineNo, from, to)
			}
			dg.G.AddEdge(from, to, w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading: %w", err)
	}
	dg.G.Dedupe()
	if err := dg.Validate(); err != nil {
		return nil, err
	}
	return dg, nil
}

// gobGraph is the wire form of a DocGraph: adjacency flattened into
// parallel slices so the gob payload stays compact.
type gobGraph struct {
	Docs      []Doc
	SiteNames []string
	From, To  []int32
	Weight    []float64
}

// EncodeGob writes dg in a compact binary form.
func EncodeGob(w io.Writer, dg *DocGraph) error {
	gg := gobGraph{Docs: dg.Docs, SiteNames: make([]string, len(dg.Sites))}
	for s, site := range dg.Sites {
		gg.SiteNames[s] = site.Name
	}
	n := dg.G.NumEdges()
	gg.From = make([]int32, 0, n)
	gg.To = make([]int32, 0, n)
	gg.Weight = make([]float64, 0, n)
	dg.G.EachEdgeAll(func(from int, e Edge) {
		gg.From = append(gg.From, int32(from))
		gg.To = append(gg.To, int32(e.To))
		gg.Weight = append(gg.Weight, e.Weight)
	})
	if err := gob.NewEncoder(w).Encode(&gg); err != nil {
		return fmt.Errorf("graph: gob encode: %w", err)
	}
	return nil
}

// DecodeGob reads a DocGraph written by EncodeGob.
func DecodeGob(r io.Reader) (*DocGraph, error) {
	var gg gobGraph
	if err := gob.NewDecoder(r).Decode(&gg); err != nil {
		return nil, fmt.Errorf("graph: gob decode: %w", err)
	}
	dg := &DocGraph{
		G:     NewDigraph(len(gg.Docs)),
		Docs:  gg.Docs,
		Sites: make([]Site, len(gg.SiteNames)),
	}
	for s, name := range gg.SiteNames {
		dg.Sites[s].Name = name
	}
	for d, doc := range dg.Docs {
		if int(doc.Site) < 0 || int(doc.Site) >= len(dg.Sites) {
			return nil, fmt.Errorf("graph: gob doc %d has invalid site %d", d, doc.Site)
		}
		dg.Sites[doc.Site].Docs = append(dg.Sites[doc.Site].Docs, DocID(d))
	}
	if len(gg.From) != len(gg.To) || len(gg.From) != len(gg.Weight) {
		return nil, fmt.Errorf("graph: gob edge slices disagree: %d/%d/%d",
			len(gg.From), len(gg.To), len(gg.Weight))
	}
	for k := range gg.From {
		from, to := int(gg.From[k]), int(gg.To[k])
		if from < 0 || from >= len(dg.Docs) || to < 0 || to >= len(dg.Docs) {
			return nil, fmt.Errorf("graph: gob edge %d (%d→%d) out of range", k, from, to)
		}
		if w := gg.Weight[k]; !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: gob edge %d has invalid weight %g", k, gg.Weight[k])
		}
		dg.G.AddEdge(from, to, gg.Weight[k])
	}
	dg.G.Dedupe()
	if err := dg.Validate(); err != nil {
		return nil, err
	}
	return dg, nil
}
