package graph

import (
	"reflect"
	"testing"
)

// cowTestGraph builds a small deduplicated graph with a multi-edge row.
func cowTestGraph(t *testing.T) *Digraph {
	t.Helper()
	g := NewDigraph(4)
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	g.AddLink(1, 2)
	g.AddLink(2, 0)
	g.AddLink(2, 3)
	g.Dedupe()
	return g
}

// TestCloneCOWSharesRows pins the memory shape: a COW clone aliases every
// non-empty adjacency row of the parent by pointer.
func TestCloneCOWSharesRows(t *testing.T) {
	g := cowTestGraph(t)
	c := g.CloneCOW()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone shape %d/%d vs parent %d/%d",
			c.NumNodes(), c.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := range g.out {
		if len(g.out[i]) == 0 {
			continue
		}
		if &g.out[i][0] != &c.out[i][0] {
			t.Errorf("row %d not shared by pointer", i)
		}
	}
	if c.Version() != g.Version() {
		t.Errorf("clone version %d, parent %d", c.Version(), g.Version())
	}
}

// TestCloneCOWDetachOnMutation: mutating the clone copies the touched row
// out and leaves every parent row byte-identical; the parent's version
// never moves.
func TestCloneCOWDetachOnMutation(t *testing.T) {
	g := cowTestGraph(t)
	before := g.Clone()
	v := g.Version()

	c := g.CloneCOW()
	c.AddLink(0, 3)
	c.AddLink(2, 1)
	c.Dedupe()
	c.TransitionMatrix()

	if g.Version() != v {
		t.Fatalf("parent version moved: %d -> %d", v, g.Version())
	}
	if !reflect.DeepEqual(g.out, before.out) {
		t.Fatal("parent adjacency changed under a clone mutation")
	}
	if d := c.OutDegree(0); d != 3 {
		t.Errorf("clone OutDegree(0) = %d, want 3", d)
	}
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("parent OutDegree(0) = %d, want 2", d)
	}
}

// TestCloneCOWParentMutationDetaches: the sharing is symmetric — an
// AddEdge on the parent after the clone copies the parent's row out, so
// the clone keeps reading the original contents.
func TestCloneCOWParentMutationDetaches(t *testing.T) {
	g := cowTestGraph(t)
	c := g.CloneCOW()
	cBefore := c.Clone()

	g.AddLink(1, 3)
	g.AddLink(1, 0)
	g.Dedupe()

	if !reflect.DeepEqual(c.out, cBefore.out) {
		t.Fatal("clone adjacency changed under a parent mutation")
	}
	if d := g.OutDegree(1); d != 3 {
		t.Errorf("parent OutDegree(1) = %d, want 3", d)
	}
	if d := c.OutDegree(1); d != 1 {
		t.Errorf("clone OutDegree(1) = %d, want 1", d)
	}
}

// TestCloneCOWTransitionMatrix: both sides build correct (and initially
// identical, cached) transition matrices; after a clone mutation each
// side's matrix reflects its own graph.
func TestCloneCOWTransitionMatrix(t *testing.T) {
	g := cowTestGraph(t)
	gm := g.TransitionMatrix()
	c := g.CloneCOW()
	if c.TransitionMatrix() != gm {
		t.Error("clone did not inherit the cached transition matrix")
	}
	c.AddLink(3, 0)
	if got := c.TransitionMatrix(); got == gm {
		t.Error("clone mutation did not invalidate its transition matrix")
	}
	if g.TransitionMatrix() != gm {
		t.Error("clone mutation invalidated the parent's transition matrix")
	}
	want := g.Clone().TransitionDense()
	if !reflect.DeepEqual(g.TransitionDense(), want) {
		t.Error("parent transition matrix deviates from a deep copy's")
	}
}

// TestCloneCOWChained: clone-of-clone keeps the same guarantees, the
// lineage the engine produces under repeated updates.
func TestCloneCOWChained(t *testing.T) {
	g := cowTestGraph(t)
	c1 := g.CloneCOW()
	c1.AddLink(0, 3)
	c1.Dedupe()
	c2 := c1.CloneCOW()
	c2.AddLink(1, 3)
	c2.Dedupe()

	if d := g.OutDegree(0); d != 2 {
		t.Errorf("root OutDegree(0) = %d, want 2", d)
	}
	if d := c1.OutDegree(1); d != 1 {
		t.Errorf("c1 OutDegree(1) = %d, want 1", d)
	}
	if d := c2.OutDegree(0); d != 3 {
		t.Errorf("c2 OutDegree(0) = %d, want 3", d)
	}
	if d := c2.OutDegree(1); d != 2 {
		t.Errorf("c2 OutDegree(1) = %d, want 2", d)
	}
}

// TestDocGraphCloneCOW covers the roster half: fresh Docs/Sites slices,
// appends to the clone never disturb the parent, and the digraph is
// COW-shared.
func TestDocGraphCloneCOW(t *testing.T) {
	b := NewBuilder()
	b.AddLink("http://a.example/1", "http://a.example/2")
	b.AddLink("http://a.example/2", "http://b.example/1")
	b.AddLink("http://b.example/1", "http://a.example/1")
	dg := b.Build()

	c := dg.CloneCOW()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	nd, ns := dg.NumDocs(), dg.NumSites()

	// Grow the clone: a new document on site 0 plus a brand-new site.
	c.Docs = append(c.Docs, Doc{URL: "http://a.example/3", Site: 0})
	c.Sites[0].Docs = append(c.Sites[0].Docs, DocID(nd))
	c.Docs = append(c.Docs, Doc{URL: "http://c.example/1", Site: SiteID(ns)})
	c.Sites = append(c.Sites, Site{Name: "c.example", Docs: []DocID{DocID(nd + 1)}})
	c.G.EnsureNodes(len(c.Docs))
	c.G.AddLink(nd, 0)

	if err := c.Validate(); err != nil {
		t.Fatalf("grown clone invalid: %v", err)
	}
	if dg.NumDocs() != nd || dg.NumSites() != ns {
		t.Fatalf("parent grew to %d docs / %d sites", dg.NumDocs(), dg.NumSites())
	}
	if err := dg.Validate(); err != nil {
		t.Fatalf("parent invalid after clone growth: %v", err)
	}
	if got := len(dg.Sites[0].Docs); got != 2 {
		t.Errorf("parent site 0 roster length %d, want 2", got)
	}
}
