package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lmmrank/internal/matrix"
)

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	g.AddLink(2, 0)
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 0 {
		t.Errorf("degrees: %d %d", g.OutDegree(0), g.OutDegree(1))
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewDigraph(2)
	for _, fn := range []func(){
		func() { g.AddLink(0, 2) },
		func() { g.AddLink(-1, 0) },
		func() { g.AddEdge(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDedupeMergesParallelEdges(t *testing.T) {
	g := NewDigraph(2)
	g.AddLink(0, 1)
	g.AddLink(0, 1)
	g.AddEdge(0, 1, 3)
	g.Dedupe()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d after dedupe", g.NumEdges())
	}
	var got float64
	g.EachEdge(0, func(e Edge) { got = e.Weight })
	if got != 5 {
		t.Errorf("merged weight = %g, want 5", got)
	}
}

func TestDedupeSortsByTarget(t *testing.T) {
	g := NewDigraph(4)
	g.AddLink(0, 3)
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	g.Dedupe()
	var order []int
	g.EachEdge(0, func(e Edge) { order = append(order, e.To) })
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestEnsureNodes(t *testing.T) {
	g := NewDigraph(1)
	g.EnsureNodes(5)
	if g.NumNodes() != 5 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	g.EnsureNodes(2) // never shrinks
	if g.NumNodes() != 5 {
		t.Errorf("NumNodes = %d after no-op EnsureNodes", g.NumNodes())
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 2)
	g.AddLink(1, 2)
	tt := g.Transpose()
	var w float64
	tt.EachEdge(1, func(e Edge) {
		if e.To == 0 {
			w = e.Weight
		}
	})
	if w != 2 {
		t.Errorf("transposed edge weight = %g", w)
	}
	back := tt.Transpose()
	back.Dedupe()
	g.Dedupe()
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("double transpose changed edge count")
	}
}

func TestInDegreesAndDangling(t *testing.T) {
	g := NewDigraph(3)
	g.AddLink(0, 2)
	g.AddLink(1, 2)
	in := g.InDegrees()
	if in[2] != 2 || in[0] != 0 {
		t.Errorf("InDegrees = %v", in)
	}
	d := g.Dangling()
	if len(d) != 1 || d[0] != 2 {
		t.Errorf("Dangling = %v, want [2]", d)
	}
}

func TestTransitionMatrix(t *testing.T) {
	g := NewDigraph(3)
	g.AddLink(0, 1)
	g.AddLink(0, 2)
	g.AddEdge(1, 0, 3) // weight 3 — still a single target, so prob 1
	m := g.TransitionMatrix()
	if m.At(0, 1) != 0.5 || m.At(0, 2) != 0.5 {
		t.Errorf("row 0 = %g %g", m.At(0, 1), m.At(0, 2))
	}
	if m.At(1, 0) != 1 {
		t.Errorf("row 1 = %g", m.At(1, 0))
	}
	// Dangling node 2 keeps an all-zero row.
	if got := m.RowSums()[2]; got != 0 {
		t.Errorf("dangling row sum = %g", got)
	}
}

func TestTransitionMatrixWeighted(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 3)
	m := g.TransitionMatrix()
	if math.Abs(m.At(0, 1)-0.25) > 1e-15 || math.Abs(m.At(0, 2)-0.75) > 1e-15 {
		t.Errorf("weighted row = %g %g", m.At(0, 1), m.At(0, 2))
	}
}

func TestDigraphImplementsSparsity(t *testing.T) {
	g := NewDigraph(3)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 0)
	if !matrix.IsIrreducible(g) {
		t.Error("3-cycle graph should be irreducible")
	}
	if matrix.IsPrimitive(g) {
		t.Error("3-cycle is periodic, not primitive")
	}
	g.AddLink(0, 0)
	if !matrix.IsPrimitive(g) {
		t.Error("self-loop makes it primitive")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewDigraph(2)
	g.AddLink(0, 1)
	c := g.Clone()
	c.AddLink(1, 0)
	if g.NumEdges() != 1 {
		t.Error("Clone aliases original adjacency")
	}
}

// Property: for random graphs, TransitionMatrix rows sum to 1 exactly for
// non-dangling nodes and 0 for dangling ones; total out-weight is
// preserved by Dedupe.
func TestTransitionMatrixStochasticQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		g := NewDigraph(n)
		for e := rng.Intn(4 * n); e > 0; e-- {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Float64()+0.1)
		}
		before := make([]float64, n)
		for i := 0; i < n; i++ {
			before[i] = g.OutWeight(i)
		}
		m := g.TransitionMatrix()
		sums := m.RowSums()
		for i := 0; i < n; i++ {
			if before[i] == 0 {
				if sums[i] != 0 {
					return false
				}
			} else if math.Abs(sums[i]-1) > 1e-9 {
				return false
			}
			if math.Abs(g.OutWeight(i)-before[i]) > 1e-9 {
				return false // dedupe changed total weight
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
