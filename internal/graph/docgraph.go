package graph

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// SiteID identifies a Web site within a DocGraph.
type SiteID int

// DocID identifies a Web document within a DocGraph.
type DocID int

// Doc is the metadata of one Web document.
type Doc struct {
	URL  string
	Site SiteID
}

// Site is the metadata of one Web site.
type Site struct {
	Name string
	// Docs lists the documents of the site in ascending DocID order.
	Docs []DocID
}

// DocGraph is the paper's G_D(V_D, E_D): a directed graph of Web documents
// together with the site(d) mapping that induces the SiteGraph. Build one
// incrementally with a Builder or load one with ReadText/DecodeGob.
type DocGraph struct {
	// G holds the document-level link structure; node i corresponds to
	// Docs[i].
	G *Digraph
	// Docs holds per-document metadata indexed by DocID.
	Docs []Doc
	// Sites holds per-site metadata indexed by SiteID.
	Sites []Site
}

// NumDocs returns N_D, the total number of documents.
func (dg *DocGraph) NumDocs() int { return len(dg.Docs) }

// NumSites returns N_S, the total number of sites.
func (dg *DocGraph) NumSites() int { return len(dg.Sites) }

// SiteOf returns the site of document d (the paper's site(d)).
func (dg *DocGraph) SiteOf(d DocID) SiteID { return dg.Docs[d].Site }

// SiteSize returns n_s = size(s), the number of local documents of site s.
func (dg *DocGraph) SiteSize(s SiteID) int { return len(dg.Sites[s].Docs) }

// Validate checks internal consistency: every document belongs to a valid
// site, site rosters agree with document records, and the digraph has one
// node per document.
func (dg *DocGraph) Validate() error {
	if dg.G == nil {
		return fmt.Errorf("graph: nil digraph")
	}
	if dg.G.NumNodes() != len(dg.Docs) {
		return fmt.Errorf("graph: %d digraph nodes vs %d docs", dg.G.NumNodes(), len(dg.Docs))
	}
	counted := 0
	for s, site := range dg.Sites {
		for _, d := range site.Docs {
			if int(d) < 0 || int(d) >= len(dg.Docs) {
				return fmt.Errorf("graph: site %d lists invalid doc %d", s, d)
			}
			if dg.Docs[d].Site != SiteID(s) {
				return fmt.Errorf("graph: doc %d recorded in site %d but maps to site %d", d, s, dg.Docs[d].Site)
			}
			counted++
		}
	}
	if counted != len(dg.Docs) {
		return fmt.Errorf("graph: site rosters cover %d docs, have %d", counted, len(dg.Docs))
	}
	for d, doc := range dg.Docs {
		if int(doc.Site) < 0 || int(doc.Site) >= len(dg.Sites) {
			return fmt.Errorf("graph: doc %d has invalid site %d", d, doc.Site)
		}
	}
	return nil
}

// CloneCOW returns a copy-on-write clone of the whole document graph:
// the digraph shares clean adjacency rows with dg by pointer (see
// Digraph.CloneCOW), and the Docs and Sites rosters are fresh slices
// whose elements are copied — appending documents or sites to the clone
// never disturbs dg. The one aliasing left is each Site.Docs slice,
// which the clone shares until it appends to it; appends only ever write
// indices at or past every aliasing holder's length, so readers of the
// original (who read strictly below their own length) are safe — the
// append-only contract the serving snapshots rely on. Mutating a shared
// roster in place (reordering, truncating) is not supported.
func (dg *DocGraph) CloneCOW() *DocGraph {
	return &DocGraph{
		G:     dg.G.CloneCOW(),
		Docs:  append([]Doc(nil), dg.Docs...),
		Sites: append([]Site(nil), dg.Sites...),
	}
}

// LocalSubgraph extracts G^s_d = (V_d(s), E_d(s)): the subgraph of site s
// restricted to edges whose both endpoints are local documents of s (§3.1).
// The returned LocalIndex maps between global DocIDs and the compact local
// node indices of the subgraph.
//
// The site membership test is the O(1) Docs[d].Site field — no
// hashing. Local indices come from a dense table when the site is a
// large fraction of the graph (the table amortizes), or binary search
// over the ascending roster otherwise, so extraction never does
// O(graph) work for a small site. The parent graph is deduplicated
// first (a mutation — dedupe before fanning LocalSubgraph calls across
// goroutines); the extracted subgraph inherits the sorted, merged rows
// and skips its own dedupe pass.
func (dg *DocGraph) LocalSubgraph(s SiteID) (*Digraph, *LocalIndex) {
	dg.G.Dedupe()
	docs := dg.Sites[s].Docs
	idx := &LocalIndex{ToGlobal: append([]DocID(nil), docs...)}
	ascending := true
	for i := 1; i < len(docs); i++ {
		if docs[i-1] >= docs[i] {
			ascending = false
			break
		}
	}
	// Dense table: required for non-ascending rosters (binary search
	// does not apply) and worthwhile when the site covers a sizeable
	// share of the graph; small sites use binary search instead of
	// zeroing an O(graph) slice.
	var table []int32
	if !ascending || len(docs) >= len(dg.Docs)/8 {
		table = make([]int32, len(dg.Docs))
		for i, d := range docs {
			table[d] = int32(i)
		}
	}
	if !ascending {
		idx.table = table
	}
	localOf := func(d int) int {
		if table != nil {
			return int(table[d])
		}
		g := idx.ToGlobal
		lo, hi := 0, len(g)
		for lo < hi {
			mid := (lo + hi) / 2
			if g[mid] < DocID(d) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	// Pass 1: count each local node's surviving out-edges.
	n := len(docs)
	counts := make([]int, n)
	total := 0
	for i, d := range docs {
		c := 0
		dg.G.EachEdge(int(d), func(e Edge) {
			if dg.Docs[e.To].Site == s {
				c++
			}
		})
		counts[i] = c
		total += c
	}

	// Pass 2: fill one shared backing slice, one slot per local node.
	sub := NewDigraph(n)
	backing := make([]Edge, total)
	p := 0
	for i, d := range docs {
		row := backing[p : p : p+counts[i]]
		dg.G.EachEdge(int(d), func(e Edge) {
			if dg.Docs[e.To].Site == s {
				row = append(row, Edge{To: localOf(e.To), Weight: e.Weight})
			}
		})
		sub.out[i] = row
		p += counts[i]
	}
	// Parent rows are sorted by ascending global target; when the site
	// roster is ascending too (the builder invariant) the local rows stay
	// sorted and merged, so the subgraph is born deduplicated.
	sub.deduped = ascending && dg.G.deduped
	sub.Dedupe()
	return sub, idx
}

// LocalIndex maps between global document IDs and the local node indices
// of one site's subgraph. It holds no reference to the DocGraph, so a
// retained index costs O(site) memory — except for the rare
// non-ascending hand-built roster, which keeps the O(graph) table.
type LocalIndex struct {
	// ToGlobal[i] is the DocID of local node i.
	ToGlobal []DocID
	// table is non-nil only for non-ascending rosters, where the binary
	// search over ToGlobal does not apply.
	table []int32
}

// ToLocal returns the local index of global document d and whether d
// belongs to this site.
func (ix *LocalIndex) ToLocal(d DocID) (int, bool) {
	if int(d) < 0 {
		return 0, false
	}
	if ix.table != nil {
		if int(d) >= len(ix.table) {
			return 0, false
		}
		if i := int(ix.table[d]); i < len(ix.ToGlobal) && ix.ToGlobal[i] == d {
			return i, true
		}
		return 0, false
	}
	i := sort.Search(len(ix.ToGlobal), func(k int) bool { return ix.ToGlobal[k] >= d })
	if i < len(ix.ToGlobal) && ix.ToGlobal[i] == d {
		return i, true
	}
	return 0, false
}

// Len returns the number of local documents.
func (ix *LocalIndex) Len() int { return len(ix.ToGlobal) }

// Builder assembles a DocGraph from URLs and links, assigning documents to
// sites by URL host (scheme-insensitive), the way a crawler would.
type Builder struct {
	dg      DocGraph
	docByID map[string]DocID
	siteBy  map[string]SiteID
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		dg:      DocGraph{G: NewDigraph(0)},
		docByID: make(map[string]DocID),
		siteBy:  make(map[string]SiteID),
	}
}

// AddDoc registers a document by URL (idempotent) and returns its DocID.
// The document is assigned to the site named by the URL host.
func (b *Builder) AddDoc(rawurl string) DocID {
	if d, ok := b.docByID[rawurl]; ok {
		return d
	}
	site := b.siteID(SiteNameOf(rawurl))
	d := DocID(len(b.dg.Docs))
	b.dg.Docs = append(b.dg.Docs, Doc{URL: rawurl, Site: site})
	b.dg.Sites[site].Docs = append(b.dg.Sites[site].Docs, d)
	b.dg.G.EnsureNodes(len(b.dg.Docs))
	b.docByID[rawurl] = d
	return d
}

// AddDocInSite registers a document under an explicit site name, for
// generators that control site structure directly.
func (b *Builder) AddDocInSite(rawurl, siteName string) DocID {
	if d, ok := b.docByID[rawurl]; ok {
		return d
	}
	site := b.siteID(siteName)
	d := DocID(len(b.dg.Docs))
	b.dg.Docs = append(b.dg.Docs, Doc{URL: rawurl, Site: site})
	b.dg.Sites[site].Docs = append(b.dg.Sites[site].Docs, d)
	b.dg.G.EnsureNodes(len(b.dg.Docs))
	b.docByID[rawurl] = d
	return d
}

// AddLink records one hyperlink between two documents, registering either
// endpoint if necessary.
func (b *Builder) AddLink(fromURL, toURL string) {
	from := b.AddDoc(fromURL)
	to := b.AddDoc(toURL)
	b.dg.G.AddLink(int(from), int(to))
}

// LinkIDs records one hyperlink between two already-registered documents.
func (b *Builder) LinkIDs(from, to DocID) {
	b.dg.G.AddLink(int(from), int(to))
}

// Doc returns the DocID of a registered URL.
func (b *Builder) Doc(rawurl string) (DocID, bool) {
	d, ok := b.docByID[rawurl]
	return d, ok
}

// Build finalizes and returns the DocGraph. The builder must not be used
// afterwards.
func (b *Builder) Build() *DocGraph {
	b.dg.G.Dedupe()
	dg := b.dg
	b.dg = DocGraph{}
	return &dg
}

func (b *Builder) siteID(name string) SiteID {
	if s, ok := b.siteBy[name]; ok {
		return s
	}
	s := SiteID(len(b.dg.Sites))
	b.dg.Sites = append(b.dg.Sites, Site{Name: name})
	b.siteBy[name] = s
	return s
}

// SiteNameOf extracts the site name of a URL: its host, lower-cased. URLs
// that do not parse fall back to the prefix up to the first '/', so
// synthetic identifiers still group deterministically.
func SiteNameOf(rawurl string) string {
	if u, err := url.Parse(rawurl); err == nil && u.Host != "" {
		return strings.ToLower(u.Host)
	}
	s := rawurl
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[i+2:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}
