package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func benchDocGraph(nSites, docsPerSite int, seed int64) *DocGraph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	var ids []DocID
	for s := 0; s < nSites; s++ {
		host := fmt.Sprintf("s%d.example", s)
		for d := 0; d < docsPerSite; d++ {
			ids = append(ids, b.AddDocInSite(fmt.Sprintf("http://%s/p%d", host, d), host))
		}
	}
	for e := 0; e < len(ids)*6; e++ {
		b.LinkIDs(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))])
	}
	return b.Build()
}

func BenchmarkDeriveSiteGraph(b *testing.B) {
	dg := benchDocGraph(200, 100, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeriveSiteGraph(dg, SiteGraphOptions{})
	}
}

func BenchmarkLocalSubgraph(b *testing.B) {
	dg := benchDocGraph(50, 400, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg.LocalSubgraph(SiteID(i % dg.NumSites()))
	}
}

func BenchmarkTransitionMatrix(b *testing.B) {
	dg := benchDocGraph(100, 200, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dg.G.TransitionMatrix()
	}
}

func BenchmarkTextRoundTrip(b *testing.B) {
	dg := benchDocGraph(50, 100, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteText(&buf, dg); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadText(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGobRoundTrip(b *testing.B) {
	dg := benchDocGraph(50, 100, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := EncodeGob(&buf, dg); err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeGob(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
