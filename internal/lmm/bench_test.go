package lmm

import (
	"math/rand"
	"testing"

	"lmmrank/internal/graph"
)

func benchChurnWeb(b *testing.B) *graph.DocGraph {
	b.Helper()
	return randomWeb(rand.New(rand.NewSource(99)), 40, 2000)
}

func BenchmarkLayeredDocRank(b *testing.B) {
	dg := benchChurnWeb(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LayeredDocRank(dg, WebConfig{Tol: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalPageRank(b *testing.B) {
	dg := benchChurnWeb(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GlobalPageRank(dg, WebConfig{Tol: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalUpdate compares churn handling: one site changes,
// incremental update vs full recomputation.
func BenchmarkIncrementalUpdate(b *testing.B) {
	dg := benchChurnWeb(b)
	cfg := WebConfig{Tol: 1e-9}
	prev, err := LayeredDocRank(dg, cfg)
	if err != nil {
		b.Fatal(err)
	}
	docs := dg.Sites[3].Docs
	dg.G.AddLink(int(docs[0]), int(docs[len(docs)-1]))

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := UpdateLayeredDocRank(dg, prev, []graph.SiteID{3}, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LayeredDocRank(dg, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGlobalMatrixAssembly(b *testing.B) {
	m := PaperExample()
	local, err := LocalRanks(m, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalMatrix(m, local)
	}
}

func BenchmarkHierarchyRank(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	h := randomHierarchy(rng, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LayeredHierarchyRank(h, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
