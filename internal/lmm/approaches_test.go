package lmm

import (
	"errors"
	"math"
	"testing"

	"lmmrank/internal/matrix"
)

// paperTol matches the 4-decimal rounding of the published vectors: each
// of n entries may be off by 5e-5, plus convergence slack.
const paperTol = 5e-4

func TestLocalRanksReproducePaper(t *testing.T) {
	m := PaperExample()
	local, err := LocalRanks(m, Config{})
	if err != nil {
		t.Fatalf("LocalRanks: %v", err)
	}
	wants := []matrix.Vector{PaperPi1G, PaperPi2G, PaperPi3G}
	for i, want := range wants {
		if local[i].L1Diff(want) > paperTol {
			t.Errorf("π%dG = %v, want ≈ %v", i+1, local[i], want)
		}
	}
}

func TestGlobalMatrixMatchesPaperEntry(t *testing.T) {
	// §2.3.2: w_(3,5)(2,3) = y_32·u²_G3 = 0.5 × 0.6117 = 0.3059.
	m := PaperExample()
	local, err := LocalRanks(m, Config{})
	if err != nil {
		t.Fatalf("LocalRanks: %v", err)
	}
	w, layout := GlobalMatrix(m, local)
	row := layout.Index(State{Phase: 2, Sub: 4}) // (3,5) 1-based
	col := layout.Index(State{Phase: 1, Sub: 2}) // (2,3) 1-based
	if got := w.At(row, col); math.Abs(got-0.3059) > paperTol {
		t.Errorf("w_(3,5)(2,3) = %.4f, want 0.3059", got)
	}
}

func TestGlobalMatrixProperties(t *testing.T) {
	m := PaperExample()
	local, err := LocalRanks(m, Config{})
	if err != nil {
		t.Fatalf("LocalRanks: %v", err)
	}
	w, layout := GlobalMatrix(m, local)
	if w.Order() != 12 {
		t.Fatalf("W order = %d", w.Order())
	}
	// Lemma 1: W is row-stochastic.
	if !w.IsRowStochastic(1e-9) {
		t.Error("W violates the raw stochastic property (Lemma 1)")
	}
	// Lemma 2: W primitive when Y primitive and local ranks positive.
	if !matrix.IsPrimitive(w) {
		t.Error("W not primitive (Lemma 2)")
	}
	// Paper §2.3.2: rows pertaining to one phase are constant.
	r1 := layout.Index(State{Phase: 0, Sub: 0})
	r2 := layout.Index(State{Phase: 0, Sub: 3})
	for j := 0; j < w.Order(); j++ {
		if w.At(r1, j) != w.At(r2, j) {
			t.Fatalf("rows of phase 1 differ at column %d", j)
		}
	}
}

func TestApproach1ReproducesFigure2(t *testing.T) {
	m := PaperExample()
	r, err := Approach1(m, Config{})
	if err != nil {
		t.Fatalf("Approach1: %v", err)
	}
	if r.Scores.L1Diff(PaperPiW) > 12*paperTol {
		t.Errorf("πW = %v\nwant ≈ %v", r.Scores, PaperPiW)
	}
	if got := r.Positions(); !equalInts(got, PaperOrder) {
		t.Errorf("order = %v, want %v", got, PaperOrder)
	}
}

func TestApproach2ReproducesFigure2(t *testing.T) {
	m := PaperExample()
	r, err := Approach2(m, Config{})
	if err != nil {
		t.Fatalf("Approach2: %v", err)
	}
	if r.Scores.L1Diff(PaperPiWTilde) > 12*paperTol {
		t.Errorf("π̃W = %v\nwant ≈ %v", r.Scores, PaperPiWTilde)
	}
	if got := r.Positions(); !equalInts(got, PaperOrder) {
		t.Errorf("order = %v, want %v", got, PaperOrder)
	}
}

func TestApproach3ReproducesPaperValue(t *testing.T) {
	// §2.3.3: π(2,3) = πY(2)·π²G(3) = 0.4015 × 0.6117 = 0.2456.
	m := PaperExample()
	r, err := Approach3(m, Config{})
	if err != nil {
		t.Fatalf("Approach3: %v", err)
	}
	if got := r.Score(State{Phase: 1, Sub: 2}); math.Abs(got-0.2456) > paperTol {
		t.Errorf("π(2,3) = %.4f, want 0.2456", got)
	}
	if !r.Scores.IsDistribution(1e-8) {
		t.Error("Approach 3 result is not a distribution (Theorem 1)")
	}
}

func TestLayeredMethodReproducesPaperValue(t *testing.T) {
	// §2.3.3: π̃(2,3) = π̃Y(2)·π²G(3) = 0.4154 × 0.6117 = 0.2541.
	m := PaperExample()
	r, err := LayeredMethod(m, Config{})
	if err != nil {
		t.Fatalf("LayeredMethod: %v", err)
	}
	if got := r.Score(State{Phase: 1, Sub: 2}); math.Abs(got-0.2541) > paperTol {
		t.Errorf("π̃(2,3) = %.4f, want 0.2541", got)
	}
	if r.Scores.L1Diff(PaperPiWTilde) > 12*paperTol {
		t.Errorf("Layered Method = %v\nwant ≈ %v (π̃W)", r.Scores, PaperPiWTilde)
	}
}

func TestCorollary1Approach2EqualsApproach4(t *testing.T) {
	m := PaperExample()
	gap, err := PartitionGap(m, Config{Tol: 1e-12})
	if err != nil {
		t.Fatalf("PartitionGap: %v", err)
	}
	if gap > 1e-8 {
		t.Errorf("‖A2 − A4‖₁ = %g, want ≈ 0 (Corollary 1)", gap)
	}
}

func TestTopThreeStatesMatchPaper(t *testing.T) {
	// "the top three (highly ranked) overall system states are number
	// 7, 8 and 6, namely (2,3), (3,1) and (2,2)."
	m := PaperExample()
	r, err := LayeredMethod(m, Config{})
	if err != nil {
		t.Fatalf("LayeredMethod: %v", err)
	}
	order := r.Order()
	want := []State{{1, 2}, {2, 0}, {1, 1}}
	for i, w := range want {
		if order[i] != w {
			t.Errorf("top-%d = %v, want %v", i+1, order[i], w)
		}
	}
}

func TestComputeAllBundle(t *testing.T) {
	m := PaperExample()
	all, err := ComputeAll(m, Config{})
	if err != nil {
		t.Fatalf("ComputeAll: %v", err)
	}
	if all.A1 == nil || all.A2 == nil || all.A3 == nil || all.A4 == nil {
		t.Fatal("missing rankings in bundle")
	}
	if all.PiY.L1Diff(PaperPiY) > paperTol {
		t.Errorf("πY = %v, want ≈ %v", all.PiY, PaperPiY)
	}
	if all.PiYTilde.L1Diff(PaperPiYTilde) > paperTol {
		t.Errorf("π̃Y = %v, want ≈ %v", all.PiYTilde, PaperPiYTilde)
	}
	if !all.A1.SameOrder(all.A2) {
		t.Error("Figure 2: Approach 1 and 2 should rank identically on the example")
	}
	if gap := all.A2.Scores.L1Diff(all.A4.Scores); gap > 1e-7 {
		t.Errorf("bundle A2 vs A4 gap = %g", gap)
	}
}

func TestApproach2RejectsNonPrimitiveY(t *testing.T) {
	// Periodic Y: phases alternate deterministically. W inherits the
	// periodicity, so Approach 2 and the Layered Method must refuse.
	y := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	u := matrix.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	m := &Model{Y: y, U: []*matrix.Dense{u, u.Clone()}}
	if _, err := Approach2(m, Config{}); !errors.Is(err, ErrNotPrimitive) {
		t.Errorf("Approach2 err = %v, want ErrNotPrimitive", err)
	}
	if _, err := LayeredMethod(m, Config{}); !errors.Is(err, ErrNotPrimitive) {
		t.Errorf("LayeredMethod err = %v, want ErrNotPrimitive", err)
	}
	// Approach 1 and 3 still work (maximal irreducibility repairs W/Y).
	if _, err := Approach1(m, Config{}); err != nil {
		t.Errorf("Approach1 should handle periodic Y: %v", err)
	}
	if _, err := Approach3(m, Config{}); err != nil {
		t.Errorf("Approach3 should handle periodic Y: %v", err)
	}
}

func TestPersonalizationShiftsLayeredRanking(t *testing.T) {
	m := PaperExample()
	base, err := LayeredMethod(m, Config{})
	if err != nil {
		t.Fatalf("LayeredMethod: %v", err)
	}
	// Personalize the document layer of phase 1 (paper's phase 2) toward
	// its first sub-state.
	m.VU = []matrix.Vector{nil, {0.98, 0.01, 0.01}, nil}
	pers, err := LayeredMethod(m, Config{})
	if err != nil {
		t.Fatalf("LayeredMethod personalized: %v", err)
	}
	s := State{Phase: 1, Sub: 0}
	if pers.Score(s) <= base.Score(s) {
		t.Errorf("personalization did not lift %v: %g vs %g", s, pers.Score(s), base.Score(s))
	}
	if !pers.Scores.IsDistribution(1e-8) {
		t.Error("personalized ranking is not a distribution")
	}
}

func TestRankingAccessors(t *testing.T) {
	m := PaperExample()
	r, err := LayeredMethod(m, Config{})
	if err != nil {
		t.Fatalf("LayeredMethod: %v", err)
	}
	if got := r.Score(State{Phase: 1, Sub: 2}); got != r.Scores[6] {
		t.Errorf("Score accessor mismatch: %g vs %g", got, r.Scores[6])
	}
	if s := r.String(); len(s) == 0 {
		t.Error("empty String()")
	}
	pos := r.Positions()
	order := r.Order()
	for p, st := range order {
		if pos[r.Layout.Index(st)] != p+1 {
			t.Errorf("Positions/Order disagree at %v", st)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestComputeAllNonPrimitiveY(t *testing.T) {
	// Periodic Y: the bundle must still deliver A1/A3 while marking the
	// primitivity-dependent A2/A4 as unavailable.
	y := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	u := matrix.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	m := &Model{Y: y, U: []*matrix.Dense{u, u.Clone()}}
	all, err := ComputeAll(m, Config{})
	if err != nil {
		t.Fatalf("ComputeAll: %v", err)
	}
	if all.A1 == nil || all.A3 == nil {
		t.Error("adjusted approaches missing")
	}
	if all.A2 != nil || all.A4 != nil {
		t.Error("direct approaches should be nil for periodic Y")
	}
	if all.PiYTilde != nil {
		t.Error("π̃Y should be absent for periodic Y")
	}
	// W is still assembled and stochastic even when periodic.
	if !all.W.IsRowStochastic(1e-9) {
		t.Error("W not stochastic")
	}
}

func TestLocalRanksWithDanglingPhaseRow(t *testing.T) {
	// A phase whose sub-state chain has a dangling row still yields a
	// positive local rank (the gatekeeper construction repairs it).
	y := matrix.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	u1 := matrix.FromRows([][]float64{{0, 1}, {0, 0}}) // row 1 dangling
	u2 := matrix.FromRows([][]float64{{1}})
	m := &Model{Y: y, U: []*matrix.Dense{u1, u2}}
	local, err := LocalRanks(m, Config{})
	if err != nil {
		t.Fatalf("LocalRanks: %v", err)
	}
	for _, v := range local[0] {
		if v <= 0 {
			t.Errorf("local rank has non-positive entry: %v", local[0])
		}
	}
	if local[1][0] != 1 {
		t.Errorf("singleton phase local rank = %v", local[1])
	}
}
