package lmm

import (
	"errors"
	"fmt"

	"lmmrank/internal/markov"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// Hierarchy is the multi-layer generalization the paper sketches in §2.2
// ("the analysis can be extended to multi-layer models using similar
// reasoning"): a tree of Markov chains. An internal node holds a
// transition matrix over its children (e.g. domains over sites); a leaf
// node holds a transition matrix over final sub-states (pages).
//
// Ranking proceeds exactly as in the two-layer model, applied recursively:
// every non-root group is entered through its gatekeeper, whose entry
// distribution is the group's local PageRank — for an internal group,
// composed with its children's entry distributions. The root chain, which
// is never "entered", uses its plain stationary distribution. Because the
// proof of Theorem 2 only requires each phase's entry vector to be a
// probability distribution, the Partition Theorem applies unchanged with
// "entry distribution of the subtree" in place of π^J_G, so the recursive
// composition equals the stationary distribution of the corresponding
// flattened global chain (TestNestedPartitionTheorem verifies this).
type Hierarchy struct {
	// M is the transition matrix over children (internal node) or over
	// leaf sub-states (leaf node).
	M *matrix.Dense
	// Children holds one subtree per row of M; nil marks a leaf.
	Children []*Hierarchy
	// V optionally personalizes this node's chain (teleport/entry
	// distribution); nil = uniform.
	V matrix.Vector
}

// IsLeaf reports whether h has no children.
func (h *Hierarchy) IsLeaf() bool { return len(h.Children) == 0 }

// Validate checks the recursive structural constraints.
func (h *Hierarchy) Validate() error {
	if h == nil || h.M == nil {
		return fmt.Errorf("%w: nil hierarchy node", ErrInvalidModel)
	}
	if h.M.Rows() != h.M.Cols() || h.M.Rows() == 0 {
		return fmt.Errorf("%w: node matrix is %dx%d", ErrInvalidModel, h.M.Rows(), h.M.Cols())
	}
	if err := checkStochasticRows(h.M, true); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidModel, err)
	}
	if h.V != nil {
		if len(h.V) != h.M.Rows() {
			return fmt.Errorf("%w: V length %d vs order %d", ErrInvalidModel, len(h.V), h.M.Rows())
		}
		if !h.V.IsDistribution(1e-6) {
			return fmt.Errorf("%w: V is not a distribution", ErrInvalidModel)
		}
	}
	if h.IsLeaf() {
		return nil
	}
	if len(h.Children) != h.M.Rows() {
		return fmt.Errorf("%w: %d children vs %d rows", ErrInvalidModel, len(h.Children), h.M.Rows())
	}
	for i, c := range h.Children {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("child %d: %w", i, err)
		}
	}
	return nil
}

// NumLeafStates returns the total number of leaf sub-states of the
// subtree.
func (h *Hierarchy) NumLeafStates() int {
	if h.IsLeaf() {
		return h.M.Rows()
	}
	var t int
	for _, c := range h.Children {
		t += c.NumLeafStates()
	}
	return t
}

// Depth returns the number of layers (a leaf alone is depth 1; the
// two-layer Model corresponds to depth 2).
func (h *Hierarchy) Depth() int {
	if h.IsLeaf() {
		return 1
	}
	max := 0
	for _, c := range h.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// EntryDistribution returns the gatekeeper entry distribution of the
// subtree over its leaf sub-states: for a leaf node the local PageRank of
// its chain; for an internal node the local PageRank over children
// composed recursively with each child's entry distribution.
func (h *Hierarchy) EntryDistribution(cfg Config) (matrix.Vector, error) {
	res, err := pagerank.Dense(h.M, cfg.pagerankConfig(h.V))
	if err != nil {
		return nil, fmt.Errorf("lmm: hierarchy entry: %w", err)
	}
	if h.IsLeaf() {
		return res.Scores, nil
	}
	return h.composeChildren(res.Scores, cfg)
}

// LayeredHierarchyRank ranks all leaf sub-states of a multi-layer model:
// the root chain's plain stationary distribution (requiring primitivity,
// as in Theorem 2) composed with each child subtree's entry distribution.
// Leaf scores are returned in depth-first order together with the layout
// of top-level groups.
func LayeredHierarchyRank(h *Hierarchy, cfg Config) (matrix.Vector, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if h.IsLeaf() {
		// Degenerate single-layer model: the rank is the chain's own
		// stationary distribution.
		if !matrix.IsPrimitive(h.M) {
			return nil, fmt.Errorf("%w: leaf chain", ErrNotPrimitive)
		}
		return markov.StationaryDense(h.M, cfg.powerOptions())
	}
	if !matrix.IsPrimitive(h.M) {
		return nil, fmt.Errorf("%w: root chain", ErrNotPrimitive)
	}
	piRoot, err := markov.StationaryDense(h.M, cfg.powerOptions())
	if err != nil {
		return nil, fmt.Errorf("lmm: hierarchy root: %w", err)
	}
	return h.composeChildren(piRoot, cfg)
}

// composeChildren multiplies a distribution over children with each
// child's recursive entry distribution, concatenating depth-first.
func (h *Hierarchy) composeChildren(over matrix.Vector, cfg Config) (matrix.Vector, error) {
	out := make(matrix.Vector, 0, h.NumLeafStates())
	for i, c := range h.Children {
		entry, err := c.EntryDistribution(cfg)
		if err != nil {
			return nil, fmt.Errorf("child %d: %w", i, err)
		}
		for _, p := range entry {
			out = append(out, over[i]*p)
		}
	}
	return out, nil
}

// FlattenToModel lowers a depth-3 (or deeper) hierarchy into an equivalent
// two-layer Model whose phases are the root's children and whose phase
// "local ranks" would be the children's entry distributions. It returns
// ErrInvalidModel for a leaf-only hierarchy. The lowering is used by the
// nested-partition tests: the flattened global matrix of the two-layer
// theorem, built with subtree entry distributions, must have the recursive
// composition as its stationary vector.
var errLeafHierarchy = errors.New("lmm: cannot flatten a leaf-only hierarchy")

// FlattenGlobalMatrix builds the global transition matrix of the flattened
// chain: w_(I,i)(J,j) = m_IJ · entry_J(j), where I, J range over the
// root's children and i, j over each subtree's leaf states.
func FlattenGlobalMatrix(h *Hierarchy, cfg Config) (*matrix.Dense, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if h.IsLeaf() {
		return nil, errLeafHierarchy
	}
	entries := make([]matrix.Vector, len(h.Children))
	sizes := make([]int, len(h.Children))
	for i, c := range h.Children {
		e, err := c.EntryDistribution(cfg)
		if err != nil {
			return nil, err
		}
		entries[i] = e
		sizes[i] = len(e)
	}
	layout := NewLayout(sizes)
	n := layout.Total()
	w := matrix.NewDense(n, n)
	for pi := range h.Children {
		template := make([]float64, n)
		for pj := range h.Children {
			y := h.M.At(pi, pj)
			base := layout.Index(State{Phase: pj, Sub: 0})
			for j, p := range entries[pj] {
				template[base+j] = y * p
			}
		}
		for i := 0; i < sizes[pi]; i++ {
			w.SetRow(layout.Index(State{Phase: pi, Sub: i}), template)
		}
	}
	return w, nil
}
