package lmm

import (
	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// SubgraphSolver is the reusable local-DocRank state of one standalone
// site subgraph — the per-shard analogue of Ranker's per-site solvers.
// Distributed workers hold one per cached shard so repeated coordinator
// runs reuse the CSR transition matrix and the solver's scratch vectors
// instead of rebuilding them every run.
//
// Construction captures sub by reference and builds its transition
// matrix (a mutation of the graph's cached state); mutate the subgraph
// afterwards and the solver is stale — build a new one. The vector
// returned by Rank aliases internal scratch, valid until the next Rank
// on the same solver; clone to retain. A SubgraphSolver is not safe for
// concurrent use.
type SubgraphSolver struct {
	// fixed is the constant local rank of 0/1-document subgraphs, which
	// need no power method at all (the same special case LocalDocRank
	// and Ranker apply).
	fixed  matrix.Vector
	solver *pagerank.Solver
}

// NewSubgraphSolver precomputes the ranking state of one site subgraph.
func NewSubgraphSolver(sub *graph.Digraph) *SubgraphSolver {
	switch sub.NumNodes() {
	case 0:
		return &SubgraphSolver{fixed: matrix.Vector{}}
	case 1:
		// A single-document site trivially holds all local mass.
		return &SubgraphSolver{fixed: matrix.Vector{1}}
	}
	return &SubgraphSolver{solver: pagerank.NewSolver(sub.TransitionMatrix())}
}

// Rank computes the subgraph's local DocRank, matching LocalDocRank
// bit-for-bit while reusing all internal buffers. The result aliases
// solver scratch — see the type comment.
func (s *SubgraphSolver) Rank(cfg WebConfig) (matrix.Vector, int, error) {
	if s.fixed != nil {
		return s.fixed, 0, nil
	}
	res, err := s.solver.Solve(pagerank.Config{
		Damping: cfg.Damping,
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
		Ctx:     cfg.Ctx,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.Scores, res.Iterations, nil
}
