package lmm

import (
	"errors"
	"testing"

	"lmmrank/internal/matrix"
)

func TestPaperExampleValid(t *testing.T) {
	m := PaperExample()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.NumPhases() != 3 {
		t.Errorf("NumPhases = %d", m.NumPhases())
	}
	if m.TotalStates() != 12 {
		t.Errorf("TotalStates = %d, want 12", m.TotalStates())
	}
	if m.SubStates(0) != 4 || m.SubStates(1) != 3 || m.SubStates(2) != 5 {
		t.Errorf("sub-state counts: %d %d %d", m.SubStates(0), m.SubStates(1), m.SubStates(2))
	}
}

func TestNewModelRejectsBadShapes(t *testing.T) {
	y2 := matrix.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	u := matrix.FromRows([][]float64{{1}})
	tests := []struct {
		name string
		y    *matrix.Dense
		u    []*matrix.Dense
	}{
		{"nil Y", nil, []*matrix.Dense{u}},
		{"empty U", y2, nil},
		{"Y/U count mismatch", y2, []*matrix.Dense{u}},
		{"nil U entry", y2, []*matrix.Dense{u, nil}},
		{
			"non-stochastic Y",
			matrix.FromRows([][]float64{{0.5, 0.6}, {0.5, 0.5}}),
			[]*matrix.Dense{u, u},
		},
		{
			"non-stochastic U",
			y2,
			[]*matrix.Dense{u, matrix.FromRows([][]float64{{2}})},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewModel(tt.y, tt.u); !errors.Is(err, ErrInvalidModel) {
				t.Errorf("err = %v, want ErrInvalidModel", err)
			}
		})
	}
}

func TestValidateDanglingSubStateRowAllowed(t *testing.T) {
	y := matrix.FromRows([][]float64{{1}})
	u := matrix.FromRows([][]float64{{0, 1}, {0, 0}}) // dangling row
	if _, err := NewModel(y, []*matrix.Dense{u}); err != nil {
		t.Errorf("dangling sub-state row rejected: %v", err)
	}
}

func TestValidatePersonalizationVectors(t *testing.T) {
	m := PaperExample()
	m.VY = matrix.Vector{0.5, 0.5} // wrong length (3 phases)
	if err := m.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("bad VY accepted: %v", err)
	}
	m.VY = matrix.Vector{0.2, 0.3, 0.5}
	m.VU = []matrix.Vector{nil, {0.5, 0.5}, nil} // wrong length for phase 1 (3 subs)
	if err := m.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("bad VU accepted: %v", err)
	}
	m.VU = []matrix.Vector{nil, {0.2, 0.3, 0.5}, nil}
	if err := m.Validate(); err != nil {
		t.Errorf("valid personalization rejected: %v", err)
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	l := NewLayout([]int{4, 3, 5})
	if l.Total() != 12 || l.NumPhases() != 3 {
		t.Fatalf("Total = %d, NumPhases = %d", l.Total(), l.NumPhases())
	}
	// The paper's state 7 is (2,3) 1-based = (1,2) 0-based, flat index 6.
	if got := l.Index(State{Phase: 1, Sub: 2}); got != 6 {
		t.Errorf("Index((1,2)) = %d, want 6", got)
	}
	for k := 0; k < l.Total(); k++ {
		if got := l.Index(l.State(k)); got != k {
			t.Errorf("round trip failed at %d → %v → %d", k, l.State(k), got)
		}
	}
}

func TestLayoutPanics(t *testing.T) {
	l := NewLayout([]int{2, 2})
	for _, fn := range []func(){
		func() { l.Index(State{Phase: 2, Sub: 0}) },
		func() { l.Index(State{Phase: 0, Sub: 2}) },
		func() { l.State(4) },
		func() { l.State(-1) },
		func() { NewLayout([]int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStateStringIsOneBased(t *testing.T) {
	s := State{Phase: 1, Sub: 2}
	if got := s.String(); got != "(2,3)" {
		t.Errorf("String = %q, want (2,3)", got)
	}
}
