package lmm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lmmrank/internal/graph"
)

// churnWeb builds a deterministic 8-site web for update tests.
func churnWeb(t *testing.T) *graph.DocGraph {
	t.Helper()
	return randomWeb(rand.New(rand.NewSource(77)), 8, 80)
}

func TestUpdateMatchesFullRecomputeAfterEdgeChange(t *testing.T) {
	dg := churnWeb(t)
	cfg := WebConfig{Tol: 1e-11}
	prev, err := LayeredDocRank(dg, cfg)
	if err != nil {
		t.Fatalf("initial: %v", err)
	}

	// Mutate site 2: add intra-site links between its first documents.
	docs := dg.Sites[2].Docs
	if len(docs) < 2 {
		t.Skip("site 2 too small in this seed")
	}
	dg.G.AddLink(int(docs[0]), int(docs[1]))
	dg.G.AddLink(int(docs[1]), int(docs[0]))

	inc, err := UpdateLayeredDocRank(dg, prev, []graph.SiteID{2}, cfg)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	full, err := LayeredDocRank(dg, cfg)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if d := inc.DocRank.L1Diff(full.DocRank); d > 1e-8 {
		t.Errorf("incremental vs full: L1 = %g", d)
	}
	if d := inc.SiteRank.L1Diff(full.SiteRank); d > 1e-8 {
		t.Errorf("incremental vs full SiteRank: L1 = %g", d)
	}
}

func TestUpdateReusesUnchangedLocalRanks(t *testing.T) {
	dg := churnWeb(t)
	cfg := WebConfig{Tol: 1e-11}
	prev, err := LayeredDocRank(dg, cfg)
	if err != nil {
		t.Fatalf("initial: %v", err)
	}
	docs := dg.Sites[2].Docs
	if len(docs) < 2 {
		t.Skip("site 2 too small")
	}
	dg.G.AddLink(int(docs[0]), int(docs[1]))
	inc, err := UpdateLayeredDocRank(dg, prev, []graph.SiteID{2}, cfg)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	for s := range inc.LocalRanks {
		if s == 2 {
			continue
		}
		// Reused slices, not merely equal values.
		if &inc.LocalRanks[s][0] != &prev.LocalRanks[s][0] {
			t.Errorf("site %d local rank was recomputed", s)
		}
		if inc.LocalIterations[s] != 0 {
			t.Errorf("site %d recorded %d iterations for a reused rank", s, inc.LocalIterations[s])
		}
	}
	if inc.LocalIterations[2] == 0 {
		t.Error("changed site recorded no iterations")
	}
}

func TestUpdateWarmStartConverges(t *testing.T) {
	dg := churnWeb(t)
	cfg := WebConfig{Tol: 1e-11}
	prev, err := LayeredDocRank(dg, cfg)
	if err != nil {
		t.Fatalf("initial: %v", err)
	}
	// No change at all: warm-started SiteRank should converge in far
	// fewer iterations than the cold run.
	inc, err := UpdateLayeredDocRank(dg, prev, nil, cfg)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if inc.SiteIterations >= prev.SiteIterations {
		t.Errorf("warm SiteRank took %d iterations, cold %d", inc.SiteIterations, prev.SiteIterations)
	}
	if d := inc.DocRank.L1Diff(prev.DocRank); d > 1e-8 {
		t.Errorf("no-op update changed the ranking: %g", d)
	}
}

func TestUpdateHandlesNewSite(t *testing.T) {
	dg := churnWeb(t)
	cfg := WebConfig{Tol: 1e-11}
	prev, err := LayeredDocRank(dg, cfg)
	if err != nil {
		t.Fatalf("initial: %v", err)
	}

	// A new site joins (P2P churn) and links to site 0.
	rebuilt := rebuildWithNewSite(dg)
	inc, err := UpdateLayeredDocRank(rebuilt, prev, nil, cfg) // new site auto-changed
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	full, err := LayeredDocRank(rebuilt, cfg)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if d := inc.DocRank.L1Diff(full.DocRank); d > 1e-8 {
		t.Errorf("incremental vs full after join: L1 = %g", d)
	}
}

// rebuildWithNewSite reconstructs dg with one extra site appended. The
// builder assigns new DocIDs after the existing ones, so earlier sites'
// rosters keep their shape.
func rebuildWithNewSite(dg *graph.DocGraph) *graph.DocGraph {
	b := graph.NewBuilder()
	for _, doc := range dg.Docs {
		b.AddDocInSite(doc.URL, dg.Sites[doc.Site].Name)
	}
	dg.G.EachEdgeAll(func(from int, e graph.Edge) {
		b.LinkIDs(graph.DocID(from), graph.DocID(e.To))
	})
	n1 := b.AddDocInSite("http://newpeer.example/", "newpeer.example")
	n2 := b.AddDocInSite("http://newpeer.example/about", "newpeer.example")
	b.LinkIDs(n1, n2)
	b.LinkIDs(n2, n1)
	first := dg.Sites[0].Docs[0]
	b.LinkIDs(n1, first)
	b.LinkIDs(first, n1)
	return b.Build()
}

func TestUpdateStaleDetection(t *testing.T) {
	dg := churnWeb(t)
	cfg := WebConfig{Tol: 1e-10}
	prev, err := LayeredDocRank(dg, cfg)
	if err != nil {
		t.Fatalf("initial: %v", err)
	}
	// Grow site 1's roster but do not list it as changed.
	grown := rebuildWithExtraDoc(dg, 1)
	if _, err := UpdateLayeredDocRank(grown, prev, nil, cfg); !errors.Is(err, ErrStaleResult) {
		t.Fatalf("err = %v, want ErrStaleResult", err)
	}
	// Listing it as changed succeeds and matches a full recompute.
	inc, err := UpdateLayeredDocRank(grown, prev, []graph.SiteID{1}, cfg)
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	full, err := LayeredDocRank(grown, cfg)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if d := inc.DocRank.L1Diff(full.DocRank); d > 1e-8 {
		t.Errorf("incremental vs full: %g", d)
	}
}

// rebuildWithExtraDoc reconstructs dg with one extra document in site s.
func rebuildWithExtraDoc(dg *graph.DocGraph, s graph.SiteID) *graph.DocGraph {
	b := graph.NewBuilder()
	for _, doc := range dg.Docs {
		b.AddDocInSite(doc.URL, dg.Sites[doc.Site].Name)
	}
	dg.G.EachEdgeAll(func(from int, e graph.Edge) {
		b.LinkIDs(graph.DocID(from), graph.DocID(e.To))
	})
	extra := b.AddDocInSite(
		fmt.Sprintf("http://%s/extra-page", dg.Sites[s].Name), dg.Sites[s].Name)
	home := dg.Sites[s].Docs[0]
	b.LinkIDs(extra, home)
	b.LinkIDs(home, extra)
	return b.Build()
}

func TestUpdateValidation(t *testing.T) {
	dg := churnWeb(t)
	cfg := WebConfig{}
	prev, err := LayeredDocRank(dg, cfg)
	if err != nil {
		t.Fatalf("initial: %v", err)
	}
	if _, err := UpdateLayeredDocRank(dg, nil, nil, cfg); err == nil {
		t.Error("nil previous result accepted")
	}
	if _, err := UpdateLayeredDocRank(dg, prev, []graph.SiteID{99}, cfg); err == nil {
		t.Error("out-of-range changed site accepted")
	}
}
