package lmm

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// WebConfig parameterizes the §3.2 pipeline ("Layered Method for
// DocRank") on a DocGraph.
type WebConfig struct {
	// Damping is the PageRank damping factor / gatekeeper α. Zero is a
	// sentinel selecting pagerank.DefaultDamping (0.85) — an explicit
	// damping of exactly 0 cannot be requested (it would make the chain
	// pure teleport anyway); tiny positive values are honored as given.
	Damping float64
	// Tol and MaxIter bound each power-method run (0 = package defaults).
	Tol     float64
	MaxIter int
	// SiteGraph controls SiteLink aggregation (§3.1).
	SiteGraph graph.SiteGraphOptions
	// SitePersonalization optionally biases the site layer (length
	// NumSites); nil = uniform. This is "personalization at the higher
	// layer" of §3.2.
	SitePersonalization matrix.Vector
	// DocPersonalization optionally biases individual sites' document
	// layers: per-site teleport vectors in local-index order. Missing
	// sites use uniform. This is "personalization at the lower layer".
	DocPersonalization map[graph.SiteID]matrix.Vector
	// Parallelism caps the number of concurrent local DocRank
	// computations (0 = GOMAXPROCS). Step 3 of §3.2 "can be completely
	// decentralized"; within one process that means data-parallel.
	Parallelism int
	// SiteStart and LocalStarts optionally seed the power iterations with
	// a previous solution — the warm-start half of the churn path: after
	// a small graph change, the old SiteRank and the unchanged sites'
	// local DocRanks are excellent initial iterates, cutting iterations
	// roughly in proportion to how little moved. Both are read-only
	// (copied into solver scratch, never mutated) and validated by shape:
	// a SiteStart whose length differs from the site count, or a
	// LocalStarts[s] whose length differs from site s's document count,
	// is silently ignored (cold uniform start) rather than erroring —
	// seeds are hints, not inputs.
	SiteStart   matrix.Vector
	LocalStarts []matrix.Vector
	// Ctx, when non-nil, cancels the pipeline cooperatively: every power
	// iteration (site layer and each local DocRank) checks it and a
	// cancelled or expired context aborts mid-run with the context's
	// error. A nil Ctx never cancels.
	Ctx context.Context
}

// WebResult is the outcome of the layered DocRank pipeline.
//
// Aliasing: a WebResult returned by Ranker.Rank aliases the Ranker's
// internal scratch — its vectors are valid only until the next
// Rank/RankSites call on the same Ranker; clone them (or use the
// one-shot LayeredDocRank, whose throwaway Ranker makes the result safe
// to retain) to keep a result across queries.
type WebResult struct {
	// DocRank holds the final global ranking per DocID — the paper's
	// DocRank(G_D) = (πS(s1)·πD(s1)', …, πS(sNS)·πD(sNS)')'.
	DocRank matrix.Vector
	// SiteRank holds πS per SiteID.
	SiteRank matrix.Vector
	// LocalRanks holds each site's local DocRank in local-index order
	// (aligned with graph.DocGraph.Sites[s].Docs).
	LocalRanks []matrix.Vector
	// SiteIterations and LocalIterations record power-method work, used
	// by the complexity experiments (E6).
	SiteIterations  int
	LocalIterations []int
}

// LayeredDocRank executes the five steps of §3.2 on a document graph:
// derive the SiteGraph, compute the SiteRank πS = PageRank(Mˆ(G_S)),
// compute each site's local DocRank πD(s) = PageRank(Mˆ(G^s_d))
// independently (in parallel), and compose the global DocRank by the
// Partition Theorem.
//
// It is the one-shot form of Ranker: a throwaway Ranker is built and
// queried once, so the returned WebResult is safe to retain. Callers
// ranking the same graph repeatedly (serving, personalization sweeps)
// should hold a Ranker instead and skip the per-call precomputation.
func LayeredDocRank(dg *graph.DocGraph, cfg WebConfig) (*WebResult, error) {
	r, err := NewRanker(dg, RankerOptions{SiteGraph: cfg.SiteGraph})
	if err != nil {
		// NewRanker errors carry their own "lmm: ranker:" prefix.
		return nil, err
	}
	return r.Rank(cfg)
}

// ComposeDocRank applies the Partition Theorem's composition (§3.2 step
// 5): DocRank[d] = siteWeights[site(d)] · localRanks[site(d)][i], with
// i the local index of d. The weights are πS for the two-layer method,
// or any per-site weight (e.g. DomainRank·SiteEntry for three layers).
// Shared by the in-process pipelines and the distributed coordinator so
// the composition step cannot diverge between them.
func ComposeDocRank(dg *graph.DocGraph, siteWeights matrix.Vector, localRanks []matrix.Vector) matrix.Vector {
	out := matrix.NewVector(dg.NumDocs())
	composeDocRankInto(out, dg, siteWeights, localRanks)
	return out
}

// composeDocRankInto is ComposeDocRank writing into a caller-owned
// vector, the allocation-free form Ranker.Rank reuses every query.
func composeDocRankInto(out matrix.Vector, dg *graph.DocGraph, siteWeights matrix.Vector, localRanks []matrix.Vector) {
	for s := range dg.Sites {
		w := siteWeights[s]
		for i, d := range dg.Sites[s].Docs {
			out[d] = w * localRanks[s][i]
		}
	}
}

// localDocRanks computes πD(s) for every site concurrently.
func localDocRanks(dg *graph.DocGraph, cfg WebConfig) ([]matrix.Vector, []int, error) {
	ns := dg.NumSites()
	local := make([]matrix.Vector, ns)
	iters := make([]int, ns)
	errs := make([]error, ns)

	ForEachParallel(ns, cfg.Parallelism, func(s int) {
		local[s], iters[s], errs[s] = localDocRank(dg, graph.SiteID(s), cfg)
	})

	for s, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("lmm: local docrank of site %d (%s): %w",
				s, dg.Sites[s].Name, err)
		}
	}
	return local, iters, nil
}

// ForEachParallel runs fn(i) for every i in [0,n) across a capped
// goroutine pool (workers <= 0 selects GOMAXPROCS). A single worker
// runs inline: no goroutines, no channel, no allocations — the shape
// the steady-state serving path relies on at GOMAXPROCS = 1.
func ForEachParallel(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// RankSubgraphs computes the local DocRank of each standalone site
// subgraph in parallel — the batch a distributed worker runs for the
// sites it hosts. It shares LocalDocRank and the dispatch pool with the
// in-process pipeline. Failures are reported as a *SubgraphRankError so
// callers can attribute the batch index to their own naming (site IDs,
// hostnames).
func RankSubgraphs(subs []*graph.Digraph, cfg WebConfig) ([]matrix.Vector, []int, error) {
	// Dedupe and transition-matrix construction mutate the graph, so a
	// subgraph repeated across entries must be prepared serially before
	// the fan-out. Distinct graphs — the only shape real callers pass —
	// keep their construction inside the parallel phase.
	seen := make(map[*graph.Digraph]int, len(subs))
	for _, sub := range subs {
		seen[sub]++
	}
	for sub, n := range seen {
		if n > 1 {
			sub.Dedupe()
			if sub.NumNodes() > 0 {
				sub.TransitionMatrix()
			}
		}
	}
	ranks := make([]matrix.Vector, len(subs))
	iters := make([]int, len(subs))
	errs := make([]error, len(subs))
	ForEachParallel(len(subs), cfg.Parallelism, func(i int) {
		ranks[i], iters[i], errs[i] = LocalDocRank(subs[i], cfg)
	})
	for i, err := range errs {
		if err != nil {
			return nil, nil, &SubgraphRankError{Index: i, Err: err}
		}
	}
	return ranks, iters, nil
}

// SubgraphRankError reports which batch index of RankSubgraphs failed.
type SubgraphRankError struct {
	Index int
	Err   error
}

func (e *SubgraphRankError) Error() string {
	return fmt.Sprintf("lmm: local docrank of subgraph %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying ranking failure for errors.Is/As.
func (e *SubgraphRankError) Unwrap() error { return e.Err }

// localDocRank computes one site's local DocRank (step 3 for one site).
// Exported-shape logic shared by the in-process pipeline and the
// distributed worker, which runs exactly this on its own peers.
func localDocRank(dg *graph.DocGraph, s graph.SiteID, cfg WebConfig) (matrix.Vector, int, error) {
	n := dg.SiteSize(s)
	switch n {
	case 0:
		return matrix.Vector{}, 0, nil
	case 1:
		// A single-document site trivially holds all local mass.
		return matrix.Vector{1}, 0, nil
	}
	sub, _ := dg.LocalSubgraph(s)
	var pers matrix.Vector
	if cfg.DocPersonalization != nil {
		pers = cfg.DocPersonalization[s]
	}
	var start matrix.Vector
	if int(s) < len(cfg.LocalStarts) && len(cfg.LocalStarts[s]) == n {
		start = cfg.LocalStarts[s]
	}
	res, err := pagerank.Graph(sub, pagerank.Config{
		Damping:         cfg.Damping,
		Personalization: pers,
		Tol:             cfg.Tol,
		MaxIter:         cfg.MaxIter,
		Start:           start,
		Ctx:             cfg.Ctx,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.Scores, res.Iterations, nil
}

// LocalDocRank computes the local DocRank of a single standalone site
// subgraph, as a distributed worker does for the sites it hosts.
func LocalDocRank(sub *graph.Digraph, cfg WebConfig) (matrix.Vector, int, error) {
	switch sub.NumNodes() {
	case 0:
		return matrix.Vector{}, 0, nil
	case 1:
		return matrix.Vector{1}, 0, nil
	}
	res, err := pagerank.Graph(sub, pagerank.Config{
		Damping: cfg.Damping,
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
		Ctx:     cfg.Ctx,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.Scores, res.Iterations, nil
}

// GlobalPageRank is the flat baseline of Figure 3: classical PageRank over
// the whole DocGraph, ignoring site structure.
func GlobalPageRank(dg *graph.DocGraph, cfg WebConfig) (pagerank.Result, error) {
	return pagerank.Graph(dg.G, pagerank.Config{
		Damping: cfg.Damping,
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
		Ctx:     cfg.Ctx,
	})
}
