package lmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lmmrank/internal/matrix"
)

// randomModel builds a random LMM with a strictly positive (hence
// primitive) phase matrix and arbitrary sub-state chains, possibly
// containing dangling rows and zero entries.
func randomModel(rng *rand.Rand) *Model {
	np := rng.Intn(5) + 2
	y := matrix.NewDense(np, np)
	for i := 0; i < np; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] = rng.Float64() + 1e-3
		}
	}
	y.NormalizeRows()

	us := make([]*matrix.Dense, np)
	for p := range us {
		n := rng.Intn(7) + 1
		u := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			// Random sparse row; one in six rows dangles.
			if rng.Intn(6) == 0 {
				continue
			}
			deg := rng.Intn(n) + 1
			for k := 0; k < deg; k++ {
				u.Set(i, rng.Intn(n), rng.Float64()+0.05)
			}
		}
		us[p] = u.NormalizeRows()
	}
	return &Model{Y: y, U: us}
}

// TestPartitionTheoremQuick is experiment E9: on randomized models
// satisfying Theorem 2's hypothesis (Y primitive), the decentralized
// Layered Method agrees with the centralized power method on W to
// convergence tolerance.
func TestPartitionTheoremQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		gap, err := PartitionGap(m, Config{Tol: 1e-12})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if gap > 1e-8 {
			t.Logf("seed %d: gap %g", seed, gap)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPartitionTheoremExactStationarity verifies the algebraic statement
// of Theorem 2 directly: W'π̃ = π̃ for the composed vector, not merely
// closeness to a power-method result.
func TestPartitionTheoremExactStationarity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		m := randomModel(rng)
		local, err := LocalRanks(m, Config{})
		if err != nil {
			t.Fatalf("trial %d: LocalRanks: %v", trial, err)
		}
		w, _ := GlobalMatrix(m, local)
		r, err := LayeredMethod(m, Config{})
		if err != nil {
			t.Fatalf("trial %d: LayeredMethod: %v", trial, err)
		}
		next := matrix.NewVector(len(r.Scores))
		w.MulVecLeft(next, r.Scores)
		if d := next.L1Diff(r.Scores); d > 1e-9 {
			t.Errorf("trial %d: ‖π̃W − π̃‖₁ = %g, want ≈ 0", trial, d)
		}
	}
}

// TestTheorem1Quick: every approach returns a probability distribution on
// random models (Theorem 1 for the layered composition; stochasticity of
// the adjusted chains for the others).
func TestTheorem1Quick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		all, err := ComputeAll(m, Config{})
		if err != nil {
			return false
		}
		for _, r := range []*Ranking{all.A1, all.A2, all.A3, all.A4} {
			if r == nil || !r.Scores.IsDistribution(1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLemma1Lemma2Quick: W is row-stochastic (Lemma 1) and primitive when
// Y is primitive (Lemma 2), across random models.
func TestLemma1Lemma2Quick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		local, err := LocalRanks(m, Config{})
		if err != nil {
			return false
		}
		w, _ := GlobalMatrix(m, local)
		return w.IsRowStochastic(1e-8) && matrix.IsPrimitive(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPersonalizedPartitionTheorem: Theorem 2 holds with personalization
// at both layers, the paper's §3.2 remark — the composed personalized
// vector is stationary for the W assembled from personalized local ranks.
func TestPersonalizedPartitionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		m := randomModel(rng)
		m.VU = make([]matrix.Vector, m.NumPhases())
		for i := range m.VU {
			v := matrix.NewVector(m.SubStates(i))
			for j := range v {
				v[j] = rng.Float64() + 0.05
			}
			m.VU[i] = v.Normalize()
		}
		gap, err := PartitionGap(m, Config{Tol: 1e-12})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if gap > 1e-8 {
			t.Errorf("trial %d: personalized gap %g", trial, gap)
		}
	}
}
