package lmm

import (
	"errors"
	"fmt"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// ErrStaleResult is returned (wrapped) when an incremental update cannot
// reuse a previous result (site roster changed shape in unchanged sites);
// the caller should fall back to a full LayeredDocRank.
var ErrStaleResult = errors.New("lmm: previous result is stale")

// UpdateLayeredDocRank refreshes a previous layered ranking after the
// listed sites changed (pages or links added/removed, new sites appended).
// This is the churn path of the paper's P2P setting: because the
// Partition Theorem composes independent per-site vectors, only the
// changed sites' local DocRanks must be recomputed; the small SiteRank is
// re-solved warm-started from its previous value, and the composition is
// a single O(N_D) pass. Unchanged sites' local ranks are reused verbatim.
//
// Requirements: dg must contain at least the sites of prev, and every
// site not listed in changed must have the same document roster size as
// before (otherwise ErrStaleResult). Newly appended sites must be listed
// in changed.
func UpdateLayeredDocRank(dg *graph.DocGraph, prev *WebResult, changed []graph.SiteID, cfg WebConfig) (*WebResult, error) {
	if err := dg.Validate(); err != nil {
		return nil, fmt.Errorf("lmm: update: %w", err)
	}
	if prev == nil {
		return nil, fmt.Errorf("lmm: update: nil previous result")
	}
	// Dedupe up front so the per-site ranking below operates on merged,
	// read-only adjacency — the same entry-point contract as the full
	// pipeline.
	dg.G.Dedupe()
	if dg.NumSites() < len(prev.LocalRanks) {
		return nil, fmt.Errorf("%w: graph has %d sites, previous result %d (sites removed?)",
			ErrStaleResult, dg.NumSites(), len(prev.LocalRanks))
	}
	changedSet := make(map[graph.SiteID]bool, len(changed))
	for _, s := range changed {
		if int(s) < 0 || int(s) >= dg.NumSites() {
			return nil, fmt.Errorf("lmm: update: changed site %d out of range", s)
		}
		changedSet[s] = true
	}
	// New sites (beyond prev's roster) are implicitly changed.
	for s := len(prev.LocalRanks); s < dg.NumSites(); s++ {
		changedSet[graph.SiteID(s)] = true
	}
	// Unchanged sites must still align with the previous local vectors.
	for s := 0; s < len(prev.LocalRanks); s++ {
		if changedSet[graph.SiteID(s)] {
			continue
		}
		if dg.SiteSize(graph.SiteID(s)) != len(prev.LocalRanks[s]) {
			return nil, fmt.Errorf("%w: site %d has %d docs, previous local rank %d — list it as changed",
				ErrStaleResult, s, dg.SiteSize(graph.SiteID(s)), len(prev.LocalRanks[s]))
		}
	}

	// SiteRank: always refreshed (any link change can shift it), warm-
	// started from the previous vector padded for new sites.
	sg := graph.DeriveSiteGraph(dg, cfg.SiteGraph)
	start := matrix.NewVector(dg.NumSites())
	copy(start, prev.SiteRank)
	for s := len(prev.SiteRank); s < dg.NumSites(); s++ {
		start[s] = 1.0 / float64(dg.NumSites())
	}
	siteRes, err := pagerank.Graph(sg.G, pagerank.Config{
		Damping:         cfg.Damping,
		Personalization: cfg.SitePersonalization,
		Tol:             cfg.Tol,
		MaxIter:         cfg.MaxIter,
		Start:           start.Normalize(),
		Ctx:             cfg.Ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("lmm: update: siterank: %w", err)
	}

	// Local ranks: recompute only the changed sites, each warm-started
	// from its previous vector when the roster shape survived (an
	// edge-only change keeps the old local rank an excellent seed; a
	// grown site fails the shape check inside localDocRank and starts
	// cold).
	cfg.LocalStarts = prev.LocalRanks
	out := &WebResult{
		SiteRank:        siteRes.Scores,
		LocalRanks:      make([]matrix.Vector, dg.NumSites()),
		SiteIterations:  siteRes.Iterations,
		LocalIterations: make([]int, dg.NumSites()),
	}
	for s := 0; s < dg.NumSites(); s++ {
		if !changedSet[graph.SiteID(s)] {
			out.LocalRanks[s] = prev.LocalRanks[s]
			continue
		}
		local, iters, err := localDocRank(dg, graph.SiteID(s), cfg)
		if err != nil {
			return nil, fmt.Errorf("lmm: update: site %d: %w", s, err)
		}
		out.LocalRanks[s] = local
		out.LocalIterations[s] = iters
	}

	// Compose.
	out.DocRank = ComposeDocRank(dg, out.SiteRank, out.LocalRanks)
	return out, nil
}
