package lmm

import (
	"fmt"
	"sort"
	"strings"

	"lmmrank/internal/matrix"
)

// Ranking is a probability distribution over the global system states of a
// model, together with the layout that names each entry.
type Ranking struct {
	// Scores holds one score per global state in layout order.
	Scores matrix.Vector
	// Layout maps flat indices to (phase, sub-state) pairs.
	Layout *Layout
}

// Score returns the score of global state s.
func (r *Ranking) Score(s State) float64 {
	return r.Scores[r.Layout.Index(s)]
}

// Order returns all states sorted by descending score; ties break toward
// the lower flat index, keeping orderings deterministic.
func (r *Ranking) Order() []State {
	idx := make([]int, len(r.Scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if r.Scores[idx[a]] != r.Scores[idx[b]] {
			return r.Scores[idx[a]] > r.Scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := make([]State, len(idx))
	for pos, k := range idx {
		out[pos] = r.Layout.State(k)
	}
	return out
}

// Positions returns the 1-based rank position of every state in layout
// order — the right-hand column of the paper's Figure 2.
func (r *Ranking) Positions() []int {
	order := r.Order()
	pos := make([]int, len(r.Scores))
	for p, s := range order {
		pos[r.Layout.Index(s)] = p + 1
	}
	return pos
}

// String renders the ranking in the Figure 2 format: state, score, rank
// position.
func (r *Ranking) String() string {
	var b strings.Builder
	pos := r.Positions()
	for k := 0; k < len(r.Scores); k++ {
		fmt.Fprintf(&b, "%2d : %-7s %.4f  %2d\n", k+1, r.Layout.State(k), r.Scores[k], pos[k])
	}
	return b.String()
}

// SameOrder reports whether two rankings order all states identically.
func (r *Ranking) SameOrder(other *Ranking) bool {
	a, b := r.Order(), other.Order()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
