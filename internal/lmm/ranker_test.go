package lmm

import (
	"fmt"
	"math/rand"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// referenceLayeredDocRank recomputes the §3.2 pipeline from its building
// blocks, independently of Ranker's precomputation and buffer reuse: a
// fresh SiteGraph, fresh subgraphs, fresh pagerank solves. Combined with
// the kernel-level bitwise tests in internal/matrix and
// internal/pagerank, agreement here pins the whole refactored pipeline
// to the pre-optimization semantics.
func referenceLayeredDocRank(dg *graph.DocGraph, cfg WebConfig) (*WebResult, error) {
	sg := graph.DeriveSiteGraph(dg, cfg.SiteGraph)
	siteRes, err := pagerank.Sparse(sg.G.TransitionMatrix(), pagerank.Config{
		Damping:         cfg.Damping,
		Personalization: cfg.SitePersonalization,
		Tol:             cfg.Tol,
		MaxIter:         cfg.MaxIter,
	})
	if err != nil {
		return nil, err
	}
	local := make([]matrix.Vector, dg.NumSites())
	for s := range local {
		switch dg.SiteSize(graph.SiteID(s)) {
		case 0:
			local[s] = matrix.Vector{}
		case 1:
			local[s] = matrix.Vector{1}
		default:
			sub, _ := dg.LocalSubgraph(graph.SiteID(s))
			var pers matrix.Vector
			if cfg.DocPersonalization != nil {
				pers = cfg.DocPersonalization[graph.SiteID(s)]
			}
			res, err := pagerank.Sparse(sub.TransitionMatrix(), pagerank.Config{
				Damping:         cfg.Damping,
				Personalization: pers,
				Tol:             cfg.Tol,
				MaxIter:         cfg.MaxIter,
			})
			if err != nil {
				return nil, err
			}
			local[s] = res.Scores
		}
	}
	return &WebResult{
		DocRank:    ComposeDocRank(dg, siteRes.Scores, local),
		SiteRank:   siteRes.Scores,
		LocalRanks: local,
	}, nil
}

func TestRankerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		dg := randomWeb(rng, rng.Intn(8)+2, rng.Intn(60)+5)
		want, err := referenceLayeredDocRank(dg, WebConfig{})
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		r, err := NewRanker(dg, RankerOptions{})
		if err != nil {
			t.Fatalf("trial %d: NewRanker: %v", trial, err)
		}
		got, err := r.Rank(WebConfig{})
		if err != nil {
			t.Fatalf("trial %d: Rank: %v", trial, err)
		}
		if got.DocRank.L1Diff(want.DocRank) != 0 {
			t.Fatalf("trial %d: DocRank differs from reference by %g",
				trial, got.DocRank.L1Diff(want.DocRank))
		}
		if got.SiteRank.L1Diff(want.SiteRank) != 0 {
			t.Fatalf("trial %d: SiteRank differs", trial)
		}
	}
}

func TestRankerRepeatedQueriesStable(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	dg := randomWeb(rng, 6, 80)
	r, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Rank(WebConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := first.DocRank.Clone()
	for i := 0; i < 5; i++ {
		res, err := r.Rank(WebConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if res.DocRank.L1Diff(want) != 0 {
			t.Fatalf("repeat %d drifted by %g", i, res.DocRank.L1Diff(want))
		}
	}
}

// The E8 serving scenario: one precomputed Ranker answering alternating
// uniform and personalized queries, each matching a fresh one-shot
// pipeline bitwise — scratch reuse must not leak state across queries.
func TestRankerPersonalizedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	dg := randomWeb(rng, 5, 70)
	r, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatal(err)
	}

	sitePers := matrix.NewVector(dg.NumSites())
	for i := range sitePers {
		sitePers[i] = rng.Float64() + 0.01
	}
	sitePers.Normalize()
	docPers := map[graph.SiteID]matrix.Vector{}
	for s := 0; s < dg.NumSites(); s++ {
		if n := dg.SiteSize(graph.SiteID(s)); n > 1 {
			v := matrix.NewVector(n)
			for i := range v {
				v[i] = rng.Float64() + 0.01
			}
			docPers[graph.SiteID(s)] = v.Normalize()
			break
		}
	}

	configs := []WebConfig{
		{},
		{SitePersonalization: sitePers},
		{DocPersonalization: docPers},
		{},
		{SitePersonalization: sitePers, DocPersonalization: docPers},
	}
	for i, cfg := range configs {
		got, err := r.Rank(cfg)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := LayeredDocRank(dg, cfg)
		if err != nil {
			t.Fatalf("query %d reference: %v", i, err)
		}
		if got.DocRank.L1Diff(want.DocRank) != 0 {
			t.Fatalf("query %d differs from one-shot pipeline by %g",
				i, got.DocRank.L1Diff(want.DocRank))
		}
	}
}

// Steady-state Rank performs no allocations beyond the WebResult header:
// every solver, scratch vector and result buffer was precomputed.
func TestRankerRankAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	dg := randomWeb(rng, 10, 300)
	r, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := WebConfig{Parallelism: 1}
	if _, err := r.Rank(cfg); err != nil {
		t.Fatal(err)
	}
	var rankErr error
	allocs := testing.AllocsPerRun(20, func() {
		_, rankErr = r.Rank(cfg)
	})
	if rankErr != nil {
		t.Fatal(rankErr)
	}
	if allocs > 1 {
		t.Errorf("Rank allocates %.1f per query, budget is 1 (the WebResult header)", allocs)
	}
}

// undedupedWeb hand-builds a DocGraph whose digraph still holds
// duplicate parallel edges — the state a crawler-fed graph is in before
// anyone calls Dedupe. (The Builder dedupes at Build, so this must be
// constructed manually.)
func undedupedWeb(rng *rand.Rand, nSites, nDocs int) *graph.DocGraph {
	g := graph.NewDigraph(nDocs)
	for e := 0; e < nDocs*4; e++ {
		from := rng.Intn(nDocs)
		g.AddLink(from, rng.Intn(nDocs))
		g.AddLink(from, rng.Intn(nDocs)) // extra parallel edges
	}
	docs := make([]graph.Doc, nDocs)
	sites := make([]graph.Site, nSites)
	for s := range sites {
		sites[s].Name = fmt.Sprintf("s%d.example", s)
	}
	for d := range docs {
		s := d % nSites
		docs[d] = graph.Doc{URL: fmt.Sprintf("http://s%d.example/p%d", s, d), Site: graph.SiteID(s)}
		sites[s].Docs = append(sites[s].Docs, graph.DocID(d))
	}
	return &graph.DocGraph{G: g, Docs: docs, Sites: sites}
}

// Regression for the latent data race: the parallel pipelines used to
// reach Dedupe (a mutation) on the shared digraph from concurrent
// goroutines when handed an undeduped graph. The entry points now dedupe
// once up front; run with -race to verify (make race covers this
// package).
func TestParallelPipelinesOnUndedupedGraphRaceFree(t *testing.T) {
	rng := rand.New(rand.NewSource(65))

	dg := undedupedWeb(rng, 6, 120)
	if err := dg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := LayeredDocRank(dg, WebConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DocRank.IsDistribution(1e-7) {
		t.Error("layered DocRank not a distribution")
	}

	dg3 := undedupedWeb(rng, 6, 120)
	if _, err := LayeredDocRank3(dg3, nil, WebConfig{Parallelism: 4}); err != nil {
		t.Fatal(err)
	}

	// RankSubgraphs with an aliased, undeduped subgraph: the serial
	// prep must dedupe and build the shared transition matrix before
	// the fan-out.
	sub := graph.NewDigraph(20)
	for e := 0; e < 80; e++ {
		sub.AddLink(rng.Intn(20), rng.Intn(20))
	}
	ranks, _, err := RankSubgraphs([]*graph.Digraph{sub, sub, sub, sub}, WebConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i].L1Diff(ranks[0]) != 0 {
			t.Errorf("aliased subgraph rank %d differs", i)
		}
	}
}

// Pin the WebConfig damping sentinel: zero selects 0.85 exactly, tiny
// explicit values are honored, out-of-range damping errors.
func TestWebConfigDampingZeroSentinel(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	dg := randomWeb(rng, 4, 50)

	zero, err1 := LayeredDocRank(dg, WebConfig{Damping: 0})
	def, err2 := LayeredDocRank(dg, WebConfig{Damping: pagerank.DefaultDamping})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v / %v", err1, err2)
	}
	if zero.DocRank.L1Diff(def.DocRank) != 0 {
		t.Error("WebConfig{Damping: 0} is not identical to explicit 0.85")
	}

	tiny, err := LayeredDocRank(dg, WebConfig{Damping: 1e-6})
	if err != nil {
		t.Fatalf("tiny damping rejected: %v", err)
	}
	if tiny.DocRank.L1Diff(def.DocRank) == 0 {
		t.Error("tiny damping silently reinterpreted as default")
	}

	if _, err := LayeredDocRank(dg, WebConfig{Damping: 1.5}); err == nil {
		t.Error("damping 1.5 accepted")
	}
}
