package lmm

import (
	"fmt"
	"strings"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// This file applies the multi-layer extension (§2.2, implemented
// abstractly in hierarchy.go) at web scale: a three-layer
// domain → site → document ranking. The recursive Partition argument
// gives
//
//	DocRank(d) = DomainRank(dom) · SiteEntry(site | dom) · LocalRank(d)
//
// where SiteEntry is the gatekeeper entry distribution over a domain's
// sites: the PageRank of the domain-internal SiteGraph.

// DefaultDomainOf maps a site host to its registrable domain: the last
// two dot-separated labels ("dept003.campus2.example" → "campus2.example").
// Hosts with fewer labels map to themselves.
func DefaultDomainOf(siteName string) string {
	labels := strings.Split(siteName, ".")
	if len(labels) <= 2 {
		return siteName
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// Web3Result is the outcome of the three-layer pipeline.
type Web3Result struct {
	// DocRank is the final composed ranking per DocID.
	DocRank matrix.Vector
	// Domains lists the distinct domain names in first-seen order.
	Domains []string
	// DomainRank holds the top-layer distribution per domain index.
	DomainRank matrix.Vector
	// DomainOfSite maps each SiteID to its domain index.
	DomainOfSite []int
	// SiteEntry holds each site's entry probability within its domain
	// (summing to 1 per domain).
	SiteEntry matrix.Vector
	// LocalRanks holds each site's local DocRank, as in WebResult.
	LocalRanks []matrix.Vector
}

// LayeredDocRank3 ranks documents with the three-layer model. domainOf
// groups sites into domains (nil = DefaultDomainOf). With a single domain
// the result reduces exactly to LayeredDocRank.
func LayeredDocRank3(dg *graph.DocGraph, domainOf func(siteName string) string, cfg WebConfig) (*Web3Result, error) {
	if err := dg.Validate(); err != nil {
		return nil, fmt.Errorf("lmm: layered3: %w", err)
	}
	if dg.NumDocs() == 0 {
		return nil, fmt.Errorf("lmm: layered3: empty graph")
	}
	if domainOf == nil {
		domainOf = DefaultDomainOf
	}
	// Dedupe before the parallel local-rank phase: LocalSubgraph calls
	// Dedupe on the shared digraph, which mutates it — that must happen
	// exactly once, up front, not racily inside the site fan-out.
	dg.G.Dedupe()

	// Group sites into domains.
	ns := dg.NumSites()
	domainIdx := make(map[string]int)
	var domains []string
	domainOfSite := make([]int, ns)
	sitesOfDomain := make(map[int][]graph.SiteID)
	for s := 0; s < ns; s++ {
		name := domainOf(dg.Sites[s].Name)
		di, ok := domainIdx[name]
		if !ok {
			di = len(domains)
			domainIdx[name] = di
			domains = append(domains, name)
		}
		domainOfSite[s] = di
		sitesOfDomain[di] = append(sitesOfDomain[di], graph.SiteID(s))
	}
	nd := len(domains)

	// Site-level aggregation once; both upper layers derive from it.
	sg := graph.DeriveSiteGraph(dg, cfg.SiteGraph)

	// Top layer: domain graph aggregated from site edges.
	domainGraph := graph.NewDigraph(nd)
	sg.G.EachEdgeAll(func(from int, e graph.Edge) {
		domainGraph.AddEdge(domainOfSite[from], domainOfSite[e.To], e.Weight)
	})
	domainGraph.Dedupe()
	domRes, err := pagerank.Graph(domainGraph, pagerank.Config{
		Damping: cfg.Damping,
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
	})
	if err != nil {
		return nil, fmt.Errorf("lmm: layered3: domain layer: %w", err)
	}

	// Middle layer: per-domain internal site graphs → entry distributions.
	siteEntry := matrix.NewVector(ns)
	for di, sites := range sitesOfDomain {
		if len(sites) == 1 {
			siteEntry[sites[0]] = 1
			continue
		}
		local := make(map[graph.SiteID]int, len(sites))
		for i, s := range sites {
			local[s] = i
		}
		sub := graph.NewDigraph(len(sites))
		for i, s := range sites {
			sg.G.EachEdge(int(s), func(e graph.Edge) {
				if j, ok := local[graph.SiteID(e.To)]; ok {
					sub.AddEdge(i, j, e.Weight)
				}
			})
		}
		sub.Dedupe()
		res, err := pagerank.Graph(sub, pagerank.Config{
			Damping: cfg.Damping,
			Tol:     cfg.Tol,
			MaxIter: cfg.MaxIter,
		})
		if err != nil {
			return nil, fmt.Errorf("lmm: layered3: domain %q site layer: %w", domains[di], err)
		}
		for i, s := range sites {
			siteEntry[s] = res.Scores[i]
		}
	}

	// Bottom layer: local DocRanks, shared with the two-layer pipeline.
	local, _, err := localDocRanks(dg, cfg)
	if err != nil {
		return nil, fmt.Errorf("lmm: layered3: %w", err)
	}

	// Compose the three layers.
	out := &Web3Result{
		Domains:      domains,
		DomainRank:   domRes.Scores,
		DomainOfSite: domainOfSite,
		SiteEntry:    siteEntry,
		LocalRanks:   local,
	}
	weights := matrix.NewVector(dg.NumSites())
	for s := range weights {
		weights[s] = domRes.Scores[domainOfSite[s]] * siteEntry[s]
	}
	out.DocRank = ComposeDocRank(dg, weights, local)
	return out, nil
}
