package lmm

import (
	"fmt"
	"strings"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// This file applies the multi-layer extension (§2.2, implemented
// abstractly in hierarchy.go) at web scale: a three-layer
// domain → site → document ranking. The recursive Partition argument
// gives
//
//	DocRank(d) = DomainRank(dom) · SiteEntry(site | dom) · LocalRank(d)
//
// where SiteEntry is the gatekeeper entry distribution over a domain's
// sites: the PageRank of the domain-internal SiteGraph.

// DefaultDomainOf maps a site host to its registrable domain: the last
// two dot-separated labels ("dept003.campus2.example" → "campus2.example").
// Hosts with fewer labels map to themselves.
func DefaultDomainOf(siteName string) string {
	labels := strings.Split(siteName, ".")
	if len(labels) <= 2 {
		return siteName
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

// Web3Result is the outcome of the three-layer pipeline.
//
// Aliasing: a Web3Result returned by Ranker.Rank3 aliases the Ranker's
// scratch in DocRank and LocalRanks (same contract as WebResult); the
// one-shot LayeredDocRank3 uses a throwaway Ranker, so its result is
// safe to retain. The domain-layer vectors are always freshly allocated.
type Web3Result struct {
	// DocRank is the final composed ranking per DocID.
	DocRank matrix.Vector
	// Domains lists the distinct domain names in first-seen order.
	Domains []string
	// DomainRank holds the top-layer distribution per domain index.
	DomainRank matrix.Vector
	// DomainOfSite maps each SiteID to its domain index.
	DomainOfSite []int
	// SiteEntry holds each site's entry probability within its domain
	// (summing to 1 per domain).
	SiteEntry matrix.Vector
	// SiteWeights holds the per-site composition weights
	// DomainRank(dom(s))·SiteEntry(s) the DocRank was composed under.
	SiteWeights matrix.Vector
	// LocalRanks holds each site's local DocRank, as in WebResult.
	LocalRanks []matrix.Vector
	// LocalIterations records each site's local power-method work, as
	// in WebResult.
	LocalIterations []int
}

// ThreeLayerWeights is the upper two layers of the three-layer model,
// computed from the SiteGraph alone: the domain grouping, the domain
// PageRank, each site's entry distribution within its domain, and the
// per-site composition weights DomainRank(dom(s))·SiteEntry(s) that
// ComposeDocRank pairs with local DocRanks. All fields are freshly
// allocated — callers own them.
type ThreeLayerWeights struct {
	// Domains lists the distinct domain names in first-seen order.
	Domains []string
	// DomainRank holds the top-layer distribution per domain index.
	DomainRank matrix.Vector
	// DomainOfSite maps each SiteID to its domain index.
	DomainOfSite []int
	// SiteEntry holds each site's entry probability within its domain.
	SiteEntry matrix.Vector
	// SiteWeights holds DomainRank(dom(s))·SiteEntry(s) per SiteID — the
	// site weights of the Partition-Theorem composition.
	SiteWeights matrix.Vector
}

// ThreeLayerWeights computes the upper two layers of the three-layer
// model from this Ranker's precomputed SiteGraph. It builds only small,
// private domain-level graphs, never mutating shared structure, so
// Share()d rankers may call it concurrently; the distributed coordinator
// uses it to compose fleet-computed local DocRanks into a three-layer
// ranking. domainOf nil selects DefaultDomainOf.
func (r *Ranker) ThreeLayerWeights(domainOf func(siteName string) string, cfg WebConfig) (*ThreeLayerWeights, error) {
	return threeLayerWeights(r.core.dg, r.core.sg, domainOf, cfg)
}

// threeLayerWeights computes domain grouping, DomainRank and SiteEntry
// from an already-derived (and deduplicated) SiteGraph. It only reads sg
// and dg; the graphs it runs PageRank over are freshly built.
func threeLayerWeights(dg *graph.DocGraph, sg *graph.SiteGraph, domainOf func(siteName string) string, cfg WebConfig) (*ThreeLayerWeights, error) {
	if domainOf == nil {
		domainOf = DefaultDomainOf
	}

	// Group sites into domains.
	ns := dg.NumSites()
	domainIdx := make(map[string]int)
	var domains []string
	domainOfSite := make([]int, ns)
	var sitesOfDomain [][]graph.SiteID
	for s := 0; s < ns; s++ {
		name := domainOf(dg.Sites[s].Name)
		di, ok := domainIdx[name]
		if !ok {
			di = len(domains)
			domainIdx[name] = di
			domains = append(domains, name)
			sitesOfDomain = append(sitesOfDomain, nil)
		}
		domainOfSite[s] = di
		sitesOfDomain[di] = append(sitesOfDomain[di], graph.SiteID(s))
	}
	nd := len(domains)

	// Top layer: domain graph aggregated from site edges.
	domainGraph := graph.NewDigraph(nd)
	sg.G.EachEdgeAll(func(from int, e graph.Edge) {
		domainGraph.AddEdge(domainOfSite[from], domainOfSite[e.To], e.Weight)
	})
	domainGraph.Dedupe()
	domRes, err := pagerank.Graph(domainGraph, pagerank.Config{
		Damping: cfg.Damping,
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
		Ctx:     cfg.Ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("lmm: layered3: domain layer: %w", err)
	}

	// Middle layer: per-domain internal site graphs → entry distributions.
	siteEntry := matrix.NewVector(ns)
	for di, sites := range sitesOfDomain {
		if len(sites) == 1 {
			siteEntry[sites[0]] = 1
			continue
		}
		local := make(map[graph.SiteID]int, len(sites))
		for i, s := range sites {
			local[s] = i
		}
		sub := graph.NewDigraph(len(sites))
		for i, s := range sites {
			sg.G.EachEdge(int(s), func(e graph.Edge) {
				if j, ok := local[graph.SiteID(e.To)]; ok {
					sub.AddEdge(i, j, e.Weight)
				}
			})
		}
		sub.Dedupe()
		res, err := pagerank.Graph(sub, pagerank.Config{
			Damping: cfg.Damping,
			Tol:     cfg.Tol,
			MaxIter: cfg.MaxIter,
			Ctx:     cfg.Ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("lmm: layered3: domain %q site layer: %w", domains[di], err)
		}
		for i, s := range sites {
			siteEntry[s] = res.Scores[i]
		}
	}

	weights := matrix.NewVector(ns)
	for s := range weights {
		weights[s] = domRes.Scores[domainOfSite[s]] * siteEntry[s]
	}
	return &ThreeLayerWeights{
		Domains:      domains,
		DomainRank:   domRes.Scores,
		DomainOfSite: domainOfSite,
		SiteEntry:    siteEntry,
		SiteWeights:  weights,
	}, nil
}

// LayeredDocRank3 ranks documents with the three-layer model. domainOf
// groups sites into domains (nil = DefaultDomainOf). With a single domain
// the result reduces exactly to LayeredDocRank.
//
// It is the one-shot form of Ranker.Rank3: a throwaway Ranker is built
// and queried once, so the returned Web3Result is safe to retain.
func LayeredDocRank3(dg *graph.DocGraph, domainOf func(siteName string) string, cfg WebConfig) (*Web3Result, error) {
	r, err := NewRanker(dg, RankerOptions{SiteGraph: cfg.SiteGraph})
	if err != nil {
		// NewRanker errors carry their own "lmm: ranker:" prefix.
		return nil, err
	}
	return r.Rank3(domainOf, cfg)
}
