package lmm

import (
	"fmt"

	"lmmrank/internal/graph"
)

// Rebuild returns a new Ranker over this Ranker's (since mutated)
// DocGraph, rebuilding only the listed sites' precomputed structure.
// This is the structural half of the churn path: because the layered
// decomposition keeps every site's subgraph independent, a mutation
// confined to a few sites leaves every other site's extracted subgraph,
// local index and lazily built PageRank chain exactly valid — Rebuild
// shares those by pointer with the old core and re-extracts (in
// parallel) only the dirty ones. The small site layer is always
// re-derived: any link change can shift the SiteLink aggregation.
//
// changed must list every site whose pages or links changed (including
// links *from* its documents to other sites); sites appended beyond the
// old roster are implicitly changed. A site not listed must have kept
// its exact document roster — otherwise ErrStaleResult — but Rebuild
// cannot verify edge sets cheaply, so an unlisted edge change silently
// yields a Ranker with a stale subgraph for that site: the caller owns
// the changed list, exactly as with UpdateLayeredDocRank.
//
// The old Ranker keeps working over the shared structure for the graph
// content it was built against, but its graph has mutated, so its
// queries now fail with ErrGraphMutated — the new Ranker is the serving
// path. The returned Ranker has fresh private scratch; call Prepare (or
// serve a warm-up query) before fanning Share()d copies out.
func (r *Ranker) Rebuild(changed []graph.SiteID) (*Ranker, error) {
	return r.RebuildOn(r.core.dg, changed)
}

// RebuildOn is Rebuild against an explicit target graph — the
// snapshot-serving form: dg is typically a DocGraph.CloneCOW() of this
// Ranker's graph with a delta applied, so the old Ranker's graph never
// mutates and it keeps serving straggler queries (no ErrGraphMutated)
// while the new Ranker is built off to the side. Clean sites share their
// precomputed structure by pointer exactly as in Rebuild — a rankerSite
// holds no reference back to the graph it was extracted from, which is
// what makes the sharing sound across graph copies. The changed-list
// contract is Rebuild's: every site whose pages or links differ between
// the old core's build and dg must be listed (appended sites are
// implicit), and an unlisted roster change fails with ErrStaleResult.
func (r *Ranker) RebuildOn(dg *graph.DocGraph, changed []graph.SiteID) (*Ranker, error) {
	old := r.core
	if err := dg.Validate(); err != nil {
		return nil, fmt.Errorf("lmm: rebuild: %w", err)
	}
	if dg.NumDocs() == 0 {
		return nil, fmt.Errorf("lmm: rebuild: empty graph")
	}
	dg.G.Dedupe()
	ns := dg.NumSites()
	if ns < len(old.sites) {
		return nil, fmt.Errorf("%w: graph has %d sites, ranker %d (sites removed?)",
			ErrStaleResult, ns, len(old.sites))
	}
	changedSet := make(map[graph.SiteID]bool, len(changed))
	for _, s := range changed {
		if int(s) < 0 || int(s) >= ns {
			return nil, fmt.Errorf("lmm: rebuild: changed site %d out of range", s)
		}
		changedSet[s] = true
	}
	// Sites appended beyond the old roster are implicitly changed.
	for s := len(old.sites); s < ns; s++ {
		changedSet[graph.SiteID(s)] = true
	}
	// Unchanged sites must have kept their exact rosters, or their shared
	// subgraphs would index the wrong documents.
	for s := 0; s < len(old.sites); s++ {
		if changedSet[graph.SiteID(s)] {
			continue
		}
		if !sameRoster(old.sites[s].idx.ToGlobal, dg.Sites[s].Docs) {
			return nil, fmt.Errorf("%w: site %d roster changed — list it in changed",
				ErrStaleResult, s)
		}
	}

	core := &rankerCore{
		dg:      dg,
		opts:    old.opts,
		sg:      graph.DeriveSiteGraph(dg, old.opts.SiteGraph),
		sites:   make([]*rankerSite, ns),
		version: dg.G.Version(),
	}
	// Re-extract only the dirty sites; clean ones share the old pointers
	// (immutable after construction, so sharing across cores is safe).
	ForEachParallel(ns, 0, func(s int) {
		if s < len(old.sites) && !changedSet[graph.SiteID(s)] {
			core.sites[s] = old.sites[s]
			return
		}
		core.sites[s] = extractSite(dg, graph.SiteID(s))
	})
	return &Ranker{core: core}, nil
}

// sameRoster reports whether a site's document roster is unchanged.
func sameRoster(a, b []graph.DocID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
