package lmm

import (
	"errors"
	"math/rand"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

// mutateSite adds a couple of intra-site links to site s and returns s.
func mutateSite(t *testing.T, dg *graph.DocGraph, s graph.SiteID) {
	t.Helper()
	docs := dg.Sites[s].Docs
	if len(docs) < 3 {
		t.Skipf("site %d too small in this seed", s)
	}
	dg.G.AddLink(int(docs[0]), int(docs[2]))
	dg.G.AddLink(int(docs[2]), int(docs[1]))
}

// TestRankerStaleAfterMutation pins the mutate-after-precompute footgun:
// a graph mutation not routed through Rebuild turns every query path of
// the old Ranker into a documented ErrGraphMutated instead of a silently
// stale ranking.
func TestRankerStaleAfterMutation(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(91)), 6, 60)
	rk, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	if _, err := rk.Rank(WebConfig{}); err != nil {
		t.Fatalf("pre-mutation Rank: %v", err)
	}
	if rk.Stale() {
		t.Fatal("fresh Ranker reports stale")
	}
	mutateSite(t, dg, 1)
	if !rk.Stale() {
		t.Fatal("mutated graph not detected as stale")
	}
	if _, err := rk.Rank(WebConfig{}); !errors.Is(err, ErrGraphMutated) {
		t.Errorf("Rank after mutation: err = %v, want ErrGraphMutated", err)
	}
	if _, _, err := rk.RankSites(WebConfig{}); !errors.Is(err, ErrGraphMutated) {
		t.Errorf("RankSites after mutation: err = %v, want ErrGraphMutated", err)
	}
	if _, err := rk.Rank3(nil, WebConfig{}); !errors.Is(err, ErrGraphMutated) {
		t.Errorf("Rank3 after mutation: err = %v, want ErrGraphMutated", err)
	}
	// A Share()d sibling sees the same core, hence the same verdict.
	if _, err := rk.Share().Rank(WebConfig{}); !errors.Is(err, ErrGraphMutated) {
		t.Errorf("shared Ranker after mutation: err = %v, want ErrGraphMutated", err)
	}
}

// TestRebuildMatchesColdRanker is the correctness pin of the structural
// churn path: after a site-local mutation, a Rebuild([changed]) Ranker
// must agree with a from-scratch NewRanker to well under 1e-9.
func TestRebuildMatchesColdRanker(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(92)), 8, 80)
	rk, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	if _, err := rk.Rank(WebConfig{Tol: 1e-12}); err != nil {
		t.Fatalf("initial Rank: %v", err)
	}
	mutateSite(t, dg, 3)

	warm, err := rk.Rebuild([]graph.SiteID{3})
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	cold, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("cold NewRanker: %v", err)
	}
	wres, err := warm.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("warm Rank: %v", err)
	}
	cres, err := cold.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}
	if d := wres.DocRank.L1Diff(cres.DocRank); d >= 1e-12 {
		t.Errorf("‖rebuild − cold‖₁ = %g, want < 1e-12 (identical structure, identical arithmetic)", d)
	}
	if d := wres.SiteRank.L1Diff(cres.SiteRank); d >= 1e-12 {
		t.Errorf("‖rebuild − cold‖₁ on SiteRank = %g", d)
	}
}

// TestRebuildReusesCleanSiteStructure asserts the reuse that makes
// Rebuild cheap: unchanged sites share their extracted subgraph (by
// pointer) with the old core; the dirty site gets a fresh one.
func TestRebuildReusesCleanSiteStructure(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(93)), 8, 80)
	rk, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	rk.Prepare()
	mutateSite(t, dg, 2)
	warm, err := rk.Rebuild([]graph.SiteID{2})
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	for s := 0; s < rk.NumSites(); s++ {
		oldSub, _ := rk.LocalSubgraph(graph.SiteID(s))
		newSub, _ := warm.LocalSubgraph(graph.SiteID(s))
		if s == 2 {
			if oldSub == newSub {
				t.Errorf("changed site %d shares its old subgraph", s)
			}
			continue
		}
		if oldSub != newSub {
			t.Errorf("clean site %d was re-extracted", s)
		}
	}
	if warm.Stale() {
		t.Error("rebuilt Ranker reports stale")
	}
	if rk.Stale() != true {
		t.Error("old Ranker should stay stale after Rebuild")
	}
}

// TestRebuildStaleDetection covers the refusal paths: a grown roster not
// listed as changed, removed sites, and out-of-range changed IDs.
func TestRebuildStaleDetection(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(94)), 6, 60)
	rk, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	if _, err := rk.Rebuild([]graph.SiteID{99}); err == nil {
		t.Error("out-of-range changed site accepted")
	}

	// Rebuild the DocGraph with one extra document in site 1; because the
	// Ranker captures the graph by reference, swap the new content into
	// the same struct the Ranker holds. Not listing site 1 must fail.
	grown := rebuildWithExtraDoc(dg, 1)
	*dg = *grown
	if _, err := rk.Rebuild(nil); !errors.Is(err, ErrStaleResult) {
		t.Fatalf("grown unlisted roster: err = %v, want ErrStaleResult", err)
	}
	warm, err := rk.Rebuild([]graph.SiteID{1})
	if err != nil {
		t.Fatalf("Rebuild with grown site listed: %v", err)
	}
	wres, err := warm.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("warm Rank: %v", err)
	}
	full, err := LayeredDocRank(dg, WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if d := wres.DocRank.L1Diff(full.DocRank); d >= 1e-12 {
		t.Errorf("‖rebuild − full‖₁ after growth = %g", d)
	}
}

// TestRebuildHandlesNewSite: appended sites are implicitly changed.
func TestRebuildHandlesNewSite(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(95)), 6, 60)
	rk, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	joined := rebuildWithNewSite(dg)
	*dg = *joined
	warm, err := rk.Rebuild(nil)
	if err != nil {
		t.Fatalf("Rebuild after join: %v", err)
	}
	if warm.NumSites() != dg.NumSites() {
		t.Fatalf("rebuilt ranker has %d sites, graph %d", warm.NumSites(), dg.NumSites())
	}
	wres, err := warm.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("warm Rank: %v", err)
	}
	full, err := LayeredDocRank(dg, WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	if d := wres.DocRank.L1Diff(full.DocRank); d >= 1e-12 {
		t.Errorf("‖rebuild − full‖₁ after join = %g", d)
	}
}

// TestRebuildOnCOWCloneKeepsOldRankerServing pins the snapshot-serving
// contract: applying the mutation to a CloneCOW of the graph and
// rebuilding on the clone leaves the old Ranker's graph untouched, so
// the old Ranker keeps answering (no ErrGraphMutated) with its original
// ranking while the new Ranker agrees with a cold build on the clone.
func TestRebuildOnCOWCloneKeepsOldRankerServing(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(97)), 8, 80)
	rk, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	pre, err := rk.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("pre-clone Rank: %v", err)
	}
	preDoc := pre.DocRank.Clone()

	work := dg.CloneCOW()
	mutateSite(t, work, 3)
	warm, err := rk.RebuildOn(work, []graph.SiteID{3})
	if err != nil {
		t.Fatalf("RebuildOn: %v", err)
	}

	// The old Ranker's graph never mutated: it keeps serving, bit-stable.
	if rk.Stale() {
		t.Fatal("old Ranker stale after a COW-clone rebuild")
	}
	post, err := rk.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("old Ranker Rank after RebuildOn: %v", err)
	}
	if d := post.DocRank.L1Diff(preDoc); d != 0 {
		t.Errorf("old Ranker's ranking moved by %g under a clone rebuild", d)
	}

	// The new Ranker agrees with a cold build on the mutated clone.
	cold, err := NewRanker(work, RankerOptions{})
	if err != nil {
		t.Fatalf("cold NewRanker on clone: %v", err)
	}
	wres, err := warm.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("warm Rank: %v", err)
	}
	cres, err := cold.Rank(WebConfig{Tol: 1e-12})
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}
	if d := wres.DocRank.L1Diff(cres.DocRank); d >= 1e-12 {
		t.Errorf("‖rebuildOn − cold‖₁ = %g, want < 1e-12", d)
	}
	// And it differs from the pre-mutation ranking (the edit was real).
	if d := wres.DocRank.L1Diff(preDoc); d == 0 {
		t.Error("mutated clone ranks identically to the original graph")
	}
}

// TestWarmStartSeedsCutIterations pins the convergence half of the churn
// path: seeding the site layer and the locals with the previous solution
// must reduce power-method work on a lightly mutated graph, and
// wrong-shape seeds must be ignored, not fatal.
func TestWarmStartSeedsCutIterations(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(96)), 8, 80)
	cfg := WebConfig{Tol: 1e-11}
	rk, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("NewRanker: %v", err)
	}
	prev, err := rk.Rank(cfg)
	if err != nil {
		t.Fatalf("initial Rank: %v", err)
	}
	// Snapshot the previous solution (Rank results alias scratch).
	seedSite := prev.SiteRank.Clone()
	seedLocals := make([]matrix.Vector, len(prev.LocalRanks))
	coldLocalIters := 0
	for s, lr := range prev.LocalRanks {
		seedLocals[s] = lr.Clone()
		coldLocalIters += prev.LocalIterations[s]
	}
	coldSiteIters := prev.SiteIterations

	mutateSite(t, dg, 4)
	warm, err := rk.Rebuild([]graph.SiteID{4})
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	seeded := cfg
	seeded.SiteStart = seedSite
	seeded.LocalStarts = seedLocals
	wres, err := warm.Rank(seeded)
	if err != nil {
		t.Fatalf("seeded Rank: %v", err)
	}
	warmLocalIters := 0
	for _, it := range wres.LocalIterations {
		warmLocalIters += it
	}
	if wres.SiteIterations >= coldSiteIters {
		t.Errorf("seeded SiteRank took %d iterations, cold %d", wres.SiteIterations, coldSiteIters)
	}
	if warmLocalIters >= coldLocalIters {
		t.Errorf("seeded locals took %d iterations total, cold %d", warmLocalIters, coldLocalIters)
	}

	// The seeded solution still agrees with a cold rebuild.
	cold, err := NewRanker(dg, RankerOptions{})
	if err != nil {
		t.Fatalf("cold NewRanker: %v", err)
	}
	cres, err := cold.Rank(cfg)
	if err != nil {
		t.Fatalf("cold Rank: %v", err)
	}
	if d := wres.DocRank.L1Diff(cres.DocRank); d >= 1e-9 {
		t.Errorf("‖seeded − cold‖₁ = %g, want < 1e-9", d)
	}

	// Wrong-shape seeds are hints, not inputs: ignored without error.
	bad := cfg
	bad.SiteStart = matrix.Vector{1}
	bad.LocalStarts = []matrix.Vector{{0.5, 0.5}}
	bres, err := warm.Share().Rank(bad)
	if err != nil {
		t.Fatalf("bad-shape seeds errored: %v", err)
	}
	if d := bres.DocRank.L1Diff(cres.DocRank); d >= 1e-9 {
		t.Errorf("bad-shape seeds shifted the ranking by %g", d)
	}
}
