// Package lmm implements the paper's contribution: the two-layer Layered
// Markov Model (Definition 1), the gatekeeper-based layer decomposition
// (Definitions 2–3, eq. 3), the four ranking approaches of §2.3, the
// Partition Theorem (Theorem 2) that makes the decentralized Layered
// Method exact, the §3.2 application to Web document ranking, and the
// multi-layer extension sketched in §2.2.
package lmm

import (
	"errors"
	"fmt"
	"math"

	"lmmrank/internal/matrix"
)

var (
	// ErrInvalidModel is returned (wrapped) when a model violates the
	// 6-tuple's structural constraints.
	ErrInvalidModel = errors.New("lmm: invalid model")
	// ErrNotPrimitive is returned (wrapped) when an approach requires a
	// primitive matrix (Theorem 2's hypothesis) but the input is not.
	ErrNotPrimitive = errors.New("lmm: matrix is not primitive")
)

// Model is the Layered Markov Model LMM = (P, Y, vY, O, U, vU) of
// Definition 1. Phases (the paper's Web sites) are indexed 0..NumPhases-1;
// sub-states (Web documents) of phase I are indexed 0..SubStates(I)-1.
type Model struct {
	// Y is the NP×NP phase-layer transition matrix.
	Y *matrix.Dense
	// U holds one sub-state transition matrix per phase.
	U []*matrix.Dense
	// VY is the initial/personalization distribution of the phase layer
	// (nil = uniform). It feeds the maximal-irreducibility adjustment in
	// Approach 1 and 3 and personalizes the site layer.
	VY matrix.Vector
	// VU holds the per-phase initial distributions v^I_U that the
	// gatekeeper re-enters through (nil entries = uniform). They
	// personalize the document layer.
	VU []matrix.Vector
}

// NewModel builds and validates a model with uniform initial
// distributions.
func NewModel(y *matrix.Dense, u []*matrix.Dense) (*Model, error) {
	m := &Model{Y: y, U: u}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// NumPhases returns NP, the number of phases.
func (m *Model) NumPhases() int { return len(m.U) }

// SubStates returns n_I, the number of sub-states of phase I.
func (m *Model) SubStates(i int) int { return m.U[i].Rows() }

// TotalStates returns N_P = Σ n_I, the number of global system states.
func (m *Model) TotalStates() int {
	var t int
	for _, u := range m.U {
		t += u.Rows()
	}
	return t
}

// Layout returns the flattening of this model's (phase, sub-state) pairs.
func (m *Model) Layout() *Layout {
	sizes := make([]int, len(m.U))
	for i, u := range m.U {
		sizes[i] = u.Rows()
	}
	return NewLayout(sizes)
}

// Validate checks the structural constraints of Definition 1. Rows of Y
// and of each U_I must be probability distributions; all-zero (dangling)
// rows are tolerated in U because the irreducibility constructions repair
// them, matching real Web data.
func (m *Model) Validate() error {
	if m.Y == nil || len(m.U) == 0 {
		return fmt.Errorf("%w: nil Y or empty U", ErrInvalidModel)
	}
	np := len(m.U)
	if m.Y.Rows() != np || m.Y.Cols() != np {
		return fmt.Errorf("%w: Y is %dx%d but model has %d phases",
			ErrInvalidModel, m.Y.Rows(), m.Y.Cols(), np)
	}
	if err := checkStochasticRows(m.Y, false); err != nil {
		return fmt.Errorf("%w: Y: %v", ErrInvalidModel, err)
	}
	for i, u := range m.U {
		if u == nil {
			return fmt.Errorf("%w: U[%d] is nil", ErrInvalidModel, i)
		}
		if u.Rows() != u.Cols() || u.Rows() == 0 {
			return fmt.Errorf("%w: U[%d] is %dx%d", ErrInvalidModel, i, u.Rows(), u.Cols())
		}
		if err := checkStochasticRows(u, true); err != nil {
			return fmt.Errorf("%w: U[%d]: %v", ErrInvalidModel, i, err)
		}
	}
	if m.VY != nil {
		if len(m.VY) != np {
			return fmt.Errorf("%w: vY length %d vs %d phases", ErrInvalidModel, len(m.VY), np)
		}
		if !m.VY.IsDistribution(1e-6) {
			return fmt.Errorf("%w: vY is not a distribution", ErrInvalidModel)
		}
	}
	if m.VU != nil {
		if len(m.VU) != np {
			return fmt.Errorf("%w: vU has %d entries vs %d phases", ErrInvalidModel, len(m.VU), np)
		}
		for i, v := range m.VU {
			if v == nil {
				continue
			}
			if len(v) != m.SubStates(i) {
				return fmt.Errorf("%w: vU[%d] length %d vs %d sub-states",
					ErrInvalidModel, i, len(v), m.SubStates(i))
			}
			if !v.IsDistribution(1e-6) {
				return fmt.Errorf("%w: vU[%d] is not a distribution", ErrInvalidModel, i)
			}
		}
	}
	return nil
}

// checkStochasticRows verifies each row is a distribution; when
// allowDangling is set, all-zero rows pass.
func checkStochasticRows(m *matrix.Dense, allowDangling bool) error {
	for i := 0; i < m.Rows(); i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < -1e-9 || math.IsNaN(v) {
				return fmt.Errorf("row %d has negative or NaN entry", i)
			}
			sum += v
		}
		if math.Abs(sum-1) <= 1e-6 {
			continue
		}
		if allowDangling && sum == 0 {
			continue
		}
		return fmt.Errorf("row %d sums to %g", i, sum)
	}
	return nil
}

// State identifies a global system state (I, i): sub-state i of phase I.
// The paper writes these 1-based, e.g. (2,3); this package is 0-based.
type State struct {
	Phase, Sub int
}

// String renders the state 1-based to match the paper's notation.
func (s State) String() string {
	return fmt.Sprintf("(%d,%d)", s.Phase+1, s.Sub+1)
}

// Layout maps between (phase, sub-state) pairs and flat indices
// 0..Total-1, ordered by phase then sub-state — the ordering of the
// paper's Figure 2 listing.
type Layout struct {
	sizes   []int
	offsets []int
	total   int
}

// NewLayout builds a layout from per-phase sub-state counts.
func NewLayout(sizes []int) *Layout {
	l := &Layout{
		sizes:   append([]int(nil), sizes...),
		offsets: make([]int, len(sizes)),
	}
	for i, n := range sizes {
		if n <= 0 {
			panic(fmt.Sprintf("lmm: phase %d has non-positive size %d", i, n))
		}
		l.offsets[i] = l.total
		l.total += n
	}
	return l
}

// Total returns the number of global system states.
func (l *Layout) Total() int { return l.total }

// NumPhases returns the number of phases.
func (l *Layout) NumPhases() int { return len(l.sizes) }

// Size returns the number of sub-states of phase i.
func (l *Layout) Size(i int) int { return l.sizes[i] }

// Index flattens a state. It panics on out-of-range states.
func (l *Layout) Index(s State) int {
	if s.Phase < 0 || s.Phase >= len(l.sizes) || s.Sub < 0 || s.Sub >= l.sizes[s.Phase] {
		panic(fmt.Sprintf("lmm: state %v out of layout", s))
	}
	return l.offsets[s.Phase] + s.Sub
}

// State unflattens index k. It panics when k is out of range.
func (l *Layout) State(k int) State {
	if k < 0 || k >= l.total {
		panic(fmt.Sprintf("lmm: flat index %d out of %d", k, l.total))
	}
	// Linear scan is fine: layouts have few phases relative to states and
	// this is not on the hot path; binary search keeps large models fast.
	lo, hi := 0, len(l.offsets)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.offsets[mid] <= k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return State{Phase: lo, Sub: k - l.offsets[lo]}
}
