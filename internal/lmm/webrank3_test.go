package lmm

import (
	"math"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/rankutil"
	"lmmrank/internal/webgen"
)

func multiCampusWeb(t *testing.T, campuses int) *webgen.Web {
	t.Helper()
	cfg := webgen.Config{
		Seed:                31,
		Sites:               12,
		MeanSitePages:       10,
		AuthorityPages:      3,
		IntraLinksPerPage:   2,
		InterLinkFraction:   0.25,
		DynamicClusterPages: 60,
		DocClusterPages:     60,
		Campuses:            campuses,
	}
	return webgen.Generate(cfg)
}

func TestDefaultDomainOf(t *testing.T) {
	tests := []struct{ in, want string }{
		{"dept003.campus2.example", "campus2.example"},
		{"www.campus.example", "campus.example"},
		{"campus.example", "campus.example"},
		{"localhost", "localhost"},
	}
	for _, tt := range tests {
		if got := DefaultDomainOf(tt.in); got != tt.want {
			t.Errorf("DefaultDomainOf(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLayered3SingleDomainReducesToTwoLayer(t *testing.T) {
	// All sites in one domain: the domain layer is trivial and the
	// three-layer ranking must equal the two-layer one exactly.
	web := multiCampusWeb(t, 1)
	cfg := WebConfig{Tol: 1e-11}
	two, err := LayeredDocRank(web.Graph, cfg)
	if err != nil {
		t.Fatalf("two-layer: %v", err)
	}
	three, err := LayeredDocRank3(web.Graph, nil, cfg)
	if err != nil {
		t.Fatalf("three-layer: %v", err)
	}
	if len(three.Domains) != 1 {
		t.Fatalf("domains = %v, want 1", three.Domains)
	}
	if d := three.DocRank.L1Diff(two.DocRank); d > 1e-9 {
		t.Errorf("single-domain three-layer deviates from two-layer: %g", d)
	}
}

func TestLayered3MultiCampus(t *testing.T) {
	web := multiCampusWeb(t, 3)
	cfg := WebConfig{Tol: 1e-10}
	res, err := LayeredDocRank3(web.Graph, nil, cfg)
	if err != nil {
		t.Fatalf("three-layer: %v", err)
	}
	if len(res.Domains) != 3 {
		t.Fatalf("domains = %v, want 3 campuses", res.Domains)
	}
	if !res.DocRank.IsDistribution(1e-7) {
		t.Errorf("DocRank sums to %g", res.DocRank.Sum())
	}
	if !res.DomainRank.IsDistribution(1e-7) {
		t.Errorf("DomainRank sums to %g", res.DomainRank.Sum())
	}
	// Site entries sum to 1 within each domain.
	perDomain := make([]float64, len(res.Domains))
	for s, di := range res.DomainOfSite {
		perDomain[di] += res.SiteEntry[s]
	}
	for di, sum := range perDomain {
		if math.Abs(sum-1) > 1e-7 {
			t.Errorf("domain %q site entries sum to %g", res.Domains[di], sum)
		}
	}
	// Composition identity.
	for s := range web.Graph.Sites {
		w := res.DomainRank[res.DomainOfSite[s]] * res.SiteEntry[s]
		for i, d := range web.Graph.Sites[s].Docs {
			if math.Abs(res.DocRank[d]-w*res.LocalRanks[s][i]) > 1e-12 {
				t.Fatalf("composition broken at doc %d", d)
			}
		}
	}
}

func TestLayered3SpamResistance(t *testing.T) {
	// The extra layer must not reintroduce agglomerate contamination.
	web := multiCampusWeb(t, 2)
	res, err := LayeredDocRank3(web.Graph, nil, WebConfig{Tol: 1e-9})
	if err != nil {
		t.Fatalf("three-layer: %v", err)
	}
	if c := rankutil.ContaminationAtK(res.DocRank, web.SpamFlags(), 15); c > 0.1 {
		t.Errorf("contamination@15 = %g", c)
	}
}

func TestLayered3AgreesWithTwoLayerBroadly(t *testing.T) {
	// The domain layer reweighs sites but should preserve the broad
	// ordering on a multi-campus web.
	web := multiCampusWeb(t, 2)
	cfg := WebConfig{Tol: 1e-9}
	two, err := LayeredDocRank(web.Graph, cfg)
	if err != nil {
		t.Fatalf("two-layer: %v", err)
	}
	three, err := LayeredDocRank3(web.Graph, nil, cfg)
	if err != nil {
		t.Fatalf("three-layer: %v", err)
	}
	tau := rankutil.KendallTau(two.DocRank, three.DocRank)
	if tau < 0.5 {
		t.Errorf("τ(two, three) = %.3f, want broadly consistent", tau)
	}
	if two.DocRank.L1Diff(three.DocRank) < 1e-12 {
		t.Error("three-layer identical to two-layer on a multi-domain web — domain layer inert?")
	}
}

func TestLayered3CustomDomainFunction(t *testing.T) {
	web := multiCampusWeb(t, 1)
	// Group every site into its own domain: the domain layer then IS the
	// site layer, and entries are all 1.
	res, err := LayeredDocRank3(web.Graph, func(name string) string { return name }, WebConfig{Tol: 1e-10})
	if err != nil {
		t.Fatalf("three-layer: %v", err)
	}
	if len(res.Domains) != web.Graph.NumSites() {
		t.Fatalf("domains = %d, want one per site", len(res.Domains))
	}
	for s, e := range res.SiteEntry {
		if math.Abs(e-1) > 1e-12 {
			t.Errorf("site %d entry = %g, want 1", s, e)
		}
	}
	// Equals the two-layer ranking: DomainRank over singleton domains is
	// exactly the SiteRank.
	two, err := LayeredDocRank(web.Graph, WebConfig{Tol: 1e-10})
	if err != nil {
		t.Fatalf("two-layer: %v", err)
	}
	if d := res.DocRank.L1Diff(two.DocRank); d > 1e-8 {
		t.Errorf("singleton-domain three-layer deviates: %g", d)
	}
}

func TestLayered3EmptyGraph(t *testing.T) {
	dg := &graph.DocGraph{G: graph.NewDigraph(0)}
	if _, err := LayeredDocRank3(dg, nil, WebConfig{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestMultiCampusGeneratorStructure(t *testing.T) {
	web := multiCampusWeb(t, 3)
	domains := make(map[string]int)
	for _, site := range web.Graph.Sites {
		domains[DefaultDomainOf(site.Name)]++
	}
	if len(domains) != 3 {
		t.Fatalf("domains = %v, want 3", domains)
	}
	// Agglomerate hosts only on the first campus.
	if domains["campus.example"] != 12+2 {
		t.Errorf("campus.example has %d sites, want 14 (12 + 2 agglomerate hosts)",
			domains["campus.example"])
	}
	if domains["campus2.example"] != 12 {
		t.Errorf("campus2.example has %d sites, want 12", domains["campus2.example"])
	}
}
