package lmm

import (
	"errors"
	"math/rand"
	"testing"

	"lmmrank/internal/matrix"
)

// randomLeaf builds a random leaf chain of 1..maxN states.
func randomLeaf(rng *rand.Rand, maxN int) *Hierarchy {
	n := rng.Intn(maxN) + 1
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := rng.Intn(n) + 1; k > 0; k-- {
			m.Set(i, rng.Intn(n), rng.Float64()+0.05)
		}
	}
	return &Hierarchy{M: m.NormalizeRows()}
}

// randomHierarchy builds a random tree of the given depth with a strictly
// positive root.
func randomHierarchy(rng *rand.Rand, depth int) *Hierarchy {
	if depth <= 1 {
		return randomLeaf(rng, 5)
	}
	k := rng.Intn(3) + 2
	m := matrix.NewDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			m.Set(i, j, rng.Float64()+1e-3)
		}
	}
	m.NormalizeRows()
	children := make([]*Hierarchy, k)
	for i := range children {
		children[i] = randomHierarchy(rng, depth-1)
	}
	return &Hierarchy{M: m, Children: children}
}

func TestHierarchyTwoLayerMatchesModel(t *testing.T) {
	// A depth-2 hierarchy built from the paper example must reproduce the
	// Layered Method exactly.
	m := PaperExample()
	h := &Hierarchy{
		M: m.Y,
		Children: []*Hierarchy{
			{M: m.U[0]}, {M: m.U[1]}, {M: m.U[2]},
		},
	}
	got, err := LayeredHierarchyRank(h, Config{})
	if err != nil {
		t.Fatalf("LayeredHierarchyRank: %v", err)
	}
	want, err := LayeredMethod(m, Config{})
	if err != nil {
		t.Fatalf("LayeredMethod: %v", err)
	}
	if got.L1Diff(want.Scores) > 1e-10 {
		t.Errorf("hierarchy %v\nvs model %v", got, want.Scores)
	}
}

func TestHierarchyValidate(t *testing.T) {
	leaf := &Hierarchy{M: matrix.FromRows([][]float64{{1}})}
	good := &Hierarchy{
		M:        matrix.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}}),
		Children: []*Hierarchy{leaf, leaf},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	bad := &Hierarchy{
		M:        matrix.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}}),
		Children: []*Hierarchy{leaf}, // count mismatch
	}
	if err := bad.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("err = %v, want ErrInvalidModel", err)
	}
	var nilH *Hierarchy
	if err := nilH.Validate(); !errors.Is(err, ErrInvalidModel) {
		t.Errorf("nil hierarchy: %v", err)
	}
}

func TestHierarchyDepthAndLeafCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomHierarchy(rng, 3)
	if h.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", h.Depth())
	}
	var count func(n *Hierarchy) int
	count = func(n *Hierarchy) int {
		if n.IsLeaf() {
			return n.M.Rows()
		}
		var t int
		for _, c := range n.Children {
			t += count(c)
		}
		return t
	}
	if got, want := h.NumLeafStates(), count(h); got != want {
		t.Errorf("NumLeafStates = %d, want %d", got, want)
	}
}

func TestLayeredHierarchyRankIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for depth := 1; depth <= 4; depth++ {
		h := randomHierarchy(rng, depth)
		pi, err := LayeredHierarchyRank(h, Config{})
		for depth == 1 && errors.Is(err, ErrNotPrimitive) {
			// A random chain may be periodic or reducible; only the root
			// requires primitivity, so draw another one.
			h = randomHierarchy(rng, depth)
			pi, err = LayeredHierarchyRank(h, Config{})
		}
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if len(pi) != h.NumLeafStates() {
			t.Errorf("depth %d: length %d vs %d leaves", depth, len(pi), h.NumLeafStates())
		}
		if !pi.IsDistribution(1e-8) {
			t.Errorf("depth %d: not a distribution (sum %g)", depth, pi.Sum())
		}
	}
}

// TestNestedPartitionTheorem verifies the multi-layer extension: the
// recursive composition is the stationary vector of the flattened global
// chain, for depth-3 hierarchies — Theorem 2 applied with subtree entry
// distributions in place of π^J_G.
func TestNestedPartitionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		h := randomHierarchy(rng, 3)
		w, err := FlattenGlobalMatrix(h, Config{})
		if err != nil {
			t.Fatalf("trial %d: flatten: %v", trial, err)
		}
		if !w.IsRowStochastic(1e-8) {
			t.Fatalf("trial %d: flattened W not stochastic", trial)
		}
		pi, err := LayeredHierarchyRank(h, Config{})
		if err != nil {
			t.Fatalf("trial %d: rank: %v", trial, err)
		}
		next := matrix.NewVector(len(pi))
		w.MulVecLeft(next, pi)
		if d := next.L1Diff(pi); d > 1e-9 {
			t.Errorf("trial %d: ‖πW − π‖₁ = %g", trial, d)
		}
	}
}

func TestFlattenLeafHierarchyFails(t *testing.T) {
	leaf := &Hierarchy{M: matrix.FromRows([][]float64{{1}})}
	if _, err := FlattenGlobalMatrix(leaf, Config{}); err == nil {
		t.Fatal("flattening a leaf should fail")
	}
}

func TestLeafOnlyHierarchyRank(t *testing.T) {
	// Depth-1: plain stationary distribution of the chain itself.
	h := &Hierarchy{M: matrix.FromRows([][]float64{{0.5, 0.5}, {1, 0}})}
	pi, err := LayeredHierarchyRank(h, Config{})
	if err != nil {
		t.Fatalf("LayeredHierarchyRank: %v", err)
	}
	if pi.L1Diff(matrix.Vector{2.0 / 3, 1.0 / 3}) > 1e-9 {
		t.Errorf("π = %v", pi)
	}
	periodic := &Hierarchy{M: matrix.FromRows([][]float64{{0, 1}, {1, 0}})}
	if _, err := LayeredHierarchyRank(periodic, Config{}); !errors.Is(err, ErrNotPrimitive) {
		t.Errorf("periodic leaf: err = %v, want ErrNotPrimitive", err)
	}
}

func TestHierarchyPersonalization(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	h := randomHierarchy(rng, 2)
	base, err := LayeredHierarchyRank(h, Config{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	// Personalize the first child's layer toward its first state.
	c0 := h.Children[0]
	v := matrix.NewVector(c0.M.Rows())
	v[0] = 1
	c0.V = v
	pers, err := LayeredHierarchyRank(h, Config{})
	if err != nil {
		t.Fatalf("personalized: %v", err)
	}
	if pers[0] <= base[0] {
		t.Errorf("personalization did not lift the first leaf: %g vs %g", pers[0], base[0])
	}
}
