package lmm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

// buildTwoSiteWeb builds a small web with two sites whose structure makes
// ranking expectations obvious: site a is heavily referenced by site b.
func buildTwoSiteWeb(t *testing.T) *graph.DocGraph {
	t.Helper()
	b := graph.NewBuilder()
	// Site a: hub home page and two children.
	b.AddLink("http://a.example/", "http://a.example/x")
	b.AddLink("http://a.example/", "http://a.example/y")
	b.AddLink("http://a.example/x", "http://a.example/")
	b.AddLink("http://a.example/y", "http://a.example/")
	// Site b: three pages, all pointing at site a's home.
	b.AddLink("http://b.example/", "http://b.example/p")
	b.AddLink("http://b.example/p", "http://b.example/q")
	b.AddLink("http://b.example/", "http://a.example/")
	b.AddLink("http://b.example/p", "http://a.example/")
	b.AddLink("http://b.example/q", "http://a.example/")
	dg := b.Build()
	if err := dg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return dg
}

func TestLayeredDocRankBasics(t *testing.T) {
	dg := buildTwoSiteWeb(t)
	res, err := LayeredDocRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	if !res.DocRank.IsDistribution(1e-8) {
		t.Errorf("DocRank sums to %g, want 1", res.DocRank.Sum())
	}
	if !res.SiteRank.IsDistribution(1e-8) {
		t.Errorf("SiteRank sums to %g", res.SiteRank.Sum())
	}
	if len(res.LocalRanks) != dg.NumSites() {
		t.Fatalf("LocalRanks count = %d", len(res.LocalRanks))
	}
	for s, lr := range res.LocalRanks {
		if !lr.IsDistribution(1e-8) {
			t.Errorf("local rank of site %d not a distribution: %v", s, lr)
		}
	}
	// Site a receives all inter-site links, so it must outrank site b.
	if res.SiteRank[0] <= res.SiteRank[1] {
		t.Errorf("SiteRank = %v, want site a on top", res.SiteRank)
	}
	// And a.example/ should be the global top document.
	home, _ := docIDByURL(dg, "http://a.example/")
	if res.DocRank.ArgMax() != int(home) {
		t.Errorf("top doc = %d, want %d (a.example home)", res.DocRank.ArgMax(), home)
	}
}

func TestLayeredDocRankCompositionIdentity(t *testing.T) {
	// DocRank(d) must equal SiteRank(site(d)) · LocalRank(d) exactly.
	dg := buildTwoSiteWeb(t)
	res, err := LayeredDocRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	for s := range dg.Sites {
		for i, d := range dg.Sites[s].Docs {
			want := res.SiteRank[s] * res.LocalRanks[s][i]
			if math.Abs(res.DocRank[d]-want) > 1e-12 {
				t.Errorf("doc %d: %g vs %g", d, res.DocRank[d], want)
			}
		}
	}
}

func TestLayeredDocRankSingleDocSites(t *testing.T) {
	b := graph.NewBuilder()
	b.AddLink("http://one.example/", "http://two.example/")
	b.AddLink("http://two.example/", "http://one.example/")
	dg := b.Build()
	res, err := LayeredDocRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	// Each site has one doc with local rank 1; DocRank = SiteRank.
	if res.DocRank.L1Diff(res.SiteRank) > 1e-12 {
		t.Errorf("DocRank %v vs SiteRank %v", res.DocRank, res.SiteRank)
	}
}

func TestLayeredDocRankEmptyGraph(t *testing.T) {
	dg := &graph.DocGraph{G: graph.NewDigraph(0)}
	if _, err := LayeredDocRank(dg, WebConfig{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestLayeredDocRankParallelismDeterministic(t *testing.T) {
	dg := randomWeb(rand.New(rand.NewSource(17)), 12, 100)
	a, err := LayeredDocRank(dg, WebConfig{Parallelism: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	b, err := LayeredDocRank(dg, WebConfig{Parallelism: 8})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if a.DocRank.L1Diff(b.DocRank) > 1e-12 {
		t.Errorf("parallel result differs from sequential: %g", a.DocRank.L1Diff(b.DocRank))
	}
}

func TestSitePersonalizationLiftsSite(t *testing.T) {
	dg := buildTwoSiteWeb(t)
	base, err := LayeredDocRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	pers := matrix.NewVector(dg.NumSites())
	pers[1] = 1 // teleport only to site b
	biased, err := LayeredDocRank(dg, WebConfig{SitePersonalization: pers})
	if err != nil {
		t.Fatalf("biased: %v", err)
	}
	if biased.SiteRank[1] <= base.SiteRank[1] {
		t.Errorf("site personalization did not lift site b: %g vs %g",
			biased.SiteRank[1], base.SiteRank[1])
	}
}

func TestDocPersonalizationLiftsDoc(t *testing.T) {
	dg := buildTwoSiteWeb(t)
	base, err := LayeredDocRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	// Bias site a's local layer toward its second document.
	target := dg.Sites[0].Docs[1]
	v := matrix.NewVector(dg.SiteSize(0))
	v[1] = 1
	biased, err := LayeredDocRank(dg, WebConfig{
		DocPersonalization: map[graph.SiteID]matrix.Vector{0: v},
	})
	if err != nil {
		t.Fatalf("biased: %v", err)
	}
	if biased.DocRank[target] <= base.DocRank[target] {
		t.Errorf("doc personalization did not lift doc %d", target)
	}
}

func TestGlobalPageRankBaseline(t *testing.T) {
	dg := buildTwoSiteWeb(t)
	res, err := GlobalPageRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	if !res.Scores.IsDistribution(1e-8) {
		t.Error("global PageRank not a distribution")
	}
	home, _ := docIDByURL(dg, "http://a.example/")
	if res.Scores.ArgMax() != int(home) {
		t.Errorf("flat PageRank top = %d, want %d", res.Scores.ArgMax(), home)
	}
}

func TestLocalDocRankStandalone(t *testing.T) {
	g := graph.NewDigraph(3)
	g.AddLink(0, 1)
	g.AddLink(1, 2)
	g.AddLink(2, 0)
	pi, iters, err := LocalDocRank(g, WebConfig{})
	if err != nil {
		t.Fatalf("LocalDocRank: %v", err)
	}
	if !pi.IsDistribution(1e-9) || iters == 0 {
		t.Errorf("pi = %v, iters = %d", pi, iters)
	}
	one, _, err := LocalDocRank(graph.NewDigraph(1), WebConfig{})
	if err != nil || len(one) != 1 || one[0] != 1 {
		t.Errorf("singleton site: %v, %v", one, err)
	}
	empty, _, err := LocalDocRank(graph.NewDigraph(0), WebConfig{})
	if err != nil || len(empty) != 0 {
		t.Errorf("empty site: %v, %v", empty, err)
	}
}

// randomWeb generates a random multi-site DocGraph for property tests.
func randomWeb(rng *rand.Rand, nSites, nDocs int) *graph.DocGraph {
	b := graph.NewBuilder()
	urls := make([]string, 0, nDocs)
	for d := 0; d < nDocs; d++ {
		site := rng.Intn(nSites)
		url := fmt.Sprintf("http://s%d.example/p%d", site, d)
		b.AddDocInSite(url, fmt.Sprintf("s%d.example", site))
		urls = append(urls, url)
	}
	for e := 0; e < nDocs*3; e++ {
		b.AddLink(urls[rng.Intn(len(urls))], urls[rng.Intn(len(urls))])
	}
	return b.Build()
}

func docIDByURL(dg *graph.DocGraph, url string) (graph.DocID, bool) {
	for d, doc := range dg.Docs {
		if doc.URL == url {
			return graph.DocID(d), true
		}
	}
	return 0, false
}

// Property: the layered DocRank is always a distribution and the
// composition identity holds on random webs.
func TestLayeredDocRankQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dg := randomWeb(rng, rng.Intn(6)+2, rng.Intn(40)+5)
		res, err := LayeredDocRank(dg, WebConfig{})
		if err != nil {
			return false
		}
		if !res.DocRank.IsDistribution(1e-7) {
			return false
		}
		for s := range dg.Sites {
			for i, d := range dg.Sites[s].Docs {
				if math.Abs(res.DocRank[d]-res.SiteRank[s]*res.LocalRanks[s][i]) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
