package lmm

import "lmmrank/internal/matrix"

// PaperExample returns the worked example of the paper's §2.3: three
// phases with 4, 3 and 5 sub-states, the phase matrix Y and sub-state
// matrices U1–U3 exactly as printed. With Config{Alpha: 0.85} it
// reproduces every published vector of Figure 2 and §2.3.2–2.3.3.
func PaperExample() *Model {
	y := matrix.FromRows([][]float64{
		{0.1, 0.3, 0.6},
		{0.2, 0.4, 0.4},
		{0.3, 0.5, 0.2},
	})
	u1 := matrix.FromRows([][]float64{
		{0.3, 0.3, 0.2, 0.2},
		{0.5, 0.1, 0.1, 0.3},
		{0.1, 0.2, 0.6, 0.1},
		{0.4, 0.3, 0.1, 0.2},
	})
	u2 := matrix.FromRows([][]float64{
		{0.2, 0.1, 0.7},
		{0.1, 0.8, 0.1},
		{0.05, 0.05, 0.9},
	})
	u3 := matrix.FromRows([][]float64{
		{0.6, 0.02, 0.2, 0.1, 0.08},
		{0.05, 0.2, 0.5, 0.05, 0.2},
		{0.4, 0.1, 0.2, 0.1, 0.2},
		{0.7, 0.1, 0.05, 0.1, 0.05},
		{0.5, 0.2, 0.1, 0.1, 0.1},
	})
	return &Model{Y: y, U: []*matrix.Dense{u1, u2, u3}}
}

// Published results of the paper for the example model (4 decimal places
// as printed). Exported for tests, benchmarks and the Figure 2 experiment.
var (
	// PaperPi1G, PaperPi2G, PaperPi3G are the local PageRank vectors of
	// §2.3.2.
	PaperPi1G = matrix.Vector{0.3054, 0.2312, 0.2582, 0.2052}
	PaperPi2G = matrix.Vector{0.1191, 0.2691, 0.6117}
	PaperPi3G = matrix.Vector{0.4557, 0.1038, 0.2014, 0.1106, 0.1285}

	// PaperPiY and PaperPiYTilde are the adjusted and direct phase-layer
	// distributions of §2.3.3.
	PaperPiY      = matrix.Vector{0.2315, 0.4015, 0.3670}
	PaperPiYTilde = matrix.Vector{0.2154, 0.4154, 0.3692}

	// PaperPiW and PaperPiWTilde are the Figure 2 global rankings
	// (Approach 1 and Approach 2 respectively), in global state order
	// (1,1)...(3,5).
	PaperPiW = matrix.Vector{
		0.0682, 0.0547, 0.0596, 0.0499,
		0.0545, 0.1073, 0.2281,
		0.1562, 0.0452, 0.0760, 0.0474, 0.0530,
	}
	PaperPiWTilde = matrix.Vector{
		0.0658, 0.0498, 0.0556, 0.0442,
		0.0495, 0.1118, 0.2541,
		0.1683, 0.0383, 0.0744, 0.0408, 0.0474,
	}

	// PaperOrder is the shared rank-position column of Figure 2: the
	// position of each global state under both πW and π̃W (identical in
	// the paper).
	PaperOrder = []int{5, 7, 6, 10, 8, 3, 1, 2, 12, 4, 11, 9}
)
