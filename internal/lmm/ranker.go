package lmm

import (
	"fmt"
	"runtime"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// RankerOptions fixes the graph-derivation choices a Ranker precomputes.
type RankerOptions struct {
	// SiteGraph controls SiteLink aggregation (§3.1). It is baked into
	// the precomputed structure — build a new Ranker to change it.
	SiteGraph graph.SiteGraphOptions
}

// rankerSite is the precomputed serving state of one site: its local
// subgraph, index, and a reusable PageRank solver. The solver (and the
// CSR transition matrix inside it) is built lazily on the first Rank —
// consumers of the structure alone, like the distributed coordinator
// shipping edge lists to workers, never pay for it. fixed is the
// constant local rank of 0/1-doc sites, which need no solver at all.
type rankerSite struct {
	sub    *graph.Digraph
	idx    *graph.LocalIndex
	solver *pagerank.Solver
	fixed  matrix.Vector
}

// Ranker is the serving-path form of the §3.2 pipeline: NewRanker
// derives the SiteGraph and every local subgraph G^s_d once (the first
// Rank adds the per-site transition matrices and solvers), then Rank
// answers repeated queries — uniform or personalized at either layer —
// with near-zero setup cost and no steady-state allocations beyond the
// returned WebResult header.
//
// That asymmetry is the point of the Layered Method: the expensive
// structure (CSR matrices, dangling lists, scratch vectors) depends only
// on the graph, while a query merely reruns small power iterations over
// it. Personalized rankings (§3.2's two-layer personalization) therefore
// cost the same as uniform ones.
//
// A Ranker is not safe for concurrent use: Rank reuses internal scratch.
// The vectors inside a returned WebResult alias that scratch and are
// valid only until the next Rank call on the same Ranker — clone them
// (or use the one-shot LayeredDocRank) to retain results.
//
// The Ranker captures dg by reference. Mutating the graph afterwards
// (adding documents, links or sites) invalidates the precomputed
// structure; build a new Ranker after any mutation.
type Ranker struct {
	dg    *graph.DocGraph
	sg    *graph.SiteGraph
	sites []rankerSite

	siteSolver *pagerank.Solver

	// Reusable result buffers, rewritten by every Rank.
	docRank    matrix.Vector
	localRanks []matrix.Vector
	localIters []int
	errs       []error
}

// NewRanker validates and precomputes the layered ranking structure of
// dg: the SiteGraph, its transition matrix and solver, and all local
// subgraphs (their CSR matrices and solvers follow on the first Rank,
// so structure-only consumers like the distributed coordinator skip
// that cost). The DocGraph's digraph is deduplicated up front, so the
// per-query phase never mutates shared graph state.
func NewRanker(dg *graph.DocGraph, opts RankerOptions) (*Ranker, error) {
	if err := dg.Validate(); err != nil {
		return nil, fmt.Errorf("lmm: ranker: %w", err)
	}
	if dg.NumDocs() == 0 {
		return nil, fmt.Errorf("lmm: ranker: empty graph")
	}
	dg.G.Dedupe()

	r := &Ranker{
		dg:    dg,
		sg:    graph.DeriveSiteGraph(dg, opts.SiteGraph),
		sites: make([]rankerSite, dg.NumSites()),
	}
	// Extraction fans out across sites: the graph was deduplicated
	// above, so every LocalSubgraph call reads shared state and writes
	// only its own r.sites slot.
	ForEachParallel(len(r.sites), 0, func(s int) {
		sub, idx := dg.LocalSubgraph(graph.SiteID(s))
		st := rankerSite{sub: sub, idx: idx}
		switch sub.NumNodes() {
		case 0:
			st.fixed = matrix.Vector{}
		case 1:
			// A single-document site trivially holds all local mass.
			st.fixed = matrix.Vector{1}
		}
		r.sites[s] = st
	})
	return r, nil
}

// DocGraph returns the graph this Ranker serves.
func (r *Ranker) DocGraph() *graph.DocGraph { return r.dg }

// SiteGraph returns the precomputed site-level aggregation.
func (r *Ranker) SiteGraph() *graph.SiteGraph { return r.sg }

// NumSites returns the number of sites.
func (r *Ranker) NumSites() int { return len(r.sites) }

// LocalSubgraph returns site s's precomputed subgraph and index. Callers
// must treat both as read-only.
func (r *Ranker) LocalSubgraph(s graph.SiteID) (*graph.Digraph, *graph.LocalIndex) {
	return r.sites[s].sub, r.sites[s].idx
}

// RankSites computes only the site layer πS = PageRank(Mˆ(G_S)) — the
// piece a distributed coordinator runs centrally while the fleet ranks
// documents. The returned vector aliases solver scratch (valid until the
// next RankSites/Rank call); the int is the power-iteration count.
func (r *Ranker) RankSites(cfg WebConfig) (matrix.Vector, int, error) {
	if r.siteSolver == nil {
		r.siteSolver = pagerank.NewSolver(r.sg.G.TransitionMatrix())
	}
	res, err := r.siteSolver.Solve(pagerank.Config{
		Damping:         cfg.Damping,
		Personalization: cfg.SitePersonalization,
		Tol:             cfg.Tol,
		MaxIter:         cfg.MaxIter,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("lmm: siterank: %w", err)
	}
	return res.Scores, res.Iterations, nil
}

// Rank executes the query phase of §3.2 against the precomputed
// structure: SiteRank, per-site local DocRanks (in parallel when
// cfg.Parallelism allows), and the Partition-Theorem composition.
// cfg.SiteGraph is ignored — that choice was fixed at NewRanker time.
//
// The returned WebResult's vectors alias the Ranker's internal buffers;
// see the type comment for the reuse contract.
func (r *Ranker) Rank(cfg WebConfig) (*WebResult, error) {
	// Query-phase state is built on first use, so structure-only
	// consumers (the distributed coordinator ships subgraphs to workers
	// and never ranks locally) don't pay for result buffers.
	if r.docRank == nil {
		r.docRank = matrix.NewVector(r.dg.NumDocs())
		r.localRanks = make([]matrix.Vector, len(r.sites))
		r.localIters = make([]int, len(r.sites))
		r.errs = make([]error, len(r.sites))
	}
	siteRank, siteIters, err := r.RankSites(cfg)
	if err != nil {
		return nil, err
	}

	// Local DocRanks: every site solver is independent, so the loop is
	// data-parallel; the single-worker case runs a plain loop — no
	// goroutines, no closure, no allocations.
	errs := r.errs
	for s := range errs {
		errs[s] = nil
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		for s := range r.sites {
			r.rankLocal(s, &cfg)
		}
	} else {
		// The closure must capture a block-local copy: capturing cfg
		// itself would force it onto the heap for the serial path too,
		// breaking the zero-allocation budget.
		c := cfg
		ForEachParallel(len(r.sites), workers, func(s int) {
			r.rankLocal(s, &c)
		})
	}
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lmm: local docrank of site %d (%s): %w",
				s, r.dg.Sites[s].Name, err)
		}
	}

	composeDocRankInto(r.docRank, r.dg, siteRank, r.localRanks)
	return &WebResult{
		DocRank:         r.docRank,
		SiteRank:        siteRank,
		LocalRanks:      r.localRanks,
		SiteIterations:  siteIters,
		LocalIterations: r.localIters,
	}, nil
}

// rankLocal solves one site's local DocRank into the Ranker's reusable
// buffers (step 3 of §3.2 for one site).
func (r *Ranker) rankLocal(s int, cfg *WebConfig) {
	st := &r.sites[s]
	if st.fixed != nil {
		r.localRanks[s] = st.fixed
		r.localIters[s] = 0
		return
	}
	if st.solver == nil {
		// First query builds the site's CSR and solver; each site is
		// owned by exactly one goroutine of the fan-out, and the
		// barrier at its end publishes the solver for later queries.
		st.solver = pagerank.NewSolver(st.sub.TransitionMatrix())
	}
	var pers matrix.Vector
	if cfg.DocPersonalization != nil {
		pers = cfg.DocPersonalization[graph.SiteID(s)]
	}
	res, err := st.solver.Solve(pagerank.Config{
		Damping:         cfg.Damping,
		Personalization: pers,
		Tol:             cfg.Tol,
		MaxIter:         cfg.MaxIter,
	})
	if err != nil {
		r.errs[s] = err
		return
	}
	r.localRanks[s] = res.Scores
	r.localIters[s] = res.Iterations
}
