package lmm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// ErrGraphMutated is returned by a Ranker whose DocGraph mutated after
// the structure was precomputed (detected via graph.Digraph.Version).
// The precomputed subgraphs, transition matrices and chains no longer
// describe the graph, so serving would silently return stale rankings;
// instead the query fails and the caller rebuilds — Rebuild for the
// incremental path that reuses unchanged sites, NewRanker for a cold
// rebuild, or Engine.Update at the serving layer. Check with errors.Is.
var ErrGraphMutated = errors.New("lmm: graph mutated after Ranker construction; Rebuild the Ranker (or Engine.Update) before ranking")

// RankerOptions fixes the graph-derivation choices a Ranker precomputes.
type RankerOptions struct {
	// SiteGraph controls SiteLink aggregation (§3.1). It is baked into
	// the precomputed structure — build a new Ranker to change it.
	SiteGraph graph.SiteGraphOptions
}

// rankerSite is the precomputed structure of one site: its local
// subgraph, index, and the shareable PageRank chain over it. The chain
// (and the CSR transition matrix inside it) is built lazily under a
// sync.Once on the first query that needs it — consumers of the
// structure alone, like the distributed coordinator shipping edge lists
// to workers, never pay for it, while concurrent Share()d rankers racing
// on a cold site build it exactly once. fixed is the constant local rank
// of 0/1-doc sites, which need no chain at all.
type rankerSite struct {
	sub   *graph.Digraph
	idx   *graph.LocalIndex
	fixed matrix.Vector

	once  sync.Once
	chain *pagerank.Chain
}

// getChain returns the site's shareable PageRank chain, building it on
// first use (TransitionMatrix mutates the subgraph's cache, so the build
// runs under the Once).
func (st *rankerSite) getChain() *pagerank.Chain {
	st.once.Do(func() { st.chain = pagerank.NewChain(st.sub.TransitionMatrix()) })
	return st.chain
}

// rankerCore is the shared half of a Ranker: everything derived from the
// graph alone, none of it query-specific. After Prepare (or the lazy
// sync.Once builds) the core is immutable, which is what lets any number
// of Share()d rankers serve queries over it concurrently. Sites are held
// by pointer so an incremental Rebuild can share unchanged sites'
// structure (subgraph, index, lazily built chain) between the old and
// the new core.
type rankerCore struct {
	dg    *graph.DocGraph
	opts  RankerOptions
	sg    *graph.SiteGraph
	sites []*rankerSite
	// version records dg.G.Version() at construction; a mismatch at query
	// time means the graph mutated under the precomputed structure.
	version uint64

	siteOnce  sync.Once
	siteChain *pagerank.Chain
}

// getSiteChain returns the site-layer chain M(G_S), building it once.
func (c *rankerCore) getSiteChain() *pagerank.Chain {
	c.siteOnce.Do(func() { c.siteChain = pagerank.NewChain(c.sg.G.TransitionMatrix()) })
	return c.siteChain
}

// Ranker is the serving-path form of the §3.2 pipeline: NewRanker
// derives the SiteGraph and every local subgraph G^s_d once (the first
// Rank adds the per-site transition matrices and solvers), then Rank
// answers repeated queries — uniform or personalized at either layer,
// two- or three-layer — with near-zero setup cost and no steady-state
// allocations beyond the returned WebResult header.
//
// That asymmetry is the point of the Layered Method: the expensive
// structure (CSR matrices, dangling lists, scratch vectors) depends only
// on the graph, while a query merely reruns small power iterations over
// it. Personalized rankings (§3.2's two-layer personalization) therefore
// cost the same as uniform ones.
//
// A Ranker value is not safe for concurrent use: Rank reuses internal
// scratch. Concurrent serving is still cheap — Share returns a new
// Ranker over the same precomputed structure with private scratch, so N
// goroutines hold N Rankers but pay the precomputation once (this is how
// the root package's LocalEngine serves without locking).
//
// The vectors inside a returned WebResult alias that scratch and are
// valid only until the next Rank call on the same Ranker — clone them
// (or use the one-shot LayeredDocRank) to retain results.
//
// The Ranker captures dg by reference. Mutating the graph afterwards
// (adding documents, links or sites) invalidates the precomputed
// structure; build a new Ranker after any mutation.
type Ranker struct {
	core *rankerCore

	// Query scratch, private to this Ranker value.
	siteSolver *pagerank.Solver
	solvers    []*pagerank.Solver

	// Reusable result buffers, rewritten by every Rank.
	docRank    matrix.Vector
	localRanks []matrix.Vector
	localIters []int
	errs       []error
}

// NewRanker validates and precomputes the layered ranking structure of
// dg: the SiteGraph, its transition matrix and solver, and all local
// subgraphs (their CSR matrices and solvers follow on the first Rank,
// so structure-only consumers like the distributed coordinator skip
// that cost). The DocGraph's digraph is deduplicated up front, so the
// per-query phase never mutates shared graph state.
func NewRanker(dg *graph.DocGraph, opts RankerOptions) (*Ranker, error) {
	if err := dg.Validate(); err != nil {
		return nil, fmt.Errorf("lmm: ranker: %w", err)
	}
	if dg.NumDocs() == 0 {
		return nil, fmt.Errorf("lmm: ranker: empty graph")
	}
	dg.G.Dedupe()

	core := &rankerCore{
		dg:      dg,
		opts:    opts,
		sg:      graph.DeriveSiteGraph(dg, opts.SiteGraph),
		sites:   make([]*rankerSite, dg.NumSites()),
		version: dg.G.Version(),
	}
	// Extraction fans out across sites: the graph was deduplicated
	// above, so every LocalSubgraph call reads shared state and writes
	// only its own core.sites slot.
	ForEachParallel(len(core.sites), 0, func(s int) {
		core.sites[s] = extractSite(dg, graph.SiteID(s))
	})
	return &Ranker{core: core}, nil
}

// extractSite builds one site's precomputed structure from the (already
// deduplicated) graph — the per-site body of NewRanker, shared with the
// incremental Rebuild.
func extractSite(dg *graph.DocGraph, s graph.SiteID) *rankerSite {
	sub, idx := dg.LocalSubgraph(s)
	st := &rankerSite{sub: sub, idx: idx}
	switch sub.NumNodes() {
	case 0:
		st.fixed = matrix.Vector{}
	case 1:
		// A single-document site trivially holds all local mass.
		st.fixed = matrix.Vector{1}
	}
	return st
}

// Share returns a new Ranker serving the same precomputed structure with
// fully private query scratch. Share is how concurrent serving works:
// the shared core (subgraphs, CSR matrices, dangling lists) is read-only
// at query time, while solvers, iteration buffers and result vectors
// belong to each shared Ranker alone — so goroutines holding distinct
// Share()d rankers may Rank concurrently without any locking.
//
// Call Prepare on one of the rankers first (or serve a warm-up query
// before going concurrent): it forces the lazily built shared pieces so
// the cold-start builds are not left to race (they are sync.Once-guarded
// and therefore safe either way, merely redundant).
func (r *Ranker) Share() *Ranker { return &Ranker{core: r.core} }

// Prepare eagerly builds every lazily constructed piece of the shared
// structure — the site-layer chain and each multi-document site's CSR
// transition matrix and PageRank chain — in parallel. After Prepare the
// core is immutable; queries only read it.
func (r *Ranker) Prepare() {
	c := r.core
	c.getSiteChain()
	ForEachParallel(len(c.sites), 0, func(s int) {
		st := c.sites[s]
		if st.fixed == nil {
			st.getChain()
		}
	})
}

// Stale reports whether the DocGraph's digraph mutated after this
// Ranker's structure was precomputed (its Version advanced). A stale
// Ranker's subgraphs, chains and shard digests no longer describe the
// graph; Rank/Rank3/RankSites refuse with ErrGraphMutated. Recover with
// Rebuild (reusing unchanged sites' structure) or a fresh NewRanker.
func (r *Ranker) Stale() bool { return r.core.dg.G.Version() != r.core.version }

// DocGraph returns the graph this Ranker serves.
func (r *Ranker) DocGraph() *graph.DocGraph { return r.core.dg }

// SiteGraph returns the precomputed site-level aggregation.
func (r *Ranker) SiteGraph() *graph.SiteGraph { return r.core.sg }

// NumSites returns the number of sites.
func (r *Ranker) NumSites() int { return len(r.core.sites) }

// LocalSubgraph returns site s's precomputed subgraph and index. Callers
// must treat both as read-only.
func (r *Ranker) LocalSubgraph(s graph.SiteID) (*graph.Digraph, *graph.LocalIndex) {
	return r.core.sites[s].sub, r.core.sites[s].idx
}

// RankSites computes only the site layer πS = PageRank(Mˆ(G_S)) — the
// piece a distributed coordinator runs centrally while the fleet ranks
// documents. The returned vector aliases solver scratch (valid until the
// next RankSites/Rank call); the int is the power-iteration count.
func (r *Ranker) RankSites(cfg WebConfig) (matrix.Vector, int, error) {
	if r.Stale() {
		return nil, 0, ErrGraphMutated
	}
	if r.siteSolver == nil {
		r.siteSolver = r.core.getSiteChain().NewSolver()
	}
	var start matrix.Vector
	if len(cfg.SiteStart) == len(r.core.sites) {
		start = cfg.SiteStart
	}
	res, err := r.siteSolver.Solve(pagerank.Config{
		Damping:         cfg.Damping,
		Personalization: cfg.SitePersonalization,
		Tol:             cfg.Tol,
		MaxIter:         cfg.MaxIter,
		Start:           start,
		Ctx:             cfg.Ctx,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("lmm: siterank: %w", err)
	}
	return res.Scores, res.Iterations, nil
}

// ensureQueryState lazily builds this Ranker's private result buffers,
// so structure-only consumers (the distributed coordinator ships
// subgraphs to workers and never ranks locally) don't pay for them.
func (r *Ranker) ensureQueryState() {
	if r.docRank != nil {
		return
	}
	r.docRank = matrix.NewVector(r.core.dg.NumDocs())
	r.solvers = make([]*pagerank.Solver, len(r.core.sites))
	r.localRanks = make([]matrix.Vector, len(r.core.sites))
	r.localIters = make([]int, len(r.core.sites))
	r.errs = make([]error, len(r.core.sites))
}

// Rank executes the query phase of §3.2 against the precomputed
// structure: SiteRank, per-site local DocRanks (in parallel when
// cfg.Parallelism allows), and the Partition-Theorem composition.
// cfg.SiteGraph is ignored — that choice was fixed at NewRanker time.
//
// The returned WebResult's vectors alias the Ranker's internal buffers;
// see the type comment for the reuse contract.
func (r *Ranker) Rank(cfg WebConfig) (*WebResult, error) {
	r.ensureQueryState()
	siteRank, siteIters, err := r.RankSites(cfg)
	if err != nil {
		return nil, err
	}
	if err := r.rankLocals(&cfg); err != nil {
		return nil, err
	}
	composeDocRankInto(r.docRank, r.core.dg, siteRank, r.localRanks)
	return &WebResult{
		DocRank:         r.docRank,
		SiteRank:        siteRank,
		LocalRanks:      r.localRanks,
		SiteIterations:  siteIters,
		LocalIterations: r.localIters,
	}, nil
}

// rankLocals runs every site's local DocRank into this Ranker's buffers.
// The loop is data-parallel — every site solver is independent — and the
// single-worker case runs a plain loop: no goroutines, no closure, no
// allocations.
func (r *Ranker) rankLocals(cfg *WebConfig) error {
	errs := r.errs
	for s := range errs {
		errs[s] = nil
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		for s := range r.core.sites {
			r.rankLocal(s, cfg)
		}
	} else {
		// The closure must capture a block-local copy: capturing cfg
		// itself would force it onto the heap for the serial path too,
		// breaking the zero-allocation budget.
		c := *cfg
		ForEachParallel(len(r.core.sites), workers, func(s int) {
			r.rankLocal(s, &c)
		})
	}
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("lmm: local docrank of site %d (%s): %w",
				s, r.core.dg.Sites[s].Name, err)
		}
	}
	return nil
}

// rankLocal solves one site's local DocRank into the Ranker's reusable
// buffers (step 3 of §3.2 for one site).
func (r *Ranker) rankLocal(s int, cfg *WebConfig) {
	st := r.core.sites[s]
	if st.fixed != nil {
		r.localRanks[s] = st.fixed
		r.localIters[s] = 0
		return
	}
	if r.solvers[s] == nil {
		// First query on this Ranker builds its private solver over the
		// shared chain; each site is owned by exactly one goroutine of
		// the fan-out, and the barrier at its end publishes the solver
		// for later queries.
		r.solvers[s] = st.getChain().NewSolver()
	}
	var pers matrix.Vector
	if cfg.DocPersonalization != nil {
		pers = cfg.DocPersonalization[graph.SiteID(s)]
	}
	var start matrix.Vector
	if s < len(cfg.LocalStarts) && len(cfg.LocalStarts[s]) == st.sub.NumNodes() {
		start = cfg.LocalStarts[s]
	}
	res, err := r.solvers[s].Solve(pagerank.Config{
		Damping:         cfg.Damping,
		Personalization: pers,
		Tol:             cfg.Tol,
		MaxIter:         cfg.MaxIter,
		Start:           start,
		Ctx:             cfg.Ctx,
	})
	if err != nil {
		r.errs[s] = err
		return
	}
	r.localRanks[s] = res.Scores
	r.localIters[s] = res.Iterations
}

// RankRefresh is the Update-path refresh solve: like Rank, but a site
// not listed in changed whose cfg.LocalStarts seed still matches its
// subgraph shape keeps that previous local solution *verbatim* (zero
// iterations) instead of re-polishing it. An untouched site's local
// layer is already converged — the Layered Method makes it independent
// of every other site — and carrying it bit-for-bit is what lets a
// serving snapshot's top-k index patch only dirty sites' posting lists.
// Changed sites (and any site without a shape-matching seed, including
// every site on a cold first refresh) solve exactly as in Rank,
// warm-started where the seed survived. The SiteRank always re-solves —
// any link change can shift it — warm-started from cfg.SiteStart.
//
// The reused local vectors alias cfg.LocalStarts, not this Ranker's
// scratch; the caller owns both sides (the Engine clones the result
// into its snapshot either way).
func (r *Ranker) RankRefresh(changed []graph.SiteID, cfg WebConfig) (*WebResult, error) {
	r.ensureQueryState()
	siteRank, siteIters, err := r.RankSites(cfg)
	if err != nil {
		return nil, err
	}
	changedSet := make(map[int]bool, len(changed))
	for _, s := range changed {
		changedSet[int(s)] = true
	}
	var pending []int
	for s, st := range r.core.sites {
		if st.fixed != nil {
			r.localRanks[s] = st.fixed
			r.localIters[s] = 0
			continue
		}
		if !changedSet[s] && s < len(cfg.LocalStarts) && len(cfg.LocalStarts[s]) == st.sub.NumNodes() {
			r.localRanks[s] = cfg.LocalStarts[s]
			r.localIters[s] = 0
			continue
		}
		pending = append(pending, s)
	}
	errs := r.errs
	for s := range errs {
		errs[s] = nil
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(pending) <= 1 {
		for _, s := range pending {
			r.rankLocal(s, &cfg)
		}
	} else {
		c := cfg
		ForEachParallel(len(pending), workers, func(i int) {
			r.rankLocal(pending[i], &c)
		})
	}
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("lmm: refresh docrank of site %d (%s): %w",
				s, r.core.dg.Sites[s].Name, err)
		}
	}
	composeDocRankInto(r.docRank, r.core.dg, siteRank, r.localRanks)
	return &WebResult{
		DocRank:         r.docRank,
		SiteRank:        siteRank,
		LocalRanks:      r.localRanks,
		SiteIterations:  siteIters,
		LocalIterations: r.localIters,
	}, nil
}

// Rank3 answers a three-layer (domain → site → page) query against the
// precomputed structure: the domain layer and per-domain site-entry
// distributions are computed fresh from the SiteGraph (they depend on
// the query's domainOf grouping), the local DocRanks reuse this Ranker's
// solvers and buffers exactly like Rank, and the composition follows the
// recursive Partition argument. domainOf nil selects DefaultDomainOf.
//
// The returned Web3Result's DocRank and LocalRanks alias the Ranker's
// scratch (same contract as Rank); the domain-layer vectors are freshly
// allocated. Three-layer queries therefore allocate per call — the small
// domain-layer graphs are rebuilt each time — but never mutate shared
// state, so Share()d rankers may serve them concurrently.
func (r *Ranker) Rank3(domainOf func(siteName string) string, cfg WebConfig) (*Web3Result, error) {
	if r.Stale() {
		return nil, ErrGraphMutated
	}
	// SiteStart is a two-layer seed (πS over sites). The three-layer
	// upper stack solves different chains — the domain layer and
	// per-domain site entries — whose dimensions can coincide with the
	// site count (every site its own domain), so a two-layer seed could
	// slip through a shape check and bias the wrong solve. Drop it here:
	// three-layer site-level warmth is not a supported hint. LocalStarts
	// stay — the document layer is identical in both models.
	cfg.SiteStart = nil
	tl, err := r.ThreeLayerWeights(domainOf, cfg)
	if err != nil {
		return nil, err
	}
	r.ensureQueryState()
	if err := r.rankLocals(&cfg); err != nil {
		return nil, fmt.Errorf("lmm: layered3: %w", err)
	}
	composeDocRankInto(r.docRank, r.core.dg, tl.SiteWeights, r.localRanks)
	return &Web3Result{
		DocRank:         r.docRank,
		Domains:         tl.Domains,
		DomainRank:      tl.DomainRank,
		DomainOfSite:    tl.DomainOfSite,
		SiteEntry:       tl.SiteEntry,
		SiteWeights:     tl.SiteWeights,
		LocalRanks:      r.localRanks,
		LocalIterations: r.localIters,
	}, nil
}
