package lmm

import (
	"fmt"

	"lmmrank/internal/markov"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// Config parameterizes the LMM rank computations.
type Config struct {
	// Alpha is both the gatekeeper parameter α of §2.3.2 and the damping
	// factor f of the PageRank sub-computations — the paper sets them
	// equal ("given the adjustable factor α, we actually take the
	// PageRank values of the local sub-states"). Zero selects 0.85.
	Alpha float64
	// Tol is the power-method L1 tolerance (0 = matrix.DefaultTol).
	Tol float64
	// MaxIter bounds each power-method run (0 = matrix.DefaultMaxIter).
	MaxIter int
}

func (c Config) alpha() float64 {
	if c.Alpha == 0 {
		return pagerank.DefaultDamping
	}
	return c.Alpha
}

func (c Config) pagerankConfig(personalization matrix.Vector) pagerank.Config {
	return pagerank.Config{
		Damping:         c.alpha(),
		Personalization: personalization,
		Tol:             c.Tol,
		MaxIter:         c.MaxIter,
	}
}

func (c Config) powerOptions() matrix.PowerOptions {
	return matrix.PowerOptions{Tol: c.Tol, MaxIter: c.MaxIter}
}

// LocalRanks computes the gatekeeper transition vectors π^I_G of every
// phase (§2.3.2): the local PageRank of U_I with damping α and
// personalization v^I_U. These are exactly the u^I_Gj values of eq. (3).
func LocalRanks(m *Model, cfg Config) ([]matrix.Vector, error) {
	out := make([]matrix.Vector, m.NumPhases())
	for i, u := range m.U {
		var v matrix.Vector
		if m.VU != nil {
			v = m.VU[i]
		}
		res, err := pagerank.Dense(u, cfg.pagerankConfig(v))
		if err != nil {
			return nil, fmt.Errorf("lmm: local rank of phase %d: %w", i, err)
		}
		out[i] = res.Scores
	}
	return out, nil
}

// GlobalMatrix assembles the global transition matrix W of eq. (3):
//
//	w_(I,i)(J,j) = y_IJ · π^J_G(j)
//
// Rows belonging to the same phase I are identical, as the paper observes,
// because the expression no longer depends on i.
func GlobalMatrix(m *Model, local []matrix.Vector) (*matrix.Dense, *Layout) {
	layout := m.Layout()
	n := layout.Total()
	w := matrix.NewDense(n, n)
	for pi := 0; pi < m.NumPhases(); pi++ {
		// Build the phase-I row template once, then copy to each
		// sub-state row.
		template := make([]float64, n)
		for pj := 0; pj < m.NumPhases(); pj++ {
			y := m.Y.At(pi, pj)
			base := layout.Index(State{Phase: pj, Sub: 0})
			for j, p := range local[pj] {
				template[base+j] = y * p
			}
		}
		for i := 0; i < layout.Size(pi); i++ {
			w.SetRow(layout.Index(State{Phase: pi, Sub: i}), template)
		}
	}
	return w, layout
}

// Approach1 is the first centralized approach of §2.3: assemble W, apply
// the maximal-irreducibility adjustment (standard PageRank) and take the
// principal eigenvector. Personalization at the global level uses the
// flattening of VY⊗VU when either is set.
func Approach1(m *Model, cfg Config) (*Ranking, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	local, err := LocalRanks(m, cfg)
	if err != nil {
		return nil, err
	}
	w, layout := GlobalMatrix(m, local)
	res, err := pagerank.Dense(w, cfg.pagerankConfig(globalPersonalization(m, layout)))
	if err != nil {
		return nil, fmt.Errorf("lmm: approach 1: %w", err)
	}
	return &Ranking{Scores: res.Scores, Layout: layout}, nil
}

// Approach2 is the second centralized approach of §2.3: because W is
// primitive whenever Y is (Lemma 2), its stationary distribution exists
// without any adjustment; the power method is applied to W directly. An
// error wrapping ErrNotPrimitive is returned when W fails the structural
// primitivity check — the paper's remedy is then Approach 1.
func Approach2(m *Model, cfg Config) (*Ranking, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	local, err := LocalRanks(m, cfg)
	if err != nil {
		return nil, err
	}
	w, layout := GlobalMatrix(m, local)
	if !matrix.IsPrimitive(w) {
		return nil, fmt.Errorf("%w: global matrix W (is Y primitive?)", ErrNotPrimitive)
	}
	res, err := matrix.PowerLeft(w, cfg.powerOptions())
	if err != nil {
		return nil, fmt.Errorf("lmm: approach 2: %w", err)
	}
	return &Ranking{Scores: res.Vector, Layout: layout}, nil
}

// Approach3 is the first decentralized approach of §2.3.3: compose the
// PageRank of Y (maximal irreducibility applied even if Y is primitive)
// with the local ranks: π(I,i) = πY(I)·π^I_G(i). The result is a valid
// probability distribution (Theorem 1) but differs from Approach 1/2 in
// absolute values, as the paper's worked example notes.
func Approach3(m *Model, cfg Config) (*Ranking, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	local, err := LocalRanks(m, cfg)
	if err != nil {
		return nil, err
	}
	resY, err := pagerank.Dense(m.Y, cfg.pagerankConfig(m.VY))
	if err != nil {
		return nil, fmt.Errorf("lmm: approach 3: site layer: %w", err)
	}
	return compose(m, resY.Scores, local), nil
}

// LayeredMethod is Approach 4, the paper's main algorithm (§2.3.3): the
// plain stationary distribution π̃Y of the primitive phase matrix composed
// with the local ranks:
//
//	π̃(I,i) = π̃Y(I)·π^I_G(i)
//
// By the Partition Theorem (Theorem 2) this equals the stationary
// distribution of W — i.e. exactly Approach 2 — while only ever solving
// one NP×NP system and NP local chains. An error wrapping ErrNotPrimitive
// is returned when Y is not primitive; Approach 3 (or 1) then applies.
func LayeredMethod(m *Model, cfg Config) (*Ranking, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if !matrix.IsPrimitive(m.Y) {
		return nil, fmt.Errorf("%w: phase matrix Y", ErrNotPrimitive)
	}
	local, err := LocalRanks(m, cfg)
	if err != nil {
		return nil, err
	}
	piY, err := markov.StationaryDense(m.Y, cfg.powerOptions())
	if err != nil {
		return nil, fmt.Errorf("lmm: layered method: site layer: %w", err)
	}
	return compose(m, piY, local), nil
}

// Approach4 is the paper's name for LayeredMethod.
func Approach4(m *Model, cfg Config) (*Ranking, error) { return LayeredMethod(m, cfg) }

// compose applies eq. (5): score(I,i) = phase(I)·local_I(i).
func compose(m *Model, phase matrix.Vector, local []matrix.Vector) *Ranking {
	layout := m.Layout()
	scores := matrix.NewVector(layout.Total())
	for pi := range local {
		base := layout.Index(State{Phase: pi, Sub: 0})
		for j, p := range local[pi] {
			scores[base+j] = phase[pi] * p
		}
	}
	return &Ranking{Scores: scores, Layout: layout}
}

// globalPersonalization flattens VY⊗VU into a teleport vector over global
// states, or returns nil (uniform) when neither layer is personalized.
func globalPersonalization(m *Model, layout *Layout) matrix.Vector {
	if m.VY == nil && m.VU == nil {
		return nil
	}
	v := matrix.NewVector(layout.Total())
	for pi := 0; pi < m.NumPhases(); pi++ {
		py := 1.0 / float64(m.NumPhases())
		if m.VY != nil {
			py = m.VY[pi]
		}
		n := layout.Size(pi)
		base := layout.Index(State{Phase: pi, Sub: 0})
		var vu matrix.Vector
		if m.VU != nil {
			vu = m.VU[pi]
		}
		for j := 0; j < n; j++ {
			pu := 1.0 / float64(n)
			if vu != nil {
				pu = vu[j]
			}
			v[base+j] = py * pu
		}
	}
	return v.Normalize()
}

// All bundles the four approaches computed from one shared set of local
// ranks, plus the assembled W — the complete Figure 2 computation.
type All struct {
	Layout *Layout
	// Local holds π^I_G per phase.
	Local []matrix.Vector
	// W is the global transition matrix of eq. (3).
	W *matrix.Dense
	// PiY and PiYTilde are the adjusted and direct phase-layer
	// distributions (πY and π̃Y of §2.3.3).
	PiY, PiYTilde matrix.Vector
	// A1, A2, A3, A4 are the four rankings; A2 is nil when W is not
	// primitive, A4 nil when Y is not primitive.
	A1, A2, A3, A4 *Ranking
}

// ComputeAll runs every approach on the model, sharing the local-rank
// computation, and returns the full bundle. Non-primitivity of Y/W makes
// the corresponding rankings nil rather than failing the bundle.
func ComputeAll(m *Model, cfg Config) (*All, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	local, err := LocalRanks(m, cfg)
	if err != nil {
		return nil, err
	}
	w, layout := GlobalMatrix(m, local)
	out := &All{Layout: layout, Local: local, W: w}

	resY, err := pagerank.Dense(m.Y, cfg.pagerankConfig(m.VY))
	if err != nil {
		return nil, fmt.Errorf("lmm: πY: %w", err)
	}
	out.PiY = resY.Scores
	out.A3 = compose(m, out.PiY, local)

	res1, err := pagerank.Dense(w, cfg.pagerankConfig(globalPersonalization(m, layout)))
	if err != nil {
		return nil, fmt.Errorf("lmm: approach 1: %w", err)
	}
	out.A1 = &Ranking{Scores: res1.Scores, Layout: layout}

	if matrix.IsPrimitive(w) {
		res2, err := matrix.PowerLeft(w, cfg.powerOptions())
		if err != nil {
			return nil, fmt.Errorf("lmm: approach 2: %w", err)
		}
		out.A2 = &Ranking{Scores: res2.Vector, Layout: layout}
	}
	if matrix.IsPrimitive(m.Y) {
		piYT, err := markov.StationaryDense(m.Y, cfg.powerOptions())
		if err != nil {
			return nil, fmt.Errorf("lmm: π̃Y: %w", err)
		}
		out.PiYTilde = piYT
		out.A4 = compose(m, piYT, local)
	}
	return out, nil
}

// PartitionGap quantifies Theorem 2 on a concrete model: the L1 distance
// between the centralized Approach 2 and the decentralized Layered Method.
// A correct implementation returns a gap at the level of the convergence
// tolerance.
func PartitionGap(m *Model, cfg Config) (float64, error) {
	a2, err := Approach2(m, cfg)
	if err != nil {
		return 0, err
	}
	a4, err := LayeredMethod(m, cfg)
	if err != nil {
		return 0, err
	}
	return a2.Scores.L1Diff(a4.Scores), nil
}
