package pagerank

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

// paperU1..U3 are the sub-state matrices of the paper's §2.3 example with
// their published local PageRank vectors (α = f = 0.85).
func paperU1() *matrix.Dense {
	return matrix.FromRows([][]float64{
		{0.3, 0.3, 0.2, 0.2},
		{0.5, 0.1, 0.1, 0.3},
		{0.1, 0.2, 0.6, 0.1},
		{0.4, 0.3, 0.1, 0.2},
	})
}

func paperU2() *matrix.Dense {
	return matrix.FromRows([][]float64{
		{0.2, 0.1, 0.7},
		{0.1, 0.8, 0.1},
		{0.05, 0.05, 0.9},
	})
}

func paperU3() *matrix.Dense {
	return matrix.FromRows([][]float64{
		{0.6, 0.02, 0.2, 0.1, 0.08},
		{0.05, 0.2, 0.5, 0.05, 0.2},
		{0.4, 0.1, 0.2, 0.1, 0.2},
		{0.7, 0.1, 0.05, 0.1, 0.05},
		{0.5, 0.2, 0.1, 0.1, 0.1},
	})
}

func TestDenseReproducesPaperLocalRanks(t *testing.T) {
	tests := []struct {
		name string
		u    *matrix.Dense
		want matrix.Vector
	}{
		{"π1G", paperU1(), matrix.Vector{0.3054, 0.2312, 0.2582, 0.2052}},
		{"π2G", paperU2(), matrix.Vector{0.1191, 0.2691, 0.6117}},
		{"π3G", paperU3(), matrix.Vector{0.4557, 0.1038, 0.2014, 0.1106, 0.1285}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Dense(tt.u, Config{})
			if err != nil {
				t.Fatalf("Dense: %v", err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			if res.Scores.L1Diff(tt.want) > 5e-4 {
				t.Errorf("scores = %v, want ≈ %v (paper)", res.Scores, tt.want)
			}
		})
	}
}

func TestDenseReproducesPaperSiteRank(t *testing.T) {
	// §2.3.3 Approach 3: πY = (0.2315, 0.4015, 0.3670).
	y := matrix.FromRows([][]float64{
		{0.1, 0.3, 0.6},
		{0.2, 0.4, 0.4},
		{0.3, 0.5, 0.2},
	})
	res, err := Dense(y, Config{})
	if err != nil {
		t.Fatalf("Dense: %v", err)
	}
	want := matrix.Vector{0.2315, 0.4015, 0.3670}
	if res.Scores.L1Diff(want) > 5e-4 {
		t.Errorf("πY = %v, want ≈ %v", res.Scores, want)
	}
}

func TestSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	var triples []matrix.Triple
	for i := 0; i < n; i++ {
		if i%7 == 3 {
			continue // leave some dangling rows
		}
		deg := rng.Intn(4) + 1
		for k := 0; k < deg; k++ {
			triples = append(triples, matrix.Triple{Row: i, Col: rng.Intn(n), Val: 1})
		}
	}
	sp := matrix.NewCSR(n, triples).NormalizeRows()
	dn := sp.Dense()

	a, err := Sparse(sp, Config{})
	if err != nil {
		t.Fatalf("Sparse: %v", err)
	}
	b, err := Dense(dn, Config{})
	if err != nil {
		t.Fatalf("Dense: %v", err)
	}
	if a.Scores.L1Diff(b.Scores) > 1e-8 {
		t.Errorf("sparse %v vs dense %v", a.Scores, b.Scores)
	}
}

func TestGraphPageRankFavorsHighInDegree(t *testing.T) {
	// Star: everyone links to node 0; node 0 links to node 1.
	g := graph.NewDigraph(5)
	for i := 1; i < 5; i++ {
		g.AddLink(i, 0)
	}
	g.AddLink(0, 1)
	res, err := Graph(g, Config{})
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if res.Scores.ArgMax() != 0 {
		t.Errorf("hub should rank first: %v", res.Scores)
	}
	if res.Scores[1] <= res.Scores[2] {
		t.Errorf("node 1 (linked from hub) should outrank leaf: %v", res.Scores)
	}
}

func TestDanglingNodesHandled(t *testing.T) {
	// 0 → 1, 1 dangling. Scores must still form a distribution and give 1
	// more mass than 0 (it receives 0's link plus teleport).
	g := graph.NewDigraph(2)
	g.AddLink(0, 1)
	res, err := Graph(g, Config{})
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	if !res.Scores.IsDistribution(1e-9) {
		t.Errorf("scores not a distribution: %v", res.Scores)
	}
	if res.Scores[1] <= res.Scores[0] {
		t.Errorf("dangling target should outrank source: %v", res.Scores)
	}
}

func TestPersonalizationBiasesScores(t *testing.T) {
	// Symmetric 2-cycle: uniform teleport gives (.5,.5); biasing the
	// teleport toward node 0 must raise its score.
	m := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	biased, err := Dense(m, Config{Personalization: matrix.Vector{0.9, 0.1}})
	if err != nil {
		t.Fatalf("Dense: %v", err)
	}
	if biased.Scores[0] <= 0.5 {
		t.Errorf("personalized score = %v, want node 0 above 0.5", biased.Scores)
	}
}

func TestMinimalEquivalentToDense(t *testing.T) {
	u := paperU2()
	a, err := Dense(u, Config{})
	if err != nil {
		t.Fatalf("Dense: %v", err)
	}
	b, err := Minimal(u, Config{})
	if err != nil {
		t.Fatalf("Minimal: %v", err)
	}
	if a.Scores.L1Diff(b.Scores) > 1e-8 {
		t.Errorf("maximal %v vs minimal %v", a.Scores, b.Scores)
	}
}

func TestConfigValidation(t *testing.T) {
	m := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	tests := []struct {
		name string
		cfg  Config
	}{
		{"damping 1", Config{Damping: 1}},
		{"damping negative", Config{Damping: -0.5}},
		{"personalization length", Config{Personalization: matrix.Vector{1}}},
		{"personalization negative", Config{Personalization: matrix.Vector{1.5, -0.5}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Dense(m, tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestStartVectorAcceleratesConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	var triples []matrix.Triple
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			triples = append(triples, matrix.Triple{Row: i, Col: rng.Intn(n), Val: 1})
		}
	}
	sp := matrix.NewCSR(n, triples).NormalizeRows()
	cold, err := Sparse(sp, Config{})
	if err != nil {
		t.Fatalf("Sparse: %v", err)
	}
	warm, err := Sparse(sp, Config{Start: cold.Scores})
	if err != nil {
		t.Fatalf("Sparse warm: %v", err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d iterations vs cold %d", warm.Iterations, cold.Iterations)
	}
	if warm.Scores.L1Diff(cold.Scores) > 1e-8 {
		t.Errorf("warm and cold results differ")
	}
}

// Property: PageRank always yields a probability distribution whose
// minimum is at least the teleport floor (1−f)·min(v) > 0.
func TestScoresDistributionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		g := graph.NewDigraph(n)
		for e := rng.Intn(4 * n); e > 0; e-- {
			g.AddLink(rng.Intn(n), rng.Intn(n))
		}
		res, err := Graph(g, Config{})
		if err != nil || !res.Scores.IsDistribution(1e-8) {
			return false
		}
		floor := 0.15 / float64(n)
		for _, s := range res.Scores {
			if s < floor-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Minimal and Dense agree on random chains with random damping —
// the Langville–Meyer equivalence at the API level.
func TestMinimalMaximalEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		m := matrix.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.Float64())
			}
		}
		m.NormalizeRows()
		cfg := Config{Damping: 0.3 + 0.6*rng.Float64()}
		a, errA := Dense(m, cfg)
		b, errB := Minimal(m, cfg)
		if errA != nil || errB != nil {
			return false
		}
		return a.Scores.L1Diff(b.Scores) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: total PageRank mass lost by damping is redistributed — the sum
// of score differences between two damping factors is ~0 (both normalize).
func TestDampingSweepStillDistribution(t *testing.T) {
	m := paperU3()
	for _, f := range []float64{0.5, 0.7, 0.85, 0.99} {
		res, err := Dense(m, Config{Damping: f})
		if err != nil {
			t.Fatalf("f=%g: %v", f, err)
		}
		if !res.Scores.IsDistribution(1e-9) {
			t.Errorf("f=%g: not a distribution", f)
		}
		if math.Abs(res.Scores.Sum()-1) > 1e-9 {
			t.Errorf("f=%g: sum %g", f, res.Scores.Sum())
		}
	}
}
