// Package pagerank implements the classical PageRank algorithm the paper
// uses both as its baseline (Figure 3) and as the DocRank/SiteRank building
// block of the Layered Method (§3.2): the maximal-irreducibility adjustment
// Mˆ = f·M + (1−f)·e·v' of eq. (1), with the standard dangling-node
// convention, personalized teleport vectors, and a sparse operator form
// that never materializes Mˆ.
package pagerank

import (
	"context"
	"errors"
	"fmt"

	"lmmrank/internal/graph"
	"lmmrank/internal/markov"
	"lmmrank/internal/matrix"
)

// DefaultDamping is the damping factor f of eq. (1). The worked example of
// the paper's §2.3 reproduces exactly with 0.85, the value PageRank's
// authors recommend.
const DefaultDamping = 0.85

// ErrBadConfig is returned (wrapped) for invalid configuration values.
var ErrBadConfig = errors.New("pagerank: invalid configuration")

// Config parameterizes a PageRank computation. The zero value selects the
// standard setup: f = 0.85, uniform personalization, tolerance and
// iteration budget from package matrix.
type Config struct {
	// Damping is the probability f of following a link rather than
	// teleporting. Zero is a sentinel selecting DefaultDamping (0.85) —
	// an explicit damping of exactly 0 cannot be requested, while tiny
	// positive values are honored. Must otherwise lie in (0, 1).
	Damping float64
	// Personalization is the teleport distribution v; nil selects uniform.
	// It is the hook for personalized rankings (§2.1: "personalization of
	// rankings can be obtained by replacing e' with a personalized
	// distribution vector").
	Personalization matrix.Vector
	// Tol is the L1 convergence threshold (0 = matrix.DefaultTol).
	Tol float64
	// MaxIter bounds power iterations (0 = matrix.DefaultMaxIter).
	MaxIter int
	// Start optionally seeds the iteration, e.g. with a previous ranking
	// for incremental recomputation.
	Start matrix.Vector
	// Ctx, when non-nil, cancels the power iteration cooperatively: a
	// cancelled or expired context aborts mid-run and the context's error
	// is returned (wrapped). A nil Ctx never cancels.
	Ctx context.Context
}

func (c Config) damping() float64 {
	if c.Damping == 0 {
		return DefaultDamping
	}
	return c.Damping
}

func (c Config) validate(n int) error {
	f := c.damping()
	if f <= 0 || f >= 1 {
		return fmt.Errorf("%w: damping %g outside (0,1)", ErrBadConfig, f)
	}
	if c.Personalization != nil {
		if len(c.Personalization) != n {
			return fmt.Errorf("%w: personalization length %d vs order %d",
				ErrBadConfig, len(c.Personalization), n)
		}
		if !c.Personalization.IsDistribution(1e-6) {
			return fmt.Errorf("%w: personalization is not a probability distribution", ErrBadConfig)
		}
	}
	return nil
}

func (c Config) teleport(n int) matrix.Vector {
	if c.Personalization == nil {
		return matrix.Uniform(n)
	}
	return c.Personalization.Clone().Normalize()
}

func (c Config) powerOptions() matrix.PowerOptions {
	return matrix.PowerOptions{Tol: c.Tol, MaxIter: c.MaxIter, Start: c.Start, Ctx: c.Ctx}
}

// Result is the outcome of a PageRank computation.
type Result struct {
	// Scores is the PageRank vector, a probability distribution. When
	// the Result comes from Solver.Solve, Scores aliases the solver's
	// scratch and is valid only until the next Solve on that solver;
	// clone to retain. One-shot entry points (Dense, Sparse, Graph)
	// return freshly allocated vectors.
	Scores matrix.Vector
	// Iterations is the number of power steps performed.
	Iterations int
	// Converged reports whether the tolerance was met within the budget.
	Converged bool
	// Residual is the final L1 change between iterates.
	Residual float64
}

// Dense computes PageRank of a small dense transition matrix by explicitly
// building Mˆ (eq. 1) and running the power method. Dangling rows are
// replaced by the teleport vector first. Intended for the worked example
// and unit tests; use Sparse or Graph for web-scale inputs.
func Dense(m *matrix.Dense, cfg Config) (Result, error) {
	n := m.Order()
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	mhat := markov.MaximalIrreducible(m, cfg.damping(), cfg.teleport(n))
	res, err := matrix.PowerLeft(mhat, cfg.powerOptions())
	if err != nil {
		return Result{}, fmt.Errorf("pagerank: %w", err)
	}
	return Result{
		Scores:     res.Vector,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Residual:   res.Residual,
	}, nil
}

// Operator is the matrix-free damped chain used by Sparse: it applies
//
//	y' = f·x'M + (f·Σ_{i dangling} x_i + (1−f))·v'
//
// which equals left-multiplication by Mˆ with dangling rows replaced by v,
// without materializing the dense rank-one terms.
//
// The apply is fully fused: one pass over x accumulates both its total
// mass and the dangling mass (the dangling list is ascending, so a
// two-pointer walk folds the two sums together), and the pull-based SpMV
// writes f·(x'M)[j] + coeff·v[j] directly — no separate Scale/AddScaled
// sweeps. Implementing matrix.FusedLeftMultiplier, it also hands the
// iterate sum to the power method for single-pass normalization.
type Operator struct {
	m        *matrix.CSR
	f        float64
	v        matrix.Vector
	dangling []int
}

var _ matrix.LeftMultiplier = (*Operator)(nil)
var _ matrix.FusedLeftMultiplier = (*Operator)(nil)

// NewOperator builds the damped operator for a row-normalized sparse
// chain. Rows of m must each sum to 1 or 0 (dangling).
func NewOperator(m *matrix.CSR, f float64, v matrix.Vector) (*Operator, error) {
	n := m.Order()
	if f <= 0 || f >= 1 {
		return nil, fmt.Errorf("%w: damping %g outside (0,1)", ErrBadConfig, f)
	}
	if v == nil {
		v = matrix.Uniform(n)
	}
	if len(v) != n {
		return nil, fmt.Errorf("%w: teleport length %d vs order %d", ErrBadConfig, len(v), n)
	}
	return &Operator{m: m, f: f, v: v, dangling: m.DanglingRows()}, nil
}

// Order implements matrix.LeftMultiplier.
func (o *Operator) Order() int { return o.m.Order() }

// MulVecLeft implements matrix.LeftMultiplier.
func (o *Operator) MulVecLeft(dst, x matrix.Vector) {
	o.MulVecLeftFused(dst, x)
}

// MulVecLeftFused implements matrix.FusedLeftMultiplier: the damped
// apply in a single SpMV sweep, returning the sum of dst.
func (o *Operator) MulVecLeftFused(dst, x matrix.Vector) float64 {
	// One pass over x: total mass and dangling mass together. The
	// dangling indices are ascending, so a cursor into them advances in
	// lockstep with the x scan.
	var xsum, dangMass float64
	di := 0
	for i, xi := range x {
		xsum += xi
		if di < len(o.dangling) && o.dangling[di] == i {
			dangMass += xi
			di++
		}
	}
	// Total teleport coefficient: damped dangling mass plus the global
	// (1−f) jump, scaled by the mass of x (which the power method keeps
	// at 1; using the full sum keeps the operator exact for any input).
	coeff := o.f*dangMass + (1-o.f)*xsum
	return o.m.MulVecLeftDamped(dst, x, o.f, coeff, o.v)
}

// Sparse computes PageRank of a sparse row-normalized transition matrix
// using the matrix-free operator.
func Sparse(m *matrix.CSR, cfg Config) (Result, error) {
	n := m.Order()
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	op, err := NewOperator(m, cfg.damping(), cfg.teleport(n))
	if err != nil {
		return Result{}, err
	}
	res, err := matrix.PowerLeft(op, cfg.powerOptions())
	if err != nil {
		return Result{}, fmt.Errorf("pagerank: %w", err)
	}
	return Result{
		Scores:     res.Vector,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Residual:   res.Residual,
	}, nil
}

// Chain is the immutable, shareable half of a Solver: the row-normalized
// transition matrix, its dangling-row list and the uniform teleport
// vector. One Chain can back any number of Solvers concurrently — it is
// read-only after construction — so a serving engine precomputes one
// Chain per graph and hands each goroutine its own cheap Solver over it.
type Chain struct {
	m        *matrix.CSR
	dangling []int
	uniform  matrix.Vector
}

// NewChain precomputes the shareable PageRank state of the
// row-normalized chain m. The matrix is captured by reference and must
// not change while the chain is in use.
func NewChain(m *matrix.CSR) *Chain {
	return &Chain{m: m, dangling: m.DanglingRows(), uniform: matrix.Uniform(m.Order())}
}

// Order returns the chain dimension.
func (c *Chain) Order() int { return c.m.Order() }

// NewSolver returns a fresh Solver over this chain: private teleport
// buffer and power scratch, shared read-only matrix and dangling list.
func (c *Chain) NewSolver() *Solver {
	return &Solver{
		chain:    c,
		op:       Operator{m: c.m, dangling: c.dangling},
		teleport: matrix.NewVector(c.m.Order()),
	}
}

// Solver runs repeated PageRank computations over one fixed chain with
// zero steady-state allocations: the dangling-row list, the uniform
// teleport, the personalization buffer and the power-method scratch are
// all built once at construction and reused by every Solve. It is the
// per-site building block of lmm.Ranker.
//
// A Solver is not safe for concurrent use, and the Scores of a returned
// Result alias its scratch: they are valid only until the next Solve.
// Clone them to retain a result across calls. Solvers sharing one Chain
// may run concurrently — only the Chain is shared, never the scratch.
type Solver struct {
	chain    *Chain
	op       Operator
	teleport matrix.Vector
	scratch  matrix.PowerScratch
}

// NewSolver precomputes the reusable state for PageRank runs over the
// row-normalized chain m. The matrix is captured by reference and must
// not change while the solver is in use. Callers wanting several solvers
// over the same matrix should build one Chain and call Chain.NewSolver.
func NewSolver(m *matrix.CSR) *Solver {
	return NewChain(m).NewSolver()
}

// Order returns the chain dimension.
func (s *Solver) Order() int { return s.op.m.Order() }

// Solve computes PageRank with the given configuration, reusing all
// internal buffers. Result.Scores aliases solver scratch — see the type
// comment.
func (s *Solver) Solve(cfg Config) (Result, error) {
	n := s.op.m.Order()
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	s.op.f = cfg.damping()
	if cfg.Personalization == nil {
		s.op.v = s.chain.uniform
	} else {
		copy(s.teleport, cfg.Personalization)
		s.teleport.Normalize()
		s.op.v = s.teleport
	}
	res, err := matrix.PowerLeft(&s.op, matrix.PowerOptions{
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
		Start:   cfg.Start,
		Scratch: &s.scratch,
		Ctx:     cfg.Ctx,
	})
	if err != nil {
		return Result{}, fmt.Errorf("pagerank: %w", err)
	}
	return Result{
		Scores:     res.Vector,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Residual:   res.Residual,
	}, nil
}

// Graph computes PageRank of a directed graph: the random-surfer transition
// matrix M(G) is derived from edge weights, then Sparse is applied. This is
// the paper's DocRank(Mˆ(G)) with the classical algorithm.
func Graph(g *graph.Digraph, cfg Config) (Result, error) {
	return Sparse(g.TransitionMatrix(), cfg)
}

// Minimal computes the same ranking through the minimal-irreducibility
// gatekeeper construction of §2.3.2 instead of eq. (1): the power method
// runs on the (n+1)-state Uˆ, the gatekeeper entry is dropped and the rest
// renormalized. Exposed because the Layered Method is specified in these
// terms; by the Langville–Meyer equivalence the scores match Dense.
func Minimal(m *matrix.Dense, cfg Config) (Result, error) {
	n := m.Order()
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	pi, err := markov.GatekeeperStationary(m, cfg.damping(), cfg.teleport(n), cfg.powerOptions())
	if err != nil {
		return Result{}, fmt.Errorf("pagerank: %w", err)
	}
	return Result{Scores: pi, Converged: true}, nil
}
