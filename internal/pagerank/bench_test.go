package pagerank

import (
	"fmt"
	"math/rand"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

func benchGraph(n, degree int, seed int64) *graph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDigraph(n)
	for i := 0; i < n; i++ {
		if i%17 == 3 {
			continue // leave dangling nodes, as real webs have
		}
		for k := 0; k < degree; k++ {
			g.AddLink(i, rng.Intn(n))
		}
	}
	return g
}

func BenchmarkSparsePageRank(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := benchGraph(n, 8, 1).TransitionMatrix()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Sparse(m, Config{Tol: 1e-9}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDensePageRank(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			m := matrix.NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, rng.Float64())
				}
			}
			m.NormalizeRows()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Dense(m, Config{Tol: 1e-9}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPersonalizedVsUniform(b *testing.B) {
	n := 10000
	m := benchGraph(n, 8, 3).TransitionMatrix()
	pers := matrix.Uniform(n)
	pers[0] = 0.5
	pers.Normalize()
	b.Run("uniform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Sparse(m, Config{Tol: 1e-9}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("personalized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Sparse(m, Config{Tol: 1e-9, Personalization: pers}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMinimalIrreducibility(b *testing.B) {
	u := paperU3()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Minimal(u, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
