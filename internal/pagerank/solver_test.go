package pagerank

import (
	"errors"
	"math/rand"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

func randomChainGraph(rng *rand.Rand, n int) *graph.Digraph {
	g := graph.NewDigraph(n)
	for i := 0; i < n; i++ {
		deg := rng.Intn(4) // zero-degree nodes exercise dangling handling
		for d := 0; d < deg; d++ {
			g.AddLink(i, rng.Intn(n))
		}
	}
	return g
}

func TestSolverMatchesSparseBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 15; trial++ {
		g := randomChainGraph(rng, rng.Intn(50)+2)
		m := g.TransitionMatrix()
		s := NewSolver(m)
		for _, cfg := range []Config{
			{},
			{Damping: 0.6},
			{Tol: 1e-8},
		} {
			want, err1 := Sparse(m, cfg)
			got, err2 := s.Solve(cfg)
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: errs %v / %v", trial, err1, err2)
			}
			if got.Iterations != want.Iterations {
				t.Fatalf("trial %d: iterations %d vs %d", trial, got.Iterations, want.Iterations)
			}
			for i := range got.Scores {
				if got.Scores[i] != want.Scores[i] {
					t.Fatalf("trial %d: π[%d] = %g, Sparse %g", trial, i, got.Scores[i], want.Scores[i])
				}
			}
		}
	}
}

func TestSolverPersonalizationMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := randomChainGraph(rng, 30)
	m := g.TransitionMatrix()
	s := NewSolver(m)
	pers := matrix.NewVector(30)
	for i := range pers {
		pers[i] = rng.Float64() + 0.01
	}
	pers.Normalize()
	cfg := Config{Personalization: pers}
	want, err1 := Sparse(m, cfg)
	got, err2 := s.Solve(cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v / %v", err1, err2)
	}
	if got.Scores.L1Diff(want.Scores) != 0 {
		t.Errorf("personalized solve differs by %g", got.Scores.L1Diff(want.Scores))
	}
	// Switching back to uniform must not leak the previous teleport.
	gotU, err := s.Solve(Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantU, _ := Sparse(m, Config{})
	if gotU.Scores.L1Diff(wantU.Scores) != 0 {
		t.Error("uniform solve after personalized one differs")
	}
}

func TestSolverRejectsBadConfig(t *testing.T) {
	g := graph.NewDigraph(2)
	g.AddLink(0, 1)
	s := NewSolver(g.TransitionMatrix())
	if _, err := s.Solve(Config{Damping: 1.5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("damping 1.5: err = %v", err)
	}
	if _, err := s.Solve(Config{Personalization: matrix.Vector{1}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short personalization: err = %v", err)
	}
}

// Steady-state Solve allocates nothing: operator, dangling list,
// teleport and power scratch are all precomputed.
func TestSolverZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := randomChainGraph(rng, 100)
	s := NewSolver(g.TransitionMatrix())
	if _, err := s.Solve(Config{}); err != nil {
		t.Fatal(err)
	}
	var solveErr error
	allocs := testing.AllocsPerRun(20, func() {
		_, solveErr = s.Solve(Config{})
	})
	if solveErr != nil {
		t.Fatal(solveErr)
	}
	if allocs != 0 {
		t.Errorf("Solve allocates %.1f per run, want 0", allocs)
	}
}

// Pin the damping sentinel: zero means DefaultDamping exactly (not "no
// damping"), explicit tiny values are honored, and non-positive damping
// cannot be expressed — it falls back or errors.
func TestDampingZeroSentinel(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	g := randomChainGraph(rng, 20)
	m := g.TransitionMatrix()

	zero, err1 := Sparse(m, Config{Damping: 0})
	def, err2 := Sparse(m, Config{Damping: DefaultDamping})
	if err1 != nil || err2 != nil {
		t.Fatalf("errs %v / %v", err1, err2)
	}
	if zero.Scores.L1Diff(def.Scores) != 0 || zero.Iterations != def.Iterations {
		t.Error("Damping: 0 is not identical to Damping: DefaultDamping")
	}

	tiny, err := Sparse(m, Config{Damping: 1e-6})
	if err != nil {
		t.Fatalf("tiny damping rejected: %v", err)
	}
	if tiny.Scores.L1Diff(def.Scores) == 0 {
		t.Error("tiny damping silently reinterpreted as default")
	}

	if _, err := Sparse(m, Config{Damping: -0.5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative damping: err = %v", err)
	}
	if _, err := Sparse(m, Config{Damping: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("damping 1: err = %v", err)
	}
}
