package partition

import (
	"math/rand"
	"sort"

	"lmmrank/internal/graph"
)

// Aggregate is the coupling-aware strategy: it co-locates strongly
// linked sites so document links stay inside shards, in the spirit of
// web aggregation (Ishii–Tempo) and BlockRank's observation that the
// web's link structure is overwhelmingly block-local. Two deterministic
// stages run over the inter-site SiteGraph (self-loops dropped — an
// intra-site link can never be cut):
//
//  1. Greedy block-merge: site pairs sorted by descending coupling
//     weight union into blocks while the combined document count stays
//     under the per-shard capacity; the blocks then LPT-pack onto
//     shards.
//  2. Seeded label propagation: a fixed number of passes visit sites in
//     a seed-shuffled order and move each to the shard holding the most
//     coupling weight with it, when that strictly lowers the cut and
//     the capacity allows.
//
// The capacity is max(ceil(totalDocs/shards · Slack), largest site), so
// balance degrades at most by the slack factor versus perfect LPT while
// the cut drops. The same seed always reproduces the same assignment.
type Aggregate struct {
	// Seed drives the label-propagation visit order. The zero seed is
	// a valid, deterministic choice.
	Seed int64
	// Slack multiplies the ideal per-shard document count to form the
	// capacity. Values below 1 (including the zero value) default to
	// 1.25.
	Slack float64
	// Passes bounds the label-propagation sweeps (refinement exits
	// early once a full pass moves nothing). The zero value defaults
	// to 8.
	Passes int
}

// Name implements Strategy.
func (Aggregate) Name() string { return "aggregate" }

func (a Aggregate) slack() float64 {
	if a.Slack < 1 {
		return 1.25
	}
	return a.Slack
}

func (a Aggregate) passes() int {
	if a.Passes <= 0 {
		return 8
	}
	return a.Passes
}

// capFor computes the per-shard document capacity: the slack-scaled
// ideal share, floored at the largest single site so every site is
// placeable.
func (a Aggregate) capFor(sizes []int, k int) int {
	total, largest := 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > largest {
			largest = sz
		}
	}
	capacity := int(float64(total)/float64(k)*a.slack()) + 1
	if capacity < largest {
		capacity = largest
	}
	return capacity
}

// sitePair is one undirected coupling between two sites (a < b).
type sitePair struct {
	a, b int
	w    float64
}

// couple is one adjacency entry: coupling weight toward another site.
type couple struct {
	to int
	w  float64
}

// couplings symmetrizes the inter-site SiteGraph into a pair list
// (sorted by descending weight for the merge stage) and an adjacency
// list (for the propagation stage). Map iteration order never leaks:
// pairs are fully sorted before use.
func couplings(dg *graph.DocGraph) (pairs []sitePair, adj [][]couple) {
	sg := graph.DeriveSiteGraph(dg, graph.SiteGraphOptions{DropSelfLoops: true})
	ns := sg.NumSites()
	wmap := make(map[int64]float64)
	sg.G.EachEdgeAll(func(from int, e graph.Edge) {
		a, b := from, e.To
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		wmap[int64(a)*int64(ns)+int64(b)] += e.Weight
	})
	pairs = make([]sitePair, 0, len(wmap))
	for key, w := range wmap {
		pairs = append(pairs, sitePair{a: int(key / int64(ns)), b: int(key % int64(ns)), w: w})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].w != pairs[j].w {
			return pairs[i].w > pairs[j].w
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	adj = make([][]couple, ns)
	for _, p := range pairs {
		adj[p.a] = append(adj[p.a], couple{to: p.b, w: p.w})
		adj[p.b] = append(adj[p.b], couple{to: p.a, w: p.w})
	}
	return pairs, adj
}

// mergeBlocks greedily unions the heaviest-coupled site pairs into
// blocks while the combined document count fits the capacity, then
// relabels blocks densely in site order.
func mergeBlocks(ns int, sizes []int, pairs []sitePair, capacity int) []int {
	parent := make([]int, ns)
	bsize := make([]int, ns)
	for s := 0; s < ns; s++ {
		parent[s] = s
		bsize[s] = sizes[s]
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range pairs {
		ra, rb := find(p.a), find(p.b)
		if ra == rb || bsize[ra]+bsize[rb] > capacity {
			continue
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		bsize[ra] += bsize[rb]
	}
	block := make([]int, ns)
	label := make(map[int]int, ns)
	for s := 0; s < ns; s++ {
		r := find(s)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		block[s] = id
	}
	return block
}

// placeBlocks LPT-packs whole blocks onto shards and expands the block
// placement back to sites.
func placeBlocks(block []int, sizes []int, k int) []int {
	nb := 0
	for _, b := range block {
		if b+1 > nb {
			nb = b + 1
		}
	}
	bsz := make([]int, nb)
	for s, b := range block {
		bsz[b] += sizes[s]
	}
	bOwner := LPT(bsz, k, make([]int, k))
	owner := make([]int, len(block))
	for s, b := range block {
		owner[s] = bOwner[b]
	}
	return owner
}

// refine runs the seeded label-propagation passes in place: each site
// moves to the shard it shares the most coupling weight with, when the
// gain is strictly positive and the destination has capacity.
func (a Aggregate) refine(owner []int, sizes []int, adj [][]couple, k, capacity int) {
	rng := rand.New(rand.NewSource(a.Seed))
	load := make([]int, k)
	for s, o := range owner {
		load[o] += sizes[s]
	}
	order := make([]int, len(owner))
	for i := range order {
		order[i] = i
	}
	w := make([]float64, k)
	for pass := 0; pass < a.passes(); pass++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		moves := 0
		for _, s := range order {
			if len(adj[s]) == 0 {
				continue
			}
			for b := range w {
				w[b] = 0
			}
			for _, c := range adj[s] {
				w[owner[c.to]] += c.w
			}
			cur := owner[s]
			best, bestW := cur, w[cur]
			for b := 0; b < k; b++ {
				if b == cur || load[b]+sizes[s] > capacity {
					continue
				}
				// Strict improvement with an epsilon guard: equal-weight
				// destinations never win, so passes cannot oscillate.
				if w[b] > bestW+1e-12 {
					best, bestW = b, w[b]
				}
			}
			if best != cur {
				owner[s] = best
				load[cur] -= sizes[s]
				load[best] += sizes[s]
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
}

// Partition implements Strategy: block-merge, block LPT, then seeded
// label-propagation refinement.
func (a Aggregate) Partition(dg *graph.DocGraph, shards int) Assignment {
	k := clampShards(shards)
	ns := dg.NumSites()
	if k == 1 || ns == 0 {
		return Assignment{Owner: make([]int, ns), Shards: k}
	}
	sizes := siteSizes(dg)
	pairs, adj := couplings(dg)
	capacity := a.capFor(sizes, k)
	block := mergeBlocks(ns, sizes, pairs, capacity)
	owner := placeBlocks(block, sizes, k)
	a.refine(owner, sizes, adj, k, capacity)
	return Assignment{Owner: owner, Shards: k}
}

// Rebalance implements Strategy: prev is extended over any new sites
// without moving survivors, then refinement runs from that placement.
// Only gain-positive, capacity-feasible moves happen, so shards the
// churn did not touch stay put and the migration cost tracks the
// drift.
func (a Aggregate) Rebalance(dg *graph.DocGraph, changed []graph.SiteID, prev Assignment) Assignment {
	k := clampShards(prev.Shards)
	ns := dg.NumSites()
	if k == 1 || ns == 0 {
		return Assignment{Owner: make([]int, ns), Shards: k}
	}
	next := Extend(dg, prev)
	sizes := siteSizes(dg)
	_, adj := couplings(dg)
	a.refine(next.Owner, sizes, adj, k, a.capFor(sizes, k))
	return next
}
