package partition

import (
	"fmt"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/webgen"
)

// fixtureGraph builds a DocGraph whose site sizes are exactly sizes.
func fixtureGraph(t *testing.T, sizes []int) *graph.DocGraph {
	t.Helper()
	b := graph.NewBuilder()
	var prev graph.DocID
	for s, n := range sizes {
		host := fmt.Sprintf("site%03d.example", s)
		for p := 0; p < n; p++ {
			d := b.AddDocInSite(fmt.Sprintf("http://%s/p%d", host, p), host)
			if d > 0 {
				b.LinkIDs(prev, d)
				b.LinkIDs(d, prev)
			}
			prev = d
		}
	}
	return b.Build()
}

func maxLoad(owner, sizes []int, k int) int {
	load := make([]int, k)
	for s, o := range owner {
		load[o] += sizes[s]
	}
	m := 0
	for _, l := range load {
		if l > m {
			m = l
		}
	}
	return m
}

// TestLPTBeatsRoundRobinOnSkew ports the old coordinator assign test:
// on a skewed size distribution LPT's bottleneck shard beats
// round-robin and stays within the 4/3 approximation bound.
func TestLPTBeatsRoundRobinOnSkew(t *testing.T) {
	sizes := []int{400, 10, 90, 10, 80, 10, 70, 10, 60, 10}
	const k = 3
	owner := LPT(sizes, k, make([]int, k))

	rr := make([]int, len(sizes))
	for s := range rr {
		rr[s] = s % k
	}
	lptMax, rrMax := maxLoad(owner, sizes, k), maxLoad(rr, sizes, k)
	if lptMax >= rrMax {
		t.Errorf("LPT bottleneck %d did not beat round-robin %d", lptMax, rrMax)
	}
	// LPT guarantee: max load ≤ 4/3 · OPT, and OPT ≥ max(total/k, largest).
	total, largest := 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > largest {
			largest = sz
		}
	}
	opt := (total + k - 1) / k
	if largest > opt {
		opt = largest
	}
	if 3*lptMax > 4*opt {
		t.Errorf("LPT bottleneck %d exceeds 4/3 bound (opt lower bound %d)", lptMax, opt)
	}
}

func TestLPTDeterministic(t *testing.T) {
	sizes := []int{5, 5, 9, 2, 2, 7, 1, 8, 3, 3, 6}
	a := LPT(sizes, 4, make([]int, 4))
	for i := 0; i < 10; i++ {
		b := LPT(sizes, 4, make([]int, 4))
		for s := range a {
			if a[s] != b[s] {
				t.Fatalf("run %d: owner[%d] = %d, want %d", i, s, b[s], a[s])
			}
		}
	}
}

func TestHostRoundRobinAndStability(t *testing.T) {
	dg := fixtureGraph(t, []int{4, 4, 4, 4, 4, 4, 4})
	asg := Host{}.Partition(dg, 3)
	if !asg.Valid(dg.NumSites(), 3) {
		t.Fatalf("invalid assignment %+v", asg)
	}
	for s, o := range asg.Owner {
		if o != s%3 {
			t.Errorf("owner[%d] = %d, want %d", s, o, s%3)
		}
	}
	// Appending sites must not move existing ones.
	dg2 := fixtureGraph(t, []int{4, 4, 4, 4, 4, 4, 4, 4, 4})
	reb := Host{}.Rebalance(dg2, []graph.SiteID{7, 8}, asg)
	for s := range asg.Owner {
		if reb.Owner[s] != asg.Owner[s] {
			t.Errorf("host rebalance moved site %d: %d → %d", s, asg.Owner[s], reb.Owner[s])
		}
	}
}

func TestBalancedRebalanceKeepsUnchangedSites(t *testing.T) {
	sizes := []int{30, 8, 8, 22, 5, 14, 9, 11}
	dg := fixtureGraph(t, sizes)
	prev := Balanced{}.Partition(dg, 3)
	reb := Balanced{}.Rebalance(dg, []graph.SiteID{1, 4}, prev)
	if !reb.Valid(dg.NumSites(), 3) {
		t.Fatalf("invalid rebalance %+v", reb)
	}
	for s := range prev.Owner {
		if s == 1 || s == 4 {
			continue
		}
		if reb.Owner[s] != prev.Owner[s] {
			t.Errorf("rebalance moved unchanged site %d: %d → %d", s, prev.Owner[s], reb.Owner[s])
		}
	}
}

func TestExtendKeepsExistingSites(t *testing.T) {
	prevG := fixtureGraph(t, []int{10, 10, 10, 10})
	prev := Balanced{}.Partition(prevG, 2)
	grown := fixtureGraph(t, []int{10, 10, 10, 10, 6, 6})
	ext := Extend(grown, prev)
	if !ext.Valid(grown.NumSites(), 2) {
		t.Fatalf("invalid extension %+v", ext)
	}
	for s := range prev.Owner {
		if ext.Owner[s] != prev.Owner[s] {
			t.Errorf("extend moved site %d: %d → %d", s, prev.Owner[s], ext.Owner[s])
		}
	}
}

func TestAssignmentValidAndClone(t *testing.T) {
	a := Assignment{Owner: []int{0, 1, 1, 0}, Shards: 2}
	if !a.Valid(4, 2) {
		t.Error("valid assignment rejected")
	}
	if a.Valid(3, 2) || a.Valid(4, 3) {
		t.Error("mismatched shape accepted")
	}
	if (Assignment{Owner: []int{0, 2}, Shards: 2}).Valid(2, 2) {
		t.Error("out-of-range owner accepted")
	}
	c := a.Clone()
	c.Owner[0] = 1
	if a.Owner[0] != 0 {
		t.Error("Clone aliases Owner")
	}
}

func blockyWeb(seed int64) *webgen.Web {
	return webgen.Generate(webgen.Config{
		Seed:              seed,
		Blocky:            true,
		Sites:             48,
		Blocks:            8,
		MeanSitePages:     12,
		IntraLinksPerPage: 2,
		InterLinkFraction: 0.3,
	})
}

// TestAggregateCutReductionOnBlockyWeb pins the headline property:
// on a planted-block web the coupling-aware strategy cuts at least 30%
// less inter-shard edge weight than hostname-order placement.
func TestAggregateCutReductionOnBlockyWeb(t *testing.T) {
	web := blockyWeb(7)
	dg := web.Graph
	const k = 4
	sg := graph.DeriveSiteGraph(dg, graph.SiteGraphOptions{})

	host := Host{}.Partition(dg, k)
	agg := Aggregate{Seed: 1}.Partition(dg, k)
	if !agg.Valid(dg.NumSites(), k) {
		t.Fatalf("invalid aggregate assignment %+v", agg)
	}
	hostCut := CutFraction(sg, host.Owner)
	aggCut := CutFraction(sg, agg.Owner)
	t.Logf("cut fraction: host %.4f, aggregate %.4f", hostCut, aggCut)
	if hostCut == 0 {
		t.Fatal("blocky web produced no host-cut edges; fixture is degenerate")
	}
	if aggCut > 0.7*hostCut {
		t.Errorf("aggregate cut %.4f not ≥30%% below host cut %.4f", aggCut, hostCut)
	}
}

// TestAggregateRespectsCapacity pins the documented balance bound: no
// shard exceeds max(ceil(total/k · 1.25), largest site).
func TestAggregateRespectsCapacity(t *testing.T) {
	web := blockyWeb(11)
	dg := web.Graph
	const k = 4
	agg := Aggregate{Seed: 3}.Partition(dg, k)

	sizes := make([]int, dg.NumSites())
	total, largest := 0, 0
	for s := range sizes {
		sizes[s] = dg.SiteSize(graph.SiteID(s))
		total += sizes[s]
		if sizes[s] > largest {
			largest = sizes[s]
		}
	}
	capacity := int(float64(total)/k*1.25) + 1
	if capacity < largest {
		capacity = largest
	}
	if got := maxLoad(agg.Owner, sizes, k); got > capacity {
		t.Errorf("max shard load %d exceeds capacity %d", got, capacity)
	}
}

func TestAggregateDeterministicPerSeed(t *testing.T) {
	web := blockyWeb(5)
	a := Aggregate{Seed: 42}.Partition(web.Graph, 4)
	for i := 0; i < 3; i++ {
		b := Aggregate{Seed: 42}.Partition(web.Graph, 4)
		for s := range a.Owner {
			if a.Owner[s] != b.Owner[s] {
				t.Fatalf("run %d: owner[%d] = %d, want %d", i, s, b.Owner[s], a.Owner[s])
			}
		}
	}
}

// TestAggregateRebalanceIsStable pins that Rebalance from an already
// optimized assignment with no graph change moves nothing: refinement
// only takes strictly-improving moves.
func TestAggregateRebalanceIsStable(t *testing.T) {
	web := blockyWeb(9)
	agg := Aggregate{Seed: 2}
	prev := agg.Partition(web.Graph, 4)
	reb := agg.Rebalance(web.Graph, []graph.SiteID{0, 1}, prev)
	for s := range prev.Owner {
		if reb.Owner[s] != prev.Owner[s] {
			t.Errorf("no-op rebalance moved site %d: %d → %d", s, prev.Owner[s], reb.Owner[s])
		}
	}
}

func TestStrategyNamesAndClamps(t *testing.T) {
	dg := fixtureGraph(t, []int{3, 3})
	for _, tc := range []struct {
		st   Strategy
		name string
	}{
		{Host{}, "host"},
		{Balanced{}, "balanced"},
		{Aggregate{}, "aggregate"},
	} {
		if got := tc.st.Name(); got != tc.name {
			t.Errorf("Name() = %q, want %q", got, tc.name)
		}
		asg := tc.st.Partition(dg, 0) // non-positive shard counts clamp to 1
		if !asg.Valid(dg.NumSites(), 1) {
			t.Errorf("%s: clamped partition invalid: %+v", tc.name, asg)
		}
		reb := tc.st.Rebalance(dg, nil, asg)
		if !reb.Valid(dg.NumSites(), 1) {
			t.Errorf("%s: clamped rebalance invalid: %+v", tc.name, reb)
		}
	}
}

func TestCutCountsOnlyCrossShardWeight(t *testing.T) {
	// Two sites, heavy intra-site traffic, one inter-site link each way.
	b := graph.NewBuilder()
	a0 := b.AddDocInSite("http://a/0", "a")
	a1 := b.AddDocInSite("http://a/1", "a")
	c0 := b.AddDocInSite("http://c/0", "c")
	c1 := b.AddDocInSite("http://c/1", "c")
	b.LinkIDs(a0, a1)
	b.LinkIDs(a1, a0)
	b.LinkIDs(c0, c1)
	b.LinkIDs(a0, c0)
	b.LinkIDs(c1, a1)
	dg := b.Build()
	sg := graph.DeriveSiteGraph(dg, graph.SiteGraphOptions{})

	cut, total := Cut(sg, []int{0, 1})
	if cut != 2 {
		t.Errorf("cut = %g, want 2 (the two inter-site links)", cut)
	}
	if total != 5 {
		t.Errorf("total = %g, want 5", total)
	}
	if got, _ := Cut(sg, []int{0, 0}); got != 0 {
		t.Errorf("co-located cut = %g, want 0", got)
	}
	if f := CutFraction(sg, []int{0, 1}); f != 0.4 {
		t.Errorf("CutFraction = %g, want 0.4", f)
	}
}
