// Package partition makes the distributed runtime's web aggregation —
// which sites serve from which worker shard — a pluggable strategy
// instead of a fact about hostnames. Sites stay the Layered Markov
// Model's decomposition units (the Partition Theorem composes the same
// global DocRank from any site→shard placement), so the assignment is a
// pure performance knob: it decides load balance, how many document
// links cross shard boundaries (the cut), and therefore how much
// coupling the distributed computation has to carry between peers.
//
// Three strategies cover the design space:
//
//   - Host: hostname-order round-robin, the seed runtime's original
//     placement. Position-stable and oblivious to both size and
//     coupling.
//   - Balanced: weighted LPT bin packing by document count, the
//     runtime's default — one giant site cannot serialize the fleet.
//   - Aggregate: coupling-aware aggregation in the spirit of
//     Ishii–Tempo web aggregation and BlockRank's block structure —
//     greedy block-merge over the SiteGraph followed by seeded
//     label-propagation refinement, minimizing cut-edge weight under a
//     max-shard-size balance constraint. Deterministic for a given
//     seed.
//
// Every strategy implements incremental Rebalance so graph churn moves
// only what the drift justifies; Cut and CutFraction report the quality
// every distributed run's Stats surface.
package partition

import (
	"sort"

	"lmmrank/internal/graph"
)

// Assignment maps every site of a DocGraph to one of Shards shards.
// Shard indices are abstract bins in [0, Shards); the coordinator maps
// bin j onto the j-th live worker in ascending fleet order.
type Assignment struct {
	// Owner holds the shard index per SiteID.
	Owner []int
	// Shards is the number of bins the assignment was computed for.
	Shards int
}

// Clone deep-copies the assignment.
func (a Assignment) Clone() Assignment {
	return Assignment{Owner: append([]int(nil), a.Owner...), Shards: a.Shards}
}

// Valid reports whether the assignment covers exactly ns sites over
// exactly shards bins with every owner in range.
func (a Assignment) Valid(ns, shards int) bool {
	if a.Shards != shards || len(a.Owner) != ns {
		return false
	}
	for _, o := range a.Owner {
		if o < 0 || o >= shards {
			return false
		}
	}
	return true
}

// Strategy computes site→shard assignments. Implementations must be
// deterministic: the same graph, shard count and configuration (seed
// included) must yield the same assignment — distributed reruns and
// rejoin rebalancing depend on it.
type Strategy interface {
	// Name identifies the strategy for flags, logs and stats lines.
	Name() string
	// Partition computes a fresh assignment of dg's sites over shards
	// bins.
	Partition(dg *graph.DocGraph, shards int) Assignment
	// Rebalance incrementally updates prev after the listed sites
	// changed (sites beyond prev's roster are implicitly new): sites
	// the churn does not justify moving keep their shard, so the
	// migration cost — shards re-shipped to new owners — stays
	// proportional to the drift, not to the web.
	Rebalance(dg *graph.DocGraph, changed []graph.SiteID, prev Assignment) Assignment
}

// EstCutEdgeBytes is the coarse gob wire cost of one document edge
// (two varint-heavy ints and a float64, matching wire.SiteShard's
// per-edge estimate) — the byte price a document-level exchange would
// pay per cut edge per sweep, which is the volume Aggregate minimizes.
const EstCutEdgeBytes = 24

// Cut measures an assignment's quality against a SiteGraph: cut is the
// aggregated document-link weight between sites whose owners differ,
// total is the SiteGraph's whole weight. owner may label shards in any
// space (bins or fleet indices) — only inequality matters. Sites beyond
// owner's length are ignored, so a short owner under-counts rather than
// panics.
func Cut(sg *graph.SiteGraph, owner []int) (cut, total float64) {
	sg.G.EachEdgeAll(func(from int, e graph.Edge) {
		total += e.Weight
		if from < len(owner) && e.To < len(owner) && owner[from] != owner[e.To] {
			cut += e.Weight
		}
	})
	return cut, total
}

// CutFraction is Cut as a fraction of the total weight (0 on an
// edgeless graph).
func CutFraction(sg *graph.SiteGraph, owner []int) float64 {
	cut, total := Cut(sg, owner)
	if total == 0 {
		return 0
	}
	return cut / total
}

// siteSizes returns each site's document count — the balance weights.
func siteSizes(dg *graph.DocGraph) []int {
	sizes := make([]int, dg.NumSites())
	for s := range sizes {
		sizes[s] = dg.SiteSize(graph.SiteID(s))
	}
	return sizes
}

// lptPlace assigns the listed items over k bins by weighted LPT
// (longest processing time): items sorted by descending size each land
// on the currently lightest bin. load is the k-length accumulator the
// chosen loads are added into, so callers can re-place a subset over
// existing loads. Fully deterministic: size ties break toward the lower
// item index, load ties toward the lower bin.
func lptPlace(items []int, sizes []int, k int, load []int, owner []int) {
	order := append([]int(nil), items...)
	sort.Slice(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] {
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	for _, s := range order {
		best := 0
		for b := 1; b < k; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		owner[s] = best
		load[best] += sizes[s]
	}
}

// LPT partitions all items over k bins by weighted LPT bin packing —
// the single balancing code path the runtime uses (LPT's max load is
// within 4/3 of optimal, which on skewed site-size distributions beats
// round-robin by a wide margin). load must have length k; the chosen
// loads are added into it.
func LPT(sizes []int, k int, load []int) []int {
	owner := make([]int, len(sizes))
	items := make([]int, len(sizes))
	for i := range items {
		items[i] = i
	}
	lptPlace(items, sizes, k, load, owner)
	return owner
}

// clampShards guards strategy entry points against a non-positive bin
// count.
func clampShards(k int) int {
	if k < 1 {
		return 1
	}
	return k
}

// Host is the hostname-order placement the seed runtime shipped with:
// site s lands on shard s mod k. Oblivious to size and coupling, but
// position-stable — churn never moves an existing site, so Rebalance
// migrates nothing.
type Host struct{}

// Name implements Strategy.
func (Host) Name() string { return "host" }

// Partition implements Strategy: round-robin by SiteID.
func (Host) Partition(dg *graph.DocGraph, shards int) Assignment {
	k := clampShards(shards)
	owner := make([]int, dg.NumSites())
	for s := range owner {
		owner[s] = s % k
	}
	return Assignment{Owner: owner, Shards: k}
}

// Rebalance implements Strategy. Round-robin is a pure function of the
// site index, so recomputing is position-stable: existing sites keep
// their shard, appended sites slot in at (s mod k).
func (h Host) Rebalance(dg *graph.DocGraph, changed []graph.SiteID, prev Assignment) Assignment {
	return h.Partition(dg, clampShards(prev.Shards))
}

// Balanced is the weighted-LPT placement, the runtime's default: sites
// sorted by descending document count each land on the lightest shard,
// so the local-rank phase's wall clock (the max over workers) shrinks
// versus round-robin on skewed size distributions.
type Balanced struct{}

// Name implements Strategy.
func (Balanced) Name() string { return "balanced" }

// Partition implements Strategy.
func (Balanced) Partition(dg *graph.DocGraph, shards int) Assignment {
	k := clampShards(shards)
	owner := LPT(siteSizes(dg), k, make([]int, k))
	return Assignment{Owner: owner, Shards: k}
}

// Rebalance implements Strategy: unchanged sites keep their shard, and
// only the changed and appended sites re-place by LPT over the
// surviving loads — churn cannot reshuffle the whole web.
func (b Balanced) Rebalance(dg *graph.DocGraph, changed []graph.SiteID, prev Assignment) Assignment {
	k := clampShards(prev.Shards)
	ns := dg.NumSites()
	sizes := siteSizes(dg)
	changedSet := make(map[int]bool, len(changed))
	for _, s := range changed {
		changedSet[int(s)] = true
	}
	owner := make([]int, ns)
	load := make([]int, k)
	var loose []int
	for s := 0; s < ns; s++ {
		if s < len(prev.Owner) && !changedSet[s] && prev.Owner[s] >= 0 && prev.Owner[s] < k {
			owner[s] = prev.Owner[s]
			load[owner[s]] += sizes[s]
			continue
		}
		loose = append(loose, s)
	}
	lptPlace(loose, sizes, k, load, owner)
	return Assignment{Owner: owner, Shards: k}
}

// Extend grows prev to cover every site of dg without moving any
// already-assigned site: appended sites land on the lightest shards by
// document count. It is the zero-migration baseline Engine.Update
// measures cut drift against before deciding whether a real repartition
// is worth the shard moves.
func Extend(dg *graph.DocGraph, prev Assignment) Assignment {
	k := clampShards(prev.Shards)
	ns := dg.NumSites()
	sizes := siteSizes(dg)
	owner := make([]int, ns)
	load := make([]int, k)
	var loose []int
	for s := 0; s < ns; s++ {
		if s < len(prev.Owner) && prev.Owner[s] >= 0 && prev.Owner[s] < k {
			owner[s] = prev.Owner[s]
			load[owner[s]] += sizes[s]
			continue
		}
		loose = append(loose, s)
	}
	lptPlace(loose, sizes, k, load, owner)
	return Assignment{Owner: owner, Shards: k}
}
