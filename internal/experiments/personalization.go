package experiments

import (
	"fmt"
	"strings"

	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/rankutil"
	"lmmrank/internal/webgen"
)

// PersonalizationResult is experiment E8: the §3.2 claim that
// "personalization of rankings can be easily implemented in our layered
// method", at the site layer, the document layer, and both.
type PersonalizationResult struct {
	Web *webgen.Web
	// Base is the unpersonalized layered ranking.
	Base *lmm.WebResult
	// SiteBiased boosts one focus site at the upper layer.
	SiteBiased *lmm.WebResult
	// DocBiased boosts one focus page at the lower layer of its site.
	DocBiased *lmm.WebResult
	// BothBiased applies both at once.
	BothBiased *lmm.WebResult
	// FocusSite and FocusDoc are the personalization targets.
	FocusSite graph.SiteID
	FocusDoc  graph.DocID
	// Ranks of the focus doc under each variant (1-based).
	BaseRank, SiteRank, DocRank, BothRank int
}

// RunPersonalization runs E8 on a small campus web: the focus is an
// ordinary page of an ordinary site, which personalization should pull up
// the global ranking at each layer.
func RunPersonalization(seed int64) (*PersonalizationResult, error) {
	cfg := webgen.Small()
	cfg.Seed = seed
	web := webgen.Generate(cfg)

	// Focus: the last ordinary site's second page (an unremarkable doc on
	// a site free of agglomerate clusters).
	var focusSite graph.SiteID = -1
	for s := web.Graph.NumSites() - 1; s >= 0 && focusSite < 0; s-- {
		docs := web.Graph.Sites[s].Docs
		if len(docs) < 3 || web.Class[docs[0]] != webgen.ClassHome {
			continue
		}
		clean := true
		for _, d := range docs {
			if web.Class[d].IsAgglomerate() {
				clean = false
				break
			}
		}
		if clean {
			focusSite = graph.SiteID(s)
		}
	}
	if focusSite < 0 {
		return nil, fmt.Errorf("experiments: personalization: no suitable focus site")
	}
	focusDoc := web.Graph.Sites[focusSite].Docs[1]

	base, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{})
	if err != nil {
		return nil, fmt.Errorf("experiments: personalization base: %w", err)
	}

	sitePers := matrix.NewVector(web.Graph.NumSites())
	for i := range sitePers {
		sitePers[i] = 0.2 / float64(len(sitePers)-1)
	}
	sitePers[focusSite] = 0.8

	docPers := matrix.NewVector(web.Graph.SiteSize(focusSite))
	local, _ := web.Graph.Sites[focusSite].Docs, 0
	for i := range docPers {
		docPers[i] = 0.2 / float64(len(docPers)-1)
	}
	for i, d := range local {
		if d == focusDoc {
			docPers[i] = 0.8
		}
	}
	docPers.Normalize()

	siteBiased, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{SitePersonalization: sitePers})
	if err != nil {
		return nil, fmt.Errorf("experiments: site-biased: %w", err)
	}
	docBiased, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{
		DocPersonalization: map[graph.SiteID]matrix.Vector{focusSite: docPers},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: doc-biased: %w", err)
	}
	bothBiased, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{
		SitePersonalization: sitePers,
		DocPersonalization:  map[graph.SiteID]matrix.Vector{focusSite: docPers},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: both-biased: %w", err)
	}

	res := &PersonalizationResult{
		Web: web, Base: base, SiteBiased: siteBiased,
		DocBiased: docBiased, BothBiased: bothBiased,
		FocusSite: focusSite, FocusDoc: focusDoc,
	}
	res.BaseRank = rankOf(base.DocRank, int(focusDoc))
	res.SiteRank = rankOf(siteBiased.DocRank, int(focusDoc))
	res.DocRank = rankOf(docBiased.DocRank, int(focusDoc))
	res.BothRank = rankOf(bothBiased.DocRank, int(focusDoc))
	return res, nil
}

// rankOf returns the 1-based rank position of item i.
func rankOf(scores matrix.Vector, i int) int {
	return rankutil.Ranks(scores)[i] + 1
}

// Format renders the E8 table.
func (r *PersonalizationResult) Format() string {
	var b strings.Builder
	b.WriteString("E8 — two-layer personalization (§3.2)\n\n")
	fmt.Fprintf(&b, "focus page: %s (site %q)\n\n",
		r.Web.Graph.Docs[r.FocusDoc].URL, r.Web.Graph.Sites[r.FocusSite].Name)
	fmt.Fprintf(&b, "%-28s %-12s %s\n", "variant", "global rank", "score")
	rows := []struct {
		name string
		rank int
		res  *lmm.WebResult
	}{
		{"uniform (no bias)", r.BaseRank, r.Base},
		{"site layer biased", r.SiteRank, r.SiteBiased},
		{"document layer biased", r.DocRank, r.DocBiased},
		{"both layers biased", r.BothRank, r.BothBiased},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %-12d %.6f\n", row.name, row.rank, row.res.DocRank[r.FocusDoc])
	}
	b.WriteString("\n(every variant remains a probability distribution; the Partition\n Theorem composition is unchanged — see TestPersonalizedPartitionTheorem)\n")
	return b.String()
}
