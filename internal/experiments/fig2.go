// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the quantitative experiments implied by its prose
// claims. Each experiment has a Run function returning a structured
// result and a Format method emitting a paper-style text table. The
// experiment IDs (E1–E8) are indexed in DESIGN.md §3; EXPERIMENTS.md
// records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"strings"

	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
)

// Fig2Result bundles experiment E1/E2: the §2.3 worked example.
type Fig2Result struct {
	// All holds the four approaches computed on the paper's model.
	All *lmm.All
	// Published paper vectors for comparison.
	WantPiW, WantPiWTilde matrix.Vector
	WantOrder             []int
	// MaxDeviation is the largest |measured − published| across both
	// Figure 2 vectors.
	MaxDeviation float64
	// OrderMatches reports whether both approaches reproduce the
	// published rank order exactly.
	OrderMatches bool
	// PartitionGap is ‖Approach2 − Approach4‖₁ (Corollary 1 ⇒ ≈ 0).
	PartitionGap float64
}

// RunFig2 reproduces Figure 2 and the §2.3.2–2.3.3 vectors with the
// standard α = f = 0.85.
func RunFig2() (*Fig2Result, error) {
	model := lmm.PaperExample()
	all, err := lmm.ComputeAll(model, lmm.Config{Tol: 1e-12})
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2: %w", err)
	}
	if all.A2 == nil || all.A4 == nil {
		return nil, fmt.Errorf("experiments: fig2: W or Y unexpectedly non-primitive")
	}
	res := &Fig2Result{
		All:          all,
		WantPiW:      lmm.PaperPiW,
		WantPiWTilde: lmm.PaperPiWTilde,
		WantOrder:    lmm.PaperOrder,
		PartitionGap: all.A2.Scores.L1Diff(all.A4.Scores),
	}
	for i := range res.WantPiW {
		if d := abs(all.A1.Scores[i] - res.WantPiW[i]); d > res.MaxDeviation {
			res.MaxDeviation = d
		}
		if d := abs(all.A2.Scores[i] - res.WantPiWTilde[i]); d > res.MaxDeviation {
			res.MaxDeviation = d
		}
	}
	res.OrderMatches = equalInts(all.A1.Positions(), res.WantOrder) &&
		equalInts(all.A2.Positions(), res.WantOrder)
	return res, nil
}

// Format renders the experiment in the layout of Figure 2, extended with
// the paper's published values for side-by-side comparison.
func (r *Fig2Result) Format() string {
	var b strings.Builder
	b.WriteString("E1/E2 — Figure 2: ranking of the 12 global system states (α = f = 0.85)\n\n")
	b.WriteString("local PageRank vectors (§2.3.2):\n")
	for i, v := range r.All.Local {
		fmt.Fprintf(&b, "  π%dG = %v\n", i+1, v)
	}
	fmt.Fprintf(&b, "\nphase layer (§2.3.3):\n  πY  = %v   (paper: %v)\n  π̃Y  = %v   (paper: %v)\n\n",
		r.All.PiY, lmm.PaperPiY, r.All.PiYTilde, lmm.PaperPiYTilde)

	b.WriteString("state     πW      paper   rank | π̃W      paper   rank\n")
	pos1 := r.All.A1.Positions()
	pos2 := r.All.A2.Positions()
	for k := 0; k < len(r.WantPiW); k++ {
		st := r.All.Layout.State(k)
		fmt.Fprintf(&b, "%2d %-6s %.4f  %.4f  %3d  | %.4f  %.4f  %3d\n",
			k+1, st, r.All.A1.Scores[k], r.WantPiW[k], pos1[k],
			r.All.A2.Scores[k], r.WantPiWTilde[k], pos2[k])
	}
	fmt.Fprintf(&b, "\nmax deviation from published digits: %.2e (4-decimal rounding bound 5e-5 + solver tol)\n", r.MaxDeviation)
	fmt.Fprintf(&b, "published rank order reproduced: %v\n", r.OrderMatches)
	fmt.Fprintf(&b, "Partition Theorem gap ‖A2−A4‖₁: %.2e (Corollary 1: identical)\n", r.PartitionGap)
	fmt.Fprintf(&b, "decentralized check: π̃(2,3) = π̃Y(2)·π²G(3) = %.4f (paper: 0.2541)\n",
		r.All.A4.Score(lmm.State{Phase: 1, Sub: 2}))
	fmt.Fprintf(&b, "adjusted variant:    π(2,3) = πY(2)·π²G(3)  = %.4f (paper: 0.2456)\n",
		r.All.A3.Score(lmm.State{Phase: 1, Sub: 2}))
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
