package experiments

import (
	"fmt"
	"strings"

	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/retrieval"
	"lmmrank/internal/webgen"
)

// FusionResult covers the paper's §4 future work, implemented here:
// combining query-based (TF-IDF cosine) and link-based (layered DocRank)
// ranking. Relevance ground truth comes from the synthetic corpus: for a
// site-topic query, exactly that site's pages are relevant.
type FusionResult struct {
	// Lambdas are the fusion weights swept (1 = pure text).
	Lambdas []float64
	// PrecisionAt5 and PrecisionAt10 hold mean precision over the query
	// set per λ.
	PrecisionAt5, PrecisionAt10 []float64
	// HomeFirst is the fraction of queries whose top hit is the queried
	// site's home page — the navigational-query success rate link
	// evidence is supposed to improve.
	HomeFirst []float64
	// Queries is the number of site-topic queries evaluated.
	Queries int
}

// RunFusion evaluates query×link fusion over all site-topic queries of a
// generated campus web.
func RunFusion(seed int64) (*FusionResult, error) {
	cfg := webgen.Config{
		Seed: seed, Sites: 60, MeanSitePages: 20, AuthorityPages: 6,
		IntraLinksPerPage: 2, InterLinkFraction: 0.25,
		DynamicClusterPages: 300, DocClusterPages: 300,
	}
	web := webgen.Generate(cfg)
	index := retrieval.SyntheticCorpus(web, seed)
	ranked, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: 1e-9})
	if err != nil {
		return nil, fmt.Errorf("experiments: fusion rank: %w", err)
	}

	out := &FusionResult{Lambdas: []float64{1.0, 0.7, 0.5, 0.3}}
	for _, lambda := range out.Lambdas {
		se, err := retrieval.NewSearchEngine(index, ranked.DocRank, lambda)
		if err != nil {
			return nil, fmt.Errorf("experiments: fusion engine λ=%g: %w", lambda, err)
		}
		var p5, p10, homeFirst float64
		var queries int
		// One navigational query per ordinary site: its topic term.
		for s := 0; s < cfg.Sites; s++ {
			site := graph.SiteID(s)
			query := []string{fmt.Sprintf("topic%03d", s)}
			res, err := se.Search(query, 10)
			if err != nil {
				return nil, fmt.Errorf("experiments: fusion query %v: %w", query, err)
			}
			if len(res) == 0 {
				continue
			}
			queries++
			p5 += precisionAt(res, web, site, 5)
			p10 += precisionAt(res, web, site, 10)
			if web.Graph.SiteOf(res[0].Doc) == site &&
				web.Class[res[0].Doc] == webgen.ClassHome {
				homeFirst++
			}
		}
		if queries == 0 {
			return nil, fmt.Errorf("experiments: fusion: no queries matched")
		}
		out.Queries = queries
		out.PrecisionAt5 = append(out.PrecisionAt5, p5/float64(queries))
		out.PrecisionAt10 = append(out.PrecisionAt10, p10/float64(queries))
		out.HomeFirst = append(out.HomeFirst, homeFirst/float64(queries))
	}
	return out, nil
}

// precisionAt computes the fraction of the first k hits belonging to the
// relevant site.
func precisionAt(res []retrieval.Result, web *webgen.Web, site graph.SiteID, k int) float64 {
	if k > len(res) {
		k = len(res)
	}
	if k == 0 {
		return 0
	}
	var hit int
	for _, r := range res[:k] {
		if web.Graph.SiteOf(r.Doc) == site {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// Format renders the fusion table.
func (r *FusionResult) Format() string {
	var b strings.Builder
	b.WriteString("Future work (§4) — query-based × link-based ranking fusion\n")
	fmt.Fprintf(&b, "%d site-topic queries; relevance = queried site's pages\n\n", r.Queries)
	b.WriteString("λ      P@5     P@10    home-page-first\n")
	for i, l := range r.Lambdas {
		fmt.Fprintf(&b, "%-6.2f %-7.3f %-7.3f %.3f\n",
			l, r.PrecisionAt5[i], r.PrecisionAt10[i], r.HomeFirst[i])
	}
	b.WriteString("\n(λ = 1 is pure text; adding the layered link score steers the top\n hit toward the site's home page without losing topical precision)\n")
	return b.String()
}
