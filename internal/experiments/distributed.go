package experiments

import (
	"fmt"
	"strings"
	"time"

	"lmmrank/internal/dist/cluster"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/lmm"
	"lmmrank/internal/webgen"
)

// DistributedPoint is one worker-count measurement of E7.
type DistributedPoint struct {
	Workers int
	// Total is end-to-end wall time of the distributed run; Load,
	// LocalRank and SiteRank break it down.
	Total, Load, LocalRank, SiteRank time.Duration
	// Messages and bytes crossing the coordinator's sockets.
	Messages, BytesSent, BytesReceived uint64
	// Gap is the L1 distance to the single-process reference ranking.
	Gap float64
}

// DistributedResult is experiment E7: scalability and communication
// volume of the distributed Layered Method (§1.2/§3.2 claims).
type DistributedResult struct {
	Docs, Sites int
	// Reference is the single-process wall time for the same web.
	Reference time.Duration
	Points    []DistributedPoint
	// DistributedSiteRank reports whether the decentralized SiteRank
	// variant was used.
	DistributedSiteRank bool
}

// DistributedOptions parameterizes E7.
type DistributedOptions struct {
	// Web configures the generator (zero = webgen.Default, seed 2005).
	Web webgen.Config
	// WorkerCounts to sweep (nil = 1,2,4,8).
	WorkerCounts []int
	// DistributedSiteRank selects the fully decentralized variant.
	DistributedSiteRank bool
	// Tol for all power runs (0 = 1e-9).
	Tol float64
}

// RunDistributed measures the distributed pipeline over loopback TCP for
// each worker count and compares against the in-process reference.
func RunDistributed(opts DistributedOptions) (*DistributedResult, error) {
	if opts.Web.Sites == 0 {
		opts.Web = webgen.Default()
		opts.Web.Seed = 2005
	}
	if len(opts.WorkerCounts) == 0 {
		opts.WorkerCounts = []int{1, 2, 4, 8}
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-9
	}
	web := webgen.Generate(opts.Web)

	start := time.Now()
	ref, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: opts.Tol})
	if err != nil {
		return nil, fmt.Errorf("experiments: distributed reference: %w", err)
	}
	out := &DistributedResult{
		Docs:                web.Graph.NumDocs(),
		Sites:               web.Graph.NumSites(),
		Reference:           time.Since(start),
		DistributedSiteRank: opts.DistributedSiteRank,
	}

	for _, n := range opts.WorkerCounts {
		local, err := cluster.StartLocal(n)
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster of %d: %w", n, err)
		}
		t := time.Now()
		res, err := local.Coord.Rank(web.Graph, coordinator.Config{
			Tol:                 opts.Tol,
			DistributedSiteRank: opts.DistributedSiteRank,
		})
		total := time.Since(t)
		closeErr := local.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: rank with %d workers: %w", n, err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("experiments: closing cluster of %d: %w", n, closeErr)
		}
		out.Points = append(out.Points, DistributedPoint{
			Workers:       n,
			Total:         total,
			Load:          res.Stats.LoadDuration,
			LocalRank:     res.Stats.LocalRankDuration,
			SiteRank:      res.Stats.SiteRankDuration,
			Messages:      res.Stats.Messages,
			BytesSent:     res.Stats.BytesSent,
			BytesReceived: res.Stats.BytesReceived,
			Gap:           res.DocRank.L1Diff(ref.DocRank),
		})
	}
	return out, nil
}

// Format renders the E7 table.
func (r *DistributedResult) Format() string {
	var b strings.Builder
	b.WriteString("E7 — distributed Layered Method over loopback TCP\n")
	fmt.Fprintf(&b, "web: %d sites, %d documents; single-process reference: %v\n",
		r.Sites, r.Docs, r.Reference.Round(time.Millisecond))
	if r.DistributedSiteRank {
		b.WriteString("variant: fully decentralized SiteRank (power steps over worker-held Y rows)\n")
	}
	b.WriteString("\nworkers  total      load       localrank  siterank   msgs    MB out   MB in    L1 vs ref\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8d %-10v %-10v %-10v %-10v %-7d %-8.2f %-8.2f %.1e\n",
			p.Workers,
			p.Total.Round(time.Millisecond), p.Load.Round(time.Millisecond),
			p.LocalRank.Round(time.Millisecond), p.SiteRank.Round(time.Millisecond),
			p.Messages,
			float64(p.BytesSent)/1e6, float64(p.BytesReceived)/1e6, p.Gap)
	}
	b.WriteString("\n(local DocRanks are computed entirely on the peers — the paper's\n decomposition claim; the SiteRank exchange is a vector of N_S floats)\n")
	return b.String()
}
