package experiments

import (
	"fmt"
	"strings"

	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/rankutil"
	"lmmrank/internal/webgen"
)

// AblationResult covers the design-choice ablations DESIGN.md §7 calls
// out: SiteGraph self-loop handling and the damping/gatekeeper parameter.
type AblationResult struct {
	// SelfLoopTau is the Kendall τ between layered rankings with and
	// without intra-site self-loops in the SiteGraph; SelfLoopSpam15 and
	// NoSelfLoopSpam15 are the respective contamination@15 values.
	SelfLoopTau                      float64
	SelfLoopSpam15, NoSelfLoopSpam15 float64
	// AlphaTaus maps each α to the Kendall τ of its layered ranking
	// against the α = 0.85 default.
	Alphas    []float64
	AlphaTaus []float64
	// AlphaSpam15 is the contamination@15 per α.
	AlphaSpam15 []float64
}

// RunAblation executes both ablations on one campus web.
func RunAblation(seed int64) (*AblationResult, error) {
	cfg := webgen.Default()
	cfg.Seed = seed
	web := webgen.Generate(cfg)
	flags := web.SpamFlags()

	withLoops, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: 1e-9})
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation base: %w", err)
	}
	noLoops, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{
		Tol:       1e-9,
		SiteGraph: graph.SiteGraphOptions{DropSelfLoops: true},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation no-self-loops: %w", err)
	}

	out := &AblationResult{
		SelfLoopTau:      rankutil.KendallTau(withLoops.DocRank, noLoops.DocRank),
		SelfLoopSpam15:   rankutil.ContaminationAtK(withLoops.DocRank, flags, 15),
		NoSelfLoopSpam15: rankutil.ContaminationAtK(noLoops.DocRank, flags, 15),
		Alphas:           []float64{0.5, 0.7, 0.85, 0.95},
	}
	for _, alpha := range out.Alphas {
		r, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Damping: alpha, Tol: 1e-9})
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation α=%g: %w", alpha, err)
		}
		out.AlphaTaus = append(out.AlphaTaus, rankutil.KendallTau(r.DocRank, withLoops.DocRank))
		out.AlphaSpam15 = append(out.AlphaSpam15, rankutil.ContaminationAtK(r.DocRank, flags, 15))
	}
	return out, nil
}

// Format renders the ablation tables.
func (r *AblationResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablation A — SiteGraph self-loops (intra-site mass in Y)\n\n")
	b.WriteString("variant            τ vs default  spam@15\n")
	fmt.Fprintf(&b, "%-18s %-13.3f %.3f\n", "with self-loops", 1.0, r.SelfLoopSpam15)
	fmt.Fprintf(&b, "%-18s %-13.3f %.3f\n", "inter-site only", r.SelfLoopTau, r.NoSelfLoopSpam15)
	b.WriteString("\nAblation B — gatekeeper/damping parameter α\n\n")
	b.WriteString("α      τ vs 0.85   spam@15\n")
	for i, alpha := range r.Alphas {
		fmt.Fprintf(&b, "%-6.2f %-11.3f %.3f\n", alpha, r.AlphaTaus[i], r.AlphaSpam15[i])
	}
	return b.String()
}
