package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
)

// ModelSize names one point of the E6 sweep.
type ModelSize struct {
	// Phases is the number of Web sites N_S.
	Phases int
	// SubStates is the number of documents per site n (uniform for the
	// sweep, so total states = Phases·SubStates).
	SubStates int
}

// ComplexityPoint is one measured row of E6.
type ComplexityPoint struct {
	Size        ModelSize
	TotalStates int
	// Centralized is the wall time of Approach 2 (power method on the
	// dense global W, which first must be assembled).
	Centralized time.Duration
	// Layered is the wall time of Approach 4 (the Layered Method).
	Layered time.Duration
	// Speedup = Centralized / Layered.
	Speedup float64
	// Gap is the L1 distance between the two rankings (Theorem 2 ⇒ ≈ 0).
	Gap float64
}

// ComplexityResult is E6: the §2.3.3 claim that the Layered Method
// replaces repeated N_P×N_P matrix multiplications with per-layer
// computations plus O(N_P) multiplications for aggregation.
type ComplexityResult struct {
	Points []ComplexityPoint
}

// RunComplexity measures centralized-vs-layered wall time across model
// sizes. Sizes with zero value get a default sweep.
func RunComplexity(sizes []ModelSize, seed int64) (*ComplexityResult, error) {
	if len(sizes) == 0 {
		sizes = []ModelSize{
			{Phases: 5, SubStates: 10},
			{Phases: 10, SubStates: 20},
			{Phases: 20, SubStates: 40},
			{Phases: 40, SubStates: 50},
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := &ComplexityResult{}
	for _, size := range sizes {
		model := randomUniformModel(rng, size.Phases, size.SubStates)
		cfg := lmm.Config{Tol: 1e-10}

		start := time.Now()
		a2, err := lmm.Approach2(model, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: complexity %+v centralized: %w", size, err)
		}
		centralized := time.Since(start)

		start = time.Now()
		a4, err := lmm.LayeredMethod(model, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: complexity %+v layered: %w", size, err)
		}
		layered := time.Since(start)

		out.Points = append(out.Points, ComplexityPoint{
			Size:        size,
			TotalStates: model.TotalStates(),
			Centralized: centralized,
			Layered:     layered,
			Speedup:     float64(centralized) / float64(layered),
			Gap:         a2.Scores.L1Diff(a4.Scores),
		})
	}
	return out, nil
}

// BenchModel builds the deterministic random model used by the E6
// benchmarks in the repository root, so bench and experiment share
// workloads.
func BenchModel(size ModelSize, seed int64) *lmm.Model {
	return randomUniformModel(rand.New(rand.NewSource(seed)), size.Phases, size.SubStates)
}

// randomUniformModel builds a dense random LMM with the given shape.
func randomUniformModel(rng *rand.Rand, phases, subStates int) *lmm.Model {
	y := matrix.NewDense(phases, phases)
	for i := 0; i < phases; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] = rng.Float64() + 1e-3
		}
	}
	y.NormalizeRows()
	us := make([]*matrix.Dense, phases)
	for p := range us {
		u := matrix.NewDense(subStates, subStates)
		for i := 0; i < subStates; i++ {
			// Sparse rows: a handful of links per document.
			for k := 0; k < 5; k++ {
				u.Set(i, rng.Intn(subStates), rng.Float64()+0.05)
			}
		}
		us[p] = u.NormalizeRows()
	}
	return &lmm.Model{Y: y, U: us}
}

// Format renders the E6 table.
func (r *ComplexityResult) Format() string {
	var b strings.Builder
	b.WriteString("E6 — centralized (power on W) vs decentralized (Layered Method)\n")
	b.WriteString("§2.3.3: aggregation needs only O(N_P) multiplications instead of\n")
	b.WriteString("repeated N_P×N_P matrix products\n\n")
	b.WriteString("sites  docs/site  states  centralized  layered     speedup  L1 gap\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-6d %-10d %-7d %-12v %-11v %-8.1f %.1e\n",
			p.Size.Phases, p.Size.SubStates, p.TotalStates,
			p.Centralized.Round(time.Microsecond), p.Layered.Round(time.Microsecond),
			p.Speedup, p.Gap)
	}
	return b.String()
}
