package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/webgen"
)

// ChurnResult measures the P2P churn path: a sequence of site-local link
// changes handled by incremental re-ranking (UpdateLayeredDocRank) and
// by the serving-path Engine.Update (warm structure rebuild + seeded
// power iterations) versus full recomputation. The layered structure is
// what makes the incremental paths possible at all — flat PageRank has
// no analogue of "only this site changed".
type ChurnResult struct {
	// Events is the number of site-mutation events simulated.
	Events int
	// IncrementalTotal and FullTotal are cumulative wall times of the two
	// functional strategies over the whole event sequence; EngineTotal is
	// the serving path (lmmrank Engine.Update + one query) over the same
	// events.
	IncrementalTotal, FullTotal, EngineTotal time.Duration
	// Speedup = FullTotal / IncrementalTotal; EngineSpeedup =
	// FullTotal / EngineTotal.
	Speedup, EngineSpeedup float64
	// MaxGap is the largest L1 distance between the incremental and the
	// fully recomputed ranking across all events (correctness bound);
	// EngineMaxGap is the same bound for the engine path.
	MaxGap, EngineMaxGap float64
	// LocalSolvesIncremental and LocalSolvesFull count local PageRank
	// computations performed by each strategy (the work the paper's
	// decomposition localizes).
	LocalSolvesIncremental, LocalSolvesFull int
}

// RunChurn simulates events site mutations on a campus web and compares
// incremental refresh against full recomputation after every event.
func RunChurn(seed int64, events int) (*ChurnResult, error) {
	if events <= 0 {
		events = 25
	}
	cfg := webgen.Config{
		Seed: seed, Sites: 80, MeanSitePages: 25, AuthorityPages: 6,
		IntraLinksPerPage: 2, InterLinkFraction: 0.25,
		DynamicClusterPages: 300, DocClusterPages: 300,
	}
	web := webgen.Generate(cfg)
	dg := web.Graph
	rng := rand.New(rand.NewSource(seed + 1))
	webCfg := lmm.WebConfig{Tol: 1e-10}

	prev, err := lmm.LayeredDocRank(dg, webCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: churn initial rank: %w", err)
	}

	// The serving path (what Engine.Update runs): a precomputed Ranker
	// rebuilt incrementally per event, queries warm-started from the
	// previous solution.
	rk, err := lmm.NewRanker(dg, lmm.RankerOptions{})
	if err != nil {
		return nil, fmt.Errorf("experiments: churn ranker: %w", err)
	}
	rk.Prepare()
	seedSite := prev.SiteRank.Clone()
	seedLocals := make([]matrix.Vector, len(prev.LocalRanks))
	for s, lr := range prev.LocalRanks {
		seedLocals[s] = lr.Clone()
	}

	out := &ChurnResult{Events: events}
	for e := 0; e < events; e++ {
		// Mutate one ordinary site: a few new intra-site links.
		site := graph.SiteID(rng.Intn(cfg.Sites))
		docs := dg.Sites[site].Docs
		if len(docs) < 2 {
			continue
		}
		for k := rng.Intn(4) + 2; k > 0; k-- {
			a := docs[rng.Intn(len(docs))]
			b := docs[rng.Intn(len(docs))]
			if a != b {
				dg.G.AddLink(int(a), int(b))
			}
		}

		start := time.Now()
		inc, err := lmm.UpdateLayeredDocRank(dg, prev, []graph.SiteID{site}, webCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn event %d incremental: %w", e, err)
		}
		out.IncrementalTotal += time.Since(start)
		out.LocalSolvesIncremental++ // exactly one site recomputed

		// Serving path: incremental structure rebuild plus one
		// warm-seeded query — what Engine.Update does per churn batch.
		start = time.Now()
		rk2, err := rk.Rebuild([]graph.SiteID{site})
		if err != nil {
			return nil, fmt.Errorf("experiments: churn event %d rebuild: %w", e, err)
		}
		seeded := webCfg
		seeded.SiteStart = seedSite
		seeded.LocalStarts = seedLocals
		served, err := rk2.Rank(seeded)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn event %d serve: %w", e, err)
		}
		out.EngineTotal += time.Since(start)
		seedSite = served.SiteRank.Clone()
		for s, lr := range served.LocalRanks {
			seedLocals[s] = lr.Clone()
		}
		servedDoc := served.DocRank.Clone()
		rk = rk2

		start = time.Now()
		full, err := lmm.LayeredDocRank(dg, webCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn event %d full: %w", e, err)
		}
		out.FullTotal += time.Since(start)
		out.LocalSolvesFull += dg.NumSites()

		if gap := inc.DocRank.L1Diff(full.DocRank); gap > out.MaxGap {
			out.MaxGap = gap
		}
		if gap := servedDoc.L1Diff(full.DocRank); gap > out.EngineMaxGap {
			out.EngineMaxGap = gap
		}
		prev = inc // chain incremental results, as a live system would
	}
	if out.IncrementalTotal > 0 {
		out.Speedup = float64(out.FullTotal) / float64(out.IncrementalTotal)
	}
	if out.EngineTotal > 0 {
		out.EngineSpeedup = float64(out.FullTotal) / float64(out.EngineTotal)
	}
	return out, nil
}

// Format renders the churn table.
func (r *ChurnResult) Format() string {
	var b strings.Builder
	b.WriteString("Churn — incremental refresh vs full recomputation (P2P site updates)\n\n")
	fmt.Fprintf(&b, "events simulated:        %d (one site's links change per event)\n", r.Events)
	fmt.Fprintf(&b, "incremental total:       %v  (%d local solves)\n",
		r.IncrementalTotal.Round(time.Millisecond), r.LocalSolvesIncremental)
	fmt.Fprintf(&b, "full recompute total:    %v  (%d local solves)\n",
		r.FullTotal.Round(time.Millisecond), r.LocalSolvesFull)
	fmt.Fprintf(&b, "speedup:                 %.1fx\n", r.Speedup)
	fmt.Fprintf(&b, "max L1 gap vs full:      %.2e (incremental results chained event to event)\n", r.MaxGap)
	fmt.Fprintf(&b, "serving rebuild total:   %v  (Ranker.Rebuild + warm-seeded query, the Engine.Update path)\n",
		r.EngineTotal.Round(time.Millisecond))
	fmt.Fprintf(&b, "serving speedup:         %.1fx   max L1 gap vs full: %.2e\n",
		r.EngineSpeedup, r.EngineMaxGap)
	b.WriteString("\n(the layered decomposition localizes each site's change to one local\n solve plus the small warm-started SiteRank)\n")
	return b.String()
}
