package experiments

import (
	"fmt"
	"strings"

	"lmmrank/internal/dist/cluster"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/partition"
	"lmmrank/internal/webgen"
)

// PartitionPoint is one strategy's measurement of E12.
type PartitionPoint struct {
	Strategy string
	// CutEdges / CutFraction measure the SiteGraph weight crossing
	// worker boundaries; CrossShardBytes is the counterfactual
	// per-sweep payload a document-level edge exchange would ship.
	CutEdges        float64
	CutFraction     float64
	CrossShardBytes uint64
	// BytesSent is the coordinator's measured cold-load wire volume.
	BytesSent uint64
	// MaxShardDocs is the bottleneck worker's document load.
	MaxShardDocs int
	// Gap is the L1 distance to the single-process reference ranking —
	// the Partition Theorem makes every strategy < 1e-9.
	Gap float64
}

// PartitionResult is experiment E12: placement quality of the
// partition strategies on a planted-block web where hostnames carry no
// coupling information.
type PartitionResult struct {
	Docs, Sites, Blocks int
	Workers             int
	Points              []PartitionPoint
	// CutReduction is Aggregate's cut-edge reduction vs Host
	// (1 − aggregate/host), the tentpole's headline number.
	CutReduction float64
	// ByteReduction is the same ratio on CrossShardBytes.
	ByteReduction float64
}

// PartitionOptions parameterizes E12.
type PartitionOptions struct {
	// Web configures the generator; zero selects a blocky web at the
	// default scale (Blocky is forced on either way).
	Web webgen.Config
	// Workers is the fleet size (0 = 4).
	Workers int
	// Tol for all power runs (0 = 1e-9).
	Tol float64
}

// RunPartition compares Host, Balanced and Aggregate placement through
// a real cluster on the blocky web, recording cut-edge weight,
// counterfactual cross-shard bytes, measured wire volume, balance, and
// the rank gap to the single-process reference.
func RunPartition(opts PartitionOptions) (*PartitionResult, error) {
	if opts.Web.Sites == 0 {
		opts.Web = webgen.Config{
			Seed:              2005,
			Sites:             64,
			Blocks:            8,
			MeanSitePages:     30,
			IntraLinksPerPage: 3,
			InterLinkFraction: 0.3,
		}
	}
	opts.Web.Blocky = true
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-9
	}
	web := webgen.Generate(opts.Web)
	dg := web.Graph

	ref, err := lmm.LayeredDocRank(dg, lmm.WebConfig{Tol: opts.Tol})
	if err != nil {
		return nil, fmt.Errorf("experiments: partition reference: %w", err)
	}
	out := &PartitionResult{
		Docs:    dg.NumDocs(),
		Sites:   dg.NumSites(),
		Blocks:  opts.Web.Blocks,
		Workers: opts.Workers,
	}

	byStrategy := map[string]*PartitionPoint{}
	for _, st := range []partition.Strategy{partition.Host{}, partition.Balanced{}, partition.Aggregate{Seed: 1}} {
		local, err := cluster.StartLocal(opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster of %d: %w", opts.Workers, err)
		}
		res, err := local.Coord.Rank(dg, coordinator.Config{Tol: opts.Tol, Partition: st})
		closeErr := local.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: rank with %s placement: %w", st.Name(), err)
		}
		if closeErr != nil {
			return nil, fmt.Errorf("experiments: closing cluster: %w", closeErr)
		}
		asg := st.Partition(dg, opts.Workers)
		load := make([]int, opts.Workers)
		for s, o := range asg.Owner {
			load[o] += dg.SiteSize(graph.SiteID(s))
		}
		maxLoad := 0
		for _, l := range load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		p := PartitionPoint{
			Strategy:        st.Name(),
			CutEdges:        res.Stats.CutEdges,
			CutFraction:     res.Stats.CutFraction,
			CrossShardBytes: res.Stats.CrossShardBytes,
			BytesSent:       res.Stats.BytesSent,
			MaxShardDocs:    maxLoad,
			Gap:             res.DocRank.L1Diff(ref.DocRank),
		}
		out.Points = append(out.Points, p)
		byStrategy[p.Strategy] = &out.Points[len(out.Points)-1]
	}
	host, agg := byStrategy["host"], byStrategy["aggregate"]
	if host.CutEdges > 0 {
		out.CutReduction = 1 - agg.CutEdges/host.CutEdges
	}
	if host.CrossShardBytes > 0 {
		out.ByteReduction = 1 - float64(agg.CrossShardBytes)/float64(host.CrossShardBytes)
	}
	return out, nil
}

// Format renders the E12 table.
func (r *PartitionResult) Format() string {
	var b strings.Builder
	b.WriteString("E12 — partition strategies on a planted-block web\n")
	fmt.Fprintf(&b, "web: %d sites in %d coupling blocks, %d documents; %d workers\n\n",
		r.Sites, r.Blocks, r.Docs, r.Workers)
	b.WriteString("strategy   cut-weight  cut-frac  x-shard KB  wire KB  max-docs  L1 vs ref\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10s %-11.0f %-9.4f %-11.1f %-8.1f %-9d %.1e\n",
			p.Strategy, p.CutEdges, p.CutFraction,
			float64(p.CrossShardBytes)/1e3, float64(p.BytesSent)/1e3, p.MaxShardDocs, p.Gap)
	}
	fmt.Fprintf(&b, "\naggregate vs host: cut-edge weight −%.0f%%, cross-shard bytes −%.0f%%\n",
		100*r.CutReduction, 100*r.ByteReduction)
	b.WriteString("(every strategy agrees with the single-process Layered Method — the\n Partition Theorem makes placement a pure performance knob)\n")
	return b.String()
}
