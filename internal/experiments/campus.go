package experiments

import (
	"fmt"
	"strings"

	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/rankutil"
	"lmmrank/internal/webgen"
)

// CampusOptions parameterizes E3/E4/E5 on the synthetic campus web.
type CampusOptions struct {
	// Web configures the generator; zero value = webgen.Default() with
	// seed 2005.
	Web webgen.Config
	// TopK is the table length (0 = 15, the paper's).
	TopK int
	// Tol is the power-method tolerance (0 = 1e-10).
	Tol float64
}

func (o CampusOptions) withDefaults() CampusOptions {
	if o.Web.Sites == 0 {
		o.Web = webgen.Default()
		o.Web.Seed = 2005
	}
	if o.TopK == 0 {
		o.TopK = 15
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	return o
}

// CampusResult bundles the Figure 3 / Figure 4 comparison plus the
// quantitative spam metrics of E5.
type CampusResult struct {
	Web *webgen.Web
	// PageRank is the flat baseline (Figure 3), Layered the LMM method
	// (Figure 4).
	PageRank matrix.Vector
	Layered  *lmm.WebResult
	// TopPageRank and TopLayered are the top-K tables.
	TopPageRank, TopLayered []rankutil.Entry
	// Contamination maps k → fraction of agglomerate pages in the top-k,
	// for both methods.
	ContaminationPR, ContaminationLMM map[int]float64
	// KendallTau and Overlap quantify overall agreement of the two
	// rankings.
	KendallTau float64
	Overlap100 float64
	TopK       int
}

// RunCampus executes E3 (Figure 3), E4 (Figure 4) and the E5 metrics on
// one generated campus web.
func RunCampus(opts CampusOptions) (*CampusResult, error) {
	opts = opts.withDefaults()
	web := webgen.Generate(opts.Web)

	pr, err := lmm.GlobalPageRank(web.Graph, lmm.WebConfig{Tol: opts.Tol})
	if err != nil {
		return nil, fmt.Errorf("experiments: campus pagerank: %w", err)
	}
	layered, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: opts.Tol})
	if err != nil {
		return nil, fmt.Errorf("experiments: campus layered: %w", err)
	}

	flags := web.SpamFlags()
	res := &CampusResult{
		Web:              web,
		PageRank:         pr.Scores,
		Layered:          layered,
		TopPageRank:      rankutil.TopK(pr.Scores, opts.TopK),
		TopLayered:       rankutil.TopK(layered.DocRank, opts.TopK),
		ContaminationPR:  make(map[int]float64),
		ContaminationLMM: make(map[int]float64),
		KendallTau:       rankutil.KendallTau(pr.Scores, layered.DocRank),
		Overlap100:       rankutil.OverlapAtK(pr.Scores, layered.DocRank, 100),
		TopK:             opts.TopK,
	}
	for _, k := range []int{10, 15, 25, 50, 100} {
		res.ContaminationPR[k] = rankutil.ContaminationAtK(pr.Scores, flags, k)
		res.ContaminationLMM[k] = rankutil.ContaminationAtK(layered.DocRank, flags, k)
	}
	return res, nil
}

// FormatFig3 renders the PageRank table in the Figure 3 layout.
func (r *CampusResult) FormatFig3() string {
	return r.formatTable(
		"E3 — Figure 3: top documents by flat PageRank (agglomerates dominate)",
		r.TopPageRank)
}

// FormatFig4 renders the LMM table in the Figure 4 layout.
func (r *CampusResult) FormatFig4() string {
	return r.formatTable(
		"E4 — Figure 4: top documents by the LMM-based Layered Method",
		r.TopLayered)
}

func (r *CampusResult) formatTable(title string, top []rankutil.Entry) string {
	var b strings.Builder
	b.WriteString(title + "\n\n")
	fmt.Fprintf(&b, "web: %d sites, %d documents, %d links\n\n",
		r.Web.Graph.NumSites(), r.Web.Graph.NumDocs(), r.Web.Graph.G.NumEdges())
	fmt.Fprintf(&b, "%-4s %-10s %-22s %s\n", "#", "score", "class", "URL")
	for i, e := range top {
		fmt.Fprintf(&b, "%-4d %-10.6f %-22s %s\n",
			i+1, e.Score, r.Web.Class[e.Index], r.Web.Graph.Docs[e.Index].URL)
	}
	return b.String()
}

// FormatSpam renders the E5 contamination table.
func (r *CampusResult) FormatSpam() string {
	var b strings.Builder
	b.WriteString("E5 — link-spam resistance: fraction of agglomerate pages in the top-k\n\n")
	b.WriteString("k     PageRank   LMM\n")
	for _, k := range []int{10, 15, 25, 50, 100} {
		fmt.Fprintf(&b, "%-5d %-10.3f %-10.3f\n", k, r.ContaminationPR[k], r.ContaminationLMM[k])
	}
	fmt.Fprintf(&b, "\noverall agreement: Kendall τ = %.3f, overlap@100 = %.3f\n",
		r.KendallTau, r.Overlap100)
	b.WriteString("(paper §3.3: LMM \"defeats link spamming to a satisfiable degree\" while\n remaining qualitatively comparable to PageRank)\n")
	return b.String()
}

// SpamSweepResult is E5's ablation: contamination as agglomerate size
// grows.
type SpamSweepResult struct {
	Sizes             []int
	PageRank, Layered []float64 // contamination@15 per size
	TopK              int
}

// RunSpamSweep varies the agglomerate sizes and measures contamination of
// the top-15 under both methods.
func RunSpamSweep(sizes []int, seed int64) (*SpamSweepResult, error) {
	if len(sizes) == 0 {
		sizes = []int{0, 250, 500, 1000, 2500, 5000}
	}
	out := &SpamSweepResult{Sizes: sizes, TopK: 15}
	for _, size := range sizes {
		cfg := webgen.Default()
		cfg.Seed = seed
		cfg.DynamicClusterPages = size
		cfg.DocClusterPages = size
		web := webgen.Generate(cfg)
		pr, err := lmm.GlobalPageRank(web.Graph, lmm.WebConfig{Tol: 1e-9})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep size %d: %w", size, err)
		}
		layered, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: 1e-9})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep size %d: %w", size, err)
		}
		flags := web.SpamFlags()
		out.PageRank = append(out.PageRank, rankutil.ContaminationAtK(pr.Scores, flags, out.TopK))
		out.Layered = append(out.Layered, rankutil.ContaminationAtK(layered.DocRank, flags, out.TopK))
	}
	return out, nil
}

// Format renders the sweep table.
func (r *SpamSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E5 ablation — contamination@%d vs agglomerate size (pages per cluster)\n\n", r.TopK)
	b.WriteString("cluster-size  PageRank   LMM\n")
	for i, size := range r.Sizes {
		fmt.Fprintf(&b, "%-13d %-10.3f %-10.3f\n", size, r.PageRank[i], r.Layered[i])
	}
	return b.String()
}
