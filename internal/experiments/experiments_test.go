package experiments

import (
	"strings"
	"testing"

	"lmmrank/internal/webgen"
)

func TestRunFig2ReproducesPaper(t *testing.T) {
	res, err := RunFig2()
	if err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	if !res.OrderMatches {
		t.Error("published Figure 2 rank order not reproduced")
	}
	// Published digits are 4-decimal roundings: each entry must match to
	// ≤ 5e-5 rounding + small solver tolerance.
	if res.MaxDeviation > 2e-4 {
		t.Errorf("max deviation from published digits = %g", res.MaxDeviation)
	}
	if res.PartitionGap > 1e-8 {
		t.Errorf("partition gap = %g", res.PartitionGap)
	}
	out := res.Format()
	for _, want := range []string{"0.2541", "0.2456", "Figure 2", "π̃Y"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q", want)
		}
	}
}

// campusOpts returns a scaled-down campus configuration that keeps the
// paper's qualitative structure but runs in test time.
func campusOpts(seed int64) CampusOptions {
	cfg := webgen.Config{
		Seed:                seed,
		Sites:               60,
		MeanSitePages:       20,
		AuthorityPages:      6,
		IntraLinksPerPage:   2,
		InterLinkFraction:   0.25,
		DynamicClusterPages: 400,
		DocClusterPages:     400,
	}
	return CampusOptions{Web: cfg, Tol: 1e-9}
}

func TestRunCampusReproducesFigure3And4Shape(t *testing.T) {
	res, err := RunCampus(campusOpts(2005))
	if err != nil {
		t.Fatalf("RunCampus: %v", err)
	}
	// Figure 3's shape: flat PageRank's top-15 is substantially
	// contaminated by agglomerate pages.
	if res.ContaminationPR[15] < 0.25 {
		t.Errorf("PageRank contamination@15 = %.2f, want ≥ 0.25 (Figure 3 shape)",
			res.ContaminationPR[15])
	}
	// Figure 4's shape: the Layered Method's top-15 is clean.
	if res.ContaminationLMM[15] > 0.05 {
		t.Errorf("LMM contamination@15 = %.2f, want ≈ 0 (Figure 4 shape)",
			res.ContaminationLMM[15])
	}
	// Both top the main home page, as in both figures.
	if res.TopPageRank[0].Index != int(res.Web.MainHome) {
		t.Errorf("PageRank top-1 = %s, want main home",
			res.Web.Graph.Docs[res.TopPageRank[0].Index].URL)
	}
	if res.TopLayered[0].Index != int(res.Web.MainHome) {
		t.Errorf("LMM top-1 = %s, want main home",
			res.Web.Graph.Docs[res.TopLayered[0].Index].URL)
	}
	// "Qualitatively comparable": the two rankings correlate positively
	// overall even though their top lists differ.
	if res.KendallTau < 0.2 {
		t.Errorf("Kendall τ = %.3f, want clearly positive", res.KendallTau)
	}
	for _, fragment := range []string{"Figure 3", "Webdriver"} {
		if !strings.Contains(res.FormatFig3(), fragment) {
			t.Errorf("FormatFig3 missing %q", fragment)
		}
	}
	if !strings.Contains(res.FormatFig4(), "Figure 4") {
		t.Error("FormatFig4 missing title")
	}
	if !strings.Contains(res.FormatSpam(), "PageRank") {
		t.Error("FormatSpam missing header")
	}
}

func TestRunSpamSweepMonotoneForPageRank(t *testing.T) {
	sizes := []int{0, 150, 400}
	res, err := RunSpamSweep(sizes, 7)
	if err != nil {
		t.Fatalf("RunSpamSweep: %v", err)
	}
	if len(res.PageRank) != len(sizes) {
		t.Fatalf("points = %d", len(res.PageRank))
	}
	if res.PageRank[0] != 0 {
		t.Errorf("no clusters should mean zero contamination, got %g", res.PageRank[0])
	}
	if res.PageRank[len(sizes)-1] <= res.PageRank[0] {
		t.Errorf("PageRank contamination did not grow with cluster size: %v", res.PageRank)
	}
	for i, c := range res.Layered {
		if c > 0.10 {
			t.Errorf("LMM contamination@15 at size %d = %g, want ≈ 0", sizes[i], c)
		}
	}
	if !strings.Contains(res.Format(), "cluster-size") {
		t.Error("Format missing header")
	}
}

func TestRunComplexityLayeredWins(t *testing.T) {
	sizes := []ModelSize{
		{Phases: 5, SubStates: 10},
		{Phases: 15, SubStates: 30},
	}
	res, err := RunComplexity(sizes, 3)
	if err != nil {
		t.Fatalf("RunComplexity: %v", err)
	}
	for _, p := range res.Points {
		if p.Gap > 1e-7 {
			t.Errorf("size %+v: rankings deviate by %g", p.Size, p.Gap)
		}
	}
	// The paper's claim is asymptotic: the layered method must win
	// clearly on the larger model.
	last := res.Points[len(res.Points)-1]
	if last.Speedup < 1.5 {
		t.Errorf("layered speedup on %d states = %.2fx, want ≥ 1.5x", last.TotalStates, last.Speedup)
	}
	if !strings.Contains(res.Format(), "speedup") {
		t.Error("Format missing speedup column")
	}
}

func TestRunDistributedMatchesReference(t *testing.T) {
	cfg := webgen.Small()
	cfg.Seed = 5
	res, err := RunDistributed(DistributedOptions{
		Web:          cfg,
		WorkerCounts: []int{1, 3},
	})
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Gap > 1e-7 {
			t.Errorf("%d workers: gap %g", p.Workers, p.Gap)
		}
		if p.Messages == 0 {
			t.Errorf("%d workers: no messages recorded", p.Workers)
		}
	}
	if !strings.Contains(res.Format(), "workers") {
		t.Error("Format missing header")
	}
}

func TestRunPersonalizationLiftsFocus(t *testing.T) {
	res, err := RunPersonalization(11)
	if err != nil {
		t.Fatalf("RunPersonalization: %v", err)
	}
	if res.SiteRank >= res.BaseRank {
		t.Errorf("site bias: rank %d not better than base %d", res.SiteRank, res.BaseRank)
	}
	if res.DocRank >= res.BaseRank {
		t.Errorf("doc bias: rank %d not better than base %d", res.DocRank, res.BaseRank)
	}
	if res.BothRank > res.SiteRank || res.BothRank > res.DocRank {
		t.Errorf("both-layer bias (%d) should dominate single-layer (%d, %d)",
			res.BothRank, res.SiteRank, res.DocRank)
	}
	if !strings.Contains(res.Format(), "global rank") {
		t.Error("Format missing table header")
	}
}

func TestRunAblation(t *testing.T) {
	res, err := RunAblation(13)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	// Self-loop handling changes the ranking but not the spam story.
	if res.SelfLoopTau >= 1 {
		t.Errorf("self-loop ablation should change the ranking, τ = %g", res.SelfLoopTau)
	}
	if res.NoSelfLoopSpam15 > 0.1 || res.SelfLoopSpam15 > 0.1 {
		t.Errorf("LMM stays spam-resistant in both variants: %g / %g",
			res.SelfLoopSpam15, res.NoSelfLoopSpam15)
	}
	// α sweep: τ = 1 against itself at 0.85.
	foundDefault := false
	for i, a := range res.Alphas {
		if a == 0.85 {
			foundDefault = true
			if res.AlphaTaus[i] < 0.999 {
				t.Errorf("τ at α=0.85 against itself = %g", res.AlphaTaus[i])
			}
		}
	}
	if !foundDefault {
		t.Error("α sweep missing the 0.85 default")
	}
	if !strings.Contains(res.Format(), "Ablation") {
		t.Error("Format missing title")
	}
}

func TestRunFusion(t *testing.T) {
	res, err := RunFusion(17)
	if err != nil {
		t.Fatalf("RunFusion: %v", err)
	}
	if res.Queries == 0 || len(res.PrecisionAt5) != len(res.Lambdas) {
		t.Fatalf("result shape: %+v", res)
	}
	// Precision stays high across the sweep (all matches are topical by
	// construction), and the navigational success rate must not decrease
	// when link evidence is added.
	for i, l := range res.Lambdas {
		if res.PrecisionAt5[i] < 0.9 {
			t.Errorf("λ=%g: P@5 = %g", l, res.PrecisionAt5[i])
		}
	}
	pureText := res.HomeFirst[0] // λ = 1 first in the sweep
	for i, l := range res.Lambdas[1:] {
		if res.HomeFirst[i+1] < pureText {
			t.Errorf("λ=%g: home-first %g dropped below pure text %g",
				l, res.HomeFirst[i+1], pureText)
		}
	}
	if !strings.Contains(res.Format(), "P@5") {
		t.Error("Format missing header")
	}
}

// TestFullScaleCampus runs E3/E4 at the default paper scale (218 ordinary
// sites, ~17k documents) rather than the reduced test configuration, so
// the published EXPERIMENTS.md numbers stay pinned by CI. Skipped in
// -short mode.
func TestFullScaleCampus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale campus run skipped in -short mode")
	}
	res, err := RunCampus(CampusOptions{})
	if err != nil {
		t.Fatalf("RunCampus: %v", err)
	}
	if got := res.Web.Graph.NumSites(); got != 220 {
		t.Errorf("sites = %d, want 220 (218 + 2 agglomerate hosts)", got)
	}
	if res.ContaminationPR[15] < 0.4 {
		t.Errorf("PageRank contamination@15 = %.2f, want ≥ 0.4 at full scale",
			res.ContaminationPR[15])
	}
	if res.ContaminationLMM[100] != 0 {
		t.Errorf("LMM contamination@100 = %.2f, want 0", res.ContaminationLMM[100])
	}
	// The Figure 4 signature: main-site service pages right behind the
	// home page.
	var authorityInTop int
	for _, e := range res.TopLayered[1:12] {
		if res.Web.Class[e.Index] == webgen.ClassAuthority {
			authorityInTop++
		}
	}
	if authorityInTop < 8 {
		t.Errorf("authority pages in LMM top 2..12 = %d, want ≥ 8", authorityInTop)
	}
}

func TestRunChurn(t *testing.T) {
	res, err := RunChurn(29, 10)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	if res.Events != 10 {
		t.Errorf("Events = %d", res.Events)
	}
	// Correctness: chained incremental results must track the full
	// recompute to solver tolerance.
	if res.MaxGap > 1e-7 {
		t.Errorf("max gap = %g", res.MaxGap)
	}
	// Work: incremental does one local solve per event instead of one per
	// site, and should be clearly faster in total.
	if res.LocalSolvesIncremental >= res.LocalSolvesFull {
		t.Errorf("local solves: %d incremental vs %d full",
			res.LocalSolvesIncremental, res.LocalSolvesFull)
	}
	if res.Speedup < 1.5 {
		t.Errorf("speedup = %.2fx, want ≥ 1.5x", res.Speedup)
	}
	// The serving path (incremental Ranker.Rebuild + warm-seeded query)
	// must track the full recompute too, and beat it on wall time.
	if res.EngineMaxGap > 1e-7 {
		t.Errorf("serving max gap = %g", res.EngineMaxGap)
	}
	if res.EngineSpeedup < 1.5 {
		t.Errorf("serving speedup = %.2fx, want ≥ 1.5x", res.EngineSpeedup)
	}
	if !strings.Contains(res.Format(), "speedup") {
		t.Error("Format missing speedup")
	}
}
