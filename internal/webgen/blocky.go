package webgen

import (
	"fmt"
	"math"
	"math/rand"

	"lmmrank/internal/graph"
)

// generateBlocky builds the planted-block web: cfg.Sites sites split
// into cfg.Blocks blocks contiguous in SiteID, where a page's cross-site
// links stay inside its block except with probability
// cfg.InterBlockFraction. Hostnames are flat (site000.web.example, ...)
// so nothing about the name reveals the block; hostname-order placement
// (site mod shards) therefore scatters every block across all shards
// while a coupling-aware partition can recover them. Ring links over the
// site homes of each block and over the block leads keep the site graph
// connected.
func generateBlocky(cfg Config) *Web {
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder()
	ns, nb := cfg.Sites, cfg.Blocks
	if nb > ns {
		nb = ns
	}

	blockOf := make([]int, ns)
	siteHomes := make([]graph.DocID, ns)
	sitePages := make([][]graph.DocID, ns)
	for s := 0; s < ns; s++ {
		blockOf[s] = s * nb / ns
		host := fmt.Sprintf("site%03d.web.example", s)
		n := blockySiteSize(rng, cfg.MeanSitePages)

		home := b.AddDocInSite("http://"+host+"/", host)
		pages := make([]graph.DocID, 0, n)
		pages = append(pages, home)
		for p := 1; p < n; p++ {
			d := b.AddDocInSite(fmt.Sprintf("http://%s/page%d.html", host, p), host)
			parent := home
			if p > 1 && rng.Float64() > 0.4 {
				parent = pages[rng.Intn(p)]
			}
			b.LinkIDs(parent, d)
			b.LinkIDs(d, parent)
			b.LinkIDs(d, home)
			pages = append(pages, d)
		}
		for e := 0; e < cfg.IntraLinksPerPage*len(pages); e++ {
			from := pages[rng.Intn(len(pages))]
			to := pages[rng.Intn(len(pages))]
			if from != to {
				b.LinkIDs(from, to)
			}
		}
		siteHomes[s] = home
		sitePages[s] = pages
	}

	members := make([][]int, nb)
	for s, bl := range blockOf {
		members[bl] = append(members[bl], s)
	}
	// Connectivity fabric: a home ring inside each block, and a lead-home
	// ring across blocks.
	for _, sites := range members {
		for i, s := range sites {
			t := sites[(i+1)%len(sites)]
			if t != s {
				b.LinkIDs(siteHomes[s], siteHomes[t])
				b.LinkIDs(siteHomes[t], siteHomes[s])
			}
		}
	}
	for bl := 0; bl < nb; bl++ {
		next := (bl + 1) % nb
		if len(members[bl]) == 0 || len(members[next]) == 0 || bl == next {
			continue
		}
		b.LinkIDs(siteHomes[members[bl][0]], siteHomes[members[next][0]])
		b.LinkIDs(siteHomes[members[next][0]], siteHomes[members[bl][0]])
	}

	// Organic cross-site links, block-local except for the planted
	// escape fraction.
	for s, pages := range sitePages {
		for _, p := range pages {
			if rng.Float64() >= cfg.InterLinkFraction {
				continue
			}
			ts := s
			if rng.Float64() < cfg.InterBlockFraction {
				for tries := 0; tries < 16 && blockOf[ts] == blockOf[s]; tries++ {
					ts = rng.Intn(ns)
				}
			} else {
				sites := members[blockOf[s]]
				ts = sites[rng.Intn(len(sites))]
			}
			if ts == s {
				continue
			}
			target := siteHomes[ts]
			if rng.Float64() < 0.3 {
				target = sitePages[ts][rng.Intn(len(sitePages[ts]))]
			}
			b.LinkIDs(p, target)
		}
	}

	dg := b.Build()
	w := &Web{
		Graph:    dg,
		Class:    make([]PageClass, dg.NumDocs()),
		MainHome: siteHomes[0],
		BlockOf:  blockOf,
	}
	for d := range w.Class {
		w.Class[d] = ClassNormal
	}
	for _, h := range siteHomes {
		w.Class[h] = ClassHome
	}
	return w
}

// blockySiteSize draws a mildly Pareto-skewed site size around mean —
// enough spread that balance still matters, without the campus web's
// order-of-magnitude main site.
func blockySiteSize(rng *rand.Rand, mean int) int {
	u := rng.Float64()
	if u < 1e-6 {
		u = 1e-6
	}
	size := int(float64(mean) / 2 / math.Sqrt(u))
	if size < 3 {
		size = 3
	}
	if size > mean*10 {
		size = mean * 10
	}
	return size
}
