package webgen

import (
	"strings"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
)

func TestGenerateSmallStructure(t *testing.T) {
	cfg := Small()
	cfg.Seed = 1
	w := Generate(cfg)
	dg := w.Graph
	if err := dg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// cfg.Sites ordinary sites plus the two agglomerate hosts.
	if got, want := dg.NumSites(), cfg.Sites+2; got != want {
		t.Errorf("NumSites = %d, want %d", got, want)
	}
	if len(w.Class) != dg.NumDocs() {
		t.Fatalf("Class length %d vs %d docs", len(w.Class), dg.NumDocs())
	}
	if w.CountClass(ClassDynamicAgglomerate) != cfg.DynamicClusterPages {
		t.Errorf("dynamic agglomerate pages = %d, want %d",
			w.CountClass(ClassDynamicAgglomerate), cfg.DynamicClusterPages)
	}
	if w.CountClass(ClassDocAgglomerate) != cfg.DocClusterPages {
		t.Errorf("doc agglomerate pages = %d, want %d",
			w.CountClass(ClassDocAgglomerate), cfg.DocClusterPages)
	}
	if w.CountClass(ClassHome) != cfg.Sites+2 {
		t.Errorf("home pages = %d, want %d", w.CountClass(ClassHome), cfg.Sites+2)
	}
	if got := w.CountClass(ClassAuthority); got != cfg.AuthorityPages {
		t.Errorf("authority pages = %d, want %d", got, cfg.AuthorityPages)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Small()
	cfg.Seed = 42
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Graph.NumDocs() != b.Graph.NumDocs() {
		t.Fatalf("doc counts differ: %d vs %d", a.Graph.NumDocs(), b.Graph.NumDocs())
	}
	if a.Graph.G.NumEdges() != b.Graph.G.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Graph.G.NumEdges(), b.Graph.G.NumEdges())
	}
	for d := range a.Graph.Docs {
		if a.Graph.Docs[d] != b.Graph.Docs[d] {
			t.Fatalf("doc %d differs", d)
		}
		if a.Class[d] != b.Class[d] {
			t.Fatalf("class of doc %d differs", d)
		}
	}
	c := cfg
	c.Seed = 43
	other := Generate(c)
	if other.Graph.G.NumEdges() == a.Graph.G.NumEdges() &&
		other.Graph.NumDocs() == a.Graph.NumDocs() {
		// Sizes may coincide; require at least some doc difference.
		same := true
		for d := range a.Graph.Docs {
			if a.Graph.Docs[d] != other.Graph.Docs[d] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical webs")
		}
	}
}

func TestAgglomerateHubInDegrees(t *testing.T) {
	cfg := Small()
	cfg.Seed = 7
	w := Generate(cfg)
	in := w.Graph.G.InDegrees()

	// The dynamic hubs must be among the highest in-degree pages: nearly
	// every cluster page links each hub.
	hubMin := cfg.DynamicClusterPages - 10
	var dynamicHubSeen bool
	for d, c := range w.Class {
		if c == ClassDynamicAgglomerate && in[d] >= hubMin {
			dynamicHubSeen = true
			break
		}
	}
	if !dynamicHubSeen {
		t.Errorf("no dynamic hub with in-degree ≥ %d found", hubMin)
	}

	var docHubSeen bool
	for d, c := range w.Class {
		if c == ClassDocAgglomerate && in[d] >= cfg.DocClusterPages-10 {
			docHubSeen = true
			break
		}
	}
	if !docHubSeen {
		t.Error("no javadoc index with near-cluster in-degree found")
	}

	// The main home must also be a strong hub (directory + breadcrumbs).
	if in[w.MainHome] < cfg.Sites {
		t.Errorf("main home in-degree = %d, want ≥ %d", in[w.MainHome], cfg.Sites)
	}
}

func TestSiteGraphStronglyConnectedViaDirectory(t *testing.T) {
	cfg := Small()
	cfg.Seed = 3
	w := Generate(cfg)
	sg := graph.DeriveSiteGraph(w.Graph, graph.SiteGraphOptions{})
	if _, n := matrix.StrongComponents(sg.G); n != 1 {
		t.Errorf("SiteGraph has %d strongly connected components, want 1", n)
	}
}

func TestURLNamingMatchesPaperPatterns(t *testing.T) {
	cfg := Small()
	cfg.Seed = 9
	w := Generate(cfg)
	var sawWebdriver, sawJavadoc bool
	for _, doc := range w.Graph.Docs {
		if strings.Contains(doc.URL, "/research/Webdriver?") {
			sawWebdriver = true
		}
		if strings.Contains(doc.URL, "jdk1.4/docs/api/") {
			sawJavadoc = true
		}
	}
	if !sawWebdriver || !sawJavadoc {
		t.Errorf("agglomerate URL patterns missing: webdriver=%v javadoc=%v",
			sawWebdriver, sawJavadoc)
	}
}

func TestSpamFlags(t *testing.T) {
	cfg := Small()
	cfg.Seed = 5
	w := Generate(cfg)
	flags := w.SpamFlags()
	var n int
	for _, f := range flags {
		if f {
			n++
		}
	}
	if want := cfg.DynamicClusterPages + cfg.DocClusterPages; n != want {
		t.Errorf("spam flags = %d, want %d", n, want)
	}
}

func TestDisabledAgglomerates(t *testing.T) {
	cfg := Small()
	cfg.Seed = 2
	cfg.DynamicClusterPages = 0
	cfg.DocClusterPages = 0
	w := Generate(cfg)
	if got := w.CountClass(ClassDynamicAgglomerate) + w.CountClass(ClassDocAgglomerate); got != 0 {
		t.Errorf("agglomerate pages = %d with clusters disabled", got)
	}
	if got, want := w.Graph.NumSites(), cfg.Sites; got != want {
		t.Errorf("NumSites = %d, want %d (no agglomerate hosts)", got, want)
	}
}

func TestDefaultsApplied(t *testing.T) {
	w := Generate(Config{Seed: 1, Sites: 5, MeanSitePages: 5,
		DynamicClusterPages: 10, DocClusterPages: 10})
	if w.Graph.NumDocs() == 0 {
		t.Fatal("empty web")
	}
	// Power-law sizes: every ordinary site has at least 3 pages.
	for s := 0; s < 5; s++ {
		if w.Graph.SiteSize(graph.SiteID(s)) < 3 {
			t.Errorf("site %d has %d pages", s, w.Graph.SiteSize(graph.SiteID(s)))
		}
	}
}
