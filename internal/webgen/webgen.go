// Package webgen generates synthetic campus-web graphs that stand in for
// the paper's 2003 EPFL crawl (218 sites, 433,707 pages), which is not
// available. The generator reproduces the structural features the §3.3
// evaluation depends on:
//
//   - a hierarchical site structure with power-law site sizes and
//     home-page hubs (the "inherently hierarchical" Web of §2.2),
//   - a main university site whose home page and service pages (place,
//     search, news, anniversary, ...) receive organic cross-site links —
//     the pages Figure 4 surfaces,
//   - "Webdriver"-style dynamic-page agglomerates: thousands of
//     server-side-script pages under one URL prefix, heavily interlinked,
//     concentrating link mass on a few hub pages (the pages with 17,004
//     in-links that dominate Figure 3),
//   - javadoc-style documentation clusters: dense intra-linked page sets
//     whose index pages accumulate thousands of in-links (the jdk1.4
//     javadoc pages of Figure 3).
//
// Every document carries a ground-truth class so experiments can measure
// spam contamination objectively. Generation is fully deterministic given
// the seed.
package webgen

import (
	"fmt"
	"math"
	"math/rand"

	"lmmrank/internal/graph"
)

// PageClass is the ground-truth role of a generated page.
type PageClass uint8

// Page classes. Agglomerate classes are the "spam" the paper's §3.3
// discusses; they are not necessarily malicious (javadocs are legitimate
// content) but their link structure spams flat PageRank.
const (
	ClassNormal PageClass = iota + 1
	ClassHome
	ClassAuthority
	ClassDynamicAgglomerate
	ClassDocAgglomerate
)

// String returns a short human-readable class name.
func (c PageClass) String() string {
	switch c {
	case ClassNormal:
		return "normal"
	case ClassHome:
		return "home"
	case ClassAuthority:
		return "authority"
	case ClassDynamicAgglomerate:
		return "dynamic-agglomerate"
	case ClassDocAgglomerate:
		return "doc-agglomerate"
	default:
		return fmt.Sprintf("PageClass(%d)", uint8(c))
	}
}

// IsAgglomerate reports whether the class is one of the link-mass
// agglomerates that inflate flat PageRank.
func (c PageClass) IsAgglomerate() bool {
	return c == ClassDynamicAgglomerate || c == ClassDocAgglomerate
}

// Config parameterizes generation. The zero value is replaced by Default.
type Config struct {
	// Seed drives the deterministic RNG.
	Seed int64
	// Sites is the number of Web sites (default 218, the paper's count).
	Sites int
	// MeanSitePages is the mean page count of an ordinary site; actual
	// sizes follow a discrete Pareto-like distribution (default 60).
	MeanSitePages int
	// AuthorityPages is the number of service pages on the main site that
	// receive organic cross-site links (default 12).
	AuthorityPages int
	// IntraLinksPerPage is the average number of extra random intra-site
	// links per page beyond the navigation backbone (default 3).
	IntraLinksPerPage int
	// InterLinkFraction is the probability that an ordinary page also
	// carries one cross-site link to an authority target (default 0.25).
	InterLinkFraction float64
	// DynamicClusterPages is the size of the Webdriver-style agglomerate
	// (default 2500; 0 disables it).
	DynamicClusterPages int
	// DocClusterPages is the size of the javadoc-style agglomerate
	// (default 2500; 0 disables it).
	DocClusterPages int
	// Campuses is the number of independent campus domains (default 1).
	// With K > 1 the generator exercises the Web's self-similarity (§2.2):
	// each campus is a scaled copy under its own domain
	// (campus.example, campus2.example, ...), cross-linked through the
	// main home pages; agglomerates exist only on the first campus. Sites
	// counts all ordinary sites per campus.
	Campuses int
	// Blocky switches to the planted-block generator: Sites sites whose
	// cross-site links stay inside Blocks coupling blocks except with
	// probability InterBlockFraction. Hostnames carry no block
	// information and blocks are contiguous in SiteID, so hostname-order
	// placement scatters every block — the regime where partition choice
	// matters. Campus features (authorities, agglomerates) are absent in
	// this mode.
	Blocky bool
	// Blocks is the number of planted coupling blocks (default 8; Blocky
	// mode only).
	Blocks int
	// InterBlockFraction is the probability that a cross-site link
	// escapes its block (default 0.05; Blocky mode only).
	InterBlockFraction float64
}

// Default returns the default configuration at laptop scale: the paper's
// 218 sites with smaller per-site page counts (~16k pages total).
func Default() Config {
	return Config{
		Sites:               218,
		MeanSitePages:       60,
		AuthorityPages:      12,
		IntraLinksPerPage:   3,
		InterLinkFraction:   0.25,
		DynamicClusterPages: 2500,
		DocClusterPages:     2500,
	}
}

// Small returns a reduced configuration for unit tests: ~20 sites, a few
// hundred pages, scaled-down agglomerates.
func Small() Config {
	return Config{
		Sites:               20,
		MeanSitePages:       15,
		AuthorityPages:      4,
		IntraLinksPerPage:   2,
		InterLinkFraction:   0.25,
		DynamicClusterPages: 120,
		DocClusterPages:     120,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Sites == 0 {
		c.Sites = d.Sites
	}
	if c.MeanSitePages == 0 {
		c.MeanSitePages = d.MeanSitePages
	}
	if c.AuthorityPages == 0 {
		c.AuthorityPages = d.AuthorityPages
	}
	if c.IntraLinksPerPage == 0 {
		c.IntraLinksPerPage = d.IntraLinksPerPage
	}
	if c.InterLinkFraction == 0 {
		c.InterLinkFraction = d.InterLinkFraction
	}
	if c.Campuses == 0 {
		c.Campuses = 1
	}
	if c.Blocky {
		if c.Blocks == 0 {
			c.Blocks = 8
		}
		if c.InterBlockFraction == 0 {
			c.InterBlockFraction = 0.05
		}
	}
	return c
}

// Web is a generated campus web with ground truth.
type Web struct {
	// Graph is the document graph.
	Graph *graph.DocGraph
	// Class holds the ground-truth class per DocID.
	Class []PageClass
	// MainHome is the DocID of the main site's home page.
	MainHome graph.DocID
	// BlockOf is the planted coupling block per SiteID (Blocky mode
	// only; nil for campus webs) — the ground truth partition-quality
	// experiments compare recovered shards against.
	BlockOf []int
}

// SpamFlags returns the per-document agglomerate flags used by the
// contamination metric.
func (w *Web) SpamFlags() []bool {
	out := make([]bool, len(w.Class))
	for i, c := range w.Class {
		out[i] = c.IsAgglomerate()
	}
	return out
}

// CountClass returns how many pages carry the given class.
func (w *Web) CountClass(c PageClass) int {
	var n int
	for _, x := range w.Class {
		if x == c {
			n++
		}
	}
	return n
}

// gen carries generation state.
type gen struct {
	cfg    Config
	rng    *rand.Rand
	b      *graph.Builder
	campus int
	class  map[graph.DocID]PageClass
	// prefTargets is the repeated-node list implementing preferential
	// attachment: a doc appears once per in-link received, so uniform
	// sampling is degree-proportional.
	prefTargets []graph.DocID
}

// Generate builds a synthetic campus web (or a planted-block web when
// cfg.Blocky is set).
func Generate(cfg Config) *Web {
	cfg = cfg.withDefaults()
	if cfg.Blocky {
		return generateBlocky(cfg)
	}
	g := &gen{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		b:     graph.NewBuilder(),
		class: make(map[graph.DocID]PageClass),
	}

	var campusHomes []graph.DocID
	for c := 0; c < cfg.Campuses; c++ {
		g.campus = c
		mainHome, siteHomes, sitePages := g.buildSites()
		g.linkDirectory(mainHome, siteHomes)
		authorities := g.buildAuthorities(mainHome)
		g.linkMainSiteNav(sitePages[0], authorities)
		g.linkOrganicCrossSite(sitePages, siteHomes, authorities, mainHome)
		campusHomes = append(campusHomes, mainHome)
	}
	g.campus = 0
	if cfg.DynamicClusterPages > 0 {
		g.buildDynamicAgglomerate(cfg.DynamicClusterPages)
	}
	if cfg.DocClusterPages > 0 {
		g.buildDocAgglomerate(cfg.DocClusterPages)
	}
	// Cross-campus fabric: every campus main home links every other — the
	// universities know each other — keeping the domain graph strongly
	// connected.
	for _, a := range campusHomes {
		for _, b := range campusHomes {
			if a != b {
				g.b.LinkIDs(a, b)
				g.noteTarget(b)
			}
		}
	}
	mainHome := campusHomes[0]

	dg := g.b.Build()
	w := &Web{
		Graph:    dg,
		Class:    make([]PageClass, dg.NumDocs()),
		MainHome: mainHome,
	}
	for d := range w.Class {
		w.Class[d] = ClassNormal
	}
	for d, c := range g.class {
		w.Class[d] = c
	}
	return w
}

// domainName returns the registrable domain of campus c.
func domainName(c int) string {
	if c == 0 {
		return "campus.example"
	}
	return fmt.Sprintf("campus%d.example", c+1)
}

// siteName returns the host of ordinary site s on the current campus;
// site 0 is the campus main site.
func (g *gen) siteName(s int) string {
	if s == 0 {
		return "www." + domainName(g.campus)
	}
	return fmt.Sprintf("dept%03d.%s", s, domainName(g.campus))
}

// buildSites creates all sites with their internal navigation structure
// and returns the main home, each site's home, and each site's page list.
func (g *gen) buildSites() (graph.DocID, []graph.DocID, [][]graph.DocID) {
	cfg := g.cfg
	siteHomes := make([]graph.DocID, cfg.Sites)
	sitePages := make([][]graph.DocID, cfg.Sites)

	for s := 0; s < cfg.Sites; s++ {
		host := g.siteName(s)
		n := g.siteSize(s)
		pages := make([]graph.DocID, 0, n)

		home := g.b.AddDocInSite(fmt.Sprintf("http://%s/", host), host)
		g.class[home] = ClassHome
		pages = append(pages, home)
		g.noteTarget(home)

		for p := 1; p < n; p++ {
			d := g.b.AddDocInSite(fmt.Sprintf("http://%s/page%d.html", host, p), host)
			pages = append(pages, d)
			// Navigation backbone: parent ↔ child. Parents are earlier
			// pages, biased toward the home page, giving homes hub
			// in-degree as on real sites.
			parent := home
			if p > 1 && g.rng.Float64() > 0.4 {
				parent = pages[g.rng.Intn(p)]
			}
			g.b.LinkIDs(parent, d)
			g.b.LinkIDs(d, parent)
			g.noteTarget(d)
			g.noteTarget(parent)
			// Breadcrumb: every page links home.
			g.b.LinkIDs(d, home)
			g.noteTarget(home)
		}

		// Extra random intra-site links with preferential attachment
		// restricted to this site.
		extra := cfg.IntraLinksPerPage * len(pages)
		for e := 0; e < extra; e++ {
			from := pages[g.rng.Intn(len(pages))]
			to := pages[g.rng.Intn(len(pages))]
			if g.rng.Float64() < 0.5 {
				// Half the extra links chase popular local pages.
				to = g.prefLocal(pages)
			}
			if from != to {
				g.b.LinkIDs(from, to)
				g.noteTarget(to)
			}
		}

		siteHomes[s] = home
		sitePages[s] = pages
	}
	return siteHomes[0], siteHomes, sitePages
}

// siteSize draws a Pareto-like discrete size; the main site is an order of
// magnitude larger, as university main sites are.
func (g *gen) siteSize(s int) int {
	mean := g.cfg.MeanSitePages
	if s == 0 {
		return mean * 8
	}
	// Discrete Pareto with exponent 2 (finite mean ≈ mean): size =
	// (mean/2)·u^(−1/2), truncated to keep the total laptop-sized.
	u := g.rng.Float64()
	if u < 1e-6 {
		u = 1e-6
	}
	size := int(float64(mean) / 2 / math.Sqrt(u))
	if size < 3 {
		size = 3
	}
	if size > mean*20 {
		size = mean * 20
	}
	return size
}

// linkDirectory wires the main site's directory to every site home and
// each home back to the main home, the "every department links the
// university and vice versa" convention that keeps the SiteGraph strongly
// connected.
func (g *gen) linkDirectory(mainHome graph.DocID, siteHomes []graph.DocID) {
	for s, home := range siteHomes {
		if s == 0 {
			continue
		}
		g.b.LinkIDs(mainHome, home)
		g.b.LinkIDs(home, mainHome)
		g.noteTarget(home)
		g.noteTarget(mainHome)
	}
}

// authorityPaths name the main-site service pages after the Figure 4
// winners.
var authorityPaths = []string{
	"place.html", "styles/dynastyle.php", "150/", "impressum.html",
	"news/", "search/", "events/", "journal/", "press/", "vp-education/",
	"library/", "campus-map/", "student-bar/", "associations/", "jobs/",
	"directory/",
}

// buildAuthorities creates the main site's service pages and links them
// from the main home.
func (g *gen) buildAuthorities(mainHome graph.DocID) []graph.DocID {
	host := g.siteName(0)
	n := g.cfg.AuthorityPages
	if n > len(authorityPaths) {
		n = len(authorityPaths)
	}
	out := make([]graph.DocID, 0, n)
	for i := 0; i < n; i++ {
		d := g.b.AddDocInSite(fmt.Sprintf("http://%s/%s", host, authorityPaths[i]), host)
		g.class[d] = ClassAuthority
		g.b.LinkIDs(mainHome, d)
		g.b.LinkIDs(d, mainHome)
		g.noteTarget(d)
		out = append(out, d)
	}
	return out
}

// linkMainSiteNav wires the main site's navigation bar: every page of the
// main site links a couple of service pages, making them locally popular —
// which is what lets the Layered Method surface them (Figure 4 lists
// place.html and styles/dynastyle.php right after the home page, pages
// every www page references).
func (g *gen) linkMainSiteNav(mainPages []graph.DocID, authorities []graph.DocID) {
	if len(authorities) == 0 {
		return
	}
	for _, p := range mainPages {
		for k := 0; k < 2; k++ {
			a := authorities[g.rng.Intn(len(authorities))]
			if a != p {
				g.b.LinkIDs(p, a)
				g.noteTarget(a)
			}
		}
	}
}

// linkOrganicCrossSite adds the organic inter-site links: ordinary pages
// referencing the main home, authorities, and popular site homes.
func (g *gen) linkOrganicCrossSite(sitePages [][]graph.DocID, siteHomes, authorities []graph.DocID, mainHome graph.DocID) {
	for s, pages := range sitePages {
		for _, p := range pages {
			if g.rng.Float64() >= g.cfg.InterLinkFraction {
				continue
			}
			target := g.crossSiteTarget(siteHomes, authorities, mainHome, s)
			if target != p {
				g.b.LinkIDs(p, target)
				g.noteTarget(target)
			}
		}
	}
}

// crossSiteTarget draws a destination for an organic cross-site link.
func (g *gen) crossSiteTarget(siteHomes, authorities []graph.DocID, mainHome graph.DocID, fromSite int) graph.DocID {
	r := g.rng.Float64()
	switch {
	case r < 0.30:
		return mainHome
	case r < 0.55 && len(authorities) > 0:
		return authorities[g.rng.Intn(len(authorities))]
	case r < 0.85:
		// Popular site home via preferential attachment over all noted
		// targets that happen to be homes; fall back to uniform.
		for tries := 0; tries < 8; tries++ {
			d := g.pref()
			if g.class[d] == ClassHome {
				return d
			}
		}
		return siteHomes[g.rng.Intn(len(siteHomes))]
	default:
		return g.pref() // any popular page
	}
}

// buildDynamicAgglomerate reproduces the research.epfl.ch "Webdriver"
// pattern: a large set of server-side-script pages under one prefix,
// each linking to a handful of cluster mates, with a few hub pages that
// nearly every cluster page references (the 17,004-in-link pages of
// Figure 3). The cluster lives on a legitimate site that also carries a
// normal (small) page set.
func (g *gen) buildDynamicAgglomerate(size int) {
	host := "research." + domainName(0)
	home := g.b.AddDocInSite(fmt.Sprintf("http://%s/", host), host)
	g.class[home] = ClassHome
	g.noteTarget(home)

	pages := make([]graph.DocID, size)
	for i := range pages {
		d := g.b.AddDocInSite(
			fmt.Sprintf("http://%s/research/Webdriver?LO=%d&MIval=x%d", host, i, i), host)
		g.class[d] = ClassDynamicAgglomerate
		pages[i] = d
	}
	nHubs := 4
	if size < 16 {
		nHubs = 1
	}
	hubs := pages[:nHubs]
	for i, d := range pages {
		// Every dynamic page points at (almost) every hub — the
		// agglomerate in-degree explosion.
		for _, h := range hubs {
			if h != d {
				g.b.LinkIDs(d, h)
			}
		}
		// A few random cluster mates, forming the entangled mesh.
		for k := 0; k < 4; k++ {
			to := pages[g.rng.Intn(size)]
			if to != d {
				g.b.LinkIDs(d, to)
			}
		}
		// Chain neighbours for navigability.
		if i+1 < size {
			g.b.LinkIDs(d, pages[i+1])
		}
		g.b.LinkIDs(d, home)
	}
	// The site home exposes the script entry points.
	for _, h := range hubs {
		g.b.LinkIDs(home, h)
	}
	g.b.LinkIDs(home, g.mainHomeID())
	g.b.LinkIDs(g.mainHomeID(), home)
}

// buildDocAgglomerate reproduces the lamp.epfl.ch javadoc pattern: a
// mirrored documentation tree whose index pages are linked from every
// other page of the mirror (the 6,425-in-link javadoc page of Figure 3).
func (g *gen) buildDocAgglomerate(size int) {
	host := "docs." + domainName(0)
	home := g.b.AddDocInSite(fmt.Sprintf("http://%s/", host), host)
	g.class[home] = ClassHome
	g.noteTarget(home)

	pages := make([]graph.DocID, size)
	for i := range pages {
		d := g.b.AddDocInSite(
			fmt.Sprintf("http://%s/~linuxsoft/java/jdk1.4/docs/api/class%d.html", host, i), host)
		g.class[d] = ClassDocAgglomerate
		pages[i] = d
	}
	nIndex := 3
	if size < 12 {
		nIndex = 1
	}
	indexes := pages[:nIndex]
	for i, d := range pages {
		// Javadoc chrome: every page links the index frames.
		for _, ix := range indexes {
			if ix != d {
				g.b.LinkIDs(d, ix)
			}
		}
		// Cross-references to related classes.
		for k := 0; k < 4; k++ {
			to := pages[g.rng.Intn(size)]
			if to != d {
				g.b.LinkIDs(d, to)
			}
		}
		if i+1 < size {
			g.b.LinkIDs(d, pages[i+1])
		}
	}
	// Index pages link the package tree root and the site home.
	for _, ix := range indexes {
		g.b.LinkIDs(ix, home)
		g.b.LinkIDs(home, ix)
	}
	g.b.LinkIDs(home, g.mainHomeID())
	g.b.LinkIDs(g.mainHomeID(), home)
}

// mainHomeID looks up the main home (always the first doc added).
func (g *gen) mainHomeID() graph.DocID {
	d, _ := g.b.Doc("http://www." + domainName(0) + "/")
	return d
}

// noteTarget records one received link for preferential attachment.
func (g *gen) noteTarget(d graph.DocID) {
	g.prefTargets = append(g.prefTargets, d)
}

// pref draws a document proportionally to its recorded in-link count.
func (g *gen) pref() graph.DocID {
	return g.prefTargets[g.rng.Intn(len(g.prefTargets))]
}

// prefLocal draws a popular page restricted to the given site's pages; it
// falls back to uniform choice after a few rejected draws.
func (g *gen) prefLocal(pages []graph.DocID) graph.DocID {
	lo, hi := pages[0], pages[len(pages)-1]
	for tries := 0; tries < 6; tries++ {
		d := g.pref()
		if d >= lo && d <= hi {
			return d
		}
	}
	return pages[g.rng.Intn(len(pages))]
}
