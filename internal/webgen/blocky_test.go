package webgen

import (
	"testing"

	"lmmrank/internal/graph"
)

func blockyCfg(seed int64) Config {
	return Config{
		Seed:              seed,
		Blocky:            true,
		Sites:             40,
		Blocks:            5,
		MeanSitePages:     10,
		IntraLinksPerPage: 2,
		InterLinkFraction: 0.3,
	}
}

func TestBlockyPlantsBlockStructure(t *testing.T) {
	w := Generate(blockyCfg(3))
	dg := w.Graph
	if dg.NumSites() != 40 {
		t.Fatalf("NumSites = %d, want 40", dg.NumSites())
	}
	if len(w.BlockOf) != 40 {
		t.Fatalf("BlockOf length %d, want 40", len(w.BlockOf))
	}
	seen := map[int]bool{}
	for _, b := range w.BlockOf {
		if b < 0 || b >= 5 {
			t.Fatalf("block %d out of range", b)
		}
		seen[b] = true
	}
	if len(seen) != 5 {
		t.Errorf("only %d of 5 blocks populated", len(seen))
	}

	// The planted structure must dominate: inter-site link weight inside
	// blocks far exceeds the escaping weight.
	sg := graph.DeriveSiteGraph(dg, graph.SiteGraphOptions{DropSelfLoops: true})
	var intra, inter float64
	sg.G.EachEdgeAll(func(from int, e graph.Edge) {
		if w.BlockOf[from] == w.BlockOf[e.To] {
			intra += e.Weight
		} else {
			inter += e.Weight
		}
	})
	if intra == 0 || inter == 0 {
		t.Fatalf("degenerate block web: intra %g, inter %g", intra, inter)
	}
	if inter > 0.25*intra {
		t.Errorf("inter-block weight %g not small next to intra-block %g", inter, intra)
	}
}

func TestBlockyDeterministic(t *testing.T) {
	a := Generate(blockyCfg(9))
	b := Generate(blockyCfg(9))
	if a.Graph.NumDocs() != b.Graph.NumDocs() || a.Graph.G.NumEdges() != b.Graph.G.NumEdges() {
		t.Errorf("same seed differs: %d/%d docs, %d/%d edges",
			a.Graph.NumDocs(), b.Graph.NumDocs(), a.Graph.G.NumEdges(), b.Graph.G.NumEdges())
	}
}

func TestBlockyClassicModeUnaffected(t *testing.T) {
	w := Generate(Config{Seed: 4, Sites: 10, MeanSitePages: 8, DynamicClusterPages: 20, DocClusterPages: 20})
	if w.BlockOf != nil {
		t.Errorf("campus web has BlockOf = %v, want nil", w.BlockOf)
	}
}
