package crawler

import (
	"strings"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/webgen"
)

// smallWeb generates the crawl target.
func smallWeb(seed int64) *webgen.Web {
	cfg := webgen.Small()
	cfg.Seed = seed
	return webgen.Generate(cfg)
}

func TestCrawlReconstructsReachableWeb(t *testing.T) {
	web := smallWeb(1)
	f := NewSnapshotFetcher(web.Graph)
	got, stats, err := Crawl(f, Config{Seeds: []string{"http://www.campus.example/"}})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if stats.Failed != 0 || stats.SkippedQueries != 0 {
		t.Errorf("stats = %+v", stats)
	}
	// The generator links every site home from the main directory, so the
	// crawl should capture (nearly) the whole web; pages with no in-links
	// are unreachable by construction of the generator only if isolated.
	if got.NumDocs() < web.Graph.NumDocs()*95/100 {
		t.Errorf("captured %d of %d docs", got.NumDocs(), web.Graph.NumDocs())
	}
	if got.NumSites() != web.Graph.NumSites() {
		t.Errorf("captured %d of %d sites", got.NumSites(), web.Graph.NumSites())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCrawlPreservesRanking(t *testing.T) {
	// Ranking the crawled snapshot must agree with ranking the original
	// reachable graph: same top documents by URL.
	web := smallWeb(2)
	f := NewSnapshotFetcher(web.Graph)
	crawled, _, err := Crawl(f, Config{Seeds: []string{"http://www.campus.example/"}})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	orig, err := lmm.LayeredDocRank(web.Graph, lmm.WebConfig{Tol: 1e-10})
	if err != nil {
		t.Fatalf("orig rank: %v", err)
	}
	snap, err := lmm.LayeredDocRank(crawled, lmm.WebConfig{Tol: 1e-10})
	if err != nil {
		t.Fatalf("snapshot rank: %v", err)
	}
	topOrig := topURL(web.Graph, orig.DocRank)
	topSnap := topURL(crawled, snap.DocRank)
	if topOrig != topSnap {
		t.Errorf("top URL changed across crawl: %q vs %q", topOrig, topSnap)
	}
}

func topURL(dg *graph.DocGraph, scores []float64) string {
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return dg.Docs[best].URL
}

func TestMaxPagesTruncates(t *testing.T) {
	web := smallWeb(3)
	f := NewSnapshotFetcher(web.Graph)
	got, stats, err := Crawl(f, Config{
		Seeds:    []string{"http://www.campus.example/"},
		MaxPages: 20,
	})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if stats.Fetched != 20 {
		t.Errorf("Fetched = %d, want 20", stats.Fetched)
	}
	if stats.TruncatedFrontier == 0 {
		t.Error("expected a truncated frontier")
	}
	// Discovered-but-unfetched pages are dangling docs, like a stopped
	// real crawl.
	if len(got.G.Dangling()) == 0 {
		t.Error("expected dangling frontier docs")
	}
}

func TestMaxDepthLimitsExpansion(t *testing.T) {
	web := smallWeb(4)
	f := NewSnapshotFetcher(web.Graph)
	shallow, _, err := Crawl(f, Config{
		Seeds:    []string{"http://www.campus.example/"},
		MaxDepth: 1,
	})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	deep, _, err := Crawl(f, Config{
		Seeds:    []string{"http://www.campus.example/"},
		MaxDepth: 3,
	})
	if err != nil {
		t.Fatalf("Crawl deep: %v", err)
	}
	if shallow.NumDocs() >= deep.NumDocs() {
		t.Errorf("depth 1 captured %d ≥ depth 3's %d", shallow.NumDocs(), deep.NumDocs())
	}
}

func TestExcludeQueriesDropsDynamicPages(t *testing.T) {
	// The ablation the paper argues against: excluding server-side-script
	// URLs removes the Webdriver agglomerate entirely.
	web := smallWeb(5)
	f := NewSnapshotFetcher(web.Graph)
	got, stats, err := Crawl(f, Config{
		Seeds:          []string{"http://www.campus.example/"},
		ExcludeQueries: true,
	})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if stats.SkippedQueries == 0 {
		t.Error("no query URLs skipped")
	}
	for _, doc := range got.Docs {
		if strings.Contains(doc.URL, "?") {
			t.Fatalf("query URL captured: %s", doc.URL)
		}
	}
}

func TestFailureInjection(t *testing.T) {
	web := smallWeb(6)
	f := NewSnapshotFetcher(web.Graph)
	// Break one departmental home: its site is still discovered (the
	// directory links it) but contributes no out-links.
	broken := "http://dept003.campus.example/"
	f.Fail = map[string]bool{broken: true}
	got, stats, err := Crawl(f, Config{Seeds: []string{"http://www.campus.example/"}})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if stats.Failed != 1 {
		t.Errorf("Failed = %d, want 1", stats.Failed)
	}
	for d, doc := range got.Docs {
		if doc.URL == broken {
			if got.G.OutDegree(d) != 0 {
				t.Errorf("broken page has %d out-links", got.G.OutDegree(d))
			}
		}
	}
}

func TestCrawlDeterministic(t *testing.T) {
	web := smallWeb(7)
	f := NewSnapshotFetcher(web.Graph)
	a, _, err := Crawl(f, Config{Seeds: []string{"http://www.campus.example/"}, MaxPages: 50})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	b, _, err := Crawl(f, Config{Seeds: []string{"http://www.campus.example/"}, MaxPages: 50})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if a.NumDocs() != b.NumDocs() || a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("crawl not deterministic")
	}
	for d := range a.Docs {
		if a.Docs[d] != b.Docs[d] {
			t.Fatalf("doc %d differs between runs", d)
		}
	}
}

func TestCrawlRequiresSeeds(t *testing.T) {
	if _, _, err := Crawl(NewSnapshotFetcher(smallWeb(8).Graph), Config{}); err == nil {
		t.Fatal("seedless crawl accepted")
	}
}

func TestUnknownSeedCountsAsFailed(t *testing.T) {
	f := NewSnapshotFetcher(smallWeb(9).Graph)
	got, stats, err := Crawl(f, Config{Seeds: []string{"http://nowhere.example/"}})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if stats.Failed != 1 || stats.Fetched != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if got.NumDocs() != 1 {
		t.Errorf("captured %d docs, want just the seed", got.NumDocs())
	}
}

func TestMultiplicityPreserved(t *testing.T) {
	// Two parallel links from one page must survive the crawl so that
	// SiteLink counting matches the original.
	b := graph.NewBuilder()
	from := b.AddDoc("http://a.ex/")
	to := b.AddDoc("http://b.ex/")
	b.LinkIDs(from, to)
	b.LinkIDs(from, to)
	b.LinkIDs(to, from)
	dg := b.Build()

	crawled, _, err := Crawl(NewSnapshotFetcher(dg), Config{Seeds: []string{"http://a.ex/"}})
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	var weight float64
	crawled.G.EachEdge(0, func(e graph.Edge) { weight += e.Weight })
	if weight != 2 {
		t.Errorf("edge weight = %g, want 2 (multiplicity preserved)", weight)
	}
}
