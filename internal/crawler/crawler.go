// Package crawler acquires DocGraphs the way the paper's dataset was
// built (§3.3): breadth-first crawling from seed URLs, following
// hyperlinks and recording every discovered page. Two details the paper
// discusses are modeled explicitly:
//
//   - dynamic pages are crawled by default ("without including them, the
//     captured Web graph would be a rather skewed one"), with an
//     ExcludeQueries option reproducing the convention other studies used;
//   - dynamic-page traps are cut off by a page budget ("researchers
//     usually let the crawler run and then stop it after it has been
//     running for a period of time") — MaxPages plays that role
//     deterministically.
//
// The Fetcher interface abstracts the web being crawled; SnapshotFetcher
// serves a synthetic web (e.g. package webgen's output) with optional
// failure injection, standing in for live HTTP.
package crawler

import (
	"errors"
	"fmt"

	"lmmrank/internal/graph"
)

// ErrNotFound is the canonical fetch failure for unknown URLs.
var ErrNotFound = errors.New("crawler: page not found")

// Fetcher retrieves the out-links of one page. Implementations must be
// safe for sequential reuse; the crawler is single-threaded by design so
// crawls are reproducible.
type Fetcher interface {
	Fetch(url string) (links []string, err error)
}

// Config parameterizes a crawl.
type Config struct {
	// Seeds are the starting URLs (the paper used www.epfl.ch).
	Seeds []string
	// MaxPages bounds the number of fetched pages (0 = unlimited) — the
	// dynamic-page-trap cutoff.
	MaxPages int
	// MaxDepth bounds the BFS depth from the seeds (0 = unlimited).
	MaxDepth int
	// ExcludeQueries skips URLs containing '?' — the dynamic-page
	// exclusion convention the paper argues against; exposed for the
	// ablation.
	ExcludeQueries bool
}

// Stats summarizes a finished crawl.
type Stats struct {
	// Fetched pages contributed out-links to the graph.
	Fetched int
	// Failed fetches (pages remain in the graph as dangling nodes, as in
	// a real crawl snapshot).
	Failed int
	// SkippedQueries counts URLs dropped by ExcludeQueries.
	SkippedQueries int
	// TruncatedFrontier is the number of discovered-but-unfetched URLs
	// left when the budget ran out.
	TruncatedFrontier int
}

// Crawl runs a deterministic breadth-first crawl and returns the captured
// DocGraph. Discovered-but-unfetched pages appear as dangling documents,
// exactly like a stopped real crawl.
func Crawl(f Fetcher, cfg Config) (*graph.DocGraph, Stats, error) {
	if len(cfg.Seeds) == 0 {
		return nil, Stats{}, fmt.Errorf("crawler: no seeds")
	}
	b := graph.NewBuilder()
	var stats Stats

	type item struct {
		url   string
		depth int
	}
	seen := make(map[string]bool)
	var frontier []item
	enqueue := func(url string, depth int) {
		if seen[url] {
			return
		}
		if cfg.ExcludeQueries && hasQuery(url) {
			stats.SkippedQueries++
			seen[url] = true
			return
		}
		seen[url] = true
		b.AddDoc(url)
		frontier = append(frontier, item{url: url, depth: depth})
	}
	for _, s := range cfg.Seeds {
		enqueue(s, 0)
	}

	for len(frontier) > 0 {
		if cfg.MaxPages > 0 && stats.Fetched >= cfg.MaxPages {
			stats.TruncatedFrontier = len(frontier)
			break
		}
		cur := frontier[0]
		frontier = frontier[1:]
		if cfg.MaxDepth > 0 && cur.depth >= cfg.MaxDepth {
			continue
		}
		links, err := f.Fetch(cur.url)
		if err != nil {
			stats.Failed++
			continue
		}
		stats.Fetched++
		for _, target := range links {
			if cfg.ExcludeQueries && hasQuery(target) {
				if !seen[target] {
					stats.SkippedQueries++
					seen[target] = true
				}
				continue
			}
			enqueue(target, cur.depth+1)
			b.AddLink(cur.url, target)
		}
	}
	dg := b.Build()
	if err := dg.Validate(); err != nil {
		return nil, stats, fmt.Errorf("crawler: captured graph invalid: %w", err)
	}
	return dg, stats, nil
}

func hasQuery(url string) bool {
	for i := 0; i < len(url); i++ {
		if url[i] == '?' {
			return true
		}
	}
	return false
}

// SnapshotFetcher serves a fixed DocGraph as a virtual web, with optional
// failure injection for crash-consistency tests.
type SnapshotFetcher struct {
	dg    *graph.DocGraph
	byURL map[string]graph.DocID
	// Fail marks URLs whose fetch returns an error (simulating timeouts,
	// 5xx responses, robots exclusions).
	Fail map[string]bool
}

var _ Fetcher = (*SnapshotFetcher)(nil)

// NewSnapshotFetcher indexes a DocGraph for serving.
func NewSnapshotFetcher(dg *graph.DocGraph) *SnapshotFetcher {
	f := &SnapshotFetcher{
		dg:    dg,
		byURL: make(map[string]graph.DocID, dg.NumDocs()),
	}
	for d, doc := range dg.Docs {
		f.byURL[doc.URL] = graph.DocID(d)
	}
	return f
}

// Fetch implements Fetcher: it returns the snapshot's out-links for the
// URL, once per edge unit of weight (multiplicity preserved).
func (f *SnapshotFetcher) Fetch(url string) ([]string, error) {
	if f.Fail[url] {
		return nil, fmt.Errorf("crawler: injected failure for %s", url)
	}
	d, ok := f.byURL[url]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	var links []string
	f.dg.G.EachEdge(int(d), func(e graph.Edge) {
		target := f.dg.Docs[e.To].URL
		// Preserve link multiplicity so SiteLink counts survive the
		// crawl round-trip.
		for k := 0; k < int(e.Weight); k++ {
			links = append(links, target)
		}
	})
	return links, nil
}

// URL returns the snapshot URL of a document (test helper).
func (f *SnapshotFetcher) URL(d graph.DocID) string { return f.dg.Docs[d].URL }
