package blockrank

import (
	"math/rand"
	"testing"

	"lmmrank/internal/graph"
	"lmmrank/internal/lmm"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
	"lmmrank/internal/rankutil"
	"lmmrank/internal/webgen"
)

func smallWeb(t *testing.T, seed int64) *webgen.Web {
	t.Helper()
	cfg := webgen.Small()
	cfg.Seed = seed
	return webgen.Generate(cfg)
}

func TestComputeBasics(t *testing.T) {
	w := smallWeb(t, 1)
	res, err := Compute(w.Graph, Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !res.Scores.IsDistribution(1e-8) {
		t.Errorf("scores sum = %g", res.Scores.Sum())
	}
	if !res.Seed.IsDistribution(1e-8) {
		t.Errorf("seed sum = %g", res.Seed.Sum())
	}
	if !res.BlockRank.IsDistribution(1e-8) {
		t.Errorf("block rank sum = %g", res.BlockRank.Sum())
	}
	if len(res.LocalRanks) != w.Graph.NumSites() {
		t.Errorf("local ranks = %d", len(res.LocalRanks))
	}
	if res.GlobalIterations == 0 {
		t.Error("global refinement did not run")
	}
}

func TestRefinedMatchesGlobalPageRank(t *testing.T) {
	// BlockRank is an accelerator: its refined output must equal flat
	// PageRank (same fixed point), and the composed seed must start
	// closer to that fixed point than the uniform vector does. (Iteration
	// counts are not asserted: on small synthetic webs the asymptotic
	// rate, set by the subdominant eigenvalue, dominates the head start —
	// Kamvar et al.'s speedups come from web-scale block locality.)
	w := smallWeb(t, 2)
	res, err := Compute(w.Graph, Config{Tol: 1e-11})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	flat, err := pagerank.Graph(w.Graph.G, pagerank.Config{Tol: 1e-11})
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	if res.Scores.L1Diff(flat.Scores) > 1e-8 {
		t.Errorf("refined BlockRank deviates from PageRank: %g", res.Scores.L1Diff(flat.Scores))
	}
	uniform := matrix.Uniform(w.Graph.NumDocs())
	if res.Seed.L1Diff(flat.Scores) >= uniform.L1Diff(flat.Scores) {
		t.Errorf("seed (%.4f) is no closer to the fixed point than uniform (%.4f)",
			res.Seed.L1Diff(flat.Scores), uniform.L1Diff(flat.Scores))
	}
}

func TestSeedApproximatesGlobalOrder(t *testing.T) {
	w := smallWeb(t, 3)
	res, err := Compute(w.Graph, Config{SkipGlobalRefine: true})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if res.GlobalIterations != 0 {
		t.Error("refinement ran despite SkipGlobalRefine")
	}
	flat, err := pagerank.Graph(w.Graph.G, pagerank.Config{})
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	// The block approximation should correlate clearly with the true
	// ranking (Kamvar et al. report high agreement).
	tau := rankutil.KendallTau(res.Seed, flat.Scores)
	if tau < 0.5 {
		t.Errorf("seed vs flat Kendall τ = %.3f, want ≥ 0.5", tau)
	}
}

func TestBlockRankVsLayeredWeighting(t *testing.T) {
	// The paper's §3.2 distinction: BlockRank's block graph uses local-
	// PageRank-weighted edges, the LMM SiteGraph raw counts. On a web
	// where a site's links originate from low-ranked pages, the two site
	// rankings must differ.
	b := graph.NewBuilder()
	// Site a: home + popular page x; an obscure page z links out to c.
	b.AddLink("http://a.ex/", "http://a.ex/x")
	b.AddLink("http://a.ex/x", "http://a.ex/")
	b.AddLink("http://a.ex/", "http://a.ex/z")
	b.AddLink("http://a.ex/z", "http://c.ex/")
	// Site c links back so everything is connected.
	b.AddLink("http://c.ex/", "http://a.ex/")
	dg := b.Build()

	br, err := Compute(dg, Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	layered, err := lmm.LayeredDocRank(dg, lmm.WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	// Both are distributions over 2 sites but weighted differently; they
	// must not be numerically identical.
	if br.BlockRank.L1Diff(layered.SiteRank) < 1e-9 {
		t.Errorf("BlockRank block vector coincides with SiteRank: %v", br.BlockRank)
	}
}

func TestComputeRejectsEmptyGraph(t *testing.T) {
	dg := &graph.DocGraph{G: graph.NewDigraph(0)}
	if _, err := Compute(dg, Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestSingleDocBlocks(t *testing.T) {
	b := graph.NewBuilder()
	b.AddLink("http://x.ex/", "http://y.ex/")
	b.AddLink("http://y.ex/", "http://x.ex/")
	dg := b.Build()
	res, err := Compute(dg, Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !res.Scores.IsDistribution(1e-9) {
		t.Errorf("scores = %v", res.Scores)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	w := smallWeb(t, 4)
	a, err := Compute(w.Graph, Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	b, err := Compute(w.Graph, Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if a.Scores.L1Diff(b.Scores) != 0 {
		t.Error("BlockRank not deterministic")
	}
}

func TestRandomWebsProduceDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		cfg := webgen.Config{
			Seed: rng.Int63(), Sites: rng.Intn(10) + 3, MeanSitePages: 8,
			DynamicClusterPages: 30, DocClusterPages: 30,
		}
		w := webgen.Generate(cfg)
		res, err := Compute(w.Graph, Config{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Scores.IsDistribution(1e-7) {
			t.Errorf("trial %d: not a distribution", trial)
		}
	}
}
