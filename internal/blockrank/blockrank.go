// Package blockrank implements the BlockRank algorithm of Kamvar,
// Haveliwala, Manning and Golub ("Exploiting the block structure of the
// web for computing PageRank", 2003) — reference [9] of the paper and its
// closest prior work. The paper's §3.2 contrasts the two designs:
// BlockRank weighs the edge between two blocks by the *local PageRank* of
// the source pages, so the block-level computation must wait for all local
// computations (serialized); the LMM SiteGraph uses raw SiteLink counts,
// so SiteRank and local DocRanks can run in parallel.
//
// BlockRank is an accelerator, not a final ranking: the composed
// block×local vector seeds a standard global PageRank iteration. Both the
// seed vector and the refined global ranking are exposed so experiments
// can compare convergence behaviour and ranking quality.
package blockrank

import (
	"fmt"

	"lmmrank/internal/graph"
	"lmmrank/internal/matrix"
	"lmmrank/internal/pagerank"
)

// Config parameterizes BlockRank.
type Config struct {
	// Damping is the PageRank damping factor (0 = 0.85).
	Damping float64
	// Tol is the power-method tolerance (0 = matrix.DefaultTol).
	Tol float64
	// MaxIter bounds each power run (0 = matrix.DefaultMaxIter).
	MaxIter int
	// SkipGlobalRefine stops after composing the seed vector (the pure
	// block approximation), without the global PageRank pass.
	SkipGlobalRefine bool
}

func (c Config) pagerankConfig() pagerank.Config {
	return pagerank.Config{Damping: c.Damping, Tol: c.Tol, MaxIter: c.MaxIter}
}

// Result reports a BlockRank computation.
type Result struct {
	// BlockRank holds the block-level ranking (one entry per site).
	BlockRank matrix.Vector
	// LocalRanks holds per-block local PageRank vectors in local order.
	LocalRanks []matrix.Vector
	// Seed is the composed approximation blockRank(b)·local_b(d).
	Seed matrix.Vector
	// Scores is the final global ranking: equal to Seed when
	// SkipGlobalRefine, otherwise the global PageRank started from Seed.
	Scores matrix.Vector
	// GlobalIterations counts the refinement iterations (0 when skipped).
	GlobalIterations int
}

// Compute runs BlockRank over a DocGraph whose blocks are the Web sites.
//
// Steps (following the 2003 report): (1) local PageRank per block;
// (2) block graph whose edge b→c aggregates, for every cross-block link
// d→d', the local PageRank of d — this is the data dependency the paper
// points out; (3) block-level PageRank; (4) composition into a seed;
// (5) standard global PageRank from the seed.
func Compute(dg *graph.DocGraph, cfg Config) (*Result, error) {
	if err := dg.Validate(); err != nil {
		return nil, fmt.Errorf("blockrank: %w", err)
	}
	ns := dg.NumSites()
	if ns == 0 {
		return nil, fmt.Errorf("blockrank: empty graph")
	}

	// Step 1: local PageRanks (identical to the LMM's step 3).
	local := make([]matrix.Vector, ns)
	for s := 0; s < ns; s++ {
		sub, _ := dg.LocalSubgraph(graph.SiteID(s))
		switch sub.NumNodes() {
		case 0:
			local[s] = matrix.Vector{}
		case 1:
			local[s] = matrix.Vector{1}
		default:
			res, err := pagerank.Graph(sub, cfg.pagerankConfig())
			if err != nil {
				return nil, fmt.Errorf("blockrank: local rank of block %d: %w", s, err)
			}
			local[s] = res.Scores
		}
	}

	// Precompute each document's local index within its block.
	localIdx := make([]int, dg.NumDocs())
	for s := 0; s < ns; s++ {
		for i, d := range dg.Sites[s].Docs {
			localIdx[d] = i
		}
	}

	// Step 2: block graph weighted by source local PageRank. This is the
	// serialization point: the weights consume step 1's output.
	bg := graph.NewDigraph(ns)
	dg.G.EachEdgeAll(func(from int, e graph.Edge) {
		sFrom := int(dg.Docs[from].Site)
		sTo := int(dg.Docs[e.To].Site)
		w := local[sFrom][localIdx[from]] * e.Weight
		if w > 0 {
			bg.AddEdge(sFrom, sTo, w)
		}
	})
	bg.Dedupe()

	// Step 3: block-level PageRank.
	blockRes, err := pagerank.Graph(bg, cfg.pagerankConfig())
	if err != nil {
		return nil, fmt.Errorf("blockrank: block layer: %w", err)
	}

	// Step 4: compose the seed.
	seed := matrix.NewVector(dg.NumDocs())
	for s := 0; s < ns; s++ {
		for i, d := range dg.Sites[s].Docs {
			seed[d] = blockRes.Scores[s] * local[s][i]
		}
	}

	out := &Result{
		BlockRank:  blockRes.Scores,
		LocalRanks: local,
		Seed:       seed.Clone(),
		Scores:     seed,
	}
	if cfg.SkipGlobalRefine {
		return out, nil
	}

	// Step 5: global refinement seeded by the approximation.
	refineCfg := cfg.pagerankConfig()
	refineCfg.Start = seed
	globalRes, err := pagerank.Graph(dg.G, refineCfg)
	if err != nil {
		return nil, fmt.Errorf("blockrank: global refine: %w", err)
	}
	out.Scores = globalRes.Scores
	out.GlobalIterations = globalRes.Iterations
	return out, nil
}
