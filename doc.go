// Package lmmrank is a Go implementation of "Using a Layered Markov Model
// for Distributed Web Ranking Computation" (Wu & Aberer, ICDCS 2005): a
// two-layer Markov model of the Web — sites above, documents below — whose
// Partition Theorem makes the global ranking computable as one small
// SiteRank composed with fully independent per-site DocRanks, enabling
// decentralized (peer-to-peer) rank computation, link-spam resistance and
// two-layer personalization.
//
// This root package is the stable facade over the internal packages:
//
//   - the serving API: Engine — Rank(ctx, Query) over a unified Query
//     (uniform / personalized / top-k / three-layer) with caller-owned
//     Results — implemented by NewLocalEngine (concurrent in-process
//     serving) and NewDistEngine (the same queries from a worker fleet);
//   - abstract Layered Markov Models (the paper's §2): Model, the four
//     ranking approaches, multi-layer hierarchies;
//   - Web ranking (§3): DocGraph construction, SiteGraph aggregation, the
//     layered DocRank pipeline and the flat-PageRank baseline;
//   - synthetic campus webs with ground-truth spam labels (the evaluation
//     substrate standing in for the paper's EPFL crawl);
//   - a distributed runtime: loopback or networked worker fleets driven by
//     a coordinator over a gob/TCP RPC substrate, with page-count shard
//     balancing, digest-keyed worker caches, flate shard compression,
//     batched SiteRank rounds and mid-run worker-loss recovery
//     (DistRetryPolicy).
//
// Quick start:
//
//	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{Seed: 1})
//	eng, err := lmmrank.NewLocalEngine(web.Graph, lmmrank.EngineOptions{})
//	res, err := eng.Rank(ctx, lmmrank.Query{TopK: 10})
//	...
//	model := lmmrank.PaperExample()
//	ranking, err := lmmrank.LayeredMethod(model, lmmrank.Config{})
//
// # Ownership contract
//
// Public results are caller-owned. Everything an Engine returns — and
// everything the one-shot wrappers (LayeredDocRank, LayeredDocRank3,
// PageRank, PageRankGraph) and the distributed runtime return — is
// freshly allocated: retain it, mutate it, share it across goroutines;
// no later query will observe or disturb it. Scratch aliasing is an
// internal/ concern only, surfacing in exactly one deprecated-in-spirit
// expert path: Ranker (below).
//
// # Performance contracts
//
// The serving core trades safety rails for zero steady-state
// allocations; the contracts below are stated on the symbols they bind
// and collected here because they span packages.
//
// Scratch aliasing (Ranker only): results returned by Ranker.Rank (the
// WebResult's vectors) alias the Ranker's internal buffers and are
// valid only until the next Rank on the same Ranker — clone to retain,
// or serve through an Engine, which copies results out of pooled
// scratch before returning them. A Ranker value is not goroutine-safe;
// Engine's pool of scratch-private Rankers over one shared core is the
// concurrent path.
//
// Cancellation: Engine.Rank honors its context everywhere — each power
// iteration checks ctx between multiplies, and distributed runs
// propagate the deadline into every wire exchange — returning ctx.Err()
// on cancellation. A nil WebConfig.Ctx (the internal hook the Engine
// fills) never cancels.
//
// Damping sentinel: a Damping (or Alpha) of exactly 0 in any config
// selects the default 0.85 — an explicit zero cannot be requested, tiny
// positive values are honored as given.
//
// Invalidation: engines and Rankers capture their DocGraph by reference
// and precompute derived structure from it; mutating the graph
// afterwards (adding documents, links or sites) invalidates them —
// build a new one. The same applies to the distributed runtime's shard
// digests: an unchanged graph re-ranked through a DistEngine (or
// Coordinator.RankPrepared) hits the workers' caches and the
// coordinator's digest memo, a mutated graph naturally misses.
package lmmrank
