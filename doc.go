// Package lmmrank is a Go implementation of "Using a Layered Markov Model
// for Distributed Web Ranking Computation" (Wu & Aberer, ICDCS 2005): a
// two-layer Markov model of the Web — sites above, documents below — whose
// Partition Theorem makes the global ranking computable as one small
// SiteRank composed with fully independent per-site DocRanks, enabling
// decentralized (peer-to-peer) rank computation, link-spam resistance and
// two-layer personalization.
//
// This root package is the stable facade over the internal packages:
//
//   - the serving API: Engine — Rank(ctx, Query) over a unified Query
//     (uniform / personalized / top-k / three-layer) with caller-owned
//     Results — implemented by NewLocalEngine (concurrent in-process
//     serving) and NewDistEngine (the same queries from a worker fleet);
//   - abstract Layered Markov Models (the paper's §2): Model, the four
//     ranking approaches, multi-layer hierarchies;
//   - Web ranking (§3): DocGraph construction, SiteGraph aggregation, the
//     layered DocRank pipeline and the flat-PageRank baseline;
//   - synthetic campus webs with ground-truth spam labels (the evaluation
//     substrate standing in for the paper's EPFL crawl);
//   - a distributed runtime: loopback or networked worker fleets driven by
//     a coordinator over a gob/TCP RPC substrate, with page-count shard
//     balancing, digest-keyed worker caches, flate shard compression,
//     selectable SiteRank modes (SiteRankMode: central, synchronous
//     rounds, batched rounds, or the barrier-free asynchronous protocol
//     with synchronous verification — seeded-deterministic when
//     ordered), mid-run worker-loss recovery and background redial with
//     mid-run re-admission (DistRetryPolicy), and checkpointed SiteRank
//     iteration (DistCheckpoint).
//
// Quick start:
//
//	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{Seed: 1})
//	eng, err := lmmrank.NewLocalEngine(web.Graph, lmmrank.EngineOptions{})
//	res, err := eng.Rank(ctx, lmmrank.Query{TopK: 10})
//	...
//	model := lmmrank.PaperExample()
//	ranking, err := lmmrank.LayeredMethod(model, lmmrank.Config{})
//
// # Ownership contract
//
// Public results are caller-owned. Everything an Engine returns — and
// everything the one-shot wrappers (LayeredDocRank, LayeredDocRank3,
// PageRank, PageRankGraph) and the distributed runtime return — is
// freshly allocated: retain it, mutate it, share it across goroutines;
// no later query will observe or disturb it. Scratch aliasing is an
// internal/ concern only, surfacing in exactly one deprecated-in-spirit
// expert path: Ranker (below).
//
// # Performance contracts
//
// The serving core trades safety rails for zero steady-state
// allocations; the contracts below are stated on the symbols they bind
// and collected here because they span packages.
//
// Scratch aliasing (Ranker only): results returned by Ranker.Rank (the
// WebResult's vectors) alias the Ranker's internal buffers and are
// valid only until the next Rank on the same Ranker — clone to retain,
// or serve through an Engine, which copies results out of pooled
// scratch before returning them. A Ranker value is not goroutine-safe;
// Engine's pool of scratch-private Rankers over one shared core is the
// concurrent path.
//
// Cancellation: Engine.Rank honors its context everywhere — each power
// iteration checks ctx between multiplies, and distributed runs
// propagate the deadline into every wire exchange — returning ctx.Err()
// on cancellation. A nil WebConfig.Ctx (the internal hook the Engine
// fills) never cancels.
//
// Damping sentinel: a Damping (or Alpha) of exactly 0 in any config
// selects the default 0.85 — an explicit zero cannot be requested, tiny
// positive values are honored as given.
//
// Invalidation and churn: engines and Rankers capture their DocGraph by
// reference and precompute derived structure from it. Mutating the
// graph invalidates that structure, and the invalidation is enforced:
// the graph carries a mutation version, and a query against stale
// structure fails with ErrGraphMutated instead of silently serving
// stale rankings. The supported way to change a served graph is
// Engine.Update(ctx, GraphDelta) — graph churn as a serving operation,
// implemented as multi-version snapshot serving:
//
//   - Snapshot semantics: an engine's whole serving state — graph,
//     precomputed cores, warm seeds — lives behind one atomic pointer
//     to an immutable snapshot. Update applies GraphDelta.Apply to a
//     copy-on-write clone of the graph (clean sites share their
//     adjacency with the old graph by pointer), rebuilds off to the
//     side and publishes with a single store. Queries never wait for an
//     Update and an Update never waits for queries: a Rank in flight
//     across the swap completes on the snapshot it started on,
//     bit-identical to an uncontended run, and the next Rank sees the
//     new graph. A failed Apply-path Update discards the clone — a
//     no-op, the engine is exactly as before. Because the served graph
//     evolves through clones, re-fetch it with DocGraph() after
//     updating rather than caching the construction-time pointer.
//   - A nil Apply means the caller already mutated the serving graph in
//     place, which is only safe with no queries in flight; on that path
//     a failed Update records the delta's sites so a later Update
//     rebuilds them too.
//   - ChangedSites is the caller's contract: it must list every site
//     whose pages or links changed (appended sites are implicit). Only
//     those sites' structure is rebuilt — locally their subgraphs,
//     matrices and solvers (clean sites' chains are shared by pointer,
//     and queries warm-start from the previous solution);
//     distributedly their shards (clean shards stay in the worker
//     caches and are never re-shipped — Result.Dist.ShardsReused /
//     ShardsReshipped account for it).
//   - After an out-of-band mutation (or a failed nil-Apply Update),
//     queries keep failing with ErrGraphMutated until a successful
//     Update or a fresh engine — recovery is always explicit.
//
// Self-healing and restart: DistRetryPolicy.MaxRedials arms a
// background redial loop — each lost worker is redialed with jittered
// exponential backoff (RedialBase doubling up to RedialMax) and, once
// reachable, re-admitted at the next sequential point of the same run:
// its sites rebalance back by the deterministic weighted assignment, a
// warm digest cache means near-zero bytes re-shipped
// (DistStats.RejoinShardBytes measures exactly the rejoin traffic), and
// interim owners drop the moved sites so no chain row is double-counted.
// Orthogonally, DistConfig.Checkpoint persists the distributed SiteRank
// iterate so a restarted coordinator resumes instead of recomputing. The
// Checkpoint contract: Save must durably replace the stored state or
// fail the run (FileCheckpoint writes a temp file and renames — readers
// never see a torn state); Load returns (nil, nil) when nothing is
// stored; a state whose digest does not match the current graph +
// configuration (mode, sizes, damping, tolerance, iteration cap,
// teleport vector, shard digests) is ignored and the iteration starts
// fresh; a converged run Clears its checkpoint. Resuming continues the
// exact float sequence — gob round-trips float64 losslessly — so an
// interrupted-and-resumed run reproduces the uninterrupted ranks
// bitwise, in fewer remaining rounds (DistStats.ResumedFromRound +
// SiteRankRounds equals the uninterrupted total).
//
// Serving admission is keyed by tenant: EngineOptions.MaxInFlight caps
// concurrent queries engine-wide and TenantQuota caps each
// Query.Tenant's share inside that cap (the tenant slot is taken
// first, so one flooding tenant exhausts its own quota, never the
// engine). Over-cap queries queue under ctx, or fail fast with
// ErrOverloaded when RejectOverload is set — errors.As to
// *OverloadError for the tenant and which gate refused. The empty
// Tenant is the shared anonymous tenant; tenancy is an admission
// identity only and never changes a query's answer (it is excluded
// from the coalescing fingerprint). Coalesce folds concurrent
// identical queries into one computation, each caller receiving its
// own copy, and CoalesceTol widens the match to similar queries:
// personalization vectors within CoalesceTol of each other in
// normalized L1 may share one flight (scalar fields still match
// bitwise; 0 keeps exact matching). EngineOptions.TopKIndex
// (LocalEngine only) maintains per-site posting lists across Updates
// so default-config top-k queries — uniform or site-personalized —
// are answered from the index bit-identically to a full re-rank,
// re-solving only the small site layer. ServingStats() on either
// engine reports admissions, overloads per tenant, coalesced shares
// and index serves. DistConfig carries the admission and coalescing
// knobs for DistEngine.
//
// The expert-path equivalents are lmm-level: Ranker.Rebuild(changed) /
// Ranker.RebuildOn(clone, changed) for the structural half and
// WebConfig.SiteStart/LocalStarts for the warm seeds;
// UpdateLayeredDocRank remains the one-shot functional refresh.
package lmmrank
