// Package lmmrank is a Go implementation of "Using a Layered Markov Model
// for Distributed Web Ranking Computation" (Wu & Aberer, ICDCS 2005): a
// two-layer Markov model of the Web — sites above, documents below — whose
// Partition Theorem makes the global ranking computable as one small
// SiteRank composed with fully independent per-site DocRanks, enabling
// decentralized (peer-to-peer) rank computation, link-spam resistance and
// two-layer personalization.
//
// This root package is the stable facade over the internal packages:
//
//   - abstract Layered Markov Models (the paper's §2): Model, the four
//     ranking approaches, multi-layer hierarchies;
//   - Web ranking (§3): DocGraph construction, SiteGraph aggregation, the
//     layered DocRank pipeline and the flat-PageRank baseline;
//   - synthetic campus webs with ground-truth spam labels (the evaluation
//     substrate standing in for the paper's EPFL crawl);
//   - a distributed runtime: loopback or networked worker fleets driven by
//     a coordinator over a gob/TCP RPC substrate, with page-count shard
//     balancing, digest-keyed worker caches, batched SiteRank rounds and
//     mid-run worker-loss recovery (DistRetryPolicy).
//
// Quick start:
//
//	model := lmmrank.PaperExample()
//	ranking, err := lmmrank.LayeredMethod(model, lmmrank.Config{})
//	...
//	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{Seed: 1})
//	res, err := lmmrank.LayeredDocRank(web.Graph, lmmrank.WebConfig{})
//
// # Performance contracts
//
// The serving path trades safety rails for zero steady-state
// allocations; the contracts below are stated on the symbols they bind
// and collected here because they span packages.
//
// Scratch aliasing: results returned by Ranker.Rank (the WebResult's
// vectors) alias the Ranker's internal buffers and are valid only until
// the next Rank on the same Ranker — clone to retain, or use the
// one-shot LayeredDocRank whose result is safe to keep. Neither Ranker
// nor the internal solvers are goroutine-safe; serialize access or hold
// one per goroutine.
//
// Damping sentinel: a Damping (or Alpha) of exactly 0 in any config
// selects the default 0.85 — an explicit zero cannot be requested, tiny
// positive values are honored as given.
//
// Invalidation: a Ranker captures its DocGraph by reference and
// precomputes derived structure from it; mutating the graph afterwards
// (adding documents, links or sites) invalidates the Ranker — build a
// new one. The same applies to the distributed runtime's shard digests:
// an unchanged graph re-ranked via Coordinator.RankPrepared hits the
// workers' caches, a mutated graph naturally misses.
package lmmrank
