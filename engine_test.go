package lmmrank

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// engineWeb is a moderately sized campus web shared by the engine tests.
func engineWeb() *CampusWeb {
	return GenerateCampusWeb(CampusWebConfig{
		Seed: 71, Sites: 15, MeanSitePages: 10,
		DynamicClusterPages: 40, DocClusterPages: 40,
	})
}

// mixedQueries is the query workload every serving test drives: uniform,
// site-personalized, document-personalized, top-k and three-layer.
func mixedQueries(dg *DocGraph) []Query {
	sitePers := make(Vector, dg.NumSites())
	for i := range sitePers {
		sitePers[i] = 1
	}
	sitePers[2] = 10
	sitePers.Normalize()

	var docPers map[SiteID]Vector
	for s := 0; s < dg.NumSites(); s++ {
		if n := dg.SiteSize(SiteID(s)); n > 1 {
			v := make(Vector, n)
			for i := range v {
				v[i] = 1
			}
			v[0] = 5
			v.Normalize()
			docPers = map[SiteID]Vector{SiteID(s): v}
			break
		}
	}

	return []Query{
		{},
		{SitePersonalization: sitePers},
		{DocPersonalization: docPers},
		{TopK: 10, WantLocalRanks: true},
		{ThreeLayer: true},
		{ThreeLayer: true, TopK: 5},
	}
}

// TestLocalEngineMatchesOneShot pins the reimplementation: the Engine
// answers exactly what the one-shot pipelines compute, bitwise.
func TestLocalEngineMatchesOneShot(t *testing.T) {
	web := engineWeb()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	ctx := context.Background()

	ref, err := LayeredDocRank(web.Graph, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	got, err := eng.Rank(ctx, Query{})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	if !reflect.DeepEqual(got.DocRank, ref.DocRank) || !reflect.DeepEqual(got.SiteRank, ref.SiteRank) {
		t.Error("LocalEngine uniform ranking deviates from LayeredDocRank")
	}

	ref3, err := LayeredDocRank3(web.Graph, nil, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank3: %v", err)
	}
	got3, err := eng.Rank(ctx, Query{ThreeLayer: true})
	if err != nil {
		t.Fatalf("three-layer Rank: %v", err)
	}
	if !reflect.DeepEqual(got3.DocRank, ref3.DocRank) || !reflect.DeepEqual(got3.DomainRank, ref3.DomainRank) {
		t.Error("LocalEngine three-layer ranking deviates from LayeredDocRank3")
	}

	top, err := eng.Rank(ctx, Query{TopK: 5})
	if err != nil {
		t.Fatalf("top-k Rank: %v", err)
	}
	want := TopDocs(web.Graph, ref.DocRank, 5)
	if !reflect.DeepEqual(top.Top, want) {
		t.Errorf("Top = %+v, want %+v", top.Top, want)
	}
}

// TestLocalEngineConcurrentBitwiseEqual is the concurrent-serving bar:
// N goroutines hammering one LocalEngine with the mixed workload (run
// under -race via `make race`) must produce results bitwise equal to
// the serial answers.
func TestLocalEngineConcurrentBitwiseEqual(t *testing.T) {
	web := engineWeb()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	ctx := context.Background()
	queries := mixedQueries(web.Graph)

	serial := make([]*Result, len(queries))
	for i, q := range queries {
		if serial[i], err = eng.Rank(ctx, q); err != nil {
			t.Fatalf("serial Rank(%d): %v", i, err)
		}
	}

	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + it) % len(queries)
				res, err := eng.Rank(ctx, queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d query %d: %w", g, qi, err)
					return
				}
				if !reflect.DeepEqual(res.DocRank, serial[qi].DocRank) {
					errCh <- fmt.Errorf("goroutine %d query %d: DocRank deviates from serial answer", g, qi)
					return
				}
				if !reflect.DeepEqual(res.SiteRank, serial[qi].SiteRank) {
					errCh <- fmt.Errorf("goroutine %d query %d: SiteRank deviates from serial answer", g, qi)
					return
				}
				if !reflect.DeepEqual(res.Top, serial[qi].Top) {
					errCh <- fmt.Errorf("goroutine %d query %d: Top deviates from serial answer", g, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestLayeredDocRank3HonorsDocPersonalization is the wrapper-regression
// guard: document-layer personalization must flow through the
// Engine-backed LayeredDocRank3 exactly as it did pre-Engine, not get
// silently dropped in the WebConfig→Query mapping.
func TestLayeredDocRank3HonorsDocPersonalization(t *testing.T) {
	web := engineWeb()
	queries := mixedQueries(web.Graph)
	var docPers map[SiteID]Vector
	for _, q := range queries {
		if q.DocPersonalization != nil {
			docPers = q.DocPersonalization
		}
	}
	if docPers == nil {
		t.Fatal("mixedQueries built no doc personalization")
	}
	uniform, err := LayeredDocRank3(web.Graph, nil, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank3: %v", err)
	}
	personalized, err := LayeredDocRank3(web.Graph, nil, WebConfig{DocPersonalization: docPers})
	if err != nil {
		t.Fatalf("personalized LayeredDocRank3: %v", err)
	}
	if d := personalized.DocRank.L1Diff(uniform.DocRank); d == 0 {
		t.Error("document personalization had no effect — it was dropped on the way to the Engine")
	}
}

// TestResultCallerOwned is the aliasing regression the Engine contract
// promises: clobbering a returned Result must not perturb any later
// query, on either the Engine or the deprecated one-shot wrappers.
func TestResultCallerOwned(t *testing.T) {
	web := engineWeb()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	ctx := context.Background()

	first, err := eng.Rank(ctx, Query{WantLocalRanks: true})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	saved := first.DocRank.Clone()
	savedSite := first.SiteRank.Clone()
	// Vandalize everything the caller can reach.
	for i := range first.DocRank {
		first.DocRank[i] = -1
	}
	for i := range first.SiteRank {
		first.SiteRank[i] = 99
	}
	for _, lr := range first.LocalRanks {
		for i := range lr {
			lr[i] = -7
		}
	}
	second, err := eng.Rank(ctx, Query{})
	if err != nil {
		t.Fatalf("re-query: %v", err)
	}
	if !reflect.DeepEqual(second.DocRank, saved) || !reflect.DeepEqual(second.SiteRank, savedSite) {
		t.Error("mutating a returned Result perturbed a later query — scratch leaked across the public boundary")
	}
}

// TestPageRankCallerOwned is the same regression for the flat-PageRank
// facade functions.
func TestPageRankCallerOwned(t *testing.T) {
	web := engineWeb()
	first, err := PageRank(web.Graph, WebConfig{})
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	saved := first.Clone()
	for i := range first {
		first[i] = -3
	}
	second, err := PageRank(web.Graph, WebConfig{})
	if err != nil {
		t.Fatalf("PageRank again: %v", err)
	}
	if !reflect.DeepEqual(second, saved) {
		t.Error("mutating PageRank's result perturbed a later call")
	}

	g, err := PageRankGraph(web.Graph.G, 0.85)
	if err != nil {
		t.Fatalf("PageRankGraph: %v", err)
	}
	savedG := g.Clone()
	for i := range g {
		g[i] = 42
	}
	again, err := PageRankGraph(web.Graph.G, 0.85)
	if err != nil {
		t.Fatalf("PageRankGraph again: %v", err)
	}
	if !reflect.DeepEqual(again, savedG) {
		t.Error("mutating PageRankGraph's result perturbed a later call")
	}
}

// countdownCtx is a deterministic cancellation probe: it reports healthy
// for the first n Err() checks, then cancelled forever. Because the
// power iteration checks Ctx.Err() once per iteration, a small n lands
// the cancellation mid-iteration — no timing, no flakes.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestLocalEngineCancellation covers both cancellation shapes on the
// local backend: a pre-cancelled context never starts the query, and a
// context that trips mid-power-iteration aborts the run with ctx.Err();
// the engine keeps serving afterwards.
func TestLocalEngineCancellation(t *testing.T) {
	web := engineWeb()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Rank(pre, Query{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Rank: err = %v, want context.Canceled", err)
	}

	// Let a handful of Err checks pass so the abort lands strictly
	// inside a power iteration, not at the entry check.
	mid := newCountdownCtx(5)
	if _, err := eng.Rank(mid, Query{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-iteration cancel: err = %v, want context.Canceled", err)
	}

	if _, err := eng.Rank(context.Background(), Query{}); err != nil {
		t.Fatalf("Rank after a cancelled query: %v", err)
	}
}

// TestDistEngine runs the unified Query set through the distributed
// backend and checks it against the local engine, plus the dist-specific
// contract points: unsupported document personalization, caller-owned
// stats, and context cancellation.
func TestDistEngine(t *testing.T) {
	web := engineWeb()
	cl, err := StartCluster(2)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()

	local, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	dist, err := NewDistEngine(cl, web.Graph, DistConfig{})
	if err != nil {
		t.Fatalf("NewDistEngine: %v", err)
	}
	ctx := context.Background()

	for i, q := range mixedQueries(web.Graph) {
		if q.DocPersonalization != nil {
			if _, err := dist.Rank(ctx, q); !errors.Is(err, ErrUnsupportedQuery) {
				t.Errorf("query %d: doc personalization on DistEngine: err = %v, want ErrUnsupportedQuery", i, err)
			}
			continue
		}
		want, err := local.Rank(ctx, q)
		if err != nil {
			t.Fatalf("local query %d: %v", i, err)
		}
		got, err := dist.Rank(ctx, q)
		if err != nil {
			t.Fatalf("dist query %d: %v", i, err)
		}
		if d := got.DocRank.L1Diff(want.DocRank); d >= 1e-9 {
			t.Errorf("query %d: ‖dist − local‖₁ = %g, want < 1e-9", i, d)
		}
		if d := got.SiteRank.L1Diff(want.SiteRank); d >= 1e-9 {
			t.Errorf("query %d: ‖dist − local‖₁ on SiteRank = %g, want < 1e-9", i, d)
		}
		if q.TopK > 0 && len(got.Top) != q.TopK {
			t.Errorf("query %d: %d top entries, want %d", i, len(got.Top), q.TopK)
		}
		if got.Dist == nil || got.Dist.Messages == 0 {
			t.Errorf("query %d: distributed stats missing", i)
		}
	}

	pre, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := dist.Rank(pre, Query{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled dist Rank: err = %v, want context.Canceled", err)
	}
	if _, err := dist.Rank(ctx, Query{}); err != nil {
		t.Fatalf("dist Rank after a cancelled query: %v", err)
	}
}

// TestQueryValidation drives every ErrUnsupportedQuery branch through
// both engines with one table: the ThreeLayer + SitePersonalization
// combination, document-layer personalization on the distributed
// backend, and malformed personalization vectors (non-finite entries,
// negative weights, zero mass), which must be rejected at the Query
// boundary instead of surfacing as solver failures mid-run. Control
// rows pin that well-formed queries still pass.
func TestQueryValidation(t *testing.T) {
	web := engineWeb()
	cl, err := StartCluster(2)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	local, err := NewLocalEngine(web.Graph, EngineOptions{})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	dist, err := NewDistEngine(cl, web.Graph, DistConfig{})
	if err != nil {
		t.Fatalf("NewDistEngine: %v", err)
	}
	ctx := context.Background()

	goodSite := make(Vector, web.Graph.NumSites())
	for i := range goodSite {
		goodSite[i] = 1
	}
	goodSite.Normalize()
	// poisonSite clones the valid site vector and overwrites one entry.
	poisonSite := func(x float64) Vector {
		v := goodSite.Clone()
		v[1] = x
		return v
	}
	var docSite SiteID
	for s := 0; s < web.Graph.NumSites(); s++ {
		if web.Graph.SiteSize(SiteID(s)) > 1 {
			docSite = SiteID(s)
			break
		}
	}
	goodDoc := make(Vector, web.Graph.SiteSize(docSite))
	for i := range goodDoc {
		goodDoc[i] = 1
	}
	goodDoc.Normalize()
	poisonDoc := func(x float64) map[SiteID]Vector {
		v := goodDoc.Clone()
		v[0] = x
		return map[SiteID]Vector{docSite: v}
	}

	cases := []struct {
		name string
		q    Query
		// rejected by both engines / by the distributed engine only
		rejected     bool
		distRejected bool
	}{
		{name: "uniform", q: Query{}},
		{name: "sitePersonalized", q: Query{SitePersonalization: goodSite}},
		{name: "threeLayer", q: Query{ThreeLayer: true}},
		{
			name:         "docPersonalizedIsLocalOnly",
			q:            Query{DocPersonalization: map[SiteID]Vector{docSite: goodDoc}},
			distRejected: true,
		},
		{
			name:     "threeLayerWithSitePersonalization",
			q:        Query{ThreeLayer: true, SitePersonalization: goodSite},
			rejected: true,
		},
		{name: "siteNaN", q: Query{SitePersonalization: poisonSite(math.NaN())}, rejected: true},
		{name: "siteInf", q: Query{SitePersonalization: poisonSite(math.Inf(1))}, rejected: true},
		{name: "siteNegative", q: Query{SitePersonalization: poisonSite(-1)}, rejected: true},
		{
			name:     "siteZeroMass",
			q:        Query{SitePersonalization: make(Vector, web.Graph.NumSites())},
			rejected: true,
		},
		{name: "docNaN", q: Query{DocPersonalization: poisonDoc(math.NaN())}, rejected: true},
		{name: "docInf", q: Query{DocPersonalization: poisonDoc(math.Inf(-1))}, rejected: true},
		{name: "docNegative", q: Query{DocPersonalization: poisonDoc(-0.5)}, rejected: true},
		{
			name:     "docZeroMass",
			q:        Query{DocPersonalization: map[SiteID]Vector{docSite: make(Vector, len(goodDoc))}},
			rejected: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engines := []struct {
				name     string
				eng      Engine
				rejected bool
			}{
				{"local", local, tc.rejected},
				{"dist", dist, tc.rejected || tc.distRejected},
			}
			for _, e := range engines {
				_, err := e.eng.Rank(ctx, tc.q)
				if e.rejected {
					if !errors.Is(err, ErrUnsupportedQuery) {
						t.Errorf("%s: err = %v, want ErrUnsupportedQuery", e.name, err)
					}
					continue
				}
				if err != nil {
					t.Errorf("%s: unexpected error: %v", e.name, err)
				}
			}
		})
	}
}
