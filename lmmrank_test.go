package lmmrank

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadePaperExample(t *testing.T) {
	model := PaperExample()
	r, err := LayeredMethod(model, Config{})
	if err != nil {
		t.Fatalf("LayeredMethod: %v", err)
	}
	// Paper §2.3.3: π̃(2,3) = 0.2541 is the top state.
	got := r.Score(State{Phase: 1, Sub: 2})
	if got < 0.25 || got > 0.26 {
		t.Errorf("π̃(2,3) = %.4f, want ≈ 0.2541", got)
	}
	gap, err := PartitionGap(model, Config{})
	if err != nil {
		t.Fatalf("PartitionGap: %v", err)
	}
	if gap > 1e-8 {
		t.Errorf("gap = %g", gap)
	}
}

func TestFacadeAllApproaches(t *testing.T) {
	model := PaperExample()
	for name, fn := range map[string]func(*Model, Config) (*Ranking, error){
		"Approach1": Approach1,
		"Approach2": Approach2,
		"Approach3": Approach3,
	} {
		r, err := fn(model, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.Scores.IsDistribution(1e-8) {
			t.Errorf("%s: not a distribution", name)
		}
	}
	all, err := ComputeAll(model, Config{})
	if err != nil {
		t.Fatalf("ComputeAll: %v", err)
	}
	if all.A4 == nil {
		t.Error("ComputeAll missing Layered Method")
	}
}

func TestFacadeWebPipeline(t *testing.T) {
	b := NewGraphBuilder()
	b.AddLink("http://a.ex/", "http://b.ex/")
	b.AddLink("http://b.ex/", "http://a.ex/")
	b.AddLink("http://a.ex/", "http://a.ex/page")
	b.AddLink("http://a.ex/page", "http://a.ex/")
	dg := b.Build()

	layered, err := LayeredDocRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	flat, err := PageRank(dg, WebConfig{})
	if err != nil {
		t.Fatalf("PageRank: %v", err)
	}
	if !layered.DocRank.IsDistribution(1e-8) || !flat.IsDistribution(1e-8) {
		t.Error("rankings are not distributions")
	}
	top := TopDocs(dg, layered.DocRank, 2)
	if len(top) != 2 || top[0].URL == "" {
		t.Errorf("TopDocs = %+v", top)
	}
	if tau := KendallTau(layered.DocRank, flat); tau < -1 || tau > 1 {
		t.Errorf("τ = %g", tau)
	}
	sg := DeriveSiteGraph(dg, SiteGraphOptions{})
	if sg.NumSites() != 2 {
		t.Errorf("sites = %d", sg.NumSites())
	}
}

func TestFacadeGraphIO(t *testing.T) {
	web := GenerateCampusWeb(CampusWebConfig{
		Seed: 3, Sites: 5, MeanSitePages: 5,
		DynamicClusterPages: 10, DocClusterPages: 10,
	})
	var text, bin bytes.Buffer
	if err := WriteGraph(&text, web.Graph); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	if err := WriteGraphBinary(&bin, web.Graph); err != nil {
		t.Fatalf("WriteGraphBinary: %v", err)
	}
	fromText, err := ReadGraph(strings.NewReader(text.String()))
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	fromBin, err := ReadGraphBinary(&bin)
	if err != nil {
		t.Fatalf("ReadGraphBinary: %v", err)
	}
	if fromText.NumDocs() != web.Graph.NumDocs() || fromBin.NumDocs() != web.Graph.NumDocs() {
		t.Error("round-trip changed document count")
	}
}

func TestFacadeCluster(t *testing.T) {
	web := GenerateCampusWeb(CampusWebConfig{
		Seed: 4, Sites: 6, MeanSitePages: 6,
		DynamicClusterPages: 15, DocClusterPages: 15,
	})
	cl, err := StartCluster(2)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	defer cl.Close()
	res, err := cl.Coord.Rank(web.Graph, DistConfig{})
	if err != nil {
		t.Fatalf("Rank: %v", err)
	}
	local, err := LayeredDocRank(web.Graph, WebConfig{})
	if err != nil {
		t.Fatalf("LayeredDocRank: %v", err)
	}
	if d := res.DocRank.L1Diff(local.DocRank); d > 1e-8 {
		t.Errorf("distributed deviates from local: %g", d)
	}
}
