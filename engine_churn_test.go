package lmmrank

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// churnSites returns sites of the graph big enough for editSite, the
// rotating mutation targets of the churn stress tests.
func churnSites(t *testing.T, dg *DocGraph, n int) []SiteID {
	t.Helper()
	var sites []SiteID
	for s := range dg.Sites {
		if len(dg.Sites[s].Docs) >= 3 {
			sites = append(sites, SiteID(s))
			if len(sites) == n {
				return sites
			}
		}
	}
	t.Fatalf("only %d of %d editable sites in the test web", len(sites), n)
	return nil
}

// checkServedRanks sanity-checks a concurrently served result: the
// graph under the engine is mutating, so there is no fixed reference,
// but every answer must still be a probability distribution.
func checkServedRanks(t *testing.T, res *Result) {
	t.Helper()
	if res == nil || len(res.DocRank) == 0 {
		t.Error("served an empty result")
		return
	}
	sum := 0.0
	for _, x := range res.DocRank {
		if math.IsNaN(x) || x < 0 {
			t.Errorf("served rank %g", x)
			return
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("served ranks sum to %g, want 1", sum)
	}
}

// TestServingAdmissionUnderChurn hammers a capped, coalescing engine
// from many goroutines while Update keeps swapping snapshots
// underneath, and demands exact admission accounting: every call either
// succeeds or is rejected with ErrOverloaded — no other error, no lost
// call — and every success is a well-formed distribution off whichever
// snapshot admitted it. Runs under -race via make race.
func TestServingAdmissionUnderChurn(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{
		MaxInFlight:    1,
		RejectOverload: true,
		Coalesce:       true,
	})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	sites := churnSites(t, web.Graph, 5)

	const rankers = 8
	const perRanker = 40
	var successes, overloads atomic.Int64

	// Deterministic rejection coverage before the storm: park a
	// non-coalesceable query on the engine's only slot, probe that the
	// gate rejects while it holds, release, and confirm the holder
	// itself served cleanly.
	started := make(chan struct{})
	releaseHold := make(chan struct{})
	holderGot := make(chan error, 1)
	go func() {
		_, err := eng.Rank(ctx, Query{ThreeLayer: true, DomainOf: blockingDomainOf(started, releaseHold)})
		holderGot <- err
	}()
	<-started
	if _, err := eng.Rank(ctx, Query{}); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Rank with the only slot held = %v, want ErrOverloaded", err)
	}
	close(releaseHold)
	if err := <-holderGot; err != nil {
		t.Fatalf("slot-holding Rank: %v", err)
	}

	// The storm: each ranker needs perRanker *served* queries and spins
	// through rejections to get them — so the books must balance exactly
	// (every attempt either served or was rejected; anything else fails
	// the test) and the gate must keep making progress under Update swaps.
	var wg sync.WaitGroup
	for g := 0; g < rankers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tols := []float64{1e-8, 1e-9, 1e-10}
			for i := 0; i < perRanker; {
				res, err := eng.Rank(ctx, Query{Tol: tols[(g+i)%len(tols)]})
				switch {
				case err == nil:
					successes.Add(1)
					checkServedRanks(t, res)
					i++
				case errors.Is(err, ErrOverloaded):
					overloads.Add(1)
					runtime.Gosched()
				default:
					t.Errorf("ranker %d call %d: %v", g, i, err)
					i++
				}
			}
		}(g)
	}

	updaterGot := make(chan error, 1)
	go func() {
		for i := 0; i < 10; i++ {
			s := sites[i%len(sites)]
			err := eng.Update(ctx, GraphDelta{
				ChangedSites: []SiteID{s},
				Apply: func(dg *DocGraph) error {
					docs := dg.Sites[s].Docs
					dg.G.AddLink(int(docs[0]), int(docs[2]))
					dg.G.AddLink(int(docs[2]), int(docs[1]))
					return nil
				},
			})
			if err != nil {
				updaterGot <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
		updaterGot <- nil
	}()

	wg.Wait()
	if err := <-updaterGot; err != nil {
		t.Fatalf("Update during the stress: %v", err)
	}
	s, o := successes.Load(), overloads.Load()
	if s != rankers*perRanker {
		t.Errorf("served %d queries, want %d — calls leaked past the accounting", s, rankers*perRanker)
	}
	t.Logf("churn admission: %d served, %d rejected along the way", s, o)

	// The engine is healthy after the storm: an uncontended call serves.
	if _, err := eng.Rank(ctx, Query{}); err != nil {
		t.Errorf("Rank after the stress: %v", err)
	}
}

// TestCoalesceLeaderAbortUnderChurn stresses the leader-handoff path at
// the Engine level: coalesced waiters share a leader whose context is
// cancelled mid-flight, while Update swaps snapshots between rounds. A
// waiter with a live context must never inherit the leader's abort — it
// re-elects itself and computes. Runs under -race via make race.
func TestCoalesceLeaderAbortUnderChurn(t *testing.T) {
	web := churnTestWeb()
	ctx := context.Background()
	eng, err := NewLocalEngine(web.Graph, EngineOptions{Coalesce: true})
	if err != nil {
		t.Fatalf("NewLocalEngine: %v", err)
	}
	sites := churnSites(t, web.Graph, 3)

	const rounds = 25
	for round := 0; round < rounds; round++ {
		q := Query{Tol: 1e-10}
		lctx, cancel := context.WithCancel(ctx)
		leaderGot := make(chan error, 1)
		go func() {
			_, err := eng.Rank(lctx, q)
			leaderGot <- err
		}()
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := eng.Rank(ctx, q)
				if err != nil {
					t.Errorf("round %d: waiter inherited an abort: %v", round, err)
					return
				}
				checkServedRanks(t, res)
			}()
		}
		cancel() // race the leader's computation on purpose
		if err := <-leaderGot; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("round %d: leader err = %v, want nil or context.Canceled", round, err)
		}
		wg.Wait()
		if round%5 == 4 {
			s := sites[(round/5)%len(sites)]
			err := eng.Update(ctx, GraphDelta{
				ChangedSites: []SiteID{s},
				Apply: func(dg *DocGraph) error {
					docs := dg.Sites[s].Docs
					dg.G.AddLink(int(docs[0]), int(docs[2]))
					return nil
				},
			})
			if err != nil {
				t.Fatalf("round %d: Update: %v", round, err)
			}
		}
	}
}
