package lmmrank

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeQuery carves one Query out of raw fuzz bytes: scalars first,
// then up to 8 site-personalization entries, then up to 2 small
// document-personalization vectors. Deterministic, so equal byte
// prefixes decode to equal queries.
func decodeQuery(data []byte) (Query, []byte) {
	f64 := func() float64 {
		if len(data) < 8 {
			return 0
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		return v
	}
	u8 := func() byte {
		if len(data) == 0 {
			return 0
		}
		v := data[0]
		data = data[1:]
		return v
	}
	var q Query
	q.Damping = f64()
	q.Tol = f64()
	q.MaxIter = int(int8(u8()))
	q.TopK = int(int8(u8()))
	flags := u8()
	q.ThreeLayer = flags&1 != 0
	q.WantLocalRanks = flags&2 != 0
	if n := int(u8() % 9); n > 0 {
		q.SitePersonalization = make(Vector, n)
		for i := range q.SitePersonalization {
			q.SitePersonalization[i] = f64()
		}
	}
	for d := int(u8() % 3); d > 0; d-- {
		n := int(u8()%4) + 1
		v := make(Vector, n)
		for i := range v {
			v[i] = f64()
		}
		if q.DocPersonalization == nil {
			q.DocPersonalization = make(map[SiteID]Vector)
		}
		q.DocPersonalization[SiteID(u8()%5)] = v
	}
	return q, data
}

// normalizedL1Diff returns ‖û − v̂‖₁ of the L1-normalized vectors, and
// whether both vectors are cleanly normalizable (finite nonnegative
// entries, positive mass) — the shapes Query.validate admits.
func normalizedL1Diff(u, v Vector) (float64, bool) {
	if len(u) != len(v) {
		return 0, false
	}
	var mu, mv float64
	for i := range u {
		if u[i] < 0 || v[i] < 0 || math.IsNaN(u[i]) || math.IsNaN(v[i]) ||
			math.IsInf(u[i], 0) || math.IsInf(v[i], 0) {
			return 0, false
		}
		mu += u[i]
		mv += v[i]
	}
	if mu <= 0 || mv <= 0 || math.IsInf(mu, 0) || math.IsInf(mv, 0) {
		return 0, false
	}
	var d float64
	for i := range u {
		d += math.Abs(u[i]/mu - v[i]/mv)
	}
	return d, true
}

// queryAnswerEqual reports whether two coalesceable queries necessarily
// produce the same answer — every fingerprinted field bitwise equal.
func queryAnswerEqual(a, b Query) bool {
	eqf := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if !eqf(a.Damping, b.Damping) || !eqf(a.Tol, b.Tol) ||
		a.MaxIter != b.MaxIter || a.TopK != b.TopK ||
		a.ThreeLayer != b.ThreeLayer || a.WantLocalRanks != b.WantLocalRanks {
		return false
	}
	eqv := func(u, v Vector) bool {
		if len(u) != len(v) {
			return false
		}
		for i := range u {
			if !eqf(u[i], v[i]) {
				return false
			}
		}
		return true
	}
	if !eqv(a.SitePersonalization, b.SitePersonalization) ||
		(a.SitePersonalization == nil) != (b.SitePersonalization == nil) {
		return false
	}
	if len(a.DocPersonalization) != len(b.DocPersonalization) ||
		(a.DocPersonalization == nil) != (b.DocPersonalization == nil) {
		return false
	}
	for s, u := range a.DocPersonalization {
		v, ok := b.DocPersonalization[s]
		if !ok || !eqv(u, v) {
			return false
		}
	}
	return true
}

// FuzzQueryFingerprint is the coalescing-safety fuzz target: whatever
// two queries the fuzzer constructs, a shared fingerprint must never
// coalesce queries whose answers could differ beyond the contract —
// bit-identical answer fields at tol=0, personalization within tol in
// normalized L1 at tol>0 (the 1-Lipschitz bound's precondition). The
// key must also be deterministic, or coalescing would silently never
// fire.
func FuzzQueryFingerprint(f *testing.F) {
	f.Add([]byte{}, 0.0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 0.01)
	f.Add(func() []byte {
		var b []byte
		var buf [8]byte
		for _, x := range []float64{0.85, 1e-9, 0.5, 0.25, 0.25} {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			b = append(b, buf[:]...)
		}
		return b
	}(), 1e-3)

	f.Fuzz(func(t *testing.T, data []byte, tol float64) {
		if math.IsNaN(tol) || math.IsInf(tol, 0) {
			tol = 0
		}
		qa, rest := decodeQuery(data)
		qb, _ := decodeQuery(rest)

		ka, oka := qa.fingerprint(tol)
		kb, okb := qb.fingerprint(tol)
		if ka2, oka2 := qa.fingerprint(tol); ka2 != ka || oka2 != oka {
			t.Fatal("fingerprint is not deterministic")
		}
		if !oka || !okb || ka != kb {
			return
		}
		// Coalescing only happens after Query.validate at the serving
		// boundary; shapes validate rejects can never share a flight, so
		// a key collision between them is not a wrong coalesce.
		if qa.validate() != nil || qb.validate() != nil {
			return
		}

		// The queries would coalesce. At tol<=0 that demands bitwise
		// equality of every answer field; at tol>0 the scalar fields must
		// still match bitwise and each personalization vector must be
		// within tol after normalization (degenerate vectors hash by
		// exact bits, so they too must be equal).
		if tol <= 0 {
			if !queryAnswerEqual(qa, qb) {
				t.Fatalf("tol=%g coalesced distinct queries:\n%#v\n%#v", tol, qa, qb)
			}
			return
		}
		scalA, scalB := qa, qb
		scalA.SitePersonalization, scalB.SitePersonalization = nil, nil
		scalA.DocPersonalization, scalB.DocPersonalization = nil, nil
		if !queryAnswerEqual(scalA, scalB) {
			t.Fatalf("tol=%g coalesced queries with distinct scalar fields:\n%#v\n%#v", tol, qa, qb)
		}
		bitEq := func(u, v Vector) bool {
			if len(u) != len(v) {
				return false
			}
			for i := range u {
				if math.Float64bits(u[i]) != math.Float64bits(v[i]) {
					return false
				}
			}
			return true
		}
		checkVec := func(u, v Vector, what string) {
			if d, ok := normalizedL1Diff(u, v); ok {
				if d >= tol {
					t.Fatalf("tol=%g coalesced %s vectors %g apart in normalized L1:\n%v\n%v", tol, what, d, u, v)
				}
			} else if !bitEq(u, v) {
				t.Fatalf("tol=%g coalesced distinct degenerate %s vectors:\n%v\n%v", tol, what, u, v)
			}
		}
		checkVec(qa.SitePersonalization, qb.SitePersonalization, "site")
		if len(qa.DocPersonalization) != len(qb.DocPersonalization) {
			t.Fatalf("tol=%g coalesced queries with different doc-personalization shapes", tol)
		}
		for s, u := range qa.DocPersonalization {
			v, ok := qb.DocPersonalization[s]
			if !ok {
				t.Fatalf("tol=%g coalesced doc personalization over different sites", tol)
			}
			checkVec(u, v, "doc")
		}
	})
}
