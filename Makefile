# Development targets for lmmrank. `make ci` is the full CI gate —
# exactly what .github/workflows/ci.yml runs, so the local and hosted
# gates cannot drift; `make check` is its fast core.

# Pipelines (bench | benchjson) must fail when go test fails, not when
# only the last stage does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: ci check fmt vet lint build test race race-multi chaos cover fuzz-smoke bench bench-smoke bench-gate docs

# The umbrella target CI calls: the fast gate, the race detector over
# the concurrency-heavy packages (single- and multi-core), the
# deterministic-seed fault sweep, the coverage floors, a bounded fuzz
# smoke, a 1x smoke pass over every benchmark (so the E-series cannot
# rot between bench sessions), and the benchmark regression gate.
ci: check race race-multi chaos cover fuzz-smoke bench-smoke bench-gate

check: fmt vet lint build test docs

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Deep static analysis and the vulnerability scan, pinned via `go run`
# tool versions so every machine lints identically without polluting
# go.mod. Both need the module proxy to fetch the tool on first use;
# an offline toolchain (no proxy, no cache) skips with a notice instead
# of failing the build — hosted CI has the network and enforces them.
STATICCHECK ?= honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK ?= golang.org/x/vuln/cmd/govulncheck@v1.1.4
lint:
	@if $(GO) run $(STATICCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK) ./...; \
	else \
		echo "lint: staticcheck unavailable (offline toolchain?); skipped"; \
	fi
	@if $(GO) run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK) ./...; \
	else \
		echo "lint: govulncheck unavailable (offline toolchain?); skipped"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The distributed runtime is concurrency-heavy, internal/lmm holds the
# parallel-pipeline regression tests (undeduped shared graphs), and the
# root package hosts the concurrent Engine serving tests; keep all three
# race-clean. The explicit timeout keeps a wedged networked test from
# stalling CI for the runner's full budget.
race:
	$(GO) test -race -timeout 10m . ./internal/dist/... ./internal/lmm/...

# The multicore race leg: the serving pool, keyed admission and
# coalescing paths schedule very differently on one core than on four,
# and a race that needs real parallelism to interleave never fires at
# GOMAXPROCS=1. -count=1 defeats the test cache — a cached verdict from
# a different GOMAXPROCS proves nothing.
race-multi:
	GOMAXPROCS=4 $(GO) test -race -timeout 10m -count=1 .

# The fault-injection sweep: the seeded kill/rejoin/resume soak over the
# chaos-proxied fleet, race-checked. The seed is fixed in the test, so a
# CI failure reproduces locally with this exact command.
chaos:
	$(GO) test -race -run 'Chaos' -timeout 10m -count=1 ./internal/dist/...

# Documentation gate: go vet's doc-adjacent checks run under `vet`; this
# target additionally fails when any package (library or command) lacks a
# godoc package comment — the repo's docs rot guard. Library packages
# must carry "// Package <name> ..."; main packages "// Command <name>
# ...". Keep it grep-simple so it stays dependency-free.
docs:
	@fail=0; \
	for d in $$($(GO) list -f '{{.Dir}}' ./...); do \
		if ! grep -qsE '^// (Package|Command) ' $$d/*.go; then \
			echo "missing package comment: $$d"; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then \
		echo "every package needs a '// Package ...' or '// Command ...' godoc comment"; exit 1; \
	fi

# Coverage floors. internal/dist+partition: the merged statement
# coverage of the distributed runtime's tests must not fall below
# COVER_FLOOR percent (the tree measured 86.5% when the gate was
# introduced). Root package: the engine/serving/admission paths must
# not fall below ROOT_COVER_FLOOR percent (89.4% when introduced).
# Both floors leave headroom for noise without letting the tests rot.
COVER_FLOOR      ?= 80
ROOT_COVER_FLOOR ?= 75
COVER_PROFILE    ?= cover.out
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) \
	    -coverpkg=./internal/dist/...,./internal/partition/... \
	    -timeout 10m ./internal/dist/... ./internal/partition/... > /dev/null
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f $(COVER_PROFILE); \
	echo "internal/dist+partition coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || { \
		echo "internal/dist+partition coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; \
	}
	$(GO) test -coverprofile=$(COVER_PROFILE) -coverpkg=. -timeout 10m . > /dev/null
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f $(COVER_PROFILE); \
	echo "root lmmrank coverage: $$total% (floor $(ROOT_COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(ROOT_COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || { \
		echo "root lmmrank coverage $$total% fell below the $(ROOT_COVER_FLOOR)% floor"; exit 1; \
	}

# Quick smoke pass over every benchmark in the module (bounded like
# `race`, for the same CI reason).
bench-smoke:
	$(GO) test -bench . -benchtime 1x -timeout 10m -run '^$$' ./...

# Bounded fuzz smoke over every fuzz target, one `go test -fuzz` run
# per target (the flag takes a single target per package). Keeps the
# corpus-driven guards — COW clone isolation and coalescing-fingerprint
# safety — from rotting between dedicated fuzz sessions.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzCloneCOW$$' -fuzztime $(FUZZTIME) -timeout 10m ./internal/graph
	$(GO) test -run '^$$' -fuzz '^FuzzQueryFingerprint$$' -fuzztime $(FUZZTIME) -timeout 10m .

# The benchmark regression gate: re-run the pinned serving-path
# benchmarks and fail on a >30% ns/op or allocs/op regression against
# the latest recorded session in BENCH_pr2.json (see cmd/benchjson
# -compare for the exact rules; pins default inside the tool).
bench-gate:
	$(GO) test -run '^$$' -benchmem -count=3 -timeout 20m \
	    -bench '^BenchmarkE(3Fig3FlatPageRank|4Fig4LayeredDocRank|10UpdateUnderLoad|13TenantServing)$$' . \
	    | $(GO) run ./cmd/benchjson -compare BENCH_pr2.json

# The perf trajectory: run the E-series benchmarks with allocation
# reporting and record the session in BENCH_pr2.json under BENCH_LABEL
# ("before" on the parent commit, "after" on the tip). A rerun with the
# same label replaces that label's record; other labels are preserved.
BENCH       ?= ^BenchmarkE
BENCH_COUNT ?= 5
BENCH_LABEL ?= after
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count=$(BENCH_COUNT) . \
	    | $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_pr2.json
