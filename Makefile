# Development targets for lmmrank. `make check` is the CI gate.

# Pipelines (bench | benchjson) must fail when go test fails, not when
# only the last stage does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The distributed runtime is concurrency-heavy, and internal/lmm holds
# the parallel-pipeline regression tests (undeduped shared graphs);
# keep both race-clean.
race:
	$(GO) test -race ./internal/dist/... ./internal/lmm/...

# Quick smoke pass over every benchmark in the module.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The perf trajectory: run the E-series benchmarks with allocation
# reporting and record the session in BENCH_pr2.json under BENCH_LABEL
# ("before" on the parent commit, "after" on the tip). A rerun with the
# same label replaces that label's record; other labels are preserved.
BENCH       ?= ^BenchmarkE
BENCH_COUNT ?= 5
BENCH_LABEL ?= after
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count=$(BENCH_COUNT) . \
	    | $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_pr2.json
