# Development targets for lmmrank. `make check` is the CI gate.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The distributed runtime is concurrency-heavy; keep it race-clean.
race:
	$(GO) test -race ./internal/dist/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
