# Development targets for lmmrank. `make ci` is the full CI gate —
# exactly what .github/workflows/ci.yml runs, so the local and hosted
# gates cannot drift; `make check` is its fast core.

# Pipelines (bench | benchjson) must fail when go test fails, not when
# only the last stage does.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

GO ?= go

.PHONY: ci check fmt vet build test race chaos cover bench bench-smoke docs

# The umbrella target CI calls: the fast gate, the race detector over
# the concurrency-heavy packages, the deterministic-seed fault sweep,
# the distributed-runtime coverage floor, and a 1x smoke pass over
# every benchmark (so the E-series cannot rot between bench sessions).
ci: check race chaos cover bench-smoke

check: fmt vet build test docs

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The distributed runtime is concurrency-heavy, internal/lmm holds the
# parallel-pipeline regression tests (undeduped shared graphs), and the
# root package hosts the concurrent Engine serving tests; keep all three
# race-clean. The explicit timeout keeps a wedged networked test from
# stalling CI for the runner's full budget.
race:
	$(GO) test -race -timeout 10m . ./internal/dist/... ./internal/lmm/...

# The fault-injection sweep: the seeded kill/rejoin/resume soak over the
# chaos-proxied fleet, race-checked. The seed is fixed in the test, so a
# CI failure reproduces locally with this exact command.
chaos:
	$(GO) test -race -run 'Chaos' -timeout 10m -count=1 ./internal/dist/...

# Documentation gate: go vet's doc-adjacent checks run under `vet`; this
# target additionally fails when any package (library or command) lacks a
# godoc package comment — the repo's docs rot guard. Library packages
# must carry "// Package <name> ..."; main packages "// Command <name>
# ...". Keep it grep-simple so it stays dependency-free.
docs:
	@fail=0; \
	for d in $$($(GO) list -f '{{.Dir}}' ./...); do \
		if ! grep -qsE '^// (Package|Command) ' $$d/*.go; then \
			echo "missing package comment: $$d"; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then \
		echo "every package needs a '// Package ...' or '// Command ...' godoc comment"; exit 1; \
	fi

# Coverage floor on the distributed runtime: the merged statement
# coverage of every internal/dist package's tests over the whole
# internal/dist tree must not fall below COVER_FLOOR percent. The tree
# measured 86.5% when the gate was introduced; the floor leaves
# headroom for noise without letting the protocol tests rot.
COVER_FLOOR   ?= 80
COVER_PROFILE ?= cover.out
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) \
	    -coverpkg=./internal/dist/...,./internal/partition/... \
	    -timeout 10m ./internal/dist/... ./internal/partition/... > /dev/null
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	rm -f $(COVER_PROFILE); \
	echo "internal/dist+partition coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || { \
		echo "internal/dist+partition coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; \
	}

# Quick smoke pass over every benchmark in the module (bounded like
# `race`, for the same CI reason).
bench-smoke:
	$(GO) test -bench . -benchtime 1x -timeout 10m -run '^$$' ./...

# The perf trajectory: run the E-series benchmarks with allocation
# reporting and record the session in BENCH_pr2.json under BENCH_LABEL
# ("before" on the parent commit, "after" on the tip). A rerun with the
# same label replaces that label's record; other labels are preserved.
BENCH       ?= ^BenchmarkE
BENCH_COUNT ?= 5
BENCH_LABEL ?= after
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count=$(BENCH_COUNT) . \
	    | $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_pr2.json
