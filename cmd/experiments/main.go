// Command experiments regenerates the paper's tables and figures plus the
// quantitative experiments derived from its prose claims. Each experiment
// is indexed in DESIGN.md §3; EXPERIMENTS.md records outcomes.
//
// Usage:
//
//	experiments -run all            # everything (several minutes)
//	experiments -run fig2           # E1/E2: the §2.3 worked example
//	experiments -run campus         # E3/E4/E5: Figures 3 & 4 + spam metrics
//	experiments -run sweep          # E5 ablation: contamination vs cluster size
//	experiments -run complexity     # E6: centralized vs layered cost
//	experiments -run distributed    # E7: worker-count scaling over TCP
//	experiments -run personalization# E8: two-layer personalization
//	experiments -run ablation       # design-choice ablations
//	experiments -run partition      # E12: placement strategies on a blocky web
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lmmrank/internal/experiments"
	"lmmrank/internal/webgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		which = flag.String("run", "all", "experiment: fig2, campus, sweep, complexity, distributed, personalization, ablation, fusion, churn, partition, all")
		seed  = flag.Int64("seed", 2005, "workload seed")
	)
	flag.Parse()

	runners := map[string]func(int64) error{
		"fig2":            runFig2,
		"campus":          runCampus,
		"sweep":           runSweep,
		"complexity":      runComplexity,
		"distributed":     runDistributed,
		"personalization": runPersonalization,
		"ablation":        runAblation,
		"fusion":          runFusion,
		"churn":           runChurn,
		"partition":       runPartition,
	}
	order := []string{"fig2", "campus", "sweep", "complexity", "distributed", "personalization", "ablation", "fusion", "churn", "partition"}

	if *which == "all" {
		for _, name := range order {
			if err := section(name, runners[name], *seed); err != nil {
				return err
			}
		}
		return nil
	}
	fn, ok := runners[*which]
	if !ok {
		return fmt.Errorf("unknown experiment %q (have: %s, all)", *which, strings.Join(order, ", "))
	}
	return section(*which, fn, *seed)
}

func section(name string, fn func(int64) error, seed int64) error {
	fmt.Printf("════ %s ════\n\n", name)
	if err := fn(seed); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Println()
	return nil
}

func runFig2(int64) error {
	res, err := experiments.RunFig2()
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runCampus(seed int64) error {
	web := webgen.Default()
	web.Seed = seed
	res, err := experiments.RunCampus(experiments.CampusOptions{Web: web})
	if err != nil {
		return err
	}
	fmt.Print(res.FormatFig3())
	fmt.Println()
	fmt.Print(res.FormatFig4())
	fmt.Println()
	fmt.Print(res.FormatSpam())
	return nil
}

func runSweep(seed int64) error {
	res, err := experiments.RunSpamSweep(nil, seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runComplexity(seed int64) error {
	res, err := experiments.RunComplexity(nil, seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runDistributed(seed int64) error {
	opts := experiments.DistributedOptions{}
	opts.Web.Seed = seed
	res, err := experiments.RunDistributed(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runPersonalization(seed int64) error {
	res, err := experiments.RunPersonalization(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runFusion(seed int64) error {
	res, err := experiments.RunFusion(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runChurn(seed int64) error {
	res, err := experiments.RunChurn(seed, 25)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runPartition(seed int64) error {
	res, err := experiments.RunPartition(experiments.PartitionOptions{
		Web: webgen.Config{
			Seed:              seed,
			Sites:             64,
			Blocks:            8,
			MeanSitePages:     30,
			IntraLinksPerPage: 3,
			InterLinkFraction: 0.3,
		},
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}

func runAblation(seed int64) error {
	res, err := experiments.RunAblation(seed)
	if err != nil {
		return err
	}
	fmt.Print(res.Format())
	return nil
}
