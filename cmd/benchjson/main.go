// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON record and merges it into a benchmark-trajectory
// file under a label, so successive PRs can append comparable runs:
//
//	go test -run '^$' -bench '^BenchmarkE' -benchmem -count=5 . |
//	    benchjson -label after -out BENCH_pr2.json
//
// The output file maps labels (e.g. "before", "after") to records; each
// record captures the environment and every benchmark's runs with all
// reported metrics (ns/op, B/op, allocs/op, ...).
//
// With -compare the command becomes a CI regression gate instead of a
// recorder: the fresh run on stdin is diffed against the trajectory
// file, and the command exits nonzero when any pinned benchmark's best
// ns/op or allocs/op regressed more than -max-regress percent over the
// latest recorded session that contains it:
//
//	go test -run '^$' -bench '^BenchmarkE(3|4|10)' -benchmem -count=3 . |
//	    benchjson -compare BENCH_pr2.json
//
// Nothing is written in compare mode. Comparisons use the best (minimum)
// measurement on each side, the standard noise shield for best-effort CI
// runners; a pinned benchmark missing from stdin fails the gate (the
// E-series must not rot), while one missing from the whole trajectory
// file is skipped with a note (its first recording creates the
// baseline).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Run is one benchmark measurement line.
type Run struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Record is one labeled benchmarking session.
type Record struct {
	GoVersion  string           `json:"go_version"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Date       string           `json:"date"`
	Benchmarks map[string][]Run `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// defaultPins are the serving-path benchmarks the CI gate watches: the
// flat and layered solver baselines, snapshot serving under churn, and
// the tenant serving kit.
const defaultPins = "BenchmarkE3Fig3FlatPageRank,BenchmarkE4Fig4LayeredDocRank,BenchmarkE10UpdateUnderLoad,BenchmarkE13TenantServing"

func run() error {
	var (
		label      = flag.String("label", "", "label to store this session under (required unless -compare)")
		out        = flag.String("out", "", "JSON trajectory file to merge into (required unless -compare)")
		compare    = flag.String("compare", "", "gate mode: trajectory file to diff the fresh stdin run against (writes nothing)")
		pins       = flag.String("pins", defaultPins, "comma-separated benchmarks the -compare gate checks")
		maxRegress = flag.Float64("max-regress", 30, "percent ns/op or allocs/op regression the -compare gate tolerates")
	)
	flag.Parse()
	if *compare == "" && (*label == "" || *out == "") {
		flag.Usage()
		return fmt.Errorf("-label and -out are required (or -compare for gate mode)")
	}

	rec, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no Benchmark lines found on stdin")
	}
	if *compare != "" {
		return runCompare(rec, *compare, strings.Split(*pins, ","), *maxRegress)
	}

	sessions := map[string]*Record{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &sessions); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", *out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	sessions[*label] = rec

	data, err := json.MarshalIndent(sessions, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks under %q in %s\n",
		len(rec.Benchmarks), *label, *out)
	return nil
}

// runCompare is the gate: for every pinned benchmark, diff the fresh
// record's best ns/op and allocs/op against the latest trajectory
// session containing that benchmark, and fail past maxRegress percent.
func runCompare(fresh *Record, path string, pins []string, maxRegress float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sessions := map[string]*Record{}
	if err := json.Unmarshal(data, &sessions); err != nil {
		return fmt.Errorf("%s is not a trajectory file: %w", path, err)
	}
	var failures []string
	for _, pin := range pins {
		pin = strings.TrimSpace(pin)
		if pin == "" {
			continue
		}
		runs, ok := fresh.Benchmarks[pin]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from the fresh run — the pinned benchmark rotted or the -bench pattern no longer matches it", pin))
			continue
		}
		baseLabel, base := latestWith(sessions, pin)
		if base == nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s has no baseline in %s yet; skipping (record a session to create one)\n", pin, path)
			continue
		}
		for _, metric := range []string{"ns/op", "allocs/op"} {
			cur, curOK := best(runs, metric)
			ref, refOK := best(base.Benchmarks[pin], metric)
			if !refOK {
				continue // the baseline never recorded this metric
			}
			if !curOK {
				failures = append(failures, fmt.Sprintf("%s: fresh run reports no %s (run with -benchmem)", pin, metric))
				continue
			}
			if ref == 0 {
				if cur > 0 && metric == "allocs/op" {
					failures = append(failures, fmt.Sprintf("%s: %s regressed 0 → %g (baseline %q)", pin, metric, cur, baseLabel))
				}
				continue
			}
			pct := (cur - ref) / ref * 100
			fmt.Fprintf(os.Stderr, "benchjson: %s %s: %g vs %g in %q (%+.1f%%)\n", pin, metric, cur, ref, baseLabel, pct)
			if pct > maxRegress {
				failures = append(failures, fmt.Sprintf("%s: %s regressed %+.1f%% (%g vs %g in %q, limit %+.0f%%)",
					pin, metric, pct, cur, ref, baseLabel, maxRegress))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "benchjson: bench gate passed")
	return nil
}

// latestWith returns the most recently dated session containing name.
// Dates are RFC3339 (UTC), so the lexicographic maximum is the latest.
func latestWith(sessions map[string]*Record, name string) (string, *Record) {
	var bestLabel string
	var bestRec *Record
	for label, rec := range sessions {
		if len(rec.Benchmarks[name]) == 0 {
			continue
		}
		if bestRec == nil || rec.Date > bestRec.Date {
			bestLabel, bestRec = label, rec
		}
	}
	return bestLabel, bestRec
}

// best returns the minimum value of metric across runs — the
// least-noisy measurement each side gets judged by.
func best(runs []Run, metric string) (float64, bool) {
	v, ok := math.Inf(1), false
	for _, r := range runs {
		if m, has := r.Metrics[metric]; has && m < v {
			v, ok = m, true
		}
	}
	return v, ok
}

// parse scans go-test output, echoing every line to echo (so the tool
// can sit at the end of a pipe without swallowing the report) and
// collecting benchmark lines.
func parse(r io.Reader, echo io.Writer) (*Record, error) {
	rec := &Record{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string][]Run{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so labels stay comparable across
		// hosts ("BenchmarkE3-8" and "BenchmarkE3" are the same series).
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		run := Run{Iterations: iters, Metrics: map[string]float64{}}
		for k := 2; k+1 < len(fields); k += 2 {
			v, err := strconv.ParseFloat(fields[k], 64)
			if err != nil {
				break
			}
			run.Metrics[fields[k+1]] = v
		}
		if len(run.Metrics) == 0 {
			continue
		}
		rec.Benchmarks[name] = append(rec.Benchmarks[name], run)
	}
	return rec, sc.Err()
}
