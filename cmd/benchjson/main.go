// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON record and merges it into a benchmark-trajectory
// file under a label, so successive PRs can append comparable runs:
//
//	go test -run '^$' -bench '^BenchmarkE' -benchmem -count=5 . |
//	    benchjson -label after -out BENCH_pr2.json
//
// The output file maps labels (e.g. "before", "after") to records; each
// record captures the environment and every benchmark's runs with all
// reported metrics (ns/op, B/op, allocs/op, ...).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Run is one benchmark measurement line.
type Run struct {
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Record is one labeled benchmarking session.
type Record struct {
	GoVersion  string           `json:"go_version"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Date       string           `json:"date"`
	Benchmarks map[string][]Run `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		label = flag.String("label", "", "label to store this session under (required)")
		out   = flag.String("out", "", "JSON trajectory file to merge into (required)")
	)
	flag.Parse()
	if *label == "" || *out == "" {
		flag.Usage()
		return fmt.Errorf("-label and -out are required")
	}

	rec, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		return err
	}
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no Benchmark lines found on stdin")
	}

	sessions := map[string]*Record{}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &sessions); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", *out, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	sessions[*label] = rec

	data, err := json.MarshalIndent(sessions, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: recorded %d benchmarks under %q in %s\n",
		len(rec.Benchmarks), *label, *out)
	return nil
}

// parse scans go-test output, echoing every line to echo (so the tool
// can sit at the end of a pipe without swallowing the report) and
// collecting benchmark lines.
func parse(r io.Reader, echo io.Writer) (*Record, error) {
	rec := &Record{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Date:       time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string][]Run{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so labels stay comparable across
		// hosts ("BenchmarkE3-8" and "BenchmarkE3" are the same series).
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		run := Run{Iterations: iters, Metrics: map[string]float64{}}
		for k := 2; k+1 < len(fields); k += 2 {
			v, err := strconv.ParseFloat(fields[k], 64)
			if err != nil {
				break
			}
			run.Metrics[fields[k+1]] = v
		}
		if len(run.Metrics) == 0 {
			continue
		}
		rec.Benchmarks[name] = append(rec.Benchmarks[name], run)
	}
	return rec, sc.Err()
}
