package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func record(date string, benches map[string][]Run) *Record {
	return &Record{Date: date, Benchmarks: benches}
}

func writeTrajectory(t *testing.T, sessions map[string]*Record) string {
	t.Helper()
	data, err := json.Marshal(sessions)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runsOf(ns, allocs float64) []Run {
	return []Run{
		{Iterations: 1, Metrics: map[string]float64{"ns/op": ns * 1.2, "allocs/op": allocs}},
		{Iterations: 1, Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}},
	}
}

func TestCompareGate(t *testing.T) {
	path := writeTrajectory(t, map[string]*Record{
		"old": record("2026-01-01T00:00:00Z", map[string][]Run{
			"BenchmarkA": runsOf(50, 10), // stale: a newer session supersedes it
		}),
		"new": record("2026-02-01T00:00:00Z", map[string][]Run{
			"BenchmarkA": runsOf(100, 10),
			"BenchmarkB": runsOf(200, 0),
		}),
	})

	t.Run("withinLimitPasses", func(t *testing.T) {
		fresh := record("", map[string][]Run{
			"BenchmarkA": runsOf(120, 12), // +20% ns, +20% allocs
			"BenchmarkB": runsOf(200, 0),
		})
		if err := runCompare(fresh, path, []string{"BenchmarkA", "BenchmarkB"}, 30); err != nil {
			t.Errorf("gate failed within the limit: %v", err)
		}
	})
	t.Run("nsRegressionFails", func(t *testing.T) {
		fresh := record("", map[string][]Run{"BenchmarkA": runsOf(150, 10)})
		err := runCompare(fresh, path, []string{"BenchmarkA"}, 30)
		if err == nil || !strings.Contains(err.Error(), "ns/op") {
			t.Errorf("+50%% ns/op err = %v, want an ns/op failure", err)
		}
	})
	t.Run("allocRegressionFails", func(t *testing.T) {
		fresh := record("", map[string][]Run{"BenchmarkA": runsOf(100, 20)})
		err := runCompare(fresh, path, []string{"BenchmarkA"}, 30)
		if err == nil || !strings.Contains(err.Error(), "allocs/op") {
			t.Errorf("doubled allocs err = %v, want an allocs/op failure", err)
		}
	})
	t.Run("latestBaselineWins", func(t *testing.T) {
		// 110 ns is +120% over the stale 50 ns baseline but only +10%
		// over the latest session's 100 ns — the gate must use the latter.
		fresh := record("", map[string][]Run{"BenchmarkA": runsOf(110, 10)})
		if err := runCompare(fresh, path, []string{"BenchmarkA"}, 30); err != nil {
			t.Errorf("gate compared against a stale session: %v", err)
		}
	})
	t.Run("zeroAllocBaseline", func(t *testing.T) {
		fresh := record("", map[string][]Run{"BenchmarkB": runsOf(200, 3)})
		err := runCompare(fresh, path, []string{"BenchmarkB"}, 30)
		if err == nil || !strings.Contains(err.Error(), "allocs/op") {
			t.Errorf("0→3 allocs err = %v, want an allocs/op failure", err)
		}
	})
	t.Run("missingFromFreshFails", func(t *testing.T) {
		fresh := record("", map[string][]Run{"BenchmarkA": runsOf(100, 10)})
		err := runCompare(fresh, path, []string{"BenchmarkA", "BenchmarkGone"}, 30)
		if err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
			t.Errorf("rotted pin err = %v, want a BenchmarkGone failure", err)
		}
	})
	t.Run("missingBaselineSkips", func(t *testing.T) {
		fresh := record("", map[string][]Run{
			"BenchmarkA":     runsOf(100, 10),
			"BenchmarkFresh": runsOf(1, 1),
		})
		if err := runCompare(fresh, path, []string{"BenchmarkA", "BenchmarkFresh"}, 30); err != nil {
			t.Errorf("unrecorded pin must skip, not fail: %v", err)
		}
	})
}

func TestParseStripsGOMAXPROCS(t *testing.T) {
	in := strings.NewReader("BenchmarkX-8   100   12345 ns/op   67 B/op   8 allocs/op\n")
	rec, err := parse(in, io_Discard{})
	if err != nil {
		t.Fatal(err)
	}
	runs, ok := rec.Benchmarks["BenchmarkX"]
	if !ok || len(runs) != 1 {
		t.Fatalf("Benchmarks = %v, want one BenchmarkX run", rec.Benchmarks)
	}
	if runs[0].Metrics["ns/op"] != 12345 || runs[0].Metrics["allocs/op"] != 8 {
		t.Errorf("metrics = %v", runs[0].Metrics)
	}
}

// io_Discard avoids importing io just for a sink.
type io_Discard struct{}

func (io_Discard) Write(p []byte) (int, error) { return len(p), nil }
