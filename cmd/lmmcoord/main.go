// Command lmmcoord drives a fleet of lmmnode workers through one
// distributed Layered Method run: it loads a graph file, partitions the
// sites over the workers, gathers their local DocRanks, computes the
// SiteRank (centrally or decentralized), and prints the composed top-k.
//
// Usage:
//
//	lmmcoord -graph campus.graph -workers host1:7100,host2:7100
//	         [-format text|gob] [-top 15] [-distributed-siterank]
//	         [-siterank auto|central|sync|batched|async]
//	         [-async-ordered] [-async-seed 42]
//	         [-partition host|balanced|aggregate] [-partition-seed 0]
//	         [-repartition-threshold 0.1]
//	         [-tenant-quota 16] [-coalesce-tol 1e-6]
//	         [-batch-rounds 4] [-max-worker-failures 1] [-max-redials 0]
//	         [-checkpoint siterank.ckpt] [-resume] [-runs 2]
//	         [-compress] [-timeout 30s]
//
// Shards are placed over the fleet by the -partition strategy —
// "balanced" (the default) spreads page count by weighted LPT,
// "host" is hostname-order round-robin, and "aggregate" co-locates
// strongly linked sites to minimize cut edges (seeded by
// -partition-seed); each run prints its cut-edge quality — and
// negotiated against the workers' digest caches, so with -runs > 1
// every run after the first ships near-zero shard bytes.
// -repartition-threshold records the cut-drift trigger in the run
// config; it takes effect when the same config serves an updating
// DistEngine (one-shot lmmcoord runs have no churn to react to).
// -tenant-quota and -coalesce-tol are serving knobs of the same kind:
// they record the per-tenant admission cap and the similarity tolerance
// for query coalescing, consumed when the config serves a DistEngine
// (a one-shot run admits exactly one query).
// -max-worker-failures lets a
// run survive peers dying mid-flight (their shards are reassigned);
// -max-redials additionally redials lost peers in the background with
// jittered exponential backoff and re-admits them mid-run, rebalancing
// their shards back (near-zero bytes when their caches are still warm).
// -batch-rounds exchanges several SiteRank power rounds per message
// when -distributed-siterank is on. -siterank selects the SiteRank mode
// explicitly; "async" is the barrier-free protocol (workers sweep
// continuously, the coordinator merges in arrival order and confirms
// with synchronous verification rounds), and -async-ordered with
// -async-seed makes its schedule deterministic and the SiteRank bitwise
// reproducible. -checkpoint persists the SiteRank
// iterate to a file after every round; a coordinator restarted with
// -resume picks the iteration up from the last checkpointed round
// instead of round zero (without -resume a stale checkpoint is cleared
// first). -compress flate-compresses shard payloads on the wire;
// -timeout bounds each whole run with a context deadline that
// propagates into every worker exchange.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lmmrank"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/graph"
	"lmmrank/internal/partition"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmmcoord:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		format    = flag.String("format", "text", "input format: text or gob")
		workers   = flag.String("workers", "", "comma-separated worker addresses (required)")
		top       = flag.Int("top", 15, "table length")
		damping   = flag.Float64("damping", 0.85, "damping factor / gatekeeper α")
		distSite  = flag.Bool("distributed-siterank", false, "compute SiteRank by distributed power iteration")
		srMode    = flag.String("siterank", "auto", "SiteRank mode: auto, central, sync, batched or async")
		asyncOrd  = flag.Bool("async-ordered", false, "with -siterank async: deterministic seeded sequential schedule")
		asyncSeed = flag.Int64("async-seed", 0, "with -async-ordered: seed of the worker-selection schedule")
		batch     = flag.Int("batch-rounds", 0, "SiteRank power rounds per exchange (with -distributed-siterank; <=1 = one round per exchange)")
		failures  = flag.Int("max-worker-failures", 1, "worker losses one run may absorb by reassigning shards (0 = fail on first loss)")
		redials   = flag.Int("max-redials", 0, "background redial attempts per lost worker (0 = lost workers stay lost)")
		ckptPath  = flag.String("checkpoint", "", "checkpoint the SiteRank iterate to this file (with -distributed-siterank)")
		resume    = flag.Bool("resume", false, "resume the SiteRank iteration from the checkpoint file")
		partName  = flag.String("partition", "balanced", "site placement strategy: host, balanced or aggregate")
		partSeed  = flag.Int64("partition-seed", 0, "seed for the aggregate strategy's label propagation")
		repartThr = flag.Float64("repartition-threshold", 0, "cut-fraction drift that triggers an online repartition when this config serves an updating engine (0 = disabled)")
		tenantQ   = flag.Int("tenant-quota", 0, "per-tenant concurrent-query cap when this config serves a DistEngine (0 = no per-tenant cap)")
		coalTol   = flag.Float64("coalesce-tol", 0, "similarity tolerance for query coalescing when this config serves a DistEngine (0 = exact-match only)")
		runs      = flag.Int("runs", 1, "repeat the ranking; runs after the first hit the workers' shard caches")
		compress  = flag.Bool("compress", false, "flate-compress shard payloads on the wire")
		timeout   = flag.Duration("timeout", 0, "deadline per ranking run (0 = none); propagates into every worker exchange")
	)
	flag.Parse()
	if *graphPath == "" || *workers == "" {
		flag.Usage()
		return fmt.Errorf("-graph and -workers are required")
	}
	// Flag combinations fail before any worker is dialed.
	if *resume && *ckptPath == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	var mode coordinator.SiteRankMode
	switch *srMode {
	case "auto":
		mode = coordinator.SiteRankAuto
	case "central":
		mode = coordinator.SiteRankCentral
	case "sync":
		mode = coordinator.SiteRankSync
	case "batched":
		mode = coordinator.SiteRankBatched
	case "async":
		mode = coordinator.SiteRankAsync
	default:
		return fmt.Errorf("unknown -siterank mode %q (want auto, central, sync, batched or async)", *srMode)
	}
	if *asyncOrd && mode != coordinator.SiteRankAsync {
		return fmt.Errorf("-async-ordered needs -siterank async")
	}
	var strat partition.Strategy
	switch *partName {
	case "host":
		strat = partition.Host{}
	case "balanced":
		strat = partition.Balanced{}
	case "aggregate":
		strat = partition.Aggregate{Seed: *partSeed}
	default:
		return fmt.Errorf("unknown -partition strategy %q (want host, balanced or aggregate)", *partName)
	}
	distributed := *distSite || mode == coordinator.SiteRankSync ||
		mode == coordinator.SiteRankBatched || mode == coordinator.SiteRankAsync
	if *ckptPath != "" && !distributed {
		return fmt.Errorf("-checkpoint needs a distributed SiteRank mode (the central SiteRank has no distributed iteration to checkpoint)")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var dg *lmmrank.DocGraph
	switch *format {
	case "text":
		dg, err = graph.ReadText(bufio.NewReader(f))
	case "gob":
		dg, err = graph.DecodeGob(bufio.NewReader(f))
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	addrs := strings.Split(*workers, ",")
	coord, err := coordinator.Dial(addrs)
	if err != nil {
		return err
	}
	defer coord.Close()
	if err := coord.Ping(); err != nil {
		return err
	}
	fmt.Printf("connected to %d workers; graph: %d sites, %d documents\n",
		coord.NumWorkers(), dg.NumSites(), dg.NumDocs())

	// Precompute the serving structure once (SiteGraph, local subgraphs,
	// CSR matrices); the distributed run then only pays for shipping and
	// ranking — and a long-lived coordinator process could reuse the
	// Ranker across many runs.
	prepStart := time.Now()
	rk, err := lmmrank.NewRanker(dg, lmmrank.RankerOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("precomputed ranking structure in %v\n", time.Since(prepStart).Round(time.Millisecond))

	cfg := coordinator.Config{
		Damping:              *damping,
		DistributedSiteRank:  *distSite,
		SiteRank:             mode,
		AsyncOrdered:         *asyncOrd,
		AsyncSeed:            *asyncSeed,
		BatchRounds:          *batch,
		Compress:             *compress,
		Partition:            strat,
		RepartitionThreshold: *repartThr,
		TenantQuota:          *tenantQ,
		CoalesceTol:          *coalTol,
		Retry: coordinator.RetryPolicy{
			MaxWorkerFailures: *failures,
			MaxRedials:        *redials,
		},
	}
	if *ckptPath != "" {
		ckpt := coordinator.NewFileCheckpoint(*ckptPath)
		if !*resume {
			// A fresh start must not accidentally resume last night's run.
			if err := ckpt.Clear(); err != nil {
				return err
			}
		}
		cfg.Checkpoint = ckpt
	}
	var res *coordinator.Result
	for run := 1; run <= *runs; run++ {
		start := time.Now()
		ctx := context.Background()
		var cancel context.CancelFunc = func() {}
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		res, err = coord.RankPreparedCtx(ctx, rk, cfg)
		cancel()
		if err != nil {
			return err
		}
		fmt.Printf("run %d: ranked in %v (load %v, local %v, siterank %v; %d messages, %.2f MB out, %.2f MB in)\n",
			run,
			time.Since(start).Round(time.Millisecond),
			res.Stats.LoadDuration.Round(time.Millisecond),
			res.Stats.LocalRankDuration.Round(time.Millisecond),
			res.Stats.SiteRankDuration.Round(time.Millisecond),
			res.Stats.Messages,
			float64(res.Stats.BytesSent)/1e6,
			float64(res.Stats.BytesReceived)/1e6)
		fmt.Printf("run %d: cache %d hits / %d misses (%.2f MB of shards not re-shipped; %.2f MB hashed for digests)",
			run, res.Stats.CacheHits, res.Stats.CacheMisses,
			float64(res.Stats.ShardBytesSaved)/1e6,
			float64(res.Stats.DigestBytesHashed)/1e6)
		if res.Stats.ShardBytesRaw > 0 {
			fmt.Printf("; compression %.2f -> %.2f MB",
				float64(res.Stats.ShardBytesRaw)/1e6,
				float64(res.Stats.ShardBytesCompressed)/1e6)
		}
		if res.Stats.WorkersLost > 0 {
			fmt.Printf("; survived %d worker losses (%d shards reassigned, %d retries)",
				res.Stats.WorkersLost, res.Stats.Reassignments, res.Stats.Retries)
		}
		if res.Stats.RedialAttempts > 0 || res.Stats.WorkersRejoined > 0 {
			fmt.Printf("; re-admitted %d workers (%d redials, %.2f MB re-shipped on rejoin)",
				res.Stats.WorkersRejoined, res.Stats.RedialAttempts,
				float64(res.Stats.RejoinShardBytes)/1e6)
		}
		if res.Stats.ResumedFromRound > 0 {
			fmt.Printf("; resumed SiteRank from checkpointed round %d", res.Stats.ResumedFromRound)
		}
		if res.Stats.BatchMessagesSaved > 0 {
			fmt.Printf("; batching saved %d SiteRank messages", res.Stats.BatchMessagesSaved)
		}
		if res.Stats.AsyncUpdatesMerged > 0 {
			fmt.Printf("; async merged %d sweeps (%d verification rounds)",
				res.Stats.AsyncUpdatesMerged, res.Stats.AsyncVerifyRounds)
		}
		fmt.Println()
		fmt.Printf("run %d: partition %s: cut weight %.0f (%.2f%% of site-graph weight; ~%.1f KB cross-shard per doc-level sweep avoided)\n",
			run, *partName, res.Stats.CutEdges, 100*res.Stats.CutFraction,
			float64(res.Stats.CrossShardBytes)/1e3)
	}
	fmt.Println()

	fmt.Printf("top %d by distributed Layered Method:\n", *top)
	fmt.Printf("%-4s %-10s %s\n", "#", "score", "URL")
	for i, e := range lmmrank.TopDocs(dg, res.DocRank, *top) {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}
	return nil
}
