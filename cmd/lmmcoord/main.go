// Command lmmcoord drives a fleet of lmmnode workers through one
// distributed Layered Method run: it loads a graph file, partitions the
// sites over the workers, gathers their local DocRanks, computes the
// SiteRank (centrally or decentralized), and prints the composed top-k.
//
// Usage:
//
//	lmmcoord -graph campus.graph -workers host1:7100,host2:7100
//	         [-format text|gob] [-top 15] [-distributed-siterank]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lmmrank"
	"lmmrank/internal/dist/coordinator"
	"lmmrank/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmmcoord:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		format    = flag.String("format", "text", "input format: text or gob")
		workers   = flag.String("workers", "", "comma-separated worker addresses (required)")
		top       = flag.Int("top", 15, "table length")
		damping   = flag.Float64("damping", 0.85, "damping factor / gatekeeper α")
		distSite  = flag.Bool("distributed-siterank", false, "compute SiteRank by distributed power iteration")
	)
	flag.Parse()
	if *graphPath == "" || *workers == "" {
		flag.Usage()
		return fmt.Errorf("-graph and -workers are required")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var dg *lmmrank.DocGraph
	switch *format {
	case "text":
		dg, err = graph.ReadText(bufio.NewReader(f))
	case "gob":
		dg, err = graph.DecodeGob(bufio.NewReader(f))
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	addrs := strings.Split(*workers, ",")
	coord, err := coordinator.Dial(addrs)
	if err != nil {
		return err
	}
	defer coord.Close()
	if err := coord.Ping(); err != nil {
		return err
	}
	fmt.Printf("connected to %d workers; graph: %d sites, %d documents\n",
		coord.NumWorkers(), dg.NumSites(), dg.NumDocs())

	// Precompute the serving structure once (SiteGraph, local subgraphs,
	// CSR matrices); the distributed run then only pays for shipping and
	// ranking — and a long-lived coordinator process could reuse the
	// Ranker across many runs.
	prepStart := time.Now()
	rk, err := lmmrank.NewRanker(dg, lmmrank.RankerOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("precomputed ranking structure in %v\n", time.Since(prepStart).Round(time.Millisecond))

	start := time.Now()
	res, err := coord.RankPrepared(rk, coordinator.Config{
		Damping:             *damping,
		DistributedSiteRank: *distSite,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ranked in %v (load %v, local %v, siterank %v; %d messages, %.2f MB out, %.2f MB in)\n\n",
		time.Since(start).Round(time.Millisecond),
		res.Stats.LoadDuration.Round(time.Millisecond),
		res.Stats.LocalRankDuration.Round(time.Millisecond),
		res.Stats.SiteRankDuration.Round(time.Millisecond),
		res.Stats.Messages,
		float64(res.Stats.BytesSent)/1e6,
		float64(res.Stats.BytesReceived)/1e6)

	fmt.Printf("top %d by distributed Layered Method:\n", *top)
	fmt.Printf("%-4s %-10s %s\n", "#", "score", "URL")
	for i, e := range lmmrank.TopDocs(dg, res.DocRank, *top) {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}
	return nil
}
