// Command webgen generates a synthetic campus web — the evaluation
// substrate standing in for the paper's EPFL crawl — and writes it as a
// text or gob graph file, with ground-truth page classes in a sidecar
// file when requested. With -blocky it instead generates a
// planted-block web (cross-site links stay inside coupling blocks
// except for a tunable escape fraction, and hostnames carry no block
// information) — the substrate for partition-quality experiments.
//
// Usage:
//
//	webgen -out campus.graph [-format text|gob] [-seed N] [-sites 218]
//	       [-mean-pages 60] [-dynamic 2500] [-docs 2500] [-labels labels.txt]
//	       [-blocky] [-blocks 8] [-inter-block 0.05]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"lmmrank"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "", "output graph file (required)")
		format    = flag.String("format", "text", "output format: text or gob")
		labels    = flag.String("labels", "", "optional file receiving per-doc ground-truth classes")
		seed      = flag.Int64("seed", 2005, "generator seed")
		sites     = flag.Int("sites", 218, "number of ordinary sites (the paper's count)")
		meanPages = flag.Int("mean-pages", 60, "mean pages per ordinary site")
		dynamic   = flag.Int("dynamic", 2500, "Webdriver-style agglomerate size (0 disables)")
		docs      = flag.Int("docs", 2500, "javadoc-style agglomerate size (0 disables)")
		blocky    = flag.Bool("blocky", false, "generate a planted-block web instead of the campus web")
		blocks    = flag.Int("blocks", 8, "number of planted coupling blocks (with -blocky)")
		inter     = flag.Float64("inter-block", 0.05, "probability a cross-site link escapes its block (with -blocky)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}

	web := lmmrank.GenerateCampusWeb(lmmrank.CampusWebConfig{
		Seed:                *seed,
		Sites:               *sites,
		MeanSitePages:       *meanPages,
		DynamicClusterPages: *dynamic,
		DocClusterPages:     *docs,
		Blocky:              *blocky,
		Blocks:              *blocks,
		InterBlockFraction:  *inter,
	})

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	switch *format {
	case "text":
		err = lmmrank.WriteGraph(w, web.Graph)
	case "gob":
		err = lmmrank.WriteGraphBinary(w, web.Graph)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *labels != "" {
		lf, err := os.Create(*labels)
		if err != nil {
			return err
		}
		defer lf.Close()
		lw := bufio.NewWriter(lf)
		fmt.Fprintln(lw, "# docID class")
		for d, c := range web.Class {
			fmt.Fprintf(lw, "%d %s\n", d, c)
		}
		if err := lw.Flush(); err != nil {
			return err
		}
	}

	fmt.Printf("wrote %s: %d sites, %d documents, %d links (seed %d)\n",
		*out, web.Graph.NumSites(), web.Graph.NumDocs(), web.Graph.G.NumEdges(), *seed)
	return nil
}
