// Command lmmrank ranks the documents of a Web graph file and prints the
// top-k table, with the paper's Layered Method as the default and flat
// PageRank, BlockRank and HITS as baselines.
//
// Usage:
//
//	lmmrank -graph campus.graph [-format text|gob] [-method layered]
//	        [-top 15] [-damping 0.85] [-drop-self-loops] [-compare]
//
// Methods: layered (the paper's default, served through the Engine
// API), layered3 (three-layer domain→site→page), pagerank, blockrank,
// hits.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"lmmrank"
	"lmmrank/internal/blockrank"
	"lmmrank/internal/graph"
	"lmmrank/internal/hits"
	"lmmrank/internal/rankutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmmrank:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		format    = flag.String("format", "text", "input format: text or gob")
		method    = flag.String("method", "layered", "ranking method: layered, layered3, pagerank, blockrank, hits")
		top       = flag.Int("top", 15, "table length (the paper prints 15)")
		damping   = flag.Float64("damping", 0.85, "damping factor / gatekeeper α")
		dropSelf  = flag.Bool("drop-self-loops", false, "exclude intra-site links from the SiteGraph")
		compare   = flag.Bool("compare", false, "also compute flat PageRank and report agreement")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		return fmt.Errorf("-graph is required")
	}

	dg, err := loadGraph(*graphPath, *format)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d sites, %d documents, %d links\n\n",
		dg.NumSites(), dg.NumDocs(), dg.G.NumEdges())

	webCfg := lmmrank.WebConfig{
		Damping:   *damping,
		SiteGraph: lmmrank.SiteGraphOptions{DropSelfLoops: *dropSelf},
	}

	var scores lmmrank.Vector
	switch *method {
	case "layered", "layered3":
		// The Engine precomputes the serving structure; a long-lived
		// process would keep it and answer repeated (concurrent)
		// queries from it.
		eng, err := lmmrank.NewLocalEngine(dg, lmmrank.EngineOptions{
			SiteGraph: webCfg.SiteGraph,
		})
		if err != nil {
			return err
		}
		res, err := eng.Rank(context.Background(), lmmrank.Query{
			Damping:    *damping,
			ThreeLayer: *method == "layered3",
		})
		if err != nil {
			return err
		}
		scores = res.DocRank
	case "pagerank":
		scores, err = lmmrank.PageRank(dg, webCfg)
		if err != nil {
			return err
		}
	case "blockrank":
		res, err := blockrank.Compute(dg, blockrank.Config{Damping: *damping})
		if err != nil {
			return err
		}
		scores = res.Scores
	case "hits":
		res, err := hits.Run(dg.G, hits.Config{})
		if err != nil {
			return err
		}
		scores = res.Authority
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	fmt.Printf("top %d by %s:\n", *top, *method)
	printTop(dg, scores, *top)

	if *compare && *method != "pagerank" {
		flat, err := lmmrank.PageRank(dg, webCfg)
		if err != nil {
			return err
		}
		fmt.Printf("\nagreement with flat PageRank: Kendall τ = %.3f, overlap@%d = %.3f\n",
			lmmrank.KendallTau(scores, flat),
			*top, rankutil.OverlapAtK(scores, flat, *top))
	}
	return nil
}

func loadGraph(path, format string) (*lmmrank.DocGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	switch format {
	case "text":
		return graph.ReadText(r)
	case "gob":
		return graph.DecodeGob(r)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func printTop(dg *lmmrank.DocGraph, scores lmmrank.Vector, k int) {
	fmt.Printf("%-4s %-10s %s\n", "#", "score", "URL")
	for i, e := range lmmrank.TopDocs(dg, scores, k) {
		fmt.Printf("%-4d %-10.6f %s\n", i+1, e.Score, e.URL)
	}
}
