// Command lmmnode runs one distributed ranking worker — the peer that
// hosts site subgraphs and computes their local DocRanks, mapping to a
// Web server in the paper's peer-to-peer architecture.
//
// Usage:
//
//	lmmnode -listen 0.0.0.0:7100
//
// The process serves until SIGINT/SIGTERM, then shuts down gracefully.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"lmmrank/internal/dist/worker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmmnode:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7100", "address to serve on")
	flag.Parse()

	w := worker.New()
	addr, err := w.Start(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("lmmnode serving on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("lmmnode: shutting down")
	if err := w.Close(); err != nil {
		return err
	}
	st := w.Stats()
	fmt.Printf("lmmnode: served %d messages (%d bytes in, %d bytes out); cache held %d shards / %d docs\n",
		st.Messages, st.BytesReceived, st.BytesSent, st.CacheEntries, st.CacheDocs)
	return nil
}
