// Command lmmnode runs one distributed ranking worker — the peer that
// hosts site subgraphs and computes their local DocRanks, mapping to a
// Web server in the paper's peer-to-peer architecture.
//
// Usage:
//
//	lmmnode -listen 0.0.0.0:7100 [-drain-timeout 10s]
//
// The process serves until SIGINT/SIGTERM, then shuts down gracefully:
// it stops accepting, lets in-flight exchanges finish their responses
// (bounded by -drain-timeout), and exits. A second signal — or an
// expired drain — forces an immediate close.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lmmrank/internal/dist/worker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lmmnode:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:7100", "address to serve on")
	drain := flag.Duration("drain-timeout", 10*time.Second, "how long a graceful shutdown waits for in-flight exchanges")
	flag.Parse()

	w := worker.New()
	addr, err := w.Start(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("lmmnode serving on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("lmmnode: draining (signal again to force)")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		// A second signal abandons the drain.
		<-sig
		cancel()
	}()
	if err := w.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "lmmnode: forced close:", err)
	}
	st := w.Stats()
	fmt.Printf("lmmnode: served %d messages (%d bytes in, %d bytes out); cache held %d shards / %d docs\n",
		st.Messages, st.BytesReceived, st.BytesSent, st.CacheEntries, st.CacheDocs)
	return nil
}
